package peerstripe

import (
	"context"
	"fmt"
	"io"
	"sync"

	"peerstripe/internal/core"
)

// fileChunkCache bounds how many decoded chunks a File keeps; with the
// default 16 MiB chunk cap that is at most 64 MiB of cache per open
// file, and a sequential Read through a file decodes every chunk
// exactly once.
const fileChunkCache = 4

// File is an open handle on a stored file, implementing io.Reader,
// io.Seeker, io.ReaderAt, and io.Closer over the ring. Reads decode at
// chunk granularity and fetch only the chunks the requested range
// covers (§4.1); a small LRU of decoded chunks makes sequential and
// locally clustered reads cheap. All methods are safe for concurrent
// use (concurrent ReadAt, as io.ReaderAt requires).
//
// The context passed to Open governs every read on the File:
// cancelling it makes in-flight and future reads fail promptly with
// the context error.
type File struct {
	cl   *Client
	ctx  context.Context
	cat  *core.CAT
	name string

	// posMu serializes the seek position across Read/Seek, held for
	// the whole Read so interleaved concurrent Reads cannot hand two
	// callers the same range. mu (below) only guards the chunk cache
	// and may be taken while posMu is held.
	posMu sync.Mutex
	pos   int64

	mu    sync.Mutex
	cache map[int][]byte
	order []int // cache keys, oldest first
}

// Open loads the named file's chunk allocation table and returns a
// handle for ranged reads. The file's bytes are fetched lazily, chunk
// by chunk, as reads demand them. ctx bounds the open and every
// subsequent read on the returned File.
func (c *Client) Open(ctx context.Context, name string) (*File, error) {
	cat, err := c.c.LoadCATCtx(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("peerstripe: open %q: %w", name, err)
	}
	return &File{cl: c, ctx: ctx, cat: cat, name: name, cache: make(map[int][]byte)}, nil
}

// Name returns the ring-wide file name.
func (f *File) Name() string { return f.name }

// Size returns the file's logical size in bytes.
func (f *File) Size() int64 { return f.cat.FileSize() }

// chunk returns chunk ci's decoded bytes, from the cache or the ring.
func (f *File) chunk(ci int) ([]byte, error) {
	f.mu.Lock()
	if data, ok := f.cache[ci]; ok {
		f.mu.Unlock()
		return data, nil
	}
	f.mu.Unlock()
	// Decode outside the lock so one slow chunk fetch does not block a
	// concurrent ReadAt that hits the cache. Two racing readers of the
	// same cold chunk may both decode it; the second insert wins and
	// both results are identical.
	data, err := f.cl.c.FetchChunk(f.ctx, f.cat, ci)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if _, ok := f.cache[ci]; !ok {
		f.cache[ci] = data
		f.order = append(f.order, ci)
		if len(f.order) > fileChunkCache {
			evict := f.order[0]
			f.order = f.order[1:]
			delete(f.cache, evict)
		}
	}
	f.mu.Unlock()
	return data, nil
}

// ReadAt implements io.ReaderAt: it fills p from offset off, fetching
// and decoding only the chunks [off, off+len(p)) intersects. At end of
// file it returns the bytes read and io.EOF.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("peerstripe: read %q: negative offset %d", f.name, off)
	}
	if err := f.ctx.Err(); err != nil {
		return 0, err
	}
	size := f.cat.FileSize()
	if off >= size {
		return 0, io.EOF
	}
	want := int64(len(p))
	short := false
	if off+want > size {
		want = size - off
		short = true
	}
	n := 0
	for _, ci := range f.cat.ChunksFor(off, want) {
		row := f.cat.Row(ci)
		chunk, err := f.chunk(ci)
		if err != nil {
			return n, fmt.Errorf("peerstripe: read %q: %w", f.name, err)
		}
		lo := int64(0)
		if off > row.Start {
			lo = off - row.Start
		}
		hi := row.Len()
		if off+want < row.End {
			hi = off + want - row.Start
		}
		n += copy(p[n:], chunk[lo:hi])
	}
	if short {
		return n, io.EOF
	}
	return n, nil
}

// Read implements io.Reader at the handle's seek position. Concurrent
// Reads are safe and serialize: each consumes a distinct range.
func (f *File) Read(p []byte) (int, error) {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	n, err := f.ReadAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = f.cat.FileSize()
	default:
		return 0, fmt.Errorf("peerstripe: seek %q: bad whence %d", f.name, whence)
	}
	next := base + offset
	if next < 0 {
		return 0, fmt.Errorf("peerstripe: seek %q: negative position %d", f.name, next)
	}
	f.pos = next
	return next, nil
}

// Close releases the handle's chunk cache. The Client stays open.
func (f *File) Close() error {
	f.mu.Lock()
	f.cache = make(map[int][]byte)
	f.order = nil
	f.mu.Unlock()
	return nil
}

// Interface conformance.
var (
	_ io.ReadSeekCloser = (*File)(nil)
	_ io.ReaderAt       = (*File)(nil)
)
