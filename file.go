package peerstripe

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"peerstripe/internal/core"
)

// File is an open handle on a stored file, implementing io.Reader,
// io.Seeker, io.ReaderAt, and io.Closer over the ring. Reads decode at
// chunk granularity and fetch only the chunks the requested range
// covers (§4.1). Decoded chunks land in the Client's shared cache — an
// LRU bounded by WithChunkCache and keyed on (name, chunk), so every
// handle and every request on the client reuses them — and each cold
// chunk is fetched and decoded exactly once no matter how many readers
// race for it (per-chunk singleflight). All methods are safe for
// concurrent use (concurrent ReadAt, as io.ReaderAt requires).
//
// The context passed to Open governs every read on the File:
// cancelling it makes in-flight and future reads fail promptly with
// the context error. After Close, every read fails with an error
// matching os.ErrClosed.
type File struct {
	cl   *Client
	ctx  context.Context
	cat  *core.CAT
	name string
	// ver is the CAT hash of the layout this handle opened — the
	// version under which its chunks are cached and against which the
	// hot-promotion marker is verified.
	ver uint64

	// posMu serializes the seek position across Read/Seek, held for
	// the whole Read so interleaved concurrent Reads cannot hand two
	// callers the same range.
	posMu sync.Mutex
	pos   int64

	closed atomic.Bool

	// Hot-promotion state, resolved lazily on the first chunk miss:
	// promoted files serve chunk reads from full-copy replicas (one
	// block, no decode) with the coded blocks as fallback.
	hotMu      sync.Mutex
	hotChecked bool
	hotCopies  int
	hotNext    atomic.Uint32 // rotates reads across the replica set
}

// Open loads the named file's chunk allocation table and returns a
// handle for ranged reads. The file's bytes are fetched lazily, chunk
// by chunk, as reads demand them. ctx bounds the open and every
// subsequent read on the returned File.
func (c *Client) Open(ctx context.Context, name string) (*File, error) {
	cat, err := c.c.LoadCATCtx(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("peerstripe: open %q: %w", name, err)
	}
	return &File{cl: c, ctx: ctx, cat: cat, name: name, ver: cat.Hash()}, nil
}

// Name returns the ring-wide file name.
func (f *File) Name() string { return f.name }

// Size returns the file's logical size in bytes.
func (f *File) Size() int64 { return f.cat.FileSize() }

// ETag returns an entity tag for the file as opened: the hash of its
// chunk allocation table, which covers the name, the chunk extents,
// and each chunk's content sum. Two handles agree on the tag exactly
// when they read the same stored bytes, and re-storing a name — even
// with a layout of identical extents — changes the tag, which is what
// makes it usable for HTTP conditional requests (If-None-Match,
// If-Range).
func (f *File) ETag() string {
	return fmt.Sprintf("\"%016x\"", f.ver)
}

// errClosed builds the post-Close failure for one operation.
func (f *File) errClosed(op string) error {
	return fmt.Errorf("peerstripe: %s %q: %w", op, f.name, os.ErrClosed)
}

// hotReplicas resolves (once per handle) how many full-copy chunk
// replicas the file was promoted with; 0 means read the coded path.
// The marker is trusted only when it is bound to this handle's CAT
// hash — a marker left behind by a failed demote after a re-store
// names the old layout and is ignored, so stale replica bytes are
// never routed to readers of the new one. The probe is lazy — it
// costs one marker fetch, paid only when a chunk actually misses the
// shared cache — and failures degrade to the coded path instead of
// failing the read.
func (f *File) hotReplicas() int {
	f.hotMu.Lock()
	defer f.hotMu.Unlock()
	if !f.hotChecked {
		if copies, catHash, err := f.cl.c.HotCopiesCtx(f.ctx, f.name); err == nil && catHash == f.ver {
			f.hotCopies = copies
		}
		f.hotChecked = true
	}
	return f.hotCopies
}

// fetchChunk is the singleflight leader's path for one cold chunk:
// try the promoted full-copy replicas (one block fetch, no decode,
// rotating across the replica set so a herd fans out), then fall back
// to fetching and erasure-decoding the coded blocks. Replicas are
// untrusted copies — a length or content-sum mismatch against this
// handle's CAT row degrades to the coded path instead of serving the
// bytes.
func (f *File) fetchChunk(ci int) ([]byte, error) {
	row := f.cat.Row(ci)
	if copies := f.hotReplicas(); copies > 0 {
		start := int(f.hotNext.Add(1))
		for k := 0; k < copies; k++ {
			r := 1 + (start+k)%copies
			data, err := f.cl.c.FetchChunkCopy(f.ctx, f.name, ci, r)
			if err == nil && int64(len(data)) == row.Len() &&
				(row.Sum == 0 || core.ChunkSum(data) == row.Sum) {
				return data, nil
			}
			if err := f.ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	return f.cl.c.FetchChunk(f.ctx, f.cat, ci)
}

// chunk returns chunk ci's decoded bytes through the client's shared
// cache, keyed under this handle's CAT version: a hit costs nothing,
// a racing cold read joins the in-flight fetch, and a true miss runs
// fetchChunk exactly once.
func (f *File) chunk(ci int) ([]byte, error) {
	return f.cl.cache.chunk(f.ctx, f.name, f.ver, ci, f.cat.Row(ci).Len(), func() ([]byte, error) {
		return f.fetchChunk(ci)
	})
}

// ReadAt implements io.ReaderAt: it fills p from offset off, fetching
// and decoding only the chunks [off, off+len(p)) intersects. At end of
// file it returns the bytes read and io.EOF.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, f.errClosed("read")
	}
	if off < 0 {
		return 0, fmt.Errorf("peerstripe: read %q: negative offset %d", f.name, off)
	}
	if err := f.ctx.Err(); err != nil {
		return 0, err
	}
	size := f.cat.FileSize()
	if off >= size {
		return 0, io.EOF
	}
	want := int64(len(p))
	short := false
	if off+want > size {
		want = size - off
		short = true
	}
	n := 0
	for _, ci := range f.cat.ChunksFor(off, want) {
		row := f.cat.Row(ci)
		chunk, err := f.chunk(ci)
		if err != nil {
			return n, fmt.Errorf("peerstripe: read %q: %w", f.name, err)
		}
		lo := int64(0)
		if off > row.Start {
			lo = off - row.Start
		}
		hi := row.Len()
		if off+want < row.End {
			hi = off + want - row.Start
		}
		n += copy(p[n:], chunk[lo:hi])
	}
	if short {
		return n, io.EOF
	}
	return n, nil
}

// Read implements io.Reader at the handle's seek position. Concurrent
// Reads are safe and serialize: each consumes a distinct range.
func (f *File) Read(p []byte) (int, error) {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	n, err := f.ReadAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed.Load() {
		return 0, f.errClosed("seek")
	}
	f.posMu.Lock()
	defer f.posMu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = f.cat.FileSize()
	default:
		return 0, fmt.Errorf("peerstripe: seek %q: bad whence %d", f.name, whence)
	}
	next := base + offset
	if next < 0 {
		return 0, fmt.Errorf("peerstripe: seek %q: negative position %d", f.name, next)
	}
	f.pos = next
	return next, nil
}

// Close marks the handle closed: subsequent Read, ReadAt, and Seek
// calls fail with an error matching os.ErrClosed, as does a second
// Close. Decoded chunks stay in the Client's shared cache for other
// handles; the Client stays open.
func (f *File) Close() error {
	if f.closed.Swap(true) {
		return f.errClosed("close")
	}
	return nil
}

// Interface conformance.
var (
	_ io.ReadSeekCloser = (*File)(nil)
	_ io.ReaderAt       = (*File)(nil)
)
