package peerstripe_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"sync"
	"testing"

	"peerstripe"
	"peerstripe/internal/node"
)

func totalFetchOps(servers []*node.Server) int64 {
	var n int64
	for _, s := range servers {
		n += s.FetchOps()
	}
	return n
}

// TestColdChunkSingleflight pins the thundering-herd fix: 64 readers
// racing over one cold multi-chunk file through a single handle must
// fetch and decode each chunk exactly once. With the null code every
// chunk is one block, so the server-side fetch counters give an exact
// bound: one fetch per chunk plus the single hot-marker probe.
func TestColdChunkSingleflight(t *testing.T) {
	servers, seed := testRing(t, 3, 1<<30)
	c := dialTest(t, seed,
		peerstripe.WithCode("null"),
		peerstripe.WithChunkCap(64<<10))

	const chunks = 8
	data := make([]byte, chunks*64<<10)
	rand.New(rand.NewSource(11)).Read(data)
	ctx := context.Background()
	info, err := c.Store(ctx, "herd.dat", bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks != chunks {
		t.Fatalf("planned %d chunks, want %d", info.Chunks, chunks)
	}

	f, err := c.Open(ctx, "herd.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	base := totalFetchOps(servers)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, len(data))
			if _, err := f.ReadAt(buf, 0); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf, data) {
				errs <- io.ErrUnexpectedEOF
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// chunks block fetches + 1 probe of the absent promotion marker.
	if delta := totalFetchOps(servers) - base; delta != chunks+1 {
		t.Errorf("herd of 64 cost %d fetches, want %d (one per chunk + marker probe)", delta, chunks+1)
	}
	st := c.CacheStats()
	if st.Decodes != chunks {
		t.Errorf("Decodes = %d, want %d (each chunk decoded exactly once)", st.Decodes, chunks)
	}
	if st.Hits == 0 {
		t.Error("herd recorded no cache hits")
	}
}

// TestCacheSharedAcrossHandles pins that the decoded-chunk cache
// belongs to the Client, not the File: a second handle (and a reopened
// one) reads entirely from cache, costing zero block fetches.
func TestCacheSharedAcrossHandles(t *testing.T) {
	servers, seed := testRing(t, 3, 1<<30)
	c := dialTest(t, seed,
		peerstripe.WithCode("null"),
		peerstripe.WithChunkCap(64<<10))

	data := make([]byte, 4*64<<10)
	rand.New(rand.NewSource(12)).Read(data)
	ctx := context.Background()
	if _, err := c.Store(ctx, "shared.dat", bytes.NewReader(data), int64(len(data))); err != nil {
		t.Fatal(err)
	}

	f1, err := c.Open(ctx, "shared.dat")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := io.ReadAll(f1); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("first read: %v", err)
	}
	f1.Close()

	decodes := c.CacheStats().Decodes
	f2, err := c.Open(ctx, "shared.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	base := totalFetchOps(servers) // past the CAT fetch Open just did
	if got, err := io.ReadAll(f2); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("second read: %v", err)
	}
	if d := c.CacheStats().Decodes; d != decodes {
		t.Errorf("second handle re-decoded: Decodes %d -> %d", decodes, d)
	}
	// The data must come from cache without a single block fetch.
	if delta := totalFetchOps(servers) - base; delta != 0 {
		t.Errorf("cached read cost %d block fetches, want 0", delta)
	}
}

// TestCacheEviction pins the byte bound: a file larger than the cache
// still reads correctly, the bound holds, and the LRU records
// evictions instead of growing.
func TestCacheEviction(t *testing.T) {
	_, seed := testRing(t, 3, 1<<30)
	const chunk = 64 << 10
	c := dialTest(t, seed,
		peerstripe.WithCode("null"),
		peerstripe.WithChunkCap(chunk),
		peerstripe.WithChunkCache(2*chunk)) // room for 2 of 8 chunks

	data := make([]byte, 8*chunk)
	rand.New(rand.NewSource(13)).Read(data)
	ctx := context.Background()
	if _, err := c.StoreBytes(ctx, "evict.dat", data); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open(ctx, "evict.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for pass := 0; pass < 2; pass++ {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(f)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("pass %d: %v", pass, err)
		}
	}
	st := c.CacheStats()
	if st.Evictions == 0 {
		t.Error("no evictions although the file is 4x the cache bound")
	}
	if st.Bytes > st.MaxBytes {
		t.Errorf("cache holds %d bytes over the %d bound", st.Bytes, st.MaxBytes)
	}
}

// TestPromoteReplicaReads pins the hot-read path end to end: Promote
// places full-copy chunk replicas, a fresh client then reads one block
// per chunk (no erasure decode wave), and Demote restores the coded
// path. Byte equality is checked on every path.
func TestPromoteReplicaReads(t *testing.T) {
	servers, seed := testRing(t, 4, 1<<30)
	const chunk = 64 << 10
	c := dialTest(t, seed, peerstripe.WithCode("xor"), peerstripe.WithChunkCap(chunk))

	const chunks = 4
	data := make([]byte, chunks*chunk)
	rand.New(rand.NewSource(14)).Read(data)
	ctx := context.Background()
	if _, err := c.StoreBytes(ctx, "hot.dat", data); err != nil {
		t.Fatal(err)
	}

	info, err := c.Promote(ctx, "hot.dat", 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks != chunks || info.Copies != 2 || info.Bytes != int64(2*len(data)) {
		t.Fatalf("PromoteInfo %+v", info)
	}

	// A fresh client (empty cache) reading the promoted file costs one
	// replica block per chunk plus the marker probe — not the xor
	// decode wave of two blocks per chunk.
	hot := dialTest(t, seed, peerstripe.WithCode("xor"), peerstripe.WithChunkCap(chunk))
	fh, err := hot.Open(ctx, "hot.dat")
	if err != nil {
		t.Fatal(err)
	}
	base := totalFetchOps(servers)
	got, err := io.ReadAll(fh)
	fh.Close()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("promoted read: %v", err)
	}
	if delta := totalFetchOps(servers) - base; delta != chunks+1 {
		t.Errorf("promoted read cost %d fetches, want %d (one replica per chunk + marker)", delta, chunks+1)
	}

	if err := c.Demote(ctx, "hot.dat"); err != nil {
		t.Fatal(err)
	}
	cold := dialTest(t, seed, peerstripe.WithCode("xor"), peerstripe.WithChunkCap(chunk))
	fc, err := cold.Open(ctx, "hot.dat")
	if err != nil {
		t.Fatal(err)
	}
	base = totalFetchOps(servers)
	got, err = io.ReadAll(fc)
	fc.Close()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("demoted read: %v", err)
	}
	// Back on the decode path: two xor blocks per chunk, plus the
	// (now absent) marker probe.
	if delta := totalFetchOps(servers) - base; delta != 2*chunks+1 {
		t.Errorf("demoted read cost %d fetches, want %d (xor decode wave + marker probe)", delta, 2*chunks+1)
	}
}

// TestStoreDemotesStaleReplicas pins that re-storing a promoted name
// drops the old plaintext replicas: a later read must see the new
// bytes, never a stale hot copy.
func TestStoreDemotesStaleReplicas(t *testing.T) {
	_, seed := testRing(t, 4, 1<<30)
	const chunk = 64 << 10
	c := dialTest(t, seed, peerstripe.WithCode("xor"), peerstripe.WithChunkCap(chunk))
	ctx := context.Background()

	v1 := make([]byte, 3*chunk)
	rand.New(rand.NewSource(15)).Read(v1)
	if _, err := c.StoreBytes(ctx, "restore.dat", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Promote(ctx, "restore.dat", 2); err != nil {
		t.Fatal(err)
	}

	v2 := make([]byte, 3*chunk)
	rand.New(rand.NewSource(16)).Read(v2)
	if _, err := c.StoreBytes(ctx, "restore.dat", v2); err != nil {
		t.Fatal(err)
	}

	// A fresh client must get v2 — the marker is gone, so nothing
	// routes reads at leftover v1 replicas.
	c2 := dialTest(t, seed, peerstripe.WithCode("xor"), peerstripe.WithChunkCap(chunk))
	f, err := c2.Open(ctx, "restore.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("read after re-store: equal-to-v2=%v err=%v", bytes.Equal(got, v2), err)
	}
}
