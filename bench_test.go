// Package peerstripe's root benchmark suite: one testing.B benchmark
// per table and figure of the paper's evaluation, at reduced scale so
// `go test -bench=. -benchmem` regenerates every result quickly. The
// psbench command runs the same experiments with full output and
// adjustable scale.
package peerstripe

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"peerstripe/internal/baseline"
	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/grid"
	"peerstripe/internal/multicast"
	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

// TestMain prints the kernel dispatch decision ahead of benchmark runs
// so captured `-bench` output (BENCH_PR*.json, bench-guard logs)
// records which tier — and any PS_KERNELS override — produced the
// numbers.
func TestMain(m *testing.M) {
	flag.Parse()
	if bench := flag.Lookup("test.bench"); bench != nil && bench.Value.String() != "" {
		fmt.Printf("kernels: %s\n", erasure.KernelImpl())
	}
	os.Exit(m.Run())
}

// benchScale is the population divisor used by the insertion benches.
const benchScale = 400 // 25 nodes / 3000 files per iteration

func insertAll(b *testing.B, store func(name string, size int64)) {
	b.Helper()
	sc := trace.Scaled(benchScale)
	g := trace.NewGen(1)
	files := g.Files(sc.Files)
	for _, f := range files {
		store(f.Name, f.Size)
	}
}

// BenchmarkFig7PAST measures the Figure 7/8/9 insertion workload under
// PAST (whole-file placement).
func BenchmarkFig7PAST(b *testing.B) {
	sc := trace.Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		g := trace.NewGen(1)
		pool := sim.NewPool(1, g.NodeCapacities(sc.Nodes))
		p := baseline.NewPAST(pool)
		insertAll(b, func(n string, s int64) { p.StoreFile(n, s) })
	}
}

// BenchmarkFig7CFS measures the insertion workload under CFS (4 MB
// fixed blocks).
func BenchmarkFig7CFS(b *testing.B) {
	sc := trace.Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		g := trace.NewGen(1)
		pool := sim.NewPool(1, g.NodeCapacities(sc.Nodes))
		c := baseline.NewCFS(pool, 4*trace.MB)
		insertAll(b, func(n string, s int64) { c.StoreFile(n, s) })
	}
}

// BenchmarkFig7PeerStripe measures the insertion workload under
// PeerStripe (capacity-probed varying chunks) — together with the two
// baselines this regenerates Figures 7-9 and Table 1.
func BenchmarkFig7PeerStripe(b *testing.B) {
	sc := trace.Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		g := trace.NewGen(1)
		pool := sim.NewPool(1, g.NodeCapacities(sc.Nodes))
		s := core.NewStore(pool, core.PaperConfig())
		insertAll(b, func(n string, sz int64) { s.StoreFile(n, sz) })
	}
}

// BenchmarkFig10Availability measures the no-repair failure sweep that
// regenerates Figure 10 (XOR coding arm).
func BenchmarkFig10Availability(b *testing.B) {
	sc := trace.Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		g := trace.NewGen(2)
		pool := sim.NewPool(2, g.NodeCapacities(sc.Nodes))
		cfg := core.PaperConfig()
		cfg.Spec = erasure.XOR23Spec
		st := core.NewStore(pool, cfg)
		for _, f := range g.Files(sc.Files) {
			st.StoreFile(f.Name, f.Size)
		}
		rng := g.Rand()
		for failed := 0; failed < sc.Nodes/10; failed++ {
			nodes := pool.Net.Nodes()
			_, _ = st.FailNode(nodes[rng.Intn(len(nodes))].ID, false)
		}
	}
}

// BenchmarkTable2NullEncode is the Table 2 NULL-code arm.
func BenchmarkTable2NullEncode(b *testing.B) {
	benchEncode(b, erasure.NewNull())
}

// BenchmarkTable2XOREncode is the Table 2 (2,3) XOR arm.
func BenchmarkTable2XOREncode(b *testing.B) {
	benchEncode(b, erasure.MustXOR(2))
}

// BenchmarkTable2OnlineEncode is the Table 2 online-code arm (q=3,
// ε=0.01, 4096 blocks per 4 MB chunk).
func BenchmarkTable2OnlineEncode(b *testing.B) {
	benchEncode(b, erasure.MustOnline(4096, erasure.OnlineOpts{}))
}

func benchEncode(b *testing.B, c erasure.Code) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	chunk := make([]byte, 4*trace.MB)
	rng.Read(chunk)
	b.SetBytes(4 * trace.MB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2OnlineDecode measures the online-code decode side.
func BenchmarkTable2OnlineDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	c := erasure.MustOnline(4096, erasure.OnlineOpts{})
	chunk := make([]byte, 4*trace.MB)
	rng.Read(chunk)
	blocks, err := c.Encode(chunk)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4 * trace.MB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(blocks, len(chunk)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2OnlineDecodeSched measures online-code decode per
// check schedule at the paper's 2% stored surplus — the schedule ×
// surplus axis opened by internal/erasure/schedule.go. Each run also
// reports how many columns the decoder had to inactivate (0 means
// belief propagation completed; the BP-completion sweep itself is
// `psbench -exp schedules`).
func BenchmarkTable2OnlineDecodeSched(b *testing.B) {
	for _, sched := range erasure.Schedules() {
		b.Run(sched.Name(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			c := erasure.MustOnline(4096, erasure.OnlineOpts{Schedule: sched})
			chunk := make([]byte, 4*trace.MB)
			rng.Read(chunk)
			blocks, err := c.Encode(chunk)
			if err != nil {
				b.Fatal(err)
			}
			var inactivated int
			b.SetBytes(4 * trace.MB)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := c.DecodeWithStats(blocks, len(chunk))
				if err != nil {
					b.Fatal(err)
				}
				inactivated = st.Inactivated
			}
			b.ReportMetric(float64(inactivated), "inactivated")
		})
	}
}

// BenchmarkTable2OnlineRepair measures the §4.4 repair path: minting a
// replacement check block with FreshBlock (aux/composite rebuild plus
// one composition gather) — the per-block cost a node pays when
// re-creating lost blocks during churn.
func BenchmarkTable2OnlineRepair(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	c := erasure.MustOnline(4096, erasure.OnlineOpts{})
	chunk := make([]byte, 4*trace.MB)
	rng.Read(chunk)
	b.SetBytes(4 * trace.MB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FreshBlock(chunk, c.EncodedBlocks()+i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Churn measures the delayed-repair churn sweep of
// Table 3 (20% of nodes failing).
func BenchmarkTable3Churn(b *testing.B) {
	sc := trace.Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		g := trace.NewGen(5)
		pool := sim.NewPool(5, g.NodeCapacities(sc.Nodes))
		cfg := core.PaperConfig()
		cfg.Spec = erasure.XOR23Spec
		st := core.NewStore(pool, cfg)
		for _, f := range g.Files(sc.Files) {
			st.StoreFile(f.Name, f.Size)
		}
		mean := float64(pool.TotalUsed) / float64(pool.Size())
		cs := core.NewChurnSim(st, 2*mean, 1.0)
		rng := g.Rand()
		for failed := 0; failed < sc.Nodes/5; failed++ {
			nodes := pool.Net.Nodes()
			_ = cs.FailNext(nodes[rng.Intn(len(nodes))].ID)
		}
	}
}

// BenchmarkFig11Bullet measures a full dissemination at the paper's
// 63-node, 1000-packet configuration (RanSub 8%).
func BenchmarkFig11Bullet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := multicast.DefaultConfig()
		cfg.Seed = int64(i + 1)
		s := multicast.NewSim(multicast.BinaryTree(5), cfg)
		if s.Run(5000); !s.Done() {
			b.Fatal("dissemination incomplete")
		}
	}
}

// BenchmarkFig12BulletWide measures dissemination at RanSub 16% (the
// Figure 12 configuration).
func BenchmarkFig12BulletWide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := multicast.DefaultConfig()
		cfg.RanSubFrac = 0.16
		cfg.Seed = int64(i + 1)
		s := multicast.NewSim(multicast.BinaryTree(5), cfg)
		if s.Run(5000); !s.Done() {
			b.Fatal("dissemination incomplete")
		}
	}
}

// BenchmarkTable4BigCopy measures the full Table 4 sweep on the
// 32-machine cluster model.
func BenchmarkTable4BigCopy(b *testing.B) {
	sizes := []int64{1, 2, 4, 8, 16, 32, 64, 128}
	bytes := make([]int64, len(sizes))
	for i, s := range sizes {
		bytes[i] = s * trace.GB
	}
	for i := 0; i < b.N; i++ {
		c := grid.NewCluster(int64(i+1), 32)
		rows := c.RunTable4(bytes)
		if !rows[len(rows)-1].Varying.OK {
			b.Fatal("128 GB varying-chunk copy failed")
		}
	}
}

// BenchmarkAblationChunkCap compares uncapped vs 256 MB-capped chunk
// sizing — the §4.5 trade-off.
func BenchmarkAblationChunkCap(b *testing.B) {
	sc := trace.Scaled(benchScale)
	for _, cap := range []int64{0, 256 * trace.MB} {
		name := "uncapped"
		if cap > 0 {
			name = "cap256MB"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := trace.NewGen(6)
				pool := sim.NewPool(6, g.NodeCapacities(sc.Nodes))
				cfg := core.DefaultConfig()
				cfg.MaxChunkSize = cap
				st := core.NewStore(pool, cfg)
				for _, f := range g.Files(sc.Files / 2) {
					st.StoreFile(f.Name, f.Size)
				}
			}
		})
	}
}

// BenchmarkIOLibRead measures the interposed read path end-to-end over
// the in-memory backend (the §5 data path without network costs).
func BenchmarkIOLibRead(b *testing.B) {
	fs := grid.NewMemFS()
	codec := &core.Codec{Code: erasure.MustXOR(2)}
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 8*trace.MB)
	rng.Read(data)
	blocks, cat, err := codec.EncodeFile(context.Background(), "bench.dat", data, core.PlanChunkSizes(int64(len(data)), 1*trace.MB))
	if err != nil {
		b.Fatal(err)
	}
	if err := fs.StoreBlocks(cat, blocks); err != nil {
		b.Fatal(err)
	}
	lib := grid.NewIOLib(fs, codec)
	fd, err := lib.Open("bench.dat")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1*trace.MB)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%7) * trace.MB
		if _, err := lib.ReadAt(fd, buf, off); err != nil {
			b.Fatal(err)
		}
	}
}
