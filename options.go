package peerstripe

import (
	"fmt"
	"time"

	"peerstripe/internal/node"
	"peerstripe/internal/wire"
)

// DefaultChunkCap bounds a streamed Store's planned chunk size when no
// WithChunkCap option is given. It is what keeps Store's memory
// footprint independent of the file size: one chunk plus its encoded
// blocks is all that is ever in flight.
const DefaultChunkCap = 16 << 20

// Option configures a Client at Dial time. Options are the only way to
// set knobs — a dialed client is immutable, so concurrent use can
// never race a reconfiguration.
type Option func(*options) error

// options collects the resolved Dial configuration.
type options struct {
	code     string
	schedule string
	cfg      node.Config
}

// maxChunk resolves the Store planning cap: the configured chunk cap,
// or DefaultChunkCap when unset (a streamed store must bound its
// per-chunk memory even when capacity probes would allow more).
func (o options) maxChunk() int64 {
	if o.cfg.ChunkCap > 0 {
		return o.cfg.ChunkCap
	}
	return DefaultChunkCap
}

func resolve(opts []Option) (options, error) {
	o := options{code: "xor"}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return o, err
		}
	}
	return o, nil
}

// WithCode selects the per-chunk erasure code by name: "null" (no
// redundancy), "xor" ((2,3) parity, the default), "online" (a rateless
// 64-block online code), or "rs" (an (8,2) Reed-Solomon stripe).
func WithCode(name string) Option {
	return func(o *options) error {
		switch name {
		case "null", "xor", "online", "rs":
			o.code = name
			return nil
		default:
			return fmt.Errorf("peerstripe: unknown erasure code %q (want null, xor, online, rs)", name)
		}
	}
}

// WithSchedule selects the online code's check schedule by name (e.g.
// "uniform", "windowed12", "banded25x4" — the default). Only valid
// with WithCode("online").
func WithSchedule(name string) Option {
	return func(o *options) error {
		o.schedule = name
		return nil
	}
}

// WithWorkers bounds parallel block transfers and per-file chunk
// coding. 0 (the default) selects GOMAXPROCS; 1 forces the fully
// sequential paths.
func WithWorkers(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("peerstripe: negative worker count %d", n)
		}
		o.cfg.Workers = n
		return nil
	}
}

// WithHedge sets how many extra blocks beyond the decode minimum a
// degraded read requests up front (default 1).
func WithHedge(extra int) Option {
	return func(o *options) error {
		if extra < 0 {
			return fmt.Errorf("peerstripe: negative hedge %d", extra)
		}
		o.cfg.Hedge = extra
		return nil
	}
}

// WithHedgeDelay sets the straggler cutoff before a read widens to
// every remaining block of a chunk (default 150ms). Negative disables
// the widening timer; failures still trigger replacements.
func WithHedgeDelay(d time.Duration) Option {
	return func(o *options) error {
		o.cfg.HedgeDelay = d
		return nil
	}
}

// WithTimeout bounds one RPC round trip (default 10s). Context
// deadlines compose with it: whichever expires first wins.
func WithTimeout(d time.Duration) Option {
	return func(o *options) error {
		if d < 0 {
			return fmt.Errorf("peerstripe: negative timeout %v", d)
		}
		o.cfg.Timeout = d
		return nil
	}
}

// WithChunkCap caps chunk sizes in bytes. It bounds both the
// capacity-probed sizing and Store's planned chunks (and therefore
// Store's peak memory). Default DefaultChunkCap for streamed stores.
func WithChunkCap(bytes int64) Option {
	return func(o *options) error {
		if bytes <= 0 {
			return fmt.Errorf("peerstripe: chunk cap must be positive, got %d", bytes)
		}
		o.cfg.ChunkCap = bytes
		return nil
	}
}

// WithSegment sets the wire streaming segment size in bytes (default
// wire.DefaultSegment, 4 MiB). Blocks larger than one segment move as
// bounded streaming exchanges. The segment must stay well under the
// 64 MiB frame limit.
func WithSegment(bytes int) Option {
	return func(o *options) error {
		if bytes <= 0 || bytes > wire.MaxFrame/2 {
			return fmt.Errorf("peerstripe: segment %d outside (0, %d]", bytes, wire.MaxFrame/2)
		}
		o.cfg.Segment = bytes
		return nil
	}
}

// WithCATReplicas sets the number of extra chunk-allocation-table
// copies kept on neighbor nodes (default 2).
func WithCATReplicas(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("peerstripe: negative CAT replica count %d", n)
		}
		if n == 0 {
			n = -1 // node.Config uses -1 for "none"
		}
		o.cfg.CATReplicas = n
		return nil
	}
}

// WithV1 forces the single-shot v1 wire transport (one dial per
// request, no multiplexing, no streaming) — the seed protocol, kept
// for mixed-version rings and comparisons.
func WithV1() Option {
	return func(o *options) error {
		o.cfg.V1 = true
		return nil
	}
}
