package peerstripe

import (
	"fmt"
	"time"

	"peerstripe/internal/node"
	"peerstripe/internal/wire"
)

// DefaultChunkCap bounds a streamed Store's planned chunk size when no
// WithChunkCap option is given. It is what keeps Store's memory
// footprint independent of the file size: a bounded pipeline of chunks
// plus their encoded blocks is all that is ever in flight.
const DefaultChunkCap = 16 << 20

// DefaultChunkCache bounds the client-wide decoded-chunk cache when no
// WithChunkCache option is given: 64 MiB, the same ceiling the old
// per-File 4-chunk cache reached at the default chunk cap — but now
// shared across every open File and request instead of duplicated per
// handle.
const DefaultChunkCache = 64 << 20

// Option configures a Client at Dial time. Options are the only way to
// set knobs — a dialed client is immutable, so concurrent use can
// never race a reconfiguration.
//
// The options group by concern:
//
//   - Coding: WithCode, WithSchedule, WithWorkers, WithChunkCap
//   - Caching: WithChunkCache
//   - Transport: WithTimeout, WithSegment, WithTransfers, WithV1
//   - Pipelining: WithPipelineDepth, WithStreamWindow, WithHedge,
//     WithHedgeDelay
//   - Placement/durability: WithCATReplicas
type Option func(*options) error

// options collects the resolved Dial configuration.
type options struct {
	code      string
	schedule  string
	cfg       node.Config
	cacheSet  bool
	cacheSize int64
}

// chunkCacheBytes resolves the decoded-chunk cache bound: the
// configured size, or DefaultChunkCache when unset. 0 disables
// storage; reads still singleflight.
func (o options) chunkCacheBytes() int64 {
	if o.cacheSet {
		return o.cacheSize
	}
	return DefaultChunkCache
}

// maxChunk resolves the Store planning cap: the configured chunk cap,
// or DefaultChunkCap when unset (a streamed store must bound its
// per-chunk memory even when capacity probes would allow more).
func (o options) maxChunk() int64 {
	if o.cfg.ChunkCap > 0 {
		return o.cfg.ChunkCap
	}
	return DefaultChunkCap
}

func resolve(opts []Option) (options, error) {
	o := options{code: "xor"}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return o, err
		}
	}
	return o, nil
}

// ---- Coding: what redundancy is computed, and with how much CPU ----

// WithCode selects the per-chunk erasure code by name: "null" (no
// redundancy), "xor" ((2,3) parity, the default), "online" (a rateless
// 64-block online code), or "rs" (an (8,2) Reed-Solomon stripe).
func WithCode(name string) Option {
	return func(o *options) error {
		switch name {
		case "null", "xor", "online", "rs":
			o.code = name
			return nil
		default:
			return fmt.Errorf("peerstripe: unknown erasure code %q (want null, xor, online, rs)", name)
		}
	}
}

// WithSchedule selects the online code's check schedule by name (e.g.
// "uniform", "windowed12", "banded25x4" — the default). Only valid
// with WithCode("online").
func WithSchedule(name string) Option {
	return func(o *options) error {
		o.schedule = name
		return nil
	}
}

// WithWorkers bounds per-file chunk-coding concurrency — CPU-bound
// work. 0 (the default) selects GOMAXPROCS; 1 forces the fully
// sequential paths end to end, including one-at-a-time transfers,
// unless WithTransfers overrides that side.
func WithWorkers(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("peerstripe: negative worker count %d", n)
		}
		o.cfg.Workers = n
		return nil
	}
}

// WithChunkCap caps chunk sizes in bytes. It bounds both the
// capacity-probed sizing and Store's planned chunks (and therefore
// Store's peak memory). Default DefaultChunkCap for streamed stores.
func WithChunkCap(bytes int64) Option {
	return func(o *options) error {
		if bytes <= 0 {
			return fmt.Errorf("peerstripe: chunk cap must be positive, got %d", bytes)
		}
		o.cfg.ChunkCap = bytes
		return nil
	}
}

// WithChunkCache bounds the client-wide decoded-chunk cache in bytes
// (default DefaultChunkCache). The cache is one LRU keyed on
// (name, chunk) shared by every File the client opens and by the
// ranged-read paths underneath, with per-chunk singleflight: a
// thundering herd on one cold chunk fetches and decodes it exactly
// once. 0 disables caching entirely — concurrent readers of one chunk
// still collapse into a single fetch, but nothing is retained.
// Inspect behavior with Client.CacheStats.
func WithChunkCache(bytes int64) Option {
	return func(o *options) error {
		if bytes < 0 {
			return fmt.Errorf("peerstripe: negative chunk cache bound %d", bytes)
		}
		o.cacheSet = true
		o.cacheSize = bytes
		return nil
	}
}

// ---- Transport: how bytes move on the wire ----

// WithTimeout bounds one RPC round trip (default 10s). Context
// deadlines compose with it: whichever expires first wins.
func WithTimeout(d time.Duration) Option {
	return func(o *options) error {
		if d < 0 {
			return fmt.Errorf("peerstripe: negative timeout %v", d)
		}
		o.cfg.Timeout = d
		return nil
	}
}

// WithSegment sets the wire streaming segment size in bytes (default
// wire.DefaultSegment, 4 MiB). Blocks larger than one segment move as
// bounded streaming exchanges. The segment must stay well under the
// 64 MiB frame limit.
func WithSegment(bytes int) Option {
	return func(o *options) error {
		if bytes <= 0 || bytes > wire.MaxFrame/2 {
			return fmt.Errorf("peerstripe: segment %d outside (0, %d]", bytes, wire.MaxFrame/2)
		}
		o.cfg.Segment = bytes
		return nil
	}
}

// WithTransfers bounds in-flight block transfers per operation.
// Network fan-out is wait-bound, not compute-bound, so the default is
// max(8, GOMAXPROCS) rather than the core count — a client on a small
// machine still keeps several RPCs on the wire instead of running the
// transfer loop in lockstep with the acks. 1 forces one transfer at a
// time.
func WithTransfers(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("peerstripe: negative transfer bound %d", n)
		}
		o.cfg.Transfers = n
		return nil
	}
}

// WithV1 forces the single-shot v1 wire transport (one dial per
// request, no multiplexing, no streaming) — the seed protocol, kept
// for mixed-version rings and comparisons.
func WithV1() Option {
	return func(o *options) error {
		o.cfg.V1 = true
		return nil
	}
}

// ---- Pipelining: how stages overlap and laggards are raced ----

// WithPipelineDepth bounds the chunks in flight during a streamed
// Store (default 2): the next chunk is read and encoded while the
// previous one's blocks are still uploading, so CPU and wire work
// overlap instead of alternating. 1 restores the lockstep
// read-encode-upload loop. Peak Store memory grows linearly with the
// depth (about depth × chunk size plus coding overhead).
func WithPipelineDepth(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("peerstripe: pipeline depth %d below 1", n)
		}
		o.cfg.PipelineDepth = n
		return nil
	}
}

// WithStreamWindow bounds in-flight segments per streamed block
// transfer (default 4). Windowed segments ride the out-of-order
// OpStoreWindow exchange on stores and ranged readahead on fetches, so
// one slow ack no longer serializes a stream; 1 restores the strictly
// in-order segment-per-ack exchange (and the pre-window wire
// behavior).
func WithStreamWindow(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("peerstripe: stream window %d below 1", n)
		}
		o.cfg.StreamWindow = n
		return nil
	}
}

// WithHedge sets how many extra blocks beyond the decode minimum a
// degraded read requests up front. The default 0 requests exactly the
// minimum and relies on per-source progress hedging (WithHedgeDelay)
// to replace stalled streams; raise it to pre-pay for expected
// failures at the cost of extra fetched bytes.
func WithHedge(extra int) Option {
	return func(o *options) error {
		if extra < 0 {
			return fmt.Errorf("peerstripe: negative hedge %d", extra)
		}
		o.cfg.Hedge = extra
		return nil
	}
}

// WithHedgeDelay sets the per-source stall cutoff of the hedged read
// path (default 150ms): an in-flight block stream that moves no bytes
// for a full delay is raced against a replacement from another holder,
// while slow-but-moving streams are left alone. Negative disables the
// stall timer; failures still trigger immediate replacements.
func WithHedgeDelay(d time.Duration) Option {
	return func(o *options) error {
		o.cfg.HedgeDelay = d
		return nil
	}
}

// ---- Placement and durability ----

// WithCATReplicas sets the number of extra chunk-allocation-table
// copies kept on neighbor nodes (default 2).
func WithCATReplicas(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("peerstripe: negative CAT replica count %d", n)
		}
		if n == 0 {
			n = -1 // node.Config uses -1 for "none"
		}
		o.cfg.CATReplicas = n
		return nil
	}
}
