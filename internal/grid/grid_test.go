package grid

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/trace"
)

func seedFile(t testing.TB, fs *MemFS, codec *core.Codec, name string, size int, chunk int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(size)))
	data := make([]byte, size)
	rng.Read(data)
	blocks, cat, err := codec.EncodeFile(context.Background(), name, data, core.PlanChunkSizes(int64(size), chunk))
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.StoreBlocks(cat, blocks); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestIOLibOpenReadClose(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.NewNull()}
	data := seedFile(t, fs, codec, "in.dat", 100000, 16384)
	lib := NewIOLib(fs, codec)

	fd, err := lib.Open("in.dat")
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	buf := make([]byte, 7000)
	for len(got) < len(data) {
		n, err := lib.Read(fd, buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential read mismatch")
	}
	if _, err := lib.Read(fd, buf); err == nil {
		t.Fatal("read past EOF succeeded")
	}
	if err := lib.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Read(fd, buf); err == nil {
		t.Fatal("read on closed descriptor succeeded")
	}
}

func TestIOLibReadAtAndSeek(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.MustXOR(2)}
	data := seedFile(t, fs, codec, "x.dat", 50000, 9000)
	lib := NewIOLib(fs, codec)
	fd, err := lib.Open("x.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if _, err := lib.ReadAt(fd, buf, 30000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[30000:30100]) {
		t.Fatal("ReadAt mismatch")
	}
	if err := lib.Seek(fd, 49990); err != nil {
		t.Fatal(err)
	}
	n, err := lib.Read(fd, buf)
	if err != nil || n != 10 {
		t.Fatalf("tail read n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf[:10], data[49990:]) {
		t.Fatal("tail read mismatch")
	}
	if _, err := lib.ReadAt(fd, buf, -5); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestIOLibWritePath(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.NewNull()}
	lib := NewIOLib(fs, codec)
	lib.PlanChunk = func(sz int64) []int64 { return core.PlanChunkSizes(sz, 10000) }

	fd, err := lib.Create("out.dat")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("peerstripe!"), 3000)
	if _, err := lib.Write(fd, payload[:15000]); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Write(fd, payload[15000:]); err != nil {
		t.Fatal(err)
	}
	if err := lib.Close(fd); err != nil {
		t.Fatal(err)
	}
	// Read it back through a second descriptor.
	rfd, err := lib.Open("out.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := lib.ReadAt(rfd, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("write/readback mismatch")
	}
	cat, err := fs.LoadCAT("out.dat")
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumChunks() != 4 { // 33000 bytes at 10000/chunk
		t.Fatalf("chunks = %d, want 4", cat.NumChunks())
	}
}

func TestIOLibCache(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.NewNull()}
	seedFile(t, fs, codec, "c.dat", 1000, 1000)
	lib := NewIOLib(fs, codec)
	fd1, _ := lib.Open("c.dat")
	lib.Close(fd1)
	fd2, _ := lib.Open("c.dat")
	lib.Close(fd2)
	hits, misses := lib.CacheStats()
	if misses != 1 || hits != 1 {
		t.Fatalf("cache hits=%d misses=%d, want 1/1", hits, misses)
	}
	lib.InvalidateCache("c.dat")
	fd3, _ := lib.Open("c.dat")
	lib.Close(fd3)
	if _, misses := lib.CacheStats(); misses != 2 {
		t.Fatal("invalidation did not force a fresh lookup")
	}
}

// TestIOLibChunkCache checks that repeated reads within a chunk decode
// once: after the first ReadAt, re-reads hit the decoded-chunk LRU and
// trigger no further block fetches.
func TestIOLibChunkCache(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.MustXOR(2)}
	data := seedFile(t, fs, codec, "lru.dat", 64000, 16000)
	lib := NewIOLib(fs, codec)
	fd, err := lib.Open("lru.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	fetchTotal := func() int {
		n := 0
		for _, c := range fs.FetchCount {
			n += c
		}
		return n
	}
	if _, err := lib.ReadAt(fd, buf, 100); err != nil {
		t.Fatal(err)
	}
	after1 := fetchTotal()
	if after1 == 0 {
		t.Fatal("first read fetched nothing")
	}
	for i := 0; i < 10; i++ {
		if _, err := lib.ReadAt(fd, buf, int64(100+i*700)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[100+i*700:1100+i*700]) {
			t.Fatalf("cached read %d mismatch", i)
		}
	}
	if got := fetchTotal(); got != after1 {
		t.Fatalf("re-reads inside a cached chunk fetched %d more blocks", got-after1)
	}
	hits, misses := lib.ChunkCacheStats()
	if hits != 10 || misses != 1 {
		t.Fatalf("chunk cache hits=%d misses=%d, want 10/1", hits, misses)
	}
	// Invalidation drops the decoded chunk too.
	lib.InvalidateCache("lru.dat")
	if _, err := lib.ReadAt(fd, buf, 100); err != nil {
		t.Fatal(err)
	}
	if got := fetchTotal(); got == after1 {
		t.Fatal("invalidation left the decoded chunk cached")
	}
}

// TestIOLibChunkCacheEvicts bounds the LRU: touching more chunks than
// its capacity evicts the oldest, and a disabled cache never hits.
func TestIOLibChunkCacheEvicts(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.NewNull()}
	seedFile(t, fs, codec, "ev.dat", 40000, 4000) // 10 chunks
	lib := NewIOLib(fs, codec)
	lib.ChunkCacheSize = 2
	fd, _ := lib.Open("ev.dat")
	buf := make([]byte, 100)
	for _, off := range []int64{0, 4000, 8000, 0} { // third read evicts chunk 0
		if _, err := lib.ReadAt(fd, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := lib.ChunkCacheStats(); hits != 0 || misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 0/4 after eviction", hits, misses)
	}

	off := NewIOLib(fs, codec)
	off.ChunkCacheSize = -1
	fd2, _ := off.Open("ev.dat")
	for i := 0; i < 3; i++ {
		if _, err := off.ReadAt(fd2, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := off.ChunkCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded hits=%d misses=%d", hits, misses)
	}
}

// TestIOLibWriteInvalidatesChunkCache overwrites a file through the
// write path and checks readers see the new contents.
func TestIOLibWriteInvalidatesChunkCache(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.NewNull()}
	lib := NewIOLib(fs, codec)
	lib.PlanChunk = func(sz int64) []int64 { return core.PlanChunkSizes(sz, 1000) }

	writeFile := func(payload []byte) {
		fd, err := lib.Create("rw.dat")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lib.Write(fd, payload); err != nil {
			t.Fatal(err)
		}
		if err := lib.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	v1 := bytes.Repeat([]byte{1}, 2000)
	writeFile(v1)
	fd, _ := lib.Open("rw.dat")
	buf := make([]byte, 2000)
	if _, err := lib.ReadAt(fd, buf, 0); err != nil {
		t.Fatal(err)
	}
	v2 := bytes.Repeat([]byte{2}, 2000)
	writeFile(v2)
	fd2, _ := lib.Open("rw.dat")
	if _, err := lib.ReadAt(fd2, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, v2) {
		t.Fatal("read after rewrite served stale cached chunk")
	}
}

// TestIOLibChunkCacheStaleDescriptor is the regression test for cache
// poisoning: a reader holding a CAT from before a rewrite must not
// leave a wrong-length chunk in the LRU for fresh readers to slice.
func TestIOLibChunkCacheStaleDescriptor(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.NewNull()}
	lib := NewIOLib(fs, codec)
	lib.PlanChunk = func(sz int64) []int64 { return core.PlanChunkSizes(sz, 1000) }

	writeFile := func(payload []byte) {
		fd, err := lib.Create("stale.dat")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lib.Write(fd, payload); err != nil {
			t.Fatal(err)
		}
		if err := lib.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(bytes.Repeat([]byte{1}, 500)) // v1: chunk 0 is 500 bytes
	staleFD, err := lib.Open("stale.dat")
	if err != nil {
		t.Fatal(err)
	}
	v2 := bytes.Repeat([]byte{2}, 1000) // v2: chunk 0 is 1000 bytes
	writeFile(v2)
	// The stale descriptor reads through its v1 CAT, repopulating the
	// LRU with a 500-byte decode of v2's chunk 0.
	buf := make([]byte, 500)
	if _, err := lib.ReadAt(staleFD, buf, 0); err != nil {
		t.Logf("stale read errored (acceptable): %v", err)
	}
	// A fresh reader must get all 1000 v2 bytes — not panic on a short
	// cached chunk, not see v1 data.
	freshFD, err := lib.Open("stale.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	if _, err := lib.ReadAt(freshFD, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("fresh reader served poisoned cache entry")
	}
}

func TestIOLibMissingFile(t *testing.T) {
	lib := NewIOLib(NewMemFS(), &core.Codec{Code: erasure.NewNull()})
	if _, err := lib.Open("ghost"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestIOLibToleratesDroppedBlockWithCoding(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.MustXOR(2)}
	data := seedFile(t, fs, codec, "f.dat", 30000, 30000)
	fs.DropBlock(core.BlockName("f.dat", 0, 0)) // lose a data block
	lib := NewIOLib(fs, codec)
	fd, err := lib.Open("f.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := lib.ReadAt(fd, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode with dropped block mismatch")
	}
}

func TestSchedulerRunsJobs(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.NewNull()}
	seedFile(t, fs, codec, "src.dat", 50000, 8192)
	lib := NewIOLib(fs, codec)
	sched := NewScheduler(lib, 4)
	for i := 0; i < 6; i++ {
		sched.Submit(BigCopyJob("src.dat", fmt.Sprintf("dst%d.dat", i), 4096))
	}
	if sched.Queued() != 6 {
		t.Fatalf("queued = %d", sched.Queued())
	}
	results := sched.Drain()
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s failed: %v", r.Job, r.Err)
		}
	}
	if got := len(fs.Files()); got != 7 { // src + 6 copies
		t.Fatalf("files = %d", got)
	}
}

func TestSchedulerRecoversPanics(t *testing.T) {
	lib := NewIOLib(NewMemFS(), &core.Codec{Code: erasure.NewNull()})
	sched := NewScheduler(lib, 2)
	sched.Submit(Job{Name: "boom", Run: func(*IOLib) error { panic("kaboom") }})
	results := sched.Drain()
	if len(results) != 1 || results[0].Err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestTimeModelCalibration(t *testing.T) {
	// The model must land within a few percent of Table 4's published
	// cells (the calibration targets; see EXPERIMENTS.md).
	m := DefaultTimeModel()
	within := func(got, want, tolPct float64) bool {
		return got > want*(1-tolPct/100) && got < want*(1+tolPct/100)
	}
	if got := m.TimeWhole(1 * trace.GB); !within(got, 151.0, 2) {
		t.Errorf("1 GB whole = %.1f, paper 151.0", got)
	}
	if got := m.TimeWhole(8 * trace.GB); !within(got, 1051.2, 3) {
		t.Errorf("8 GB whole = %.1f, paper 1051.2", got)
	}
	if got := m.TimeFixed(1*trace.GB, 256); !within(got, 169.0, 5) {
		t.Errorf("1 GB fixed = %.1f, paper 169.0", got)
	}
	if got := m.TimeVarying(1*trace.GB, 1); !within(got, 176.4, 3) {
		t.Errorf("1 GB varying = %.1f, paper 176.4", got)
	}
	if got := m.TimeVarying(8*trace.GB, 2); !within(got, 1076.6, 3) {
		t.Errorf("8 GB varying = %.1f, paper 1076.6", got)
	}
	// 128 GB fixed-chunk lookup overhead ≈ paper's 4456 s over base.
	ovh := m.TimeFixed(128*trace.GB, 32768) - m.TimeWhole(128*trace.GB)
	if ovh < 4000 || ovh > 5000 {
		t.Errorf("128 GB fixed lookup overhead = %.0f, paper ≈4456", ovh)
	}
}

func TestTimeModelMonotonicity(t *testing.T) {
	m := DefaultTimeModel()
	if m.TimeFixed(1*trace.GB, 512) <= m.TimeFixed(1*trace.GB, 256) {
		t.Error("fixed cost not increasing in chunks")
	}
	if m.TimeVarying(1*trace.GB, 4) <= m.TimeWhole(1*trace.GB) {
		t.Error("varying pays no overhead")
	}
	// The Table 4 crossover: varying is slower than fixed at 1 GB but
	// faster at 8 GB.
	if m.TimeVarying(1*trace.GB, 1) <= m.TimeFixed(1*trace.GB, 256) {
		t.Error("1 GB: varying should be slower than fixed (paper crossover)")
	}
	if m.TimeVarying(8*trace.GB, 2) >= m.TimeFixed(8*trace.GB, 2048) {
		t.Error("8 GB: varying should be faster than fixed")
	}
}

func TestRunBigCopySchemes(t *testing.T) {
	c := NewCluster(1, 32)
	// 1 GB: all three succeed.
	for _, sch := range []Scheme{WholeFile, FixedChunks, VaryingChunks} {
		r := c.RunBigCopy(sch, 1*trace.GB)
		if !r.OK {
			t.Fatalf("%v failed for 1 GB", sch)
		}
		if r.Seconds <= 0 {
			t.Fatalf("%v reported nonpositive time", sch)
		}
	}
	// 16 GB: whole-file cannot fit on any single 2–15 GB machine.
	if r := c.RunBigCopy(WholeFile, 16*trace.GB); r.OK {
		t.Fatal("whole-file stored 16 GB on a <=15 GB machine")
	}
	if r := c.RunBigCopy(VaryingChunks, 16*trace.GB); !r.OK {
		t.Fatal("varying-chunks failed for 16 GB")
	}
	// Chunk counts: fixed-chunk count is size/4MB; varying is tiny.
	rf := c.RunBigCopy(FixedChunks, 1*trace.GB)
	rv := c.RunBigCopy(VaryingChunks, 1*trace.GB)
	if rf.Chunks != 256 {
		t.Fatalf("fixed chunks = %d, want 256", rf.Chunks)
	}
	if rv.Chunks >= rf.Chunks/10 {
		t.Fatalf("varying chunks = %d, not far below fixed %d", rv.Chunks, rf.Chunks)
	}
}

func TestRunTable4Shape(t *testing.T) {
	c := NewCluster(2, 32)
	sizes := []int64{1 * trace.GB, 8 * trace.GB, 32 * trace.GB}
	rows := c.RunTable4(sizes)
	if len(rows) != 3 {
		t.Fatal("row count wrong")
	}
	// At 8 GB, varying overhead must undercut fixed (Table 4's trend).
	r8 := rows[1]
	if !r8.Whole.OK || !r8.Fixed.OK || !r8.Varying.OK {
		t.Fatalf("8 GB row has failures: %+v", r8)
	}
	if r8.OverheadPct(r8.Varying) >= r8.OverheadPct(r8.Fixed) {
		t.Fatalf("varying overhead %.1f%% >= fixed %.1f%% at 8 GB",
			r8.OverheadPct(r8.Varying), r8.OverheadPct(r8.Fixed))
	}
	// At 32 GB whole-file is N/A, chunked schemes still work.
	r32 := rows[2]
	if r32.Whole.OK {
		t.Fatal("whole-file succeeded at 32 GB")
	}
	if !r32.Fixed.OK || !r32.Varying.OK {
		t.Fatal("chunked schemes failed at 32 GB")
	}
	if r32.OverheadPct(r32.Fixed) != -1 {
		t.Fatal("overhead should be N/A when whole-file failed")
	}
	// Varying-chunks remains faster than fixed at 32 GB.
	if r32.Varying.Seconds >= r32.Fixed.Seconds {
		t.Fatal("varying not faster than fixed at 32 GB")
	}
}

func TestBigCopyJobMissingSource(t *testing.T) {
	lib := NewIOLib(NewMemFS(), &core.Codec{Code: erasure.NewNull()})
	sched := NewScheduler(lib, 1)
	sched.Submit(BigCopyJob("missing.bin", "out.bin", 1024))
	results := sched.Drain()
	if len(results) != 1 || results[0].Err == nil {
		t.Fatal("copy of missing source did not error")
	}
}

func TestSchedulerDrainEmpty(t *testing.T) {
	lib := NewIOLib(NewMemFS(), &core.Codec{Code: erasure.NewNull()})
	sched := NewScheduler(lib, 2)
	if got := sched.Drain(); len(got) != 0 {
		t.Fatalf("empty drain returned %d results", len(got))
	}
}

func TestIOLibWriteOnReadFD(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.NewNull()}
	seedFile(t, fs, codec, "ro.dat", 100, 100)
	lib := NewIOLib(fs, codec)
	fd, err := lib.Open("ro.dat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Write(fd, []byte("x")); err == nil {
		t.Fatal("write on read descriptor accepted")
	}
	wfd, _ := lib.Create("w.dat")
	if _, err := lib.Read(wfd, make([]byte, 4)); err == nil {
		t.Fatal("read on write descriptor accepted")
	}
}

func TestIOLibDoubleClose(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.NewNull()}
	seedFile(t, fs, codec, "dc.dat", 100, 100)
	lib := NewIOLib(fs, codec)
	fd, _ := lib.Open("dc.dat")
	if err := lib.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := lib.Close(fd); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestIOLibSeekErrors(t *testing.T) {
	lib := NewIOLib(NewMemFS(), &core.Codec{Code: erasure.NewNull()})
	if err := lib.Seek(99, 0); err == nil {
		t.Fatal("seek on bad fd accepted")
	}
}

func TestClusterWholeFileUsesLargestMachine(t *testing.T) {
	c := NewCluster(11, 32)
	var largest int64
	for _, cap := range c.Caps {
		if cap > largest {
			largest = cap
		}
	}
	// Just below the largest machine: succeeds.
	if r := c.RunBigCopy(WholeFile, largest-1); !r.OK {
		t.Fatal("whole-file failed below largest machine capacity")
	}
	// Just above: fails.
	if r := c.RunBigCopy(WholeFile, largest+1); r.OK {
		t.Fatal("whole-file succeeded above largest machine capacity")
	}
}

func TestIOLibConcurrentReaders(t *testing.T) {
	fs := NewMemFS()
	codec := &core.Codec{Code: erasure.MustXOR(2)}
	data := seedFile(t, fs, codec, "conc.dat", 200000, 16384)
	lib := NewIOLib(fs, codec)

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				fd, err := lib.Open("conc.dat")
				if err != nil {
					errs <- err
					return
				}
				off := int64((w*17 + i*7919) % 190000)
				buf := make([]byte, 512)
				if _, err := lib.ReadAt(fd, buf, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, data[off:off+512]) {
					errs <- fmt.Errorf("worker %d: data mismatch at %d", w, off)
					return
				}
				if err := lib.Close(fd); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if WholeFile.String() == "" || FixedChunks.String() == "" || VaryingChunks.String() == "" {
		t.Fatal("empty scheme name")
	}
	if Scheme(99).String() == "" {
		t.Fatal("unknown scheme not named")
	}
}
