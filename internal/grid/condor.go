package grid

import (
	"fmt"
	"sync"
)

// Job is one unit of work submitted to the cycle-sharing pool, in the
// mould of a Condor job: it runs on some machine and performs its I/O
// through the interposed library handed to it.
type Job struct {
	// Name identifies the job in results.
	Name string
	// Run is the job body. It receives the interposed I/O library the
	// execution machine preloads (Figure 6) and returns the job error.
	Run func(io *IOLib) error
}

// JobResult reports one completed job.
type JobResult struct {
	Job     string
	Machine int
	Err     error
}

// Scheduler is a minimal stand-in for the Condor matchmaker: jobs queue
// up and a fixed set of worker machines executes them, each worker
// preloading the shared I/O library. It exists so examples and tests
// can exercise the full submit→execute→redirected-I/O path of §6.4
// in-process.
type Scheduler struct {
	lib      *IOLib
	machines int

	mu      sync.Mutex
	queue   []Job
	results []JobResult
	running bool
}

// NewScheduler builds a scheduler over the given number of machines,
// all mounting the same storage pool through lib.
func NewScheduler(lib *IOLib, machines int) *Scheduler {
	if machines < 1 {
		machines = 1
	}
	return &Scheduler{lib: lib, machines: machines}
}

// Submit queues a job.
func (s *Scheduler) Submit(j Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = append(s.queue, j)
}

// Queued returns the number of jobs awaiting execution.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Drain runs all queued jobs across the machine pool and returns their
// results in completion order.
func (s *Scheduler) Drain() []JobResult {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return nil
	}
	s.running = true
	jobs := s.queue
	s.queue = nil
	s.results = s.results[:0]
	s.mu.Unlock()

	work := make(chan int)
	var wg sync.WaitGroup
	for m := 0; m < s.machines; m++ {
		wg.Add(1)
		go func(machine int) {
			defer wg.Done()
			for ji := range work {
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							err = fmt.Errorf("grid: job %q panicked: %v", jobs[ji].Name, r)
						}
					}()
					return jobs[ji].Run(s.lib)
				}()
				s.mu.Lock()
				s.results = append(s.results, JobResult{Job: jobs[ji].Name, Machine: machine, Err: err})
				s.mu.Unlock()
			}
		}(m)
	}
	for ji := range jobs {
		work <- ji
	}
	close(work)
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running = false
	return append([]JobResult(nil), s.results...)
}

// BigCopyJob builds the §6.4 benchmark application as a Job: it opens
// src through the interposed library, streams it, and writes the copy
// back into the shared storage as dst.
func BigCopyJob(src, dst string, bufSize int) Job {
	if bufSize <= 0 {
		bufSize = 1 << 20
	}
	return Job{
		Name: fmt.Sprintf("bigCopy(%s->%s)", src, dst),
		Run: func(io *IOLib) error {
			in, err := io.Open(src)
			if err != nil {
				return err
			}
			defer io.Close(in)
			out, err := io.Create(dst)
			if err != nil {
				return err
			}
			buf := make([]byte, bufSize)
			cat, _ := io.fs.LoadCAT(src)
			remaining := cat.FileSize()
			for remaining > 0 {
				n, err := io.Read(in, buf)
				if err != nil {
					return err
				}
				if _, err := io.Write(out, buf[:n]); err != nil {
					return err
				}
				remaining -= int64(n)
			}
			return io.Close(out)
		},
	}
}
