// Package grid is the desktop-grid substrate of the §5 implementation
// and the §6.4 Condor case study: an interposed I/O library that
// redirects application Open/Read/Write/Close calls into PeerStripe
// storage through a lookup module with a location cache, a minimal
// cycle-sharing job scheduler standing in for Condor, and the bigCopy
// benchmark with its calibrated transfer-time model.
//
// Substitution note (see DESIGN.md): the paper interposes on libc via
// LD_PRELOAD from 259 lines of C; Go programs cannot override libc
// symbols, so applications call this library's identical Open/Read/
// Write/Close surface directly. The measured machinery — lookup module,
// chunk location cache, redirection — is the same.
package grid

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"sync"

	"peerstripe/internal/core"
)

// FS is the storage backend the I/O library redirects to. The in-memory
// MemFS backs tests and examples; internal/node's live client backs a
// real TCP ring.
type FS interface {
	// LoadCAT fetches a stored file's chunk allocation table.
	LoadCAT(file string) (*core.CAT, error)
	// FetchBlock fetches one named encoded block.
	FetchBlock(name string) ([]byte, error)
	// StoreBlocks stores a file's encoded blocks and CAT.
	StoreBlocks(cat *core.CAT, blocks []core.NamedBlock) error
}

// IOLib redirects file I/O into the shared storage pool (§5, Figure 6).
// It maintains POSIX-like descriptor state and the lookup module's
// cache of chunk locations; cache hits skip the p2p lookup. A small LRU
// of decoded chunks sits under the read path so repeated reads within a
// chunk skip the fetch-and-decode entirely.
type IOLib struct {
	fs    FS
	codec *core.Codec
	// PlanChunk sizes writes at Close time; nil uses a 64 MB default.
	PlanChunk func(fileSize int64) []int64
	// ChunkCacheSize is the decoded-chunk LRU capacity in chunks. 0
	// selects the default (8); negative disables the cache. Set before
	// the first read.
	ChunkCacheSize int
	// ChunkCacheBytes bounds the LRU's total decoded bytes. 0 selects
	// the default (64 MB); chunks larger than the budget are served
	// but never cached. Set before the first read.
	ChunkCacheBytes int64

	mu      sync.Mutex
	nextFD  int
	fds     map[int]*fdState
	cache   map[string]*core.CAT // file -> CAT (the location cache)
	catHits int
	catMiss int

	chunkMu    sync.Mutex
	chunkLRU   map[chunkKey]*list.Element
	chunkOrder *list.List // front = most recently used *chunkEntry
	chunkBytes int64      // decoded bytes currently cached
	chunkHits  int
	chunkMiss  int
}

// chunkKey identifies one decoded chunk in the LRU.
type chunkKey struct {
	file string
	ci   int
}

type chunkEntry struct {
	key  chunkKey
	data []byte
}

// Decoded-chunk LRU defaults when the knobs are left zero.
const (
	defaultChunkCache      = 8
	defaultChunkCacheBytes = 64 << 20
)

type fdState struct {
	name    string
	offset  int64
	cat     *core.CAT // nil for write-mode descriptors
	writing bool
	buf     []byte
}

// NewIOLib builds an interposition library over the backend using the
// given per-chunk erasure code.
func NewIOLib(fs FS, codec *core.Codec) *IOLib {
	return &IOLib{
		fs:         fs,
		codec:      codec,
		fds:        make(map[int]*fdState),
		cache:      make(map[string]*core.CAT),
		chunkLRU:   make(map[chunkKey]*list.Element),
		chunkOrder: list.New(),
	}
}

// CacheStats reports lookup-cache hits and misses.
func (l *IOLib) CacheStats() (hits, misses int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.catHits, l.catMiss
}

// ChunkCacheStats reports decoded-chunk cache hits and misses.
func (l *IOLib) ChunkCacheStats() (hits, misses int) {
	l.chunkMu.Lock()
	defer l.chunkMu.Unlock()
	return l.chunkHits, l.chunkMiss
}

// InvalidateCache drops cached locations and decoded chunks
// (stale-cache handling: the lookup module falls back to the overlay on
// the next access, §5).
func (l *IOLib) InvalidateCache(file string) {
	l.mu.Lock()
	delete(l.cache, file)
	l.mu.Unlock()
	l.dropChunks(file)
}

// dropChunks evicts every decoded chunk of the file from the LRU.
func (l *IOLib) dropChunks(file string) {
	l.chunkMu.Lock()
	defer l.chunkMu.Unlock()
	for key, el := range l.chunkLRU {
		if key.file == file {
			l.removeChunkLocked(el)
		}
	}
}

// removeChunkLocked evicts one entry; chunkMu must be held.
func (l *IOLib) removeChunkLocked(el *list.Element) {
	e := el.Value.(*chunkEntry)
	l.chunkOrder.Remove(el)
	delete(l.chunkLRU, e.key)
	l.chunkBytes -= int64(len(e.data))
}

// chunkCap resolves the LRU capacity limits.
func (l *IOLib) chunkCap() (entries int, bytes int64) {
	entries = l.ChunkCacheSize
	if entries == 0 {
		entries = defaultChunkCache
	}
	bytes = l.ChunkCacheBytes
	if bytes == 0 {
		bytes = defaultChunkCacheBytes
	}
	return entries, bytes
}

// chunkData returns chunk ci of the file, from the LRU when possible.
// The returned slice is shared cache state: callers copy out of it and
// never mutate it.
func (l *IOLib) chunkData(cat *core.CAT, ci int) ([]byte, error) {
	maxEntries, maxBytes := l.chunkCap()
	if maxEntries < 1 {
		return l.codec.DecodeChunk(context.Background(), cat, ci, l.fetch)
	}
	want := cat.Row(ci).Len()
	key := chunkKey{file: cat.File, ci: ci}
	l.chunkMu.Lock()
	if el, ok := l.chunkLRU[key]; ok {
		// A hit must match this CAT's chunk extent; a reader holding a
		// stale CAT (descriptor opened before a rewrite) may have
		// populated the entry at a different length.
		if data := el.Value.(*chunkEntry).data; int64(len(data)) == want {
			l.chunkOrder.MoveToFront(el)
			l.chunkHits++
			l.chunkMu.Unlock()
			return data, nil
		}
		l.removeChunkLocked(el)
	}
	l.chunkMiss++
	l.chunkMu.Unlock()
	data, err := l.codec.DecodeChunk(context.Background(), cat, ci, l.fetch)
	if err != nil {
		return nil, err
	}
	l.chunkMu.Lock()
	if _, ok := l.chunkLRU[key]; !ok && int64(len(data)) <= maxBytes {
		l.chunkLRU[key] = l.chunkOrder.PushFront(&chunkEntry{key: key, data: data})
		l.chunkBytes += int64(len(data))
		for l.chunkOrder.Len() > maxEntries || l.chunkBytes > maxBytes {
			l.removeChunkLocked(l.chunkOrder.Back())
		}
	}
	l.chunkMu.Unlock()
	return data, nil
}

// readRange assembles [off, off+length) from cached or freshly decoded
// chunks; the slicing arithmetic lives in core.SliceRange.
func (l *IOLib) readRange(cat *core.CAT, off, length int64) ([]byte, error) {
	return core.SliceRange(cat, off, length, func(ci int) ([]byte, error) {
		return l.chunkData(cat, ci)
	})
}

// Open opens a stored file for reading and returns a descriptor.
func (l *IOLib) Open(name string) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cat, ok := l.cache[name]
	if ok {
		l.catHits++
	} else {
		l.catMiss++
		var err error
		cat, err = l.fs.LoadCAT(name)
		if err != nil {
			return -1, fmt.Errorf("grid: open %q: %w", name, err)
		}
		l.cache[name] = cat
	}
	fd := l.allocFD()
	l.fds[fd] = &fdState{name: name, cat: cat}
	return fd, nil
}

// Create opens a new file for writing.
func (l *IOLib) Create(name string) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fd := l.allocFD()
	l.fds[fd] = &fdState{name: name, writing: true}
	return fd, nil
}

func (l *IOLib) allocFD() int {
	l.nextFD++
	return l.nextFD + 2 // leave 0,1,2 for stdio, as a libc shim would
}

// Read reads up to len(p) bytes at the descriptor's offset, fetching
// only the chunks the range touches.
func (l *IOLib) Read(fd int, p []byte) (int, error) {
	l.mu.Lock()
	st, ok := l.fds[fd]
	l.mu.Unlock()
	if !ok || st.writing {
		return 0, fmt.Errorf("grid: read: bad descriptor %d", fd)
	}
	if st.offset >= st.cat.FileSize() {
		return 0, fmt.Errorf("grid: read %q: EOF", st.name)
	}
	n := int64(len(p))
	if rem := st.cat.FileSize() - st.offset; n > rem {
		n = rem
	}
	data, err := l.readRange(st.cat, st.offset, n)
	if err != nil {
		return 0, err
	}
	copy(p, data)
	st.offset += int64(len(data))
	return len(data), nil
}

// ReadAt reads from an explicit offset without moving the descriptor.
func (l *IOLib) ReadAt(fd int, p []byte, off int64) (int, error) {
	l.mu.Lock()
	st, ok := l.fds[fd]
	l.mu.Unlock()
	if !ok || st.writing {
		return 0, fmt.Errorf("grid: readat: bad descriptor %d", fd)
	}
	if off < 0 || off >= st.cat.FileSize() {
		return 0, fmt.Errorf("grid: readat %q: offset %d out of range", st.name, off)
	}
	n := int64(len(p))
	if rem := st.cat.FileSize() - off; n > rem {
		n = rem
	}
	data, err := l.readRange(st.cat, off, n)
	if err != nil {
		return 0, err
	}
	copy(p, data)
	return len(data), nil
}

// Seek positions the descriptor (whence: 0 = absolute only, matching
// what bigCopy needs).
func (l *IOLib) Seek(fd int, off int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.fds[fd]
	if !ok {
		return fmt.Errorf("grid: seek: bad descriptor %d", fd)
	}
	if off < 0 {
		return fmt.Errorf("grid: seek: negative offset")
	}
	st.offset = off
	return nil
}

// Write appends to a write-mode descriptor. Data is buffered and
// striped into the pool at Close (the local instance batches I/O
// before the store, §5).
func (l *IOLib) Write(fd int, p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.fds[fd]
	if !ok || !st.writing {
		return 0, fmt.Errorf("grid: write: bad descriptor %d", fd)
	}
	st.buf = append(st.buf, p...)
	return len(p), nil
}

// Close releases the descriptor; for write-mode descriptors it encodes
// and stores the buffered file.
func (l *IOLib) Close(fd int) error {
	l.mu.Lock()
	st, ok := l.fds[fd]
	if ok {
		delete(l.fds, fd)
	}
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("grid: close: bad descriptor %d", fd)
	}
	if !st.writing {
		return nil
	}
	plan := l.PlanChunk
	if plan == nil {
		plan = func(sz int64) []int64 { return core.PlanChunkSizes(sz, 64<<20) }
	}
	blocks, cat, err := l.codec.EncodeFile(context.Background(), st.name, st.buf, plan(int64(len(st.buf))))
	if err != nil {
		return fmt.Errorf("grid: close %q: %w", st.name, err)
	}
	if err := l.fs.StoreBlocks(cat, blocks); err != nil {
		return fmt.Errorf("grid: close %q: %w", st.name, err)
	}
	l.mu.Lock()
	l.cache[st.name] = cat
	l.mu.Unlock()
	l.dropChunks(st.name) // the file's contents changed
	return nil
}

// fetch adapts FS.FetchBlock to the codec's FetchFunc.
func (l *IOLib) fetch(name string) ([]byte, bool) {
	d, err := l.fs.FetchBlock(name)
	if err != nil {
		return nil, false
	}
	return d, true
}

// MemFS is an in-memory FS for tests, examples, and single-process
// demos.
type MemFS struct {
	mu     sync.Mutex
	cats   map[string]*core.CAT
	blocks map[string][]byte
	// FetchCount tracks per-block fetch totals for cache assertions.
	FetchCount map[string]int
}

// NewMemFS returns an empty in-memory backend.
func NewMemFS() *MemFS {
	return &MemFS{
		cats:       make(map[string]*core.CAT),
		blocks:     make(map[string][]byte),
		FetchCount: make(map[string]int),
	}
}

// LoadCAT implements FS.
func (m *MemFS) LoadCAT(file string) (*core.CAT, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cats[file]
	if !ok {
		return nil, fmt.Errorf("memfs: no CAT for %q", file)
	}
	return c, nil
}

// FetchBlock implements FS.
func (m *MemFS) FetchBlock(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.blocks[name]
	if !ok {
		return nil, fmt.Errorf("memfs: no block %q", name)
	}
	m.FetchCount[name]++
	return d, nil
}

// StoreBlocks implements FS.
func (m *MemFS) StoreBlocks(cat *core.CAT, blocks []core.NamedBlock) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cats[cat.File] = cat
	for _, b := range blocks {
		m.blocks[b.Name] = b.Data
	}
	return nil
}

// DropBlock removes a block (failure injection for tests).
func (m *MemFS) DropBlock(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blocks, name)
}

// Files lists stored file names, sorted.
func (m *MemFS) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.cats))
	for f := range m.cats {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
