package grid

import (
	"fmt"
	"math"

	"peerstripe/internal/baseline"
	"peerstripe/internal/core"
	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

// Scheme identifies the three storage strategies Table 4 compares.
type Scheme int

// The §6.4 schemes.
const (
	// WholeFile is original Condor behaviour: the output file lands on
	// one machine's disk in its entirety.
	WholeFile Scheme = iota
	// FixedChunks is the CFS-like strategy with 4 MB blocks.
	FixedChunks
	// VaryingChunks is PeerStripe.
	VaryingChunks
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case WholeFile:
		return "whole-file"
	case FixedChunks:
		return "fixed-chunks"
	case VaryingChunks:
		return "varying-chunks"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// TimeModel converts placement outcomes into bigCopy wall-clock
// estimates. The overhead structure follows §6.4's analysis — "a fixed
// component due to I/O redirection and code interposition, and a
// variable overhead due to p2p look-up operations ... directly
// proportional to the number of chunks created" — with constants
// fitted to Table 4's measured rows (derivation in EXPERIMENTS.md):
//
//   - base copy time is JobOverhead + size/Bandwidth (the paper's
//     whole-file column is 19.6 s + 131.4 s/GB to within 1%);
//   - the varying-chunk scheme pays a constant interposition + probe
//     cost (the paper's overhead is ≈25.4 s at every size) plus a
//     small per-chunk term;
//   - the fixed-chunk scheme pays a per-chunk lookup cost that rises
//     from L0 toward LMax with queueing pressure (saturating at ~1000
//     outstanding chunks), matching the paper's 70→136 ms/chunk drift
//     between the 1 GB and 128 GB rows.
type TimeModel struct {
	// Bandwidth is bytes/second of the Condor transfer path.
	Bandwidth float64
	// JobOverhead is Condor submission/dispatch latency in seconds,
	// paid by every scheme.
	JobOverhead float64
	// VaryingFixed is the varying-chunk scheme's one-time
	// interposition + capacity-probe cost in seconds.
	VaryingFixed float64
	// VaryingPerChunk is the varying-chunk per-chunk lookup cost.
	VaryingPerChunk float64
	// FixedL0 and FixedLMax bound the fixed-chunk per-chunk cost;
	// FixedTau is the chunk count at which it has risen by 1-1/e.
	FixedL0, FixedLMax, FixedTau float64
}

// DefaultTimeModel returns constants calibrated against Table 4's
// measured rows (see EXPERIMENTS.md).
func DefaultTimeModel() TimeModel {
	return TimeModel{
		Bandwidth:       float64(1*trace.GB) / 131.4,
		JobOverhead:     19.6,
		VaryingFixed:    25.4,
		VaryingPerChunk: 0.2,
		FixedL0:         0.070,
		FixedLMax:       0.140,
		FixedTau:        1000,
	}
}

// base returns the whole-file copy time for size bytes.
func (m TimeModel) base(size int64) float64 {
	return m.JobOverhead + float64(size)/m.Bandwidth
}

// TimeWhole estimates the original Condor whole-file copy.
func (m TimeModel) TimeWhole(size int64) float64 { return m.base(size) }

// TimeVarying estimates the PeerStripe copy with the given chunk count.
func (m TimeModel) TimeVarying(size int64, chunks int) float64 {
	return m.base(size) + m.VaryingFixed + float64(chunks)*m.VaryingPerChunk
}

// TimeFixed estimates the CFS-like fixed-chunk copy: the cumulative
// lookup cost of C chunks under the saturating per-chunk rate is
// LMax·C − (LMax−L0)·τ·(1 − e^(−C/τ)).
func (m TimeModel) TimeFixed(size int64, chunks int) float64 {
	c := float64(chunks)
	lookup := m.FixedLMax*c - (m.FixedLMax-m.FixedL0)*m.FixedTau*(1-math.Exp(-c/m.FixedTau))
	return m.base(size) + lookup
}

// CopyResult is one Table 4 cell.
type CopyResult struct {
	Scheme  Scheme
	Size    int64
	OK      bool
	Chunks  int
	Seconds float64
}

// Cluster is the §6.4 lab setup: a pool of desktop machines running the
// storage system, fed by a submission machine outside the pool.
type Cluster struct {
	Machines int
	Caps     []int64
	Model    TimeModel
	seed     int64
}

// NewCluster builds the 32-machine pool with uniform 2–15 GB
// contributions.
func NewCluster(seed int64, machines int) *Cluster {
	g := trace.NewGen(seed)
	return &Cluster{
		Machines: machines,
		Caps:     g.LabCapacities(machines),
		Model:    DefaultTimeModel(),
		seed:     seed,
	}
}

// RunBigCopy performs one bigCopy run of the given size under the given
// scheme on a fresh pool ("For each run, we started fresh"), returning
// success and the modelled duration. §6.4 disables error coding and
// allows enough retries for every chunk to land, which we match by
// probing with unlimited retries for the chunked schemes.
func (c *Cluster) RunBigCopy(scheme Scheme, size int64) CopyResult {
	res := CopyResult{Scheme: scheme, Size: size}
	pool := sim.NewPool(c.seed, c.Caps)
	switch scheme {
	case WholeFile:
		// Original Condor: the copy lands on the submission target's
		// disk whole. Succeeds only if some machine can hold it; Condor
		// directs the job to a machine with enough space when one
		// exists.
		var best int64
		pool.Nodes(func(n *sim.StoreNode) {
			if n.Free() > best {
				best = n.Free()
			}
		})
		if best < size {
			return res // N/A rows of Table 4
		}
		res.OK = true
		res.Chunks = 0
		res.Seconds = c.Model.TimeWhole(size)
	case FixedChunks:
		cfs := baseline.NewCFS(pool, 4*trace.MB)
		cfs.Retries = 64 // §6.4: "enough retries were made ... to ensure that all blocks can be stored"
		if !cfs.StoreFile("bigCopy.out", size) {
			return res
		}
		res.OK = true
		res.Chunks = int(cfs.TotalBlocks)
		res.Seconds = c.Model.TimeFixed(size, res.Chunks)
	case VaryingChunks:
		cfg := core.DefaultConfig()
		cfg.MaxZeroChunks = 64
		st := core.NewStore(pool, cfg)
		r := st.StoreFile("bigCopy.out", size)
		if !r.OK {
			return res
		}
		res.OK = true
		res.Chunks = r.Chunks + r.ZeroChunks
		res.Seconds = c.Model.TimeVarying(size, res.Chunks)
	}
	return res
}

// Table4Row holds one file-size row across the three schemes.
type Table4Row struct {
	Size    int64
	Whole   CopyResult
	Fixed   CopyResult
	Varying CopyResult
}

// OverheadPct returns a scheme's overhead relative to the whole-file
// time, or -1 when whole-file failed (the N/A rows).
func (r Table4Row) OverheadPct(res CopyResult) float64 {
	if !r.Whole.OK || !res.OK {
		return -1
	}
	return (res.Seconds/r.Whole.Seconds - 1) * 100
}

// RunTable4 regenerates the Table 4 sweep for the given sizes.
func (c *Cluster) RunTable4(sizes []int64) []Table4Row {
	rows := make([]Table4Row, 0, len(sizes))
	for _, s := range sizes {
		rows = append(rows, Table4Row{
			Size:    s,
			Whole:   c.RunBigCopy(WholeFile, s),
			Fixed:   c.RunBigCopy(FixedChunks, s),
			Varying: c.RunBigCopy(VaryingChunks, s),
		})
	}
	return rows
}
