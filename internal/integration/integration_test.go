// Package integration exercises whole-system paths across modules: the
// storage core over the real overlay, availability accounting checked
// against brute-force ground truth, and the full §6.4 stack (scheduler →
// interposed I/O → codec → live TCP ring).
package integration

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"peerstripe/internal/baseline"
	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/grid"
	"peerstripe/internal/node"
	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

// TestAvailabilityMatchesBruteForce cross-checks the incremental
// survivor accounting in core against a from-scratch scan of every
// block's presence in the pool.
func TestAvailabilityMatchesBruteForce(t *testing.T) {
	g := trace.NewGen(1)
	pool := sim.NewPool(1, g.NodeCapacities(200))
	cfg := core.DefaultConfig()
	cfg.Spec = erasure.XOR23Spec
	st := core.NewStore(pool, cfg)

	type fileInfo struct {
		name   string
		chunks int
	}
	var stored []fileInfo
	for _, f := range g.Files(150) {
		if res := st.StoreFile(f.Name, f.Size); res.OK {
			stored = append(stored, fileInfo{f.Name, res.Chunks + res.ZeroChunks})
		}
	}
	if len(stored) < 100 {
		t.Fatalf("only %d files stored", len(stored))
	}

	// Fail 25% of nodes without repair.
	rng := g.Rand()
	for i := 0; i < 50; i++ {
		nodes := pool.Net.Nodes()
		if _, err := st.FailNode(nodes[rng.Intn(len(nodes))].ID, false); err != nil {
			t.Fatal(err)
		}
	}

	// Brute force: a file is available iff every non-empty chunk still
	// has >= MinNeeded blocks present somewhere in the pool.
	present := func(name string) bool {
		found := false
		pool.Nodes(func(n *sim.StoreNode) {
			if n.Has(name) {
				found = true
			}
		})
		return found
	}
	for _, fi := range stored {
		cat, ok := st.CAT(fi.name)
		if !ok {
			t.Fatalf("no CAT for %s", fi.name)
		}
		avail := true
		for ci, row := range cat.Rows {
			if row.Empty() {
				continue
			}
			alive := 0
			for e := 0; e < cfg.Spec.TotalBlocks; e++ {
				if present(core.BlockName(fi.name, ci, e)) {
					alive++
				}
			}
			if alive < cfg.Spec.MinNeeded {
				avail = false
				break
			}
		}
		if got := st.Available(fi.name); got != avail {
			t.Fatalf("%s: Available()=%v, brute force=%v", fi.name, got, avail)
		}
	}
}

// TestThreeSchemesOnSharedWorkload runs the §6.1 comparison end-to-end
// at miniature scale and asserts the qualitative claims: PeerStripe
// fails least, uses the most capacity, and creates far fewer chunks
// than CFS.
func TestThreeSchemesOnSharedWorkload(t *testing.T) {
	g := trace.NewGen(2)
	capacities := g.NodeCapacities(120)
	files := g.Files(120 * 120)

	poolP := sim.NewPool(2, capacities)
	past := baseline.NewPAST(poolP)
	for _, f := range files {
		past.StoreFile(f.Name, f.Size)
	}

	poolC := sim.NewPool(2, capacities)
	cfs := baseline.NewCFS(poolC, 4*trace.MB)
	for _, f := range files {
		cfs.StoreFile(f.Name, f.Size)
	}

	poolO := sim.NewPool(2, capacities)
	ours := core.NewStore(poolO, core.DefaultConfig())
	var chunkAcc float64
	var chunkN int
	for _, f := range files {
		if res := ours.StoreFile(f.Name, f.Size); res.OK {
			chunkAcc += float64(res.Chunks)
			chunkN++
		}
	}

	if ours.FilesFailed >= past.FilesFailed {
		t.Errorf("PeerStripe failed %d files, PAST %d — expected fewer", ours.FilesFailed, past.FilesFailed)
	}
	if ours.FilesFailed >= cfs.FilesFailed {
		t.Errorf("PeerStripe failed %d files, CFS %d — expected fewer", ours.FilesFailed, cfs.FilesFailed)
	}
	if poolO.Utilization() <= poolP.Utilization() {
		t.Errorf("PeerStripe utilization %.3f not above PAST %.3f", poolO.Utilization(), poolP.Utilization())
	}
	meanChunks := chunkAcc / float64(chunkN)
	cfsChunks := float64(cfs.TotalBlocks) / float64(cfs.FilesStored)
	if meanChunks*4 > cfsChunks {
		t.Errorf("chunk counts: ours %.1f vs CFS %.1f — expected ≥4x fewer", meanChunks, cfsChunks)
	}
}

// TestFullGridStackOverLiveRing drives the complete implementation
// stack of §5/§6.4: a Condor-like scheduler executes bigCopy jobs whose
// I/O is interposed and redirected to a live TCP ring, with erasure
// coding on the wire.
func TestFullGridStackOverLiveRing(t *testing.T) {
	var servers []*node.Server
	seed := ""
	for i := 0; i < 6; i++ {
		s, err := node.NewServer("127.0.0.1:0", 64<<20, seed)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if seed == "" {
			seed = s.Addr()
		}
		servers = append(servers, s)
	}
	client, err := node.NewClientCfg(context.Background(), seed, erasure.MustXOR(2), node.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Seed an input file directly through the client.
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(3)).Read(data)
	if _, err := client.StoreFile("input.bin", data); err != nil {
		t.Fatal(err)
	}

	codec := &core.Codec{Code: erasure.MustXOR(2)}
	lib := grid.NewIOLib(client, codec)
	lib.PlanChunk = func(sz int64) []int64 { return core.PlanChunkSizes(sz, 512<<10) }
	sched := grid.NewScheduler(lib, 3)
	for i := 0; i < 4; i++ {
		sched.Submit(grid.BigCopyJob("input.bin", fmt.Sprintf("copy%d.bin", i), 256<<10))
	}
	for _, r := range sched.Drain() {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Job, r.Err)
		}
	}
	// Verify one copy through an independent client.
	c2, err := node.NewClientCfg(context.Background(), servers[2].Addr(), erasure.MustXOR(2), node.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.FetchFile("copy2.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("copy through full stack mismatch")
	}
	// Blocks really live on the ring.
	totalBlocks := 0
	for _, s := range servers {
		totalBlocks += s.NumBlocks()
	}
	if totalBlocks < 10 {
		t.Fatalf("only %d blocks on the ring", totalBlocks)
	}
}

// TestRepairKeepsFilesRetrievableUnderChurn runs repeated fail+repair
// rounds and verifies Retrieve still succeeds for available files and
// agrees with Available.
func TestRepairKeepsFilesRetrievableUnderChurn(t *testing.T) {
	g := trace.NewGen(4)
	pool := sim.NewPool(4, g.NodeCapacities(250))
	cfg := core.DefaultConfig()
	cfg.Spec = erasure.OnlineSimSpec
	cfg.Rateless = true
	st := core.NewStore(pool, cfg)
	var names []string
	for _, f := range g.Files(200) {
		if st.StoreFile(f.Name, f.Size).OK {
			names = append(names, f.Name)
		}
	}
	rng := g.Rand()
	for round := 0; round < 40; round++ {
		nodes := pool.Net.Nodes()
		if _, err := st.FailNode(nodes[rng.Intn(len(nodes))].ID, true); err != nil {
			t.Fatal(err)
		}
	}
	availCount := 0
	for _, n := range names {
		if st.Available(n) {
			availCount++
			if _, err := st.Retrieve(n, 0, 1); err != nil {
				t.Fatalf("available file %s not retrievable: %v", n, err)
			}
		} else if _, err := st.Retrieve(n, 0, 1); err == nil {
			t.Fatalf("unavailable file %s retrieved", n)
		}
	}
	// With tolerance 2 and immediate repair, the vast majority must
	// survive 16% churn.
	if float64(availCount) < 0.95*float64(len(names)) {
		t.Fatalf("only %d/%d files survived churn with repair", availCount, len(names))
	}
}

// TestCodecMatchesSimulatedPlacement stores a real file with chunk
// sizes taken from a simulated capacity-probed store, proving the two
// layers agree on naming and structure.
func TestCodecMatchesSimulatedPlacement(t *testing.T) {
	g := trace.NewGen(5)
	pool := sim.NewPool(5, g.NodeCapacities(80))
	st := core.NewStore(pool, core.DefaultConfig())
	const size = 3 << 20
	res := st.StoreFile("real.dat", size)
	if !res.OK {
		t.Fatal(res.Err)
	}
	simCAT, _ := st.CAT("real.dat")

	// Reuse the simulated chunk layout for real bytes.
	var sizes []int64
	for _, row := range simCAT.Rows {
		sizes = append(sizes, row.Len())
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(6)).Read(data)
	codec := &core.Codec{Code: erasure.NewNull()}
	blocks, codecCAT, err := codec.EncodeFile(context.Background(), "real.dat", data, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if codecCAT.FileSize() != simCAT.FileSize() || codecCAT.NumChunks() != simCAT.NumChunks() {
		t.Fatal("codec CAT disagrees with simulated CAT")
	}
	// Every block name the codec produced maps to a node that the
	// simulated store actually placed a block of the same name on.
	for _, b := range blocks {
		owner := pool.OwnerOf(b.Name)
		if owner == nil || !owner.Has(b.Name) {
			t.Fatalf("block %s not where the simulation placed it", b.Name)
		}
	}
}
