package integration

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/node"
	"peerstripe/internal/wire"
)

// startLiveRing forms an N-node in-process TCP ring with
// deterministic, evenly spaced identifiers, so block placement is a
// pure function of the file names and victim selection is stable run
// to run. It waits for the membership broadcasts to converge.
func startLiveRing(t testing.TB, n int, capacity int64) ([]*node.Server, string) {
	t.Helper()
	var servers []*node.Server
	seed := ""
	for i := 0; i < n; i++ {
		var id ids.ID
		id[0] = byte(i * 256 / n)
		s, err := node.NewServerID("127.0.0.1:0", id, capacity, seed)
		if err != nil {
			t.Fatal(err)
		}
		if seed == "" {
			seed = s.Addr()
		}
		servers = append(servers, s)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, s := range servers {
			if s.RingSize() != n {
				converged = false
			}
		}
		if converged {
			return servers, seed
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("live ring did not converge")
	return nil, ""
}

// liveSafeVictim picks a ring member whose loss every chunk of every
// file survives (at most tolerance blocks of any chunk, and at least
// one CAT replica of each file elsewhere). Deterministic given the
// fixed server IDs and file names.
func liveSafeVictim(ring []wire.NodeInfo, files map[string]int, m, tolerance, catReplicas int) int {
	ownerIdx := func(name string) int {
		o, _ := node.OwnerOf(ring, ids.FromName(name))
		for i, member := range ring {
			if member.ID == o.ID {
				return i
			}
		}
		return -1
	}
	for cand := range ring {
		ok := true
		for file, chunks := range files {
			for ci := 0; ci < chunks && ok; ci++ {
				held := 0
				for e := 0; e < m; e++ {
					if ownerIdx(core.BlockName(file, ci, e)) == cand {
						held++
					}
				}
				if held > tolerance {
					ok = false
				}
			}
			elsewhere := 0
			for r := 0; r <= catReplicas; r++ {
				if ownerIdx(core.ReplicaName(core.CATName(file), r)) != cand {
					elsewhere++
				}
			}
			if elsewhere == 0 {
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			return cand
		}
	}
	return -1
}

func newLiveClient(t testing.TB, seed string, code erasure.Code) *node.Client {
	return newLiveClientCfg(t, seed, code, node.Config{})
}

func newLiveClientCfg(t testing.TB, seed string, code erasure.Code, cfg node.Config) *node.Client {
	t.Helper()
	if cfg.ChunkCap == 0 {
		cfg.ChunkCap = 32 << 10
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 3 * time.Second
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 30 * time.Millisecond
	}
	c, err := node.NewClientCfg(context.Background(), seed, code, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestLiveIntegrationConcurrentChurnRepair is the full live-path
// harness: concurrent clients store and fetch over a 9-node ring while
// a node is killed mid-transfer; reads must keep returning exact bytes
// (degraded path), writes may fail but must never corrupt; Repair then
// re-creates the lost blocks on the survivors and every byte is
// re-verified. Designed to run under -race: every transfer, the server
// pipeline, and the hedged fetch machinery race against the kill.
func TestLiveIntegrationConcurrentChurnRepair(t *testing.T) {
	const (
		nodes    = 9
		chunkCap = 32 << 10
		fileSize = 320 << 10 // 10 chunks at the cap
	)
	code := erasure.MustXOR(2)
	servers, seed := startLiveRing(t, nodes, 1<<30)

	// Pre-store three files; three more are written during the churn.
	preFiles := []string{"pre-0.dat", "pre-1.dat", "pre-2.dat"}
	churnFiles := []string{"churn-0.dat", "churn-1.dat", "churn-2.dat"}
	payload := make(map[string][]byte)
	rng := rand.New(rand.NewSource(11))
	for _, f := range append(append([]string{}, preFiles...), churnFiles...) {
		data := make([]byte, fileSize)
		rng.Read(data)
		payload[f] = data
	}

	writer := newLiveClient(t, seed, code)
	for _, f := range preFiles {
		if _, err := writer.StoreFile(f, payload[f]); err != nil {
			t.Fatal(err)
		}
	}

	// Victim choice covers the files not yet written too — placement
	// is deterministic, so the to-be-stored blocks are known.
	chunks := int((fileSize + chunkCap - 1) / chunkCap)
	fileChunks := make(map[string]int)
	for f := range payload {
		fileChunks[f] = chunks
	}
	victim := liveSafeVictim(writer.Ring(), fileChunks,
		code.EncodedBlocks(), code.EncodedBlocks()-code.MinNeeded(), writer.Config().CATReplicas)
	if victim < 0 {
		t.Fatal("no safe victim in deterministic placement")
	}
	victimID := writer.Ring()[victim].ID
	var victimSrv *node.Server
	for _, s := range servers {
		if s.ID == victimID {
			victimSrv = s
		}
	}
	if victimSrv == nil {
		t.Fatal("victim server not found")
	}

	// Concurrent readers, writers, and the killer.
	var wg sync.WaitGroup
	fetchErrs := make(chan error, 64)
	storeOK := make([]bool, len(churnFiles))
	start := make(chan struct{})

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := newLiveClient(t, seed, code)
			<-start
			for i := 0; i < 6; i++ {
				f := preFiles[(r+i)%len(preFiles)]
				got, err := c.FetchFile(f)
				if err != nil {
					fetchErrs <- fmt.Errorf("reader %d, %s: %w", r, f, err)
					return
				}
				if !bytes.Equal(got, payload[f]) {
					fetchErrs <- fmt.Errorf("reader %d, %s: wrong bytes", r, f)
					return
				}
			}
		}(r)
	}
	for w := range churnFiles {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newLiveClient(t, seed, code)
			<-start
			// Writes racing the kill may fail; they must never
			// corrupt. Success is recorded and verified later.
			if _, err := c.StoreFile(churnFiles[w], payload[churnFiles[w]]); err == nil {
				storeOK[w] = true
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(20 * time.Millisecond) // mid-transfer
		victimSrv.Close()
	}()

	close(start)
	wg.Wait()
	close(fetchErrs)
	for err := range fetchErrs {
		t.Errorf("concurrent fetch during churn: %v", err)
	}

	// Survivor view: the membership protocol has no failure detector,
	// so repair first sheds the dead member (the paper's "current
	// owners after a failure" are exactly the pruned view).
	rc := writer
	dropped, err := rc.PruneRing()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 || rc.RingSize() != nodes-1 {
		t.Fatalf("prune dropped %d members, ring now %d", dropped, rc.RingSize())
	}

	verify := append([]string{}, preFiles...)
	for w, ok := range storeOK {
		if ok {
			verify = append(verify, churnFiles[w])
		}
	}
	if len(verify) == len(preFiles) {
		t.Log("no churn-phase store completed; repair covers the pre-stored files only")
	}
	recreated := 0
	for _, f := range verify {
		st, err := rc.Repair(f)
		if err != nil {
			t.Fatalf("repair %s: %v", f, err)
		}
		if st.ChunksLost != 0 {
			t.Fatalf("repair %s lost %d chunks — victim selection broken", f, st.ChunksLost)
		}
		recreated += st.BlocksRecreated
	}
	if recreated == 0 {
		t.Error("repair re-created no blocks although a node died")
	}
	for _, f := range verify {
		got, err := rc.FetchFile(f)
		if err != nil {
			t.Fatalf("post-repair fetch %s: %v", f, err)
		}
		if !bytes.Equal(got, payload[f]) {
			t.Fatalf("post-repair bytes of %s differ", f)
		}
	}
}

// TestLiveDegradedFetchNoRepair is the acceptance-criterion case in
// isolation: one node down, no Repair, no ring refresh — FetchFile on
// a client whose view still lists the dead node returns exact bytes.
func TestLiveDegradedFetchNoRepair(t *testing.T) {
	code := erasure.MustXOR(2)
	servers, seed := startLiveRing(t, 8, 1<<30)
	c := newLiveClient(t, seed, code)

	const name = "degraded-norpr.dat"
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(21)).Read(data)
	cat, err := c.StoreFile(name, data)
	if err != nil {
		t.Fatal(err)
	}
	victim := liveSafeVictim(c.Ring(), map[string]int{name: cat.NumChunks()},
		code.EncodedBlocks(), code.EncodedBlocks()-code.MinNeeded(), c.Config().CATReplicas)
	if victim < 0 {
		t.Fatal("no safe victim in deterministic placement")
	}
	victimID := c.Ring()[victim].ID
	for _, s := range servers {
		if s.ID == victimID {
			s.Close()
		}
	}
	got, err := c.FetchFile(name)
	if err != nil {
		t.Fatalf("degraded fetch with one node down: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded fetch bytes differ")
	}
}

// TestLiveMixedVersionClients stores with the seed transport (v1
// single-shot) and fetches with the multiplexed pool, and vice versa —
// the node-level half of the protocol-compatibility guarantee.
func TestLiveMixedVersionClients(t *testing.T) {
	code := erasure.MustXOR(2)
	_, seed := startLiveRing(t, 5, 1<<30)

	v1c := newLiveClientCfg(t, seed, code, node.Config{V1: true})
	v2c := newLiveClient(t, seed, code)

	data := make([]byte, 200<<10)
	rand.New(rand.NewSource(31)).Read(data)

	if _, err := v1c.StoreFile("mixed-a.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err := v2c.FetchFile("mixed-a.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("v2 fetch of v1 store: %v", err)
	}
	if _, err := v2c.StoreFile("mixed-b.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err = v1c.FetchFile("mixed-b.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("v1 fetch of v2 store: %v", err)
	}
}

// TestLiveStoreFailsCleanlyWhenRingDies ensures a store racing a
// full-ring shutdown surfaces an error instead of wedging: the pooled
// transport must fail over, time out, and report.
func TestLiveStoreFailsCleanlyWhenRingDies(t *testing.T) {
	code := erasure.MustXOR(2)
	servers, seed := startLiveRing(t, 4, 1<<30)
	c := newLiveClientCfg(t, seed, code, node.Config{Timeout: 500 * time.Millisecond})

	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(41)).Read(data)
	done := make(chan error, 1)
	go func() {
		_, err := c.StoreFile("doomed.dat", data)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	for _, s := range servers {
		s.Close()
	}
	select {
	case err := <-done:
		if err == nil {
			// The store may have finished before the shutdown; that
			// is a legal interleaving, not a failure.
			t.Log("store completed before ring shutdown")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("store wedged after ring shutdown")
	}
	if _, err := c.FetchFile("doomed.dat"); err == nil {
		t.Fatal("fetch succeeded against a dead ring")
	}
}
