package integration

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/node"
	"peerstripe/internal/wire"
)

// The churn harness: a self-healing ring survives a scripted sequence
// of node deaths with zero manual intervention. Every node runs the
// SWIM-style failure detector and the autonomous repair daemon; the
// test kills safe victims one by one and only ever OBSERVES — no
// Repair, no PruneRing, no ring edits. The durability SLO under test:
// as long as each single death stays within the code tolerance, no
// file is lost, and the ring returns to full redundancy on its own.
//
// Scale is environment-tunable so CI's race runs can shrink it:
//
//	PS_CHURN_NODES — ring size (default 50)
//	PS_CHURN_KILLS — scripted deaths (default 3)

func churnEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// churnTrace is the precomputed kill schedule: placement is a pure
// function of the deterministic node IDs and file names, so the safe
// victim of every step is known before the ring even starts — the
// harness replays the trace against the live ring.
type churnTrace struct {
	victims []int // indices into the original server slice, in kill order
}

// planChurnTrace simulates the kill sequence over the placement rings:
// at each step it collects every member whose loss all files survive
// (at most tolerance blocks of any chunk, one CAT replica elsewhere)
// and lets the seeded RNG pick among them. spare is excluded — the
// harness forges a suspicion about it later, so it must stay alive.
func planChurnTrace(t *testing.T, ring []wire.NodeInfo, fileChunks map[string]int,
	m, tolerance, catReplicas, kills, spare int, rng *rand.Rand) churnTrace {
	t.Helper()
	idx := make(map[ids.ID]int, len(ring))
	for i, n := range ring {
		idx[n.ID] = i
	}
	cur := append([]wire.NodeInfo(nil), ring...)
	var trace churnTrace
	for k := 0; k < kills; k++ {
		var safe []int
		for pos, member := range cur {
			if idx[member.ID] == spare {
				continue
			}
			if churnVictimSafe(cur, pos, fileChunks, m, tolerance, catReplicas) {
				safe = append(safe, pos)
			}
		}
		if len(safe) == 0 {
			t.Fatalf("churn step %d: no safe victim in deterministic placement", k)
		}
		pos := safe[rng.Intn(len(safe))]
		trace.victims = append(trace.victims, idx[cur[pos].ID])
		cur = append(cur[:pos], cur[pos+1:]...)
	}
	return trace
}

// churnVictimSafe reports whether losing ring[pos] keeps every chunk of
// every file decodable and at least one CAT replica of each file on a
// survivor, under the given placement ring.
func churnVictimSafe(ring []wire.NodeInfo, pos int, fileChunks map[string]int, m, tolerance, catReplicas int) bool {
	ownerIdx := func(name string) int {
		o, _ := node.OwnerOf(ring, ids.FromName(name))
		for i, member := range ring {
			if member.ID == o.ID {
				return i
			}
		}
		return -1
	}
	for file, chunks := range fileChunks {
		for ci := 0; ci < chunks; ci++ {
			held := 0
			for e := 0; e < m; e++ {
				if ownerIdx(core.BlockName(file, ci, e)) == pos {
					held++
				}
			}
			if held > tolerance {
				return false
			}
		}
		elsewhere := 0
		for r := 0; r <= catReplicas; r++ {
			if ownerIdx(core.ReplicaName(core.CATName(file), r)) != pos {
				elsewhere++
			}
		}
		if elsewhere == 0 {
			return false
		}
	}
	return true
}

// blockNames lists every stored object of the files: all encoded blocks
// of every non-empty chunk plus all CAT replicas. Full redundancy means
// every one of these is fetchable at its current owner.
func blockNames(fileChunks map[string]int, m, catReplicas int) []string {
	var names []string
	for file, chunks := range fileChunks {
		for ci := 0; ci < chunks; ci++ {
			for e := 0; e < m; e++ {
				names = append(names, core.BlockName(file, ci, e))
			}
		}
		for r := 0; r <= catReplicas; r++ {
			names = append(names, core.ReplicaName(core.CATName(file), r))
		}
	}
	return names
}

func TestChurnSelfHealingRing(t *testing.T) {
	nodes := churnEnvInt("PS_CHURN_NODES", 50)
	kills := churnEnvInt("PS_CHURN_KILLS", 3)
	if nodes < 8 || nodes > 256 {
		t.Fatalf("PS_CHURN_NODES=%d outside the supported 8..256", nodes)
	}
	if kills >= nodes/2 {
		t.Fatalf("PS_CHURN_KILLS=%d too aggressive for %d nodes", kills, nodes)
	}
	const (
		chunkCap = 32 << 10
		fileSize = 192 << 10 // 6 chunks at the cap
		numFiles = 6
	)
	code := erasure.MustXOR(2)
	// Probe cadence is deliberately gentle: the whole ring shares one
	// machine (often one core, under -race), and 50 detectors probing
	// aggressively would starve the very traffic they monitor.
	det := &node.DetectorConfig{
		ProbeInterval:    250 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		IndirectProbes:   3,
		SuspicionTimeout: 1500 * time.Millisecond,
		GossipFanout:     3,
	}
	rep := &node.RepairConfig{
		Code:        code,
		Rate:        -1, // unmetered: the harness measures correctness, not pacing
		RetryDelay:  200 * time.Millisecond,
		MaxAttempts: 10,
		Client:      node.Config{Timeout: 2 * time.Second, ChunkCap: chunkCap},
	}

	// Self-healing ring: deterministic IDs, seed join, detector and
	// repair daemon on every node.
	servers := make([]*node.Server, nodes)
	seed := ""
	for i := 0; i < nodes; i++ {
		var id ids.ID
		id[0] = byte(i * 256 / nodes)
		s, err := node.NewServerOpts("127.0.0.1:0", 1<<30, seed, node.ServerOptions{
			ID: &id, Detector: det, Repair: rep,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		servers[i] = s
		if seed == "" {
			seed = s.Addr()
		}
	}
	waitChurn(t, 120*time.Second, "membership to converge", func() bool {
		for _, s := range servers {
			if s.RingSize() != nodes {
				return false
			}
		}
		return true
	})

	// Store the working set.
	writer := newLiveClientCfg(t, seed, code, node.Config{ChunkCap: chunkCap})
	payload := make(map[string][]byte)
	fileChunks := make(map[string]int)
	dataRNG := rand.New(rand.NewSource(7))
	for i := 0; i < numFiles; i++ {
		name := fmt.Sprintf("churn-slo-%d.dat", i)
		data := make([]byte, fileSize)
		dataRNG.Read(data)
		payload[name] = data
		cat, err := writer.StoreFile(name, data)
		if err != nil {
			t.Fatal(err)
		}
		fileChunks[name] = cat.NumChunks()
	}
	m := code.EncodedBlocks()
	tolerance := m - code.MinNeeded()
	catReplicas := writer.Config().CATReplicas

	// One live node is reserved for the forged-suspicion probe below;
	// the trace never kills it.
	spare := nodes / 2
	trace := planChurnTrace(t, writer.Ring(), fileChunks, m, tolerance, catReplicas,
		kills, spare, rand.New(rand.NewSource(43)))
	t.Logf("churn trace over %d nodes: kill order %v", nodes, trace.victims)

	byID := make(map[ids.ID]int, nodes)
	for i, s := range servers {
		byID[s.ID] = i
	}
	aliveRing := func(dead map[int]bool) []wire.NodeInfo {
		var ring []wire.NodeInfo
		for i, s := range servers {
			if !dead[i] {
				ring = append(ring, wire.NodeInfo{ID: s.ID, Addr: s.Addr()})
			}
		}
		return ring
	}

	names := blockNames(fileChunks, m, catReplicas)
	dead := make(map[int]bool)
	for step, victim := range trace.victims {
		servers[victim].Close()
		dead[victim] = true
		victimID := servers[victim].ID

		// Phase 1: every survivor commits the death on its own — no
		// manual prune anywhere.
		waitChurn(t, 60*time.Second, fmt.Sprintf("step %d: death of node %d to commit", step, victim), func() bool {
			for i, s := range servers {
				if dead[i] {
					continue
				}
				if st, ok := s.MemberState(victimID); !ok || st != wire.StateDead {
					return false
				}
				if s.RingSize() != nodes-len(dead) {
					return false
				}
			}
			return true
		})

		// Phase 2: the repair daemons restore full redundancy — every
		// block of every file fetchable at its survivor-ring owner.
		vc := node.NewStaticClientCfg(aliveRing(dead), code, node.Config{Timeout: 2 * time.Second})
		waitChurn(t, 120*time.Second, fmt.Sprintf("step %d: autonomous repair to converge", step), func() bool {
			for _, bn := range names {
				if _, err := vc.FetchBlock(bn); err != nil {
					return false
				}
			}
			return true
		})
		vc.Close()
	}

	// Forged suspicion at scale: a live member is falsely accused; it
	// must refute (incarnation rises) and never be evicted.
	forged := wire.EncodeUpdates([]wire.MemberUpdate{{
		Node:  wire.NodeInfo{ID: servers[spare].ID, Addr: servers[spare].Addr()},
		State: wire.StateSuspect,
		Inc:   servers[spare].Incarnation(),
	}})
	if _, err := wire.Call(seed, &wire.Request{Op: wire.OpGossip, Data: forged}); err != nil {
		t.Fatal(err)
	}
	waitChurn(t, 30*time.Second, "forged suspicion to be refuted", func() bool {
		return servers[spare].Incarnation() >= 1
	})
	watch := time.Now().Add(2 * det.SuspicionTimeout)
	for time.Now().Before(watch) {
		for i, s := range servers {
			if dead[i] {
				continue
			}
			if st, ok := s.MemberState(servers[spare].ID); ok && st == wire.StateDead {
				t.Fatalf("node %d evicted the falsely suspected live node", i)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Final SLO accounting. Every file reads back byte-exact through a
	// fresh client that only knows the survivors; no repair daemon gave
	// up on a file; no chunk ever fell below the decode threshold.
	final := node.NewStaticClientCfg(aliveRing(dead), code, node.Config{Timeout: 3 * time.Second, ChunkCap: chunkCap})
	defer final.Close()
	for name, want := range payload {
		got, err := final.FetchFile(name)
		if err != nil {
			t.Fatalf("final fetch %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final bytes of %s differ", name)
		}
	}
	totalBlocks, totalBytes := 0, int64(0)
	for i, s := range servers {
		if dead[i] {
			continue
		}
		rpt := s.RepairReport()
		totalBlocks += rpt.BlocksRecreated
		totalBytes += rpt.BytesRecreated
		if rpt.FilesFailed != 0 {
			t.Errorf("node %d gave up on %d files", i, rpt.FilesFailed)
		}
		if rpt.ChunksLost != 0 {
			t.Errorf("node %d saw %d chunks below the decode threshold", i, rpt.ChunksLost)
		}
		if s.RingSize() != nodes-len(dead) {
			t.Errorf("node %d ring size %d, want %d", i, s.RingSize(), nodes-len(dead))
		}
	}
	if totalBlocks == 0 || totalBytes == 0 {
		t.Fatalf("no autonomous repair work recorded: %d blocks, %d bytes", totalBlocks, totalBytes)
	}
	t.Logf("churn SLO held: %d deaths, %d blocks (%d bytes) regenerated autonomously",
		len(trace.victims), totalBlocks, totalBytes)
}

// waitChurn polls cond until it holds or the deadline passes.
func waitChurn(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
