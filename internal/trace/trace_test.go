package trace

import (
	"math"
	"strings"
	"testing"

	"peerstripe/internal/stats"
)

func TestFileSizeMoments(t *testing.T) {
	g := NewGen(1)
	var a stats.Acc
	for i := 0; i < 50000; i++ {
		a.Add(float64(g.FileSize()))
	}
	mean := a.Mean() / float64(MB)
	sd := a.StdDev() / float64(MB)
	if math.Abs(mean-243) > 3 {
		t.Errorf("mean = %.1f MB, want ≈243", mean)
	}
	if math.Abs(sd-55) > 3 {
		t.Errorf("sd = %.1f MB, want ≈55", sd)
	}
	if a.Min() < float64(FileFloor) {
		t.Errorf("file below 50 MB floor: %.0f", a.Min())
	}
}

func TestFilesUniqueNames(t *testing.T) {
	g := NewGen(2)
	fs := g.Files(1000)
	seen := make(map[string]bool, len(fs))
	for _, f := range fs {
		if seen[f.Name] {
			t.Fatalf("duplicate name %s", f.Name)
		}
		seen[f.Name] = true
		if f.Size < FileFloor {
			t.Fatalf("file %s below floor", f.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGen(7).Files(100)
	b := NewGen(7).Files(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c := NewGen(8).Files(100)
	diff := false
	for i := range a {
		if a[i].Size != c[i].Size {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestNodeCapacityMoments(t *testing.T) {
	g := NewGen(3)
	var a stats.Acc
	for i := 0; i < 50000; i++ {
		a.Add(float64(g.NodeCapacity()))
	}
	mean := a.Mean() / float64(GB)
	sd := a.StdDev() / float64(GB)
	if math.Abs(mean-45) > 1 {
		t.Errorf("capacity mean = %.1f GB, want ≈45", mean)
	}
	if math.Abs(sd-10) > 1 {
		t.Errorf("capacity sd = %.1f GB, want ≈10", sd)
	}
}

func TestPaperScaleTotals(t *testing.T) {
	// The paper reports a total trace size of 278.7 TB for 1.2 M files
	// and 439.1 TB capacity for 10 000 nodes. Check our distributions
	// extrapolate to the same ballpark (±5%).
	g := NewGen(4)
	var f stats.Acc
	for i := 0; i < 20000; i++ {
		f.Add(float64(g.FileSize()))
	}
	totalData := f.Mean() * float64(PaperFileCount) / float64(TB)
	if totalData < 265 || totalData > 293 {
		t.Errorf("extrapolated trace size = %.1f TB, paper reports 278.7", totalData)
	}
	var c stats.Acc
	for i := 0; i < 20000; i++ {
		c.Add(float64(g.NodeCapacity()))
	}
	totalCap := c.Mean() * float64(PaperNodeCount) / float64(TB)
	if totalCap < 427 || totalCap > 473 {
		t.Errorf("extrapolated capacity = %.1f TB, paper reports 439.1", totalCap)
	}
}

func TestLabCapacityRange(t *testing.T) {
	g := NewGen(5)
	var a stats.Acc
	for i := 0; i < 20000; i++ {
		v := g.LabCapacity()
		if v < 2*GB || v > 15*GB {
			t.Fatalf("lab capacity %d outside [2GB, 15GB]", v)
		}
		a.Add(float64(v))
	}
	mean := a.Mean() / float64(GB)
	if mean < 8 || mean > 9.5 {
		t.Errorf("lab capacity mean = %.2f GB, want ≈8.5 (uniform 2–15)", mean)
	}
}

func TestTotalSize(t *testing.T) {
	fs := []File{{"a", 10}, {"b", 20}}
	if TotalSize(fs) != 30 {
		t.Fatal("TotalSize wrong")
	}
	if TotalSize(nil) != 0 {
		t.Fatal("TotalSize(nil) != 0")
	}
}

func TestScaled(t *testing.T) {
	s := Scaled(10)
	if s.Nodes != 1000 || s.Files != 120000 {
		t.Fatalf("Scaled(10) = %+v", s)
	}
	if Scaled(0) != PaperScale {
		t.Fatal("Scaled(0) should clamp to paper scale")
	}
	// ratio preserved
	r0 := float64(PaperScale.Files) / float64(PaperScale.Nodes)
	r1 := float64(s.Files) / float64(s.Nodes)
	if math.Abs(r0-r1) > 1 {
		t.Fatalf("ratio drifted: %g vs %g", r0, r1)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	g := NewGen(9)
	fs := g.Files(500)
	var buf strings.Builder
	if err := WriteTrace(&buf, fs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fs) {
		t.Fatalf("round trip count %d vs %d", len(got), len(fs))
	}
	for i := range fs {
		if got[i] != fs[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"name,size\nfoo",      // missing size
		"name,size\nfoo,-1",   // negative
		"name,size\nfoo,x",    // non-numeric
		"name,size\na,1\na,2", // duplicate
	} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Blank lines and header-only are fine.
	got, err := ReadTrace(strings.NewReader("name,size\n\n"))
	if err != nil || len(got) != 0 {
		t.Error("header-only trace rejected")
	}
}

func TestWriteTraceRejectsDelimiters(t *testing.T) {
	var buf strings.Builder
	if err := WriteTrace(&buf, []File{{Name: "a,b", Size: 1}}); err == nil {
		t.Error("comma in name accepted")
	}
}

func TestHeavyTailMoments(t *testing.T) {
	g := NewGen(10)
	var a stats.Acc
	for i := 0; i < 50000; i++ {
		v := g.HeavyTailFileSize(1.0)
		if v < FileFloor {
			t.Fatal("below floor")
		}
		a.Add(float64(v))
	}
	// The floor pushes the mean slightly above 243 MB; allow slack but
	// require the same order of magnitude and a heavier tail than the
	// normal trace.
	mean := a.Mean() / float64(MB)
	if mean < 200 || mean > 350 {
		t.Errorf("heavy-tail mean = %.1f MB", mean)
	}
	if a.Max() < 3*a.Mean() {
		t.Errorf("tail not heavy: max %.0f vs mean %.0f", a.Max(), a.Mean())
	}
}

func TestNodeCapacities(t *testing.T) {
	g := NewGen(6)
	cs := g.NodeCapacities(10)
	if len(cs) != 10 {
		t.Fatal("wrong count")
	}
	ls := g.LabCapacities(5)
	if len(ls) != 5 {
		t.Fatal("wrong lab count")
	}
}
