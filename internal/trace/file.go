package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTrace writes a file trace in a two-column CSV format
// (name,size) so generated workloads can be persisted and external
// traces — like the paper's collected one, if you have an equivalent —
// can be fed to the experiments.
func WriteTrace(w io.Writer, fs []File) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "name,size"); err != nil {
		return err
	}
	for _, f := range fs {
		if strings.ContainsAny(f.Name, ",\n") {
			return fmt.Errorf("trace: name %q contains a delimiter", f.Name)
		}
		if _, err := fmt.Fprintf(bw, "%s,%d\n", f.Name, f.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace (or any name,size CSV
// with a header row). Sizes must be non-negative integers; duplicate
// names are rejected because the design assumes unique file names (§4).
func ReadTrace(r io.Reader) ([]File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []File
	seen := make(map[string]bool)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 || text == "" {
			continue // header / blanks
		}
		i := strings.LastIndexByte(text, ',')
		if i <= 0 {
			return nil, fmt.Errorf("trace: line %d: malformed %q", line, text)
		}
		name := text[:i]
		size, err := strconv.ParseInt(text[i+1:], 10, 64)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("trace: line %d: bad size %q", line, text[i+1:])
		}
		if seen[name] {
			return nil, fmt.Errorf("trace: line %d: duplicate name %q", line, name)
		}
		seen[name] = true
		out = append(out, File{Name: name, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
