// Package trace generates the synthetic workloads that drive the
// evaluation: the large-file trace of §6.1 (1.2 M files, normal size
// distribution with mean 243 MB and standard deviation 55 MB, floored at
// 50 MB) and the node-capacity distributions (normal 45 GB / 10 GB for
// the 10 000-node simulations; the 32-machine lab pool contributing
// 2–15 GB for the Condor case study).
//
// The paper collected its trace from video-hosting and Linux-mirror
// servers; only the published size moments matter to the experiments, so
// we regenerate an equivalent trace deterministically from a seed (see
// DESIGN.md, substitutions).
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Byte-size units used throughout the repository.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// Paper workload parameters (§6.1).
const (
	// FileMean is the mean file size in the collected trace.
	FileMean = 243 * MB
	// FileStdDev is the standard deviation of file sizes.
	FileStdDev = 55 * MB
	// FileFloor is the minimum file size; the paper filtered files
	// smaller than 50 MB.
	FileFloor = 50 * MB
	// PaperFileCount is the trace length used for the full-scale runs.
	PaperFileCount = 1_200_000
	// PaperNodeCount is the overlay population in §6.1.
	PaperNodeCount = 10_000
	// NodeCapMean is the mean contributed capacity per node.
	NodeCapMean = 45 * GB
	// NodeCapStdDev is the standard deviation of contributed capacity.
	NodeCapStdDev = 10 * GB
)

// File is one entry of the workload trace.
type File struct {
	// Name uniquely identifies the file; the paper assumes unique
	// file names system-wide (§4).
	Name string
	// Size in bytes.
	Size int64
}

// Gen produces deterministic synthetic workloads from a seed.
type Gen struct {
	rng *rand.Rand
}

// NewGen returns a generator seeded with seed. Two generators with the
// same seed produce identical traces.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// normInt64 draws from N(mean, sd) clamped to [floor, ∞).
func (g *Gen) normInt64(mean, sd, floor int64) int64 {
	v := int64(g.rng.NormFloat64()*float64(sd) + float64(mean))
	if v < floor {
		v = floor
	}
	return v
}

// FileSize draws one file size from the paper's trace distribution.
func (g *Gen) FileSize() int64 {
	return g.normInt64(FileMean, FileStdDev, FileFloor)
}

// Files generates an n-file trace with names "f<index>".
func (g *Gen) Files(n int) []File {
	fs := make([]File, n)
	for i := range fs {
		fs[i] = File{Name: fmt.Sprintf("f%07d", i), Size: g.FileSize()}
	}
	return fs
}

// NodeCapacity draws one node's contributed capacity from the paper's
// N(45 GB, 10 GB) distribution, floored at 1 GB so no simulated desktop
// contributes nothing.
func (g *Gen) NodeCapacity() int64 {
	return g.normInt64(NodeCapMean, NodeCapStdDev, 1*GB)
}

// NodeCapacities draws n node capacities.
func (g *Gen) NodeCapacities(n int) []int64 {
	caps := make([]int64, n)
	for i := range caps {
		caps[i] = g.NodeCapacity()
	}
	return caps
}

// HeavyTailFileSize draws from a lognormal with the trace's 243 MB mean
// but a heavy right tail (σ of the underlying normal as given), floored
// at 50 MB. The paper's collected trace (video hosting and Linux mirror
// servers) plausibly carried multi-GB outliers that the published
// mean/sd summary hides; whole-file placement (PAST) is uniquely
// sensitive to such tails, so the reconciliation experiment in psbench
// uses this distribution (see EXPERIMENTS.md).
func (g *Gen) HeavyTailFileSize(sigma float64) int64 {
	// mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
	mu := math.Log(float64(FileMean)) - sigma*sigma/2
	v := int64(math.Exp(mu + sigma*g.rng.NormFloat64()))
	if v < FileFloor {
		v = FileFloor
	}
	return v
}

// HeavyTailFiles generates an n-file heavy-tailed trace.
func (g *Gen) HeavyTailFiles(n int, sigma float64) []File {
	fs := make([]File, n)
	for i := range fs {
		fs[i] = File{Name: fmt.Sprintf("h%07d", i), Size: g.HeavyTailFileSize(sigma)}
	}
	return fs
}

// LabCapacity draws one machine's contribution for the Condor case study
// (§6.4): uniform between 2 GB and 15 GB. The paper reports mean 10 GB
// and standard deviation 3 GB for its 32-machine sample.
func (g *Gen) LabCapacity() int64 {
	return 2*GB + int64(g.rng.Float64()*float64(13*GB))
}

// LabCapacities draws n lab-machine contributions.
func (g *Gen) LabCapacities(n int) []int64 {
	caps := make([]int64, n)
	for i := range caps {
		caps[i] = g.LabCapacity()
	}
	return caps
}

// Rand exposes the underlying deterministic source for callers that need
// auxiliary randomness tied to the same seed (e.g. failure orderings).
func (g *Gen) Rand() *rand.Rand { return g.rng }

// TotalSize sums the sizes of a trace.
func TotalSize(fs []File) int64 {
	var t int64
	for _, f := range fs {
		t += f.Size
	}
	return t
}

// Scale describes a simulation scale: how many nodes and files to use.
// The paper ran 10 000 nodes × 1.2 M files; Scaled keeps the ratio of
// offered data to capacity (~63 %) so failure dynamics are preserved at
// laptop-friendly populations.
type Scale struct {
	Nodes int
	Files int
}

// PaperScale is the full published configuration.
var PaperScale = Scale{Nodes: PaperNodeCount, Files: PaperFileCount}

// Scaled returns a configuration shrunk by factor k (k ≥ 1), preserving
// the files-per-node ratio of the paper.
func Scaled(k int) Scale {
	if k < 1 {
		k = 1
	}
	return Scale{Nodes: PaperNodeCount / k, Files: PaperFileCount / k}
}
