// Package wire is the RPC layer of the live implementation (§5): a
// length-prefixed gob protocol over TCP. Control messages (lookup,
// getCapacity, membership) ride the same connections as data transfers,
// which — as in the paper — go node-to-node directly rather than
// through overlay routing.
//
// Two transports share the frame format:
//
//   - v1: one request and one response per connection (the original
//     single-shot protocol). Call speaks it; Serve still accepts it.
//   - v2: request IDs multiplexed over a persistent connection, opened
//     by a 4-byte preamble (see mux.go). Pool speaks it, falling back
//     to v1 when the peer predates it.
package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"peerstripe/internal/ids"
)

// Op enumerates the protocol operations.
type Op string

// Protocol operations.
const (
	OpJoin     Op = "join"    // register a node; response carries the ring
	OpRing     Op = "ring"    // fetch the current membership
	OpAdd      Op = "add"     // membership broadcast: a node joined
	OpGetCap   Op = "getcap"  // §4.3 capacity probe
	OpCapBatch Op = "getcapb" // batched capacity probe: one round trip covers every block a node owns
	OpStore    Op = "store"   // store a named block (direct transfer)
	OpFetch    Op = "fetch"   // fetch a named block
	OpDelete   Op = "delete"  // remove a named block
	OpStat     Op = "stat"    // node status: capacity, used, block count

	// Streaming transfers (see stream.go): blocks larger than one
	// frame flow as a sequence of bounded segments, each an ordinary
	// request/response exchange, so a pre-streaming peer rejects the
	// first segment gracefully ("unknown op") instead of dying on an
	// unparseable frame.
	OpStoreStream Op = "storestream" // one upload segment of a block, strictly in order
	OpFetchStream Op = "fetchstream" // one ranged read of a block
	OpStoreWindow Op = "storewin"    // one windowed upload segment, any order

	// Failure detection and membership gossip (see gossip.go). The
	// payloads ride Request.Data / Response.Data as an opaque byte
	// encoding, so both frame codecs carry them unchanged and a
	// pre-gossip peer answers "unknown op" gracefully — which a
	// detector reads as "reachable but old", never as a failure.
	OpPing    Op = "ping"    // direct liveness probe, gossip piggybacked
	OpPingReq Op = "pingreq" // ask a peer to probe a target on our behalf
	OpGossip  Op = "gossip"  // membership delta push (join/suspect/dead/refute)
)

// Ops lists every protocol operation; the protocol-compatibility tests
// iterate it so a new op cannot ship without a mixed-version check.
var Ops = []Op{OpJoin, OpRing, OpAdd, OpGetCap, OpCapBatch, OpStore, OpFetch, OpDelete, OpStat, OpStoreStream, OpFetchStream, OpStoreWindow, OpPing, OpPingReq, OpGossip}

// NodeInfo identifies one ring member.
type NodeInfo struct {
	ID   ids.ID
	Addr string
}

// Request is the client-to-server message.
type Request struct {
	// ID matches a response to its request on a multiplexed (v2)
	// connection. Single-shot v1 exchanges leave it zero.
	ID   uint64
	Op   Op
	Name string
	// Names carries the block names of one batched capacity probe
	// (OpCapBatch): every block of a chunk that the probed node owns,
	// so a store costs one round trip per owner instead of one per
	// block.
	Names []string
	Data  []byte
	Node  NodeInfo // join/add payload
}

// Response is the server-to-client message.
type Response struct {
	ID       uint64 // echoes Request.ID on v2 connections
	OK       bool
	Err      string
	Data     []byte
	Capacity int64 // getcap / getcapb / stat
	Used     int64 // stat
	Blocks   int   // stat
	Ring     []NodeInfo
}

// MaxFrame bounds a single message (64 MiB) to keep a misbehaving peer
// from ballooning memory.
const MaxFrame = 64 << 20

// frameGrowStep bounds how much buffer a frame header can reserve
// before any body bytes arrive, so a lying header backed by a short
// body cannot force a MaxFrame allocation.
const frameGrowStep = 1 << 20

// maxPooledFrame caps the capacity of buffers returned to the pool;
// the occasional giant frame is let go to the GC instead of pinning
// tens of megabytes per pooled buffer.
const maxPooledFrame = 4 << 20

var framePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getFrameBuf() *bytes.Buffer {
	buf := framePool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func putFrameBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledFrame {
		framePool.Put(buf)
	}
}

// WriteFrame writes one gob-encoded value with a 4-byte length prefix.
// The frame is assembled in a pooled buffer and written with a single
// Write call.
func WriteFrame(w io.Writer, v any) error {
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	buf.Write(make([]byte, 4)) // length prefix, patched below
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	b := buf.Bytes()
	n := len(b) - 4
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	_, err := w.Write(b)
	return err
}

// readFrameBody reads one length-prefixed frame body into a pooled
// buffer that grows with the bytes actually received — never trusting
// the header's length for the allocation — and hands it to use. The
// buffer is released afterwards, so use must not retain it.
func readFrameBody(r io.Reader, use func([]byte) error) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	if pre := int(n); pre <= frameGrowStep {
		buf.Grow(pre)
	} else {
		buf.Grow(frameGrowStep)
	}
	if _, err := io.CopyN(buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return use(buf.Bytes())
}

// ReadFrame reads one length-prefixed gob value into v.
func ReadFrame(r io.Reader, v any) error {
	return readFrameBody(r, func(body []byte) error {
		if !gobFramesSane(body) {
			return fmt.Errorf("wire: corrupt gob frame")
		}
		return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
	})
}

// gobFramesSane reports whether every gob message length declared
// inside body fits the bytes that follow it. gob's decoder allocates
// whatever a message's length prefix claims (up to its internal 1 GB
// cap) before reading, so without this check a tiny forged frame could
// cost a huge allocation.
func gobFramesSane(body []byte) bool {
	for len(body) > 0 {
		v, n := gobUint(body)
		if n <= 0 || v > uint64(len(body)-n) {
			return false
		}
		body = body[n+int(v):]
	}
	return true
}

// gobUint decodes gob's unsigned-integer wire form (see the encoding
// details in the encoding/gob docs): values below 128 are a single
// byte; otherwise a byte holding the negated byte count precedes a
// minimal-length big-endian value. Returns the bytes consumed, 0 on
// malformed input.
func gobUint(b []byte) (uint64, int) {
	if len(b) == 0 {
		return 0, 0
	}
	if b[0] < 128 {
		return uint64(b[0]), 1
	}
	cnt := int(-int8(b[0]))
	if cnt < 1 || cnt > 8 || len(b) < 1+cnt {
		return 0, 0
	}
	var v uint64
	for i := 0; i < cnt; i++ {
		v = v<<8 | uint64(b[1+i])
	}
	return v, 1 + cnt
}

// DefaultTimeout bounds one RPC round trip.
const DefaultTimeout = 10 * time.Second

// respError converts an application-level refusal into the error shape
// both transports return: the response is still handed back alongside
// the error.
func respError(op Op, resp *Response) error {
	if !resp.OK && resp.Err != "" {
		return fmt.Errorf("wire: %s: %s", op, resp.Err)
	}
	return nil
}

// Call performs one single-shot (v1) request/response round trip to
// addr with the default timeout.
func Call(addr string, req *Request) (*Response, error) {
	return CallTimeout(addr, req, DefaultTimeout)
}

// CallTimeout is Call with an explicit round-trip deadline.
func CallTimeout(addr string, req *Request, timeout time.Duration) (*Response, error) {
	return CallCtx(context.Background(), addr, req, timeout)
}

// CallCtx is the single-shot (v1) round trip bounded by both the
// timeout and ctx: a ctx deadline earlier than the timeout wins, and
// cancellation severs the connection immediately so the caller is not
// left waiting out the full deadline.
func CallCtx(ctx context.Context, addr string, req *Request, timeout time.Duration) (*Response, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("wire: dial %s: %w", addr, ctxErr)
		}
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	// A cancel-induced close surfaces as a connection error; report the
	// cancellation itself so callers can match context.Canceled.
	ctxOr := func(err error) error {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return err
	}
	if err := WriteFrame(conn, req); err != nil {
		return nil, fmt.Errorf("wire: send to %s: %w", addr, ctxOr(err))
	}
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		return nil, fmt.Errorf("wire: recv from %s: %w", addr, ctxOr(err))
	}
	return &resp, respError(req.Op, &resp)
}
