// Package wire is the RPC layer of the live implementation (§5): a
// minimal length-prefixed gob protocol over TCP. One request and one
// response per round trip; control messages (lookup, getCapacity,
// membership) ride the same connections as data transfers, which — as
// in the paper — go node-to-node directly rather than through overlay
// routing.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"time"

	"peerstripe/internal/ids"
)

// Op enumerates the protocol operations.
type Op string

// Protocol operations.
const (
	OpJoin   Op = "join"   // register a node; response carries the ring
	OpRing   Op = "ring"   // fetch the current membership
	OpAdd    Op = "add"    // membership broadcast: a node joined
	OpGetCap Op = "getcap" // §4.3 capacity probe
	OpStore  Op = "store"  // store a named block (direct transfer)
	OpFetch  Op = "fetch"  // fetch a named block
	OpDelete Op = "delete" // remove a named block
	OpStat   Op = "stat"   // node status: capacity, used, block count
)

// NodeInfo identifies one ring member.
type NodeInfo struct {
	ID   ids.ID
	Addr string
}

// Request is the client-to-server message.
type Request struct {
	Op   Op
	Name string
	Data []byte
	Node NodeInfo // join/add payload
}

// Response is the server-to-client message.
type Response struct {
	OK       bool
	Err      string
	Data     []byte
	Capacity int64 // getcap / stat
	Used     int64 // stat
	Blocks   int   // stat
	Ring     []NodeInfo
}

// MaxFrame bounds a single message (64 MiB) to keep a misbehaving peer
// from ballooning memory.
const MaxFrame = 64 << 20

// WriteFrame writes one gob-encoded value with a 4-byte length prefix.
func WriteFrame(w io.Writer, v any) error {
	var buf frameBuffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if len(buf.b) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(buf.b))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf.b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.b)
	return err
}

// ReadFrame reads one length-prefixed gob value into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return gob.NewDecoder(byteReader{body, new(int)}).Decode(v)
}

type frameBuffer struct{ b []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

type byteReader struct {
	b   []byte
	pos *int
}

func (r byteReader) Read(p []byte) (int, error) {
	if *r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[*r.pos:])
	*r.pos += n
	return n, nil
}

// DefaultTimeout bounds one RPC round trip.
const DefaultTimeout = 10 * time.Second

// Call performs one request/response round trip to addr.
func Call(addr string, req *Request) (*Response, error) {
	conn, err := net.DialTimeout("tcp", addr, DefaultTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(DefaultTimeout)); err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, req); err != nil {
		return nil, fmt.Errorf("wire: send to %s: %w", addr, err)
	}
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		return nil, fmt.Errorf("wire: recv from %s: %w", addr, err)
	}
	if !resp.OK && resp.Err != "" {
		return &resp, fmt.Errorf("wire: %s: %s", req.Op, resp.Err)
	}
	return &resp, nil
}
