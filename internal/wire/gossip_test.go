package wire

import (
	"reflect"
	"testing"

	"peerstripe/internal/ids"
)

func TestGossipUpdatesRoundTrip(t *testing.T) {
	cases := [][]MemberUpdate{
		nil,
		{{Node: NodeInfo{ID: ids.FromName("a"), Addr: "10.0.0.1:7001"}, State: StateAlive, Inc: 0}},
		{
			{Node: NodeInfo{ID: ids.FromName("a"), Addr: "a:1"}, State: StateAlive, Inc: 42},
			{Node: NodeInfo{ID: ids.FromName("b"), Addr: ""}, State: StateSuspect, Inc: 1},
			{Node: NodeInfo{ID: ids.FromName("c"), Addr: "c:3"}, State: StateDead, Inc: 1<<63 + 5},
		},
	}
	for i, ups := range cases {
		got, err := DecodeUpdates(EncodeUpdates(ups))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(ups) == 0 {
			if len(got) != 0 {
				t.Fatalf("case %d: empty batch decoded to %v", i, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, ups) {
			t.Fatalf("case %d: round trip\n got %v\nwant %v", i, got, ups)
		}
	}
}

func TestGossipUpdatesTruncatesOversizedBatch(t *testing.T) {
	big := make([]MemberUpdate, MaxGossipUpdates+10)
	for i := range big {
		big[i] = MemberUpdate{Node: NodeInfo{ID: ids.FromUint64(uint64(i))}, State: StateAlive}
	}
	got, err := DecodeUpdates(EncodeUpdates(big))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxGossipUpdates {
		t.Fatalf("oversized batch: got %d entries, want %d", len(got), MaxGossipUpdates)
	}
}

// TestGossipUpdatesRejectsMalformed feeds the decoder the corruption
// shapes a broken or hostile peer could produce; every one must fail
// cleanly rather than panic or over-allocate.
func TestGossipUpdatesRejectsMalformed(t *testing.T) {
	good := EncodeUpdates([]MemberUpdate{
		{Node: NodeInfo{ID: ids.FromName("a"), Addr: "a:1"}, State: StateAlive, Inc: 1},
	})
	cases := map[string][]byte{
		"bad version":       append([]byte{99}, good[1:]...),
		"truncated header":  good[:2],
		"truncated entry":   good[:len(good)-3],
		"trailing garbage":  append(append([]byte{}, good...), 0xFF),
		"bad state":         func() []byte { b := append([]byte{}, good...); b[3+ids.Bytes] = 9; return b }(),
		"huge count":        {gossipVersion, 0xFF, 0xFF},
		"count over bodies": {gossipVersion, 0, 5},
	}
	for name, data := range cases {
		if _, err := DecodeUpdates(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
