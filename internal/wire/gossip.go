package wire

import (
	"encoding/binary"
	"fmt"

	"peerstripe/internal/ids"
)

// Membership gossip payload (OpPing / OpPingReq / OpGossip).
//
// A node's failure detector disseminates membership deltas — joins,
// suspicions, deaths, and alive refutations — by piggybacking a small
// batch of MemberUpdate entries on its probe traffic (SWIM-style
// epidemic dissemination). The batch is encoded into Request.Data and
// Response.Data with the compact binary form below rather than new
// frame fields, so:
//
//   - both frame codecs (v1 gob, v2 binary) carry it without change,
//   - a pre-gossip peer that answers "unknown op" never sees an
//     unparseable frame, and
//   - the encoding is versioned independently of the transports.

// MemberState is one ring member's liveness state in a membership view.
type MemberState uint8

const (
	// StateAlive is a member answering probes (or refuting suspicion).
	StateAlive MemberState = iota
	// StateSuspect is a member that failed direct and indirect probes
	// but whose suspicion window has not yet expired. Suspects stay in
	// the placement ring: one flaky link must not move data.
	StateSuspect
	// StateDead is a committed failure: the suspicion window expired
	// without a refutation. Dead members leave the placement ring and
	// their loss triggers repair.
	StateDead
)

// String returns the state's lowercase name.
func (st MemberState) String() string {
	switch st {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(st))
	}
}

// MemberUpdate is one membership delta. Incarnation numbers order
// claims about the same member: only the member itself increments its
// incarnation (when refuting a suspicion), so an alive entry with a
// higher incarnation always overrides a stale suspicion or death.
type MemberUpdate struct {
	Node  NodeInfo
	State MemberState
	Inc   uint64
}

// Gossip payload bounds: a batch rides one frame alongside the probe
// itself, so it is kept small; the limits also cap what a malformed
// frame can make the decoder allocate.
const (
	// MaxGossipUpdates bounds entries per encoded batch.
	MaxGossipUpdates = 256
	// maxGossipAddr bounds one entry's address string.
	maxGossipAddr = 256
	// gossipVersion tags the encoding so it can evolve independently
	// of the wire transports.
	gossipVersion = 1
)

// EncodeUpdates packs membership deltas into the byte form carried by
// Request.Data / Response.Data. Batches longer than MaxGossipUpdates
// are truncated (gossip is best-effort; the rest goes on a later
// probe). Returns nil for an empty batch.
func EncodeUpdates(ups []MemberUpdate) []byte {
	if len(ups) == 0 {
		return nil
	}
	if len(ups) > MaxGossipUpdates {
		ups = ups[:MaxGossipUpdates]
	}
	size := 3 // version + count
	for _, u := range ups {
		size += ids.Bytes + 1 + 8 + 2 + len(u.Node.Addr)
	}
	out := make([]byte, 0, size)
	out = append(out, gossipVersion)
	out = binary.BigEndian.AppendUint16(out, uint16(len(ups)))
	for _, u := range ups {
		addr := u.Node.Addr
		if len(addr) > maxGossipAddr {
			addr = addr[:maxGossipAddr]
		}
		out = append(out, u.Node.ID[:]...)
		out = append(out, byte(u.State))
		out = binary.BigEndian.AppendUint64(out, u.Inc)
		out = binary.BigEndian.AppendUint16(out, uint16(len(addr)))
		out = append(out, addr...)
	}
	return out
}

// DecodeUpdates parses a gossip batch. A nil or empty payload is a
// valid empty batch (old peers and plain probes carry none).
func DecodeUpdates(data []byte) ([]MemberUpdate, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if data[0] != gossipVersion {
		return nil, fmt.Errorf("wire: gossip version %d not understood", data[0])
	}
	if len(data) < 3 {
		return nil, fmt.Errorf("wire: gossip batch truncated at %d bytes", len(data))
	}
	n := int(binary.BigEndian.Uint16(data[1:3]))
	if n > MaxGossipUpdates {
		return nil, fmt.Errorf("wire: gossip batch of %d entries exceeds limit", n)
	}
	data = data[3:]
	ups := make([]MemberUpdate, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < ids.Bytes+1+8+2 {
			return nil, fmt.Errorf("wire: gossip entry %d truncated", i)
		}
		var u MemberUpdate
		copy(u.Node.ID[:], data[:ids.Bytes])
		data = data[ids.Bytes:]
		u.State = MemberState(data[0])
		if u.State > StateDead {
			return nil, fmt.Errorf("wire: gossip entry %d: bad state %d", i, data[0])
		}
		u.Inc = binary.BigEndian.Uint64(data[1:9])
		alen := int(binary.BigEndian.Uint16(data[9:11]))
		data = data[11:]
		if alen > maxGossipAddr {
			return nil, fmt.Errorf("wire: gossip entry %d: address of %d bytes exceeds limit", i, alen)
		}
		if len(data) < alen {
			return nil, fmt.Errorf("wire: gossip entry %d: address truncated", i)
		}
		u.Node.Addr = string(data[:alen])
		data = data[alen:]
		ups = append(ups, u)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("wire: gossip batch has %d trailing bytes", len(data))
	}
	return ups, nil
}
