package wire

import (
	"time"

	"peerstripe/internal/telemetry"
)

// PoolMetrics instruments a Pool. Instruments are resolved once at
// construction — per-op maps precomputed over Ops — so the per-call
// recording cost is a handful of atomic adds with no lookups or
// allocation on the hot path. A nil *PoolMetrics (the zero Pool.Metrics)
// disables recording entirely.
type PoolMetrics struct {
	dials       *telemetry.Counter
	dialErrors  *telemetry.Counter
	retries     *telemetry.Counter
	v1Calls     *telemetry.Counter
	bytesOut    *telemetry.Counter
	bytesIn     *telemetry.Counter
	calls       map[Op]*telemetry.Counter
	callErrors  map[Op]*telemetry.Counter
	callSeconds map[Op]*telemetry.Histogram
}

// NewPoolMetrics registers the pool's instrument families in reg and
// returns the resolved set. The per-op families carry an op label with
// one series per protocol op.
func NewPoolMetrics(reg *telemetry.Registry) *PoolMetrics {
	m := &PoolMetrics{
		dials:       reg.Counter("ps_client_dials_total", "Connections dialed by the wire pool."),
		dialErrors:  reg.Counter("ps_client_dial_errors_total", "Dials that failed."),
		retries:     reg.Counter("ps_client_retries_total", "Calls retried after the pooled connection died under them."),
		v1Calls:     reg.Counter("ps_client_v1_calls_total", "Calls served over the single-shot v1 fallback protocol."),
		bytesOut:    reg.Counter("ps_client_bytes_out_total", "Request payload bytes sent."),
		bytesIn:     reg.Counter("ps_client_bytes_in_total", "Response payload bytes received."),
		calls:       make(map[Op]*telemetry.Counter, len(Ops)),
		callErrors:  make(map[Op]*telemetry.Counter, len(Ops)),
		callSeconds: make(map[Op]*telemetry.Histogram, len(Ops)),
	}
	for _, op := range Ops {
		m.calls[op] = reg.Counter("ps_client_calls_total", "Round trips issued, by protocol op.", "op", string(op))
		m.callErrors[op] = reg.Counter("ps_client_call_errors_total", "Round trips that returned an error, by protocol op.", "op", string(op))
		m.callSeconds[op] = reg.Histogram("ps_client_call_seconds", "Round-trip latency, by protocol op.", "op", string(op))
	}
	return m
}

// record accounts one finished round trip. An op outside Ops resolves
// to nil instruments, which no-op.
func (m *PoolMetrics) record(op Op, start time.Time, req *Request, resp *Response, err error) {
	m.calls[op].Inc()
	m.callSeconds[op].Since(start)
	if err != nil {
		m.callErrors[op].Inc()
	}
	m.bytesOut.Add(int64(len(req.Data)))
	if resp != nil {
		m.bytesIn.Add(int64(len(resp.Data)))
	}
}

// The count helpers below are nil-safe so Pool call sites stay
// unconditional.

func (m *PoolMetrics) countDial() {
	if m != nil {
		m.dials.Inc()
	}
}

func (m *PoolMetrics) countDialError() {
	if m != nil {
		m.dialErrors.Inc()
	}
}

func (m *PoolMetrics) countRetry() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *PoolMetrics) countV1() {
	if m != nil {
		m.v1Calls.Inc()
	}
}
