package wire

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// FuzzWireFrame exercises the frame codec from both directions: a
// structured round trip (whatever WriteFrame emits, ReadFrame must
// reproduce) and raw-bytes decoding (truncated, oversized, and
// garbage-header inputs must error cleanly, never panic, and never
// allocate anywhere near what a lying header advertises).
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte("hello"), "blk_0_1", uint32(5))
	f.Add([]byte{}, "", uint32(0))
	f.Add([]byte{0xff, 0x00}, "x", uint32(MaxFrame+1))
	var valid bytes.Buffer
	_ = WriteFrame(&valid, &Request{Op: OpStore, Name: "seed", Data: []byte{1, 2, 3}})
	f.Add(valid.Bytes(), "seed", uint32(valid.Len()))

	f.Fuzz(func(t *testing.T, data []byte, name string, hdrLen uint32) {
		// 1. Round trip: encode a request built from the fuzz inputs.
		req := Request{Op: OpStore, Name: name, Data: data, Names: []string{name}}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &req); err != nil {
			t.Fatalf("WriteFrame of %d-byte payload: %v", len(data), err)
		}
		var got Request
		if err := ReadFrame(bytes.NewReader(buf.Bytes()), &got); err != nil {
			t.Fatalf("ReadFrame of own frame: %v", err)
		}
		if got.Name != req.Name || !bytes.Equal(got.Data, req.Data) {
			t.Fatalf("round trip mismatch: %q/%d bytes", got.Name, len(got.Data))
		}

		// 2. The v2 binary codec must round-trip the same request, and
		// a response carrying the fuzz payload.
		buf.Reset()
		if err := writeRequestV2(&buf, &req); err != nil {
			t.Fatalf("writeRequestV2: %v", err)
		}
		var gotV2 Request
		if err := readRequestV2(bytes.NewReader(buf.Bytes()), &gotV2); err != nil {
			t.Fatalf("readRequestV2 of own frame: %v", err)
		}
		if gotV2.Name != req.Name || !bytes.Equal(gotV2.Data, req.Data) ||
			len(gotV2.Names) != len(req.Names) {
			t.Fatalf("v2 request round trip mismatch: %+v", gotV2)
		}
		resp := Response{OK: true, ID: uint64(hdrLen), Err: name, Data: data,
			Capacity: int64(len(data)), Ring: []NodeInfo{{Addr: name}}}
		buf.Reset()
		if err := writeResponseV2(&buf, &resp); err != nil {
			t.Fatalf("writeResponseV2: %v", err)
		}
		var gotResp Response
		if err := readResponseV2(bytes.NewReader(buf.Bytes()), &gotResp); err != nil {
			t.Fatalf("readResponseV2 of own frame: %v", err)
		}
		if gotResp.Err != resp.Err || !bytes.Equal(gotResp.Data, resp.Data) ||
			len(gotResp.Ring) != 1 || gotResp.Ring[0].Addr != name {
			t.Fatalf("v2 response round trip mismatch: %+v", gotResp)
		}

		// 3. Raw garbage: the fuzz bytes as-is must never panic in
		// either codec.
		var junk Request
		_ = ReadFrame(bytes.NewReader(data), &junk)
		_ = readRequestV2(bytes.NewReader(data), &junk)
		var junkResp Response
		_ = readResponseV2(bytes.NewReader(data), &junkResp)

		// 4. Forged header over the fuzz body: whatever length the
		// header claims, decoding must not panic and must not
		// allocate more than the body actually delivers (plus the
		// bounded pre-grow step).
		forged := make([]byte, 4+len(data))
		binary.BigEndian.PutUint32(forged, hdrLen)
		copy(forged[4:], data)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		_ = ReadFrame(bytes.NewReader(forged), &junk)
		runtime.ReadMemStats(&after)
		if grew := after.TotalAlloc - before.TotalAlloc; grew > uint64(len(data))+2*frameGrowStep {
			t.Fatalf("lying header of %d bytes over %d-byte body allocated %d bytes",
				hdrLen, len(data), grew)
		}
		_ = readRequestV2(bytes.NewReader(forged), &junk)
		_ = readResponseV2(bytes.NewReader(forged), &junkResp)
	})
}
