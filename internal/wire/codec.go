package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"peerstripe/internal/ids"
)

// v2 frame codec. v1 frames carry gob, which re-compiles and
// re-transmits full type descriptions on every stateless frame — that
// profiled at ~70% of the live data path's CPU. Multiplexed (v2)
// connections therefore carry a compact hand-rolled binary encoding of
// the same Request/Response structs: one length-prefixed frame per
// message, every variable-length field bounds-checked against the
// bytes actually received, so a forged header can neither panic the
// decoder nor make it over-allocate.
//
// Frame layout (big endian):
//
//	[4B body len][1B kind][8B ID] kind-specific fields…
//
// Request:  op, name, names[], data, node
// Response: flags(OK), err, data, capacity, used, blocks, ring[]
//
// Strings carry a 2-byte length, byte blobs a 4-byte length, list
// counts 4 bytes; a NodeInfo is a raw 20-byte ID plus an address
// string.

const (
	kindRequest  = 1
	kindResponse = 2
)

var errFrameCorrupt = errors.New("wire: corrupt v2 frame")

type frameWriter struct{ buf *bytes.Buffer }

func (w frameWriter) u8(v byte) { w.buf.WriteByte(v) }
func (w frameWriter) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}
func (w frameWriter) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}
func (w frameWriter) i64(v int64) { w.u64(uint64(v)) }
func (w frameWriter) str(s string) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], uint16(len(s)))
	w.buf.Write(b[:])
	w.buf.WriteString(s)
}
func (w frameWriter) blob(p []byte) { w.u32(uint32(len(p))); w.buf.Write(p) }
func (w frameWriter) node(n NodeInfo) {
	w.buf.Write(n.ID[:])
	w.str(n.Addr)
}

type frameReader struct {
	b   []byte
	err error
}

func (r *frameReader) take(n int) []byte {
	if r.err != nil || n < 0 || n > len(r.b) {
		r.err = errFrameCorrupt
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *frameReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *frameReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *frameReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *frameReader) i64() int64 { return int64(r.u64()) }

func (r *frameReader) str() string {
	b := r.take(2)
	if b == nil {
		return ""
	}
	return string(r.take(int(binary.BigEndian.Uint16(b))))
}

// blob returns a copy: the backing frame buffer is pooled.
func (r *frameReader) blob() []byte {
	n := r.u32()
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *frameReader) node() NodeInfo {
	var n NodeInfo
	copy(n.ID[:], r.take(len(n.ID)))
	n.Addr = r.str()
	return n
}

// maxListLen caps decoded list counts. Far above anything the
// protocol produces (Names is one chunk's blocks, Ring is the
// membership), it bounds the slice-header allocation a forged count
// could otherwise amplify out of a dense frame.
const maxListLen = 1 << 16

// count validates a list length against the bytes left (each element
// occupies at least elemMin bytes) and maxListLen, so a forged count
// cannot drive a huge allocation.
func (r *frameReader) count(elemMin int) int {
	n := int(r.u32())
	if r.err == nil && (n > maxListLen || n*elemMin > len(r.b)) {
		r.err = errFrameCorrupt
		return 0
	}
	return n
}

func (r *frameReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return errFrameCorrupt
	}
	return nil
}

// writeV2 frames one encoded message: body assembled in a pooled
// buffer behind a 4-byte length prefix, one Write call.
func writeV2(w io.Writer, encode func(frameWriter)) error {
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	buf.Write(make([]byte, 4))
	encode(frameWriter{buf})
	b := buf.Bytes()
	n := len(b) - 4
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	_, err := w.Write(b)
	return err
}

// readV2Body reads one length-prefixed frame body (shared bounded-
// growth path with ReadFrame) and decodes it.
func readV2Body(r io.Reader, decode func(*frameReader) error) error {
	return readFrameBody(r, func(body []byte) error {
		return decode(&frameReader{b: body})
	})
}

func writeRequestV2(w io.Writer, req *Request) error {
	if len(req.Name) > 0xffff || len(req.Node.Addr) > 0xffff || len(req.Op) > 0xffff {
		return fmt.Errorf("wire: request field too long")
	}
	if len(req.Names) > maxListLen {
		return fmt.Errorf("wire: request carries %d names, limit %d", len(req.Names), maxListLen)
	}
	for _, n := range req.Names {
		// An unchecked element would truncate its uint16 length prefix
		// and poison the whole multiplexed stream.
		if len(n) > 0xffff {
			return fmt.Errorf("wire: request name of %d bytes too long", len(n))
		}
	}
	return writeV2(w, func(fw frameWriter) {
		fw.u8(kindRequest)
		fw.u64(req.ID)
		fw.str(string(req.Op))
		fw.str(req.Name)
		fw.u32(uint32(len(req.Names)))
		for _, n := range req.Names {
			fw.str(n)
		}
		fw.blob(req.Data)
		fw.node(req.Node)
	})
}

func readRequestV2(r io.Reader, req *Request) error {
	return readV2Body(r, func(fr *frameReader) error {
		if fr.u8() != kindRequest {
			return errFrameCorrupt
		}
		req.ID = fr.u64()
		req.Op = Op(fr.str())
		req.Name = fr.str()
		if n := fr.count(2); n > 0 {
			req.Names = make([]string, n)
			for i := range req.Names {
				req.Names[i] = fr.str()
			}
		}
		req.Data = fr.blob()
		req.Node = fr.node()
		return fr.done()
	})
}

func writeResponseV2(w io.Writer, resp *Response) error {
	if len(resp.Err) > 0xffff {
		return fmt.Errorf("wire: response error string too long")
	}
	if len(resp.Ring) > maxListLen {
		return fmt.Errorf("wire: response carries %d ring members, limit %d", len(resp.Ring), maxListLen)
	}
	for _, n := range resp.Ring {
		if len(n.Addr) > 0xffff {
			return fmt.Errorf("wire: ring address of %d bytes too long", len(n.Addr))
		}
	}
	return writeV2(w, func(fw frameWriter) {
		fw.u8(kindResponse)
		fw.u64(resp.ID)
		var flags byte
		if resp.OK {
			flags = 1
		}
		fw.u8(flags)
		fw.str(resp.Err)
		fw.blob(resp.Data)
		fw.i64(resp.Capacity)
		fw.i64(resp.Used)
		fw.u32(uint32(resp.Blocks))
		fw.u32(uint32(len(resp.Ring)))
		for _, n := range resp.Ring {
			fw.node(n)
		}
	})
}

func readResponseV2(r io.Reader, resp *Response) error {
	return readV2Body(r, func(fr *frameReader) error {
		if fr.u8() != kindResponse {
			return errFrameCorrupt
		}
		resp.ID = fr.u64()
		resp.OK = fr.u8()&1 != 0
		resp.Err = fr.str()
		resp.Data = fr.blob()
		resp.Capacity = fr.i64()
		resp.Used = fr.i64()
		resp.Blocks = int(int32(fr.u32()))
		if n := fr.count(ids.Bytes + 2); n > 0 {
			resp.Ring = make([]NodeInfo, n)
			for i := range resp.Ring {
				resp.Ring[i] = fr.node()
			}
		}
		return fr.done()
	})
}
