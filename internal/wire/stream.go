package wire

import (
	"fmt"
	"strconv"
)

// Chunked block streaming. A block larger than one frame cannot ride a
// single OpStore/OpFetch exchange (MaxFrame bounds every message), so
// it flows as a sequence of bounded segments instead. Each segment is
// an ordinary request/response round trip — no new frame layout, no
// handshake change — which keeps both frame codecs and both protocol
// versions byte-compatible: a pre-streaming peer parses the request
// fine and answers "unknown op", the graceful signal the client uses
// to fall back to single-frame transfers.
//
// The segment control fields ride Request.Names as decimal strings:
//
//	OpStoreStream: Names = [streamID, seq, total, size]; Data = segment
//	    bytes. Segments of one block share a streamID, carry 0-based
//	    seq, and are sent in order (each awaits its ack), so the server
//	    assembles with a simple append. total is the segment count and
//	    size the exact block length, both constant across the stream.
//	OpFetchStream: Names = [offset, maxLen]. The response carries up to
//	    maxLen bytes of the block at offset in Data and the total block
//	    size in Capacity, so the first segment tells the client how
//	    many more to request. The exchange is stateless on the server.
//	OpStoreWindow: Names = [streamID, seq, total, size, segSize]; Data =
//	    segment bytes. The windowed upload form: unlike OpStoreStream,
//	    segments of one stream may be in flight concurrently and arrive
//	    in any order — the fixed segSize pins segment seq to byte offset
//	    seq*segSize, so the server places each one directly instead of
//	    appending. Every ack's Capacity carries the bytes staged so far,
//	    the flow-control signal a sender's window advances on. A peer
//	    predating the op answers "unknown op" and the client degrades to
//	    the in-order OpStoreStream exchange, then to single frames.

// DefaultSegment is the streaming transfer segment size: large enough
// to amortize round trips, small enough that a segment frame stays far
// under MaxFrame and per-transfer memory stays bounded.
const DefaultSegment = 4 << 20

// MaxBlockSize bounds one streamed block (1 GiB): a lying size header
// cannot reserve unbounded staging memory on the server.
const MaxBlockSize = 1 << 30

// BlockTooLarge is the error marker a server returns for an OpFetch of
// a block whose single-frame response would exceed MaxFrame. Clients
// that see it retry with OpFetchStream.
const BlockTooLarge = "block too large for one frame"

// StoreSegment describes one OpStoreStream segment's position in its
// stream.
type StoreSegment struct {
	Stream uint64 // shared by every segment of one block transfer
	Seq    int    // 0-based segment index, sent in order
	Total  int    // total segments in the stream
	Size   int64  // exact block size in bytes
}

// EncodeStoreStream builds the request for one upload segment.
func EncodeStoreStream(name string, seg StoreSegment, data []byte) *Request {
	return &Request{
		Op:   OpStoreStream,
		Name: name,
		Names: []string{
			strconv.FormatUint(seg.Stream, 10),
			strconv.Itoa(seg.Seq),
			strconv.Itoa(seg.Total),
			strconv.FormatInt(seg.Size, 10),
		},
		Data: data,
	}
}

// ParseStoreStream recovers the segment descriptor from an
// OpStoreStream request.
func ParseStoreStream(req *Request) (StoreSegment, error) {
	var seg StoreSegment
	if len(req.Names) != 4 {
		return seg, fmt.Errorf("wire: %s carries %d control fields, want 4", OpStoreStream, len(req.Names))
	}
	stream, err0 := strconv.ParseUint(req.Names[0], 10, 64)
	seq, err1 := strconv.Atoi(req.Names[1])
	total, err2 := strconv.Atoi(req.Names[2])
	size, err3 := strconv.ParseInt(req.Names[3], 10, 64)
	if err0 != nil || err1 != nil || err2 != nil || err3 != nil ||
		seq < 0 || total <= 0 || seq >= total || size <= 0 || size > MaxBlockSize {
		return seg, fmt.Errorf("wire: malformed %s control fields %q", OpStoreStream, req.Names)
	}
	seg = StoreSegment{Stream: stream, Seq: seq, Total: total, Size: size}
	return seg, nil
}

// WindowSegment describes one OpStoreWindow segment. The segment's
// byte range is [Seq*Seg, min((Seq+1)*Seg, Size)).
type WindowSegment struct {
	Stream uint64 // shared by every segment of one block transfer
	Seq    int    // 0-based segment index, any arrival order
	Total  int    // total segments in the stream
	Size   int64  // exact block size in bytes
	Seg    int64  // fixed segment size (the last segment may be short)
}

// EncodeStoreWindow builds the request for one windowed upload segment.
func EncodeStoreWindow(name string, seg WindowSegment, data []byte) *Request {
	return &Request{
		Op:   OpStoreWindow,
		Name: name,
		Names: []string{
			strconv.FormatUint(seg.Stream, 10),
			strconv.Itoa(seg.Seq),
			strconv.Itoa(seg.Total),
			strconv.FormatInt(seg.Size, 10),
			strconv.FormatInt(seg.Seg, 10),
		},
		Data: data,
	}
}

// ParseStoreWindow recovers the segment descriptor from an
// OpStoreWindow request.
func ParseStoreWindow(req *Request) (WindowSegment, error) {
	var seg WindowSegment
	if len(req.Names) != 5 {
		return seg, fmt.Errorf("wire: %s carries %d control fields, want 5", OpStoreWindow, len(req.Names))
	}
	stream, err0 := strconv.ParseUint(req.Names[0], 10, 64)
	sq, err1 := strconv.Atoi(req.Names[1])
	total, err2 := strconv.Atoi(req.Names[2])
	size, err3 := strconv.ParseInt(req.Names[3], 10, 64)
	sg, err4 := strconv.ParseInt(req.Names[4], 10, 64)
	if err0 != nil || err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
		sq < 0 || total <= 0 || sq >= total || size <= 0 || size > MaxBlockSize ||
		sg <= 0 || int64(total) != (size+sg-1)/sg {
		return seg, fmt.Errorf("wire: malformed %s control fields %q", OpStoreWindow, req.Names)
	}
	seg = WindowSegment{Stream: stream, Seq: sq, Total: total, Size: size, Seg: sg}
	return seg, nil
}

// EncodeFetchStream builds the request for one ranged block read.
func EncodeFetchStream(name string, off, maxLen int64) *Request {
	return &Request{
		Op:   OpFetchStream,
		Name: name,
		Names: []string{
			strconv.FormatInt(off, 10),
			strconv.FormatInt(maxLen, 10),
		},
	}
}

// ParseFetchStream recovers (offset, maxLen) from an OpFetchStream
// request.
func ParseFetchStream(req *Request) (off, maxLen int64, err error) {
	if len(req.Names) != 2 {
		return 0, 0, fmt.Errorf("wire: %s carries %d control fields, want 2", OpFetchStream, len(req.Names))
	}
	off, err0 := strconv.ParseInt(req.Names[0], 10, 64)
	maxLen, err1 := strconv.ParseInt(req.Names[1], 10, 64)
	if err0 != nil || err1 != nil || off < 0 || maxLen <= 0 {
		return 0, 0, fmt.Errorf("wire: malformed %s control fields %q", OpFetchStream, req.Names)
	}
	return off, maxLen, nil
}
