package wire

import (
	"testing"
)

func TestStoreStreamRoundTrip(t *testing.T) {
	seg := StoreSegment{Stream: 0xdeadbeefcafe, Seq: 3, Total: 9, Size: 33<<20 + 17}
	req := EncodeStoreStream("f_0_2", seg, []byte{1, 2, 3})
	if req.Op != OpStoreStream || req.Name != "f_0_2" {
		t.Fatalf("encoded request %+v", req)
	}
	got, err := ParseStoreStream(req)
	if err != nil {
		t.Fatal(err)
	}
	if got != seg {
		t.Fatalf("round trip %+v, want %+v", got, seg)
	}
}

func TestStoreStreamRejectsMalformed(t *testing.T) {
	bad := []*Request{
		{Op: OpStoreStream}, // no control fields
		{Op: OpStoreStream, Names: []string{"1", "2", "3"}},                   // short
		{Op: OpStoreStream, Names: []string{"x", "0", "1", "10"}},             // non-numeric
		{Op: OpStoreStream, Names: []string{"1", "-1", "1", "10"}},            // negative seq
		{Op: OpStoreStream, Names: []string{"1", "2", "2", "10"}},             // seq >= total
		{Op: OpStoreStream, Names: []string{"1", "0", "1", "0"}},              // zero size
		{Op: OpStoreStream, Names: []string{"1", "0", "1", "99999999999999"}}, // over MaxBlockSize
	}
	for i, req := range bad {
		if _, err := ParseStoreStream(req); err == nil {
			t.Errorf("case %d: malformed segment accepted", i)
		}
	}
}

func TestFetchStreamRoundTrip(t *testing.T) {
	req := EncodeFetchStream("blk", 77<<20, 4<<20)
	off, maxLen, err := ParseFetchStream(req)
	if err != nil {
		t.Fatal(err)
	}
	if off != 77<<20 || maxLen != 4<<20 {
		t.Fatalf("round trip (%d, %d)", off, maxLen)
	}
	for i, r := range []*Request{
		{Op: OpFetchStream},
		{Op: OpFetchStream, Names: []string{"-1", "10"}},
		{Op: OpFetchStream, Names: []string{"0", "0"}},
		{Op: OpFetchStream, Names: []string{"a", "b"}},
	} {
		if _, _, err := ParseFetchStream(r); err == nil {
			t.Errorf("case %d: malformed range accepted", i)
		}
	}
}
