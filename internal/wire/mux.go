package wire

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// v2Preamble opens a multiplexed (v2) connection. Read as a v1 length
// prefix it is 0x50537632 (~1.3 GB), far above MaxFrame, so a v1 peer
// rejects the connection cleanly instead of mis-parsing it — which is
// exactly the signal Pool uses to fall back to single-shot calls.
var v2Preamble = [4]byte{'P', 'S', 'v', '2'}

// KeepAlivePeriod is the TCP keep-alive interval on pooled connections.
const KeepAlivePeriod = 30 * time.Second

// DefaultInflight bounds concurrently served requests per v2
// connection when the server does not choose its own limit.
const DefaultInflight = 32

// ErrPoolClosed is returned by calls on a closed Pool.
var ErrPoolClosed = errors.New("wire: pool closed")

// errNotV2 reports that the peer did not complete the v2 handshake —
// a pre-v2 node, which Pool then reaches over single-shot v1 calls.
var errNotV2 = errors.New("wire: peer does not speak v2")

// Pool maintains one persistent multiplexed connection per peer
// address: requests are tagged with IDs, pipelined onto the shared
// connection, and demultiplexed as responses arrive, so concurrent
// callers share a socket instead of paying a dial per round trip.
// Peers that fail the v2 handshake are remembered and reached through
// single-shot v1 calls, keeping mixed-version rings working.
//
// The zero value is not usable; call NewPool. All methods are safe for
// concurrent use.
type Pool struct {
	// Timeout bounds one round trip, dial and handshake included
	// (default DefaultTimeout). Set before first use.
	Timeout time.Duration

	// Metrics, when non-nil, receives per-call and per-connection
	// telemetry (see NewPoolMetrics). Set before first use.
	Metrics *PoolMetrics

	mu     sync.Mutex
	peers  map[string]*poolPeer
	closed bool
}

// poolPeer is the per-address pool state. Its mutex serializes
// connection establishment so a burst of first calls produces one dial
// instead of a thundering herd; calls on an established connection
// only hold it long enough to read the fields.
type poolPeer struct {
	mu sync.Mutex
	mc *muxConn
	v1 bool
}

// NewPool returns an empty connection pool.
func NewPool() *Pool {
	return &Pool{peers: make(map[string]*poolPeer)}
}

func (p *Pool) timeout() time.Duration {
	if p.Timeout > 0 {
		return p.Timeout
	}
	return DefaultTimeout
}

// Call performs one round trip to addr over the pooled multiplexed
// connection, establishing (or re-establishing) it as needed.
func (p *Pool) Call(addr string, req *Request) (*Response, error) {
	return p.CallTimeout(addr, req, p.timeout())
}

// CallTimeout is Call with an explicit per-request deadline.
func (p *Pool) CallTimeout(addr string, req *Request, timeout time.Duration) (*Response, error) {
	return p.CallCtx(context.Background(), addr, req, timeout)
}

// CallCtx is CallTimeout bounded by ctx as well: cancellation aborts
// the wait for the response (and the dial) promptly, leaving the
// shared connection intact for other requests.
func (p *Pool) CallCtx(ctx context.Context, addr string, req *Request, timeout time.Duration) (*Response, error) {
	m := p.Metrics
	if m == nil {
		return p.callCtx(ctx, addr, req, timeout)
	}
	start := time.Now()
	resp, err := p.callCtx(ctx, addr, req, timeout)
	m.record(req.Op, start, req, resp, err)
	return resp, err
}

// callCtx is CallCtx's body, split out so instrumentation wraps the
// whole round trip (retries and v1 fallback included) exactly once.
func (p *Pool) callCtx(ctx context.Context, addr string, req *Request, timeout time.Duration) (*Response, error) {
	if timeout <= 0 {
		timeout = p.timeout()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	peer, err := p.peer(addr)
	if err != nil {
		return nil, err
	}
	mc, err := p.connected(peer, addr, timeout)
	if err == errNotV2 {
		p.Metrics.countV1()
		return CallCtx(ctx, addr, req, timeout)
	}
	if err != nil {
		return nil, err
	}
	resp, err := mc.call(ctx, addr, req, timeout)
	if err != nil && mc.dead() && ctx.Err() == nil {
		// The connection died under this request. Every protocol op is
		// idempotent, so retry exactly once on a fresh connection —
		// the common cause is a peer that restarted between calls.
		p.Metrics.countRetry()
		mc, err2 := p.connected(peer, addr, timeout)
		if err2 == errNotV2 {
			p.Metrics.countV1()
			return CallCtx(ctx, addr, req, timeout)
		}
		if err2 != nil {
			return nil, err
		}
		return mc.call(ctx, addr, req, timeout)
	}
	return resp, err
}

// peer returns the per-address pool entry, creating it on first use.
func (p *Pool) peer(addr string) (*poolPeer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	peer := p.peers[addr]
	if peer == nil {
		peer = new(poolPeer)
		p.peers[addr] = peer
	}
	return peer, nil
}

// connected returns a live multiplexed connection for peer, dialing
// and handshaking under the peer lock so concurrent first calls share
// one dial.
func (p *Pool) connected(peer *poolPeer, addr string, timeout time.Duration) (*muxConn, error) {
	peer.mu.Lock()
	defer peer.mu.Unlock()
	if peer.v1 {
		return nil, errNotV2
	}
	if peer.mc != nil && !peer.mc.dead() {
		return peer.mc, nil
	}

	p.Metrics.countDial()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		p.Metrics.countDialError()
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)                  //nolint:errcheck
		tc.SetKeepAlivePeriod(KeepAlivePeriod) //nolint:errcheck
		tc.SetNoDelay(true)                    //nolint:errcheck
	}
	conn.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
	if _, err := conn.Write(v2Preamble[:]); err != nil {
		conn.Close()
		p.Metrics.countDialError()
		return nil, fmt.Errorf("wire: handshake with %s: %w", addr, err)
	}
	var banner [4]byte
	if _, err := io.ReadFull(conn, banner[:]); err != nil || banner != v2Preamble {
		// A v1 peer reads the preamble as an oversized frame and hangs
		// up without a banner. Remember it and fall back.
		conn.Close()
		peer.v1 = true
		return nil, errNotV2
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck

	mc := newMuxConn(conn)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		mc.fail(ErrPoolClosed)
		return nil, ErrPoolClosed
	}
	p.mu.Unlock()
	peer.mc = mc
	return mc, nil
}

// Forget drops the cached state for addr: its pooled connection and
// any v1-only marking (e.g. after the peer was upgraded).
func (p *Pool) Forget(addr string) {
	p.mu.Lock()
	peer := p.peers[addr]
	delete(p.peers, addr)
	p.mu.Unlock()
	if peer == nil {
		return
	}
	peer.mu.Lock()
	mc := peer.mc
	peer.mu.Unlock()
	if mc != nil {
		mc.fail(errors.New("wire: connection dropped"))
	}
}

// Close tears down every pooled connection. Subsequent calls fail with
// ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	peers := p.peers
	p.peers = nil
	p.mu.Unlock()
	for _, peer := range peers {
		peer.mu.Lock()
		mc := peer.mc
		peer.mu.Unlock()
		if mc != nil {
			mc.fail(ErrPoolClosed)
		}
	}
}

// muxConn is one multiplexed connection: a write mutex serializes
// outgoing frames, a read loop demultiplexes responses by ID.
type muxConn struct {
	c   net.Conn
	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *Response
	nextID  uint64
	err     error
	done    chan struct{}
}

func newMuxConn(c net.Conn) *muxConn {
	m := &muxConn{c: c, pending: make(map[uint64]chan *Response), done: make(chan struct{})}
	go m.readLoop()
	return m
}

func (m *muxConn) readLoop() {
	br := bufio.NewReaderSize(m.c, 64<<10)
	for {
		resp := new(Response)
		if err := readResponseV2(br, resp); err != nil {
			m.fail(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		m.mu.Lock()
		ch := m.pending[resp.ID]
		delete(m.pending, resp.ID)
		m.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered; an unknown ID is a timed-out caller's late response
		}
	}
}

func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		close(m.done)
	}
	m.mu.Unlock()
	m.c.Close()
}

func (m *muxConn) dead() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

func (m *muxConn) forget(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

func (m *muxConn) call(ctx context.Context, addr string, req *Request, timeout time.Duration) (*Response, error) {
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return nil, err
	}
	m.nextID++
	id := m.nextID
	ch := make(chan *Response, 1)
	m.pending[id] = ch
	m.mu.Unlock()

	r := *req // callers keep ownership of req; the ID goes on a copy
	r.ID = id
	m.wmu.Lock()
	m.c.SetWriteDeadline(time.Now().Add(timeout)) //nolint:errcheck
	err := writeRequestV2(m.c, &r)
	m.wmu.Unlock()
	if err != nil {
		// A half-written frame poisons the stream for every request.
		m.fail(fmt.Errorf("wire: send to %s: %w", addr, err))
		m.forget(id)
		return nil, fmt.Errorf("wire: send to %s: %w", addr, err)
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp, respError(req.Op, resp)
	case <-ctx.Done():
		m.forget(id)
		return nil, fmt.Errorf("wire: %s to %s: %w", req.Op, addr, ctx.Err())
	case <-m.done:
		// The response may have been delivered just before the
		// connection died; prefer it.
		select {
		case resp := <-ch:
			return resp, respError(req.Op, resp)
		default:
		}
		m.forget(id)
		m.mu.Lock()
		err := m.err
		m.mu.Unlock()
		return nil, fmt.Errorf("wire: %s to %s: %w", req.Op, addr, err)
	case <-timer.C:
		m.forget(id)
		return nil, fmt.Errorf("wire: %s to %s: timeout after %v", req.Op, addr, timeout)
	}
}

// Handler processes one request. On a v2 connection handlers run
// concurrently (bounded by the server's inflight limit), so they must
// be safe for concurrent use.
type Handler func(*Request) *Response

// Serve speaks the server side of both protocol versions on conn until
// the peer hangs up or the connection fails: v2 (pipelined, responses
// possibly out of order) when the client opens with the preamble,
// sequential v1 otherwise. maxInflight bounds concurrent handlers per
// v2 connection (0 selects DefaultInflight).
func Serve(conn net.Conn, h Handler, maxInflight int) {
	if maxInflight <= 0 {
		maxInflight = DefaultInflight
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	peek, err := br.Peek(4)
	if err != nil {
		return
	}
	if !bytes.Equal(peek, v2Preamble[:]) {
		// v1: strict request/response lockstep. The original protocol
		// closed after one exchange; serving a sequence keeps that
		// contract (the v1 client hangs up whenever it wants).
		for {
			var req Request
			if err := ReadFrame(br, &req); err != nil {
				return
			}
			resp := h(&req)
			resp.ID = req.ID
			conn.SetWriteDeadline(time.Now().Add(DefaultTimeout)) //nolint:errcheck
			if err := WriteFrame(conn, resp); err != nil {
				return
			}
		}
	}

	br.Discard(4)                                         //nolint:errcheck
	conn.SetWriteDeadline(time.Now().Add(DefaultTimeout)) //nolint:errcheck
	if _, err := conn.Write(v2Preamble[:]); err != nil {
		return
	}
	var wmu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	sem := make(chan struct{}, maxInflight)
	for {
		req := new(Request)
		if err := readRequestV2(br, req); err != nil {
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			resp := h(req)
			resp.ID = req.ID
			wmu.Lock()
			conn.SetWriteDeadline(time.Now().Add(DefaultTimeout)) //nolint:errcheck
			_ = writeResponseV2(conn, resp)
			wmu.Unlock()
		}()
	}
}
