package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"peerstripe/internal/ids"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{
		Op:   OpStore,
		Name: "file_3_1",
		Data: []byte{0, 1, 2, 255},
		Node: NodeInfo{ID: ids.FromName("n"), Addr: "127.0.0.1:9"},
	}
	if err := WriteFrame(&buf, &req); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.Name != req.Name || !bytes.Equal(got.Data, req.Data) ||
		got.Node.ID != req.Node.ID || got.Node.Addr != req.Node.Addr {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFrameMultipleSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		resp := Response{OK: true, Capacity: int64(i)}
		if err := WriteFrame(&buf, &resp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		var got Response
		if err := ReadFrame(&buf, &got); err != nil {
			t.Fatal(err)
		}
		if got.Capacity != int64(i) {
			t.Fatalf("frame %d out of order: %d", i, got.Capacity)
		}
	}
	var extra Response
	if err := ReadFrame(&buf, &extra); err != io.EOF {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	var got Response
	if err := ReadFrame(strings.NewReader("\x00\x00"), &got); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	// Header claims 100 bytes, body has 3.
	r := strings.NewReader("\x00\x00\x00\x64abc")
	var got Response
	if err := ReadFrame(r, &got); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestReadFrameOversized(t *testing.T) {
	// Header claims > MaxFrame.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	var got Response
	if err := ReadFrame(bytes.NewReader(hdr), &got); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}

func TestWriteFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	req := Request{Op: OpStore, Data: make([]byte, MaxFrame+1)}
	if err := WriteFrame(&buf, &req); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestCallDialFailure(t *testing.T) {
	if _, err := Call("127.0.0.1:1", &Request{Op: OpRing}); err == nil {
		t.Fatal("call to dead address succeeded")
	}
}

func TestFrameLargePayload(t *testing.T) {
	var buf bytes.Buffer
	data := make([]byte, 8<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := WriteFrame(&buf, &Request{Op: OpStore, Data: data}); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatal("large payload corrupted")
	}
}
