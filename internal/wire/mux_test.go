package wire

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peerstripe/internal/ids"
)

// echoHandler answers every op with a deterministic transform of the
// request, so both transports can be checked against the same golden
// expectations.
func echoHandler(req *Request) *Response {
	resp := &Response{OK: true}
	switch req.Op {
	case OpJoin, OpAdd:
		resp.Ring = []NodeInfo{req.Node}
	case OpRing:
		resp.Ring = []NodeInfo{{ID: ids.FromName("golden"), Addr: "golden:1"}}
	case OpGetCap:
		resp.Capacity = 1000
	case OpCapBatch:
		resp.Capacity = 1000 + int64(len(req.Names))
	case OpStore, OpDelete:
		resp.Data = []byte(req.Name)
	case OpFetch:
		resp.Data = append([]byte("data:"), req.Name...)
	case OpStoreStream, OpFetchStream, OpStoreWindow:
		// Streaming segments are plain request/response exchanges; the
		// golden pins that their control fields (Names) and payloads
		// survive both transports unchanged.
		resp.Data = []byte(req.Name)
		resp.Capacity = int64(len(req.Names))
	case OpStat:
		resp.Capacity, resp.Used, resp.Blocks = 7, 3, 2
	case OpPing, OpGossip:
		// The gossip piggyback is opaque bytes in Data on both the
		// request and the response; the golden pins that it survives
		// both transports unchanged in both directions.
		resp.Data = req.Data
	case OpPingReq:
		// An indirect probe carries its target in Node; the echo proves
		// the target identity crosses both codecs.
		resp.Data = []byte(req.Node.Addr)
	default:
		return &Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
	return resp
}

// startV2Server serves the dual-version loop (Serve) on an ephemeral
// port, counting accepted connections.
func startV2Server(t testing.TB, h Handler) (addr string, accepts *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepts = new(atomic.Int64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				Serve(conn, h, 0)
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		// Serve loops exit when their client hangs up; pool Close in
		// each test does that before cleanup runs.
	})
	return ln.Addr().String(), accepts
}

// startV1OnlyServer mimics the seed protocol exactly: read one frame,
// respond, close. No preamble handling — a v2 handshake dies here,
// which is what the fallback path must survive.
func startV1OnlyServer(t testing.TB, h Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var req Request
				if err := ReadFrame(conn, &req); err != nil {
					return
				}
				_ = WriteFrame(conn, h(&req))
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func checkGolden(t *testing.T, op Op, resp *Response, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	if !resp.OK {
		t.Fatalf("%s: not OK: %s", op, resp.Err)
	}
	switch op {
	case OpJoin, OpAdd:
		if len(resp.Ring) != 1 || resp.Ring[0].Addr != "peer:9" {
			t.Fatalf("%s: ring echo %v", op, resp.Ring)
		}
	case OpRing:
		if len(resp.Ring) != 1 || resp.Ring[0].Addr != "golden:1" {
			t.Fatalf("%s: ring %v", op, resp.Ring)
		}
	case OpGetCap:
		if resp.Capacity != 1000 {
			t.Fatalf("%s: capacity %d", op, resp.Capacity)
		}
	case OpCapBatch:
		if resp.Capacity != 1002 {
			t.Fatalf("%s: batched capacity %d", op, resp.Capacity)
		}
	case OpStore, OpDelete:
		if string(resp.Data) != "blk" {
			t.Fatalf("%s: name echo %q", op, resp.Data)
		}
	case OpFetch:
		if string(resp.Data) != "data:blk" {
			t.Fatalf("%s: data %q", op, resp.Data)
		}
	case OpStoreStream, OpFetchStream, OpStoreWindow:
		if string(resp.Data) != "blk" || resp.Capacity != 2 {
			t.Fatalf("%s: echo %q/%d", op, resp.Data, resp.Capacity)
		}
	case OpStat:
		if resp.Capacity != 7 || resp.Used != 3 || resp.Blocks != 2 {
			t.Fatalf("%s: stat %+v", op, resp)
		}
	case OpPing, OpGossip:
		if !bytes.Equal(resp.Data, goldenGossip()) {
			t.Fatalf("%s: gossip payload did not survive: %q", op, resp.Data)
		}
	case OpPingReq:
		if string(resp.Data) != "peer:9" {
			t.Fatalf("%s: target echo %q", op, resp.Data)
		}
	}
}

// goldenGossip is a real encoded membership batch, so the golden pins
// that detector payloads — not just arbitrary bytes — cross every
// transport pairing.
func goldenGossip() []byte {
	return EncodeUpdates([]MemberUpdate{
		{Node: NodeInfo{ID: ids.FromName("m1"), Addr: "m1:1"}, State: StateAlive, Inc: 3},
		{Node: NodeInfo{ID: ids.FromName("m2"), Addr: "m2:2"}, State: StateSuspect, Inc: 1},
		{Node: NodeInfo{ID: ids.FromName("m3"), Addr: "m3:3"}, State: StateDead, Inc: 7},
	})
}

func goldenRequest(op Op) *Request {
	return &Request{
		Op:    op,
		Name:  "blk",
		Names: []string{"blk_0_0", "blk_0_1"},
		Data:  goldenGossip(),
		Node:  NodeInfo{ID: ids.FromName("peer"), Addr: "peer:9"},
	}
}

// TestLiveProtocolCompatGolden runs every protocol op through all four
// version pairings: v1 and pooled-v2 clients against the dual-version
// server, and both against a strict v1-only (seed) server — so
// mixed-version rings keep working for the whole op set.
func TestLiveProtocolCompatGolden(t *testing.T) {
	v2Addr, _ := startV2Server(t, echoHandler)
	v1Addr := startV1OnlyServer(t, echoHandler)

	pairings := []struct {
		name string
		call func(addr string, req *Request) (*Response, error)
		addr string
	}{
		{"v1Client_v2Server", Call, v2Addr},
		{"v1Client_v1Server", Call, v1Addr},
	}
	for _, pairing := range pairings {
		t.Run(pairing.name, func(t *testing.T) {
			for _, op := range Ops {
				resp, err := pairing.call(pairing.addr, goldenRequest(op))
				checkGolden(t, op, resp, err)
			}
		})
	}
	for _, target := range []struct {
		name string
		addr string
	}{{"v2Client_v2Server", v2Addr}, {"v2Client_v1Server", v1Addr}} {
		t.Run(target.name, func(t *testing.T) {
			p := NewPool()
			defer p.Close()
			for _, op := range Ops {
				resp, err := p.Call(target.addr, goldenRequest(op))
				checkGolden(t, op, resp, err)
			}
		})
	}
}

// TestPoolMultiplexesOneConnection fires many concurrent requests and
// verifies they all complete correctly over a single dialed socket.
func TestPoolMultiplexesOneConnection(t *testing.T) {
	addr, accepts := startV2Server(t, func(req *Request) *Response {
		return &Response{OK: true, Data: append([]byte("r:"), req.Name...)}
	})
	p := NewPool()
	defer p.Close()

	const calls = 200
	errs := make([]error, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("blk-%d", i)
			resp, err := p.Call(addr, &Request{Op: OpFetch, Name: name})
			if err != nil {
				errs[i] = err
				return
			}
			if string(resp.Data) != "r:"+name {
				errs[i] = fmt.Errorf("demux mismatch: got %q", resp.Data)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if n := accepts.Load(); n != 1 {
		t.Fatalf("%d connections dialed for %d multiplexed calls", n, calls)
	}
}

// TestPoolPerRequestDeadline checks that a stalled request times out
// on its own deadline without poisoning the shared connection.
func TestPoolPerRequestDeadline(t *testing.T) {
	release := make(chan struct{})
	addr, _ := startV2Server(t, func(req *Request) *Response {
		if req.Name == "slow" {
			<-release
		}
		return &Response{OK: true, Data: []byte(req.Name)}
	})
	p := NewPool()
	p.Timeout = 150 * time.Millisecond
	defer p.Close()
	defer close(release)

	if _, err := p.Call(addr, &Request{Op: OpFetch, Name: "slow"}); err == nil ||
		!strings.Contains(err.Error(), "timeout") {
		t.Fatalf("stalled request did not time out: %v", err)
	}
	// The connection must still serve other requests.
	resp, err := p.Call(addr, &Request{Op: OpFetch, Name: "fast"})
	if err != nil || string(resp.Data) != "fast" {
		t.Fatalf("connection poisoned after timeout: %v", err)
	}
}

// TestPoolSurvivesPeerRestart kills the peer's listener and sockets
// and verifies the pool re-establishes on the next call.
func TestPoolSurvivesPeerRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var conns sync.Map
	serve := func(ln net.Listener) {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns.Store(conn, struct{}{})
			go func() {
				defer conn.Close()
				Serve(conn, echoHandler, 0)
			}()
		}
	}
	go serve(ln)

	p := NewPool()
	p.Timeout = 2 * time.Second
	defer p.Close()
	if _, err := p.Call(addr, goldenRequest(OpGetCap)); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
	// Restart on the same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	go serve(ln2)

	resp, err := p.Call(addr, goldenRequest(OpGetCap))
	if err != nil || resp.Capacity != 1000 {
		t.Fatalf("pool did not recover after peer restart: %v", err)
	}
}

// TestPoolClosed verifies calls after Close fail fast.
func TestPoolClosed(t *testing.T) {
	p := NewPool()
	p.Close()
	if _, err := p.Call("127.0.0.1:1", goldenRequest(OpRing)); err != ErrPoolClosed {
		t.Fatalf("call on closed pool: %v", err)
	}
	p.Close() // idempotent
}

// TestServeInflightBound proves the per-connection pipeline cap: with
// maxInflight handlers blocked, the next request waits rather than
// spawning an unbounded handler.
func TestServeInflightBound(t *testing.T) {
	var inflight, peak atomic.Int64
	gate := make(chan struct{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const bound = 4
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		Serve(conn, func(req *Request) *Response {
			cur := inflight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			<-gate
			inflight.Add(-1)
			return &Response{OK: true}
		}, bound)
	}()

	p := NewPool()
	p.Timeout = 5 * time.Second
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3*bound; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Call(ln.Addr().String(), goldenRequest(OpGetCap)) //nolint:errcheck
		}()
	}
	// Let requests pile up against the gate, then release.
	time.Sleep(200 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > bound {
		t.Fatalf("inflight peak %d exceeds bound %d", got, bound)
	}
}

// TestFrameSteadyStateAllocs pins the per-frame allocation budget of
// the pooled encode/decode path so a regression (e.g. losing the
// buffer pool) shows up as a test failure, not a profile surprise.
func TestFrameSteadyStateAllocs(t *testing.T) {
	req := goldenRequest(OpStore)
	req.Data = make([]byte, 64<<10)
	var frame bytes.Buffer
	if err := WriteFrame(&frame, req); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()

	writes := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(io.Discard, req); err != nil {
			t.Fatal(err)
		}
	})
	// gob re-sends type info per frame (~15 allocs) but the frame
	// buffer itself must come from the pool.
	if writes > 40 {
		t.Fatalf("WriteFrame allocates %.0f/op, want <= 40", writes)
	}
	// Decoding pays gob's per-frame type-description parse (~220
	// allocs) on top of the payload copy; the body buffer itself must
	// come from the pool. The pin catches a lost pool or a quadratic
	// regression, with headroom for gob version drift.
	reads := testing.AllocsPerRun(200, func() {
		var got Request
		if err := ReadFrame(bytes.NewReader(raw), &got); err != nil {
			t.Fatal(err)
		}
	})
	if reads > 300 {
		t.Fatalf("ReadFrame allocates %.0f/op, want <= 300", reads)
	}

	// The v2 binary codec is why the multiplexed path is fast: a
	// handful of allocations per frame, not gob's per-frame type
	// compilation.
	var v2frame bytes.Buffer
	if err := writeRequestV2(&v2frame, req); err != nil {
		t.Fatal(err)
	}
	rawV2 := v2frame.Bytes()
	v2writes := testing.AllocsPerRun(200, func() {
		if err := writeRequestV2(io.Discard, req); err != nil {
			t.Fatal(err)
		}
	})
	if v2writes > 4 {
		t.Fatalf("writeRequestV2 allocates %.0f/op, want <= 4", v2writes)
	}
	v2reads := testing.AllocsPerRun(200, func() {
		var got Request
		if err := readRequestV2(bytes.NewReader(rawV2), &got); err != nil {
			t.Fatal(err)
		}
	})
	if v2reads > 12 {
		t.Fatalf("readRequestV2 allocates %.0f/op, want <= 12", v2reads)
	}
}
