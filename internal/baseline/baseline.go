// Package baseline implements the two comparison systems of §6.1 on the
// same overlay and pool as PeerStripe:
//
//   - PAST (Rowstron & Druschel, SOSP'01): whole files stored on the
//     single node their identifier maps to, with the salted-rehash retry
//     mechanism on refusal and optional k-replication.
//   - CFS (Dabek et al., SOSP'01): files split into fixed-size blocks,
//     each stored at its own DHT target with per-block retries. The
//     paper configures 4 MB blocks for its large-file trace (the
//     original CFS used 8 KB).
//
// Both report the same accounting as core.Store so the Figure 7/8/9 and
// Table 1 comparisons are apples-to-apples.
package baseline

import (
	"fmt"

	"peerstripe/internal/sim"
)

// PAST stores whole files at their key's owner.
type PAST struct {
	Pool *sim.Pool
	// Retries is the number of salted rehash attempts after the first
	// refusal (the paper's "retry mechanism that essentially rehashes
	// the file name with a new salt value").
	Retries int
	// Replicas is the PAST replication factor k; §6.1 sets 1 (the
	// stored copy only).
	Replicas int

	FilesStored int
	FilesFailed int
	BytesStored int64
	BytesFailed int64
}

// NewPAST returns a PAST instance with the §6.1 configuration. The
// default retry budget is 0, matching the paper's §3 failure model
// ("the probability of a store to fail in PAST is simply p"); raise
// Retries to study the salted-rehash mechanism.
func NewPAST(pool *sim.Pool) *PAST {
	return &PAST{Pool: pool, Retries: 0, Replicas: 1}
}

// saltName derives the r-th salted name of a file.
func saltName(name string, r int) string {
	if r == 0 {
		return name
	}
	return fmt.Sprintf("%s#salt%d", name, r)
}

// StoreFile stores the whole file on a single node, retrying with fresh
// salts on refusal. Replication stores the same bytes on the target's
// identifier-space neighbors.
func (p *PAST) StoreFile(name string, size int64) bool {
	for r := 0; r <= p.Retries; r++ {
		sn := saltName(name, r)
		node := p.Pool.Lookup(sn)
		if node == nil || node.Free() < size*int64(p.Replicas) {
			continue
		}
		if p.Pool.StoreBlock(sn, size) == nil {
			continue
		}
		// Additional replicas on identifier-space neighbors (k-1 more).
		placed := 1
		for i := 1; i < p.Replicas; i++ {
			rn := fmt.Sprintf("%s@rep%d", sn, i)
			for _, nb := range p.Pool.Net.Neighbors(node.Overlay.ID, 2*p.Replicas) {
				nbn, ok := p.Pool.Node(nb.ID)
				if !ok {
					continue
				}
				if nbn.Store(rn, size) {
					p.Pool.TotalUsed += size
					placed++
					break
				}
			}
		}
		p.FilesStored++
		p.BytesStored += size
		return true
	}
	p.FilesFailed++
	p.BytesFailed += size
	return false
}

// CFS stores files as fixed-size blocks.
type CFS struct {
	Pool *sim.Pool
	// BlockSize is the fixed block size; §6.1 uses 4 MB.
	BlockSize int64
	// Retries is the per-block salted retry budget.
	Retries int

	FilesStored int
	FilesFailed int
	BytesStored int64
	BytesFailed int64
	// BlocksPerFile accumulates chunk counts for Table 1.
	TotalBlocks int64
}

// NewCFS returns a CFS instance with the §6.1 configuration.
func NewCFS(pool *sim.Pool, blockSize int64) *CFS {
	return &CFS{Pool: pool, BlockSize: blockSize, Retries: 3}
}

// NumBlocks returns the number of fixed-size blocks a file needs.
func (c *CFS) NumBlocks(size int64) int64 {
	if size <= 0 {
		return 0
	}
	return (size + c.BlockSize - 1) / c.BlockSize
}

// StoreFile splits the file into fixed blocks and stores each at its
// DHT target, retrying per block. The store succeeds only if every
// block lands ("we considered a file insertion a success only if all
// the chunks of the files were successfully stored"); on failure the
// placed blocks are rolled back.
func (c *CFS) StoreFile(name string, size int64) bool {
	nb := c.NumBlocks(size)
	var placed []string
	rollback := func() {
		for _, bn := range placed {
			c.Pool.DeleteBlock(bn)
		}
	}
	for b := int64(0); b < nb; b++ {
		bsz := c.BlockSize
		if rem := size - b*c.BlockSize; rem < bsz {
			bsz = rem
		}
		stored := false
		for r := 0; r <= c.Retries; r++ {
			bn := saltName(fmt.Sprintf("%s_%d", name, b), r)
			if c.Pool.StoreBlock(bn, bsz) != nil {
				placed = append(placed, bn)
				stored = true
				break
			}
		}
		if !stored {
			rollback()
			c.FilesFailed++
			c.BytesFailed += size
			return false
		}
	}
	placedCount := int64(len(placed))
	c.TotalBlocks += placedCount
	c.FilesStored++
	c.BytesStored += size
	return true
}
