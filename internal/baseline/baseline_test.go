package baseline

import (
	"fmt"
	"testing"

	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

func caps(n int, each int64) []int64 {
	cs := make([]int64, n)
	for i := range cs {
		cs[i] = each
	}
	return cs
}

func TestPASTStoresWholeFile(t *testing.T) {
	pool := sim.NewPool(1, caps(50, 10*trace.GB))
	p := NewPAST(pool)
	if !p.StoreFile("f", 5*trace.GB) {
		t.Fatal("store failed")
	}
	// Exactly one node holds the whole file.
	holders := 0
	pool.Nodes(func(n *sim.StoreNode) {
		if n.Has("f") {
			holders++
			if n.Blocks["f"] != 5*trace.GB {
				t.Error("stored size wrong")
			}
		}
	})
	if holders != 1 {
		t.Fatalf("holders = %d", holders)
	}
	if p.FilesStored != 1 || p.BytesStored != 5*trace.GB {
		t.Fatal("accounting wrong")
	}
}

func TestPASTFailsOversized(t *testing.T) {
	pool := sim.NewPool(2, caps(20, 1*trace.GB))
	p := NewPAST(pool)
	// Larger than any node: PAST fundamentally cannot store it (§3).
	if p.StoreFile("big", 2*trace.GB) {
		t.Fatal("PAST stored a file larger than every node")
	}
	if p.FilesFailed != 1 || p.BytesFailed != 2*trace.GB {
		t.Fatal("failure accounting wrong")
	}
}

func TestPASTRetrySalvagesStore(t *testing.T) {
	// Construct a pool where the primary target is full but another
	// node has space: the salted retry should find it.
	pool := sim.NewPool(3, caps(8, 5*trace.GB))
	p := NewPAST(pool)
	p.Retries = 3
	stored := 0
	for i := 0; i < 12; i++ {
		if p.StoreFile(fmt.Sprintf("file%d", i), 4*trace.GB) {
			stored++
		}
	}
	// 8 nodes x 5 GB can hold at most 8 such files (one per node, as a
	// second does not fit); retries should get close to that bound.
	if stored < 6 {
		t.Fatalf("stored only %d of a possible ~8", stored)
	}
}

func TestPASTReplication(t *testing.T) {
	pool := sim.NewPool(4, caps(30, 10*trace.GB))
	p := NewPAST(pool)
	p.Replicas = 3
	if !p.StoreFile("r", 1*trace.GB) {
		t.Fatal("replicated store failed")
	}
	total := int64(0)
	pool.Nodes(func(n *sim.StoreNode) { total += n.Used })
	if total != 3*trace.GB {
		t.Fatalf("replicated bytes = %d, want 3 GB", total)
	}
}

func TestCFSSplitsIntoFixedBlocks(t *testing.T) {
	pool := sim.NewPool(5, caps(50, 10*trace.GB))
	c := NewCFS(pool, 4*trace.MB)
	size := int64(100)*trace.MB + 1
	if !c.StoreFile("f", size) {
		t.Fatal("store failed")
	}
	want := int64(26) // ceil(100MB+1 / 4MB)
	if got := c.NumBlocks(size); got != want {
		t.Fatalf("NumBlocks = %d, want %d", got, want)
	}
	if c.TotalBlocks != want {
		t.Fatalf("TotalBlocks = %d, want %d", c.TotalBlocks, want)
	}
	if pool.TotalUsed != size {
		t.Fatalf("pool holds %d, want %d", pool.TotalUsed, size)
	}
}

func TestCFSLastBlockShort(t *testing.T) {
	pool := sim.NewPool(6, caps(50, 10*trace.GB))
	c := NewCFS(pool, 4*trace.MB)
	if !c.StoreFile("f", 4*trace.MB+1) {
		t.Fatal("store failed")
	}
	// Two blocks: 4 MB and 1 byte; total pool usage equals file size.
	if pool.TotalUsed != 4*trace.MB+1 {
		t.Fatalf("pool holds %d", pool.TotalUsed)
	}
}

func TestCFSRollbackOnFailure(t *testing.T) {
	pool := sim.NewPool(7, caps(4, 10*trace.MB))
	c := NewCFS(pool, 4*trace.MB)
	if c.StoreFile("f", 100*trace.MB) {
		t.Fatal("store succeeded beyond pool capacity")
	}
	if pool.TotalUsed != 0 {
		t.Fatalf("rollback incomplete: %d bytes left", pool.TotalUsed)
	}
	if c.FilesFailed != 1 {
		t.Fatal("failure not accounted")
	}
}

func TestCFSStoresLargerThanNode(t *testing.T) {
	// Unlike PAST, CFS can place a file bigger than any single node.
	pool := sim.NewPool(8, caps(30, 1*trace.GB))
	c := NewCFS(pool, 4*trace.MB)
	if !c.StoreFile("big", 3*trace.GB) {
		t.Fatal("CFS failed to stripe a large file")
	}
}

func TestCFSZeroSize(t *testing.T) {
	pool := sim.NewPool(9, caps(5, trace.GB))
	c := NewCFS(pool, 4*trace.MB)
	if !c.StoreFile("empty", 0) {
		t.Fatal("empty file store failed")
	}
	if c.NumBlocks(0) != 0 {
		t.Fatal("empty file has blocks")
	}
}

func TestSaltNameDistinct(t *testing.T) {
	if saltName("f", 0) != "f" {
		t.Error("salt 0 must be the plain name")
	}
	if saltName("f", 1) == saltName("f", 2) {
		t.Error("salts collide")
	}
}
