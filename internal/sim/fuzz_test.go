package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"peerstripe/internal/trace"
)

// TestRandomOperationInvariants drives the pool through long random
// sequences of stores, deletes, and failures, checking global
// invariants after every step:
//
//  1. TotalUsed equals the sum of node Used.
//  2. Every node's Used equals the sum of its block sizes.
//  3. TotalCapacity equals the sum of live node capacities.
//  4. No node exceeds its capacity.
//  5. Every stored block sits on the node that currently owns its key.
func TestRandomOperationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := NewPool(99, func() []int64 {
		cs := make([]int64, 60)
		for i := range cs {
			cs[i] = int64(rng.Intn(100)+10) * trace.MB
		}
		return cs
	}())

	live := make(map[string]bool) // blocks believed stored
	nextBlock := 0

	check := func(step int) {
		var used, cap int64
		p.Nodes(func(n *StoreNode) {
			var nodeSum int64
			for _, s := range n.Blocks {
				nodeSum += s
			}
			if nodeSum != n.Used {
				t.Fatalf("step %d: node Used %d != block sum %d", step, n.Used, nodeSum)
			}
			if n.Used > n.Capacity {
				t.Fatalf("step %d: node over capacity", step)
			}
			used += n.Used
			cap += n.Capacity
		})
		if used != p.TotalUsed {
			t.Fatalf("step %d: TotalUsed %d != sum %d", step, p.TotalUsed, used)
		}
		if cap != p.TotalCapacity {
			t.Fatalf("step %d: TotalCapacity %d != sum %d", step, p.TotalCapacity, cap)
		}
	}

	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // store
			name := fmt.Sprintf("blk%d", nextBlock)
			nextBlock++
			size := int64(rng.Intn(20)+1) * trace.MB
			if p.StoreBlock(name, size) != nil {
				live[name] = true
			}
		case op < 8: // delete a random live block
			for name := range live {
				if p.DeleteBlock(name) {
					delete(live, name)
				}
				break
			}
		default: // fail a node (keep at least 5 alive)
			if p.Size() > 5 {
				nodes := p.Net.Nodes()
				victim := nodes[rng.Intn(len(nodes))].ID
				lost, err := p.Fail(victim)
				if err != nil {
					t.Fatal(err)
				}
				for name := range lost {
					delete(live, name)
				}
			}
		}
		if step%50 == 0 {
			check(step)
		}
	}
	check(3000)

	// Placement invariant: every live block is on its key's owner.
	for name := range live {
		owner := p.OwnerOf(name)
		if owner == nil || !owner.Has(name) {
			t.Fatalf("block %s not held by its current owner", name)
		}
	}
}

// FuzzPoolOperations drives the pool through an operation sequence
// decoded from the fuzz input — store, delete, fail — and checks the
// global accounting invariants after every failure and at the end.
// This is the fuzz-shaped twin of TestRandomOperationInvariants: the
// fuzzer owns the schedule instead of a seeded PRNG, so it can steer
// into orderings a uniform draw rarely visits (e.g. failing the same
// region repeatedly while it is the placement target).
func FuzzPoolOperations(f *testing.F) {
	f.Add(int64(1), []byte{0, 10, 1, 200, 2, 3})
	f.Add(int64(9), []byte{2, 2, 2, 2, 0, 1, 0, 2})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		caps := make([]int64, 12)
		for i := range caps {
			caps[i] = int64(i+1) * 8 * trace.MB
		}
		p := NewPool(seed, caps)
		live := make(map[string]bool)
		next := 0
		check := func(step int) {
			var used, capSum int64
			p.Nodes(func(n *StoreNode) {
				var nodeSum int64
				for _, s := range n.Blocks {
					nodeSum += s
				}
				if nodeSum != n.Used {
					t.Fatalf("op %d: node Used %d != block sum %d", step, n.Used, nodeSum)
				}
				if n.Used > n.Capacity {
					t.Fatalf("op %d: node over capacity", step)
				}
				used += n.Used
				capSum += n.Capacity
			})
			if used != p.TotalUsed {
				t.Fatalf("op %d: TotalUsed %d != sum %d", step, p.TotalUsed, used)
			}
			if capSum != p.TotalCapacity {
				t.Fatalf("op %d: TotalCapacity %d != sum %d", step, p.TotalCapacity, capSum)
			}
		}
		for i := 0; i+1 < len(ops); i += 2 {
			arg := int64(ops[i+1])
			switch ops[i] % 3 {
			case 0: // store a block sized by the next byte
				name := fmt.Sprintf("blk%d", next)
				next++
				if p.StoreBlock(name, (arg%32+1)*trace.MB) != nil {
					live[name] = true
				}
			case 1: // delete a block chosen by index
				name := fmt.Sprintf("blk%d", arg%int64(next+1))
				if p.DeleteBlock(name) {
					delete(live, name)
				}
			case 2: // fail the node owning an arbitrary key
				if p.Size() <= 2 {
					continue
				}
				victim := p.Lookup(fmt.Sprintf("key%d", arg))
				if victim == nil {
					continue
				}
				lost, err := p.Fail(victim.Overlay.ID)
				if err != nil {
					t.Fatal(err)
				}
				for name := range lost {
					delete(live, name)
				}
				check(i)
			}
		}
		check(len(ops))
		for name := range live {
			owner := p.OwnerOf(name)
			if owner == nil || !owner.Has(name) {
				t.Fatalf("block %s not held by its current owner", name)
			}
		}
	})
}
