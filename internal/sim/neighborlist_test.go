package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"peerstripe/internal/ids"
	"peerstripe/internal/trace"
)

// TestNeighborListsTrackStores verifies the §4.4 invariant: each node's
// list about an immediate neighbor exactly matches that neighbor's
// actual contents, through stores and deletes.
func TestNeighborListsTrackStores(t *testing.T) {
	p := NewPool(60, caps(40, 1*trace.GB))
	tr := NewNeighborTracker(p)
	rng := rand.New(rand.NewSource(61))
	var names []string
	for i := 0; i < 300; i++ {
		name := fmt.Sprintf("nl%d", i)
		if p.StoreBlock(name, int64(rng.Intn(10)+1)*trace.MB) != nil {
			names = append(names, name)
		}
	}
	for i := 0; i < 50; i++ {
		p.DeleteBlock(names[rng.Intn(len(names))])
	}

	checkConsistency(t, p, tr)
}

func checkConsistency(t *testing.T, p *Pool, tr *NeighborTracker) {
	t.Helper()
	for _, on := range p.Net.Nodes() {
		for _, nb := range p.Net.Neighbors(on.ID, 2) {
			nbNode, _ := p.Node(nb.ID)
			detected := tr.Detected(on.ID, nb.ID)
			if len(detected) != len(nbNode.Blocks) {
				t.Fatalf("node %s list about %s has %d entries, neighbor holds %d",
					on.ID.Short(), nb.ID.Short(), len(detected), len(nbNode.Blocks))
			}
			for name, size := range nbNode.Blocks {
				if detected[name] != size {
					t.Fatalf("list entry %s = %d, neighbor holds %d", name, detected[name], size)
				}
			}
		}
	}
}

// TestNeighborFailureDetectionMatchesGroundTruth runs the full §4.4
// flow: store blocks, fail a node, and check the neighbors' lists
// reconstruct exactly the set of blocks the dead node held, split by
// the survivor that now owns each key.
func TestNeighborFailureDetectionMatchesGroundTruth(t *testing.T) {
	p := NewPool(62, caps(50, 1*trace.GB))
	tr := NewNeighborTracker(p)
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 400; i++ {
		p.StoreBlock(fmt.Sprintf("fd%d", i), int64(rng.Intn(5)+1)*trace.MB)
	}
	// Fail several nodes in sequence; detection must stay exact even as
	// adjacency changes.
	for round := 0; round < 10; round++ {
		nodes := p.Net.Nodes()
		victim := nodes[rng.Intn(len(nodes))].ID
		truth, err := p.Fail(victim)
		if err != nil {
			t.Fatal(err)
		}
		assigned := tr.HandleFailure(victim)
		// Union of assignments == ground-truth lost blocks.
		seen := make(map[string]int64)
		for newOwner, blocks := range assigned {
			if _, alive := p.Node(newOwner); !alive {
				t.Fatalf("round %d: blocks assigned to dead node", round)
			}
			for name, size := range blocks {
				if _, dup := seen[name]; dup {
					t.Fatalf("round %d: block %s assigned twice", round, name)
				}
				seen[name] = size
				// The assignee must be the key's current owner.
				if owner := p.OwnerOf(name); owner == nil || owner.Overlay.ID != newOwner {
					t.Fatalf("round %d: block %s assigned to non-owner", round, name)
				}
			}
		}
		if len(seen) != len(truth) {
			t.Fatalf("round %d: detected %d blocks, ground truth %d", round, len(seen), len(truth))
		}
		for name, size := range truth {
			if seen[name] != size {
				t.Fatalf("round %d: block %s size mismatch", round, name)
			}
		}
		// Lists must be consistent again after the topology repair.
		checkConsistency(t, p, tr)
	}
}

// TestNeighborTrackerAfterChurnAndNewStores interleaves failures with
// fresh stores, confirming lists keep tracking through adjacency churn.
func TestNeighborTrackerAfterChurnAndNewStores(t *testing.T) {
	p := NewPool(64, caps(30, 1*trace.GB))
	tr := NewNeighborTracker(p)
	rng := rand.New(rand.NewSource(65))
	next := 0
	for round := 0; round < 30; round++ {
		for i := 0; i < 10; i++ {
			p.StoreBlock(fmt.Sprintf("cs%d", next), 1*trace.MB)
			next++
		}
		if p.Size() > 10 && round%3 == 2 {
			nodes := p.Net.Nodes()
			victim := nodes[rng.Intn(len(nodes))].ID
			if _, err := p.Fail(victim); err != nil {
				t.Fatal(err)
			}
			tr.HandleFailure(victim)
		}
	}
	checkConsistency(t, p, tr)
}

func TestDetectedReturnsCopy(t *testing.T) {
	p := NewPool(66, caps(10, trace.GB))
	tr := NewNeighborTracker(p)
	p.StoreBlock("c0", trace.MB)
	var watcher, owner ids.ID
	found := false
	for _, on := range p.Net.Nodes() {
		n, _ := p.Node(on.ID)
		if n.Has("c0") {
			owner = on.ID
			watcher = p.Net.Neighbors(owner, 2)[0].ID
			found = true
		}
	}
	if !found {
		t.Fatal("block not stored")
	}
	d := tr.Detected(watcher, owner)
	d["c0"] = 999
	if tr.Detected(watcher, owner)["c0"] == 999 {
		t.Fatal("Detected exposed internal state")
	}
}
