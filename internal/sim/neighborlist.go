package sim

import (
	"peerstripe/internal/ids"
)

// Neighbor block lists (§4.4): "Each node in our system has a list of
// blocks stored on its neighbors, and this list is updated when files
// are created or removed. When an immediate neighbor of a node fails,
// the node examines the list of blocks and determines which of these
// blocks will now be mapped to it."
//
// The tracker maintains those lists so failure handling can run from
// the decentralised state a real deployment has, instead of the
// simulator's global view. Tests assert the two agree exactly.
type NeighborTracker struct {
	pool *Pool
	// lists[watcher][neighbor] = blocks the watcher believes the
	// neighbor holds.
	lists map[ids.ID]map[ids.ID]map[string]int64
}

// NewNeighborTracker builds lists for the pool's current membership and
// contents, and hooks itself into subsequent store/delete updates via
// the pool's observer.
func NewNeighborTracker(p *Pool) *NeighborTracker {
	t := &NeighborTracker{pool: p, lists: make(map[ids.ID]map[ids.ID]map[string]int64)}
	p.Nodes(func(n *StoreNode) {
		for name, size := range n.Blocks {
			t.recordStore(n.Overlay.ID, name, size)
		}
	})
	p.observer = t
	return t
}

// immediateNeighbors returns the two ring-adjacent nodes of id.
func (t *NeighborTracker) immediateNeighbors(id ids.ID) []ids.ID {
	out := []ids.ID{}
	for _, nb := range t.pool.Net.Neighbors(id, 2) {
		out = append(out, nb.ID)
	}
	return out
}

// listFor returns (creating) watcher's list about neighbor.
func (t *NeighborTracker) listFor(watcher, neighbor ids.ID) map[string]int64 {
	w, ok := t.lists[watcher]
	if !ok {
		w = make(map[ids.ID]map[string]int64)
		t.lists[watcher] = w
	}
	l, ok := w[neighbor]
	if !ok {
		l = make(map[string]int64)
		w[neighbor] = l
	}
	return l
}

// recordStore updates the owner's immediate neighbors' lists.
func (t *NeighborTracker) recordStore(owner ids.ID, name string, size int64) {
	for _, nb := range t.immediateNeighbors(owner) {
		t.listFor(nb, owner)[name] = size
	}
}

// recordDelete removes the block from the owner's neighbors' lists.
func (t *NeighborTracker) recordDelete(owner ids.ID, name string) {
	for _, nb := range t.immediateNeighbors(owner) {
		delete(t.listFor(nb, owner), name)
	}
}

// Detected returns what a watcher currently believes about a neighbor's
// blocks (a copy).
func (t *NeighborTracker) Detected(watcher, neighbor ids.ID) map[string]int64 {
	out := make(map[string]int64)
	for name, size := range t.listFor(watcher, neighbor) {
		out[name] = size
	}
	return out
}

// HandleFailure is the §4.4 flow: the failed node's immediate neighbors
// consult their lists, split the dead node's blocks by which of them
// now owns each key, and return the per-inheritor assignments. It also
// repairs the tracker's own topology: the survivors adopt each other as
// new immediate neighbors and exchange block lists, and stale lists
// about the dead node are dropped.
//
// Call *after* Pool.Fail(victim) so ownership reflects the
// post-failure ring. The union of the returned assignments equals the
// blocks the victim held (asserted by tests against Pool.Fail's
// ground-truth return).
func (t *NeighborTracker) HandleFailure(victim ids.ID) map[ids.ID]map[string]int64 {
	// Gather every watcher's view of the victim (its two neighbors
	// tracked it; both views are identical under correct updates).
	believed := make(map[string]int64)
	for watcher, perNeighbor := range t.lists {
		_ = watcher
		if l, ok := perNeighbor[victim]; ok {
			for name, size := range l {
				believed[name] = size
			}
		}
	}
	// Split by new owner ("determines which of these blocks will now
	// be mapped to it").
	out := make(map[ids.ID]map[string]int64)
	for name, size := range believed {
		owner := t.pool.Net.Owner(ids.FromName(name))
		if owner == nil {
			continue
		}
		m, ok := out[owner.ID]
		if !ok {
			m = make(map[string]int64)
			out[owner.ID] = m
		}
		m[name] = size
	}
	// Drop stale lists about the victim.
	for _, perNeighbor := range t.lists {
		delete(perNeighbor, victim)
	}
	// Rebuild adjacency lists for the nodes flanking the victim's old
	// ring position — their immediate-neighbor sets changed even if the
	// victim held nothing. Neighbors() on the departed ID returns
	// exactly the two nodes now adjacent across the gap.
	watchers := []ids.ID{}
	for _, nb := range t.pool.Net.Neighbors(victim, 4) {
		watchers = append(watchers, nb.ID)
	}
	for _, w := range watchers {
		if _, alive := t.pool.Node(w); !alive {
			continue
		}
		for _, nb := range t.immediateNeighbors(w) {
			nbNode, ok := t.pool.Node(nb)
			if !ok {
				continue
			}
			l := t.listFor(w, nb)
			for name := range l {
				delete(l, name)
			}
			for name, size := range nbNode.Blocks {
				l[name] = size
			}
		}
	}
	return out
}

// observer is the hook Pool calls on content changes.
type observer interface {
	recordStore(owner ids.ID, name string, size int64)
	recordDelete(owner ids.ID, name string)
}
