// Package sim layers contributory storage state onto the Pastry overlay:
// per-node contributed capacity, a directory of stored blocks, the
// getCapacity probe with its local reporting policy (§4.3), failure
// injection, and the bookkeeping the evaluation harness reads (bytes
// stored, failed, lost, regenerated).
//
// Blocks are simulated by name and size only — the storage experiments
// of §6.1–§6.2 depend on placement and capacity arithmetic, not payload
// bytes. The byte-level data path is exercised by internal/erasure,
// internal/core's codec tests, and the live TCP implementation in
// internal/node.
package sim

import (
	"fmt"

	"peerstripe/internal/ids"
	"peerstripe/internal/pastry"
)

// StoreNode is one participant's storage state.
type StoreNode struct {
	Overlay *pastry.Node
	// Capacity is the contributed storage in bytes.
	Capacity int64
	// Used is the total size of blocks currently held.
	Used int64
	// ReportFraction is the node's getCapacity policy: the fraction of
	// free space it advertises (§4.3 — "a node may choose to only
	// report a fraction of its actual available capacity"). 1.0
	// reports everything, the setting used in §6.1.
	ReportFraction float64
	// Reserve is space withheld from getCapacity advertisements to
	// absorb a failed neighbor's blocks — the §4.4 alternative the
	// paper considered and rejected in favour of rateless
	// drop-and-recreate. Zero (the paper's choice) reserves nothing.
	Reserve int64
	// Blocks maps stored block name to size.
	Blocks map[string]int64
}

// Free returns the uncommitted capacity.
func (n *StoreNode) Free() int64 { return n.Capacity - n.Used }

// GetCapacity answers a getCapacity probe: the maximum block size this
// node is willing to store right now. Zero means full or unwilling. The
// space is reported, not reserved (§4.3).
func (n *StoreNode) GetCapacity() int64 {
	f := n.Free() - n.Reserve
	if f <= 0 {
		return 0
	}
	adv := int64(float64(f) * n.ReportFraction)
	if adv < 0 {
		adv = 0
	}
	return adv
}

// Store places a block if it fits. It reports whether the store
// succeeded; a false return models the getCapacity race of §4.3 (space
// consumed between probe and store) as well as plain overflow.
func (n *StoreNode) Store(name string, size int64) bool {
	if size < 0 {
		return false
	}
	if old, dup := n.Blocks[name]; dup {
		// Overwrite: same key re-stored (e.g. updated CAT replica).
		if n.Used-old+size > n.Capacity {
			return false
		}
		n.Used += size - old
		n.Blocks[name] = size
		return true
	}
	if n.Used+size > n.Capacity {
		return false
	}
	n.Used += size
	n.Blocks[name] = size
	return true
}

// Delete removes a block if present and returns its size.
func (n *StoreNode) Delete(name string) (int64, bool) {
	size, ok := n.Blocks[name]
	if !ok {
		return 0, false
	}
	delete(n.Blocks, name)
	n.Used -= size
	return size, true
}

// Has reports whether the node holds the named block.
func (n *StoreNode) Has(name string) bool {
	_, ok := n.Blocks[name]
	return ok
}

// Pool is the shared storage facility: the overlay plus every node's
// storage state.
type Pool struct {
	Net   *pastry.Network
	nodes map[ids.ID]*StoreNode

	// TotalCapacity is the sum of live nodes' contributions.
	TotalCapacity int64
	// TotalUsed is the sum of live nodes' Used.
	TotalUsed int64
	// LookupHops counts overlay hops spent on lookUp messages.
	LookupHops int64
	// Lookups counts lookUp messages issued.
	Lookups int64

	// observer receives content-change callbacks (see NeighborTracker).
	observer observer
}

// NewPool builds a pool of len(capacities) nodes with random nodeIds on
// a fresh overlay.
func NewPool(seed int64, capacities []int64) *Pool {
	net := pastry.NewNetwork(seed)
	p := &Pool{Net: net, nodes: make(map[ids.ID]*StoreNode, len(capacities))}
	for _, c := range capacities {
		on := net.JoinRandom(1)[0]
		p.nodes[on.ID] = &StoreNode{
			Overlay:        on,
			Capacity:       c,
			ReportFraction: 1.0,
			Blocks:         make(map[string]int64),
		}
		p.TotalCapacity += c
	}
	return p
}

// Size returns the number of live nodes.
func (p *Pool) Size() int { return p.Net.Size() }

// Node returns the storage state of the live node with the given ID.
func (p *Pool) Node(id ids.ID) (*StoreNode, bool) {
	n, ok := p.nodes[id]
	return n, ok
}

// Nodes calls fn for every live node.
func (p *Pool) Nodes(fn func(*StoreNode)) {
	for _, on := range p.Net.Nodes() {
		fn(p.nodes[on.ID])
	}
}

// SetReportFraction applies a getCapacity reporting policy pool-wide.
func (p *Pool) SetReportFraction(f float64) {
	p.Nodes(func(n *StoreNode) { n.ReportFraction = f })
}

// RecomputeNeighborReserves sets every node's Reserve to half the bytes
// currently held by each of its two immediate identifier-space
// neighbors (the share it would inherit if that neighbor failed, §4.4).
// Call periodically while studying the reservation policy; the paper
// rejects it because it strands capacity — the ablation in psbench
// quantifies how much.
func (p *Pool) RecomputeNeighborReserves() {
	for _, on := range p.Net.Nodes() {
		n := p.nodes[on.ID]
		var reserve int64
		for _, nb := range p.Net.Neighbors(on.ID, 2) {
			if s, ok := p.nodes[nb.ID]; ok {
				reserve += s.Used / 2
			}
		}
		n.Reserve = reserve
	}
}

// ClearReserves removes all neighbor reservations.
func (p *Pool) ClearReserves() {
	p.Nodes(func(n *StoreNode) { n.Reserve = 0 })
}

// Lookup routes the block name's key through the overlay and returns
// the responsible node (Figure 2: lookUp + acknowledgment). The actual
// data transfer then happens directly over IP, outside the overlay.
func (p *Pool) Lookup(name string) *StoreNode {
	key := ids.FromName(name)
	owner, hops := p.Net.Route(key)
	p.LookupHops += int64(hops)
	p.Lookups++
	if owner == nil {
		return nil
	}
	return p.nodes[owner.ID]
}

// OwnerOf returns the node currently responsible for the name without
// routing (zero-cost ground truth for verification and repair logic).
func (p *Pool) OwnerOf(name string) *StoreNode {
	owner := p.Net.Owner(ids.FromName(name))
	if owner == nil {
		return nil
	}
	return p.nodes[owner.ID]
}

// StoreBlock routes name and stores size bytes at the responsible node.
// It returns the storing node, or nil if the node refused (full).
func (p *Pool) StoreBlock(name string, size int64) *StoreNode {
	n := p.Lookup(name)
	if n == nil || !n.Store(name, size) {
		return nil
	}
	p.TotalUsed += size
	if p.observer != nil {
		p.observer.recordStore(n.Overlay.ID, name, size)
	}
	return n
}

// DeleteBlock removes the named block from its current owner, if stored.
func (p *Pool) DeleteBlock(name string) bool {
	n := p.OwnerOf(name)
	if n == nil {
		return false
	}
	size, ok := n.Delete(name)
	if ok {
		p.TotalUsed -= size
		if p.observer != nil {
			p.observer.recordDelete(n.Overlay.ID, name)
		}
	}
	return ok
}

// Utilization returns TotalUsed / TotalCapacity over live nodes.
func (p *Pool) Utilization() float64 {
	if p.TotalCapacity == 0 {
		return 0
	}
	return float64(p.TotalUsed) / float64(p.TotalCapacity)
}

// Fail removes a node from the overlay. Its blocks are lost (returned
// for the caller's loss/regeneration accounting) and its capacity
// leaves the pool.
func (p *Pool) Fail(id ids.ID) (lost map[string]int64, err error) {
	n, ok := p.nodes[id]
	if !ok {
		return nil, fmt.Errorf("sim: fail: unknown node %s", id.Short())
	}
	if !p.Net.Fail(id) {
		return nil, fmt.Errorf("sim: fail: node %s not alive", id.Short())
	}
	delete(p.nodes, id)
	p.TotalCapacity -= n.Capacity
	p.TotalUsed -= n.Used
	return n.Blocks, nil
}

// MeanLookupHops reports the average overlay hops per lookUp message.
func (p *Pool) MeanLookupHops() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.LookupHops) / float64(p.Lookups)
}
