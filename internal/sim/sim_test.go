package sim

import (
	"fmt"
	"testing"

	"peerstripe/internal/ids"
	"peerstripe/internal/trace"
)

func caps(n int, each int64) []int64 {
	cs := make([]int64, n)
	for i := range cs {
		cs[i] = each
	}
	return cs
}

func TestNewPool(t *testing.T) {
	p := NewPool(1, caps(50, 10*trace.GB))
	if p.Size() != 50 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.TotalCapacity != 500*trace.GB {
		t.Fatalf("TotalCapacity = %d", p.TotalCapacity)
	}
	if p.Utilization() != 0 {
		t.Fatal("fresh pool not empty")
	}
}

func TestStoreBlockPlacesAtOwner(t *testing.T) {
	p := NewPool(2, caps(100, 1*trace.GB))
	n := p.StoreBlock("file_0_1", 10*trace.MB)
	if n == nil {
		t.Fatal("store failed on empty pool")
	}
	owner := p.OwnerOf("file_0_1")
	if owner != n {
		t.Fatal("block stored on non-owner node")
	}
	if !n.Has("file_0_1") {
		t.Fatal("owner does not hold block")
	}
	if p.TotalUsed != 10*trace.MB {
		t.Fatalf("TotalUsed = %d", p.TotalUsed)
	}
}

func TestStoreBlockRefusedWhenFull(t *testing.T) {
	p := NewPool(3, caps(4, 10*trace.MB))
	if p.StoreBlock("big", 20*trace.MB) != nil {
		t.Fatal("oversized store accepted")
	}
	if p.TotalUsed != 0 {
		t.Fatal("failed store changed TotalUsed")
	}
}

func TestStoreNodeOverwrite(t *testing.T) {
	n := &StoreNode{Capacity: 100, ReportFraction: 1, Blocks: map[string]int64{}}
	if !n.Store("cat", 40) {
		t.Fatal("first store failed")
	}
	if !n.Store("cat", 60) {
		t.Fatal("overwrite within capacity failed")
	}
	if n.Used != 60 {
		t.Fatalf("Used = %d after overwrite, want 60", n.Used)
	}
	if n.Store("cat", 101) {
		t.Fatal("overwrite beyond capacity accepted")
	}
}

func TestStoreNodeRejectsNegative(t *testing.T) {
	n := &StoreNode{Capacity: 100, ReportFraction: 1, Blocks: map[string]int64{}}
	if n.Store("x", -1) {
		t.Fatal("negative size accepted")
	}
}

func TestDelete(t *testing.T) {
	p := NewPool(4, caps(10, 1*trace.GB))
	p.StoreBlock("b1", 5*trace.MB)
	if !p.DeleteBlock("b1") {
		t.Fatal("delete failed")
	}
	if p.TotalUsed != 0 {
		t.Fatalf("TotalUsed = %d after delete", p.TotalUsed)
	}
	if p.DeleteBlock("b1") {
		t.Fatal("double delete succeeded")
	}
}

func TestGetCapacityPolicy(t *testing.T) {
	n := &StoreNode{Capacity: 100, ReportFraction: 1, Blocks: map[string]int64{}}
	if n.GetCapacity() != 100 {
		t.Fatalf("GetCapacity = %d", n.GetCapacity())
	}
	n.ReportFraction = 0.5
	if n.GetCapacity() != 50 {
		t.Fatalf("GetCapacity(0.5) = %d", n.GetCapacity())
	}
	n.Store("x", 100)
	if n.GetCapacity() != 0 {
		t.Fatal("full node advertised space")
	}
}

func TestSetReportFraction(t *testing.T) {
	p := NewPool(5, caps(8, 100))
	p.SetReportFraction(0.25)
	p.Nodes(func(n *StoreNode) {
		if n.ReportFraction != 0.25 {
			t.Fatal("policy not applied")
		}
	})
}

func TestFailLosesBlocksAndCapacity(t *testing.T) {
	p := NewPool(6, caps(50, 1*trace.GB))
	var victim *StoreNode
	// Store blocks until some node holds at least one.
	for i := 0; victim == nil && i < 200; i++ {
		n := p.StoreBlock(fmt.Sprintf("blk%d", i), 1*trace.MB)
		if n != nil {
			victim = n
		}
	}
	if victim == nil {
		t.Fatal("no block stored")
	}
	usedBefore := p.TotalUsed
	capBefore := p.TotalCapacity
	lost, err := p.Fail(victim.Overlay.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) == 0 {
		t.Fatal("no blocks reported lost")
	}
	var lostBytes int64
	for _, s := range lost {
		lostBytes += s
	}
	if p.TotalUsed != usedBefore-lostBytes {
		t.Fatal("TotalUsed not adjusted on failure")
	}
	if p.TotalCapacity != capBefore-victim.Capacity {
		t.Fatal("TotalCapacity not adjusted on failure")
	}
	if p.Size() != 49 {
		t.Fatalf("Size = %d after failure", p.Size())
	}
}

func TestFailUnknown(t *testing.T) {
	p := NewPool(7, caps(5, 100))
	if _, err := p.Fail(ids.FromName("ghost")); err == nil {
		t.Fatal("failing unknown node succeeded")
	}
}

func TestLookupCountsHops(t *testing.T) {
	p := NewPool(8, caps(200, 1*trace.GB))
	for i := 0; i < 50; i++ {
		p.Lookup(fmt.Sprintf("name%d", i))
	}
	if p.Lookups != 50 {
		t.Fatalf("Lookups = %d", p.Lookups)
	}
	if p.MeanLookupHops() <= 0 {
		t.Fatal("no hops recorded on a 200-node overlay")
	}
}

func TestKeysRemapAfterFailure(t *testing.T) {
	p := NewPool(9, caps(100, 1*trace.GB))
	name := "remap-me"
	n := p.StoreBlock(name, 1*trace.MB)
	if n == nil {
		t.Fatal("store failed")
	}
	if _, err := p.Fail(n.Overlay.ID); err != nil {
		t.Fatal(err)
	}
	// The name now maps to a different live node, and lookups agree.
	newOwner := p.OwnerOf(name)
	if newOwner == nil || newOwner == n {
		t.Fatal("ownership did not transfer")
	}
	if got := p.Lookup(name); got != newOwner {
		t.Fatal("Lookup disagrees with OwnerOf after failure")
	}
}

func TestNeighborReserves(t *testing.T) {
	p := NewPool(11, caps(20, 1*trace.GB))
	// Load a few blocks, then reserve.
	for i := 0; i < 30; i++ {
		p.StoreBlock(fmt.Sprintf("r%d", i), 50*trace.MB)
	}
	p.RecomputeNeighborReserves()
	reserved := int64(0)
	p.Nodes(func(n *StoreNode) { reserved += n.Reserve })
	if reserved == 0 {
		t.Fatal("no reservations computed")
	}
	// Reservation shrinks advertised capacity below free space for
	// nodes whose neighbors hold data.
	shrunk := false
	p.Nodes(func(n *StoreNode) {
		if n.Reserve > 0 && n.GetCapacity() < n.Free() {
			shrunk = true
		}
	})
	if !shrunk {
		t.Fatal("reservation did not shrink advertisements")
	}
	p.ClearReserves()
	p.Nodes(func(n *StoreNode) {
		if n.Reserve != 0 {
			t.Fatal("ClearReserves left a reservation")
		}
	})
}

func TestUtilizationTracksStores(t *testing.T) {
	p := NewPool(10, caps(10, 100*trace.MB))
	p.StoreBlock("a", 100*trace.MB)
	u := p.Utilization()
	if u <= 0.09 || u >= 0.11 {
		t.Fatalf("utilization = %g, want ~0.1", u)
	}
}
