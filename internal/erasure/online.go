package erasure

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
)

// Online implements Maymounkov's rateless online code (§2.2 and [27]),
// the sub-optimal erasure code the paper selects for PeerStripe.
//
// Structure (following the technical report TR2003-883):
//
//   - The *outer code* appends numAux = ceil(0.55·q·ε·n) auxiliary
//     blocks; each of the n message blocks is XORed into q auxiliary
//     blocks chosen pseudo-randomly. Message + auxiliary blocks form the
//     composite message of n' blocks.
//   - The *inner code* produces check blocks ratelessly: check block i
//     is the XOR of d composite blocks, where d is drawn from the
//     soliton-like degree distribution ρ parameterised by ε. Which d
//     blocks depends on the Schedule (uniform by default; see
//     schedule.go for the structured windowed/interleaved variants).
//   - Decoding is belief propagation (peeling): any equation with
//     exactly one unknown block reveals it; recovered auxiliary blocks
//     feed the outer-code equations in both directions. When peeling
//     stalls the decoder *inactivates* a few columns and solves only
//     that small dense system by Gaussian elimination (see Decode).
//
// Receiving (1+ε)n' check blocks decodes with probability
// 1 − (ε/2)^(q+1). Because the code is rateless, a lost encoded block
// can be replaced by generating a brand-new check block without
// re-reading the whole file — the property §4.4 uses for repair
// ("drop ... and create another one at a different location").
//
// The outer-code assignments and the compositions of the m stored check
// blocks are deterministic functions of the seed and schedule, so they
// are derived once at NewOnline time and shared (read-only) by every
// Encode/Decode; an Online value is safe for concurrent use.
//
// The paper's Table 2 configuration is q = 3, ε = 0.01, 4096 blocks per
// 4 MB chunk.
type Online struct {
	n       int     // message blocks per chunk
	q       int     // outer-code degree
	eps     float64 // ε
	surplus float64 // extra check blocks stored beyond (1+ε)n'
	numAux  int
	nPrime  int // n + numAux
	m       int // check blocks stored per chunk
	cdf     []float64
	seed    int64
	sched   Schedule

	auxAssign  [][]int // message block -> its distinct aux targets
	auxEqIdx   [][]int // aux block -> [n+aux, message members...]
	auxMembers [][]int // aux block -> message members (auxEqIdx minus self)
	checkComps [][]int // composition of stored check blocks 0..m-1

	// Cache-blocked gather plans over the memoized structures above
	// (tile.go); built lazily on first Encode/FreshBlock.
	checkPlan planCache
	auxPlan   planCache
}

// OnlineOpts configures an Online code. Zero values select the paper's
// Table 2 parameters.
type OnlineOpts struct {
	Q       int     // outer degree; default 3
	Eps     float64 // ε; default 0.01
	Surplus float64 // stored check-block surplus beyond (1+ε)n'; default 0.02
	Seed    int64   // PRNG seed shared by encoder and decoder; default 1
	// Schedule selects how check-block compositions are drawn; nil
	// selects Uniform(), whose output is byte-identical to builds that
	// predate the schedule knob. Encoder and decoder must agree.
	Schedule Schedule
}

// NewOnline returns an online code over n message blocks per chunk.
func NewOnline(n int, opts OnlineOpts) (*Online, error) {
	if n < 1 {
		return nil, fmt.Errorf("erasure: online needs n >= 1, got %d", n)
	}
	if opts.Q == 0 {
		opts.Q = 3
	}
	if opts.Eps == 0 {
		opts.Eps = 0.01
	}
	if opts.Surplus == 0 {
		opts.Surplus = 0.02
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Schedule == nil {
		opts.Schedule = Uniform()
	}
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("erasure: online eps must be in (0,1), got %g", opts.Eps)
	}
	c := &Online{n: n, q: opts.Q, eps: opts.Eps, surplus: opts.Surplus, seed: opts.Seed, sched: opts.Schedule}
	c.numAux = int(math.Ceil(0.55 * float64(c.q) * c.eps * float64(n)))
	if c.numAux < 1 {
		c.numAux = 1
	}
	c.nPrime = n + c.numAux
	c.m = int(math.Ceil((1 + c.eps + c.surplus) * float64(c.nPrime)))
	c.cdf = degreeCDF(c.eps)

	// Memoize the deterministic equation structure: the outer-code
	// assignments (and their inverse, as ready-made decoder equations)
	// and the composition of every stored check block. Encode and
	// Decode previously re-derived all of this from seeded RNGs on
	// every call, which dominated their runtime.
	c.auxAssign = c.computeAuxAssignments()
	members := make([][]int, c.numAux)
	for mi, as := range c.auxAssign {
		for _, ai := range as {
			members[ai] = append(members[ai], mi)
		}
	}
	c.auxEqIdx = make([][]int, c.numAux)
	for ai, ms := range members {
		idx := make([]int, 0, len(ms)+1)
		idx = append(idx, c.n+ai)
		idx = append(idx, ms...)
		// Message members arrive in ascending order (the mi loop above),
		// so the aux build's gathers already walk memory forward.
		c.auxEqIdx[ai] = idx
	}
	c.auxMembers = make([][]int, c.numAux)
	for ai, idx := range c.auxEqIdx {
		c.auxMembers[ai] = idx[1:] // [0] is the aux block itself
	}
	c.checkComps = make([][]int, c.m)
	for i := 0; i < c.m; i++ {
		c.checkComps[i] = c.computeCheckComposition(i)
	}
	return c, nil
}

// MustOnline is NewOnline for static configurations; it panics on error.
func MustOnline(n int, opts OnlineOpts) *Online {
	c, err := NewOnline(n, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// degreeCDF builds the cumulative degree distribution of the inner code:
//
//	F  = ceil( ln(ε²/4) / ln(1−ε/2) )
//	ρ1 = 1 − (1+1/F)/(1+ε)
//	ρi = (1−ρ1)·F / ((F−1)·i·(i−1))   for 2 ≤ i ≤ F
func degreeCDF(eps float64) []float64 {
	f := int(math.Ceil(math.Log(eps*eps/4) / math.Log(1-eps/2)))
	if f < 2 {
		f = 2
	}
	rho := make([]float64, f+1) // rho[i] for degree i, rho[0] unused
	rho[1] = 1 - (1+1/float64(f))/(1+eps)
	for i := 2; i <= f; i++ {
		rho[i] = (1 - rho[1]) * float64(f) / (float64(f-1) * float64(i) * float64(i-1))
	}
	cdf := make([]float64, f+1)
	sum := 0.0
	for i := 1; i <= f; i++ {
		sum += rho[i]
		cdf[i] = sum
	}
	cdf[f] = 1 // absorb rounding
	return cdf
}

// sampleDegree draws a check-block degree from the distribution.
func (c *Online) sampleDegree(rng *rand.Rand) int {
	u := rng.Float64()
	// binary search over the CDF
	lo, hi := 1, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] >= u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Name implements Code.
func (c *Online) Name() string { return "online" }

// ScheduleName returns the name of the check schedule in use.
func (c *Online) ScheduleName() string { return c.sched.Name() }

// DataBlocks implements Code.
func (c *Online) DataBlocks() int { return c.n }

// EncodedBlocks implements Code.
func (c *Online) EncodedBlocks() int { return c.m }

// MinNeeded implements Code. Decoding needs (1+ε)n' check blocks in
// expectation; we report that bound (success beyond it is probabilistic
// but overwhelmingly likely at the stored surplus).
func (c *Online) MinNeeded() int {
	return int(math.Ceil((1 + c.eps) * float64(c.nPrime)))
}

// NumAux returns the number of auxiliary blocks of the outer code.
func (c *Online) NumAux() int { return c.numAux }

// auxRNG returns the deterministic source for the outer-code mapping.
func (c *Online) auxRNG() *rand.Rand {
	return rand.New(rand.NewSource(c.seed ^ 0x0a5f1e3d))
}

// checkRNG returns the deterministic source for check block i's
// composition. Encoder and decoder derive identical equations from the
// block index alone, so no equation metadata is stored with the block.
func (c *Online) checkRNG(i int) *rand.Rand {
	mix := int64(uint64(0x9e3779b97f4a7c15) + uint64(i)*uint64(0x2545f4914f6cdd1d))
	return rand.New(rand.NewSource(c.seed ^ mix))
}

// auxAssignments returns, for each message block, the q *distinct*
// auxiliary blocks (indices 0..numAux-1) it is XORed into. The result
// is memoized at construction; callers must not mutate it.
func (c *Online) auxAssignments() [][]int { return c.auxAssign }

// computeAuxAssignments derives the outer-code mapping from the seed.
// Distinctness matters: a duplicate assignment would cancel under XOR
// while the decoder's equations still listed it. When numAux < q every
// auxiliary block is used.
func (c *Online) computeAuxAssignments() [][]int {
	rng := c.auxRNG()
	k := c.q
	if k > c.numAux {
		k = c.numAux
	}
	out := make([][]int, c.n)
	for i := range out {
		as := make([]int, 0, k)
		seen := make(map[int]struct{}, k)
		for len(as) < k {
			v := rng.Intn(c.numAux)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			as = append(as, v)
		}
		out[i] = as
	}
	return out
}

// checkComposition returns the distinct composite-block indices XORed
// into check block i. Compositions of the m stored blocks are memoized;
// higher indices (rateless replacements) are derived on demand. Callers
// must not mutate the result.
func (c *Online) checkComposition(i int) []int {
	if i < len(c.checkComps) {
		return c.checkComps[i]
	}
	return c.computeCheckComposition(i)
}

func (c *Online) computeCheckComposition(i int) []int {
	rng := c.checkRNG(i)
	d := c.sampleDegree(rng)
	if d > c.nPrime {
		d = c.nPrime
	}
	idx := c.sched.members(rng, i, d, c.nPrime)
	// XOR is commutative, so the member order is free: sort it so the
	// encode/decode gathers walk the composite message in ascending
	// address order (sequential prefetch instead of random 1 KB hops).
	// The RNG draw sequence — and therefore the composition *set* and
	// the encoded bytes — is unchanged.
	sort.Ints(idx)
	return idx
}

// buildComposite splits the chunk and XORs up the auxiliary blocks,
// returning the n' composite blocks. The aux builds run through the
// cache-blocked gather (tile.go) over the inverted outer-code mapping
// memoized in auxMembers: at the Table 2 shape the message sweep is
// ~4 MB against ~68 KB of aux destinations, so byte strips keep each
// message strip resident while every aux block that references it is
// updated. The aux blocks live in one pooled backing buffer — the
// check gathers then read them as one contiguous run — which the
// caller must release with putBuf when done.
func (c *Online) buildComposite(chunk []byte, bs int) (composite [][]byte, auxBacking []byte) {
	msg := splitViews(chunk, c.n) // read-only XOR sources; no copy
	auxBacking = getRawBuf(c.numAux * bs)
	aux := make([][]byte, c.numAux)
	for ai := range aux {
		aux[ai] = auxBacking[ai*bs : (ai+1)*bs : (ai+1)*bs]
	}
	plan := c.auxPlan.get(c.auxMembers, c.n, tileBlocksFor(c.n))
	var srcs [][]byte
	applyTilePlan(plan, aux, msg, bs, stripBytesFor(c.n, c.numAux, bs), &srcs)
	composite = make([][]byte, c.nPrime)
	copy(composite, msg)
	copy(composite[c.n:], aux)
	return composite, auxBacking
}

// Encode implements Code: it splits the chunk into n message blocks,
// derives the auxiliary blocks, and emits m check blocks, each the
// fused XOR of its composition members. The emitted blocks share one
// backing array. The member gathers run cache-blocked (tile.go): byte
// strips bound the working set to L2 and a per-tile index over the
// memoized compositions walks each strip in ascending source tiles, so
// every source byte is read once per strip sweep instead of once per
// referencing check block. The blocked walk is byte-identical to the
// unblocked one (XOR reassociation only).
func (c *Online) Encode(chunk []byte) ([]Block, error) {
	bs := blockSize(len(chunk), c.n)
	composite, auxBacking := c.buildComposite(chunk, bs)
	out := make([]Block, c.m)
	backing := make([]byte, c.m*bs)
	dsts := make([][]byte, c.m)
	for i := 0; i < c.m; i++ {
		dsts[i] = backing[i*bs : (i+1)*bs : (i+1)*bs]
		out[i] = Block{Index: i, Data: dsts[i]}
	}
	plan := c.checkPlan.get(c.checkComps, c.nPrime, tileBlocksFor(c.nPrime))
	var srcs [][]byte
	applyTilePlan(plan, dsts, composite, bs, stripBytesFor(c.nPrime, c.m, bs), &srcs)
	putBuf(auxBacking)
	return out, nil
}

// equation is one XOR relation over composite blocks used by the peeling
// decoder: value ^ XOR(blocks[idx] for idx in unknown ∪ known) = 0.
// idx aliases memoized composition slices and is never mutated.
type equation struct {
	value  []byte
	idx    []int // composite indices of the equation's blocks
	active int   // members neither peeled nor inactivated yet
}

// gf2Row is one constraint row of the dense inactive-column system:
// bits over the inactive set, rhs the folded equation value.
type gf2Row struct {
	bits []uint64
	rhs  []byte
}

// decodeScratch holds every per-decode slice DecodeWithStats needs —
// equation storage, the dedupe bitmap, peel bookkeeping, the
// per-column inactive-set masks, and the constraint rows — so
// steady-state decodes run at a near-constant handful of allocations
// (pinned by TestDecodeSteadyStateAllocs) instead of one per received
// block.
type decodeScratch struct {
	eqs          []equation
	values       []byte   // one backing array for every equation RHS
	seenBits     []uint64 // received-index dedupe bitmap (idx < 2m)
	accepted     []int    // indices into the caller's blocks slice
	counts       []int
	occBacking   []int
	occurrences  [][]int
	state        []uint8
	pivotEq      []int
	isPivot      []bool
	peelOrder    []int
	ready        []int
	candScore    []int
	touched      []int
	known        [][]byte
	colMask      [][]uint64
	maskBacking  []uint64
	inactiveIdx  []int
	inactiveCols []int
	inactiveVal  [][]byte
	rows         []gf2Row
	bitBacking   []uint64
	srcs         [][]byte // member batch for the fused xorBlocks folds
}

var decodeScratchPool sync.Pool

// grow returns *buf resized to n elements with unspecified contents.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growZero returns *buf resized to n elements, all zeroed.
func growZero[T any](buf *[]T, n int) []T {
	s := grow(buf, n)
	clear(s)
	return s
}

// DecodeStats reports how a decode resolved — the observability hook
// the schedule-comparison experiments read. BPComplete is the
// "waterfall" indicator: true when plain belief propagation finished
// without inactivating a single column.
type DecodeStats struct {
	Received     int  // distinct, well-formed check blocks used
	Peeled       int  // composite columns recovered by (symbolic) peeling
	Inactivated  int  // columns deferred to the dense residual solve
	ResidualRows int  // constraint rows handed to the GE solver
	BPComplete   bool // peeling alone recovered every message block
}

// column states during the structural peel.
const (
	colUnknown = uint8(iota)
	colPeeled
	colInactive
)

// Decode implements Code. It accepts any subset of the emitted check
// blocks (duplicate indices are ignored); with at least MinNeeded of
// them it succeeds with overwhelming probability.
func (c *Online) Decode(blocks []Block, chunkLen int) ([]byte, error) {
	out, _, err := c.DecodeWithStats(blocks, chunkLen)
	return out, err
}

// DecodeWithStats is Decode plus resolution statistics.
//
// The decoder is belief-propagation peeling with *inactivation*: the
// structural peel runs over equation/column incidence only (no byte
// work). When the ready queue drains before every column is resolved,
// the column referenced by the most still-live equations is marked
// inactive — treated as a symbolic unknown — and peeling continues.
// A numeric replay then computes each peeled column's value and its
// GF(2) combination of inactive columns; the equations left over by
// the peel become constraint rows over only the inactive columns, a
// dense system of tens of columns (instead of the hundreds the old
// whole-residual Gaussian elimination swallowed) solved by the bitset
// GE in solveInactive. Back-substitution then finishes the message
// blocks. At the paper's 2% stored surplus this turns the ML fallback
// from the dominant decode cost into a footnote.
func (c *Online) DecodeWithStats(blocks []Block, chunkLen int) (out []byte, st DecodeStats, err error) {
	if chunkLen == 0 {
		return []byte{}, st, nil
	}
	bs := blockSize(chunkLen, c.n)

	// All per-decode state lives in one pooled scratch struct; join()
	// copies the recovered data out before the scratch is recycled.
	ds, _ := decodeScratchPool.Get().(*decodeScratch)
	if ds == nil {
		ds = &decodeScratch{}
	}
	defer decodeScratchPool.Put(ds)

	// Inner-code equations from the received check blocks. Duplicate
	// indices carry no new information (and an inconsistent duplicate
	// would corrupt the peel), so only the first copy of each index is
	// kept — a bitmap for the common range, a small map for the rare
	// far-out repair indices. Blocks of the wrong size (stale readers,
	// truncated fetches) are skipped the same way. Indices at or beyond
	// EncodedBlocks() are accepted: rateless repair (FreshBlock) mints
	// replacement blocks with new indices.
	seenLimit := 2 * c.m
	seenBits := growZero(&ds.seenBits, (seenLimit+63)/64)
	var seenHigh map[int]struct{}
	accepted := ds.accepted[:0]
	for bi := range blocks {
		b := &blocks[bi]
		if b.Index < 0 || len(b.Data) != bs {
			continue
		}
		if b.Index < seenLimit {
			w, m := b.Index/64, uint64(1)<<(b.Index%64)
			if seenBits[w]&m != 0 {
				continue
			}
			seenBits[w] |= m
		} else {
			if seenHigh == nil {
				seenHigh = make(map[int]struct{}, 8)
			}
			if _, dup := seenHigh[b.Index]; dup {
				continue
			}
			seenHigh[b.Index] = struct{}{}
		}
		accepted = append(accepted, bi)
	}
	ds.accepted = accepted
	st.Received = len(accepted)

	// Equation values share one backing array: one (pooled) allocation
	// instead of one per received block.
	nEq := len(accepted) + c.numAux
	values := grow(&ds.values, nEq*bs)
	eqs := ds.eqs[:0]
	for vi, bi := range accepted {
		v := values[vi*bs : (vi+1)*bs : (vi+1)*bs]
		copy(v, blocks[bi].Data)
		idx := c.checkComposition(blocks[bi].Index)
		eqs = append(eqs, equation{value: v, idx: idx, active: len(idx)})
	}
	// Outer-code equations: aux_j XOR (its message members) = 0.
	for ai, idx := range c.auxEqIdx {
		vi := len(accepted) + ai
		v := values[vi*bs : (vi+1)*bs : (vi+1)*bs]
		clear(v)
		eqs = append(eqs, equation{value: v, idx: idx, active: len(idx)})
	}
	ds.eqs = eqs

	// occurrences[ci] lists the equations mentioning composite block ci,
	// laid out in one backing array sized by a counting pass.
	counts := growZero(&ds.counts, c.nPrime)
	total := 0
	for i := range eqs {
		for _, ci := range eqs[i].idx {
			counts[ci]++
		}
		total += len(eqs[i].idx)
	}
	occBacking := grow(&ds.occBacking, total)
	occurrences := grow(&ds.occurrences, c.nPrime)
	off := 0
	for ci, n := range counts {
		occurrences[ci] = occBacking[off : off : off+n]
		off += n
	}
	for i := range eqs {
		for _, ci := range eqs[i].idx {
			occurrences[ci] = append(occurrences[ci], i)
		}
	}

	// ---- Structural peel (incidence only, no byte work). ----
	state := growZero(&ds.state, c.nPrime)
	pivotEq := grow(&ds.pivotEq, c.nPrime) // peeled column -> defining equation
	isPivot := growZero(&ds.isPivot, len(eqs))
	peelOrder := ds.peelOrder[:0]
	liveEqs := len(eqs)

	// resolveColumn marks ci peeled or inactive and retires it from
	// every equation, feeding the ready queue as singletons appear.
	ready := ds.ready[:0]
	resolveColumn := func(ci int) {
		for _, otherID := range occurrences[ci] {
			o := &eqs[otherID]
			if o.active == 0 {
				continue
			}
			o.active--
			switch o.active {
			case 1:
				ready = append(ready, otherID)
			case 0:
				// Became redundant without serving as a pivot; it will
				// contribute a constraint row over the inactive set.
				liveEqs--
			}
		}
	}
	for eqID := range eqs {
		if eqs[eqID].active == 1 {
			ready = append(ready, eqID)
		}
	}
	// Scratch for the stall-time inactivation scan, cleared via touched.
	candScore := growZero(&ds.candScore, c.nPrime)
	touched := ds.touched[:0]
	for liveEqs > 0 {
		for len(ready) > 0 {
			eqID := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			e := &eqs[eqID]
			if e.active != 1 {
				continue // resolved in the meantime
			}
			target := -1
			for _, ci := range e.idx {
				if state[ci] == colUnknown {
					target = ci
					break
				}
			}
			if target < 0 {
				continue
			}
			state[target] = colPeeled
			pivotEq[target] = eqID
			isPivot[eqID] = true
			peelOrder = append(peelOrder, target)
			e.active = 0
			liveEqs--
			resolveColumn(target)
		}
		if liveEqs == 0 {
			break
		}
		// Stalled: inactivate the unknown column that the most live
		// equations reference, which unlocks the most peeling per
		// deferred column (the ready queue is stall-aware: it resumes
		// from exactly the singletons this creates).
		touched = touched[:0]
		for i := range eqs {
			if eqs[i].active == 0 {
				continue
			}
			for _, ci := range eqs[i].idx {
				if state[ci] != colUnknown {
					continue
				}
				if candScore[ci] == 0 {
					touched = append(touched, ci)
				}
				candScore[ci]++
			}
		}
		best, bestScore := -1, 0
		for _, ci := range touched {
			if candScore[ci] > bestScore {
				best, bestScore = ci, candScore[ci]
			}
		}
		for _, ci := range touched {
			candScore[ci] = 0
		}
		if best < 0 {
			// Live equations but no unknown columns cannot happen (an
			// equation is live only while it has unknown members); guard
			// against it to keep garbage inputs from looping forever.
			break
		}
		state[best] = colInactive
		st.Inactivated++
		resolveColumn(best)
	}
	st.Peeled = len(peelOrder)
	st.BPComplete = st.Inactivated == 0
	ds.ready, ds.touched, ds.peelOrder = ready, touched, peelOrder

	// ---- Numeric replay in peel order. ----
	// Each peeled column's value is its pivot equation's right-hand
	// side folded with the values of its already-peeled members — a
	// per-equation batch through the fused xorBlocks — while the
	// inactive members are tracked symbolically as a bitmask over the
	// inactive set. With no inactivations this *is* plain BP.
	known := growZero(&ds.known, c.nPrime)
	nInactive := st.Inactivated
	maskWords := (nInactive + 63) / 64
	var inactiveIdx []int  // inactive column -> dense index
	var colMask [][]uint64 // peeled column -> inactive-combination mask
	var inactiveCols []int // dense index -> column
	if nInactive > 0 {
		inactiveIdx = grow(&ds.inactiveIdx, c.nPrime)
		inactiveCols = ds.inactiveCols[:0]
		for ci := 0; ci < c.nPrime; ci++ {
			if state[ci] == colInactive {
				inactiveIdx[ci] = len(inactiveCols)
				inactiveCols = append(inactiveCols, ci)
			}
		}
		ds.inactiveCols = inactiveCols
		colMask = growZero(&ds.colMask, c.nPrime)
		maskBacking := growZero(&ds.maskBacking, len(peelOrder)*maskWords)
		for oi, ci := range peelOrder {
			colMask[ci] = maskBacking[oi*maskWords : (oi+1)*maskWords : (oi+1)*maskWords]
		}
	}
	srcs := ds.srcs[:0]
	for _, ci := range peelOrder {
		e := &eqs[pivotEq[ci]]
		val := e.value
		srcs = srcs[:0]
		for _, mi := range e.idx {
			if mi == ci {
				continue
			}
			if state[mi] == colInactive {
				j := inactiveIdx[mi]
				colMask[ci][j/64] ^= 1 << (j % 64)
				continue
			}
			// Peeled earlier: value and mask are final.
			srcs = append(srcs, known[mi])
			if nInactive > 0 {
				for w, bits := range colMask[mi] {
					colMask[ci][w] ^= bits
				}
			}
		}
		xorBlocks(val, srcs)
		known[ci] = val
	}
	ds.srcs = srcs

	if nInactive > 0 {
		// Constraint rows: every equation that resolved without being a
		// pivot reduces to a relation over only the inactive columns.
		// Row bit-vectors and the row list come from the pooled scratch;
		// the per-row peeled-member folds batch through xorBlocks like
		// the replay above.
		rows := ds.rows[:0]
		bitBacking := growZero(&ds.bitBacking, (len(eqs)-len(peelOrder))*maskWords)
		for i := range eqs {
			if isPivot[i] || eqs[i].active != 0 {
				continue
			}
			bits := bitBacking[:maskWords:maskWords]
			bitBacking = bitBacking[maskWords:]
			rhs := eqs[i].value // equation is spent; fold in place
			srcs = srcs[:0]
			zero := true
			for _, mi := range eqs[i].idx {
				if state[mi] == colInactive {
					j := inactiveIdx[mi]
					bits[j/64] ^= 1 << (j % 64)
				} else if state[mi] == colPeeled {
					srcs = append(srcs, known[mi])
					for w, b := range colMask[mi] {
						bits[w] ^= b
					}
				}
				// colUnknown members are unreachable here: a resolved
				// equation has no unknown members.
			}
			xorBlocks(rhs, srcs)
			for _, b := range bits {
				if b != 0 {
					zero = false
					break
				}
			}
			if zero {
				continue // pure redundancy, no information on the inactive set
			}
			rows = append(rows, gf2Row{bits: bits, rhs: rhs})
		}
		ds.srcs = srcs
		ds.rows = rows
		st.ResidualRows = len(rows)

		// Bitset Gaussian elimination over the (small) inactive system.
		pivotOf := make([]int, nInactive) // dense column -> row, -1 if none
		for j := range pivotOf {
			pivotOf[j] = -1
		}
		next := 0
		for j := 0; j < nInactive && next < len(rows); j++ {
			w, b := j/64, uint64(1)<<(j%64)
			p := -1
			for r := next; r < len(rows); r++ {
				if rows[r].bits[w]&b != 0 {
					p = r
					break
				}
			}
			if p < 0 {
				continue
			}
			rows[p], rows[next] = rows[next], rows[p]
			for r := 0; r < len(rows); r++ {
				if r != next && rows[r].bits[w]&b != 0 {
					for k := range rows[r].bits {
						rows[r].bits[k] ^= rows[next].bits[k]
					}
					xorInto(rows[r].rhs, rows[next].rhs)
				}
			}
			pivotOf[j] = next
			next++
		}
		inactiveVal := growZero(&ds.inactiveVal, nInactive)
		for j, p := range pivotOf {
			if p < 0 {
				continue
			}
			// Accept the row only if full elimination reduced it to a
			// singleton on column j. When the system is rank-deficient a
			// pivot row can still carry bits of pivotless (free) columns;
			// its rhs is then x_j XOR x_free, and reading it off as x_j
			// would return corrupted data as a successful decode.
			singleton := true
			for w, b := range rows[p].bits {
				want := uint64(0)
				if w == j/64 {
					want = 1 << (j % 64)
				}
				if b != want {
					singleton = false
					break
				}
			}
			if singleton {
				inactiveVal[j] = rows[p].rhs
			}
		}
		for j, ci := range inactiveCols {
			known[ci] = inactiveVal[j] // nil when the system was rank-deficient
		}
		// Back-substitute the solved inactive columns into the message
		// blocks (only those; auxiliary values are not needed anymore).
		for ci := 0; ci < c.n; ci++ {
			if state[ci] != colPeeled {
				continue
			}
			for w, bits := range colMask[ci] {
				for bits != 0 {
					j := w*64 + trailingZeros(bits)
					bits &= bits - 1
					if inactiveVal[j] == nil {
						return nil, st, c.insufficientErr(st)
					}
					xorInto(known[ci], inactiveVal[j])
				}
			}
		}
	}

	for ci := 0; ci < c.n; ci++ {
		if known[ci] == nil {
			return nil, st, c.insufficientErr(st)
		}
	}
	return join(known[:c.n], chunkLen), st, nil
}

// trailingZeros names the bit-scan for the back-substitution loop.
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// insufficientErr wraps ErrInsufficient with the context that makes a
// failed decode diagnosable from psbench and grid logs: code shape,
// how many distinct blocks arrived versus the expected threshold, and
// how far resolution got. errors.Is(err, ErrInsufficient) still holds.
func (c *Online) insufficientErr(st DecodeStats) error {
	unresolved := c.nPrime - st.Peeled - st.Inactivated
	return fmt.Errorf("%w: online(n=%d, n'=%d, sched=%s): %d distinct blocks (min %d), %d columns unresolved, %d peeled, %d inactivated, %d residual rows",
		ErrInsufficient, c.n, c.nPrime, c.sched.Name(), st.Received, c.MinNeeded(), unresolved, st.Peeled, st.Inactivated, st.ResidualRows)
}

// FreshBlock generates one additional check block with the given index
// (index ≥ EncodedBlocks() for replacements). This is the rateless
// repair path of §4.4: a node re-creating a lost encoded block produces
// a functionally equal — not identical — block. The mint cost is
// dominated by rebuilding the auxiliary blocks, which buildComposite
// runs through the cache-blocked gather; the final single-composition
// gather touches only ~d blocks and stays unblocked.
func (c *Online) FreshBlock(chunk []byte, index int) (Block, error) {
	if index < 0 {
		return Block{}, fmt.Errorf("erasure: fresh block index %d < 0", index)
	}
	bs := blockSize(len(chunk), c.n)
	composite, aux := c.buildComposite(chunk, bs)
	data := make([]byte, bs)
	comp := c.checkComposition(index)
	srcs := make([][]byte, 0, len(comp))
	for _, ci := range comp {
		srcs = append(srcs, composite[ci])
	}
	xorBlocksSet(data, srcs)
	putBuf(aux)
	return Block{Index: index, Data: data}, nil
}
