package erasure

import (
	"fmt"
	"math"
	"math/rand"
)

// Online implements Maymounkov's rateless online code (§2.2 and [27]),
// the sub-optimal erasure code the paper selects for PeerStripe.
//
// Structure (following the technical report TR2003-883):
//
//   - The *outer code* appends numAux = ceil(0.55·q·ε·n) auxiliary
//     blocks; each of the n message blocks is XORed into q auxiliary
//     blocks chosen pseudo-randomly. Message + auxiliary blocks form the
//     composite message of n' blocks.
//   - The *inner code* produces check blocks ratelessly: check block i
//     is the XOR of d composite blocks, where d is drawn from the
//     soliton-like degree distribution ρ parameterised by ε.
//   - Decoding is belief propagation (peeling): any equation with
//     exactly one unknown block reveals it; recovered auxiliary blocks
//     feed the outer-code equations in both directions.
//
// Receiving (1+ε)n' check blocks decodes with probability
// 1 − (ε/2)^(q+1). Because the code is rateless, a lost encoded block
// can be replaced by generating a brand-new check block without
// re-reading the whole file — the property §4.4 uses for repair
// ("drop ... and create another one at a different location").
//
// The outer-code assignments and the compositions of the m stored check
// blocks are deterministic functions of the seed, so they are derived
// once at NewOnline time and shared (read-only) by every Encode/Decode;
// an Online value is safe for concurrent use.
//
// The paper's Table 2 configuration is q = 3, ε = 0.01, 4096 blocks per
// 4 MB chunk.
type Online struct {
	n       int     // message blocks per chunk
	q       int     // outer-code degree
	eps     float64 // ε
	surplus float64 // extra check blocks stored beyond (1+ε)n'
	numAux  int
	nPrime  int // n + numAux
	m       int // check blocks stored per chunk
	cdf     []float64
	seed    int64

	auxAssign  [][]int // message block -> its distinct aux targets
	auxEqIdx   [][]int // aux block -> [n+aux, message members...]
	checkComps [][]int // composition of stored check blocks 0..m-1
}

// OnlineOpts configures an Online code. Zero values select the paper's
// Table 2 parameters.
type OnlineOpts struct {
	Q       int     // outer degree; default 3
	Eps     float64 // ε; default 0.01
	Surplus float64 // stored check-block surplus beyond (1+ε)n'; default 0.02
	Seed    int64   // PRNG seed shared by encoder and decoder; default 1
}

// NewOnline returns an online code over n message blocks per chunk.
func NewOnline(n int, opts OnlineOpts) (*Online, error) {
	if n < 1 {
		return nil, fmt.Errorf("erasure: online needs n >= 1, got %d", n)
	}
	if opts.Q == 0 {
		opts.Q = 3
	}
	if opts.Eps == 0 {
		opts.Eps = 0.01
	}
	if opts.Surplus == 0 {
		opts.Surplus = 0.02
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("erasure: online eps must be in (0,1), got %g", opts.Eps)
	}
	c := &Online{n: n, q: opts.Q, eps: opts.Eps, surplus: opts.Surplus, seed: opts.Seed}
	c.numAux = int(math.Ceil(0.55 * float64(c.q) * c.eps * float64(n)))
	if c.numAux < 1 {
		c.numAux = 1
	}
	c.nPrime = n + c.numAux
	c.m = int(math.Ceil((1 + c.eps + c.surplus) * float64(c.nPrime)))
	c.cdf = degreeCDF(c.eps)

	// Memoize the deterministic equation structure: the outer-code
	// assignments (and their inverse, as ready-made decoder equations)
	// and the composition of every stored check block. Encode and
	// Decode previously re-derived all of this from seeded RNGs on
	// every call, which dominated their runtime.
	c.auxAssign = c.computeAuxAssignments()
	members := make([][]int, c.numAux)
	for mi, as := range c.auxAssign {
		for _, ai := range as {
			members[ai] = append(members[ai], mi)
		}
	}
	c.auxEqIdx = make([][]int, c.numAux)
	for ai, ms := range members {
		idx := make([]int, 0, len(ms)+1)
		idx = append(idx, c.n+ai)
		idx = append(idx, ms...)
		c.auxEqIdx[ai] = idx
	}
	c.checkComps = make([][]int, c.m)
	for i := 0; i < c.m; i++ {
		c.checkComps[i] = c.computeCheckComposition(i)
	}
	return c, nil
}

// MustOnline is NewOnline for static configurations; it panics on error.
func MustOnline(n int, opts OnlineOpts) *Online {
	c, err := NewOnline(n, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// degreeCDF builds the cumulative degree distribution of the inner code:
//
//	F  = ceil( ln(ε²/4) / ln(1−ε/2) )
//	ρ1 = 1 − (1+1/F)/(1+ε)
//	ρi = (1−ρ1)·F / ((F−1)·i·(i−1))   for 2 ≤ i ≤ F
func degreeCDF(eps float64) []float64 {
	f := int(math.Ceil(math.Log(eps*eps/4) / math.Log(1-eps/2)))
	if f < 2 {
		f = 2
	}
	rho := make([]float64, f+1) // rho[i] for degree i, rho[0] unused
	rho[1] = 1 - (1+1/float64(f))/(1+eps)
	for i := 2; i <= f; i++ {
		rho[i] = (1 - rho[1]) * float64(f) / (float64(f-1) * float64(i) * float64(i-1))
	}
	cdf := make([]float64, f+1)
	sum := 0.0
	for i := 1; i <= f; i++ {
		sum += rho[i]
		cdf[i] = sum
	}
	cdf[f] = 1 // absorb rounding
	return cdf
}

// sampleDegree draws a check-block degree from the distribution.
func (c *Online) sampleDegree(rng *rand.Rand) int {
	u := rng.Float64()
	// binary search over the CDF
	lo, hi := 1, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] >= u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Name implements Code.
func (c *Online) Name() string { return "online" }

// DataBlocks implements Code.
func (c *Online) DataBlocks() int { return c.n }

// EncodedBlocks implements Code.
func (c *Online) EncodedBlocks() int { return c.m }

// MinNeeded implements Code. Decoding needs (1+ε)n' check blocks in
// expectation; we report that bound (success beyond it is probabilistic
// but overwhelmingly likely at the stored surplus).
func (c *Online) MinNeeded() int {
	return int(math.Ceil((1 + c.eps) * float64(c.nPrime)))
}

// NumAux returns the number of auxiliary blocks of the outer code.
func (c *Online) NumAux() int { return c.numAux }

// auxRNG returns the deterministic source for the outer-code mapping.
func (c *Online) auxRNG() *rand.Rand {
	return rand.New(rand.NewSource(c.seed ^ 0x0a5f1e3d))
}

// checkRNG returns the deterministic source for check block i's
// composition. Encoder and decoder derive identical equations from the
// block index alone, so no equation metadata is stored with the block.
func (c *Online) checkRNG(i int) *rand.Rand {
	mix := int64(uint64(0x9e3779b97f4a7c15) + uint64(i)*uint64(0x2545f4914f6cdd1d))
	return rand.New(rand.NewSource(c.seed ^ mix))
}

// auxAssignments returns, for each message block, the q *distinct*
// auxiliary blocks (indices 0..numAux-1) it is XORed into. The result
// is memoized at construction; callers must not mutate it.
func (c *Online) auxAssignments() [][]int { return c.auxAssign }

// computeAuxAssignments derives the outer-code mapping from the seed.
// Distinctness matters: a duplicate assignment would cancel under XOR
// while the decoder's equations still listed it. When numAux < q every
// auxiliary block is used.
func (c *Online) computeAuxAssignments() [][]int {
	rng := c.auxRNG()
	k := c.q
	if k > c.numAux {
		k = c.numAux
	}
	out := make([][]int, c.n)
	for i := range out {
		as := make([]int, 0, k)
		seen := make(map[int]struct{}, k)
		for len(as) < k {
			v := rng.Intn(c.numAux)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			as = append(as, v)
		}
		out[i] = as
	}
	return out
}

// checkComposition returns the distinct composite-block indices XORed
// into check block i. Compositions of the m stored blocks are memoized;
// higher indices (rateless replacements) are derived on demand. Callers
// must not mutate the result.
func (c *Online) checkComposition(i int) []int {
	if i < len(c.checkComps) {
		return c.checkComps[i]
	}
	return c.computeCheckComposition(i)
}

func (c *Online) computeCheckComposition(i int) []int {
	rng := c.checkRNG(i)
	d := c.sampleDegree(rng)
	if d > c.nPrime {
		d = c.nPrime
	}
	seen := make(map[int]struct{}, d)
	out := make([]int, 0, d)
	for len(out) < d {
		v := rng.Intn(c.nPrime)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// buildComposite splits the chunk and XORs up the auxiliary blocks,
// returning the n' composite blocks. The aux blocks are pooled scratch;
// the caller must release them with putBuf when done.
func (c *Online) buildComposite(chunk []byte, bs int) (composite [][]byte, aux [][]byte) {
	msg := split(chunk, c.n)
	aux = make([][]byte, c.numAux)
	for i := range aux {
		aux[i] = getBuf(bs)
	}
	for mi, as := range c.auxAssign {
		for _, ai := range as {
			xorInto(aux[ai], msg[mi])
		}
	}
	composite = make([][]byte, c.nPrime)
	copy(composite, msg)
	copy(composite[c.n:], aux)
	return composite, aux
}

// Encode implements Code: it splits the chunk into n message blocks,
// derives the auxiliary blocks, and emits m check blocks. The emitted
// blocks share one backing array.
func (c *Online) Encode(chunk []byte) ([]Block, error) {
	bs := blockSize(len(chunk), c.n)
	composite, aux := c.buildComposite(chunk, bs)
	out := make([]Block, c.m)
	backing := make([]byte, c.m*bs)
	for i := 0; i < c.m; i++ {
		data := backing[i*bs : (i+1)*bs : (i+1)*bs]
		for _, ci := range c.checkComps[i] {
			xorInto(data, composite[ci])
		}
		out[i] = Block{Index: i, Data: data}
	}
	for _, a := range aux {
		putBuf(a)
	}
	return out, nil
}

// equation is one XOR relation over composite blocks used by the peeling
// decoder: value ^ XOR(blocks[idx] for idx in unknown ∪ known) = 0.
// idx aliases memoized composition slices and is never mutated.
type equation struct {
	value   []byte
	idx     []int // composite indices of the equation's blocks
	unknown int
}

// Decode implements Code via belief-propagation peeling. It accepts any
// subset of the emitted check blocks (duplicate indices are ignored);
// with at least MinNeeded of them it succeeds with overwhelming
// probability.
func (c *Online) Decode(blocks []Block, chunkLen int) (out []byte, err error) {
	if chunkLen == 0 {
		return []byte{}, nil
	}
	bs := blockSize(chunkLen, c.n)

	// Every scratch buffer allocated below is registered in owned and
	// returned to the pool on exit; join() copies the recovered data
	// out before that happens.
	owned := make([][]byte, 0, len(blocks)+c.numAux)
	defer func() {
		for _, b := range owned {
			putBuf(b)
		}
	}()

	known := make([][]byte, c.nPrime)
	eqs := make([]equation, 0, len(blocks)+c.numAux)

	// Inner-code equations from the received check blocks. Duplicate
	// indices carry no new information (and an inconsistent duplicate
	// would corrupt the peel), so only the first copy of each index is
	// kept.
	seen := make(map[int]struct{}, len(blocks))
	for _, b := range blocks {
		// Indices at or beyond EncodedBlocks() are accepted: rateless
		// repair (FreshBlock) mints replacement blocks with new indices.
		if b.Index < 0 || len(b.Data) != bs {
			continue
		}
		if _, dup := seen[b.Index]; dup {
			continue
		}
		seen[b.Index] = struct{}{}
		v := getRawBuf(bs)
		copy(v, b.Data)
		owned = append(owned, v)
		idx := c.checkComposition(b.Index)
		eqs = append(eqs, equation{value: v, idx: idx, unknown: len(idx)})
	}
	// Outer-code equations: aux_j XOR (its message members) = 0.
	for _, idx := range c.auxEqIdx {
		v := getBuf(bs)
		owned = append(owned, v)
		eqs = append(eqs, equation{value: v, idx: idx, unknown: len(idx)})
	}

	// occurrences[ci] lists the equations mentioning composite block ci,
	// laid out in one backing array sized by a counting pass.
	counts := make([]int, c.nPrime)
	total := 0
	for i := range eqs {
		for _, ci := range eqs[i].idx {
			counts[ci]++
		}
		total += len(eqs[i].idx)
	}
	occBacking := make([]int, total)
	occurrences := make([][]int, c.nPrime)
	off := 0
	for ci, n := range counts {
		occurrences[ci] = occBacking[off : off : off+n]
		off += n
	}
	for i := range eqs {
		for _, ci := range eqs[i].idx {
			occurrences[ci] = append(occurrences[ci], i)
		}
	}

	// Peel: any equation with exactly one unknown reveals that block.
	ready := make([]int, 0, len(eqs))
	for eqID := range eqs {
		if eqs[eqID].unknown == 1 {
			ready = append(ready, eqID)
		}
	}
	for len(ready) > 0 {
		eqID := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		e := &eqs[eqID]
		if e.unknown != 1 {
			continue // resolved in the meantime
		}
		// Find the single unknown and solve for it, folding the known
		// members into the equation's own value buffer (the equation is
		// spent afterwards, so in-place is safe).
		target := -1
		for _, ci := range e.idx {
			if known[ci] == nil {
				target = ci
			} else {
				xorInto(e.value, known[ci])
			}
		}
		if target < 0 {
			continue
		}
		known[target] = e.value
		e.unknown = 0
		for _, otherID := range occurrences[target] {
			o := &eqs[otherID]
			if o.unknown == 0 {
				continue
			}
			o.unknown--
			if o.unknown == 1 {
				ready = append(ready, otherID)
			}
		}
	}

	// Fast path: peeling recovered every message block.
	complete := true
	for i := 0; i < c.n; i++ {
		if known[i] == nil {
			complete = false
			break
		}
	}
	if !complete {
		// Maximum-likelihood fallback: solve the residual GF(2) system
		// by Gaussian elimination. Peeling stalls with small probability
		// (higher at small n); ML decoding succeeds whenever the
		// received equations have sufficient rank, which is the
		// information-theoretic limit.
		if !solveResidual(eqs, known, bs, &owned) {
			return nil, ErrInsufficient
		}
		for i := 0; i < c.n; i++ {
			if known[i] == nil {
				return nil, ErrInsufficient
			}
		}
	}

	return join(known[:c.n], chunkLen), nil
}

// solveResidual runs Gaussian elimination over GF(2) on the equations
// still holding unknowns, writing every block it determines into known.
// It returns false only if the system is unusable (no rows). Scratch
// buffers it allocates are appended to owned; the caller releases them.
func solveResidual(eqs []equation, known [][]byte, bs int, owned *[][]byte) bool {
	// Collect unsolved unknown composite indices and assign columns.
	col := make(map[int]int)
	var cols []int
	for i := range eqs {
		if eqs[i].unknown == 0 {
			continue
		}
		for _, ci := range eqs[i].idx {
			if known[ci] == nil {
				if _, ok := col[ci]; !ok {
					col[ci] = len(cols)
					cols = append(cols, ci)
				}
			}
		}
	}
	if len(cols) == 0 {
		return false
	}
	words := (len(cols) + 63) / 64
	type row struct {
		bits []uint64
		rhs  []byte
	}
	nRows := 0
	for i := range eqs {
		if eqs[i].unknown != 0 {
			nRows++
		}
	}
	// All rows' bit vectors live in one backing array.
	bitBacking := make([]uint64, nRows*words)
	rows := make([]row, 0, nRows)
	for i := range eqs {
		e := &eqs[i]
		if e.unknown == 0 {
			continue
		}
		rhs := getRawBuf(bs)
		copy(rhs, e.value)
		*owned = append(*owned, rhs)
		bits := bitBacking[len(rows)*words : (len(rows)+1)*words : (len(rows)+1)*words]
		r := row{bits: bits, rhs: rhs}
		for _, ci := range e.idx {
			if known[ci] != nil {
				xorInto(r.rhs, known[ci])
			} else {
				j := col[ci]
				r.bits[j/64] ^= 1 << (j % 64)
			}
		}
		rows = append(rows, r)
	}

	// Forward elimination with back substitution folded in.
	pivotOf := make([]int, len(cols)) // column -> row index, -1 if none
	for i := range pivotOf {
		pivotOf[i] = -1
	}
	next := 0
	for j := 0; j < len(cols) && next < len(rows); j++ {
		w, b := j/64, uint64(1)<<(j%64)
		// Find a row at/after next with bit j set.
		p := -1
		for r := next; r < len(rows); r++ {
			if rows[r].bits[w]&b != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			continue
		}
		rows[p], rows[next] = rows[next], rows[p]
		for r := 0; r < len(rows); r++ {
			if r != next && rows[r].bits[w]&b != 0 {
				for k := range rows[r].bits {
					rows[r].bits[k] ^= rows[next].bits[k]
				}
				xorInto(rows[r].rhs, rows[next].rhs)
			}
		}
		pivotOf[j] = next
		next++
	}

	// Each pivot row is now a singleton: read the solved blocks off.
	for j, p := range pivotOf {
		if p < 0 {
			continue
		}
		// Confirm the row is a singleton on column j (it is, after full
		// elimination above).
		ci := cols[j]
		if known[ci] == nil {
			known[ci] = rows[p].rhs
		}
	}
	return true
}

// FreshBlock generates one additional check block with the given index
// (index ≥ EncodedBlocks() for replacements). This is the rateless
// repair path of §4.4: a node re-creating a lost encoded block produces
// a functionally equal — not identical — block.
func (c *Online) FreshBlock(chunk []byte, index int) (Block, error) {
	if index < 0 {
		return Block{}, fmt.Errorf("erasure: fresh block index %d < 0", index)
	}
	bs := blockSize(len(chunk), c.n)
	composite, aux := c.buildComposite(chunk, bs)
	data := make([]byte, bs)
	for _, ci := range c.checkComposition(index) {
		xorInto(data, composite[ci])
	}
	for _, a := range aux {
		putBuf(a)
	}
	return Block{Index: index, Data: data}, nil
}
