package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGF256Axioms(t *testing.T) {
	// Multiplicative group: a * inv(a) == 1 for all nonzero a.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("inv broken for %d", a)
		}
	}
	// Distributivity sample.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity broken: %d %d %d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatal("commutativity broken")
		}
	}
	if gfMul(0, 77) != 0 || gfMul(77, 0) != 0 {
		t.Fatal("zero annihilator broken")
	}
	if gfPow(3, 0) != 1 || gfPow(0, 5) != 0 {
		t.Fatal("pow edge cases broken")
	}
}

func TestGFMatrixInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		m := newGFMatrix(n, n)
		for i := range m.d {
			m.d[i] = byte(rng.Intn(256))
		}
		inv, ok := m.invert()
		if !ok {
			continue // singular draw; fine
		}
		prod := m.mul(inv)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if prod.at(r, c) != want {
					t.Fatalf("m * m^-1 != I at (%d,%d)", r, c)
				}
			}
		}
	}
	// Singular matrix rejected.
	s := newGFMatrix(2, 2)
	s.set(0, 0, 1)
	s.set(0, 1, 2)
	s.set(1, 0, 1)
	s.set(1, 1, 2)
	if _, ok := s.invert(); ok {
		t.Fatal("singular matrix inverted")
	}
}

func TestRSRoundTripAllBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := MustRS(4, 2)
	chunk := randChunk(rng, 10000)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 6 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	got, err := c.Decode(blocks, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("rs full round trip mismatch")
	}
}

func TestRSSystematic(t *testing.T) {
	c := MustRS(3, 2)
	chunk := []byte("abcdefghij")
	blocks, _ := c.Encode(chunk)
	// Data blocks hold the chunk verbatim.
	joined := append(append(append([]byte{}, blocks[0].Data...), blocks[1].Data...), blocks[2].Data...)
	if !bytes.HasPrefix(joined, chunk) {
		t.Fatal("rs not systematic")
	}
}

func TestRSDecodesFromAnyNSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := MustRS(4, 3) // 7 blocks, any 4 decode
	chunk := randChunk(rng, 8191)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustively try every 4-subset of the 7 blocks.
	idx := []int{0, 1, 2, 3, 4, 5, 6}
	var rec func(start int, chosen []Block)
	tried := 0
	rec = func(start int, chosen []Block) {
		if len(chosen) == 4 {
			tried++
			got, err := c.Decode(chosen, len(chunk))
			if err != nil {
				t.Fatalf("subset decode failed: %v", err)
			}
			if !bytes.Equal(got, chunk) {
				t.Fatal("subset decode mismatch")
			}
			return
		}
		for i := start; i < len(idx); i++ {
			rec(i+1, append(chosen, blocks[idx[i]]))
		}
	}
	rec(0, nil)
	if tried != 35 { // C(7,4)
		t.Fatalf("tried %d subsets, want 35", tried)
	}
}

func TestRSInsufficient(t *testing.T) {
	c := MustRS(4, 2)
	chunk := make([]byte, 100)
	blocks, _ := c.Encode(chunk)
	if _, err := c.Decode(blocks[:3], len(chunk)); err != ErrInsufficient {
		t.Fatalf("err = %v", err)
	}
}

func TestRSRejectsBadParams(t *testing.T) {
	if _, err := NewRS(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewRS(1, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewRS(200, 100); err == nil {
		t.Error("n+k>255 accepted")
	}
}

func TestRSWideStripe(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := MustRS(16, 4)
	chunk := randChunk(rng, 1<<16)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	// Drop 4 random blocks (the maximum tolerable).
	perm := rng.Perm(len(blocks))
	var sub []Block
	for _, i := range perm[:16] {
		sub = append(sub, blocks[i])
	}
	got, err := c.Decode(sub, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("wide stripe recovery mismatch")
	}
}

// Property: RS round-trips arbitrary payloads after losing any k blocks.
func TestRSLossProperty(t *testing.T) {
	c := MustRS(5, 3)
	f := func(payload []byte, seed int64) bool {
		if len(payload) == 0 {
			return true
		}
		blocks, err := c.Encode(payload)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(blocks))
		var sub []Block
		for _, i := range perm[:5] {
			sub = append(sub, blocks[i])
		}
		got, err := c.Decode(sub, len(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRSSimSpec(t *testing.T) {
	s := RSSimSpec(4, 2)
	if s.DataBlocks != 4 || s.TotalBlocks != 6 || s.MinNeeded != 4 || s.Tolerates() != 2 {
		t.Fatalf("spec = %+v", s)
	}
}

func TestRSEmptyChunk(t *testing.T) {
	c := MustRS(4, 2)
	blocks, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(blocks, 0)
	if err != nil || len(got) != 0 {
		t.Fatal("empty chunk handling broken")
	}
}

func BenchmarkRSEncode4MB(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	c := MustRS(16, 4)
	chunk := randChunk(rng, 4<<20)
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSDecodeWorstCase4MB(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	c := MustRS(16, 4)
	chunk := randChunk(rng, 4<<20)
	blocks, err := c.Encode(chunk)
	if err != nil {
		b.Fatal(err)
	}
	// Lose 4 data blocks: full matrix-inversion path.
	sub := append([]Block{}, blocks[4:]...)
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(sub, len(chunk)); err != nil {
			b.Fatal(err)
		}
	}
}
