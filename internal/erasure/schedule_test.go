package erasure

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestUniformDefaultByteIdentical pins the wire format: with a nil (or
// explicit Uniform) schedule, Encode must keep producing exactly the
// bytes it produced before the Schedule knob existed, for a fixed seed.
// The golden hashes were computed from the pre-schedule implementation
// (PR 1) on identical inputs; a change here means stored blocks from
// older builds are no longer decodable.
func TestUniformDefaultByteIdentical(t *testing.T) {
	cases := []struct {
		n      int
		opts   OnlineOpts
		size   int
		golden string
	}{
		{64, OnlineOpts{}, 64*512 + 17, "a9124d4e4ac8fff4b5118af8a9c5109c9c0d2e8ee962a147197cf521c451a3cd"},
		{256, OnlineOpts{Eps: 0.05, Surplus: 0.04, Seed: 9}, 256 * 128, "aadb54e0f32ff4d1068b26aaedbfa8f1f9ca072e5172b0da3ac4ae9abd01dad0"},
		{4096, OnlineOpts{}, 1 << 20, "ecff7c571c6aa0740ebe9fd8ff012db512b0af0c13f804057edea1326bbecd04"},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(1234))
		chunk := make([]byte, tc.size)
		rng.Read(chunk)
		hash := func(opts OnlineOpts) string {
			blocks, err := MustOnline(tc.n, opts).Encode(chunk)
			if err != nil {
				t.Fatal(err)
			}
			h := sha256.New()
			for _, b := range blocks {
				h.Write(b.Data)
			}
			return fmt.Sprintf("%x", h.Sum(nil))
		}
		if got := hash(tc.opts); got != tc.golden {
			t.Errorf("n=%d: default-schedule encoding drifted: %s, golden %s", tc.n, got, tc.golden)
		}
		explicit := tc.opts
		explicit.Schedule = Uniform()
		if got := hash(explicit); got != tc.golden {
			t.Errorf("n=%d: explicit Uniform() differs from nil default", tc.n)
		}
	}
}

// TestScheduleRoundTrip decodes the full stored block set under every
// schedule across seeds, n, and ε.
func TestScheduleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, sched := range Schedules() {
		for _, n := range []int{16, 64, 257} {
			for _, eps := range []float64{0.1, 0.3} {
				for seed := int64(1); seed <= 3; seed++ {
					c := MustOnline(n, OnlineOpts{Eps: eps, Surplus: 0.3, Seed: seed, Schedule: sched})
					chunk := randChunk(rng, n*64+seedTail(seed))
					blocks, err := c.Encode(chunk)
					if err != nil {
						t.Fatal(err)
					}
					got, err := c.Decode(blocks, len(chunk))
					if err != nil {
						t.Fatalf("%s n=%d eps=%g seed=%d: %v", sched.Name(), n, eps, seed, err)
					}
					if !bytes.Equal(got, chunk) {
						t.Fatalf("%s n=%d eps=%g seed=%d: round-trip mismatch", sched.Name(), n, eps, seed)
					}
				}
			}
		}
	}
}

// seedTail varies chunk padding so every seed also exercises a
// different final-block fill.
func seedTail(seed int64) int { return int(seed * 7 % 13) }

// TestScheduleDuplicateAndStaleBlocks feeds each schedule's decoder
// duplicated indices, inconsistent duplicates, wrong-size (stale)
// blocks, and fresh out-of-range repair indices in one call.
func TestScheduleDuplicateAndStaleBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, sched := range Schedules() {
		c := MustOnline(64, OnlineOpts{Eps: 0.2, Surplus: 0.2, Schedule: sched})
		chunk := randChunk(rng, 64*128+11)
		blocks, err := c.Encode(chunk)
		if err != nil {
			t.Fatal(err)
		}
		mangled := append([]Block{}, blocks...)
		// Duplicates, one with corrupted payload: first copy must win.
		mangled = append(mangled, blocks[0], blocks[1])
		corrupt := append([]byte(nil), blocks[2].Data...)
		corrupt[0] ^= 0xff
		mangled = append(mangled, Block{Index: blocks[2].Index, Data: corrupt})
		// Stale blocks: wrong size for this chunk; must be skipped.
		mangled = append(mangled,
			Block{Index: 3, Data: make([]byte, 7)},
			Block{Index: 4, Data: nil})
		// Rateless repair block with an index beyond the stored set.
		fresh, err := c.FreshBlock(chunk, c.EncodedBlocks()+5)
		if err != nil {
			t.Fatal(err)
		}
		mangled = append(mangled, fresh)
		got, err := c.Decode(mangled, len(chunk))
		if err != nil {
			t.Fatalf("%s: decode with duplicates+stale: %v", sched.Name(), err)
		}
		if !bytes.Equal(got, chunk) {
			t.Fatalf("%s: duplicate/stale decode mismatch", sched.Name())
		}
	}
}

// TestScheduleSurplusThreshold decodes with exactly MinNeeded blocks
// (must succeed via inactivation at these sizes) and with far fewer
// than n blocks (must fail with a contextual ErrInsufficient) under
// every schedule.
func TestScheduleSurplusThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, sched := range Schedules() {
		c := MustOnline(128, OnlineOpts{Eps: 0.2, Surplus: 0.25, Schedule: sched})
		chunk := randChunk(rng, 128*64)
		blocks, err := c.Encode(chunk)
		if err != nil {
			t.Fatal(err)
		}
		// Exactly at the decodable threshold: (1+ε)n' blocks.
		at := blocks[:c.MinNeeded()]
		got, st, err := c.DecodeWithStats(at, len(chunk))
		if err != nil {
			t.Fatalf("%s: decode at MinNeeded=%d: %v (stats %+v)", sched.Name(), c.MinNeeded(), err, st)
		}
		if !bytes.Equal(got, chunk) {
			t.Fatalf("%s: threshold decode mismatch", sched.Name())
		}
		// Just below any decodable point: fewer equations than message
		// blocks minus what the outer code can contribute.
		below := blocks[:c.DataBlocks()-c.NumAux()-1]
		_, _, err = c.DecodeWithStats(below, len(chunk))
		if !errors.Is(err, ErrInsufficient) {
			t.Fatalf("%s: %d blocks decoded below the threshold (err=%v)", sched.Name(), len(below), err)
		}
	}
}

// TestScheduleNames checks the registry and the CLI name resolution.
func TestScheduleNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Schedules() {
		if seen[s.Name()] {
			t.Fatalf("duplicate schedule name %q", s.Name())
		}
		seen[s.Name()] = true
		got, err := ScheduleByName(s.Name())
		if err != nil {
			t.Fatalf("ScheduleByName(%q): %v", s.Name(), err)
		}
		if got.Name() != s.Name() {
			t.Errorf("ScheduleByName(%q) resolved to %q", s.Name(), got.Name())
		}
	}
	// The empty name selects the banded25x4 default (flipped from
	// uniform after the PR 3 sweep confirmed it wins both axes at the
	// 2% surplus). The uniform wire default stays reachable by name,
	// and OnlineOpts' nil-Schedule default stays byte-identical
	// uniform (TestUniformDefaultByteIdentical).
	if s, err := ScheduleByName(""); err != nil || s.Name() != "banded25x4" {
		t.Errorf("empty name: %v, %v (want banded25x4 default)", s, err)
	}
	if s, err := ScheduleByName("uniform"); err != nil || s.Name() != "uniform" {
		t.Errorf("explicit uniform: %v, %v", s, err)
	}
	if s, err := ScheduleByName("windowed"); err != nil || s.Name() != "windowed12" {
		t.Errorf("bare windowed: %v, %v", s, err)
	}
	if s, err := ScheduleByName("banded"); err != nil || s.Name() != "banded25x4" {
		t.Errorf("bare banded: %v, %v", s, err)
	}
	if s, err := ScheduleByName("banded12"); err != nil || s.Name() != "banded12x4" {
		t.Errorf("banded12: %v, %v", s, err)
	}
	for _, bad := range []string{"nope", "windowed0", "windowed101", "windowedxx", "windowed12junk", "windowed1 2",
		"banded0", "banded101", "banded25x0", "banded25x17", "banded25xjunk", "bandedx4"} {
		if _, err := ScheduleByName(bad); err == nil {
			t.Errorf("ScheduleByName(%q) accepted", bad)
		}
	}
}

// TestWindowedMembersStayInWindow checks the structural contract:
// every member of check block i lies inside the block's window, and
// members are distinct.
func TestWindowedMembersStayInWindow(t *testing.T) {
	const nPrime = 400
	frac := 0.1
	sched := Windowed(frac).(windowedSchedule)
	stride := interleaveStride(nPrime)
	w := int(frac*float64(nPrime) + 0.5)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		d := 1 + rng.Intn(12)
		ms := sched.members(rand.New(rand.NewSource(int64(i))), i, d, nPrime)
		if len(ms) != d {
			t.Fatalf("block %d: %d members, want %d", i, len(ms), d)
		}
		start := (i * stride) % nPrime
		seen := map[int]bool{}
		for _, m := range ms {
			if seen[m] {
				t.Fatalf("block %d: duplicate member %d", i, m)
			}
			seen[m] = true
			offset := ((m - start) + nPrime) % nPrime
			if offset >= w && w >= d {
				t.Fatalf("block %d: member %d outside window [%d,%d)", i, m, start, start+w)
			}
		}
	}
}

// TestBandedMembersStayInBands checks the banded structural contract:
// every member of check block i lies inside one of the block's bands,
// members are distinct, and the bands are disjoint (spacing ≥ width).
func TestBandedMembersStayInBands(t *testing.T) {
	const nPrime = 1000
	frac, bands := 0.2, 4
	sched := Banded(frac, bands).(bandedSchedule)
	stride := interleaveStride(nPrime)
	bw := int(frac*float64(nPrime)/float64(bands) + 0.5)
	if bw < minWindow {
		bw = minWindow
	}
	spacing := nPrime / bands
	if bw > spacing {
		t.Fatalf("band width %d exceeds spacing %d: bands overlap", bw, spacing)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		d := 1 + rng.Intn(12)
		ms := sched.members(rand.New(rand.NewSource(int64(i))), i, d, nPrime)
		if len(ms) != d {
			t.Fatalf("block %d: %d members, want %d", i, len(ms), d)
		}
		start := (i * stride) % nPrime
		seen := map[int]bool{}
		for _, m := range ms {
			if seen[m] {
				t.Fatalf("block %d: duplicate member %d", i, m)
			}
			seen[m] = true
			offset := ((m - start) + nPrime) % nPrime
			if offset%spacing >= bw || offset/spacing >= bands {
				t.Fatalf("block %d: member %d (offset %d) outside every band (bw=%d spacing=%d)", i, m, offset, bw, spacing)
			}
		}
	}
}

// TestBandedOneBandMatchesWindowed pins Banded(f, 1) to Windowed(f)
// draw-for-draw: same RNG consumption, same members, same order.
func TestBandedOneBandMatchesWindowed(t *testing.T) {
	const nPrime = 500
	b := Banded(0.15, 1).(bandedSchedule)
	w := Windowed(0.15).(windowedSchedule)
	for i := 0; i < 100; i++ {
		d := 1 + i%9
		got := b.members(rand.New(rand.NewSource(int64(i))), i, d, nPrime)
		want := w.members(rand.New(rand.NewSource(int64(i))), i, d, nPrime)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("block %d: banded(x1) %v != windowed %v", i, got, want)
		}
	}
}

// TestInterleaveStrideCoprime checks the window-start sequence visits
// every composite index before repeating.
func TestInterleaveStrideCoprime(t *testing.T) {
	for _, n := range []int{2, 3, 17, 64, 4183} {
		s := interleaveStride(n)
		if s < 1 || gcd(s, n) != 1 {
			t.Errorf("stride(%d) = %d not coprime", n, s)
		}
	}
	if interleaveStride(1) != 1 {
		t.Error("stride(1) != 1")
	}
}

// TestInactivationPathAllocs bounds allocations on the inactivation
// decode path. The configuration is chosen so BP stalls (verified via
// stats below): ε=0.01 at n=512 sits well under the waterfall. The
// bound is generous — the point is catching accidental per-column or
// per-equation allocation regressions, which show up as thousands.
func TestInactivationPathAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	c := MustOnline(512, OnlineOpts{Surplus: 0.04})
	chunk := randChunk(rng, 512*64)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := c.DecodeWithStats(blocks, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if st.BPComplete {
		t.Skip("BP completed; inactivation path not exercised at this seed")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := c.DecodeWithStats(blocks, len(chunk)); err != nil {
			t.Fatal(err)
		}
	})
	// ~2 allocs per equation would already be 2000+; the decoder's
	// backing-array layout keeps it far below that.
	if allocs > 1500 {
		t.Errorf("inactivation decode: %.0f allocs/op, want <= 1500", allocs)
	}
}

// TestDecodeWithStatsReporting checks the fields the schedule
// experiments read: BPComplete ⇔ zero inactivations, peel+inactive
// cover the composite message on success, and Received counts distinct
// well-formed blocks only.
func TestDecodeWithStatsReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	c := MustOnline(64, OnlineOpts{Eps: 0.2, Surplus: 0.2})
	chunk := randChunk(rng, 64*32)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	withDup := append(append([]Block{}, blocks...), blocks[0], Block{Index: 1, Data: make([]byte, 3)})
	_, st, err := c.DecodeWithStats(withDup, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != len(blocks) {
		t.Errorf("Received = %d, want %d distinct", st.Received, len(blocks))
	}
	if st.BPComplete != (st.Inactivated == 0) {
		t.Errorf("BPComplete=%v inconsistent with Inactivated=%d", st.BPComplete, st.Inactivated)
	}
	if st.Peeled+st.Inactivated < c.DataBlocks() {
		t.Errorf("resolved %d+%d columns < n=%d on a successful decode", st.Peeled, st.Inactivated, c.DataBlocks())
	}
}

// TestRankDeficientDecodeFails pins the decoder's behavior on a
// genuinely undecodable draw. At n=1 (n'=2) every degree-2 check block
// repeats the single outer-code equation, so a stored set whose checks
// are all degree 2 determines only b0^b1, never b0: the inactive
// system is rank-deficient. The decoder must say ErrInsufficient —
// never read a non-singleton pivot row off as a solved value and
// return fabricated bytes as success.
func TestRankDeficientDecodeFails(t *testing.T) {
	for seed := int64(1); seed < 500; seed++ {
		c := MustOnline(1, OnlineOpts{Eps: 0.25, Surplus: 0.35, Seed: seed})
		allDeg2 := true
		for _, comp := range c.checkComps {
			if len(comp) != 2 {
				allDeg2 = false
				break
			}
		}
		if !allDeg2 {
			continue
		}
		chunk := []byte{0xAB, 0xCD, 0xEF}
		blocks, err := c.Encode(chunk)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(blocks, len(chunk))
		if err == nil && !bytes.Equal(got, chunk) {
			t.Fatalf("seed %d: fabricated bytes returned as a successful decode", seed)
		}
		if !errors.Is(err, ErrInsufficient) {
			t.Fatalf("seed %d: err = %v, want ErrInsufficient", seed, err)
		}
		return
	}
	t.Skip("no all-degree-2 draw within the seed range")
}
