//go:build amd64 && !noasm

// AVX-512 / GFNI erasure kernels. Contract (enforced by the Go
// wrappers in kernels_amd64.go): n is a positive multiple of 64 and
// every pointed-to range is at least n bytes. Loads and regular stores
// are unaligned (VMOVDQU64); only the non-temporal variants require a
// 64-byte-aligned dst (VMOVNTDQ faults or silently degrades otherwise —
// the wrapper peels an alignment head first).
//
// The GF(256) kernels come in two flavours:
//   - *Shuf512*: the AVX2 nibble-table technique (VPSHUFB, needs
//     AVX-512BW for the ZMM form) at 64 bytes per shuffle pair, fed by
//     the same 32-byte gfMulTab rows VBROADCASTI32X4 splats into all
//     four 128-bit lanes.
//   - *Affine*: GFNI. One VGF2P8AFFINEQB evaluates the whole 8×8
//     GF(2) matrix of "multiply by c" per byte — the matrix comes from
//     gfAffineTab (kernels_amd64.go), which is what makes this work
//     for our 0x11d field even though VGF2P8MULB is hardwired to the
//     AES field 0x11b.
//
// Only ZMM0–ZMM15 are used, so a trailing VZEROUPPER restores clean
// upper state on every exit path.

#include "textflag.h"

DATA nibbleMaskZ<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMaskZ<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMaskZ<>(SB), RODATA|NOPTR, $16

// func xorIntoBulkZ(dst, src *byte, n int)
// dst ^= src, 128 bytes per main iteration.
TEXT ·xorIntoBulkZ(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

zxi_loop128:
	CMPQ CX, $128
	JL   zxi_tail64
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $128, CX
	JMP  zxi_loop128

zxi_tail64:
	TESTQ CX, CX
	JZ    zxi_done
	VMOVDQU64 (SI), Z0
	VPXORQ    (DI), Z0, Z0
	VMOVDQU64 Z0, (DI)

zxi_done:
	VZEROUPPER
	RET

// func xorAcc2BulkZ(dst, a, b *byte, n int)
// dst ^= a ^ b in one pass over dst, 128 bytes per main iteration.
TEXT ·xorAcc2BulkZ(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ n+24(FP), CX

zx2_loop128:
	CMPQ CX, $128
	JL   zx2_tail64
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	ADDQ $128, SI
	ADDQ $128, R8
	ADDQ $128, DI
	SUBQ $128, CX
	JMP  zx2_loop128

zx2_tail64:
	TESTQ CX, CX
	JZ    zx2_done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VPXORQ    (DI), Z0, Z0
	VMOVDQU64 Z0, (DI)

zx2_done:
	VZEROUPPER
	RET

// func xorAcc4BulkZ(dst, a, b, c, d *byte, n int)
// dst ^= a ^ b ^ c ^ d in one pass over dst: five read streams, one
// write stream, 128 bytes per main iteration.
TEXT ·xorAcc4BulkZ(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ c+24(FP), R9
	MOVQ d+32(FP), R10
	MOVQ n+40(FP), CX

zx4_loop128:
	CMPQ CX, $128
	JL   zx4_tail64
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    (R9), Z0, Z0
	VPXORQ    64(R9), Z1, Z1
	VPXORQ    (R10), Z0, Z0
	VPXORQ    64(R10), Z1, Z1
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	ADDQ $128, SI
	ADDQ $128, R8
	ADDQ $128, R9
	ADDQ $128, R10
	ADDQ $128, DI
	SUBQ $128, CX
	JMP  zx4_loop128

zx4_tail64:
	TESTQ CX, CX
	JZ    zx4_done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VPXORQ    (R9), Z0, Z0
	VPXORQ    (R10), Z0, Z0
	VPXORQ    (DI), Z0, Z0
	VMOVDQU64 Z0, (DI)

zx4_done:
	VZEROUPPER
	RET

// func xorSet2BulkZ(dst, a, b *byte, n int)
// dst = a ^ b: overwrite form, no dst read.
TEXT ·xorSet2BulkZ(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ n+24(FP), CX

zs2_loop128:
	CMPQ CX, $128
	JL   zs2_tail64
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	ADDQ $128, SI
	ADDQ $128, R8
	ADDQ $128, DI
	SUBQ $128, CX
	JMP  zs2_loop128

zs2_tail64:
	TESTQ CX, CX
	JZ    zs2_done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VMOVDQU64 Z0, (DI)

zs2_done:
	VZEROUPPER
	RET

// func xorSet4BulkZ(dst, a, b, c, d *byte, n int)
// dst = a ^ b ^ c ^ d: overwrite form, no dst read.
TEXT ·xorSet4BulkZ(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ c+24(FP), R9
	MOVQ d+32(FP), R10
	MOVQ n+40(FP), CX

zs4_loop128:
	CMPQ CX, $128
	JL   zs4_tail64
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    (R9), Z0, Z0
	VPXORQ    64(R9), Z1, Z1
	VPXORQ    (R10), Z0, Z0
	VPXORQ    64(R10), Z1, Z1
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	ADDQ $128, SI
	ADDQ $128, R8
	ADDQ $128, R9
	ADDQ $128, R10
	ADDQ $128, DI
	SUBQ $128, CX
	JMP  zs4_loop128

zs4_tail64:
	TESTQ CX, CX
	JZ    zs4_done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VPXORQ    (R9), Z0, Z0
	VPXORQ    (R10), Z0, Z0
	VMOVDQU64 Z0, (DI)

zs4_done:
	VZEROUPPER
	RET

// func xorSet2NTBulkZ(dst, a, b *byte, n int)
// dst = a ^ b with non-temporal stores; dst must be 64-byte aligned.
// SFENCE orders the weakly-ordered NT stores before return.
TEXT ·xorSet2NTBulkZ(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ n+24(FP), CX

zn2_loop128:
	CMPQ CX, $128
	JL   zn2_tail64
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VMOVNTDQ  Z0, (DI)
	VMOVNTDQ  Z1, 64(DI)
	ADDQ $128, SI
	ADDQ $128, R8
	ADDQ $128, DI
	SUBQ $128, CX
	JMP  zn2_loop128

zn2_tail64:
	TESTQ CX, CX
	JZ    zn2_done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VMOVNTDQ  Z0, (DI)

zn2_done:
	SFENCE
	VZEROUPPER
	RET

// func xorSet4NTBulkZ(dst, a, b, c, d *byte, n int)
// dst = a ^ b ^ c ^ d with non-temporal stores; dst must be 64-byte
// aligned.
TEXT ·xorSet4NTBulkZ(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ c+24(FP), R9
	MOVQ d+32(FP), R10
	MOVQ n+40(FP), CX

zn4_loop128:
	CMPQ CX, $128
	JL   zn4_tail64
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    (R9), Z0, Z0
	VPXORQ    64(R9), Z1, Z1
	VPXORQ    (R10), Z0, Z0
	VPXORQ    64(R10), Z1, Z1
	VMOVNTDQ  Z0, (DI)
	VMOVNTDQ  Z1, 64(DI)
	ADDQ $128, SI
	ADDQ $128, R8
	ADDQ $128, R9
	ADDQ $128, R10
	ADDQ $128, DI
	SUBQ $128, CX
	JMP  zn4_loop128

zn4_tail64:
	TESTQ CX, CX
	JZ    zn4_done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VPXORQ    (R9), Z0, Z0
	VPXORQ    (R10), Z0, Z0
	VMOVNTDQ  Z0, (DI)

zn4_done:
	SFENCE
	VZEROUPPER
	RET

// func gfMulShuf512Bulk(dst, src *byte, n int, tab *byte)
// dst = c·src via VPSHUFB-512 nibble lookups, 64 bytes per iteration.
TEXT ·gfMulShuf512Bulk(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), AX
	VBROADCASTI32X4 (AX), Z14           // low-nibble products in all lanes
	VBROADCASTI32X4 16(AX), Z15         // high-nibble products
	VBROADCASTI32X4 nibbleMaskZ<>(SB), Z13

zgm_loop64:
	TESTQ CX, CX
	JZ    zgm_done
	VMOVDQU64 (SI), Z0
	VPSRLW    $4, Z0, Z2
	VPANDQ    Z13, Z0, Z0
	VPANDQ    Z13, Z2, Z2
	VPSHUFB   Z0, Z14, Z0
	VPSHUFB   Z2, Z15, Z2
	VPXORQ    Z2, Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $64, CX
	JMP  zgm_loop64

zgm_done:
	VZEROUPPER
	RET

// func gfMulXorShuf512Bulk(dst, src *byte, n int, tab *byte)
// dst ^= c·src: the fused multiply-accumulate.
TEXT ·gfMulXorShuf512Bulk(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), AX
	VBROADCASTI32X4 (AX), Z14
	VBROADCASTI32X4 16(AX), Z15
	VBROADCASTI32X4 nibbleMaskZ<>(SB), Z13

zgx_loop64:
	TESTQ CX, CX
	JZ    zgx_done
	VMOVDQU64 (SI), Z0
	VPSRLW    $4, Z0, Z2
	VPANDQ    Z13, Z0, Z0
	VPANDQ    Z13, Z2, Z2
	VPSHUFB   Z0, Z14, Z0
	VPSHUFB   Z2, Z15, Z2
	VPXORQ    Z2, Z0, Z0
	VPXORQ    (DI), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $64, CX
	JMP  zgx_loop64

zgx_done:
	VZEROUPPER
	RET

// func gfMulAffineBulk(dst, src *byte, n int, mat uint64)
// dst = c·src via GFNI: one affine transform per 64 bytes, 128 bytes
// per main iteration.
TEXT ·gfMulAffineBulk(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VPBROADCASTQ mat+24(FP), Z3

zga_loop128:
	CMPQ CX, $128
	JL   zga_tail64
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VGF2P8AFFINEQB $0, Z3, Z0, Z0
	VGF2P8AFFINEQB $0, Z3, Z1, Z1
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $128, CX
	JMP  zga_loop128

zga_tail64:
	TESTQ CX, CX
	JZ    zga_done
	VMOVDQU64 (SI), Z0
	VGF2P8AFFINEQB $0, Z3, Z0, Z0
	VMOVDQU64 Z0, (DI)

zga_done:
	VZEROUPPER
	RET

// func gfMulXorAffineBulk(dst, src *byte, n int, mat uint64)
// dst ^= c·src via GFNI, fused with the accumulate.
TEXT ·gfMulXorAffineBulk(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VPBROADCASTQ mat+24(FP), Z3

zgb_loop128:
	CMPQ CX, $128
	JL   zgb_tail64
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VGF2P8AFFINEQB $0, Z3, Z0, Z0
	VGF2P8AFFINEQB $0, Z3, Z1, Z1
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $128, CX
	JMP  zgb_loop128

zgb_tail64:
	TESTQ CX, CX
	JZ    zgb_done
	VMOVDQU64 (SI), Z0
	VGF2P8AFFINEQB $0, Z3, Z0, Z0
	VPXORQ    (DI), Z0, Z0
	VMOVDQU64 Z0, (DI)

zgb_done:
	VZEROUPPER
	RET
