package erasure

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"
)

// setBlocking steers the package blocking knobs for a test or sweep
// arm, returning a restore func. stripBudget <= 0 disables strips
// (whole-block), tileBlocks <= 0 disables tiling (single tile).
func setBlocking(stripBudget, tileBlocks int) func() {
	sb, tb := encStripBudget, encTileBlocks
	encStripBudget, encTileBlocks = stripBudget, tileBlocks
	return func() { encStripBudget, encTileBlocks = sb, tb }
}

// TestTiledEncodeByteIdentical pins that the cache-blocked gather is a
// pure reassociation: every strip/tile/fuse configuration — including
// fully unblocked — produces byte-for-byte the encoding of the default
// knobs, and that encoding matches a golden hash computed from the
// pre-blocking (PR 7) implementation. A drift here means stored blocks
// from older builds would no longer be reproducible.
func TestTiledEncodeByteIdentical(t *testing.T) {
	const golden = "ecff7c571c6aa0740ebe9fd8ff012db512b0af0c13f804057edea1326bbecd04"
	chunk := make([]byte, 1<<20)
	rand.New(rand.NewSource(1234)).Read(chunk)
	code := MustOnline(4096, OnlineOpts{})
	hash := func() string {
		blocks, err := code.Encode(chunk)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		for _, b := range blocks {
			h.Write(b.Data)
		}
		return fmt.Sprintf("%x", h.Sum(nil))
	}
	if got := hash(); got != golden {
		t.Fatalf("default blocking drifted from pre-blocking encoding: %s, golden %s", got, golden)
	}
	configs := []struct {
		name         string
		budget, tile int
		fuse         int
	}{
		{"unblocked", 0, 0, 1 << 20},
		{"split-everything", 0, 512, 0},
		{"tile1024", 0, 1024, 6},
		{"tile2048-fuse2", 0, 2048, 2},
		{"strips-tiny", 1 << 16, 1024, 6},
		{"strips-default-budget", 3 << 19, 512, 4},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			defer setBlocking(tc.budget, tc.tile)()
			defer setFuse(tc.fuse)()
			if got := hash(); got != golden {
				t.Errorf("%s: blocked encode not byte-identical: %s, golden %s", tc.name, got, golden)
			}
		})
	}
}

// setFuse steers the encTileFuseMax knob, returning a restore func.
func setFuse(fuse int) func() {
	f := encTileFuseMax
	encTileFuseMax = fuse
	return func() { encTileFuseMax = f }
}

// BenchmarkOnlineEncodeFuseSweep measures the degree-based hybrid
// fusion cutoff: strips off, tiled walk, varying the max equation
// degree kept whole in its first member's tile. fuse0 splits every
// equation per tile; a huge fuse reduces to first-member tile ordering
// with no splitting at all.
func BenchmarkOnlineEncodeFuseSweep(b *testing.B) {
	code := MustOnline(4096, OnlineOpts{})
	chunk := make([]byte, 4<<20)
	rand.New(rand.NewSource(9)).Read(chunk)
	tiles := []int{256, 384, 512, 768, 1024, 2048}
	fuses := []int{0, 2, 4, 6, 8, 12, 1 << 20}
	for _, tb := range tiles {
		for _, fu := range fuses {
			b.Run(fmt.Sprintf("tile%d/fuse%d", tb, fu), func(b *testing.B) {
				defer setBlocking(0, tb)()
				defer setFuse(fu)()
				b.SetBytes(int64(len(chunk)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					blocks, err := code.Encode(chunk)
					if err != nil {
						b.Fatal(err)
					}
					_ = blocks
				}
			})
		}
	}
}

// BenchmarkOnlineEncodeBlockSweep is the tile/strip parameter sweep
// behind the defaults in tile.go (docs/PERF.md "Cache blocking and
// GFNI"): the Table 2 encode shape under combinations of strip budget
// and tile width, including the unblocked baseline (strip0/tile0).
func BenchmarkOnlineEncodeBlockSweep(b *testing.B) {
	code := MustOnline(4096, OnlineOpts{})
	chunk := make([]byte, 4<<20)
	rand.New(rand.NewSource(9)).Read(chunk)
	budgets := []int{0, 1 << 20, 3 << 19, 2 << 20, 3 << 20, 6 << 20}
	tiles := []int{0, 512, 1024, 2048}
	for _, sb := range budgets {
		for _, tb := range tiles {
			b.Run(fmt.Sprintf("strip%dk/tile%d", sb>>10, tb), func(b *testing.B) {
				defer setBlocking(sb, tb)()
				b.SetBytes(int64(len(chunk)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					blocks, err := code.Encode(chunk)
					if err != nil {
						b.Fatal(err)
					}
					_ = blocks
				}
			})
		}
	}
}
