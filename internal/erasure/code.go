// Package erasure implements the erasure codes the paper studies
// (§2.2, §6.2): the NULL code (plain copy), the (n, n+1) XOR parity
// check code of RAID-5, and Maymounkov's rateless *online code* with its
// outer/inner structure and belief-propagation peeling decoder — plus
// systematic Reed-Solomon over GF(2^8) as the *optimal* (ε = 0) code the
// paper's related-work discussion contrasts against.
//
// PeerStripe applies erasure coding at the granularity of a single chunk
// (§4.2): a chunk is divided into n equal-size blocks and encoded into
// m ≥ n blocks which are stored on distinct nodes. The original chunk is
// recoverable from any sufficient subset of the encoded blocks.
package erasure

import (
	"errors"
	"fmt"
)

// Block is one encoded block of a chunk. Index is the error-coded block
// number (ECB in the paper's filename_X_ECB naming).
type Block struct {
	Index int
	Data  []byte
}

// Code encodes chunks into blocks and decodes them back.
type Code interface {
	// Name identifies the code ("null", "xor", "online").
	Name() string
	// DataBlocks returns n, the number of blocks a chunk is split into.
	DataBlocks() int
	// EncodedBlocks returns m, the number of blocks Encode produces.
	EncodedBlocks() int
	// MinNeeded returns the number of surviving blocks that guarantees
	// Decode succeeds (for online codes: makes success overwhelmingly
	// likely; the stored surplus is chosen for a target loss tolerance).
	MinNeeded() int
	// Encode splits chunk into n blocks and returns m encoded blocks.
	Encode(chunk []byte) ([]Block, error)
	// Decode reconstructs the chunk of length chunkLen from any
	// sufficient subset of encoded blocks.
	Decode(blocks []Block, chunkLen int) ([]byte, error)
}

// ErrInsufficient is returned by Decode when the supplied blocks cannot
// reconstruct the chunk.
var ErrInsufficient = errors.New("erasure: insufficient blocks to decode")

// DecoderInto is implemented by codes that can reconstruct a chunk
// directly into a caller-supplied buffer: dst's length is the chunk
// length, and a successful decode fills it completely. It exists so a
// whole-file read can decode every chunk straight into its slot of the
// final buffer instead of allocating each chunk and copying it over —
// on failure dst's contents are unspecified and must be discarded.
type DecoderInto interface {
	DecodeInto(dst []byte, blocks []Block) error
}

// blockSize returns the per-block size for a chunk of chunkLen split
// into n blocks (the last block is zero-padded to this size).
func blockSize(chunkLen, n int) int {
	if chunkLen == 0 {
		return 0
	}
	return (chunkLen + n - 1) / n
}

// split divides chunk into n blocks of equal size, zero-padding the
// tail. The blocks share one backing array (one allocation instead of
// n); they are fixed-length views, never appended to.
func split(chunk []byte, n int) [][]byte {
	bs := blockSize(len(chunk), n)
	backing := make([]byte, n*bs)
	copy(backing, chunk)
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		out[i] = backing[i*bs : (i+1)*bs : (i+1)*bs]
	}
	return out
}

// splitViews is split without the copy when chunk divides evenly into
// n blocks (the common case: the paper's 4 MB chunk over 4096 blocks):
// the returned blocks alias chunk directly. Callers must treat the
// blocks as read-only and not let them outlive the chunk — the
// encode-side composite builds qualify, since message views are only
// ever XOR sources and every emitted block is a fresh buffer.
func splitViews(chunk []byte, n int) [][]byte {
	bs := blockSize(len(chunk), n)
	if n*bs != len(chunk) {
		return split(chunk, n) // tail needs zero-padding; copy
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = chunk[i*bs : (i+1)*bs : (i+1)*bs]
	}
	return out
}

// join concatenates n data blocks and truncates to chunkLen.
func join(blocks [][]byte, chunkLen int) []byte {
	out := make([]byte, 0, chunkLen)
	for _, b := range blocks {
		out = append(out, b...)
	}
	if len(out) < chunkLen {
		return nil
	}
	return out[:chunkLen]
}

// joinInto copies the concatenation of the data blocks into dst,
// truncating to len(dst). It reports whether the blocks held enough
// bytes to fill dst.
func joinInto(dst []byte, blocks [][]byte) bool {
	off := 0
	for _, b := range blocks {
		if off >= len(dst) {
			break
		}
		off += copy(dst[off:], b)
	}
	return off >= len(dst)
}

// xorInto dst ^= src. Panics if lengths differ; encoded blocks of one
// chunk always share a size. Dispatches to the active kernel
// (SIMD where available, word-wise otherwise; see kernels.go).
func xorInto(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("erasure: xor length mismatch %d vs %d", len(dst), len(src)))
	}
	hotKernels.xorInto(dst, src)
}

// xorBlocks dst ^= srcs[0] ^ srcs[1] ^ ... in a single pass over dst:
// the fused multi-source form the decoder's replay folds batch their
// member XORs through. Panics on length mismatch, like xorInto.
func xorBlocks(dst []byte, srcs [][]byte) {
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic(fmt.Sprintf("erasure: xor length mismatch %d vs %d", len(dst), len(s)))
		}
	}
	hotKernels.xorBlocks(dst, srcs)
}

// xorBlocksSet dst = srcs[0] ^ srcs[1] ^ ... without ever reading dst:
// the form the encode-side builds (aux blocks, check blocks, parity)
// use, so a freshly allocated destination costs no zeroing or
// copy-first pass. Panics on length mismatch, like xorInto.
func xorBlocksSet(dst []byte, srcs [][]byte) {
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic(fmt.Sprintf("erasure: xor length mismatch %d vs %d", len(dst), len(s)))
		}
	}
	hotKernels.xorBlocksSet(dst, srcs)
}

// Null is the identity code used as the measurement baseline in Table 2:
// one data block, one encoded block, no redundancy.
type Null struct{}

// NewNull returns the NULL code.
func NewNull() Null { return Null{} }

// Name implements Code.
func (Null) Name() string { return "null" }

// DataBlocks implements Code.
func (Null) DataBlocks() int { return 1 }

// EncodedBlocks implements Code.
func (Null) EncodedBlocks() int { return 1 }

// MinNeeded implements Code.
func (Null) MinNeeded() int { return 1 }

// Encode implements Code: it copies the chunk into a single block.
func (Null) Encode(chunk []byte) ([]Block, error) {
	d := make([]byte, len(chunk))
	copy(d, chunk)
	return []Block{{Index: 0, Data: d}}, nil
}

// Decode implements Code.
func (Null) Decode(blocks []Block, chunkLen int) ([]byte, error) {
	out := make([]byte, chunkLen)
	if err := (Null{}).DecodeInto(out, blocks); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto implements DecoderInto.
func (Null) DecodeInto(dst []byte, blocks []Block) error {
	for _, b := range blocks {
		if b.Index == 0 && len(b.Data) >= len(dst) {
			copy(dst, b.Data)
			return nil
		}
	}
	return ErrInsufficient
}

// XOR is the (n, n+1) parity check code of RAID level 5 (§2.2): n data
// blocks plus one block holding their XOR. It tolerates the loss of any
// single encoded block. The paper evaluates n = 2, the "(2,3) XOR code".
type XOR struct {
	n int
}

// NewXOR returns an XOR parity code over n data blocks (n ≥ 1).
func NewXOR(n int) (*XOR, error) {
	if n < 1 {
		return nil, fmt.Errorf("erasure: xor needs n >= 1, got %d", n)
	}
	return &XOR{n: n}, nil
}

// MustXOR is NewXOR for static configurations; it panics on bad n.
func MustXOR(n int) *XOR {
	c, err := NewXOR(n)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Code.
func (c *XOR) Name() string { return "xor" }

// DataBlocks implements Code.
func (c *XOR) DataBlocks() int { return c.n }

// EncodedBlocks implements Code.
func (c *XOR) EncodedBlocks() int { return c.n + 1 }

// MinNeeded implements Code.
func (c *XOR) MinNeeded() int { return c.n }

// Encode implements Code. Block indices 0..n-1 are the data blocks;
// index n is the parity block.
func (c *XOR) Encode(chunk []byte) ([]Block, error) {
	data := split(chunk, c.n)
	parity := make([]byte, blockSize(len(chunk), c.n))
	xorBlocksSet(parity, data)
	out := make([]Block, 0, c.n+1)
	for i, d := range data {
		out = append(out, Block{Index: i, Data: d})
	}
	out = append(out, Block{Index: c.n, Data: parity})
	return out, nil
}

// Decode implements Code: any n of the n+1 blocks reconstruct the chunk.
func (c *XOR) Decode(blocks []Block, chunkLen int) ([]byte, error) {
	if chunkLen == 0 {
		return []byte{}, nil
	}
	out := make([]byte, chunkLen)
	if err := c.DecodeInto(out, blocks); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto implements DecoderInto: any n of the n+1 blocks
// reconstruct the chunk straight into dst, allocating only when a
// missing data block must be rebuilt from parity.
func (c *XOR) DecodeInto(dst []byte, blocks []Block) error {
	if len(dst) == 0 {
		return nil
	}
	bs := blockSize(len(dst), c.n)
	have := make([][]byte, c.n+1)
	for _, b := range blocks {
		if b.Index < 0 || b.Index > c.n || len(b.Data) != bs {
			continue
		}
		if have[b.Index] == nil {
			have[b.Index] = b.Data
		}
	}
	missing := -1
	for i := 0; i < c.n; i++ {
		if have[i] == nil {
			if missing >= 0 {
				return ErrInsufficient // two data blocks gone
			}
			missing = i
		}
	}
	if missing >= 0 {
		if have[c.n] == nil {
			return ErrInsufficient // data block and parity both gone
		}
		rec := make([]byte, bs)
		srcs := make([][]byte, 0, c.n)
		srcs = append(srcs, have[c.n])
		for i := 0; i < c.n; i++ {
			if i != missing {
				srcs = append(srcs, have[i])
			}
		}
		xorBlocksSet(rec, srcs)
		have[missing] = rec
	}
	if !joinInto(dst, have[:c.n]) {
		return ErrInsufficient
	}
	return nil
}

// Spec is the simulation-level description of a code: how many blocks a
// chunk becomes and how many must survive for the chunk to be decodable.
// The availability and churn simulations (§6.2) only need these counts,
// not the byte-level transforms.
type Spec struct {
	Name        string
	DataBlocks  int // n
	TotalBlocks int // m stored per chunk
	MinNeeded   int // surviving blocks required to decode
}

// Tolerates returns the number of block losses per chunk the spec
// survives.
func (s Spec) Tolerates() int { return s.TotalBlocks - s.MinNeeded }

// Decodable reports whether a chunk with surviving blocks remains
// recoverable.
func (s Spec) Decodable(surviving int) bool { return surviving >= s.MinNeeded }

// Overhead returns the storage expansion factor m/n − 1 (e.g. 0.5 for
// the (2,3) XOR code).
func (s Spec) Overhead() float64 {
	return float64(s.TotalBlocks)/float64(s.DataBlocks) - 1
}

// SpecOf derives the Spec of a concrete code.
func SpecOf(c Code) Spec {
	return Spec{
		Name:        c.Name(),
		DataBlocks:  c.DataBlocks(),
		TotalBlocks: c.EncodedBlocks(),
		MinNeeded:   c.MinNeeded(),
	}
}

// Simulation specs used by §6.2's file-availability experiment.
var (
	// NullSpec: no coding; a chunk is one block.
	NullSpec = Spec{Name: "none", DataBlocks: 1, TotalBlocks: 1, MinNeeded: 1}
	// XOR23Spec: the paper's (2,3) XOR code; tolerates one loss.
	XOR23Spec = Spec{Name: "xor", DataBlocks: 2, TotalBlocks: 3, MinNeeded: 2}
	// OnlineSimSpec: "an online code that could tolerate two
	// simultaneous failures per chunk" (§6.2).
	OnlineSimSpec = Spec{Name: "online", DataBlocks: 2, TotalBlocks: 4, MinNeeded: 2}
)
