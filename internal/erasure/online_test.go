package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestOnlineRoundTripAllBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := MustOnline(64, OnlineOpts{})
	chunk := randChunk(rng, 64*512+17)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != c.EncodedBlocks() {
		t.Fatalf("encoded %d blocks, want %d", len(blocks), c.EncodedBlocks())
	}
	got, err := c.Decode(blocks, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("online round trip mismatch")
	}
}

func TestOnlineToleratesLosses(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := MustOnline(128, OnlineOpts{Surplus: 0.10})
	chunk := randChunk(rng, 128*256)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	// Drop 5% of blocks at random; surplus of 10% should still decode.
	perm := rng.Perm(len(blocks))
	keep := perm[:len(blocks)-len(blocks)/20]
	sub := make([]Block, 0, len(keep))
	for _, i := range keep {
		sub = append(sub, blocks[i])
	}
	got, err := c.Decode(sub, len(chunk))
	if err != nil {
		t.Fatalf("decode after 5%% loss: %v", err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("online lossy decode mismatch")
	}
}

func TestOnlineInsufficientBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := MustOnline(64, OnlineOpts{})
	chunk := randChunk(rng, 64*64)
	blocks, _ := c.Encode(chunk)
	// Far fewer than n blocks can never decode. The error wraps
	// ErrInsufficient with the code shape and resolution progress.
	_, err := c.Decode(blocks[:8], len(chunk))
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	for _, want := range []string{"n=64", "8 distinct blocks"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing context %q", err, want)
		}
	}
}

func TestOnlineFreshBlockRepairs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Small n needs a larger ε: the ε=0.01 distribution is tuned for
	// thousands of blocks (the paper's 4096-block chunks).
	c := MustOnline(64, OnlineOpts{Eps: 0.2, Surplus: 0.2})
	chunk := randChunk(rng, 64*128+5)
	blocks, _ := c.Encode(chunk)
	// Lose blocks 0 and 1, mint replacements with fresh indices.
	sub := append([]Block{}, blocks[2:]...)
	for i := 0; i < 4; i++ {
		fb, err := c.FreshBlock(chunk, c.EncodedBlocks()+i)
		if err != nil {
			t.Fatal(err)
		}
		sub = append(sub, fb)
	}
	got, err := c.Decode(sub, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("repair decode mismatch")
	}
}

// TestOnlineDecodeDuplicateIndices is the regression test for the
// decoder's duplicate handling: repeated copies of a block index must
// neither inflate the decoder's information nor corrupt the peel, even
// when the extra copies carry inconsistent data.
func TestOnlineDecodeDuplicateIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := MustOnline(64, OnlineOpts{Eps: 0.2, Surplus: 0.2})
	chunk := randChunk(rng, 64*128+9)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	// Full set plus duplicated copies of the first blocks decodes.
	withDups := append(append([]Block{}, blocks...), blocks[0], blocks[1], blocks[0])
	got, err := c.Decode(withDups, len(chunk))
	if err != nil {
		t.Fatalf("decode with duplicates: %v", err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("duplicate-tolerant decode mismatch")
	}
	// An inconsistent duplicate (same index, corrupted data) must be
	// ignored in favor of the first copy.
	bad := append([]Block{}, blocks...)
	corrupt := append([]byte(nil), blocks[3].Data...)
	corrupt[0] ^= 0xff
	bad = append(bad, Block{Index: blocks[3].Index, Data: corrupt})
	got, err = c.Decode(bad, len(chunk))
	if err != nil {
		t.Fatalf("decode with inconsistent duplicate: %v", err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("inconsistent duplicate corrupted the decode")
	}
	// Many duplicates of too few distinct blocks stay insufficient.
	few := blocks[:8]
	dups := make([]Block, 0, 64)
	for i := 0; i < 8; i++ {
		dups = append(dups, few...)
	}
	if _, err := c.Decode(dups, len(chunk)); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient from duplicated subset", err)
	}
}

func TestOnlineFreshBlockRejectsNegative(t *testing.T) {
	c := MustOnline(4, OnlineOpts{})
	if _, err := c.FreshBlock([]byte{1, 2, 3, 4}, -1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestOnlineDeterministicAcrossInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	chunk := randChunk(rng, 4096)
	enc := MustOnline(32, OnlineOpts{Seed: 42, Eps: 0.3, Surplus: 0.3})
	dec := MustOnline(32, OnlineOpts{Seed: 42, Eps: 0.3, Surplus: 0.3})
	blocks, err := enc.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(blocks, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("separate decoder instance failed: equation derivation not deterministic")
	}
}

func TestOnlineDifferentSeedsDiffer(t *testing.T) {
	chunk := make([]byte, 1024)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	a, _ := MustOnline(16, OnlineOpts{Seed: 1}).Encode(chunk)
	b, _ := MustOnline(16, OnlineOpts{Seed: 2}).Encode(chunk)
	same := true
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical encodings")
	}
}

func TestOnlineSizeOverheadSmall(t *testing.T) {
	// Paper Table 2: 4 MB chunk, 4096 blocks, q=3, ε=0.01 encodes to
	// ~4.12 MB (≈3% overhead). Verify our stored-size overhead is in the
	// single-digit-percent range, nothing like XOR's 50%.
	c := MustOnline(4096, OnlineOpts{})
	overhead := float64(c.EncodedBlocks())/float64(c.DataBlocks()) - 1
	if overhead <= 0 || overhead > 0.08 {
		t.Fatalf("online overhead = %.4f, want (0, 0.08]", overhead)
	}
}

func TestOnlinePaperScaleRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("4 MB chunk encode in -short mode")
	}
	rng := rand.New(rand.NewSource(16))
	c := MustOnline(4096, OnlineOpts{})
	chunk := randChunk(rng, 4<<20)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(blocks, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("paper-scale round trip mismatch")
	}
}

func TestOnlineRejectsBadParams(t *testing.T) {
	if _, err := NewOnline(0, OnlineOpts{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewOnline(4, OnlineOpts{Eps: 2}); err == nil {
		t.Error("eps=2 accepted")
	}
}

func TestOnlineEmptyChunk(t *testing.T) {
	c := MustOnline(4, OnlineOpts{})
	blocks, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(blocks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty chunk decode mismatch")
	}
}

func TestDegreeCDFShape(t *testing.T) {
	cdf := degreeCDF(0.01)
	if cdf[len(cdf)-1] != 1 {
		t.Fatalf("CDF does not end at 1: %g", cdf[len(cdf)-1])
	}
	for i := 2; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	// F for ε=0.01 should be ~2115 per the formula.
	if len(cdf)-1 < 2000 || len(cdf)-1 > 2300 {
		t.Errorf("F = %d, expected ≈2115", len(cdf)-1)
	}
}

func TestOnlineWaterfallSurplus(t *testing.T) {
	// At the paper's ~3% size overhead (Surplus 0.02) belief
	// propagation stalls at n=4096 (finite-size effect); the decoder
	// inactivates a handful of columns and finishes via the small
	// residual solve. A ~5-6% surplus crosses the BP waterfall and
	// peeling completes outright. Inactivation shrinks the former ML
	// fallback to tens of columns, so the 2%-surplus decode must now
	// stay within a small factor of the pure-BP decode instead of the
	// order-of-magnitude gap the whole-residual GE used to cost.
	if testing.Short() {
		t.Skip("4 MB encodes in -short mode")
	}
	rng := rand.New(rand.NewSource(77))
	chunk := randChunk(rng, 4<<20)
	decode := func(surplus float64) (DecodeStats, time.Duration) {
		c := MustOnline(4096, OnlineOpts{Surplus: surplus})
		blocks, err := c.Encode(chunk)
		if err != nil {
			t.Fatal(err)
		}
		// Best of 3: one-shot wall clock on a shared CI runner can eat a
		// descheduling or GC pause; the minimum is the stable signal.
		var st DecodeStats
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			got, s, err := c.DecodeWithStats(blocks, len(chunk))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, chunk) {
				t.Fatal("decode mismatch")
			}
			if d := time.Since(t0); d < best {
				best = d
			}
			st = s
		}
		return st, best
	}
	low, slow := decode(0.02)
	high, fast := decode(0.06)
	if low.BPComplete {
		t.Error("2% surplus: expected a BP stall (the finite-size effect this test documents)")
	}
	if low.Inactivated <= 0 || low.Inactivated > 200 {
		t.Errorf("2%% surplus: %d inactivated columns, want a small positive count", low.Inactivated)
	}
	if !high.BPComplete {
		t.Errorf("6%% surplus: BP did not complete (%d inactivated)", high.Inactivated)
	}
	if slow > 6*fast {
		t.Errorf("inactivation not effective: decode %v at 2%% surplus vs %v at 6%%", slow, fast)
	}
}

func TestOnlineMinNeededBound(t *testing.T) {
	c := MustOnline(100, OnlineOpts{})
	if c.MinNeeded() < c.DataBlocks() {
		t.Error("MinNeeded below n")
	}
	if c.MinNeeded() > c.EncodedBlocks() {
		t.Error("MinNeeded above stored blocks")
	}
}

// TestDecodeSteadyStateAllocs pins the decoder's steady-state
// allocation count: with the pooled decode scratch (equation values,
// dedupe bitmap, inactive-set masks, constraint rows) a warm decode
// allocates a handful of objects — the joined output and pool
// bookkeeping — not one buffer per received block. The PR 2 decoder
// sat at ~4.4k allocs per 4096-block decode; a regression toward
// per-block allocation blows straight past this bound.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	c := MustOnline(1024, OnlineOpts{})
	chunk := randChunk(rng, 1024*256)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the scratch pool so the measurement sees the steady state.
	if _, _, err := c.DecodeWithStats(blocks, len(chunk)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := c.DecodeWithStats(blocks, len(chunk)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 100 {
		t.Errorf("steady-state decode: %.0f allocs/op, want <= 100 (per-block allocation regression)", allocs)
	}
}

func BenchmarkOnlineEncode4MB(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	c := MustOnline(4096, OnlineOpts{})
	chunk := randChunk(rng, 4<<20)
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnlineDecode4MB(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	c := MustOnline(4096, OnlineOpts{})
	chunk := randChunk(rng, 4<<20)
	blocks, err := c.Encode(chunk)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(blocks, len(chunk)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXOREncode4MB(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	c := MustXOR(2)
	chunk := randChunk(rng, 4<<20)
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(chunk); err != nil {
			b.Fatal(err)
		}
	}
}
