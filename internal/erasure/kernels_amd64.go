//go:build amd64 && !noasm

package erasure

import (
	"strings"
	"unsafe"
)

// simdName is what KernelImpl reports when the AVX2 tier wins.
const simdName = "avx2"

// cpuid and xgetbv are implemented in kernels_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// x86Features is the dispatch-relevant slice of CPUID: each field means
// "the instructions exist AND the OS saves the register state they
// touch", so a true field is directly runnable.
type x86Features struct {
	avx2   bool // AVX2 + OS YMM state
	avx512 bool // AVX-512F+BW (ZMM VPSHUFB/VPSRLW need BW) + OS ZMM state
	gfni   bool // GFNI on top of avx512 (we only emit the EVEX Z forms)
}

// detectX86 probes CPUID/XGETBV once at init — the same ladder
// golang.org/x/sys/cpu climbs: OSXSAVE, then XGETBV for which register
// states the OS saves (0x6 = XMM+YMM; 0xe6 adds opmask + ZMM_Hi256 +
// Hi16_ZMM), then the leaf-7 feature bits. It also fills kernelCPU with
// the raw features found, for KernelImpl's report.
func detectX86() x86Features {
	var f x86Features
	var found []string
	defer func() { kernelCPU = strings.Join(found, " ") }()
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAndAVX != osxsaveAndAVX {
		return f
	}
	xcr0, _ := xgetbv()
	osYMM := xcr0&0x6 == 0x6
	osZMM := xcr0&0xe6 == 0xe6
	_, ebx7, ecx7, _ := cpuid(7, 0)
	avx2 := ebx7&(1<<5) != 0
	avx512f := ebx7&(1<<16) != 0
	avx512bw := ebx7&(1<<30) != 0
	gfni := ecx7&(1<<8) != 0
	for _, b := range []struct {
		on   bool
		name string
	}{
		{avx2, "avx2"},
		{avx512f, "avx512f"},
		{avx512bw, "avx512bw"},
		{gfni, "gfni"},
		{!osZMM && avx512f, "no-os-zmm"},
	} {
		if b.on {
			found = append(found, b.name)
		}
	}
	f.avx2 = avx2 && osYMM
	f.avx512 = avx512f && avx512bw && osZMM
	f.gfni = f.avx512 && gfni
	return f
}

// archKernelSets returns the SIMD tiers this CPU can run, in ascending
// preference order; kernels_asm.go's init makes the last one hot.
func archKernelSets() []kernelSet {
	f := detectX86()
	var sets []kernelSet
	if f.avx2 {
		sets = append(sets, simdKernels)
	}
	if f.avx512 {
		sets = append(sets, avx512Kernels)
	}
	if f.gfni {
		sets = append(sets, gfniKernels)
	}
	return sets
}

// gfAffineTab[c] is the 8×8 GF(2) bit-matrix of "multiply by c" in
// GF(2^8)/0x11d, in VGF2P8AFFINEQB's qword layout: the row for output
// bit i sits at byte 7-i, and bit k of that row is set when input bit k
// contributes to output bit i (i.e. bit i of gfMul(c, 1<<k)). Any
// GF(2)-linear byte map fits this form, which is what lets GFNI evaluate
// our 0x11d field even though VGF2P8MULB is hardwired to 0x11b.
var gfAffineTab [256]uint64

func init() {
	for c := 1; c < 256; c++ {
		var m uint64
		for i := 0; i < 8; i++ {
			var row byte
			for k := 0; k < 8; k++ {
				if gfMul(byte(c), 1<<k)>>i&1 == 1 {
					row |= 1 << k
				}
			}
			m |= uint64(row) << (8 * (7 - i))
		}
		gfAffineTab[c] = m
	}
}

// bulkStep64 is the byte granularity of the AVX-512 assembly loops
// (kernels_avx512_amd64.s); sub-group tails go to the portable kernels.
const bulkStep64 = 64

// ntMinBytes gates the non-temporal overwrite path: a fused set whose
// destination is at least this large bypasses the cache on its stores
// (VMOVNTDQ) instead of evicting a working set it will never re-read.
// Only complete single-pass overwrites qualify — see xorBlocksSetZ.
// The threshold is sized against the outermost cache, not L2: on parts
// with a large shared L3 (the 260 MB Xeon this was tuned on), regular
// stores to a few-MB parity buffer are absorbed by L3 and beat NT, so
// NT only pays once the destination clearly exceeds what L3 can soak
// up. Tests may lower it; 0 disables.
var ntMinBytes = 64 << 20

// The raw AVX-512 assembly entry points. n must be a positive multiple
// of bulkStep64; every pointed-to range must be at least n bytes. tab
// points at gfMulTab[c] (16 low-nibble products, 16 high); mat is
// gfAffineTab[c]. The NT variants additionally require dst 64-byte
// aligned and fence their stores before returning.
//
//go:noescape
func xorIntoBulkZ(dst, src *byte, n int)

//go:noescape
func xorAcc2BulkZ(dst, a, b *byte, n int)

//go:noescape
func xorAcc4BulkZ(dst, a, b, c, d *byte, n int)

//go:noescape
func xorSet2BulkZ(dst, a, b *byte, n int)

//go:noescape
func xorSet4BulkZ(dst, a, b, c, d *byte, n int)

//go:noescape
func xorSet2NTBulkZ(dst, a, b *byte, n int)

//go:noescape
func xorSet4NTBulkZ(dst, a, b, c, d *byte, n int)

//go:noescape
func gfMulShuf512Bulk(dst, src *byte, n int, tab *byte)

//go:noescape
func gfMulXorShuf512Bulk(dst, src *byte, n int, tab *byte)

//go:noescape
func gfMulAffineBulk(dst, src *byte, n int, mat uint64)

//go:noescape
func gfMulXorAffineBulk(dst, src *byte, n int, mat uint64)

func xorIntoZ(dst, src []byte) {
	n := len(dst) &^ (bulkStep64 - 1)
	if n > 0 {
		xorIntoBulkZ(&dst[0], &src[0], n)
	}
	if n < len(dst) {
		xorIntoWords(dst[n:], src[n:len(dst)])
	}
}

// xorBlocksZ folds sources four (then two) at a time through the fused
// 64-byte-group kernels, mirroring xorBlocksSIMD.
func xorBlocksZ(dst []byte, srcs [][]byte) {
	n := len(dst) &^ (bulkStep64 - 1)
	i := 0
	if n > 0 {
		d := &dst[0]
		for ; i+4 <= len(srcs); i += 4 {
			xorAcc4BulkZ(d, &srcs[i][0], &srcs[i+1][0], &srcs[i+2][0], &srcs[i+3][0], n)
		}
		if i+2 <= len(srcs) {
			xorAcc2BulkZ(d, &srcs[i][0], &srcs[i+1][0], n)
			i += 2
		}
		if i < len(srcs) {
			xorIntoBulkZ(d, &srcs[i][0], n)
			i++
		}
	}
	if n < len(dst) {
		for _, s := range srcs {
			xorIntoWords(dst[n:], s[n:len(dst)])
		}
	}
}

// xorBlocksSetZ is the overwrite form: the first source group is
// written straight over dst, then the rest accumulate. Destinations of
// 2 or 4 sources — written exactly once, never read — take the
// non-temporal store path above ntMinBytes (3+ accumulating sources
// would read the lines NT just pushed out, so those stay cached).
func xorBlocksSetZ(dst []byte, srcs [][]byte) {
	switch {
	case len(srcs) == 0:
		clear(dst)
		return
	case len(srcs) == 1:
		copy(dst, srcs[0])
		return
	}
	if (len(srcs) == 2 || len(srcs) == 4) && ntMinBytes > 0 && len(dst) >= ntMinBytes {
		xorBlocksSetNT(dst, srcs)
		return
	}
	n := len(dst) &^ (bulkStep64 - 1)
	i := 0
	if n > 0 {
		d := &dst[0]
		if len(srcs) >= 4 {
			xorSet4BulkZ(d, &srcs[0][0], &srcs[1][0], &srcs[2][0], &srcs[3][0], n)
			i = 4
		} else {
			xorSet2BulkZ(d, &srcs[0][0], &srcs[1][0], n)
			i = 2
		}
		for ; i+4 <= len(srcs); i += 4 {
			xorAcc4BulkZ(d, &srcs[i][0], &srcs[i+1][0], &srcs[i+2][0], &srcs[i+3][0], n)
		}
		if i+2 <= len(srcs) {
			xorAcc2BulkZ(d, &srcs[i][0], &srcs[i+1][0], n)
			i += 2
		}
		if i < len(srcs) {
			xorIntoBulkZ(d, &srcs[i][0], n)
			i++
		}
	}
	if n < len(dst) {
		xorSet2Words(dst[n:], srcs[0][n:len(dst)], srcs[1][n:len(dst)])
		for _, s := range srcs[2:] {
			xorIntoWords(dst[n:], s[n:len(dst)])
		}
	}
}

// xorBlocksSetNT is the streaming-store overwrite for exactly 2 or 4
// sources: VMOVNTDQ needs a 64-byte-aligned destination, so a sub-line
// head (and the tail) go through the regular kernels around the fenced
// non-temporal middle.
func xorBlocksSetNT(dst []byte, srcs [][]byte) {
	head := 0
	if a := int(uintptr(unsafe.Pointer(&dst[0])) & 63); a != 0 {
		head = 64 - a
		if head > len(dst) {
			head = len(dst)
		}
		setSmall(dst[:head], srcs, 0)
	}
	n := head + (len(dst)-head)&^(bulkStep64-1)
	if n > head {
		if len(srcs) == 2 {
			xorSet2NTBulkZ(&dst[head], &srcs[0][head], &srcs[1][head], n-head)
		} else {
			xorSet4NTBulkZ(&dst[head], &srcs[0][head], &srcs[1][head], &srcs[2][head], &srcs[3][head], n-head)
		}
	}
	if n < len(dst) {
		setSmall(dst[n:], srcs, n)
	}
}

// setSmall overwrites dst with XOR(srcs...) offset off in, via the
// portable word kernels (head/tail duty around the NT middle).
func setSmall(dst []byte, srcs [][]byte, off int) {
	end := off + len(dst)
	xorSet2Words(dst, srcs[0][off:end], srcs[1][off:end])
	for _, s := range srcs[2:] {
		xorIntoWords(dst, s[off:end])
	}
}

// gfMulShuf512 / gfMulXorShuf512 are the AVX-512BW nibble-table
// multiplies — the AVX2 technique at twice the vector width.
func gfMulShuf512(dst, src []byte, c byte) {
	if c == 0 {
		clear(dst[:len(src)])
		return
	}
	if c == 1 {
		copy(dst[:len(src)], src)
		return
	}
	n := len(src) &^ (bulkStep64 - 1)
	if n > 0 {
		gfMulShuf512Bulk(&dst[0], &src[0], n, &gfMulTab[c][0])
	}
	if n < len(src) {
		gfMulNibble(dst[n:], src[n:], c)
	}
}

func gfMulXorShuf512(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorIntoZ(dst[:len(src)], src)
		return
	}
	n := len(src) &^ (bulkStep64 - 1)
	if n > 0 {
		gfMulXorShuf512Bulk(&dst[0], &src[0], n, &gfMulTab[c][0])
	}
	if n < len(src) {
		gfMulXorNibble(dst[n:], src[n:], c)
	}
}

// gfMulAffine / gfMulXorAffine are the GFNI multiplies: one
// VGF2P8AFFINEQB per 64 bytes replaces the shift/mask/shuffle/xor
// nibble dance entirely.
func gfMulAffine(dst, src []byte, c byte) {
	if c == 0 {
		clear(dst[:len(src)])
		return
	}
	if c == 1 {
		copy(dst[:len(src)], src)
		return
	}
	n := len(src) &^ (bulkStep64 - 1)
	if n > 0 {
		gfMulAffineBulk(&dst[0], &src[0], n, gfAffineTab[c])
	}
	if n < len(src) {
		gfMulNibble(dst[n:], src[n:], c)
	}
}

func gfMulXorAffine(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorIntoZ(dst[:len(src)], src)
		return
	}
	n := len(src) &^ (bulkStep64 - 1)
	if n > 0 {
		gfMulXorAffineBulk(&dst[0], &src[0], n, gfAffineTab[c])
	}
	if n < len(src) {
		gfMulXorNibble(dst[n:], src[n:], c)
	}
}

var (
	avx512Kernels = kernelSet{"avx512", xorIntoZ, xorBlocksZ, xorBlocksSetZ, gfMulShuf512, gfMulXorShuf512}
	gfniKernels   = kernelSet{"gfni", xorIntoZ, xorBlocksZ, xorBlocksSetZ, gfMulAffine, gfMulXorAffine}
)
