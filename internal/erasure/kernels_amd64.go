//go:build amd64 && !noasm

package erasure

// simdName is what KernelImpl reports when the assembly path wins.
const simdName = "avx2"

// cpuid and xgetbv are implemented in kernels_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// cpuSupportsSIMD reports whether the AVX2 kernels may be dispatched:
// the CPU must advertise AVX2 (CPUID.(7,0):EBX[5]) *and* the OS must
// have enabled XMM+YMM state saving (OSXSAVE plus XGETBV[2:1] = 11b) —
// the same ladder golang.org/x/sys/cpu climbs.
func cpuSupportsSIMD() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if eax, _ := xgetbv(); eax&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}
