package erasure

import (
	"fmt"
)

// RS is a systematic Reed-Solomon code over GF(2^8): n data blocks plus
// k parity blocks, decodable from *any* n of the n+k encoded blocks —
// the "optimal erasure code" (ε = 0) of §2.2. The encoding matrix is a
// Vandermonde matrix normalised so its top n×n block is the identity
// (systematic form); any n of its rows remain linearly independent, the
// property decoding relies on.
//
// The field bounds the stripe: n+k ≤ 255. That constraint is why
// wide-striped systems reach for rateless codes — PeerStripe's 4096
// blocks per chunk is out of RS's reach without a larger field — and it
// is part of the trade-off the psbench coding ablation quantifies.
type RS struct {
	n, k int
	enc  *gfMatrix // (n+k) × n
}

// NewRS builds an RS(n, n+k) code.
func NewRS(n, k int) (*RS, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("erasure: rs needs n,k >= 1, got n=%d k=%d", n, k)
	}
	if n+k > 255 {
		return nil, fmt.Errorf("erasure: rs over GF(256) needs n+k <= 255, got %d", n+k)
	}
	// Vandermonde rows: v[r][c] = r^c for r in 1..n+k (row 0 would be
	// degenerate at r=0 only for c=0; using 0..n+k-1 with 0^0=1 is the
	// classic construction).
	v := newGFMatrix(n+k, n)
	for r := 0; r < n+k; r++ {
		for c := 0; c < n; c++ {
			v.set(r, c, gfPow(byte(r+1), c))
		}
	}
	// Systematise: multiply by the inverse of the top n×n block so the
	// top becomes the identity. Row independence is preserved.
	top := v.subRows(seqInts(0, n))
	topInv, ok := top.invert()
	if !ok {
		return nil, fmt.Errorf("erasure: rs vandermonde top block singular (n=%d k=%d)", n, k)
	}
	return &RS{n: n, k: k, enc: v.mul(topInv)}, nil
}

// MustRS is NewRS for static configurations; it panics on error.
func MustRS(n, k int) *RS {
	c, err := NewRS(n, k)
	if err != nil {
		panic(err)
	}
	return c
}

func seqInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// Name implements Code.
func (c *RS) Name() string { return "rs" }

// DataBlocks implements Code.
func (c *RS) DataBlocks() int { return c.n }

// EncodedBlocks implements Code.
func (c *RS) EncodedBlocks() int { return c.n + c.k }

// MinNeeded implements Code: any n blocks decode (ε = 0).
func (c *RS) MinNeeded() int { return c.n }

// Encode implements Code. Blocks 0..n-1 are the data blocks verbatim
// (systematic); blocks n..n+k-1 are parity.
func (c *RS) Encode(chunk []byte) ([]Block, error) {
	data := split(chunk, c.n)
	bs := blockSize(len(chunk), c.n)
	out := make([]Block, 0, c.n+c.k)
	for i, d := range data {
		out = append(out, Block{Index: i, Data: d})
	}
	parity := make([]byte, c.k*bs)
	for r := c.n; r < c.n+c.k; r++ {
		p := parity[(r-c.n)*bs : (r-c.n+1)*bs : (r-c.n+1)*bs]
		out = append(out, Block{Index: r, Data: p})
	}
	// Row-blocked fill (same byte-strip scheme as tile.go): when
	// n+k blocks outgrow the cache budget, sweep [lo:hi) strips of
	// every row so each data strip stays resident across all k parity
	// rows instead of being re-fetched per row. Within a strip each row
	// overwrites with its first term, then fuses the rest through the
	// single-pass multiply-accumulate: one read+write of p per term, no
	// scratch product buffer. Strip order only reassociates the byte
	// ranges, so output is identical to the unblocked row loop.
	strip := stripBytesFor(c.n, c.k, bs)
	for lo := 0; lo < bs; lo += strip {
		hi := lo + strip
		if hi > bs {
			hi = bs
		}
		for r := c.n; r < c.n+c.k; r++ {
			p := out[r].Data[lo:hi:hi]
			gfMulSet(p, data[0][lo:hi], c.enc.at(r, 0))
			for ci := 1; ci < c.n; ci++ {
				gfMulXor(p, data[ci][lo:hi], c.enc.at(r, ci))
			}
		}
	}
	return out, nil
}

// Decode implements Code: gather any n distinct blocks, invert the
// corresponding encoding rows, and multiply to recover the data blocks.
func (c *RS) Decode(blocks []Block, chunkLen int) ([]byte, error) {
	if chunkLen == 0 {
		return []byte{}, nil
	}
	out := make([]byte, chunkLen)
	if err := c.DecodeInto(out, blocks); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto implements DecoderInto: the recovered data blocks land
// straight in dst instead of a freshly joined buffer.
func (c *RS) DecodeInto(dst []byte, blocks []Block) error {
	chunkLen := len(dst)
	if chunkLen == 0 {
		return nil
	}
	bs := blockSize(chunkLen, c.n)
	have := make(map[int][]byte, c.n)
	for _, b := range blocks {
		if b.Index < 0 || b.Index >= c.n+c.k || len(b.Data) != bs {
			continue
		}
		if _, dup := have[b.Index]; !dup {
			have[b.Index] = b.Data
		}
		if len(have) == c.n {
			break
		}
	}
	if len(have) < c.n {
		return ErrInsufficient
	}
	// Fast path: all data blocks present.
	allData := true
	for i := 0; i < c.n; i++ {
		if _, ok := have[i]; !ok {
			allData = false
			break
		}
	}
	if allData {
		data := make([][]byte, c.n)
		for i := 0; i < c.n; i++ {
			data[i] = have[i]
		}
		if !joinInto(dst, data) {
			return ErrInsufficient
		}
		return nil
	}
	// General path: invert the rows we hold.
	rows := make([]int, 0, c.n)
	vals := make([][]byte, 0, c.n)
	for r := 0; r < c.n+c.k && len(rows) < c.n; r++ {
		if v, ok := have[r]; ok {
			rows = append(rows, r)
			vals = append(vals, v)
		}
	}
	sub := c.enc.subRows(rows)
	inv, ok := sub.invert()
	if !ok {
		// Cannot happen for Vandermonde-derived rows; guard anyway.
		return ErrInsufficient
	}
	data := make([][]byte, c.n)
	backing := getRawBuf(c.n * bs) // overwrite-first rows need no zeroing
	for r := 0; r < c.n; r++ {
		data[r] = backing[r*bs : (r+1)*bs : (r+1)*bs]
	}
	// Row-blocked like Encode: one strip of every held block serves all
	// n recovered rows before moving on.
	strip := stripBytesFor(c.n, c.n, bs)
	for lo := 0; lo < bs; lo += strip {
		hi := lo + strip
		if hi > bs {
			hi = bs
		}
		for r := 0; r < c.n; r++ {
			d := data[r][lo:hi:hi]
			gfMulSet(d, vals[0][lo:hi], inv.at(r, 0))
			for ci := 1; ci < c.n; ci++ {
				gfMulXor(d, vals[ci][lo:hi], inv.at(r, ci))
			}
		}
	}
	joined := joinInto(dst, data)
	putBuf(backing)
	if !joined {
		return ErrInsufficient
	}
	return nil
}

// RSSimSpec returns the simulation-level description of an RS(n, n+k)
// configuration for the availability experiments.
func RSSimSpec(n, k int) Spec {
	return Spec{Name: "rs", DataBlocks: n, TotalBlocks: n + k, MinNeeded: n}
}
