//go:build arm64 && !noasm

package erasure

// simdName is what KernelImpl reports when the assembly path wins.
const simdName = "neon"

// archKernelSets returns the SIMD tiers this CPU can run, ascending.
// Advanced SIMD is a mandatory part of the AArch64 base profile, so
// there is nothing to probe — every arm64 kernel this package can be
// scheduled on has it.
func archKernelSets() []kernelSet {
	kernelCPU = "asimd"
	return []kernelSet{simdKernels}
}
