package erasure

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Schedule decides which composite blocks a check block is composed of.
// The inner code's degree distribution is fixed by ε; the schedule only
// chooses *which* d members a check block XORs together. The choice
// changes how belief propagation behaves at low surplus: the uniform
// schedule of Maymounkov's construction stalls with noticeable
// probability at the paper's 2% stored surplus (finite-size effect at
// n = 4096), forcing the decoder onto its ML fallback. Structured
// schedules draw members from a sliding window that sweeps the
// composite message deterministically, concentrating each check block's
// coverage so the peeling wavefront keeps moving.
//
// Schedules are deterministic given (seed, block index): encoder and
// decoder derive identical compositions from the index alone, exactly
// as with the uniform schedule, so nothing changes on the wire.
//
// The interface is satisfied only inside this package (members is
// unexported): compositions must be distinct-index sets drawn from the
// supplied rng in a reproducible order, and keeping implementations
// here keeps that contract enforceable.
type Schedule interface {
	// Name identifies the schedule ("uniform", "windowed", ...).
	Name() string
	// members returns the d distinct composite indices (in [0, nPrime))
	// of check block i, consuming randomness only from rng.
	members(rng *rand.Rand, i, d, nPrime int) []int
}

// Uniform returns the default schedule: every check block draws its
// members uniformly at random over all n' composite blocks. This is
// the construction of the paper's §2.2 reference [27]; its output is
// bit-identical to what the package produced before schedules existed.
func Uniform() Schedule { return uniformSchedule{} }

type uniformSchedule struct{}

func (uniformSchedule) Name() string { return "uniform" }

// members draws d distinct indices uniformly over [0, nPrime). The
// draw sequence (rng.Intn(nPrime) with duplicates rejected) is frozen:
// it must keep matching the pre-schedule implementation so that stored
// blocks encoded by older builds remain decodable and the default
// encoding stays byte-identical for a fixed seed.
func (uniformSchedule) members(rng *rand.Rand, _, d, nPrime int) []int {
	seen := make(map[int]struct{}, d)
	out := make([]int, 0, d)
	for len(out) < d {
		v := rng.Intn(nPrime)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Windowed returns a structured schedule: check block i draws its
// members from a window of ~frac·n' consecutive composite indices
// (mod n') whose start advances by a fixed stride per block. The
// stride is chosen coprime to n' and close to n'/φ (golden-ratio
// interleaving), so consecutive check blocks land far apart while any
// contiguous run of block indices still covers the whole composite
// message almost uniformly — the deterministic interleaving that keeps
// loss of a burst of blocks from uncovering a region.
//
// frac is clamped to [0.01, 1]; Windowed(1) covers the full message
// per window and differs from Uniform only in draw order.
func Windowed(frac float64) Schedule {
	if frac < 0.01 {
		frac = 0.01
	}
	if frac > 1 {
		frac = 1
	}
	return windowedSchedule{frac: frac}
}

type windowedSchedule struct {
	frac float64
}

func (s windowedSchedule) Name() string {
	return fmt.Sprintf("windowed%02d", int(s.frac*100+0.5))
}

// minWindow floors the window in absolute terms: windows of a few
// dozen blocks or less make the inner code's coverage so banded that
// the received equations go rank-deficient at small n' (observed at
// n' ≈ 20 with a pure fractional window). Below ~3·minWindow composite
// blocks a windowed schedule degenerates toward uniform, which is the
// right behavior: structure only pays at paper-scale n.
const minWindow = 32

func (s windowedSchedule) members(rng *rand.Rand, i, d, nPrime int) []int {
	w := int(s.frac*float64(nPrime) + 0.5)
	if w < minWindow {
		w = minWindow
	}
	if w < d {
		w = d // a window must be able to hold d distinct members
	}
	if w > nPrime {
		w = nPrime
	}
	start := (i * interleaveStride(nPrime)) % nPrime
	seen := make(map[int]struct{}, d)
	out := make([]int, 0, d)
	for len(out) < d {
		v := (start + rng.Intn(w)) % nPrime
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// interleaveStride returns the window-start advance per check block:
// the integer closest to n'/φ that is coprime to n', so the start
// positions of any m consecutive check blocks are spread over the
// whole composite message (a golden-ratio low-discrepancy sequence).
func interleaveStride(nPrime int) int {
	if nPrime <= 1 {
		return 1
	}
	s := int(float64(nPrime)*0.6180339887498949 + 0.5)
	if s < 1 {
		s = 1
	}
	for gcd(s, nPrime) != 1 {
		s--
	}
	return s
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Banded returns a structured schedule that splits each check block's
// draw range into `bands` equally spaced windows totalling ~frac·n'
// composite indices. A single sliding window (Windowed) buys XOR
// locality but narrows coverage, which stalls belief propagation
// earlier; spreading the same coverage budget over several bands keeps
// members address-clustered (each band is a contiguous run) while the
// bands themselves span the whole composite message. Band starts
// advance by the same golden-ratio stride as Windowed, so consecutive
// check blocks interleave.
//
// frac is clamped to [0.01, 1] and bands to [1, 16]; Banded(f, 1) is
// draw-for-draw identical to Windowed(f).
func Banded(frac float64, bands int) Schedule {
	if frac < 0.01 {
		frac = 0.01
	}
	if frac > 1 {
		frac = 1
	}
	if bands < 1 {
		bands = 1
	}
	if bands > 16 {
		bands = 16
	}
	return bandedSchedule{frac: frac, bands: bands}
}

type bandedSchedule struct {
	frac  float64
	bands int
}

func (s bandedSchedule) Name() string {
	return fmt.Sprintf("banded%02dx%d", int(s.frac*100+0.5), s.bands)
}

func (s bandedSchedule) members(rng *rand.Rand, i, d, nPrime int) []int {
	bands := s.bands
	// Per-band width: the coverage budget split across bands, floored
	// like Windowed so tiny bands cannot starve the draw.
	bw := int(s.frac*float64(nPrime)/float64(bands) + 0.5)
	if bw < minWindow {
		bw = minWindow
	}
	if bands*bw < d {
		bw = (d + bands - 1) / bands // bands must jointly hold d members
	}
	if bands*bw >= nPrime {
		// Coverage saturates the composite message; degenerate to one
		// full-width window (same draw shape as Windowed(1)).
		bands, bw = 1, nPrime
	}
	spacing := nPrime / bands // ≥ bw, so bands never overlap
	start := (i * interleaveStride(nPrime)) % nPrime
	seen := make(map[int]struct{}, d)
	out := make([]int, 0, d)
	for len(out) < d {
		r := rng.Intn(bands * bw)
		v := (start + (r/bw)*spacing + r%bw) % nPrime
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Schedules returns the named schedule set the evaluation harness
// sweeps: the uniform default, windowed variants at two window sizes,
// and banded variants that spread the same coverage budgets across
// four windows. New entries extend the psbench schedule-comparison arm
// and the root benchmarks automatically.
func Schedules() []Schedule {
	return []Schedule{Uniform(), Windowed(0.12), Windowed(0.25), Banded(0.12, 4), Banded(0.25, 4)}
}

// ScheduleByName resolves a schedule from its CLI/config name:
// "uniform"; "windowed" / "windowedNN" where NN is the window size as
// a percentage of the composite message (default 12); or "banded" /
// "bandedNN" / "bandedNNxB" where NN is the total coverage percentage
// (default 25) and B the band count (default 4).
//
// The empty name selects the default schedule, banded25x4: at the 2%
// decode surplus it beats uniform on both BP completion rate and
// fresh-seed decode throughput (see docs/PERF.md, "Banded default").
// Note the default changed — it was uniform through PR 4. Encoder and
// decoder must agree on the schedule, so readers of online-coded files
// stored by older builds pass "uniform" explicitly; the OnlineOpts
// zero value (nil Schedule) still means uniform and the stored-block
// wire format is unchanged.
func ScheduleByName(name string) (Schedule, error) {
	switch {
	case name == "":
		return Banded(0.25, 4), nil
	case name == "uniform":
		return Uniform(), nil
	case name == "windowed":
		return Windowed(0.12), nil
	case len(name) > len("windowed") && name[:len("windowed")] == "windowed":
		// strconv.Atoi over the whole suffix: Sscanf would silently
		// accept trailing garbage ("windowed12junk").
		pct, err := strconv.Atoi(name[len("windowed"):])
		if err != nil || pct < 1 || pct > 100 {
			return nil, fmt.Errorf("erasure: bad windowed schedule %q (want windowedNN, NN in 1..100)", name)
		}
		return Windowed(float64(pct) / 100), nil
	case name == "banded":
		return Banded(0.25, 4), nil
	case len(name) > len("banded") && name[:len("banded")] == "banded":
		spec := name[len("banded"):]
		pctStr, bandStr, hasBands := strings.Cut(spec, "x")
		pct, err := strconv.Atoi(pctStr)
		if err != nil || pct < 1 || pct > 100 {
			return nil, fmt.Errorf("erasure: bad banded schedule %q (want bandedNN or bandedNNxB, NN in 1..100)", name)
		}
		bands := 4
		if hasBands {
			bands, err = strconv.Atoi(bandStr)
			if err != nil || bands < 1 || bands > 16 {
				return nil, fmt.Errorf("erasure: bad banded schedule %q (want bandedNNxB, B in 1..16)", name)
			}
		}
		return Banded(float64(pct)/100, bands), nil
	default:
		return nil, fmt.Errorf("erasure: unknown schedule %q", name)
	}
}
