package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randChunk(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestNullRoundTrip(t *testing.T) {
	c := NewNull()
	chunk := []byte("hello contributory storage")
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("null produced %d blocks", len(blocks))
	}
	got, err := c.Decode(blocks, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("null round trip mismatch")
	}
}

func TestNullDecodeMissing(t *testing.T) {
	c := NewNull()
	if _, err := c.Decode(nil, 10); err != ErrInsufficient {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestNullEncodeCopies(t *testing.T) {
	c := NewNull()
	chunk := []byte{1, 2, 3}
	blocks, _ := c.Encode(chunk)
	chunk[0] = 99
	if blocks[0].Data[0] != 1 {
		t.Fatal("null Encode aliased caller's buffer")
	}
}

func TestXORRoundTripAllSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := MustXOR(2)
	chunk := randChunk(rng, 1000)
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("xor(2) produced %d blocks, want 3", len(blocks))
	}
	// Every 2-of-3 subset must decode.
	for drop := 0; drop < 3; drop++ {
		var sub []Block
		for i, b := range blocks {
			if i != drop {
				sub = append(sub, b)
			}
		}
		got, err := c.Decode(sub, len(chunk))
		if err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		if !bytes.Equal(got, chunk) {
			t.Fatalf("drop %d: mismatch", drop)
		}
	}
}

func TestXORTwoLossesFail(t *testing.T) {
	c := MustXOR(2)
	chunk := []byte("0123456789")
	blocks, _ := c.Encode(chunk)
	if _, err := c.Decode(blocks[:1], len(chunk)); err != ErrInsufficient {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestXORWiderStripe(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := MustXOR(7)
	chunk := randChunk(rng, 12345) // not divisible by 7
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 8 {
		t.Fatalf("xor(7) produced %d blocks", len(blocks))
	}
	// Drop a middle data block.
	sub := append(append([]Block{}, blocks[:3]...), blocks[4:]...)
	got, err := c.Decode(sub, len(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("xor(7) recovery mismatch")
	}
}

func TestXOREmptyChunk(t *testing.T) {
	c := MustXOR(2)
	blocks, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(blocks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty chunk decoded to %d bytes", len(got))
	}
}

func TestXORTinyChunk(t *testing.T) {
	c := MustXOR(4)
	chunk := []byte{0xAA} // smaller than n
	blocks, err := c.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(blocks[1:], len(chunk)) // drop block 0
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("tiny chunk recovery mismatch")
	}
}

func TestNewXORRejectsBadN(t *testing.T) {
	if _, err := NewXOR(0); err == nil {
		t.Error("NewXOR(0) accepted")
	}
}

// Property: XOR round-trips arbitrary payloads with any single loss.
func TestXORProperty(t *testing.T) {
	c := MustXOR(3)
	f := func(payload []byte, drop uint8) bool {
		if len(payload) == 0 {
			return true
		}
		blocks, err := c.Encode(payload)
		if err != nil {
			return false
		}
		d := int(drop) % len(blocks)
		sub := append(append([]Block{}, blocks[:d]...), blocks[d+1:]...)
		got, err := c.Decode(sub, len(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpecTolerates(t *testing.T) {
	if XOR23Spec.Tolerates() != 1 {
		t.Errorf("xor23 tolerates %d, want 1", XOR23Spec.Tolerates())
	}
	if OnlineSimSpec.Tolerates() != 2 {
		t.Errorf("online sim tolerates %d, want 2", OnlineSimSpec.Tolerates())
	}
	if NullSpec.Tolerates() != 0 {
		t.Errorf("null tolerates %d, want 0", NullSpec.Tolerates())
	}
}

func TestSpecDecodable(t *testing.T) {
	if !XOR23Spec.Decodable(2) || XOR23Spec.Decodable(1) {
		t.Error("xor23 decodability wrong")
	}
}

func TestSpecOverhead(t *testing.T) {
	if got := XOR23Spec.Overhead(); got != 0.5 {
		t.Errorf("xor23 overhead = %g, want 0.5", got)
	}
}

func TestSpecOf(t *testing.T) {
	s := SpecOf(MustXOR(2))
	if s.DataBlocks != 2 || s.TotalBlocks != 3 || s.MinNeeded != 2 {
		t.Errorf("SpecOf(xor2) = %+v", s)
	}
}
