package erasure

// The byte-slice kernels under every code's hot path: XOR accumulation
// and GF(256) scalar-times-slice accumulation. Each kernel has a scalar
// reference implementation and an optimized one (word-wise XOR, nibble
// product tables); the kernelSet indirection lets tests cross-check the
// two on identical inputs. All call sites go through the package-level
// xorInto/gfMulSlice wrappers, which dispatch to hotKernels.

import (
	"encoding/binary"
	"sync"
)

// kernelSet bundles the two data-path primitives so implementations are
// swappable as a unit.
type kernelSet struct {
	xorInto    func(dst, src []byte)
	gfMulSlice func(dst, src []byte, c byte)
}

var (
	scalarKernels = kernelSet{xorIntoScalar, gfMulSliceScalar}
	fastKernels   = kernelSet{xorIntoWords, gfMulSliceNibble}
	hotKernels    = fastKernels
)

// xorIntoScalar is the byte-at-a-time reference: dst ^= src.
func xorIntoScalar(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// xorIntoWords XORs 8-byte words (four per iteration) with a scalar
// tail. Lengths must match; the xorInto wrapper enforces that.
func xorIntoWords(dst, src []byte) {
	n := len(dst)
	i := 0
	for ; i+32 <= n; i += 32 {
		d, s := dst[i:i+32:i+32], src[i:i+32:i+32]
		binary.LittleEndian.PutUint64(d[0:], binary.LittleEndian.Uint64(d[0:])^binary.LittleEndian.Uint64(s[0:]))
		binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(d[8:])^binary.LittleEndian.Uint64(s[8:]))
		binary.LittleEndian.PutUint64(d[16:], binary.LittleEndian.Uint64(d[16:])^binary.LittleEndian.Uint64(s[16:]))
		binary.LittleEndian.PutUint64(d[24:], binary.LittleEndian.Uint64(d[24:])^binary.LittleEndian.Uint64(s[24:]))
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// gfMulSliceScalar is the log/exp reference: dst ^= c·src element-wise.
func gfMulSliceScalar(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorIntoScalar(dst[:len(src)], src)
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// Nibble product tables (klauspost/reedsolomon style): for coefficient
// c, c·b = gfMulLow[c][b&0x0f] ^ gfMulHigh[c][b>>4]. Two 16-entry
// lookups replace two log lookups, an add, an exp lookup, and a zero
// branch per byte. 8 KB total, built once at init.
var (
	gfMulLow  [256][16]byte
	gfMulHigh [256][16]byte
)

func init() {
	for c := 0; c < 256; c++ {
		for x := 0; x < 16; x++ {
			gfMulLow[c][x] = gfMul(byte(c), byte(x))
			gfMulHigh[c][x] = gfMul(byte(c), byte(x<<4))
		}
	}
}

// gfMulSliceNibble is the table-driven kernel: dst ^= c·src element-wise.
func gfMulSliceNibble(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorIntoWords(dst[:len(src)], src)
		return
	}
	low, high := &gfMulLow[c], &gfMulHigh[c]
	d := dst[:len(src)]
	for i, s := range src {
		d[i] ^= low[s&0x0f] ^ high[s>>4]
	}
}

// scratchPool recycles block-sized buffers across Encode/Decode/
// FreshBlock calls. Buffers of mixed capacities coexist; a get that
// finds one too small falls back to allocating.
var scratchPool sync.Pool

// getRawBuf returns a length-n buffer with unspecified contents.
func getRawBuf(n int) []byte {
	if p, _ := scratchPool.Get().(*[]byte); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

// getBuf returns a zeroed length-n buffer.
func getBuf(n int) []byte {
	b := getRawBuf(n)
	clear(b)
	return b
}

// putBuf returns a buffer obtained from getBuf/getRawBuf to the pool.
// The caller must not retain any alias into it.
func putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	scratchPool.Put(&b)
}
