package erasure

// The byte-slice kernels under every code's hot path, as a five-entry
// kernelSet so implementations are swappable as a unit:
//
//   - xorInto(dst, src):        dst ^= src
//   - xorBlocks(dst, srcs):     dst ^= srcs[0] ^ srcs[1] ^ ... in a
//     single pass over dst (the N-source fusion the decoder's replay
//     folds batch through)
//   - xorBlocksSet(dst, srcs):  dst = srcs[0] ^ srcs[1] ^ ..., never
//     reading dst (the form the online code's aux/check builds use:
//     the first source group is written straight over the
//     destination, so a fresh block costs no zeroing pass and no
//     copy-first memmove)
//   - gfMul(dst, src, c):       dst = c·src  (overwrite)
//   - gfMulXor(dst, src, c):    dst ^= c·src (multiply-accumulate, the
//     single-pass RS row operation)
//
// Dispatch order, decided once at init — highest available tier wins:
//
//  1. GFNI ("gfni", amd64): 64-byte-group AVX-512 XOR kernels plus
//     GF(256) multiplies via VGF2P8AFFINEQB with per-coefficient affine
//     matrices (the field is x^8+x^4+x^3+x^2+1 = 0x11d, so the
//     hardwired-0x11b VGF2P8MULB is unusable). Requires AVX-512F+BW,
//     GFNI, and OS ZMM state (kernels_amd64.go, kernels_avx512_amd64.s).
//  2. AVX-512 ("avx512", amd64): the same 64-byte XOR kernels with
//     VPSHUFB-512 nibble-table multiplies. Requires AVX-512F+BW.
//  3. AVX2 ("avx2", amd64) / NEON ("neon", arm64): 32-byte-group
//     assembly (kernels_amd64.s / kernels_arm64.s). AVX2 is detected
//     via CPUID + XGETBV; NEON is baseline for AArch64.
//  4. The portable optimized kernels below ("portable": word-wise XOR,
//     nibble product tables) — the default on other architectures, or
//     everywhere when built with `-tags noasm`.
//  5. The byte-at-a-time scalar reference implementations, never
//     dispatched; they exist so tests can cross-check every other
//     implementation on identical inputs (kernels_test.go).
//
// The PS_KERNELS environment variable (avx2|gfni|avx512|neon|noasm,
// read once at init) forces a lower tier for tests and benchmarks; a
// tier this build/CPU cannot run leaves the best available tier active
// and is reported by KernelImpl. All call sites go through the
// package-level xorInto/xorBlocks/gfMulSet/gfMulXor wrappers (code.go,
// gf256.go), which dispatch to hotKernels. KernelImpl reports the full
// decision: active tier, CPU features found, and any override.

import (
	"encoding/binary"
	"os"
	"sync"
)

// kernelSet bundles the five data-path primitives so implementations
// are swappable (and cross-checkable) as a unit.
type kernelSet struct {
	name         string
	xorInto      func(dst, src []byte)
	xorBlocks    func(dst []byte, srcs [][]byte)
	xorBlocksSet func(dst []byte, srcs [][]byte)
	gfMul        func(dst, src []byte, c byte)
	gfMulXor     func(dst, src []byte, c byte)
}

var (
	scalarKernels = kernelSet{"scalar", xorIntoScalar, xorBlocksScalar, xorBlocksSetScalar, gfMulScalar, gfMulXorScalar}
	fastKernels   = kernelSet{"portable", xorIntoWords, xorBlocksWords, xorBlocksSetWords, gfMulNibble, gfMulXorNibble}
	hotKernels    = fastKernels
)

// kernelSetsForTest lists every implementation this build can run, for
// the cross-check tests; init() in kernels_asm.go appends every SIMD
// tier the CPU supports, in ascending preference order.
var kernelSetsForTest = []kernelSet{scalarKernels, fastKernels}

// Dispatch-decision record, filled at init and reported by KernelImpl.
var (
	kernelCPU        string // arch-specific feature summary ("avx2 avx512f ... gfni")
	kernelOverride   string // the PS_KERNELS value, "" when unset
	kernelOverrideOK bool   // whether the requested override tier was available
)

// KernelTier reports just the active kernel tier name ("gfni",
// "avx512", "avx2", "neon", or "portable").
func KernelTier() string { return hotKernels.name }

// KernelImpl reports the full dispatch decision for benchmarks and
// logs: the active tier, the CPU features detection found, and — when
// PS_KERNELS is set — whether the override was honored.
func KernelImpl() string {
	s := hotKernels.name
	if kernelCPU != "" {
		s += " (cpu: " + kernelCPU + ")"
	}
	if kernelOverride != "" {
		if kernelOverrideOK {
			s += " [forced: PS_KERNELS=" + kernelOverride + "]"
		} else {
			s += " [PS_KERNELS=" + kernelOverride + " unavailable]"
		}
	}
	return s
}

// kernelByName resolves a tier name to its kernel set. "noasm" and
// "portable" both select the portable kernels so `PS_KERNELS=noasm`
// means the same thing on every build; "scalar" is accepted for
// debugging against the reference implementations.
func kernelByName(name string) (kernelSet, bool) {
	switch name {
	case "portable", "noasm":
		return fastKernels, true
	case "scalar":
		return scalarKernels, true
	}
	for _, ks := range kernelSetsForTest {
		if ks.name == name {
			return ks, true
		}
	}
	return kernelSet{}, false
}

// applyKernelOverride applies the PS_KERNELS environment override after
// the arch init has registered every available tier. An unavailable
// tier (wrong CPU, or a noasm build asked for assembly) leaves the best
// available tier active; KernelImpl reports the mismatch so CI matrix
// legs on lesser hardware skip forced-tier assertions cleanly.
func applyKernelOverride() {
	req := os.Getenv("PS_KERNELS")
	if req == "" {
		return
	}
	kernelOverride = req
	if ks, ok := kernelByName(req); ok {
		hotKernels = ks
		kernelOverrideOK = true
	}
}

// forceKernels switches the active tier by name for tests, returning a
// restore func; ok=false when the tier is unavailable in this build.
// Not safe concurrently with other users of hotKernels — callers must
// not run in parallel tests.
func forceKernels(name string) (restore func(), ok bool) {
	ks, ok := kernelByName(name)
	if !ok {
		return nil, false
	}
	prev := hotKernels
	hotKernels = ks
	return func() { hotKernels = prev }, true
}

// xorIntoScalar is the byte-at-a-time reference: dst ^= src.
func xorIntoScalar(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// xorBlocksScalar is the reference N-source XOR: dst ^= XOR(srcs...).
func xorBlocksScalar(dst []byte, srcs [][]byte) {
	for _, s := range srcs {
		xorIntoScalar(dst, s)
	}
}

// xorBlocksSetScalar is the reference overwrite form: dst = XOR(srcs...).
func xorBlocksSetScalar(dst []byte, srcs [][]byte) {
	clear(dst)
	xorBlocksScalar(dst, srcs)
}

// xorIntoWords XORs 8-byte words (four per iteration) with a scalar
// tail. Lengths must match; the xorInto wrapper enforces that.
func xorIntoWords(dst, src []byte) {
	n := len(dst)
	i := 0
	for ; i+32 <= n; i += 32 {
		d, s := dst[i:i+32:i+32], src[i:i+32:i+32]
		binary.LittleEndian.PutUint64(d[0:], binary.LittleEndian.Uint64(d[0:])^binary.LittleEndian.Uint64(s[0:]))
		binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(d[8:])^binary.LittleEndian.Uint64(s[8:]))
		binary.LittleEndian.PutUint64(d[16:], binary.LittleEndian.Uint64(d[16:])^binary.LittleEndian.Uint64(s[16:]))
		binary.LittleEndian.PutUint64(d[24:], binary.LittleEndian.Uint64(d[24:])^binary.LittleEndian.Uint64(s[24:]))
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// xorInto2Words is the fused two-source word loop: dst ^= a ^ b, one
// read and one write of dst for both sources.
func xorInto2Words(dst, a, b []byte) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i]
	}
}

// xorBlocksWords folds sources in pairs through the fused two-source
// loop, halving the dst memory traffic versus N one-source passes.
func xorBlocksWords(dst []byte, srcs [][]byte) {
	i := 0
	for ; i+2 <= len(srcs); i += 2 {
		xorInto2Words(dst, srcs[i], srcs[i+1])
	}
	if i < len(srcs) {
		xorIntoWords(dst, srcs[i])
	}
}

// xorSet2Words is the fused overwrite pair: dst = a ^ b, no dst read.
func xorSet2Words(dst, a, b []byte) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// xorBlocksSetWords is the overwrite form: dst = XOR(srcs...). The
// first pair (or lone source) lands via an overwrite, so a fresh
// destination needs neither zeroing nor a copy-first pass.
func xorBlocksSetWords(dst []byte, srcs [][]byte) {
	switch {
	case len(srcs) == 0:
		clear(dst)
		return
	case len(srcs) == 1:
		copy(dst, srcs[0])
		return
	}
	xorSet2Words(dst, srcs[0], srcs[1])
	xorBlocksWords(dst, srcs[2:])
}

// gfMulScalar is the log/exp reference: dst = c·src element-wise.
func gfMulScalar(dst, src []byte, c byte) {
	d := dst[:len(src)]
	if c == 0 {
		clear(d)
		return
	}
	if c == 1 {
		copy(d, src)
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			d[i] = gfExp[logC+int(gfLog[s])]
		} else {
			d[i] = 0
		}
	}
}

// gfMulXorScalar is the log/exp reference: dst ^= c·src element-wise.
func gfMulXorScalar(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorIntoScalar(dst[:len(src)], src)
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// Nibble product tables (klauspost/reedsolomon style): for coefficient
// c, c·b = tab[b&0x0f] ^ tab[16+(b>>4)] where tab = gfMulTab[c]. Two
// 16-entry lookups replace two log lookups, an add, an exp lookup, and
// a zero branch per byte — and the 32-byte-per-coefficient layout is
// exactly what the SIMD kernels broadcast into vector registers for
// PSHUFB/TBL lookups. 8 KB total, built once at init.
var gfMulTab [256][32]byte

func init() {
	for c := 0; c < 256; c++ {
		for x := 0; x < 16; x++ {
			gfMulTab[c][x] = gfMul(byte(c), byte(x))
			gfMulTab[c][16+x] = gfMul(byte(c), byte(x<<4))
		}
	}
}

// gfMulNibble is the table-driven overwrite kernel: dst = c·src.
func gfMulNibble(dst, src []byte, c byte) {
	d := dst[:len(src)]
	if c == 0 {
		clear(d)
		return
	}
	if c == 1 {
		copy(d, src)
		return
	}
	tab := &gfMulTab[c]
	for i, s := range src {
		d[i] = tab[s&0x0f] ^ tab[16+(s>>4)]
	}
}

// gfMulXorNibble is the table-driven multiply-accumulate: dst ^= c·src.
func gfMulXorNibble(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorIntoWords(dst[:len(src)], src)
		return
	}
	tab := &gfMulTab[c]
	d := dst[:len(src)]
	for i, s := range src {
		d[i] ^= tab[s&0x0f] ^ tab[16+(s>>4)]
	}
}

// scratchPool recycles block-sized buffers across Encode/Decode/
// FreshBlock calls. Buffers of mixed capacities coexist; a get that
// finds one too small falls back to allocating.
var scratchPool sync.Pool

// getRawBuf returns a length-n buffer with unspecified contents.
func getRawBuf(n int) []byte {
	if p, _ := scratchPool.Get().(*[]byte); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

// getBuf returns a zeroed length-n buffer.
func getBuf(n int) []byte {
	b := getRawBuf(n)
	clear(b)
	return b
}

// putBuf returns a buffer obtained from getBuf/getRawBuf to the pool.
// The caller must not retain any alias into it.
func putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	scratchPool.Put(&b)
}
