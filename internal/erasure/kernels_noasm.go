//go:build noasm || (!amd64 && !arm64)

package erasure

// This build has no assembly kernels — either the target architecture
// has none, or they were compiled out with `-tags noasm` (the CI
// cross-arch job exercises both). hotKernels keeps its portable
// default from kernels.go; PS_KERNELS can still select "portable",
// "noasm", or "scalar" (anything else is reported unavailable).
func init() {
	applyKernelOverride()
}
