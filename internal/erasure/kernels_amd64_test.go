//go:build amd64 && !noasm

package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestXorBlocksSetNTAgree drives the non-temporal overwrite path of the
// AVX-512 tiers against the scalar reference. The regular cross-check
// matrix never reaches it (ntMinBytes gates it to large destinations),
// so this lowers the threshold and sweeps lengths and misalignments
// around the 64-byte store-alignment peeling.
func TestXorBlocksSetNTAgree(t *testing.T) {
	if len(archKernelSets()) < 2 {
		t.Skip("no AVX-512 tier on this CPU")
	}
	defer func(v int) { ntMinBytes = v }(ntMinBytes)
	ntMinBytes = 1

	rng := rand.New(rand.NewSource(47))
	lens := []int{1, 63, 64, 65, 127, 128, 191, 256, 1024, 4096, 4096 + 17}
	for _, n := range lens {
		for _, off := range []int{0, 1, 31, 63} {
			for _, nsrc := range []int{2, 4} {
				dst := unaligned(rng, n, off)
				srcs := make([][]byte, nsrc)
				for i := range srcs {
					srcs[i] = unaligned(rng, n, (off+i)%7)
				}
				want := make([]byte, n)
				scalarKernels.xorBlocksSet(want, srcs)
				xorBlocksSetZ(dst, srcs)
				if !bytes.Equal(dst, want) {
					t.Fatalf("NT xorBlocksSet len %d off %d nsrc %d disagrees with scalar", n, off, nsrc)
				}
			}
		}
	}
}

// TestGFAffineTabMatchesGFMul pins the GFNI matrix construction to the
// field's scalar multiply for every (coefficient, byte) pair, by
// evaluating the affine transform in software exactly as
// VGF2P8AFFINEQB does: output bit i = parity(matrix row at byte 7-i
// AND input byte).
func TestGFAffineTabMatchesGFMul(t *testing.T) {
	for c := 1; c < 256; c++ {
		m := gfAffineTab[c]
		for b := 0; b < 256; b++ {
			var got byte
			for i := 0; i < 8; i++ {
				row := byte(m >> (8 * (7 - i)))
				if popcount8(row&byte(b))&1 == 1 {
					got |= 1 << i
				}
			}
			if want := gfMul(byte(c), byte(b)); got != want {
				t.Fatalf("affine tab: %#02x·%#02x = %#02x, want %#02x", c, b, got, want)
			}
		}
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
