package erasure

import (
	"math/rand"
	"testing"
)

// TestDecodeRobustToGarbage feeds each decoder random, malformed, and
// inconsistent block sets. Decoders must never panic — they return data
// (integrity is the layer above's concern) or ErrInsufficient.
func TestDecodeRobustToGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	codes := []Code{
		NewNull(),
		MustXOR(2),
		MustXOR(7),
		MustRS(4, 2),
		MustOnline(32, OnlineOpts{Eps: 0.3, Surplus: 0.3}),
	}
	for _, c := range codes {
		for trial := 0; trial < 200; trial++ {
			nBlocks := rng.Intn(12)
			blocks := make([]Block, nBlocks)
			for i := range blocks {
				blocks[i] = Block{
					Index: rng.Intn(20) - 2, // includes negatives and out-of-range
					Data:  make([]byte, rng.Intn(64)),
				}
				rng.Read(blocks[i].Data)
			}
			// Seed-corpus case: force duplicate indices into some trials
			// so decoders see the same index with differing payloads.
			if nBlocks >= 2 && trial%3 == 0 {
				blocks[nBlocks-1].Index = blocks[0].Index
			}
			chunkLen := rng.Intn(256)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked on garbage: %v", c.Name(), r)
					}
				}()
				_, _ = c.Decode(blocks, chunkLen)
			}()
		}
	}
}

// TestDecodeRobustToDuplicates supplies the same block many times; the
// decoders must handle duplicates without double-counting. The online
// code is included: its peeling decoder sees duplicate indices whenever
// a repair re-fetches a block the reader already holds.
func TestDecodeRobustToDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	chunk := randChunk(rng, 4096)
	for _, c := range []Code{MustXOR(2), MustRS(4, 2), MustOnline(16, OnlineOpts{Eps: 0.3, Surplus: 0.3})} {
		blocks, err := c.Encode(chunk)
		if err != nil {
			t.Fatal(err)
		}
		// MinNeeded copies of block 0 only: insufficient despite count.
		dup := make([]Block, 0, c.MinNeeded())
		for i := 0; i < c.MinNeeded(); i++ {
			dup = append(dup, blocks[0])
		}
		if _, err := c.Decode(dup, len(chunk)); err == nil && c.MinNeeded() > 1 {
			t.Fatalf("%s decoded from duplicates of one block", c.Name())
		}
	}
}

// TestCodesInterfaceContract checks every implementation satisfies the
// structural relationships the storage layer depends on.
func TestCodesInterfaceContract(t *testing.T) {
	codes := []Code{
		NewNull(),
		MustXOR(2),
		MustXOR(9),
		MustRS(4, 2),
		MustRS(16, 4),
		MustOnline(64, OnlineOpts{Eps: 0.2, Surplus: 0.2}),
		MustOnline(4096, OnlineOpts{}),
	}
	for _, c := range codes {
		if c.DataBlocks() < 1 {
			t.Errorf("%s: DataBlocks %d", c.Name(), c.DataBlocks())
		}
		if c.EncodedBlocks() < c.DataBlocks() {
			t.Errorf("%s: EncodedBlocks %d < DataBlocks %d", c.Name(), c.EncodedBlocks(), c.DataBlocks())
		}
		if c.MinNeeded() < c.DataBlocks() || c.MinNeeded() > c.EncodedBlocks() {
			t.Errorf("%s: MinNeeded %d outside [n, m]", c.Name(), c.MinNeeded())
		}
		spec := SpecOf(c)
		if spec.Tolerates() != c.EncodedBlocks()-c.MinNeeded() {
			t.Errorf("%s: spec tolerance inconsistent", c.Name())
		}
	}
}
