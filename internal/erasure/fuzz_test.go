package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDecodeRobustToGarbage feeds each decoder random, malformed, and
// inconsistent block sets. Decoders must never panic — they return data
// (integrity is the layer above's concern) or ErrInsufficient.
func TestDecodeRobustToGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	codes := []Code{
		NewNull(),
		MustXOR(2),
		MustXOR(7),
		MustRS(4, 2),
		MustOnline(32, OnlineOpts{Eps: 0.3, Surplus: 0.3}),
	}
	for _, c := range codes {
		for trial := 0; trial < 200; trial++ {
			nBlocks := rng.Intn(12)
			blocks := make([]Block, nBlocks)
			for i := range blocks {
				blocks[i] = Block{
					Index: rng.Intn(20) - 2, // includes negatives and out-of-range
					Data:  make([]byte, rng.Intn(64)),
				}
				rng.Read(blocks[i].Data)
			}
			// Seed-corpus case: force duplicate indices into some trials
			// so decoders see the same index with differing payloads.
			if nBlocks >= 2 && trial%3 == 0 {
				blocks[nBlocks-1].Index = blocks[0].Index
			}
			chunkLen := rng.Intn(256)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked on garbage: %v", c.Name(), r)
					}
				}()
				_, _ = c.Decode(blocks, chunkLen)
			}()
		}
	}
}

// TestDecodeRobustToDuplicates supplies the same block many times; the
// decoders must handle duplicates without double-counting. The online
// code is included: its peeling decoder sees duplicate indices whenever
// a repair re-fetches a block the reader already holds.
func TestDecodeRobustToDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	chunk := randChunk(rng, 4096)
	for _, c := range []Code{MustXOR(2), MustRS(4, 2), MustOnline(16, OnlineOpts{Eps: 0.3, Surplus: 0.3})} {
		blocks, err := c.Encode(chunk)
		if err != nil {
			t.Fatal(err)
		}
		// MinNeeded copies of block 0 only: insufficient despite count.
		dup := make([]Block, 0, c.MinNeeded())
		for i := 0; i < c.MinNeeded(); i++ {
			dup = append(dup, blocks[0])
		}
		if _, err := c.Decode(dup, len(chunk)); err == nil && c.MinNeeded() > 1 {
			t.Fatalf("%s decoded from duplicates of one block", c.Name())
		}
	}
}

// TestCodesInterfaceContract checks every implementation satisfies the
// structural relationships the storage layer depends on.
func TestCodesInterfaceContract(t *testing.T) {
	codes := []Code{
		NewNull(),
		MustXOR(2),
		MustXOR(9),
		MustRS(4, 2),
		MustRS(16, 4),
		MustOnline(64, OnlineOpts{Eps: 0.2, Surplus: 0.2}),
		MustOnline(4096, OnlineOpts{}),
	}
	for _, c := range codes {
		if c.DataBlocks() < 1 {
			t.Errorf("%s: DataBlocks %d", c.Name(), c.DataBlocks())
		}
		if c.EncodedBlocks() < c.DataBlocks() {
			t.Errorf("%s: EncodedBlocks %d < DataBlocks %d", c.Name(), c.EncodedBlocks(), c.DataBlocks())
		}
		if c.MinNeeded() < c.DataBlocks() || c.MinNeeded() > c.EncodedBlocks() {
			t.Errorf("%s: MinNeeded %d outside [n, m]", c.Name(), c.MinNeeded())
		}
		spec := SpecOf(c)
		if spec.Tolerates() != c.EncodedBlocks()-c.MinNeeded() {
			t.Errorf("%s: spec tolerance inconsistent", c.Name())
		}
	}
}

// FuzzOnlineDecode throws arbitrary block soups at small online codes
// across every schedule. The decoder must never panic, and whenever it
// claims success after blocks derived from a real encode, the output
// must be a prefix-correct reconstruction (integrity of tampered data
// is the layer above's concern, so success on mangled inputs is only
// checked for crashes, not content).
func FuzzOnlineDecode(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(0), []byte("seed corpus payload for the online decoder"))
	f.Add(int64(7), uint8(3), uint8(1), []byte{0})
	f.Add(int64(42), uint8(64), uint8(2), bytes.Repeat([]byte{0xa5}, 200))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, schedRaw uint8, data []byte) {
		n := int(nRaw)%64 + 1
		scheds := Schedules()
		sched := scheds[int(schedRaw)%len(scheds)]
		c, err := NewOnline(n, OnlineOpts{Eps: 0.3, Surplus: 0.3, Seed: seed | 1, Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		// Arbitrary garbage blocks: indices and sizes from the data.
		rng := rand.New(rand.NewSource(seed))
		garbage := make([]Block, 0, 8)
		for i := 0; i+2 < len(data) && i < 24; i += 3 {
			bl := Block{Index: int(int8(data[i])), Data: make([]byte, int(data[i+1])%40)}
			rng.Read(bl.Data)
			garbage = append(garbage, bl)
		}
		_, _ = c.Decode(garbage, len(data)) // must not panic
		// Real encode, fuzz-driven subset + duplicates, then decode.
		chunk := make([]byte, len(data)+1)
		copy(chunk, data)
		blocks, err := c.Encode(chunk)
		if err != nil {
			t.Fatal(err)
		}
		sub := make([]Block, 0, len(blocks))
		for i, b := range blocks {
			if len(data) == 0 || data[i%len(data)]%4 != 0 { // keep ~75%
				sub = append(sub, b)
			}
			if len(data) > 0 && data[i%len(data)]%5 == 0 {
				sub = append(sub, b) // duplicate
			}
		}
		got, err := c.Decode(sub, len(chunk))
		if err == nil && !bytes.Equal(got, chunk) {
			t.Fatalf("n=%d sched=%s: decode claimed success with wrong bytes", n, sched.Name())
		}
	})
}

// FuzzScheduleRoundTrip fuzzes the schedule parameter space: window
// fraction, code size, and chunk bytes. The code's guarantee is
// probabilistic *and rateless*: the stored set decodes with high
// probability, and on the rare rank-deficient draw a reader fetches
// freshly minted check blocks until it succeeds. The property checked
// is that guarantee — decode must succeed within 2·n' extra fresh
// blocks, and the output must match. n is kept ≥ 8 because tiny codes
// are genuinely degenerate (at n' = 2 every degree-2 check repeats the
// single outer-code equation, so no block set pins the message), which
// is a property of the construction, not a decoder bug.
func FuzzScheduleRoundTrip(f *testing.F) {
	f.Add(uint8(12), uint8(32), []byte("round trip me"))
	f.Add(uint8(100), uint8(1), []byte{})
	f.Add(uint8(50), uint8(200), bytes.Repeat([]byte{7}, 64))
	f.Fuzz(func(t *testing.T, pct, nRaw uint8, data []byte) {
		frac := float64(int(pct)%100+1) / 100
		n := int(nRaw)%96 + 8
		c, err := NewOnline(n, OnlineOpts{Eps: 0.25, Surplus: 0.35, Seed: int64(pct) + 1, Schedule: Windowed(frac)})
		if err != nil {
			t.Fatal(err)
		}
		chunk := append([]byte{}, data...)
		blocks, err := c.Encode(chunk)
		if err != nil {
			t.Fatal(err)
		}
		extraCap := 2 * (n + c.NumAux())
		var got []byte
		for {
			got, err = c.Decode(blocks, len(chunk))
			if err == nil {
				break
			}
			if len(blocks) >= c.EncodedBlocks()+extraCap {
				t.Fatalf("n=%d frac=%.2f: still undecodable after %d fresh blocks: %v",
					n, frac, extraCap, err)
			}
			fb, err := c.FreshBlock(chunk, len(blocks))
			if err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks, fb)
		}
		if !bytes.Equal(got, chunk) {
			t.Fatalf("n=%d frac=%.2f: round-trip mismatch", n, frac)
		}
	})
}
