package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// kernelLens covers the word-loop edges: empty, sub-word, word-aligned,
// word+1, the 32-byte unroll boundary, and odd block-ish sizes.
var kernelLens = []int{0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255, 1021, 1024}

func TestXorKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range kernelLens {
		for trial := 0; trial < 8; trial++ {
			dst := make([]byte, n)
			src := make([]byte, n)
			rng.Read(dst)
			rng.Read(src)
			want := append([]byte(nil), dst...)
			got := append([]byte(nil), dst...)
			scalarKernels.xorInto(want, src)
			fastKernels.xorInto(got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("len %d: word-wise xor disagrees with scalar", n)
			}
		}
	}
}

func TestGFMulSliceKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	coeffs := []byte{0, 1, 2, 3, 0x1d, 0x80, 0xff}
	for i := 0; i < 8; i++ {
		coeffs = append(coeffs, byte(rng.Intn(256)))
	}
	for _, n := range kernelLens {
		for _, c := range coeffs {
			dst := make([]byte, n)
			src := make([]byte, n)
			rng.Read(dst)
			rng.Read(src)
			want := append([]byte(nil), dst...)
			got := append([]byte(nil), dst...)
			scalarKernels.gfMulSlice(want, src, c)
			fastKernels.gfMulSlice(got, src, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("len %d coeff %#02x: nibble-table product disagrees with scalar", n, c)
			}
		}
	}
}

// TestNibbleTablesMatchGFMul pins the table construction to the field's
// scalar multiply for every (coefficient, byte) pair.
func TestNibbleTablesMatchGFMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		for b := 0; b < 256; b++ {
			want := gfMul(byte(c), byte(b))
			got := gfMulLow[c][b&0x0f] ^ gfMulHigh[c][b>>4]
			if got != want {
				t.Fatalf("tables: %#02x·%#02x = %#02x, want %#02x", c, b, got, want)
			}
		}
	}
}

func TestXorIntoZeroAllocs(t *testing.T) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	if n := testing.AllocsPerRun(100, func() { xorInto(dst, src) }); n != 0 {
		t.Fatalf("xorInto allocates %v per run, want 0", n)
	}
}

func TestGFMulSliceZeroAllocs(t *testing.T) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	if n := testing.AllocsPerRun(100, func() { gfMulSlice(dst, src, 0x53) }); n != 0 {
		t.Fatalf("gfMulSlice allocates %v per run, want 0", n)
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	b := getBuf(100)
	if len(b) != 100 {
		t.Fatalf("getBuf len = %d", len(b))
	}
	for _, v := range b {
		if v != 0 {
			t.Fatal("getBuf returned a dirty buffer")
		}
	}
	b[0] = 0xaa
	putBuf(b)
	// A re-get at the same size must come back zeroed again.
	c := getBuf(100)
	for _, v := range c {
		if v != 0 {
			t.Fatal("pooled buffer not re-zeroed")
		}
	}
	putBuf(c)
	putBuf(nil) // zero-cap put is a no-op, not a panic
}

func BenchmarkXorInto4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		xorInto(dst, src)
	}
}

func BenchmarkXorIntoScalar4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		xorIntoScalar(dst, src)
	}
}

func BenchmarkGFMulSlice4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		gfMulSlice(dst, src, 0x53)
	}
}

func BenchmarkGFMulSliceScalar4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		gfMulSliceScalar(dst, src, 0x53)
	}
}
