package erasure

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
)

// kernelLens covers the vector/word loop edges: empty, sub-word,
// word-aligned, word+1, the 32-byte SIMD group boundary, the 64- and
// 128-byte unroll boundaries, and odd block-ish sizes.
var kernelLens = []int{0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129, 255, 1021, 1024}

// kernelOffsets shifts inputs off natural alignment so the unaligned
// head/tail paths of the SIMD kernels are exercised.
var kernelOffsets = []int{0, 1, 3, 7}

// unaligned returns a length-n random slice starting off bytes into its
// backing array.
func unaligned(rng *rand.Rand, n, off int) []byte {
	b := make([]byte, n+off)
	rng.Read(b)
	return b[off : off+n : off+n]
}

// TestKernelsAgree cross-checks every registered implementation
// (portable word/nibble kernels plus, when the CPU supports it, the
// SIMD set) against the byte-at-a-time scalar reference, on random
// data over edge-case lengths and unaligned heads.
func TestKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	coeffs := []byte{0, 1, 2, 3, 0x1d, 0x80, 0xff}
	for i := 0; i < 8; i++ {
		coeffs = append(coeffs, byte(rng.Intn(254)+2))
	}
	for _, ks := range kernelSetsForTest[1:] { // [0] is the reference itself
		t.Run(ks.name, func(t *testing.T) {
			for _, n := range kernelLens {
				for _, off := range kernelOffsets {
					dst := unaligned(rng, n, off)
					src := unaligned(rng, n, off+1) // src and dst mutually misaligned
					want := append([]byte(nil), dst...)
					got := append([]byte(nil), dst...)

					scalarKernels.xorInto(want, src)
					ks.xorInto(got, src)
					if !bytes.Equal(got, want) {
						t.Fatalf("xorInto len %d off %d disagrees with scalar", n, off)
					}

					for _, c := range coeffs {
						copy(want, dst)
						copy(got, dst)
						scalarKernels.gfMul(want, src, c)
						ks.gfMul(got, src, c)
						if !bytes.Equal(got, want) {
							t.Fatalf("gfMul len %d off %d coeff %#02x disagrees with scalar", n, off, c)
						}
						copy(want, dst)
						copy(got, dst)
						scalarKernels.gfMulXor(want, src, c)
						ks.gfMulXor(got, src, c)
						if !bytes.Equal(got, want) {
							t.Fatalf("gfMulXor len %d off %d coeff %#02x disagrees with scalar", n, off, c)
						}
					}
				}
			}
		})
	}
}

// TestXorBlocksAgree checks the fused N-source XOR against the scalar
// reference for every source count that exercises the 4/2/1 grouping,
// with mutually misaligned sources.
func TestXorBlocksAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, ks := range kernelSetsForTest[1:] {
		t.Run(ks.name, func(t *testing.T) {
			for _, n := range kernelLens {
				for nsrc := 0; nsrc <= 9; nsrc++ {
					dst := unaligned(rng, n, 1)
					srcs := make([][]byte, nsrc)
					for i := range srcs {
						srcs[i] = unaligned(rng, n, i%5)
					}
					want := append([]byte(nil), dst...)
					got := append([]byte(nil), dst...)
					scalarKernels.xorBlocks(want, srcs)
					ks.xorBlocks(got, srcs)
					if !bytes.Equal(got, want) {
						t.Fatalf("xorBlocks len %d nsrc %d disagrees with scalar", n, nsrc)
					}
					copy(want, dst)
					copy(got, dst)
					scalarKernels.xorBlocksSet(want, srcs)
					ks.xorBlocksSet(got, srcs)
					if !bytes.Equal(got, want) {
						t.Fatalf("xorBlocksSet len %d nsrc %d disagrees with scalar", n, nsrc)
					}
				}
			}
		})
	}
}

// TestNibbleTablesMatchGFMul pins the table construction to the field's
// scalar multiply for every (coefficient, byte) pair.
func TestNibbleTablesMatchGFMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		for b := 0; b < 256; b++ {
			want := gfMul(byte(c), byte(b))
			got := gfMulTab[c][b&0x0f] ^ gfMulTab[c][16+(b>>4)]
			if got != want {
				t.Fatalf("tables: %#02x·%#02x = %#02x, want %#02x", c, b, got, want)
			}
		}
	}
}

// TestKernelImpl sanity-checks the dispatch report against the sets a
// build can carry.
func TestKernelImpl(t *testing.T) {
	switch tier := KernelTier(); tier {
	case "portable", "avx2", "avx512", "gfni", "neon", "scalar":
	default:
		t.Fatalf("KernelTier() = %q, want a registered tier name", tier)
	}
	if impl := KernelImpl(); !strings.HasPrefix(impl, KernelTier()) {
		t.Fatalf("KernelImpl() = %q does not lead with the tier %q", impl, KernelTier())
	}
	// Registered tiers must be resolvable by name (the PS_KERNELS /
	// forceKernels lookup path).
	for _, ks := range kernelSetsForTest {
		if _, ok := kernelByName(ks.name); !ok {
			t.Fatalf("kernelByName(%q) not resolvable", ks.name)
		}
	}
}

// TestKernelOverrideHonored asserts that when PS_KERNELS names a tier
// this build/CPU carries, dispatch actually selected it — the assertion
// that gives the CI kernel-matrix legs their teeth. Without PS_KERNELS
// (or with an unavailable tier, e.g. gfni on an AVX2-only runner) it
// verifies the fallback kept the best tier and the report says so.
func TestKernelOverrideHonored(t *testing.T) {
	req := os.Getenv("PS_KERNELS")
	if req == "" {
		t.Skip("PS_KERNELS not set")
	}
	if _, ok := kernelByName(req); ok {
		want := req
		if want == "noasm" {
			want = "portable"
		}
		if KernelTier() != want {
			t.Fatalf("PS_KERNELS=%s but active tier is %q", req, KernelTier())
		}
		if !strings.Contains(KernelImpl(), "forced: PS_KERNELS="+req) {
			t.Fatalf("KernelImpl() = %q does not report the honored override", KernelImpl())
		}
		return
	}
	if !strings.Contains(KernelImpl(), "PS_KERNELS="+req+" unavailable") {
		t.Fatalf("KernelImpl() = %q does not report the unavailable override", KernelImpl())
	}
}

// TestForceKernels exercises the test-forcing hook across every tier
// name, including the ones this build cannot run (must report !ok, not
// misdispatch), and proves restore() puts the hot set back.
func TestForceKernels(t *testing.T) {
	orig := KernelTier()
	for _, name := range []string{"portable", "noasm", "scalar", "avx2", "avx512", "gfni", "neon"} {
		restore, ok := forceKernels(name)
		if !ok {
			if _, resolvable := kernelByName(name); resolvable {
				t.Fatalf("forceKernels(%q) refused a resolvable tier", name)
			}
			continue
		}
		want := name
		if name == "noasm" {
			want = "portable"
		}
		if KernelTier() != want {
			t.Fatalf("forceKernels(%q): active tier %q", name, KernelTier())
		}
		// The forced set must actually compute: a tiny round trip.
		dst, src := make([]byte, 96), make([]byte, 96)
		for i := range src {
			src[i] = byte(i * 7)
		}
		gfMulSet(dst, src, 0x1d)
		gfMulXor(dst, src, 0x8e)
		want2, got2 := make([]byte, 96), dst
		scalarKernels.gfMul(want2, src, 0x1d)
		scalarKernels.gfMulXor(want2, src, 0x8e)
		if !bytes.Equal(got2, want2) {
			t.Fatalf("forceKernels(%q): kernels disagree with scalar", name)
		}
		restore()
		if KernelTier() != orig {
			t.Fatalf("restore after %q left tier %q, want %q", name, KernelTier(), orig)
		}
	}
	if _, ok := forceKernels("no-such-tier"); ok {
		t.Fatal("forceKernels accepted an unknown tier")
	}
}

func TestKernelWrappersZeroAllocs(t *testing.T) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	srcs := [][]byte{src, dst[:len(src)], src, src, src}
	cases := []struct {
		name string
		fn   func()
	}{
		{"xorInto", func() { xorInto(dst, src) }},
		{"xorBlocks", func() { xorBlocks(dst, srcs) }},
		{"gfMulSet", func() { gfMulSet(dst, src, 0x53) }},
		{"gfMulXor", func() { gfMulXor(dst, src, 0x53) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s allocates %v per run, want 0", tc.name, n)
		}
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	b := getBuf(100)
	if len(b) != 100 {
		t.Fatalf("getBuf len = %d", len(b))
	}
	for _, v := range b {
		if v != 0 {
			t.Fatal("getBuf returned a dirty buffer")
		}
	}
	b[0] = 0xaa
	putBuf(b)
	// A re-get at the same size must come back zeroed again.
	c := getBuf(100)
	for _, v := range c {
		if v != 0 {
			t.Fatal("pooled buffer not re-zeroed")
		}
	}
	putBuf(c)
	putBuf(nil) // zero-cap put is a no-op, not a panic
}

func BenchmarkXorInto4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		xorInto(dst, src)
	}
}

func BenchmarkXorIntoScalar4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		xorIntoScalar(dst, src)
	}
}

func BenchmarkXorIntoWords4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		xorIntoWords(dst, src)
	}
}

// BenchmarkXorBlocks4KB measures the fused N-source XOR against N
// one-source passes at the online code's typical fan-in.
func BenchmarkXorBlocks4KB(b *testing.B) {
	for _, nsrc := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("srcs%d", nsrc), func(b *testing.B) {
			dst := make([]byte, 4096)
			srcs := make([][]byte, nsrc)
			for i := range srcs {
				srcs[i] = make([]byte, 4096)
			}
			b.SetBytes(int64(4096 * nsrc))
			for i := 0; i < b.N; i++ {
				xorBlocks(dst, srcs)
			}
		})
	}
}

func BenchmarkGFMulSet4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		gfMulSet(dst, src, 0x53)
	}
}

func BenchmarkGFMulXor4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		gfMulXor(dst, src, 0x53)
	}
}

func BenchmarkGFMulXorScalar4KB(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		gfMulXorScalar(dst, src, 0x53)
	}
}
