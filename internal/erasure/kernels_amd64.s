//go:build amd64 && !noasm

// AVX2 erasure kernels. Contract (enforced by the Go wrappers in
// kernels_asm.go): n is a multiple of 32 and every pointed-to range is
// at least n bytes long. All loads/stores are unaligned (VMOVDQU), so
// callers may pass slices at any offset. The GF(256) kernels take tab =
// &gfMulTab[c][0]: 16 low-nibble products then 16 high-nibble products,
// broadcast to both YMM lanes for VPSHUFB (klauspost/reedsolomon
// technique).

#include "textflag.h"

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $32

// func xorIntoBulk(dst, src *byte, n int)
// dst ^= src, 128 bytes per main iteration.
TEXT ·xorIntoBulk(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ CX, DX
	SHRQ $7, DX
	JZ   xi_tail32

xi_loop128:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VPXOR   64(DI), Y2, Y2
	VPXOR   96(DI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	DECQ    DX
	JNZ     xi_loop128

xi_tail32:
	ANDQ $127, CX
	SHRQ $5, CX
	JZ   xi_done

xi_loop32:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     xi_loop32

xi_done:
	VZEROUPPER
	RET

// func xorAcc2Bulk(dst, a, b *byte, n int)
// dst ^= a ^ b in one pass over dst, 64 bytes per main iteration.
TEXT ·xorAcc2Bulk(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $6, DX
	JZ   x2_tail32

x2_loop64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, R8
	ADDQ    $64, DI
	DECQ    DX
	JNZ     x2_loop64

x2_tail32:
	ANDQ $63, CX
	SHRQ $5, CX
	JZ   x2_done
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)

x2_done:
	VZEROUPPER
	RET

// func xorAcc4Bulk(dst, a, b, c, d *byte, n int)
// dst ^= a ^ b ^ c ^ d in one pass over dst, 64 bytes per main
// iteration — five read streams and one write stream instead of the
// twelve streams four separate xorInto passes would move.
TEXT ·xorAcc4Bulk(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ c+24(FP), R9
	MOVQ d+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ CX, DX
	SHRQ $6, DX
	JZ   x4_tail32

x4_loop64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VPXOR   (R9), Y0, Y0
	VPXOR   32(R9), Y1, Y1
	VPXOR   (R10), Y0, Y0
	VPXOR   32(R10), Y1, Y1
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, R8
	ADDQ    $64, R9
	ADDQ    $64, R10
	ADDQ    $64, DI
	DECQ    DX
	JNZ     x4_loop64

x4_tail32:
	ANDQ $63, CX
	SHRQ $5, CX
	JZ   x4_done
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VPXOR   (R9), Y0, Y0
	VPXOR   (R10), Y0, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)

x4_done:
	VZEROUPPER
	RET

// func xorSet2Bulk(dst, a, b *byte, n int)
// dst = a ^ b: overwrite form, no dst read, 64 bytes per main
// iteration.
TEXT ·xorSet2Bulk(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $6, DX
	JZ   s2_tail32

s2_loop64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, R8
	ADDQ    $64, DI
	DECQ    DX
	JNZ     s2_loop64

s2_tail32:
	ANDQ $63, CX
	SHRQ $5, CX
	JZ   s2_done
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VMOVDQU Y0, (DI)

s2_done:
	VZEROUPPER
	RET

// func xorSet4Bulk(dst, a, b, c, d *byte, n int)
// dst = a ^ b ^ c ^ d: overwrite form, no dst read, 64 bytes per main
// iteration.
TEXT ·xorSet4Bulk(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ c+24(FP), R9
	MOVQ d+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ CX, DX
	SHRQ $6, DX
	JZ   s4_tail32

s4_loop64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VPXOR   (R9), Y0, Y0
	VPXOR   32(R9), Y1, Y1
	VPXOR   (R10), Y0, Y0
	VPXOR   32(R10), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, R8
	ADDQ    $64, R9
	ADDQ    $64, R10
	ADDQ    $64, DI
	DECQ    DX
	JNZ     s4_loop64

s4_tail32:
	ANDQ $63, CX
	SHRQ $5, CX
	JZ   s4_done
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VPXOR   (R9), Y0, Y0
	VPXOR   (R10), Y0, Y0
	VMOVDQU Y0, (DI)

s4_done:
	VZEROUPPER
	RET

// func gfMulBulk(dst, src *byte, n int, tab *byte)
// dst = c·src via PSHUFB nibble lookups, 64 bytes per main iteration.
TEXT ·gfMulBulk(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), AX
	VBROADCASTI128 (AX), Y14       // low-nibble products in both lanes
	VBROADCASTI128 16(AX), Y15     // high-nibble products
	VMOVDQU nibbleMask<>(SB), Y13
	MOVQ CX, DX
	SHRQ $6, DX
	JZ   gm_tail32

gm_loop64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPSRLW  $4, Y0, Y2
	VPSRLW  $4, Y1, Y3
	VPAND   Y13, Y0, Y0
	VPAND   Y13, Y1, Y1
	VPAND   Y13, Y2, Y2
	VPAND   Y13, Y3, Y3
	VPSHUFB Y0, Y14, Y0
	VPSHUFB Y1, Y14, Y1
	VPSHUFB Y2, Y15, Y2
	VPSHUFB Y3, Y15, Y3
	VPXOR   Y2, Y0, Y0
	VPXOR   Y3, Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    DX
	JNZ     gm_loop64

gm_tail32:
	ANDQ $63, CX
	SHRQ $5, CX
	JZ   gm_done
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y2
	VPAND   Y13, Y0, Y0
	VPAND   Y13, Y2, Y2
	VPSHUFB Y0, Y14, Y0
	VPSHUFB Y2, Y15, Y2
	VPXOR   Y2, Y0, Y0
	VMOVDQU Y0, (DI)

gm_done:
	VZEROUPPER
	RET

// func gfMulXorBulk(dst, src *byte, n int, tab *byte)
// dst ^= c·src: the fused multiply-accumulate, 64 bytes per main
// iteration.
TEXT ·gfMulXorBulk(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), AX
	VBROADCASTI128 (AX), Y14
	VBROADCASTI128 16(AX), Y15
	VMOVDQU nibbleMask<>(SB), Y13
	MOVQ CX, DX
	SHRQ $6, DX
	JZ   gx_tail32

gx_loop64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPSRLW  $4, Y0, Y2
	VPSRLW  $4, Y1, Y3
	VPAND   Y13, Y0, Y0
	VPAND   Y13, Y1, Y1
	VPAND   Y13, Y2, Y2
	VPAND   Y13, Y3, Y3
	VPSHUFB Y0, Y14, Y0
	VPSHUFB Y1, Y14, Y1
	VPSHUFB Y2, Y15, Y2
	VPSHUFB Y3, Y15, Y3
	VPXOR   Y2, Y0, Y0
	VPXOR   Y3, Y1, Y1
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    DX
	JNZ     gx_loop64

gx_tail32:
	ANDQ $63, CX
	SHRQ $5, CX
	JZ   gx_done
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y2
	VPAND   Y13, Y0, Y0
	VPAND   Y13, Y2, Y2
	VPSHUFB Y0, Y14, Y0
	VPSHUFB Y2, Y15, Y2
	VPXOR   Y2, Y0, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)

gx_done:
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
