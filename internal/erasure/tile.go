package erasure

import "sync"

// Cache-blocked gathers.
//
// A chunk-scale online encode is a sparse matrix-vector product over
// GF(2): m check blocks, each the XOR of ~7.6 member blocks drawn from
// the n' composite blocks. Walked check-major (the pre-PR-8 loop), the
// working set is the whole composite message plus the whole output —
// ~8.8 MB at the Table 2 shape — so every member gather misses L2 and
// the encode runs at memory speed, not kernel speed (docs/PERF.md).
//
// The blocked sweep inverts the loop nest along both axes:
//
//   - Byte strips: the outer loop processes [lo:hi) byte ranges of
//     every block, sized so one strip of all sources plus all
//     destinations fits the cache budget. Within a strip each source
//     byte is read from DRAM once, each destination byte written once;
//     across strips the equation structure is re-walked but the data
//     working set is bounded.
//   - Source tiles: within a strip, the compositions are walked in
//     ascending source-block tiles via a per-tile index over the
//     memoized member lists (tilePlan). All references to one tile's
//     sources run back-to-back while those lines are hottest, and the
//     ascending order preserves the hardware prefetcher's streaming.
//
// XOR is associative and commutative, so splitting an equation across
// tiles and strips changes nothing about the bytes produced: tiled
// output is bit-identical to the untiled gather (pinned by
// TestTiledEncodeByteIdentical and the schedule golden hashes). An
// equation's first tile overwrites its destination range
// (xorBlocksSet); later tiles accumulate (xorBlocks). Equations with no
// members are cleared explicitly, exactly as the unblocked
// xorBlocksSet([]) did.

// Blocking knobs, package-wide so the benchmark sweep and the
// byte-identity tests can steer them. The defaults come from the
// tile/strip/fuse sweeps in docs/PERF.md ("Cache blocking and GFNI")
// on a 2 MB-L2 / 260 MB-L3 Xeon, and encode a measured surprise: on
// that part byte strips always lose (the per-strip re-walk of ~16k
// equation refs costs more than the locality buys, because the huge
// shared L3 already holds the whole 8.8 MB working set) while source
// tiles alone are worth ~1.3×. Strips therefore default off; the
// machinery and knob remain for parts whose last-level cache is
// smaller than the encode working set.
var (
	// encStripBudget is the target combined working set (all sources +
	// all destinations) of one byte strip. Strips engage only when the
	// unblocked working set exceeds the budget; <= 0 disables strips
	// entirely (the measured-best default on big-L3 hardware).
	encStripBudget = 0
	// encMinStrip floors the strip size: below ~256 bytes the per-call
	// fixed costs of the kernel wrappers outweigh any locality gain.
	encMinStrip = 256
	// encTileBlocks is the number of source blocks per tile of the
	// per-tile composition index; 0 disables tiling (one tile spans all
	// sources). 512 blocks × 1 KB keeps a tile's sources inside a 2 MB
	// L2 alongside the destination stream.
	encTileBlocks = 512
	// encTileFuseMax keeps equations of at most this many members whole
	// — one fully-fused ref in their first member's tile — instead of
	// splitting them per tile. Splitting a degree-2 equation trades one
	// fused xorSet2 for a copy plus an xorInto, so fusing the short
	// equations looks attractive on paper; measured, full splitting
	// (fuse 0) wins on the big-L3 Xeon because the split runs are
	// tile-local singletons served by the copy/xorInto fast path while
	// fused refs gather cold, scattered sources. 0 — the default —
	// splits everything.
	encTileFuseMax = 0
)

// stripBytesFor sizes the byte strip for a blocked gather over nSrc
// source and nDst destination blocks of bs bytes each: the whole block
// when the working set already fits the budget, otherwise the largest
// 64-byte multiple that does (floored by encMinStrip).
func stripBytesFor(nSrc, nDst, bs int) int {
	total := nSrc + nDst
	if bs <= 0 || total <= 0 || encStripBudget <= 0 || total*bs <= encStripBudget {
		return bs
	}
	s := (encStripBudget / total) &^ 63
	if s < encMinStrip {
		s = encMinStrip
	}
	if s > bs {
		s = bs
	}
	return s
}

// tileBlocksFor resolves the encTileBlocks knob against a source count.
func tileBlocksFor(nSrc int) int {
	tb := encTileBlocks
	if tb <= 0 || tb > nSrc {
		tb = nSrc
	}
	if tb < 1 {
		tb = 1
	}
	return tb
}

// tileRef names the run of one equation's (sorted) member list that
// falls inside one source tile. members aliases the plan's shared flat
// index array — the per-run member list is baked into the plan so the
// hot loop never chases back into the [][]int equation structure.
type tileRef struct {
	eq      int32
	first   bool // the equation's first run: overwrite dst, don't accumulate
	members []int32
}

// tilePlan is the per-tile index over a memoized equation structure.
// It refers to block indices only — independent of the block size — so
// one plan serves every Encode/FreshBlock call of an Online value.
type tilePlan struct {
	tileBlocks int
	tiles      [][]tileRef
	empty      []int32 // equations with no members: dst is cleared
}

// newTilePlan indexes equations (ascending member lists over sources
// 0..nSrc-1) by tiles of tileBlocks sources. Equations short enough to
// fuse whole (encTileFuseMax) land as a single ref in their first
// member's tile. All member runs share one flat int32 backing array,
// sized up front so the per-run slices never reallocate (reallocation
// would break the aliasing).
func newTilePlan(members [][]int, nSrc, tileBlocks int) *tilePlan {
	nt := (nSrc + tileBlocks - 1) / tileBlocks
	if nt < 1 {
		nt = 1
	}
	total := 0
	for _, ms := range members {
		total += len(ms)
	}
	flat := make([]int32, 0, total)
	run := func(ms []int) []int32 {
		start := len(flat)
		for _, m := range ms {
			flat = append(flat, int32(m))
		}
		return flat[start:len(flat):len(flat)]
	}
	p := &tilePlan{tileBlocks: tileBlocks, tiles: make([][]tileRef, nt)}
	for e, ms := range members {
		if len(ms) == 0 {
			p.empty = append(p.empty, int32(e))
			continue
		}
		if len(ms) <= encTileFuseMax {
			ti := ms[0] / tileBlocks
			p.tiles[ti] = append(p.tiles[ti], tileRef{eq: int32(e), first: true, members: run(ms)})
			continue
		}
		for lo := 0; lo < len(ms); {
			ti := ms[lo] / tileBlocks
			end := (ti + 1) * tileBlocks
			hi := lo + 1
			for hi < len(ms) && ms[hi] < end {
				hi++
			}
			p.tiles[ti] = append(p.tiles[ti], tileRef{eq: int32(e), first: lo == 0, members: run(ms[lo:hi])})
			lo = hi
		}
	}
	return p
}

// planCache lazily builds and caches the tilePlan for one equation
// structure, rebuilding only when the tile knob changes (the bench
// sweep). Online values are documented safe for concurrent use, so the
// build is mutex-guarded.
type planCache struct {
	mu   sync.Mutex
	tb   int
	fuse int
	plan *tilePlan
}

func (pc *planCache) get(members [][]int, nSrc, tileBlocks int) *tilePlan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.plan == nil || pc.tb != tileBlocks || pc.fuse != encTileFuseMax {
		pc.plan = newTilePlan(members, nSrc, tileBlocks)
		pc.tb = tileBlocks
		pc.fuse = encTileFuseMax
	}
	return pc.plan
}

// applyTilePlan runs the blocked gather: dsts[e] = XOR of the plan's
// member sources for every equation, walked strip by strip and tile by
// tile. srcs is caller-owned gather scratch, returned grown so
// steady-state callers stay allocation-free. The strips-off common
// case (one strip spanning the whole block) skips the per-ref
// subslicing entirely — destinations and sources are used as-is.
func applyTilePlan(p *tilePlan, dsts, sources [][]byte, bs, stripBytes int, srcs *[][]byte) {
	for _, e := range p.empty {
		clear(dsts[e])
	}
	if bs <= 0 {
		return
	}
	sc := *srcs
	if stripBytes <= 0 || stripBytes >= bs {
		for _, tile := range p.tiles {
			for _, ref := range tile {
				d := dsts[ref.eq]
				ms := ref.members
				if len(ms) == 1 {
					// Split runs are often singletons; skip the batch
					// slice and its per-source dispatch loop.
					if ref.first {
						copy(d, sources[ms[0]])
					} else {
						xorInto(d, sources[ms[0]])
					}
					continue
				}
				sc = sc[:0]
				for _, ci := range ms {
					sc = append(sc, sources[ci])
				}
				if ref.first {
					xorBlocksSet(d, sc)
				} else {
					xorBlocks(d, sc)
				}
			}
		}
		*srcs = sc
		return
	}
	for lo := 0; lo < bs; lo += stripBytes {
		hi := lo + stripBytes
		if hi > bs {
			hi = bs
		}
		for _, tile := range p.tiles {
			for _, ref := range tile {
				d := dsts[ref.eq][lo:hi:hi]
				ms := ref.members
				if len(ms) == 1 {
					s := sources[ms[0]][lo:hi:hi]
					if ref.first {
						copy(d, s)
					} else {
						xorInto(d, s)
					}
					continue
				}
				sc = sc[:0]
				for _, ci := range ms {
					sc = append(sc, sources[ci][lo:hi:hi])
				}
				if ref.first {
					xorBlocksSet(d, sc)
				} else {
					xorBlocks(d, sc)
				}
			}
		}
	}
	*srcs = sc
}
