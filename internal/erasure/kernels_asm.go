//go:build (amd64 || arm64) && !noasm

package erasure

// SIMD kernel wrappers shared by the amd64 (AVX2) and arm64 (NEON)
// assembly back ends. The assembly routines consume whole 32-byte
// groups (`bulkStep`); the wrappers below hand the sub-group tail to
// the portable word/nibble kernels, so any length and any alignment is
// accepted — VMOVDQU/VLD1 make unaligned heads free. Build with
// `-tags noasm` to compile this file out and fall back to the portable
// kernels everywhere (kernels.go documents the full dispatch order).

// bulkStep is the byte granularity of the assembly inner loops.
const bulkStep = 32

// The raw assembly entry points. n must be a multiple of bulkStep;
// every pointed-to range must be at least n bytes. tab points at the
// 32-byte nibble product table gfMulTab[c] (low 16 bytes, high 16).
//
//go:noescape
func xorIntoBulk(dst, src *byte, n int)

//go:noescape
func xorAcc2Bulk(dst, a, b *byte, n int)

//go:noescape
func xorAcc4Bulk(dst, a, b, c, d *byte, n int)

//go:noescape
func xorSet2Bulk(dst, a, b *byte, n int)

//go:noescape
func xorSet4Bulk(dst, a, b, c, d *byte, n int)

//go:noescape
func gfMulBulk(dst, src *byte, n int, tab *byte)

//go:noescape
func gfMulXorBulk(dst, src *byte, n int, tab *byte)

func xorIntoSIMD(dst, src []byte) {
	n := len(dst) &^ (bulkStep - 1)
	if n > 0 {
		xorIntoBulk(&dst[0], &src[0], n)
	}
	if n < len(dst) {
		xorIntoWords(dst[n:], src[n:len(dst)])
	}
}

// xorBlocksSIMD folds sources four (then two) at a time through the
// fused multi-source kernels: one read and one write of dst per group
// instead of per source.
func xorBlocksSIMD(dst []byte, srcs [][]byte) {
	n := len(dst) &^ (bulkStep - 1)
	i := 0
	if n > 0 {
		d := &dst[0]
		for ; i+4 <= len(srcs); i += 4 {
			xorAcc4Bulk(d, &srcs[i][0], &srcs[i+1][0], &srcs[i+2][0], &srcs[i+3][0], n)
		}
		if i+2 <= len(srcs) {
			xorAcc2Bulk(d, &srcs[i][0], &srcs[i+1][0], n)
			i += 2
		}
		if i < len(srcs) {
			xorIntoBulk(d, &srcs[i][0], n)
			i++
		}
	}
	if n < len(dst) {
		for _, s := range srcs {
			xorIntoWords(dst[n:], s[n:len(dst)])
		}
	}
}

// xorBlocksSetSIMD is the overwrite form: the first source group is
// written straight over dst (no dst read, no zeroing pass), then the
// rest accumulate as in xorBlocksSIMD.
func xorBlocksSetSIMD(dst []byte, srcs [][]byte) {
	switch {
	case len(srcs) == 0:
		clear(dst)
		return
	case len(srcs) == 1:
		copy(dst, srcs[0])
		return
	}
	n := len(dst) &^ (bulkStep - 1)
	i := 0
	if n > 0 {
		d := &dst[0]
		if len(srcs) >= 4 {
			xorSet4Bulk(d, &srcs[0][0], &srcs[1][0], &srcs[2][0], &srcs[3][0], n)
			i = 4
		} else {
			xorSet2Bulk(d, &srcs[0][0], &srcs[1][0], n)
			i = 2
		}
		for ; i+4 <= len(srcs); i += 4 {
			xorAcc4Bulk(d, &srcs[i][0], &srcs[i+1][0], &srcs[i+2][0], &srcs[i+3][0], n)
		}
		if i+2 <= len(srcs) {
			xorAcc2Bulk(d, &srcs[i][0], &srcs[i+1][0], n)
			i += 2
		}
		if i < len(srcs) {
			xorIntoBulk(d, &srcs[i][0], n)
			i++
		}
	}
	if n < len(dst) {
		xorSet2Words(dst[n:], srcs[0][n:len(dst)], srcs[1][n:len(dst)])
		for _, s := range srcs[2:] {
			xorIntoWords(dst[n:], s[n:len(dst)])
		}
	}
}

func gfMulSIMD(dst, src []byte, c byte) {
	if c == 0 {
		clear(dst[:len(src)])
		return
	}
	if c == 1 {
		copy(dst[:len(src)], src)
		return
	}
	n := len(src) &^ (bulkStep - 1)
	if n > 0 {
		gfMulBulk(&dst[0], &src[0], n, &gfMulTab[c][0])
	}
	if n < len(src) {
		gfMulNibble(dst[n:], src[n:], c)
	}
}

func gfMulXorSIMD(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorIntoSIMD(dst[:len(src)], src)
		return
	}
	n := len(src) &^ (bulkStep - 1)
	if n > 0 {
		gfMulXorBulk(&dst[0], &src[0], n, &gfMulTab[c][0])
	}
	if n < len(src) {
		gfMulXorNibble(dst[n:], src[n:], c)
	}
}

var simdKernels = kernelSet{simdName, xorIntoSIMD, xorBlocksSIMD, xorBlocksSetSIMD, gfMulSIMD, gfMulXorSIMD}

func init() {
	// archKernelSets (kernels_amd64.go / kernels_arm64.go) probes the
	// CPU and returns every tier it can run, in ascending preference
	// order; the best becomes the hot set unless PS_KERNELS overrides.
	for _, ks := range archKernelSets() {
		hotKernels = ks
		kernelSetsForTest = append(kernelSetsForTest, ks)
	}
	applyKernelOverride()
}
