//go:build arm64 && !noasm

// NEON erasure kernels, mirroring kernels_amd64.s. Contract (enforced
// by the Go wrappers in kernels_asm.go): n is a multiple of 32 and
// every pointed-to range is at least n bytes long. VLD1/VST1 have no
// alignment requirement, so callers may pass slices at any offset. The
// GF(256) kernels take tab = &gfMulTab[c][0]: 16 low-nibble products
// then 16 high-nibble products, looked up per nibble with VTBL
// (klauspost/reedsolomon technique).

#include "textflag.h"

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $16

// func xorIntoBulk(dst, src *byte, n int)
// dst ^= src, 32 bytes per iteration.
TEXT ·xorIntoBulk(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2
	LSR  $5, R2, R2
	CBZ  R2, xi_done

xi_loop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VLD1   (R0), [V2.B16, V3.B16]
	VEOR   V0.B16, V2.B16, V2.B16
	VEOR   V1.B16, V3.B16, V3.B16
	VST1.P [V2.B16, V3.B16], 32(R0)
	SUBS   $1, R2, R2
	BNE    xi_loop

xi_done:
	RET

// func xorAcc2Bulk(dst, a, b *byte, n int)
// dst ^= a ^ b in one pass over dst, 32 bytes per iteration.
TEXT ·xorAcc2Bulk(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3
	LSR  $5, R3, R3
	CBZ  R3, x2_done

x2_loop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VLD1.P 32(R2), [V2.B16, V3.B16]
	VLD1   (R0), [V4.B16, V5.B16]
	VEOR   V0.B16, V4.B16, V4.B16
	VEOR   V1.B16, V5.B16, V5.B16
	VEOR   V2.B16, V4.B16, V4.B16
	VEOR   V3.B16, V5.B16, V5.B16
	VST1.P [V4.B16, V5.B16], 32(R0)
	SUBS   $1, R3, R3
	BNE    x2_loop

x2_done:
	RET

// func xorAcc4Bulk(dst, a, b, c, d *byte, n int)
// dst ^= a ^ b ^ c ^ d in one pass over dst, 32 bytes per iteration.
TEXT ·xorAcc4Bulk(SB), NOSPLIT, $0-48
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD c+24(FP), R3
	MOVD d+32(FP), R4
	MOVD n+40(FP), R5
	LSR  $5, R5, R5
	CBZ  R5, x4_done

x4_loop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VLD1.P 32(R2), [V2.B16, V3.B16]
	VLD1.P 32(R3), [V4.B16, V5.B16]
	VLD1.P 32(R4), [V6.B16, V7.B16]
	VLD1   (R0), [V8.B16, V9.B16]
	VEOR   V0.B16, V2.B16, V0.B16
	VEOR   V1.B16, V3.B16, V1.B16
	VEOR   V4.B16, V6.B16, V4.B16
	VEOR   V5.B16, V7.B16, V5.B16
	VEOR   V0.B16, V4.B16, V0.B16
	VEOR   V1.B16, V5.B16, V1.B16
	VEOR   V0.B16, V8.B16, V8.B16
	VEOR   V1.B16, V9.B16, V9.B16
	VST1.P [V8.B16, V9.B16], 32(R0)
	SUBS   $1, R5, R5
	BNE    x4_loop

x4_done:
	RET

// func xorSet2Bulk(dst, a, b *byte, n int)
// dst = a ^ b: overwrite form, no dst read, 32 bytes per iteration.
TEXT ·xorSet2Bulk(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3
	LSR  $5, R3, R3
	CBZ  R3, s2_done

s2_loop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VLD1.P 32(R2), [V2.B16, V3.B16]
	VEOR   V0.B16, V2.B16, V2.B16
	VEOR   V1.B16, V3.B16, V3.B16
	VST1.P [V2.B16, V3.B16], 32(R0)
	SUBS   $1, R3, R3
	BNE    s2_loop

s2_done:
	RET

// func xorSet4Bulk(dst, a, b, c, d *byte, n int)
// dst = a ^ b ^ c ^ d: overwrite form, no dst read, 32 bytes per
// iteration.
TEXT ·xorSet4Bulk(SB), NOSPLIT, $0-48
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD c+24(FP), R3
	MOVD d+32(FP), R4
	MOVD n+40(FP), R5
	LSR  $5, R5, R5
	CBZ  R5, s4_done

s4_loop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VLD1.P 32(R2), [V2.B16, V3.B16]
	VLD1.P 32(R3), [V4.B16, V5.B16]
	VLD1.P 32(R4), [V6.B16, V7.B16]
	VEOR   V0.B16, V2.B16, V0.B16
	VEOR   V1.B16, V3.B16, V1.B16
	VEOR   V4.B16, V6.B16, V4.B16
	VEOR   V5.B16, V7.B16, V5.B16
	VEOR   V0.B16, V4.B16, V0.B16
	VEOR   V1.B16, V5.B16, V1.B16
	VST1.P [V0.B16, V1.B16], 32(R0)
	SUBS   $1, R5, R5
	BNE    s4_loop

s4_done:
	RET

// func gfMulBulk(dst, src *byte, n int, tab *byte)
// dst = c·src via VTBL nibble lookups, 32 bytes per iteration.
TEXT ·gfMulBulk(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2
	MOVD tab+24(FP), R3
	VLD1 (R3), [V16.B16, V17.B16]  // low-, high-nibble product tables
	MOVD $nibbleMask<>(SB), R4
	VLD1 (R4), [V18.B16]
	LSR  $5, R2, R2
	CBZ  R2, gm_done

gm_loop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VUSHR  $4, V0.B16, V2.B16
	VUSHR  $4, V1.B16, V3.B16
	VAND   V18.B16, V0.B16, V0.B16
	VAND   V18.B16, V1.B16, V1.B16
	VTBL   V0.B16, [V16.B16], V0.B16
	VTBL   V1.B16, [V16.B16], V1.B16
	VTBL   V2.B16, [V17.B16], V2.B16
	VTBL   V3.B16, [V17.B16], V3.B16
	VEOR   V2.B16, V0.B16, V0.B16
	VEOR   V3.B16, V1.B16, V1.B16
	VST1.P [V0.B16, V1.B16], 32(R0)
	SUBS   $1, R2, R2
	BNE    gm_loop

gm_done:
	RET

// func gfMulXorBulk(dst, src *byte, n int, tab *byte)
// dst ^= c·src: the fused multiply-accumulate, 32 bytes per iteration.
TEXT ·gfMulXorBulk(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2
	MOVD tab+24(FP), R3
	VLD1 (R3), [V16.B16, V17.B16]
	MOVD $nibbleMask<>(SB), R4
	VLD1 (R4), [V18.B16]
	LSR  $5, R2, R2
	CBZ  R2, gx_done

gx_loop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VUSHR  $4, V0.B16, V2.B16
	VUSHR  $4, V1.B16, V3.B16
	VAND   V18.B16, V0.B16, V0.B16
	VAND   V18.B16, V1.B16, V1.B16
	VTBL   V0.B16, [V16.B16], V0.B16
	VTBL   V1.B16, [V16.B16], V1.B16
	VTBL   V2.B16, [V17.B16], V2.B16
	VTBL   V3.B16, [V17.B16], V3.B16
	VLD1   (R0), [V4.B16, V5.B16]
	VEOR   V2.B16, V0.B16, V0.B16
	VEOR   V3.B16, V1.B16, V1.B16
	VEOR   V0.B16, V4.B16, V4.B16
	VEOR   V1.B16, V5.B16, V5.B16
	VST1.P [V4.B16, V5.B16], 32(R0)
	SUBS   $1, R2, R2
	BNE    gx_loop

gx_done:
	RET
