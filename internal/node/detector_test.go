package node

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

// fastDetector returns probe knobs scaled for in-process tests: whole
// detection cycles complete in well under a second while keeping the
// direct → indirect → suspect → dead structure intact.
func fastDetector() *DetectorConfig {
	return &DetectorConfig{
		ProbeInterval:    40 * time.Millisecond,
		ProbeTimeout:     150 * time.Millisecond,
		IndirectProbes:   2,
		SuspicionTimeout: 500 * time.Millisecond,
		GossipFanout:     3,
	}
}

// detectorRing starts n detector-enabled nodes with deterministic,
// evenly spaced ring IDs and a full mutual membership view. advertise,
// when non-nil, gives node i's dial address in every view (proxy
// fronting; the node advertises it so gossip never leaks the direct
// address) — the caller points each proxy at servers[i].Addr() after.
// viewFor, when non-nil, overrides individual nodes' initial views
// (nil return keeps the shared one) — how a test hands one node a
// broken route.
func detectorRing(t testing.TB, n int, det *DetectorConfig, rep *RepairConfig,
	advertise []string, viewFor func(i int, shared []wire.NodeInfo) []wire.NodeInfo) ([]*Server, []wire.NodeInfo) {
	t.Helper()
	servers := make([]*Server, n)
	ring := make([]wire.NodeInfo, n)
	for i := 0; i < n; i++ {
		var id ids.ID
		id[0] = byte(i * 256 / n)
		ring[i] = wire.NodeInfo{ID: id}
		opts := ServerOptions{ID: &id, Detector: det, Repair: rep}
		if advertise != nil {
			opts.Advertise = advertise[i]
		}
		s, err := NewServerOpts("127.0.0.1:0", 1<<30, "", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		servers[i] = s
		if advertise != nil {
			ring[i].Addr = advertise[i]
		} else {
			ring[i].Addr = s.Addr()
		}
	}
	for i, s := range servers {
		view := ring
		if viewFor != nil {
			if v := viewFor(i, ring); v != nil {
				view = v
			}
		}
		s.applyAliveInfos(view)
	}
	return servers, ring
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDetectorEvictsDeadNode: a killed node must transit suspect →
// dead in every survivor's view with no manual call, and leave the
// placement ring.
func TestDetectorEvictsDeadNode(t *testing.T) {
	const n = 5
	servers, ring := detectorRing(t, n, fastDetector(), nil, nil, nil)
	victim := n - 1
	servers[victim].Close()

	waitFor(t, 15*time.Second, "death to commit everywhere", func() bool {
		for i, s := range servers {
			if i == victim {
				continue
			}
			st, ok := s.MemberState(ring[victim].ID)
			if !ok || st != wire.StateDead || s.RingSize() != n-1 {
				return false
			}
		}
		return true
	})
}

// TestPingReqResolvesTargetFromOwnView pins the mechanism that defeats
// asymmetric partitions: the helper probes the target at the address
// its OWN membership view holds, not the (broken) one the requester
// carried. With a blackhole route in the request and a good route in
// the view, the indirect probe must succeed; for an unknown target the
// helper has only the broken carried route and must report failure.
func TestPingReqResolvesTargetFromOwnView(t *testing.T) {
	target, err := NewServer("127.0.0.1:0", 1<<30, "")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	hole := newFlakyProxy(t, "", 1, 0)
	hole.setBlackhole(true)

	helper, err := NewServerOpts("127.0.0.1:0", 1<<30, "", ServerOptions{
		StaticRing: []wire.NodeInfo{{ID: target.ID, Addr: target.Addr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer helper.Close()

	resp, err := wire.Call(helper.Addr(), &wire.Request{
		Op:   wire.OpPingReq,
		Node: wire.NodeInfo{ID: target.ID, Addr: hole.addr()}, // requester's broken route
	})
	if err != nil || !resp.OK {
		t.Fatalf("indirect probe with a good own-view route failed: %v (resp %+v)", err, resp)
	}

	var unknown ids.ID
	unknown[0] = 0xEE
	if resp, err := wire.Call(helper.Addr(), &wire.Request{
		Op:   wire.OpPingReq,
		Node: wire.NodeInfo{ID: unknown, Addr: hole.addr()},
	}); err == nil && resp != nil && resp.OK {
		t.Fatal("indirect probe through a blackhole route reported the target alive")
	}
}

// TestDetectorAsymmetricPartitionNoEviction: node 0's route to node 1
// is a blackhole (requests hang), every other pairwise route is fine.
// SWIM's indirect probes must keep node 1 un-evicted: peers confirm it
// on node 0's behalf, so one broken route never condemns a healthy
// node.
func TestDetectorAsymmetricPartitionNoEviction(t *testing.T) {
	const n = 4
	hole := newFlakyProxy(t, "", 2, 0)
	hole.setBlackhole(true)
	det := fastDetector()
	servers, ring := detectorRing(t, n, det, nil, nil,
		func(i int, shared []wire.NodeInfo) []wire.NodeInfo {
			if i != 0 {
				return nil
			}
			broken := append([]wire.NodeInfo(nil), shared...)
			broken[1].Addr = hole.addr() // node 0 cannot reach node 1
			return broken
		})

	// Several suspicion windows of exposure.
	deadline := time.Now().Add(6 * det.SuspicionTimeout)
	for time.Now().Before(deadline) {
		for i, s := range servers {
			if st, ok := s.MemberState(ring[1].ID); ok && st == wire.StateDead {
				t.Fatalf("node %d evicted the asymmetric-partition target", i)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	// The broken route never produced an eviction; node 1 must still be
	// in everyone's placement ring.
	for i, s := range servers {
		if s.RingSize() != n {
			t.Fatalf("node %d ring shrank to %d", i, s.RingSize())
		}
	}
}

// TestDetectorLossyLinksNoEviction: every inter-node route drops ~35%
// of connections (seeded). Probes fail and retry, suspicion may come
// and go, but no healthy node may ever be declared dead.
func TestDetectorLossyLinksNoEviction(t *testing.T) {
	const n = 4
	proxies := make([]*flakyProxy, n)
	advertise := make([]string, n)
	for i := range proxies {
		proxies[i] = newFlakyProxy(t, "", 100+int64(i), time.Millisecond)
		proxies[i].setDropProb(0.35)
		advertise[i] = proxies[i].addr()
	}
	det := fastDetector()
	det.SuspicionTimeout = time.Second
	servers, ring := detectorRing(t, n, det, nil, advertise, nil)
	for i, s := range servers {
		proxies[i].setBackend(s.Addr())
	}

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for i, s := range servers {
			for j := range ring {
				if i == j {
					continue
				}
				if st, ok := s.MemberState(ring[j].ID); ok && st == wire.StateDead {
					t.Fatalf("node %d evicted node %d over a merely lossy link", i, j)
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestForgedSuspicionRefuted: inject a false suspicion about a live
// member. The member must refute it by bumping its incarnation, and no
// node may ever commit the death.
func TestForgedSuspicionRefuted(t *testing.T) {
	const n = 3
	det := fastDetector()
	servers, ring := detectorRing(t, n, det, nil, nil, nil)
	accused := servers[1]

	forged := wire.EncodeUpdates([]wire.MemberUpdate{
		{Node: ring[1], State: wire.StateSuspect, Inc: 0},
	})
	if _, err := wire.Call(servers[0].Addr(), &wire.Request{Op: wire.OpGossip, Data: forged}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 10*time.Second, "refutation to raise the incarnation", func() bool {
		return accused.Incarnation() >= 1
	})
	// Outlive the suspicion window with margin: the refutation must
	// have cleared the suspicion before it could commit anywhere.
	deadline := time.Now().Add(3 * det.SuspicionTimeout)
	for time.Now().Before(deadline) {
		for i, s := range servers {
			if st, ok := s.MemberState(ring[1].ID); ok && st == wire.StateDead {
				t.Fatalf("node %d committed a forged death of a live member", i)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, s := range servers {
		if s.RingSize() != n {
			t.Fatalf("node %d ring shrank to %d after forged suspicion", i, s.RingSize())
		}
	}
}

// TestDetectorOldPeerNotEvicted: a member behind a pre-gossip front
// (answers every probe op with "unknown op") must read as alive —
// reachable but old — and the mixed ring must keep storing and
// fetching.
func TestDetectorOldPeerNotEvicted(t *testing.T) {
	old, err := NewServer("127.0.0.1:0", 1<<30, "")
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	front := startPreBatchFront(t, old.Addr())
	oldInfo := wire.NodeInfo{ID: old.ID, Addr: front}

	const n = 3
	det := fastDetector()
	servers, ring := detectorRing(t, n, det, nil, nil,
		func(i int, shared []wire.NodeInfo) []wire.NodeInfo {
			return append(append([]wire.NodeInfo(nil), shared...), oldInfo)
		})

	deadline := time.Now().Add(6 * det.SuspicionTimeout)
	for time.Now().Before(deadline) {
		for i, s := range servers {
			st, ok := s.MemberState(old.ID)
			if !ok {
				t.Fatalf("node %d dropped the old peer from its table", i)
			}
			if st == wire.StateDead {
				t.Fatalf("node %d evicted a reachable pre-gossip peer", i)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The mixed ring still works end to end.
	view := append(append([]wire.NodeInfo(nil), ring...), oldInfo)
	c := NewStaticClientCfg(view, erasure.MustXOR(2), Config{ChunkCap: 32 << 10})
	defer c.Close()
	data := make([]byte, 120<<10)
	rand.New(rand.NewSource(5)).Read(data)
	if _, err := c.StoreFile("mixed.dat", data); err != nil {
		t.Fatalf("store on mixed ring: %v", err)
	}
	got, err := c.FetchFile("mixed.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch on mixed ring: %v", err)
	}
}

// TestRepairDaemonHealsAfterDeath is the package-level end-to-end of
// the tentpole: a node dies; the detector commits the death; the
// repair daemon re-mints the lost blocks on survivors with zero manual
// Repair/PruneRing calls, until every block of the file is resident
// again under the survivor ring.
func TestRepairDaemonHealsAfterDeath(t *testing.T) {
	const (
		n        = 8
		fileName = "self-heal.dat"
	)
	code := erasure.MustXOR(2)
	det := fastDetector()
	rep := &RepairConfig{
		Code:        code,
		Rate:        -1, // unmetered for the test
		RetryDelay:  100 * time.Millisecond,
		MaxAttempts: 10,
		Client:      Config{Timeout: 2 * time.Second, ChunkCap: 32 << 10},
	}
	servers, ring := detectorRing(t, n, det, rep, nil, nil)

	c := NewStaticClientCfg(ring, code, Config{ChunkCap: 32 << 10, Timeout: 3 * time.Second})
	defer c.Close()
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(11)).Read(data)
	cat, err := c.StoreFile(fileName, data)
	if err != nil {
		t.Fatal(err)
	}
	chunks := cat.NumChunks()
	victim := safeVictim(ring, map[string]int{fileName: chunks},
		code.EncodedBlocks(), code.EncodedBlocks()-code.MinNeeded(), c.Config().CATReplicas)
	if victim < 0 {
		t.Fatal("no safe victim in deterministic placement — adjust node count or file name")
	}
	servers[victim].Close()

	// Survivor view, for the verification client.
	var survivors []wire.NodeInfo
	for i, ninfo := range ring {
		if i != victim {
			survivors = append(survivors, ninfo)
		}
	}
	vc := NewStaticClientCfg(survivors, code, Config{Timeout: 2 * time.Second})
	defer vc.Close()

	var names []string
	for ci := 0; ci < chunks; ci++ {
		if cat.Rows[ci].Empty() {
			continue
		}
		for e := 0; e < code.EncodedBlocks(); e++ {
			names = append(names, core.BlockName(fileName, ci, e))
		}
	}
	for r := 0; r <= c.Config().CATReplicas; r++ {
		names = append(names, core.ReplicaName(core.CATName(fileName), r))
	}

	waitFor(t, 30*time.Second, "autonomous repair to restore full redundancy", func() bool {
		for _, bn := range names {
			if _, err := vc.fetchBlock(context.Background(), bn); err != nil {
				return false
			}
		}
		return true
	})

	// The daemon, not a manual pass, did the work.
	recreated := 0
	var bytesRecreated int64
	for i, s := range servers {
		if i == victim {
			continue
		}
		rpt := s.RepairReport()
		recreated += rpt.BlocksRecreated
		bytesRecreated += rpt.BytesRecreated
	}
	if recreated == 0 || bytesRecreated == 0 {
		t.Fatalf("repair reports show no work: %d blocks, %d bytes", recreated, bytesRecreated)
	}

	// And the file itself reads back intact through the healed ring.
	got, err := vc.FetchFile(fileName)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch after autonomous repair: %v", err)
	}
}

// TestStatExtReportsMembership: the OpStat JSON extension must carry
// the member-state counts and repair-queue depth to StatNodeCtx.
func TestStatExtReportsMembership(t *testing.T) {
	const n = 3
	servers, _ := detectorRing(t, n, fastDetector(), nil, nil, nil)
	c := NewStaticClientCfg(nil, erasure.MustXOR(2), Config{})
	defer c.Close()
	st, err := c.StatNodeCtx(context.Background(), servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if st.Alive != n {
		t.Fatalf("stat ext alive = %d, want %d", st.Alive, n)
	}
	if st.Suspect != 0 || st.Dead != 0 || st.RepairQueue != 0 {
		t.Fatalf("unexpected nonzero ext fields: %+v", st)
	}
}
