package node

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/grid"
	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

// startRing launches n in-process TCP nodes and returns them with the
// seed address.
func startRing(t testing.TB, n int, capacity int64) ([]*Server, string) {
	t.Helper()
	var servers []*Server
	seed := ""
	for i := 0; i < n; i++ {
		s, err := NewServer("127.0.0.1:0", capacity, seed)
		if err != nil {
			t.Fatal(err)
		}
		if seed == "" {
			seed = s.Addr()
		}
		servers = append(servers, s)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	// Join broadcasts are asynchronous; wait briefly for convergence.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, s := range servers {
			if s.RingSize() != n {
				all = false
			}
		}
		if all {
			return servers, seed
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Heal any missed broadcasts through explicit ring pulls before
	// giving up.
	for _, s := range servers {
		if s.RingSize() != n {
			t.Fatalf("ring did not converge: node %s sees %d of %d", s.Addr(), s.RingSize(), n)
		}
	}
	return servers, seed
}

func TestRingFormation(t *testing.T) {
	servers, _ := startRing(t, 5, 1<<30)
	for _, s := range servers {
		if s.RingSize() != 5 {
			t.Fatalf("node sees ring of %d", s.RingSize())
		}
	}
}

func TestStoreFetchRoundTrip(t *testing.T) {
	_, seed := startRing(t, 6, 1<<30)
	c, err := NewClientCfg(context.Background(), seed, erasure.MustXOR(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 300_000)
	rng.Read(data)
	cat, err := c.StoreFile("live.dat", data)
	if err != nil {
		t.Fatal(err)
	}
	if cat.FileSize() != int64(len(data)) {
		t.Fatalf("CAT size %d", cat.FileSize())
	}
	got, err := c.FetchFile("live.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("live round trip mismatch")
	}
}

func TestFetchRange(t *testing.T) {
	_, seed := startRing(t, 4, 1<<30)
	c, err := NewClientCfg(context.Background(), seed, erasure.NewNull(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("0123456789", 5000))
	if _, err := c.StoreFile("r.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchRange("r.dat", 11111, 222)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[11111:11333]) {
		t.Fatal("range mismatch")
	}
}

func TestBlocksSpreadAcrossNodes(t *testing.T) {
	servers, seed := startRing(t, 8, 1<<30)
	c, err := NewClientCfg(context.Background(), seed, erasure.NewNull(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 6; i++ {
		data := make([]byte, 50_000)
		rng.Read(data)
		if _, err := c.StoreFile("spread"+string(rune('a'+i))+".dat", data); err != nil {
			t.Fatal(err)
		}
	}
	holders := 0
	for _, s := range servers {
		if s.NumBlocks() > 0 {
			holders++
		}
	}
	if holders < 3 {
		t.Fatalf("blocks concentrated on %d of 8 nodes", holders)
	}
}

func TestCapacityRefusal(t *testing.T) {
	_, seed := startRing(t, 3, 10_000) // tiny nodes
	c, err := NewClientCfg(context.Background(), seed, erasure.NewNull(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 200_000)
	if _, err := c.StoreFile("toobig.dat", big); err == nil {
		t.Fatal("store succeeded beyond total ring capacity")
	}
}

func TestSurvivesNodeLossWithCoding(t *testing.T) {
	servers, seed := startRing(t, 8, 1<<30)
	c, err := NewClientCfg(context.Background(), seed, erasure.MustXOR(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 120_000)
	rng.Read(data)
	if _, err := c.StoreFile("hardy.dat", data); err != nil {
		t.Fatal(err)
	}
	// Kill the node holding the most blocks; (2,3) coding plus CAT
	// replicas should keep the file retrievable as long as no chunk
	// loses two blocks — with one victim, at most one block per chunk
	// name maps there.
	var victim *Server
	for _, s := range servers {
		if victim == nil || s.NumBlocks() > victim.NumBlocks() {
			victim = s
		}
	}
	victim.Close()
	// The client's view still lists the dead node; refresh against a
	// live seed and retry (stale-cache handling, §5).
	liveSeed := ""
	for _, s := range servers {
		if s != victim {
			liveSeed = s.Addr()
			break
		}
	}
	c2, err := NewClientCfg(context.Background(), liveSeed, erasure.MustXOR(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.FetchFile("hardy.dat")
	if err != nil {
		t.Skipf("file unretrievable after victim loss (two blocks co-located): %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-failure fetch mismatch")
	}
}

func TestClientImplementsGridFS(t *testing.T) {
	_, seed := startRing(t, 4, 1<<30)
	c, err := NewClientCfg(context.Background(), seed, erasure.NewNull(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var _ grid.FS = c // compile-time interface check

	codec := &core.Codec{Code: erasure.NewNull()}
	lib := grid.NewIOLib(c, codec)
	lib.PlanChunk = func(sz int64) []int64 { return core.PlanChunkSizes(sz, 30_000) }

	fd, err := lib.Create("via-iolib.dat")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("grid-io"), 10_000)
	if _, err := lib.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	if err := lib.Close(fd); err != nil {
		t.Fatal(err)
	}
	rfd, err := lib.Open("via-iolib.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := lib.ReadAt(rfd, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("IOLib over live ring mismatch")
	}
}

func TestOwnerOfAgreesWithDistance(t *testing.T) {
	ring := []wire.NodeInfo{
		{ID: ids.FromUint64(100)},
		{ID: ids.FromUint64(200)},
		{ID: ids.FromUint64(300)},
	}
	o, err := OwnerOf(ring, ids.FromUint64(190))
	if err != nil {
		t.Fatal(err)
	}
	if o.ID != ids.FromUint64(200) {
		t.Fatalf("owner = %s", o.ID.Short())
	}
	if _, err := OwnerOf(nil, ids.FromUint64(1)); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestStatAndDelete(t *testing.T) {
	servers, seed := startRing(t, 2, 1<<20)
	c, err := NewClientCfg(context.Background(), seed, erasure.NewNull(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StoreFile("s.dat", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	totalUsed := int64(0)
	for _, s := range servers {
		cap, used, _, err := c.Stat(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if cap != 1<<20 {
			t.Fatalf("stat capacity = %d", cap)
		}
		totalUsed += used
	}
	if totalUsed == 0 {
		t.Fatal("nothing stored according to stat")
	}
	// Direct delete of the data block frees space.
	bn := core.BlockName("s.dat", 0, 0)
	owner, _ := OwnerOf(c.Ring(), ids.FromName(bn))
	if _, err := wire.Call(owner.Addr, &wire.Request{Op: wire.OpDelete, Name: bn}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchFile("s.dat"); err == nil {
		t.Fatal("fetch succeeded after block deletion under null coding")
	}
}

func TestClientRepairRestoresRedundancy(t *testing.T) {
	_, seed := startRing(t, 8, 1<<30)
	c, err := NewClientCfg(context.Background(), seed, erasure.MustXOR(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 150_000)
	rng.Read(data)
	cat, err := c.StoreFile("repair.dat", data)
	if err != nil {
		t.Fatal(err)
	}
	// Delete one block of chunk 0 directly from its owner.
	bn := core.BlockName("repair.dat", 0, 1)
	owner, _ := OwnerOf(c.Ring(), ids.FromName(bn))
	if _, err := wire.Call(owner.Addr, &wire.Request{Op: wire.OpDelete, Name: bn}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Repair("repair.dat")
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksMissing == 0 || st.BlocksRecreated == 0 {
		t.Fatalf("repair found/recreated nothing: %+v", st)
	}
	if st.ChunksLost != 0 {
		t.Fatalf("repair lost chunks: %+v", st)
	}
	if st.ChunksScanned != cat.NumChunks() {
		t.Fatalf("scanned %d chunks, want %d", st.ChunksScanned, cat.NumChunks())
	}
	// The recreated block exists again and the file round-trips.
	if _, err := c.FetchBlock(bn); err != nil {
		t.Fatal("recreated block not fetchable")
	}
	got, err := c.FetchFile("repair.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("post-repair fetch mismatch")
	}
	// A second pass finds nothing to do.
	st2, err := c.Repair("repair.dat")
	if err != nil {
		t.Fatal(err)
	}
	if st2.BlocksMissing != 0 || st2.BlocksRecreated != 0 {
		t.Fatalf("idempotence violated: %+v", st2)
	}
}

func TestClientRepairRestoresCATReplica(t *testing.T) {
	_, seed := startRing(t, 5, 1<<30)
	c, err := NewClientCfg(context.Background(), seed, erasure.NewNull(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StoreFile("catfix.dat", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	rn := core.ReplicaName(core.CATName("catfix.dat"), 1)
	owner, _ := OwnerOf(c.Ring(), ids.FromName(rn))
	if _, err := wire.Call(owner.Addr, &wire.Request{Op: wire.OpDelete, Name: rn}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Repair("catfix.dat")
	if err != nil {
		t.Fatal(err)
	}
	if st.CATReplicasRecreated != 1 {
		t.Fatalf("CAT replicas recreated = %d", st.CATReplicasRecreated)
	}
}

func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := wire.Request{Op: wire.OpStore, Name: "n", Data: []byte{1, 2, 3}}
	if err := wire.WriteFrame(&buf, &req); err != nil {
		t.Fatal(err)
	}
	var got wire.Request
	if err := wire.ReadFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.Name != req.Name || !bytes.Equal(got.Data, req.Data) {
		t.Fatal("frame round trip mismatch")
	}
}

func TestUnknownOp(t *testing.T) {
	_, seed := startRing(t, 1, 1<<20)
	if _, err := wire.Call(seed, &wire.Request{Op: "bogus"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}
