package node

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"peerstripe/internal/erasure"
	"peerstripe/internal/wire"
)

// startPreBatchFront emulates a pre-PR4 node in front of backend: it
// speaks only single-shot v1 (one frame in, one frame out, close — no
// preamble handling) and rejects OpCapBatch, the streaming ops, and
// the failure-detection ops the way an old binary's handler would,
// proxying every other op to the real server.
func startPreBatchFront(t *testing.T, backend string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var req wire.Request
				if err := wire.ReadFrame(conn, &req); err != nil {
					return
				}
				var resp *wire.Response
				switch req.Op {
				case wire.OpCapBatch, wire.OpStoreStream, wire.OpFetchStream,
					wire.OpStoreWindow, wire.OpPing, wire.OpPingReq, wire.OpGossip:
					resp = &wire.Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
				default:
					if r, err := wire.Call(backend, &req); err == nil || r != nil {
						resp = r
					} else {
						resp = &wire.Response{Err: err.Error()}
					}
				}
				_ = wire.WriteFrame(conn, resp)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestLiveStoreFallsBackFromBatchProbe stores through a ring whose
// members all emulate pre-batching nodes: the client must degrade its
// batched OpCapBatch probe to the old per-name OpGetCap and the store
// and fetch must still round-trip.
func TestLiveStoreFallsBackFromBatchProbe(t *testing.T) {
	servers, _ := startRing(t, 4, 1<<30)
	ring := make([]wire.NodeInfo, len(servers))
	for i, s := range servers {
		ring[i] = wire.NodeInfo{ID: s.ID, Addr: startPreBatchFront(t, s.Addr())}
	}
	c := NewStaticClientCfg(ring, erasure.MustXOR(2), Config{ChunkCap: 64 << 10})
	defer c.Close()

	data := make([]byte, 200<<10)
	rand.New(rand.NewSource(17)).Read(data)
	if _, err := c.StoreFile("oldring.dat", data); err != nil {
		t.Fatalf("store against pre-batching ring: %v", err)
	}
	got, err := c.FetchFile("oldring.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch against pre-batching ring: %v", err)
	}
}

// TestStreamingClientAgainstPreStreamingRing pins the mixed-ring
// contract for the chunked-transfer ops: a client whose blocks exceed
// its streaming segment must attempt OpStoreStream, see the old node's
// graceful "unknown op", and fall back to single-frame transfers —
// bytes intact in both directions, and the fallback remembered so the
// probe is not repeated per block.
func TestStreamingClientAgainstPreStreamingRing(t *testing.T) {
	servers, _ := startRing(t, 4, 1<<30)
	ring := make([]wire.NodeInfo, len(servers))
	for i, s := range servers {
		ring[i] = wire.NodeInfo{ID: s.ID, Addr: startPreBatchFront(t, s.Addr())}
	}
	// 64 KiB chunks, 8 KiB segments: every 32 KiB block crosses the
	// segment bound, so the client tries to stream each one.
	c := NewStaticClientCfg(ring, erasure.MustXOR(2), Config{
		ChunkCap: 64 << 10,
		Segment:  8 << 10,
	})
	defer c.Close()

	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(18)).Read(data)
	if _, err := c.StoreFile("oldstream.dat", data); err != nil {
		t.Fatalf("streaming store against pre-streaming ring: %v", err)
	}
	// The backends must have received no streaming op: everything
	// degraded to plain stores through the v1 fronts.
	for _, s := range servers {
		if s.StreamOps() != 0 {
			t.Fatalf("backend saw %d streaming ops through a pre-streaming front", s.StreamOps())
		}
	}
	got, err := c.FetchFile("oldstream.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch back through pre-streaming ring: %v", err)
	}
}
