package node

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"peerstripe/internal/erasure"
	"peerstripe/internal/wire"
)

// TestStoreWindowOutOfOrder drives the windowed staging exchange
// directly against one server: the segments of a block arrive out of
// order, every ack carries the staged byte count (the flow-control
// signal), the block commits once the last byte lands, and a retried
// segment after commit is re-acknowledged instead of reopening a stage.
func TestStoreWindowOutOfOrder(t *testing.T) {
	servers, _ := startRing(t, 1, 1<<30)
	s := servers[0]
	const stream = 991
	blob := []byte("0123456789") // size 10, seg 4: segments of 4, 4, 2 bytes
	segAt := func(seq int) []byte {
		lo := seq * 4
		hi := lo + 4
		if hi > len(blob) {
			hi = len(blob)
		}
		return blob[lo:hi]
	}
	send := func(seq int) *wire.Response {
		resp, err := wire.Call(s.Addr(), wire.EncodeStoreWindow("win.blk", wire.WindowSegment{
			Stream: stream, Seq: seq, Total: 3, Size: 10, Seg: 4,
		}, segAt(seq)))
		if err != nil {
			t.Fatalf("segment %d: %v", seq, err)
		}
		return resp
	}

	wantStaged := []int64{2, 6, 10} // tail first, then 0, then the commit
	for i, seq := range []int{2, 0, 1} {
		resp := send(seq)
		if !resp.OK {
			t.Fatalf("segment %d rejected: %s", seq, resp.Err)
		}
		if resp.Capacity != wantStaged[i] {
			t.Fatalf("segment %d ack reports %d staged bytes, want %d", seq, resp.Capacity, wantStaged[i])
		}
	}
	if ops := s.WindowOps(); ops != 3 {
		t.Fatalf("WindowOps = %d after 3 segments", ops)
	}

	got, err := wire.Call(s.Addr(), &wire.Request{Op: wire.OpFetch, Name: "win.blk"})
	if err != nil || !bytes.Equal(got.Data, blob) {
		t.Fatalf("fetch after windowed store: %v, %q", err, got.Data)
	}

	// A duplicate of any segment after commit: its ack was lost and the
	// transport retried. The server must re-acknowledge the full size,
	// not reopen a stage or double-commit.
	if resp := send(0); !resp.OK || resp.Capacity != 10 {
		t.Fatalf("post-commit retry: OK=%v capacity=%d err=%q", resp.OK, resp.Capacity, resp.Err)
	}
	s.mu.Lock()
	open := len(s.stages)
	s.mu.Unlock()
	if open != 0 {
		t.Fatalf("%d stages left open after commit", open)
	}
}

// TestStoreWindowDuplicateSegment pins the mid-stream retry contract:
// a duplicate of an already-applied segment is re-acknowledged without
// corrupting the staged bytes or the progress accounting.
func TestStoreWindowDuplicateSegment(t *testing.T) {
	servers, _ := startRing(t, 1, 1<<30)
	s := servers[0]
	blob := []byte("abcdefgh") // size 8, seg 4: two segments
	seg := func(seq int, data []byte) *wire.Response {
		resp, err := wire.Call(s.Addr(), wire.EncodeStoreWindow("dup.blk", wire.WindowSegment{
			Stream: 7, Seq: seq, Total: 2, Size: 8, Seg: 4,
		}, data))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := seg(0, blob[:4]); !resp.OK || resp.Capacity != 4 {
		t.Fatalf("first segment: %+v", resp)
	}
	if resp := seg(0, blob[:4]); !resp.OK || resp.Capacity != 4 {
		t.Fatalf("duplicate segment not re-acked: %+v", resp)
	}
	if resp := seg(1, blob[4:]); !resp.OK || resp.Capacity != 8 {
		t.Fatalf("final segment: %+v", resp)
	}
	got, err := wire.Call(s.Addr(), &wire.Request{Op: wire.OpFetch, Name: "dup.blk"})
	if err != nil || !bytes.Equal(got.Data, blob) {
		t.Fatalf("fetch after duplicate-ridden store: %v, %q", err, got.Data)
	}
}

// TestStoreWindowSegmentErrors pins the kill-the-stage contract: a
// segment with the wrong byte count or geometry that disagrees with
// the opened stage terminates the stream with an error, and the stream
// identifier is free for a clean retry afterwards.
func TestStoreWindowSegmentErrors(t *testing.T) {
	servers, _ := startRing(t, 1, 1<<30)
	s := servers[0]
	call := func(stream uint64, seq, total int, size, segSize int64, data []byte) (*wire.Response, error) {
		return wire.Call(s.Addr(), wire.EncodeStoreWindow("err.blk", wire.WindowSegment{
			Stream: stream, Seq: seq, Total: total, Size: size, Seg: segSize,
		}, data))
	}

	// Wrong byte count for its slot.
	if _, err := call(20, 0, 2, 8, 4, []byte("abc")); err == nil {
		t.Fatal("short segment accepted")
	}
	// Open a stage, then continue it with a different geometry.
	if resp, err := call(21, 0, 2, 8, 4, []byte("abcd")); err != nil || !resp.OK {
		t.Fatalf("open: %+v, %v", resp, err)
	}
	// (Total 1 of 8-byte segments parses fine but disagrees with the
	// geometry that opened stream 21.)
	if _, err := call(21, 0, 1, 8, 8, []byte("efghefgh")); err == nil {
		t.Fatal("inconsistent segment accepted")
	}
	// The killed stream id retries cleanly from scratch.
	if resp, err := call(21, 0, 2, 8, 4, []byte("ABCD")); err != nil || !resp.OK {
		t.Fatalf("reopen after kill: %+v, %v", resp, err)
	}
	if resp, err := call(21, 1, 2, 8, 4, []byte("EFGH")); err != nil || !resp.OK || resp.Capacity != 8 {
		t.Fatalf("commit after kill: %+v, %v", resp, err)
	}
	got, err := wire.Call(s.Addr(), &wire.Request{Op: wire.OpFetch, Name: "err.blk"})
	if err != nil || !bytes.Equal(got.Data, []byte("ABCDEFGH")) {
		t.Fatalf("fetch after retried store: %v, %q", err, got.Data)
	}

	// Malformed framing the encoder cannot produce: a sequence number
	// outside the stream's range.
	if _, err := wire.Call(s.Addr(), &wire.Request{
		Op: wire.OpStoreWindow, Name: "err.blk",
		Names: []string{"22", "5", "2", "8", "4"},
		Data:  []byte("abcd"),
	}); err == nil {
		t.Fatal("out-of-range sequence accepted")
	}
}

// startPreWindowFront emulates a node from the in-order-streaming era:
// it forwards the batch, capacity, and in-order streaming ops but
// answers "unknown op" to OpStoreWindow and the failure-detection ops
// that did not exist yet, the way that binary's handler would.
func startPreWindowFront(t *testing.T, backend string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var req wire.Request
				if err := wire.ReadFrame(conn, &req); err != nil {
					return
				}
				var resp *wire.Response
				switch req.Op {
				case wire.OpStoreWindow, wire.OpPing, wire.OpPingReq, wire.OpGossip:
					resp = &wire.Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
				default:
					if r, err := wire.Call(backend, &req); err == nil || r != nil {
						resp = r
					} else {
						resp = &wire.Response{Err: err.Error()}
					}
				}
				_ = wire.WriteFrame(conn, resp)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestWindowedClientAgainstPreWindowRing pins the graceful-degrade
// chain for the windowed exchange: against a ring that streams but
// does not know OpStoreWindow, the client must see the "unknown op",
// fall back to the in-order segment-per-ack stream, and round-trip the
// bytes — with not a single windowed op reaching a backend.
func TestWindowedClientAgainstPreWindowRing(t *testing.T) {
	servers, _ := startRing(t, 4, 1<<30)
	ring := make([]wire.NodeInfo, len(servers))
	for i, s := range servers {
		ring[i] = wire.NodeInfo{ID: s.ID, Addr: startPreWindowFront(t, s.Addr())}
	}
	// 64 KiB chunks, 8 KiB segments: every 32 KiB block streams, and
	// the default window would use the windowed exchange.
	c := NewStaticClientCfg(ring, erasure.MustXOR(2), Config{
		ChunkCap: 64 << 10,
		Segment:  8 << 10,
	})
	defer c.Close()

	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(23)).Read(data)
	if _, err := c.StoreFile("prewin.dat", data); err != nil {
		t.Fatalf("windowed store against pre-window ring: %v", err)
	}
	var streamed int64
	for _, s := range servers {
		if s.WindowOps() != 0 {
			t.Fatalf("backend saw %d windowed ops through a pre-window front", s.WindowOps())
		}
		streamed += s.StreamOps()
	}
	if streamed == 0 {
		t.Fatal("no in-order streaming op reached the backends — the fallback did not engage")
	}
	got, err := c.FetchFile("prewin.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch back through pre-window ring: %v", err)
	}
}
