package node

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"peerstripe/internal/core"
)

// Hot-object promotion: the read-scaling answer for objects a crowd
// hammers at once. A promoted file keeps, next to its erasure-coded
// blocks, `copies` full plaintext replicas of every chunk — stored as
// ordinary blocks named ReplicaName(ChunkName(file, ci), r), so the
// ring's hashing spreads them over different owners than the coded
// blocks. A hot read then costs one block fetch from one of `copies`+
// holders instead of a MinNeeded-block wave plus a decode, and the
// herd fans out across the replica set. A tiny marker block
// (core.HotName) records the replica count so any client can discover
// a promotion; losing the marker or a replica only costs performance,
// never durability — the erasure-coded blocks remain authoritative.
//
// The marker also records the CAT hash of the layout the replicas
// were cut from, and readers honor it only when that hash matches the
// CAT they opened. A re-store whose best-effort demote failed (node
// briefly down, caller gone) therefore leaves harmless orphans: the
// surviving marker names the old layout and routes no reads, even
// when an old replica happens to match a new chunk's length.

// MaxHotCopies bounds the full-copy replicas per chunk a promotion may
// place. It keeps a runaway promotion from flooding the ring and lets
// Delete probe a bounded replica range even when the marker is lost.
const MaxHotCopies = 8

// HotStats reports one Promote pass.
type HotStats struct {
	// Chunks counts the non-empty chunks replicated.
	Chunks int
	// Copies is the replica count per chunk actually placed.
	Copies int
	// Bytes counts the replica bytes stored (Chunks × chunk sizes × Copies).
	Bytes int64
}

// PromoteCtx places `copies` full-copy replicas of every non-empty
// chunk of the named file and records the count in the hot marker.
// Each chunk is decoded once from the coded blocks and stored whole
// under the replica names; re-promoting with a different count
// overwrites the marker (a shrink leaves orphaned higher replicas
// until Demote or Delete, which probe up to MaxHotCopies).
func (c *Client) PromoteCtx(ctx context.Context, name string, copies int) (HotStats, error) {
	var st HotStats
	if copies < 1 || copies > MaxHotCopies {
		return st, fmt.Errorf("node: promote %q: copies %d outside [1, %d]", name, copies, MaxHotCopies)
	}
	cat, err := c.LoadCATCtx(ctx, name)
	if err != nil {
		return st, err
	}
	var cis []int
	for ci, row := range cat.Rows {
		if !row.Empty() {
			cis = append(cis, ci)
		}
	}
	err = core.ParallelJobsCtx(ctx, len(cis), c.transfers(), func(i int) error {
		ci := cis[i]
		data, err := c.FetchChunk(ctx, cat, ci)
		if err != nil {
			return fmt.Errorf("node: promote %q chunk %d: %w", name, ci, err)
		}
		for r := 1; r <= copies; r++ {
			if err := c.storeBlock(ctx, core.ReplicaName(core.ChunkName(name, ci), r), data); err != nil {
				return fmt.Errorf("node: promote %q chunk %d replica %d: %w", name, ci, r, err)
			}
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	marker := fmt.Sprintf("%d %016x", copies, cat.Hash())
	if err := c.storeBlock(ctx, core.HotName(name), []byte(marker)); err != nil {
		return st, fmt.Errorf("node: promote %q: store marker: %w", name, err)
	}
	st.Chunks = len(cis)
	st.Copies = copies
	for _, ci := range cis {
		st.Bytes += cat.Rows[ci].Len() * int64(copies)
	}
	return st, nil
}

// HotCopiesCtx reports how many full-copy chunk replicas the named
// file was promoted with — 0 (and a nil error) when it never was —
// plus the CAT hash the marker was bound to. Readers must compare the
// hash against the CAT they opened and ignore the promotion on
// mismatch; maintenance paths (Demote, Delete) use the count
// regardless, so stale replicas stay sweepable. Markers written
// before hash binding report catHash 0, which no real CAT hashes to
// in practice — old promotions are ignored by readers but remain
// demotable.
func (c *Client) HotCopiesCtx(ctx context.Context, name string) (copies int, catHash uint64, err error) {
	data, err := c.fetchBlock(ctx, core.HotName(name))
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	fields := strings.Fields(string(data))
	bad := func() (int, uint64, error) {
		return 0, 0, fmt.Errorf("node: bad hot marker for %q: %q", name, data)
	}
	if len(fields) < 1 || len(fields) > 2 {
		return bad()
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 1 || n > MaxHotCopies {
		return bad()
	}
	var hash uint64
	if len(fields) == 2 {
		hash, err = strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return bad()
		}
	}
	return n, hash, nil
}

// FetchChunkCopy fetches full-copy replica r (1-based) of chunk ci of
// a promoted file — one block, no decode. The caller falls back to the
// erasure-coded path when the replica is gone.
func (c *Client) FetchChunkCopy(ctx context.Context, name string, ci, r int) ([]byte, error) {
	return c.fetchBlock(ctx, core.ReplicaName(core.ChunkName(name, ci), r))
}

// DemoteCtx removes the named file's hot marker and chunk replicas,
// returning how many replica blocks were deleted. Demoting a file that
// was never promoted is a no-op. The erasure-coded blocks are
// untouched — demotion is purely a read-scaling rollback.
func (c *Client) DemoteCtx(ctx context.Context, name string) (int, error) {
	copies, _, err := c.HotCopiesCtx(ctx, name)
	if err != nil {
		return 0, err
	}
	if copies == 0 {
		return 0, nil
	}
	cat, err := c.LoadCATCtx(ctx, name)
	if err != nil {
		return 0, err
	}
	names := hotReplicaNames(cat, copies)
	names = append(names, core.HotName(name))
	if err := c.deleteBlocks(ctx, names); err != nil {
		return 0, err
	}
	return len(names) - 1, nil
}

// hotReplicaNames lists every full-copy replica block of a promoted
// file with the given per-chunk replica count.
func hotReplicaNames(cat *core.CAT, copies int) []string {
	var names []string
	for ci, row := range cat.Rows {
		if row.Empty() {
			continue
		}
		for r := 1; r <= copies; r++ {
			names = append(names, core.ReplicaName(core.ChunkName(cat.File, ci), r))
		}
	}
	return names
}
