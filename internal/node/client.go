package node

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/telemetry"
	"peerstripe/internal/wire"
)

// Error classification for callers (the public peerstripe facade, the
// psput CLI) that must distinguish "the object is not there" from "the
// ring cannot be reached": match with errors.Is.
var (
	// ErrNotFound reports that a block or CAT was absent from every
	// node that should hold it, while the ring itself answered.
	ErrNotFound = errors.New("node: not found")
	// ErrRingUnavailable reports that the ring could not be reached at
	// all (dial failures, a dead seed, no surviving member).
	ErrRingUnavailable = errors.New("node: ring unavailable")
)

// Config freezes a Client's knobs at construction. The zero value
// selects every default. Fields mirror what used to be mutable fields
// on Client; making them construction-only removes a whole class of
// data races (reconfiguring a client mid-transfer) by design — to
// change a knob, build a new client.
type Config struct {
	// Workers bounds per-file chunk-coding concurrency (0 selects
	// GOMAXPROCS). 1 forces the fully sequential paths end to end —
	// including one-at-a-time block transfers — unless Transfers is
	// set explicitly.
	Workers int
	// Transfers bounds in-flight block transfers per operation.
	// Network fan-out is wait-bound, not compute-bound, so 0 selects
	// max(8, GOMAXPROCS) rather than the core count — a single-core
	// client still keeps several RPCs on the wire instead of running
	// the transfer loop in lockstep with the acks. When Workers is 1
	// and Transfers is 0, transfers stay sequential too.
	Transfers int
	// Hedge is how many extra blocks beyond the decode minimum a
	// degraded read requests up front. 0 (the default) requests
	// exactly the minimum and relies on per-source progress hedging to
	// replace stalled streams; raise it to pre-pay for expected
	// failures.
	Hedge int
	// HedgeDelay is the per-source stall cutoff of the hedged read
	// path (0 selects core.DefaultHedgeDelay): an in-flight block
	// stream that moves no bytes for a full HedgeDelay is raced
	// against a replacement from another holder.
	HedgeDelay time.Duration
	// ChunkCap caps the probed chunk size in bytes (0 = uncapped, the
	// paper's pure capacity-driven sizing).
	ChunkCap int64
	// Timeout bounds one RPC round trip (0 selects wire.DefaultTimeout).
	Timeout time.Duration
	// Segment is the streaming transfer segment size in bytes (0
	// selects wire.DefaultSegment). Blocks larger than one segment are
	// moved with windowed OpStoreWindow / ranged OpFetchStream
	// segment exchanges, degrading to in-order OpStoreStream and then
	// single frames against older peers.
	Segment int
	// StreamWindow bounds in-flight segments per streamed block
	// transfer (0 selects 4; 1 restores the strictly in-order
	// segment-per-ack exchange of the pre-window protocol).
	StreamWindow int
	// PipelineDepth bounds the chunks in flight during a streamed
	// store (0 selects 2, which overlaps chunk-N encode with chunk-N−1
	// upload; 1 restores the lockstep read-encode-upload loop). Peak
	// staging memory grows linearly with the depth.
	PipelineDepth int
	// CATReplicas is the number of extra CAT copies (0 selects 2,
	// negative selects none).
	CATReplicas int
	// MaxZeroChunks bounds consecutive refused chunk placements (0
	// selects 5).
	MaxZeroChunks int
	// V1 forces single-shot v1 wire calls with a fresh dial per
	// request — the seed transport, kept for mixed-version rings and
	// benchmark comparisons. Streaming transfers are disabled.
	V1 bool
	// ChunkCache, when set, is consulted before and populated after
	// every chunk decode on the read paths (FetchChunk, FetchRange,
	// FetchFile), so concurrent readers and repeated ranged reads of
	// one client share decoded chunks instead of re-fetching and
	// re-decoding them. The cache is shared state: it must be safe
	// for concurrent use and its slices are treated as immutable.
	ChunkCache core.ChunkCache
}

// withDefaults resolves the zero-value knobs.
func (cfg Config) withDefaults() Config {
	if cfg.Hedge < 0 {
		cfg.Hedge = 0
	}
	if cfg.Transfers <= 0 {
		if cfg.Workers == 1 {
			cfg.Transfers = 1
		} else {
			cfg.Transfers = 8
			if n := runtime.GOMAXPROCS(0); n > cfg.Transfers {
				cfg.Transfers = n
			}
		}
	}
	if cfg.StreamWindow <= 0 {
		cfg.StreamWindow = 4
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = wire.DefaultTimeout
	}
	if cfg.Segment <= 0 {
		cfg.Segment = wire.DefaultSegment
	}
	if cfg.CATReplicas == 0 {
		cfg.CATReplicas = 2
	} else if cfg.CATReplicas < 0 {
		cfg.CATReplicas = 0
	}
	if cfg.MaxZeroChunks <= 0 {
		cfg.MaxZeroChunks = 5
	}
	return cfg
}

// Client stores and retrieves files against a live ring, implementing
// the full §4.3 pipeline over real sockets: batched getCapacity probes,
// capacity-driven chunk sizing, erasure coding, direct block transfers,
// and CAT placement with neighbor replicas. It also implements grid.FS,
// so the interposed I/O library can run unmodified against a live
// cluster.
//
// All transfers ride a multiplexed connection pool (one persistent
// socket per peer) and fan out over a bounded worker pool; reads are
// degraded-tolerant — any sufficient subset of a chunk's blocks
// decodes it, with hedged requests racing past dark nodes. Blocks
// larger than one wire segment stream in bounded continuation frames,
// falling back to single-frame transfers against pre-streaming nodes.
//
// A Client is safe for concurrent use. Its configuration is frozen at
// construction (see Config); every operation has a ctx-first form that
// honors cancellation and deadlines end to end, and the ctx-free
// methods are thin wrappers over context.Background().
type Client struct {
	code erasure.Code
	cfg  Config

	// reg is the client's always-on metrics registry (see
	// Telemetry); met holds its instruments, resolved once here so
	// the data paths record with bare atomic adds.
	reg *telemetry.Registry
	met *clientMetrics

	pool *wire.Pool
	seed string

	mu   sync.RWMutex
	ring []wire.NodeInfo

	// noStream remembers peers that rejected a streaming op ("unknown
	// op") so later transfers skip the probe; addr → struct{}{}.
	noStream sync.Map
	// noWindow remembers peers that stream in order but rejected the
	// windowed OpStoreWindow form — PR5-era nodes; addr → struct{}{}.
	noWindow sync.Map
}

// streamIDs hands out process-unique stream identifiers; the random
// base keeps two processes from colliding on a shared server.
var streamIDs atomic.Uint64

func init() { streamIDs.Store(rand.Uint64()) } //nolint:gosec

// NewClient builds a client bootstrapping from any ring member with
// the default configuration.
//
// Deprecated: use NewClientCfg, the ctx-first constructor — it bounds
// the bootstrap refresh with the caller's context and makes the frozen
// Config explicit. This wrapper pins the bootstrap to
// context.Background and is kept only for existing callers.
func NewClient(seedAddr string, code erasure.Code) (*Client, error) {
	return NewClientCfg(context.Background(), seedAddr, code, Config{})
}

// NewClientCfg builds a client bootstrapping from any ring member,
// with the knobs frozen from cfg. ctx bounds the bootstrap refresh.
func NewClientCfg(ctx context.Context, seedAddr string, code erasure.Code, cfg Config) (*Client, error) {
	c := newClient(code, cfg)
	c.seed = seedAddr
	if err := c.RefreshCtx(ctx); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// NewStaticClient builds a client over a fixed membership view without
// contacting a seed — static configurations, test harnesses, and
// proxy-fronted rings. Refresh is a no-op on a static client.
//
// Deprecated: use NewStaticClientCfg, which makes the frozen Config
// explicit instead of implying the defaults.
func NewStaticClient(ring []wire.NodeInfo, code erasure.Code) *Client {
	return NewStaticClientCfg(ring, code, Config{})
}

// NewStaticClientCfg is NewStaticClient with the knobs frozen from cfg.
func NewStaticClientCfg(ring []wire.NodeInfo, code erasure.Code, cfg Config) *Client {
	c := newClient(code, cfg)
	c.ring = append([]wire.NodeInfo(nil), ring...)
	return c
}

func newClient(code erasure.Code, cfg Config) *Client {
	reg := telemetry.NewRegistry()
	pool := wire.NewPool()
	pool.Metrics = wire.NewPoolMetrics(reg)
	return &Client{
		code: code,
		cfg:  cfg.withDefaults(),
		reg:  reg,
		met:  newClientMetrics(reg),
		pool: pool,
	}
}

// Telemetry returns the client's metrics registry: wire-pool dial and
// per-op round-trip metrics, store/fetch/repair latency histograms,
// hedge fires, and capacity-probe rejects. Callers may register
// additional metrics (the facade mirrors its chunk-cache counters
// here) and snapshot or render it at will.
func (c *Client) Telemetry() *telemetry.Registry { return c.reg }

// Config returns the client's frozen, default-resolved configuration.
func (c *Client) Config() Config { return c.cfg }

// Code returns the erasure code the client runs.
func (c *Client) Code() erasure.Code { return c.code }

// Close releases the pooled connections. Calls after Close fail.
func (c *Client) Close() {
	if c.pool != nil {
		c.pool.Close()
	}
}

// transfers is the in-flight bound for block-transfer fan-outs —
// wait-bound work that should not be serialized by the core count the
// way chunk coding is (see Config.Transfers).
func (c *Client) transfers() int { return c.cfg.Transfers }

// call is the client's single transport seam: pooled multiplexed v2 by
// default, single-shot v1 when forced. ctx bounds the round trip on
// top of the per-RPC timeout.
func (c *Client) call(ctx context.Context, addr string, req *wire.Request) (*wire.Response, error) {
	var resp *wire.Response
	var err error
	if c.cfg.V1 || c.pool == nil {
		resp, err = wire.CallCtx(ctx, addr, req, c.cfg.Timeout)
	} else {
		resp, err = c.pool.CallCtx(ctx, addr, req, c.cfg.Timeout)
	}
	// A transport failure means the member could not be reached at all
	// (dial refused, reset, dead connection) — classify it so callers
	// and the layers above (errors.Is(err, ErrRingUnavailable)) can
	// tell an unreachable ring from a reachable one that said no.
	// Context errors pass through untouched: cancellation and deadline
	// semantics must survive the classification.
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("node: call %s: %w: %v", addr, ErrRingUnavailable, err)
	}
	return resp, err
}

// codec builds the data-path codec with the client's concurrency knobs
// threaded through, including the degraded-read fetch path.
func (c *Client) codec() *core.Codec {
	return &core.Codec{
		Code:          c.code,
		Workers:       c.cfg.Workers,
		FetchParallel: c.transfers(),
		FetchHedge:    c.cfg.Hedge,
		HedgeDelay:    c.cfg.HedgeDelay,
	}
}

// fetchCodec is the read-path codec: chunk-decode jobs spend their
// time waiting on block RPCs rather than on the CPU, so their
// concurrency follows the transfer bound, and the streamed block
// fetches report per-segment progress into the hedged read path so a
// stalled source is replaced mid-stream while a slow-but-moving one is
// left alone.
func (c *Client) fetchCodec(ctx context.Context) *core.Codec {
	cd := c.codec()
	cd.Workers = c.transfers()
	cd.Cache = c.cfg.ChunkCache
	cd.OnHedge = func(stalled int) { c.met.hedgeFires.Add(int64(stalled)) }
	cd.StreamFetch = func(name string, progress func(int)) ([]byte, bool) {
		d, err := c.fetchBlockProgress(ctx, name, progress)
		if err != nil {
			return nil, false
		}
		return d, true
	}
	return cd
}

// Refresh re-pulls the membership view from the seed.
func (c *Client) Refresh() error { return c.RefreshCtx(context.Background()) }

// RefreshCtx re-pulls the membership view from the seed. Static
// clients keep their configured view.
func (c *Client) RefreshCtx(ctx context.Context) error {
	if c.seed == "" {
		return nil
	}
	resp, err := c.call(ctx, c.seed, &wire.Request{Op: wire.OpRing})
	if err != nil {
		return fmt.Errorf("node: refresh ring via %s: %w: %v", c.seed, ErrRingUnavailable, err)
	}
	c.mu.Lock()
	c.ring = resp.Ring
	c.mu.Unlock()
	return nil
}

// PruneRing probes the view and drops unreachable members; see
// PruneRingCtx.
func (c *Client) PruneRing() (int, error) { return c.PruneRingCtx(context.Background()) }

// PruneRingCtx probes every member of the current view in parallel and
// drops the unreachable ones. The membership protocol has no failure
// detector — joins propagate, departures do not — so a client that
// must place blocks after a failure (Repair) calls this to obtain the
// survivor view whose owners are the failed node's identifier-space
// neighbors (§4.4). It returns the number of members dropped.
func (c *Client) PruneRingCtx(ctx context.Context) (int, error) {
	ring := c.Ring()
	alive := make([]bool, len(ring))
	core.ParallelJobsCtx(ctx, len(ring), c.transfers(), func(i int) error { //nolint:errcheck
		if _, err := c.call(ctx, ring[i].Addr, &wire.Request{Op: wire.OpStat}); err == nil {
			alive[i] = true
		}
		return nil
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var kept []wire.NodeInfo
	for i, ok := range alive {
		if ok {
			kept = append(kept, ring[i])
		}
	}
	if len(kept) == 0 {
		return 0, fmt.Errorf("node: prune ring: no member reachable: %w", ErrRingUnavailable)
	}
	c.mu.Lock()
	c.ring = kept
	c.mu.Unlock()
	return len(ring) - len(kept), nil
}

// RingSize returns the client's view of the membership.
func (c *Client) RingSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ring)
}

// Ring returns a copy of the client's current membership view.
func (c *Client) Ring() []wire.NodeInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]wire.NodeInfo(nil), c.ring...)
}

// setRing replaces the membership view wholesale — the repair daemon
// re-points its embedded client at the detector's current placement
// view before each repair pass.
func (c *Client) setRing(ring []wire.NodeInfo) {
	c.mu.Lock()
	c.ring = append([]wire.NodeInfo(nil), ring...)
	c.mu.Unlock()
}

// ownerAddr resolves the node responsible for a name.
func (c *Client) ownerAddr(name string) (string, error) {
	c.mu.RLock()
	owner, err := OwnerOf(c.ring, ids.FromName(name))
	c.mu.RUnlock()
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrRingUnavailable, err)
	}
	return owner.Addr, nil
}

// isUnknownOp reports a graceful "this peer predates the op" refusal.
func isUnknownOp(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown op")
}

// isNoBlock reports a server's "no block" refusal — the op reached a
// live node but the block was absent.
func isNoBlock(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no block")
}

// peerStreams reports whether streaming ops may be attempted on addr.
func (c *Client) peerStreams(addr string) bool {
	if c.cfg.V1 {
		return false
	}
	_, no := c.noStream.Load(addr)
	return !no
}

// peerWindows reports whether the windowed (out-of-order) store form
// may be attempted on addr.
func (c *Client) peerWindows(addr string) bool {
	_, no := c.noWindow.Load(addr)
	return !no
}

// storeBlock sends a block directly to its owner, streaming it in
// bounded segments when it exceeds one wire segment. The transfer
// degrades gracefully by peer age: windowed out-of-order segments
// (OpStoreWindow), then the in-order segment-per-ack exchange
// (OpStoreStream), then a single frame — each "unknown op" refusal is
// remembered per peer so only the first transfer pays the probe.
func (c *Client) storeBlock(ctx context.Context, name string, data []byte) error {
	addr, err := c.ownerAddr(name)
	if err != nil {
		return err
	}
	if len(data) > c.cfg.Segment && c.peerStreams(addr) {
		if c.cfg.StreamWindow > 1 && c.peerWindows(addr) {
			err := c.windowStoreBlock(ctx, addr, name, data)
			if !isUnknownOp(err) {
				return err
			}
			// A pre-window node: remember and degrade to the in-order
			// streaming exchange it may still understand.
			c.noWindow.Store(addr, struct{}{})
		}
		err := c.streamStoreBlock(ctx, addr, name, data)
		if !isUnknownOp(err) {
			return err
		}
		// A pre-streaming node: remember and fall through to the
		// single-frame transfer it does understand.
		c.noStream.Store(addr, struct{}{})
	}
	_, err = c.call(ctx, addr, &wire.Request{Op: wire.OpStore, Name: name, Data: data})
	return err
}

// windowStoreBlock moves one block as out-of-order OpStoreWindow
// segments with up to StreamWindow in flight at once, so one slow ack
// no longer serializes the stream. Segment 0 goes alone first — the
// cheap probe that surfaces a pre-window peer's "unknown op" refusal
// before the window opens.
func (c *Client) windowStoreBlock(ctx context.Context, addr, name string, data []byte) error {
	seg := c.cfg.Segment
	total := (len(data) + seg - 1) / seg
	sid := streamIDs.Add(1)
	send := func(i int) error {
		lo, hi := i*seg, (i+1)*seg
		if hi > len(data) {
			hi = len(data)
		}
		req := wire.EncodeStoreWindow(name, wire.WindowSegment{
			Stream: sid, Seq: i, Total: total, Size: int64(len(data)), Seg: int64(seg),
		}, data[lo:hi])
		_, err := c.call(ctx, addr, req)
		return err
	}
	if err := send(0); err != nil {
		return err
	}
	return core.ParallelJobsCtx(ctx, total-1, c.cfg.StreamWindow, func(i int) error {
		return send(i + 1)
	})
}

// streamStoreBlock moves one block as an ordered sequence of
// OpStoreStream segments, each acknowledged before the next is sent,
// so server-side assembly is a bounded append and a lost connection
// surfaces immediately.
func (c *Client) streamStoreBlock(ctx context.Context, addr, name string, data []byte) error {
	seg := c.cfg.Segment
	total := (len(data) + seg - 1) / seg
	sid := streamIDs.Add(1)
	for i := 0; i < total; i++ {
		lo, hi := i*seg, (i+1)*seg
		if hi > len(data) {
			hi = len(data)
		}
		req := wire.EncodeStoreStream(name, wire.StoreSegment{
			Stream: sid, Seq: i, Total: total, Size: int64(len(data)),
		}, data[lo:hi])
		if _, err := c.call(ctx, addr, req); err != nil {
			return err
		}
	}
	return nil
}

// fetchBlock retrieves a block from its owner, switching to ranged
// OpFetchStream reads when the server refuses to fit it in one frame.
func (c *Client) fetchBlock(ctx context.Context, name string) ([]byte, error) {
	return c.fetchBlockProgress(ctx, name, nil)
}

// fetchBlockProgress is fetchBlock with optional incremental progress
// reporting — the signal the hedged read path uses to tell a moving
// stream from a stalled one.
func (c *Client) fetchBlockProgress(ctx context.Context, name string, progress func(int)) ([]byte, error) {
	addr, err := c.ownerAddr(name)
	if err != nil {
		return nil, err
	}
	resp, err := c.call(ctx, addr, &wire.Request{Op: wire.OpFetch, Name: name})
	if err != nil {
		if strings.Contains(err.Error(), wire.BlockTooLarge) && c.peerStreams(addr) {
			return c.streamFetchBlock(ctx, addr, name, progress)
		}
		if isNoBlock(err) {
			return nil, fmt.Errorf("%w: %v", ErrNotFound, err)
		}
		return nil, err
	}
	if progress != nil {
		progress(len(resp.Data))
	}
	return resp.Data, nil
}

// streamFetchBlock reassembles a block from ranged segment reads. The
// first response reports the total size; the remaining ranges are then
// requested with up to StreamWindow reads in flight — readahead over
// the stateless OpFetchStream exchange, so per-range round-trip
// latency no longer serializes the reassembly (and the path works
// unchanged against any server that streams at all). progress, when
// non-nil, receives each segment's byte count as it lands.
func (c *Client) streamFetchBlock(ctx context.Context, addr, name string, progress func(int)) ([]byte, error) {
	seg := int64(c.cfg.Segment)
	resp, err := c.call(ctx, addr, wire.EncodeFetchStream(name, 0, seg))
	if err != nil {
		if isNoBlock(err) {
			return nil, fmt.Errorf("%w: %v", ErrNotFound, err)
		}
		return nil, err
	}
	size := resp.Capacity
	if size <= 0 || size > wire.MaxBlockSize {
		return nil, fmt.Errorf("node: stream fetch %s: bad size %d", name, size)
	}
	if len(resp.Data) == 0 {
		return nil, fmt.Errorf("node: stream fetch %s: empty segment at 0/%d", name, size)
	}
	buf := make([]byte, size)
	head := copy(buf, resp.Data)
	if progress != nil {
		progress(head)
	}
	if int64(head) >= size {
		return buf, nil
	}
	rest := size - int64(head)
	segs := int((rest + seg - 1) / seg)
	err = core.ParallelJobsCtx(ctx, segs, c.cfg.StreamWindow, func(i int) error {
		off := int64(head) + int64(i)*seg
		want := seg
		if off+want > size {
			want = size - off
		}
		r, err := c.call(ctx, addr, wire.EncodeFetchStream(name, off, want))
		if err != nil {
			if isNoBlock(err) {
				return fmt.Errorf("%w: %v", ErrNotFound, err)
			}
			return err
		}
		if int64(len(r.Data)) != want {
			return fmt.Errorf("node: stream fetch %s: got %d of %d bytes at %d", name, len(r.Data), want, off)
		}
		copy(buf[off:off+want], r.Data)
		if progress != nil {
			progress(len(r.Data))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// probeChunk runs the §4.3 capacity probe for one chunk: the chunk's m
// block names are grouped by owner and every distinct owner is probed
// with a single batched request, in parallel — one round-trip latency
// where the seed path paid m sequential dials. It returns the safe
// per-block capacity (the minimum over owners of free space divided by
// the blocks that owner would hold, sharper than the seed's uniform /m
// worst case) and the owner grouping for reservation bookkeeping.
// free caches advertisements across the chunks of one store; probed
// owners are added to it.
func (c *Client) probeChunk(ctx context.Context, name string, chunk int, free map[string]int64) (int64, map[string][]string, error) {
	m := c.code.EncodedBlocks()
	owners := make(map[string][]string)
	for e := 0; e < m; e++ {
		bn := core.BlockName(name, chunk, e)
		addr, err := c.ownerAddr(bn)
		if err != nil {
			return 0, nil, err
		}
		owners[addr] = append(owners[addr], bn)
	}
	var missing []string
	for addr := range owners {
		if _, ok := free[addr]; !ok {
			missing = append(missing, addr)
		}
	}
	caps := make([]int64, len(missing))
	err := core.ParallelJobsCtx(ctx, len(missing), c.transfers(), func(i int) error {
		resp, err := c.call(ctx, missing[i], &wire.Request{Op: wire.OpCapBatch, Names: owners[missing[i]]})
		if isUnknownOp(err) {
			// A pre-batching node: fall back to the per-name probe it
			// does understand (the advertisement is the same figure).
			resp, err = c.call(ctx, missing[i], &wire.Request{Op: wire.OpGetCap})
		}
		if err != nil {
			return fmt.Errorf("node: probe %s chunk %d: %w", name, chunk, err)
		}
		caps[i] = resp.Capacity
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	for i, addr := range missing {
		free[addr] = caps[i]
	}
	perBlock := int64(-1)
	for addr, names := range owners {
		cap := free[addr] / int64(len(names))
		if perBlock < 0 || cap < perBlock {
			perBlock = cap
		}
	}
	return perBlock, owners, nil
}

// StoreFile stores data under name; see StoreFileCtx.
func (c *Client) StoreFile(name string, data []byte) (*core.CAT, error) {
	return c.StoreFileCtx(context.Background(), name, data)
}

// StoreFileCtx stores data under name using capacity-probed variable
// chunking (§4.3) with parallel block fan-out. Chunks are encoded and
// uploaded as a pipeline: each chunk's blocks go on the wire the
// moment its encode finishes, overlapping chunk-N encode with
// chunk-N−1 upload instead of materializing every block first. It
// returns the file's CAT. Cancelling ctx aborts the transfer;
// already-placed blocks remain as orphans (no CAT points at them) and
// do not affect a later re-store under the same name.
func (c *Client) StoreFileCtx(ctx context.Context, name string, data []byte) (*core.CAT, error) {
	defer c.met.storeSeconds.Since(time.Now())
	n := int64(c.code.DataBlocks())
	codec := c.codec()

	// Plan chunk sizes from batched probes. Advertisements are cached
	// per owner across the file and decremented by planned placements,
	// so a multi-chunk store cannot oversubscribe a node the way
	// repeated identical probes could.
	free := make(map[string]int64)
	var chunkSizes []int64
	remaining := int64(len(data))
	zeroRun := 0
	for chunk := 0; remaining > 0; chunk++ {
		perBlock, owners, err := c.probeChunk(ctx, name, chunk, free)
		if err != nil {
			return nil, err
		}
		chunkBytes := n * perBlock
		if c.cfg.ChunkCap > 0 && chunkBytes > c.cfg.ChunkCap {
			chunkBytes = c.cfg.ChunkCap
		}
		if chunkBytes > remaining {
			chunkBytes = remaining
		}
		if chunkBytes <= 0 {
			c.met.probeRejects.Inc()
			chunkSizes = append(chunkSizes, 0)
			zeroRun++
			if zeroRun > c.cfg.MaxZeroChunks {
				return nil, fmt.Errorf("node: store %s: %w", name, core.ErrStoreFailed)
			}
			continue
		}
		zeroRun = 0
		chunkSizes = append(chunkSizes, chunkBytes)
		remaining -= chunkBytes
		blockBytes := (chunkBytes + n - 1) / n
		for addr, names := range owners {
			free[addr] -= int64(len(names)) * blockBytes
		}
	}

	// Encode-and-upload jobs wait on the wire, not the CPU, so the
	// pipeline runs at the transfer bound; the encodes inside still
	// cannot exceed the cores.
	codec.Workers = c.transfers()
	cat, err := codec.EncodeChunks(ctx, name, data, chunkSizes, func(ci int, blocks []core.NamedBlock) error {
		for _, b := range blocks {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := c.storeBlock(ctx, b.Name, b.Data); err != nil {
				return fmt.Errorf("node: store block %s: %w", b.Name, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := c.storeCAT(ctx, cat); err != nil {
		return nil, err
	}
	return cat, nil
}

// StoreReader stores size bytes read from r under name, following the
// given chunk plan (see core.PlanChunkSizes) so at most PipelineDepth
// chunks and their encoded blocks are in memory at a time — the whole
// file is never buffered. A producer stage probes, reads, and encodes
// chunks in plan order while the upload stage ships the previous
// chunk's blocks, so encode and upload overlap instead of alternating
// (PipelineDepth 1 restores the strict read-encode-upload lockstep).
// Each planned chunk is capacity-probed before its bytes are read; a
// refusal becomes a zero-sized chunk and the planned size is retried
// at the next chunk number (§4.3), failing after the
// consecutive-zero-chunk limit. Blocks larger than one wire segment
// stream in bounded windowed segments.
func (c *Client) StoreReader(ctx context.Context, name string, r io.Reader, plan []int64) (*core.CAT, error) {
	defer c.met.storeSeconds.Since(time.Now())
	if c.cfg.PipelineDepth <= 1 {
		return c.storeReaderSeq(ctx, name, r, plan)
	}
	n := int64(c.code.DataBlocks())
	cat := &core.CAT{File: name}
	free := make(map[string]int64)

	// encodedChunk is one planned chunk read, encoded, and ready to
	// upload.
	type encodedChunk struct {
		chunk  int
		blocks []erasure.Block
	}
	// The producer owns every piece of sequential bookkeeping — the
	// probe cache, the reader position, CAT row order — and hands
	// encoded chunks to the upload stage below. Channel capacity
	// depth−2 bounds the chunks in memory at depth: one being encoded,
	// depth−2 queued, one being uploaded.
	jobs := make(chan encodedChunk, c.cfg.PipelineDepth-2)
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var prodErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		pos := int64(0)
		chunk := 0
		zeroRun := 0
		for _, want := range plan {
			if want <= 0 {
				prodErr = fmt.Errorf("node: store %s: bad planned chunk size %d", name, want)
				return
			}
			for {
				if err := pctx.Err(); err != nil {
					prodErr = err
					return
				}
				perBlock, owners, err := c.probeChunk(pctx, name, chunk, free)
				if err != nil {
					prodErr = err
					return
				}
				blockBytes := (want + n - 1) / n
				if perBlock < blockBytes {
					// This chunk's owners cannot hold the planned
					// blocks: emit a zero-sized chunk and retry the same
					// planned size at the next chunk number.
					c.met.probeRejects.Inc()
					cat.Rows = append(cat.Rows, core.CATRow{Start: pos, End: pos})
					chunk++
					zeroRun++
					if zeroRun > c.cfg.MaxZeroChunks {
						prodErr = fmt.Errorf("node: store %s: %w", name, core.ErrStoreFailed)
						return
					}
					continue
				}
				zeroRun = 0
				// A fresh buffer per chunk: the encoded data blocks
				// alias it, and the upload stage may still be reading
				// the previous chunk's buffer.
				data := make([]byte, want)
				if _, err := io.ReadFull(r, data); err != nil {
					prodErr = fmt.Errorf("node: store %s: read chunk %d: %w", name, chunk, err)
					return
				}
				ebs, err := c.code.Encode(data)
				if err != nil {
					prodErr = fmt.Errorf("node: store %s: encode chunk %d: %w", name, chunk, err)
					return
				}
				for addr, names := range owners {
					free[addr] -= int64(len(names)) * blockBytes
				}
				cat.Rows = append(cat.Rows, core.CATRow{Start: pos, End: pos + want, Sum: core.ChunkSum(data)})
				pos += want
				select {
				case jobs <- encodedChunk{chunk: chunk, blocks: ebs}:
				case <-pctx.Done():
					prodErr = pctx.Err()
					return
				}
				chunk++
				break
			}
		}
	}()

	var upErr error
	for job := range jobs {
		if upErr != nil {
			continue // drain so the producer is never stuck on its send
		}
		err := core.ParallelJobsCtx(ctx, len(job.blocks), c.transfers(), func(i int) error {
			bn := core.BlockName(name, job.chunk, job.blocks[i].Index)
			if err := c.storeBlock(ctx, bn, job.blocks[i].Data); err != nil {
				return fmt.Errorf("node: store block %s: %w", bn, err)
			}
			return nil
		})
		if err != nil {
			upErr = err
			cancel() // stop the producer promptly
		}
	}
	wg.Wait()
	if upErr != nil {
		return nil, upErr
	}
	if prodErr != nil {
		return nil, prodErr
	}
	if err := c.storeCAT(ctx, cat); err != nil {
		return nil, err
	}
	return cat, nil
}

// storeReaderSeq is the PipelineDepth-1 lockstep form of StoreReader:
// one chunk is probed, read, encoded, and fully uploaded before the
// next one is touched, reusing a single chunk buffer — the minimal-
// memory shape the pipelined form trades a bounded multiple of for
// overlap.
func (c *Client) storeReaderSeq(ctx context.Context, name string, r io.Reader, plan []int64) (*core.CAT, error) {
	n := int64(c.code.DataBlocks())
	cat := &core.CAT{File: name}
	free := make(map[string]int64)
	var buf []byte
	pos := int64(0)
	chunk := 0
	zeroRun := 0
	for _, want := range plan {
		if want <= 0 {
			return nil, fmt.Errorf("node: store %s: bad planned chunk size %d", name, want)
		}
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			perBlock, owners, err := c.probeChunk(ctx, name, chunk, free)
			if err != nil {
				return nil, err
			}
			blockBytes := (want + n - 1) / n
			if perBlock < blockBytes {
				// This chunk's owners cannot hold the planned blocks:
				// emit a zero-sized chunk and retry the same planned
				// size at the next chunk number.
				c.met.probeRejects.Inc()
				cat.Rows = append(cat.Rows, core.CATRow{Start: pos, End: pos})
				chunk++
				zeroRun++
				if zeroRun > c.cfg.MaxZeroChunks {
					return nil, fmt.Errorf("node: store %s: %w", name, core.ErrStoreFailed)
				}
				continue
			}
			zeroRun = 0
			if int64(cap(buf)) < want {
				buf = make([]byte, want)
			}
			data := buf[:want]
			if _, err := io.ReadFull(r, data); err != nil {
				return nil, fmt.Errorf("node: store %s: read chunk %d: %w", name, chunk, err)
			}
			ebs, err := c.code.Encode(data)
			if err != nil {
				return nil, fmt.Errorf("node: store %s: encode chunk %d: %w", name, chunk, err)
			}
			err = core.ParallelJobsCtx(ctx, len(ebs), c.transfers(), func(i int) error {
				bn := core.BlockName(name, chunk, ebs[i].Index)
				if err := c.storeBlock(ctx, bn, ebs[i].Data); err != nil {
					return fmt.Errorf("node: store block %s: %w", bn, err)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			for addr, names := range owners {
				free[addr] -= int64(len(names)) * blockBytes
			}
			cat.Rows = append(cat.Rows, core.CATRow{Start: pos, End: pos + want, Sum: core.ChunkSum(data)})
			pos += want
			chunk++
			break
		}
	}
	if err := c.storeCAT(ctx, cat); err != nil {
		return nil, err
	}
	return cat, nil
}

// storeCAT places the CAT and its replicas (§4.4) in parallel.
func (c *Client) storeCAT(ctx context.Context, cat *core.CAT) error {
	catData := cat.Marshal()
	return core.ParallelJobsCtx(ctx, c.cfg.CATReplicas+1, c.transfers(), func(r int) error {
		if err := c.storeBlock(ctx, core.ReplicaName(core.CATName(cat.File), r), catData); err != nil {
			return fmt.Errorf("node: store CAT replica %d: %w", r, err)
		}
		return nil
	})
}

// LoadCAT fetches and parses the file's CAT; see LoadCATCtx.
func (c *Client) LoadCAT(name string) (*core.CAT, error) {
	return c.LoadCATCtx(context.Background(), name)
}

// LoadCATCtx fetches and parses the file's CAT, falling back through
// the replicas (§4.4). When every replica is reported absent by a live
// owner the error matches ErrNotFound; transport failures propagate
// as-is so callers can tell a missing file from an unreachable ring.
func (c *Client) LoadCATCtx(ctx context.Context, name string) (*core.CAT, error) {
	var lastErr error
	allMissing := true
	for r := 0; r <= c.cfg.CATReplicas; r++ {
		data, err := c.fetchBlock(ctx, core.ReplicaName(core.CATName(name), r))
		if err != nil {
			if !errors.Is(err, ErrNotFound) {
				allMissing = false
			}
			lastErr = err
			continue
		}
		cat, err := core.UnmarshalCAT(name, data)
		if err != nil {
			allMissing = false
			lastErr = err
			continue
		}
		return cat, nil
	}
	if allMissing && lastErr != nil {
		return nil, fmt.Errorf("node: no CAT replica for %q: %w", name, lastErr)
	}
	return nil, fmt.Errorf("node: load CAT for %q: %w", name, lastErr)
}

// FetchFile retrieves and decodes the whole file; see FetchFileCtx.
func (c *Client) FetchFile(name string) ([]byte, error) {
	return c.FetchFileCtx(context.Background(), name)
}

// FetchFileCtx retrieves and decodes the whole file. Chunks are
// decoded concurrently and each chunk reads any sufficient subset of
// its blocks, so the fetch succeeds with nodes down (degraded read).
func (c *Client) FetchFileCtx(ctx context.Context, name string) ([]byte, error) {
	defer c.met.fetchSeconds.Since(time.Now())
	cat, err := c.LoadCATCtx(ctx, name)
	if err != nil {
		return nil, err
	}
	return c.fetchCodec(ctx).DecodeFile(ctx, cat, c.fetchFunc(ctx))
}

// FetchRange retrieves [off, off+length) of the file; see
// FetchRangeCtx.
func (c *Client) FetchRange(name string, off, length int64) ([]byte, error) {
	return c.FetchRangeCtx(context.Background(), name, off, length)
}

// FetchRangeCtx retrieves [off, off+length) of the file, touching only
// the chunks the range covers.
func (c *Client) FetchRangeCtx(ctx context.Context, name string, off, length int64) ([]byte, error) {
	defer c.met.fetchSeconds.Since(time.Now())
	cat, err := c.LoadCATCtx(ctx, name)
	if err != nil {
		return nil, err
	}
	return c.fetchCodec(ctx).DecodeRange(ctx, cat, off, length, c.fetchFunc(ctx))
}

// FetchChunk reconstructs one chunk of a loaded CAT — the granularity
// the public File's decoded-chunk cache works at.
func (c *Client) FetchChunk(ctx context.Context, cat *core.CAT, ci int) ([]byte, error) {
	defer c.met.fetchSeconds.Since(time.Now())
	return c.fetchCodec(ctx).DecodeChunk(ctx, cat, ci, c.fetchFunc(ctx))
}

func (c *Client) fetchFunc(ctx context.Context) core.FetchFunc {
	return func(name string) ([]byte, bool) {
		d, err := c.fetchBlock(ctx, name)
		if err != nil {
			return nil, false
		}
		return d, true
	}
}

// FetchBlock implements grid.FS.
func (c *Client) FetchBlock(name string) ([]byte, error) {
	return c.fetchBlock(context.Background(), name)
}

// StoreBlocks implements grid.FS: it places pre-encoded blocks and the
// CAT with replicas, fanning the transfers out in parallel.
func (c *Client) StoreBlocks(cat *core.CAT, blocks []core.NamedBlock) error {
	return c.StoreBlocksCtx(context.Background(), cat, blocks)
}

// StoreBlocksCtx is StoreBlocks bounded by ctx.
func (c *Client) StoreBlocksCtx(ctx context.Context, cat *core.CAT, blocks []core.NamedBlock) error {
	err := core.ParallelJobsCtx(ctx, len(blocks), c.transfers(), func(i int) error {
		return c.storeBlock(ctx, blocks[i].Name, blocks[i].Data)
	})
	if err != nil {
		return err
	}
	return c.storeCAT(ctx, cat)
}

// DeleteFile removes a stored file; see DeleteFileCtx.
func (c *Client) DeleteFile(name string) error {
	return c.DeleteFileCtx(context.Background(), name)
}

// DeleteFileCtx removes every encoded block of the file, its CAT
// replicas, and — when the file was promoted for hot reads — its
// full-copy chunk replicas and hot marker from the ring. When the
// marker is unreadable the full MaxHotCopies replica range is deleted
// instead (deleting an absent block is a no-op), so a lost marker
// cannot leak replica bytes.
func (c *Client) DeleteFileCtx(ctx context.Context, name string) error {
	cat, err := c.LoadCATCtx(ctx, name)
	if err != nil {
		return err
	}
	m := c.code.EncodedBlocks()
	var names []string
	for ci, row := range cat.Rows {
		if row.Empty() {
			continue
		}
		for e := 0; e < m; e++ {
			names = append(names, core.BlockName(name, ci, e))
		}
	}
	for r := 0; r <= c.cfg.CATReplicas; r++ {
		names = append(names, core.ReplicaName(core.CATName(name), r))
	}
	copies, _, err := c.HotCopiesCtx(ctx, name)
	if err != nil {
		copies = MaxHotCopies
	}
	if copies > 0 {
		names = append(names, hotReplicaNames(cat, copies)...)
		names = append(names, core.HotName(name))
	}
	return c.deleteBlocks(ctx, names)
}

// deleteBlocks issues one OpDelete per name, fanned out over the
// transfer bound. Deleting a block its owner does not hold succeeds.
func (c *Client) deleteBlocks(ctx context.Context, names []string) error {
	return core.ParallelJobsCtx(ctx, len(names), c.transfers(), func(i int) error {
		addr, err := c.ownerAddr(names[i])
		if err != nil {
			return err
		}
		_, err = c.call(ctx, addr, &wire.Request{Op: wire.OpDelete, Name: names[i]})
		return err
	})
}

// RepairStats reports a Client.Repair pass.
type RepairStats struct {
	// ChunksScanned counts non-empty chunks examined.
	ChunksScanned int
	// BlocksMissing counts encoded blocks found absent.
	BlocksMissing int
	// BlocksRecreated counts blocks re-encoded and stored.
	BlocksRecreated int
	// BytesRecreated counts the bytes of those recreated blocks — what
	// a repair rate limit meters.
	BytesRecreated int64
	// CATReplicasRecreated counts restored CAT copies.
	CATReplicasRecreated int
	// ChunksLost counts chunks that could not be decoded (below the
	// code's threshold) — their blocks cannot be re-created.
	ChunksLost int
}

// Repair restores the file's redundancy; see RepairCtx.
func (c *Client) Repair(name string) (RepairStats, error) {
	return c.RepairCtx(context.Background(), name)
}

// RepairCtx implements the §4.4 recovery path from the client side:
// scan every encoded block of the file, decode each chunk from its
// survivors, re-encode, and store replacements for the missing blocks
// at their current owners (which, after a failure, are the failed
// node's identifier-space neighbors). Missing CAT replicas are also
// restored. Chunks are repaired concurrently over the worker pool. Run
// it after refreshing the ring view.
func (c *Client) RepairCtx(ctx context.Context, name string) (RepairStats, error) {
	defer c.met.repairSeconds.Since(time.Now())
	var st RepairStats
	var stMu sync.Mutex
	cat, err := c.LoadCATCtx(ctx, name)
	if err != nil {
		return st, err
	}
	m := c.code.EncodedBlocks()
	var cis []int
	for ci, row := range cat.Rows {
		if !row.Empty() {
			cis = append(cis, ci)
		}
	}
	w := c.transfers()
	err = core.ParallelJobsCtx(ctx, len(cis), w, func(i int) error {
		ci := cis[i]
		// Scan every block of the chunk in parallel: slots keep the
		// fetched blocks index-stable without a mutex.
		have := make([]erasure.Block, m)
		ok := make([]bool, m)
		core.ParallelJobsCtx(ctx, m, w, func(e int) error { //nolint:errcheck
			data, err := c.fetchBlock(ctx, core.BlockName(name, ci, e))
			if err == nil {
				have[e] = erasure.Block{Index: e, Data: data}
				ok[e] = true
			}
			return nil
		})
		if err := ctx.Err(); err != nil {
			return err
		}
		got := make([]erasure.Block, 0, m)
		var missing []int
		for e := 0; e < m; e++ {
			if ok[e] {
				got = append(got, have[e])
			} else {
				missing = append(missing, e)
			}
		}
		stMu.Lock()
		st.ChunksScanned++
		st.BlocksMissing += len(missing)
		stMu.Unlock()
		if len(missing) == 0 {
			return nil
		}
		chunk, err := c.code.Decode(got, int(cat.Rows[ci].Len()))
		if err != nil {
			stMu.Lock()
			st.ChunksLost++
			stMu.Unlock()
			return nil
		}
		fresh, err := c.code.Encode(chunk)
		if err != nil {
			return fmt.Errorf("node: repair %s chunk %d: %w", name, ci, err)
		}
		byIndex := make(map[int][]byte, len(fresh))
		for _, b := range fresh {
			byIndex[b.Index] = b.Data
		}
		for _, e := range missing {
			data, present := byIndex[e]
			if !present {
				continue
			}
			if err := c.storeBlock(ctx, core.BlockName(name, ci, e), data); err != nil {
				return fmt.Errorf("node: repair %s chunk %d block %d: %w", name, ci, e, err)
			}
			stMu.Lock()
			st.BlocksRecreated++
			st.BytesRecreated += int64(len(data))
			stMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	// Restore any missing CAT replicas.
	catData := cat.Marshal()
	for r := 0; r <= c.cfg.CATReplicas; r++ {
		rn := core.ReplicaName(core.CATName(name), r)
		if _, err := c.fetchBlock(ctx, rn); err != nil {
			if err := c.storeBlock(ctx, rn, catData); err == nil {
				st.CATReplicasRecreated++
			}
		}
	}
	return st, nil
}

// Stat queries one ring member's storage status.
func (c *Client) Stat(addr string) (capacity, used int64, blocks int, err error) {
	return c.StatCtx(context.Background(), addr)
}

// StatCtx queries one ring member's storage status.
func (c *Client) StatCtx(ctx context.Context, addr string) (capacity, used int64, blocks int, err error) {
	resp, err := c.call(ctx, addr, &wire.Request{Op: wire.OpStat})
	if err != nil {
		return 0, 0, 0, err
	}
	return resp.Capacity, resp.Used, resp.Blocks, nil
}

// NodeStatus is one ring member's extended status: storage plus the
// membership-state counts and repair backlog a self-healing node
// reports. Servers predating the failure detector omit the extension,
// leaving the extended fields zero.
type NodeStatus struct {
	Capacity int64
	Used     int64
	Blocks   int

	Alive       int
	Suspect     int
	Dead        int
	Incarnation uint64
	RepairQueue int
}

// StatNodeCtx queries one ring member's extended status. The extension
// rides the OpStat response's Data field as JSON, so old clients
// ignore it and old servers simply leave it empty.
func (c *Client) StatNodeCtx(ctx context.Context, addr string) (NodeStatus, error) {
	resp, err := c.call(ctx, addr, &wire.Request{Op: wire.OpStat})
	if err != nil {
		return NodeStatus{}, err
	}
	st := NodeStatus{Capacity: resp.Capacity, Used: resp.Used, Blocks: resp.Blocks}
	if len(resp.Data) > 0 {
		var ext statExt
		if json.Unmarshal(resp.Data, &ext) == nil {
			st.Alive, st.Suspect, st.Dead = ext.Alive, ext.Suspect, ext.Dead
			st.Incarnation = ext.Incarnation
			st.RepairQueue = ext.RepairQueue
		}
	}
	return st, nil
}
