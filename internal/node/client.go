package node

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

// Client stores and retrieves files against a live ring, implementing
// the full §4.3 pipeline over real sockets: batched getCapacity probes,
// capacity-driven chunk sizing, erasure coding, direct block transfers,
// and CAT placement with neighbor replicas. It also implements grid.FS,
// so the interposed I/O library can run unmodified against a live
// cluster.
//
// All transfers ride a multiplexed connection pool (one persistent
// socket per peer) and fan out over a bounded worker pool; reads are
// degraded-tolerant — any sufficient subset of a chunk's blocks
// decodes it, with hedged requests racing past dark nodes. A Client is
// safe for concurrent use. Configuration fields must be set before the
// first call.
type Client struct {
	Code erasure.Code
	// MaxZeroChunks bounds consecutive refused chunk placements.
	MaxZeroChunks int
	// CATReplicas is the number of extra CAT copies.
	CATReplicas int
	// Workers bounds parallel block transfers and per-file chunk
	// coding (0 selects GOMAXPROCS; 1 forces the fully sequential
	// paths, including sequential block fetches).
	Workers int
	// Hedge is how many extra blocks beyond the decode minimum a
	// degraded read requests up front (default 1).
	Hedge int
	// HedgeDelay is the straggler cutoff before a read widens to every
	// remaining block (0 selects core.DefaultHedgeDelay).
	HedgeDelay time.Duration
	// ChunkCap caps the probed chunk size in bytes (0 = uncapped, the
	// paper's pure capacity-driven sizing).
	ChunkCap int64
	// Timeout bounds one RPC round trip (0 selects wire.DefaultTimeout).
	Timeout time.Duration
	// V1 forces single-shot v1 wire calls with a fresh dial per
	// request — the seed transport, kept for mixed-version rings and
	// benchmark comparisons.
	V1 bool

	pool *wire.Pool
	seed string

	mu   sync.RWMutex
	ring []wire.NodeInfo
}

// NewClient builds a client bootstrapping from any ring member.
func NewClient(seedAddr string, code erasure.Code) (*Client, error) {
	c := newClient(code)
	c.seed = seedAddr
	if err := c.Refresh(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// NewStaticClient builds a client over a fixed membership view without
// contacting a seed — static configurations, test harnesses, and
// proxy-fronted rings. Refresh is a no-op on a static client.
func NewStaticClient(ring []wire.NodeInfo, code erasure.Code) *Client {
	c := newClient(code)
	c.ring = append([]wire.NodeInfo(nil), ring...)
	return c
}

func newClient(code erasure.Code) *Client {
	return &Client{
		Code:          code,
		MaxZeroChunks: 5,
		CATReplicas:   2,
		Hedge:         1,
		pool:          wire.NewPool(),
	}
}

// Close releases the pooled connections. Calls after Close fail.
func (c *Client) Close() {
	if c.pool != nil {
		c.pool.Close()
	}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return wire.DefaultTimeout
}

func (c *Client) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// call is the client's single transport seam: pooled multiplexed v2 by
// default, single-shot v1 when forced.
func (c *Client) call(addr string, req *wire.Request) (*wire.Response, error) {
	if c.V1 || c.pool == nil {
		return wire.CallTimeout(addr, req, c.timeout())
	}
	return c.pool.CallTimeout(addr, req, c.timeout())
}

// codec builds the data-path codec with the client's concurrency knobs
// threaded through, including the degraded-read fetch path.
func (c *Client) codec() *core.Codec {
	fetchPar := c.workers()
	if c.Workers == 1 {
		fetchPar = 1 // fully sequential, the seed behavior
	}
	return &core.Codec{
		Code:          c.Code,
		Workers:       c.Workers,
		FetchParallel: fetchPar,
		FetchHedge:    c.Hedge,
		HedgeDelay:    c.HedgeDelay,
	}
}

// Refresh re-pulls the membership view from the seed. Static clients
// keep their configured view.
func (c *Client) Refresh() error {
	if c.seed == "" {
		return nil
	}
	resp, err := c.call(c.seed, &wire.Request{Op: wire.OpRing})
	if err != nil {
		return fmt.Errorf("node: refresh ring: %w", err)
	}
	c.mu.Lock()
	c.ring = resp.Ring
	c.mu.Unlock()
	return nil
}

// PruneRing probes every member of the current view in parallel and
// drops the unreachable ones. The membership protocol has no failure
// detector — joins propagate, departures do not — so a client that
// must place blocks after a failure (Repair) calls this to obtain the
// survivor view whose owners are the failed node's identifier-space
// neighbors (§4.4). It returns the number of members dropped.
func (c *Client) PruneRing() (int, error) {
	ring := c.Ring()
	alive := make([]bool, len(ring))
	core.ParallelJobs(len(ring), c.workers(), func(i int) error { //nolint:errcheck
		if _, err := c.call(ring[i].Addr, &wire.Request{Op: wire.OpStat}); err == nil {
			alive[i] = true
		}
		return nil
	})
	var kept []wire.NodeInfo
	for i, ok := range alive {
		if ok {
			kept = append(kept, ring[i])
		}
	}
	if len(kept) == 0 {
		return 0, fmt.Errorf("node: prune ring: no member reachable")
	}
	c.mu.Lock()
	c.ring = kept
	c.mu.Unlock()
	return len(ring) - len(kept), nil
}

// RingSize returns the client's view of the membership.
func (c *Client) RingSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ring)
}

// Ring returns a copy of the client's current membership view.
func (c *Client) Ring() []wire.NodeInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]wire.NodeInfo(nil), c.ring...)
}

// ownerAddr resolves the node responsible for a name.
func (c *Client) ownerAddr(name string) (string, error) {
	c.mu.RLock()
	owner, err := OwnerOf(c.ring, ids.FromName(name))
	c.mu.RUnlock()
	if err != nil {
		return "", err
	}
	return owner.Addr, nil
}

// storeBlock sends a block directly to its owner.
func (c *Client) storeBlock(name string, data []byte) error {
	addr, err := c.ownerAddr(name)
	if err != nil {
		return err
	}
	_, err = c.call(addr, &wire.Request{Op: wire.OpStore, Name: name, Data: data})
	return err
}

// fetchBlock retrieves a block from its owner.
func (c *Client) fetchBlock(name string) ([]byte, error) {
	addr, err := c.ownerAddr(name)
	if err != nil {
		return nil, err
	}
	resp, err := c.call(addr, &wire.Request{Op: wire.OpFetch, Name: name})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// probeChunk runs the §4.3 capacity probe for one chunk: the chunk's m
// block names are grouped by owner and every distinct owner is probed
// with a single batched request, in parallel — one round-trip latency
// where the seed path paid m sequential dials. It returns the safe
// per-block capacity (the minimum over owners of free space divided by
// the blocks that owner would hold, sharper than the seed's uniform /m
// worst case) and the owner grouping for reservation bookkeeping.
// free caches advertisements across the chunks of one store; probed
// owners are added to it.
func (c *Client) probeChunk(name string, chunk int, free map[string]int64) (int64, map[string][]string, error) {
	m := c.Code.EncodedBlocks()
	owners := make(map[string][]string)
	for e := 0; e < m; e++ {
		bn := core.BlockName(name, chunk, e)
		addr, err := c.ownerAddr(bn)
		if err != nil {
			return 0, nil, err
		}
		owners[addr] = append(owners[addr], bn)
	}
	var missing []string
	for addr := range owners {
		if _, ok := free[addr]; !ok {
			missing = append(missing, addr)
		}
	}
	caps := make([]int64, len(missing))
	err := core.ParallelJobs(len(missing), c.workers(), func(i int) error {
		resp, err := c.call(missing[i], &wire.Request{Op: wire.OpCapBatch, Names: owners[missing[i]]})
		if err != nil && strings.Contains(err.Error(), "unknown op") {
			// A pre-batching node: fall back to the per-name probe it
			// does understand (the advertisement is the same figure).
			resp, err = c.call(missing[i], &wire.Request{Op: wire.OpGetCap})
		}
		if err != nil {
			return fmt.Errorf("node: probe %s chunk %d: %w", name, chunk, err)
		}
		caps[i] = resp.Capacity
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	for i, addr := range missing {
		free[addr] = caps[i]
	}
	perBlock := int64(-1)
	for addr, names := range owners {
		cap := free[addr] / int64(len(names))
		if perBlock < 0 || cap < perBlock {
			perBlock = cap
		}
	}
	return perBlock, owners, nil
}

// StoreFile stores data under name using capacity-probed variable
// chunking (§4.3) with parallel block fan-out. It returns the file's
// CAT.
func (c *Client) StoreFile(name string, data []byte) (*core.CAT, error) {
	n := int64(c.Code.DataBlocks())
	codec := c.codec()

	// Plan chunk sizes from batched probes. Advertisements are cached
	// per owner across the file and decremented by planned placements,
	// so a multi-chunk store cannot oversubscribe a node the way
	// repeated identical probes could.
	free := make(map[string]int64)
	var chunkSizes []int64
	remaining := int64(len(data))
	zeroRun := 0
	for chunk := 0; remaining > 0; chunk++ {
		perBlock, owners, err := c.probeChunk(name, chunk, free)
		if err != nil {
			return nil, err
		}
		chunkBytes := n * perBlock
		if c.ChunkCap > 0 && chunkBytes > c.ChunkCap {
			chunkBytes = c.ChunkCap
		}
		if chunkBytes > remaining {
			chunkBytes = remaining
		}
		if chunkBytes <= 0 {
			chunkSizes = append(chunkSizes, 0)
			zeroRun++
			if zeroRun > c.MaxZeroChunks {
				return nil, fmt.Errorf("node: store %s: %w", name, core.ErrStoreFailed)
			}
			continue
		}
		zeroRun = 0
		chunkSizes = append(chunkSizes, chunkBytes)
		remaining -= chunkBytes
		blockBytes := (chunkBytes + n - 1) / n
		for addr, names := range owners {
			free[addr] -= int64(len(names)) * blockBytes
		}
	}

	blocks, cat, err := codec.EncodeFile(name, data, chunkSizes)
	if err != nil {
		return nil, err
	}
	err = core.ParallelJobs(len(blocks), c.workers(), func(i int) error {
		if err := c.storeBlock(blocks[i].Name, blocks[i].Data); err != nil {
			return fmt.Errorf("node: store block %s: %w", blocks[i].Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := c.storeCAT(cat); err != nil {
		return nil, err
	}
	return cat, nil
}

// storeCAT places the CAT and its replicas (§4.4) in parallel.
func (c *Client) storeCAT(cat *core.CAT) error {
	catData := cat.Marshal()
	return core.ParallelJobs(c.CATReplicas+1, c.workers(), func(r int) error {
		if err := c.storeBlock(core.ReplicaName(core.CATName(cat.File), r), catData); err != nil {
			return fmt.Errorf("node: store CAT replica %d: %w", r, err)
		}
		return nil
	})
}

// LoadCAT fetches and parses the file's CAT, falling back through the
// replicas (§4.4).
func (c *Client) LoadCAT(name string) (*core.CAT, error) {
	var lastErr error
	for r := 0; r <= c.CATReplicas; r++ {
		data, err := c.fetchBlock(core.ReplicaName(core.CATName(name), r))
		if err != nil {
			lastErr = err
			continue
		}
		cat, err := core.UnmarshalCAT(name, data)
		if err != nil {
			lastErr = err
			continue
		}
		return cat, nil
	}
	return nil, fmt.Errorf("node: no CAT replica for %q: %w", name, lastErr)
}

// FetchFile retrieves and decodes the whole file. Chunks are decoded
// concurrently and each chunk reads any sufficient subset of its
// blocks, so the fetch succeeds with nodes down (degraded read).
func (c *Client) FetchFile(name string) ([]byte, error) {
	cat, err := c.LoadCAT(name)
	if err != nil {
		return nil, err
	}
	return c.codec().DecodeFile(cat, c.fetchFunc())
}

// FetchRange retrieves [off, off+length) of the file, touching only
// the chunks the range covers.
func (c *Client) FetchRange(name string, off, length int64) ([]byte, error) {
	cat, err := c.LoadCAT(name)
	if err != nil {
		return nil, err
	}
	return c.codec().DecodeRange(cat, off, length, c.fetchFunc())
}

func (c *Client) fetchFunc() core.FetchFunc {
	return func(name string) ([]byte, bool) {
		d, err := c.fetchBlock(name)
		if err != nil {
			return nil, false
		}
		return d, true
	}
}

// FetchBlock implements grid.FS.
func (c *Client) FetchBlock(name string) ([]byte, error) { return c.fetchBlock(name) }

// StoreBlocks implements grid.FS: it places pre-encoded blocks and the
// CAT with replicas, fanning the transfers out in parallel.
func (c *Client) StoreBlocks(cat *core.CAT, blocks []core.NamedBlock) error {
	err := core.ParallelJobs(len(blocks), c.workers(), func(i int) error {
		return c.storeBlock(blocks[i].Name, blocks[i].Data)
	})
	if err != nil {
		return err
	}
	return c.storeCAT(cat)
}

// DeleteFile removes every encoded block of the file and its CAT
// replicas from the ring.
func (c *Client) DeleteFile(name string) error {
	cat, err := c.LoadCAT(name)
	if err != nil {
		return err
	}
	m := c.Code.EncodedBlocks()
	var names []string
	for ci, row := range cat.Rows {
		if row.Empty() {
			continue
		}
		for e := 0; e < m; e++ {
			names = append(names, core.BlockName(name, ci, e))
		}
	}
	for r := 0; r <= c.CATReplicas; r++ {
		names = append(names, core.ReplicaName(core.CATName(name), r))
	}
	return core.ParallelJobs(len(names), c.workers(), func(i int) error {
		addr, err := c.ownerAddr(names[i])
		if err != nil {
			return err
		}
		_, err = c.call(addr, &wire.Request{Op: wire.OpDelete, Name: names[i]})
		return err
	})
}

// RepairStats reports a Client.Repair pass.
type RepairStats struct {
	// ChunksScanned counts non-empty chunks examined.
	ChunksScanned int
	// BlocksMissing counts encoded blocks found absent.
	BlocksMissing int
	// BlocksRecreated counts blocks re-encoded and stored.
	BlocksRecreated int
	// CATReplicasRecreated counts restored CAT copies.
	CATReplicasRecreated int
	// ChunksLost counts chunks that could not be decoded (below the
	// code's threshold) — their blocks cannot be re-created.
	ChunksLost int
}

// Repair implements the §4.4 recovery path from the client side: scan
// every encoded block of the file, decode each chunk from its
// survivors, re-encode, and store replacements for the missing blocks
// at their current owners (which, after a failure, are the failed
// node's identifier-space neighbors). Missing CAT replicas are also
// restored. Chunks are repaired concurrently over the worker pool. Run
// it after refreshing the ring view.
func (c *Client) Repair(name string) (RepairStats, error) {
	var st RepairStats
	var stMu sync.Mutex
	cat, err := c.LoadCAT(name)
	if err != nil {
		return st, err
	}
	m := c.Code.EncodedBlocks()
	var cis []int
	for ci, row := range cat.Rows {
		if !row.Empty() {
			cis = append(cis, ci)
		}
	}
	w := c.workers()
	err = core.ParallelJobs(len(cis), w, func(i int) error {
		ci := cis[i]
		// Scan every block of the chunk in parallel: slots keep the
		// fetched blocks index-stable without a mutex.
		have := make([]erasure.Block, m)
		ok := make([]bool, m)
		core.ParallelJobs(m, w, func(e int) error { //nolint:errcheck
			data, err := c.fetchBlock(core.BlockName(name, ci, e))
			if err == nil {
				have[e] = erasure.Block{Index: e, Data: data}
				ok[e] = true
			}
			return nil
		})
		got := make([]erasure.Block, 0, m)
		var missing []int
		for e := 0; e < m; e++ {
			if ok[e] {
				got = append(got, have[e])
			} else {
				missing = append(missing, e)
			}
		}
		stMu.Lock()
		st.ChunksScanned++
		st.BlocksMissing += len(missing)
		stMu.Unlock()
		if len(missing) == 0 {
			return nil
		}
		chunk, err := c.Code.Decode(got, int(cat.Rows[ci].Len()))
		if err != nil {
			stMu.Lock()
			st.ChunksLost++
			stMu.Unlock()
			return nil
		}
		fresh, err := c.Code.Encode(chunk)
		if err != nil {
			return fmt.Errorf("node: repair %s chunk %d: %w", name, ci, err)
		}
		byIndex := make(map[int][]byte, len(fresh))
		for _, b := range fresh {
			byIndex[b.Index] = b.Data
		}
		for _, e := range missing {
			data, present := byIndex[e]
			if !present {
				continue
			}
			if err := c.storeBlock(core.BlockName(name, ci, e), data); err != nil {
				return fmt.Errorf("node: repair %s chunk %d block %d: %w", name, ci, e, err)
			}
			stMu.Lock()
			st.BlocksRecreated++
			stMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	// Restore any missing CAT replicas.
	catData := cat.Marshal()
	for r := 0; r <= c.CATReplicas; r++ {
		rn := core.ReplicaName(core.CATName(name), r)
		if _, err := c.fetchBlock(rn); err != nil {
			if err := c.storeBlock(rn, catData); err == nil {
				st.CATReplicasRecreated++
			}
		}
	}
	return st, nil
}

// Stat queries one ring member's storage status.
func (c *Client) Stat(addr string) (capacity, used int64, blocks int, err error) {
	resp, err := c.call(addr, &wire.Request{Op: wire.OpStat})
	if err != nil {
		return 0, 0, 0, err
	}
	return resp.Capacity, resp.Used, resp.Blocks, nil
}
