package node

import (
	"fmt"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

// Client stores and retrieves files against a live ring, implementing
// the full §4.3 pipeline over real sockets: per-chunk getCapacity
// probes, capacity-driven chunk sizing, erasure coding, direct block
// transfers, and CAT placement with neighbor replicas. It also
// implements grid.FS, so the interposed I/O library can run unmodified
// against a live cluster.
type Client struct {
	Code erasure.Code
	// MaxZeroChunks bounds consecutive refused chunk placements.
	MaxZeroChunks int
	// CATReplicas is the number of extra CAT copies.
	CATReplicas int

	seed string
	ring []wire.NodeInfo
}

// NewClient builds a client bootstrapping from any ring member.
func NewClient(seedAddr string, code erasure.Code) (*Client, error) {
	c := &Client{Code: code, MaxZeroChunks: 5, CATReplicas: 2, seed: seedAddr}
	if err := c.Refresh(); err != nil {
		return nil, err
	}
	return c, nil
}

// Refresh re-pulls the membership view from the seed.
func (c *Client) Refresh() error {
	resp, err := wire.Call(c.seed, &wire.Request{Op: wire.OpRing})
	if err != nil {
		return fmt.Errorf("node: refresh ring: %w", err)
	}
	c.ring = resp.Ring
	return nil
}

// RingSize returns the client's view of the membership.
func (c *Client) RingSize() int { return len(c.ring) }

// ownerAddr resolves the node responsible for a name.
func (c *Client) ownerAddr(name string) (string, error) {
	owner, err := OwnerOf(c.ring, ids.FromName(name))
	if err != nil {
		return "", err
	}
	return owner.Addr, nil
}

// getCapacity probes the owner of the given (future) block name.
func (c *Client) getCapacity(name string) (int64, error) {
	addr, err := c.ownerAddr(name)
	if err != nil {
		return 0, err
	}
	resp, err := wire.Call(addr, &wire.Request{Op: wire.OpGetCap})
	if err != nil {
		return 0, err
	}
	return resp.Capacity, nil
}

// storeBlock sends a block directly to its owner.
func (c *Client) storeBlock(name string, data []byte) error {
	addr, err := c.ownerAddr(name)
	if err != nil {
		return err
	}
	_, err = wire.Call(addr, &wire.Request{Op: wire.OpStore, Name: name, Data: data})
	return err
}

// fetchBlock retrieves a block from its owner.
func (c *Client) fetchBlock(name string) ([]byte, error) {
	addr, err := c.ownerAddr(name)
	if err != nil {
		return nil, err
	}
	resp, err := wire.Call(addr, &wire.Request{Op: wire.OpFetch, Name: name})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// StoreFile stores data under name using capacity-probed variable
// chunking (§4.3). It returns the file's CAT.
func (c *Client) StoreFile(name string, data []byte) (*core.CAT, error) {
	n := int64(c.Code.DataBlocks())
	m := c.Code.EncodedBlocks()
	codec := &core.Codec{Code: c.Code}

	var chunkSizes []int64
	remaining := int64(len(data))
	zeroRun := 0
	for chunk := 0; remaining > 0; chunk++ {
		minCap := int64(-1)
		for e := 0; e < m; e++ {
			cap, err := c.getCapacity(core.BlockName(name, chunk, e))
			if err != nil {
				return nil, fmt.Errorf("node: probe %s chunk %d: %w", name, chunk, err)
			}
			// A conservative client divides the advertisement by m: in
			// the worst case every block of this chunk maps to the same
			// node (§4.3's multiple-simultaneous-stores guidance).
			cap /= int64(m)
			if minCap < 0 || cap < minCap {
				minCap = cap
			}
		}
		chunkBytes := n * minCap
		if chunkBytes > remaining {
			chunkBytes = remaining
		}
		if chunkBytes <= 0 {
			chunkSizes = append(chunkSizes, 0)
			zeroRun++
			if zeroRun > c.MaxZeroChunks {
				return nil, fmt.Errorf("node: store %s: %w", name, core.ErrStoreFailed)
			}
			continue
		}
		zeroRun = 0
		chunkSizes = append(chunkSizes, chunkBytes)
		remaining -= chunkBytes
	}

	blocks, cat, err := codec.EncodeFile(name, data, chunkSizes)
	if err != nil {
		return nil, err
	}
	for _, b := range blocks {
		if err := c.storeBlock(b.Name, b.Data); err != nil {
			return nil, fmt.Errorf("node: store block %s: %w", b.Name, err)
		}
	}
	catData := cat.Marshal()
	for r := 0; r <= c.CATReplicas; r++ {
		if err := c.storeBlock(core.ReplicaName(core.CATName(name), r), catData); err != nil {
			return nil, fmt.Errorf("node: store CAT replica %d: %w", r, err)
		}
	}
	return cat, nil
}

// LoadCAT fetches and parses the file's CAT, falling back through the
// replicas (§4.4).
func (c *Client) LoadCAT(name string) (*core.CAT, error) {
	var lastErr error
	for r := 0; r <= c.CATReplicas; r++ {
		data, err := c.fetchBlock(core.ReplicaName(core.CATName(name), r))
		if err != nil {
			lastErr = err
			continue
		}
		cat, err := core.UnmarshalCAT(name, data)
		if err != nil {
			lastErr = err
			continue
		}
		return cat, nil
	}
	return nil, fmt.Errorf("node: no CAT replica for %q: %w", name, lastErr)
}

// FetchFile retrieves and decodes the whole file.
func (c *Client) FetchFile(name string) ([]byte, error) {
	cat, err := c.LoadCAT(name)
	if err != nil {
		return nil, err
	}
	codec := &core.Codec{Code: c.Code}
	return codec.DecodeFile(cat, c.fetchFunc())
}

// FetchRange retrieves [off, off+length) of the file, touching only
// the chunks the range covers.
func (c *Client) FetchRange(name string, off, length int64) ([]byte, error) {
	cat, err := c.LoadCAT(name)
	if err != nil {
		return nil, err
	}
	codec := &core.Codec{Code: c.Code}
	return codec.DecodeRange(cat, off, length, c.fetchFunc())
}

func (c *Client) fetchFunc() core.FetchFunc {
	return func(name string) ([]byte, bool) {
		d, err := c.fetchBlock(name)
		if err != nil {
			return nil, false
		}
		return d, true
	}
}

// FetchBlock implements grid.FS.
func (c *Client) FetchBlock(name string) ([]byte, error) { return c.fetchBlock(name) }

// StoreBlocks implements grid.FS: it places pre-encoded blocks and the
// CAT with replicas.
func (c *Client) StoreBlocks(cat *core.CAT, blocks []core.NamedBlock) error {
	for _, b := range blocks {
		if err := c.storeBlock(b.Name, b.Data); err != nil {
			return err
		}
	}
	catData := cat.Marshal()
	for r := 0; r <= c.CATReplicas; r++ {
		if err := c.storeBlock(core.ReplicaName(core.CATName(cat.File), r), catData); err != nil {
			return err
		}
	}
	return nil
}

// RepairStats reports a Client.Repair pass.
type RepairStats struct {
	// ChunksScanned counts non-empty chunks examined.
	ChunksScanned int
	// BlocksMissing counts encoded blocks found absent.
	BlocksMissing int
	// BlocksRecreated counts blocks re-encoded and stored.
	BlocksRecreated int
	// CATReplicasRecreated counts restored CAT copies.
	CATReplicasRecreated int
	// ChunksLost counts chunks that could not be decoded (below the
	// code's threshold) — their blocks cannot be re-created.
	ChunksLost int
}

// Repair implements the §4.4 recovery path from the client side: scan
// every encoded block of the file, decode each chunk from its
// survivors, re-encode, and store replacements for the missing blocks
// at their current owners (which, after a failure, are the failed
// node's identifier-space neighbors). Missing CAT replicas are also
// restored. Run it after refreshing the ring view.
func (c *Client) Repair(name string) (RepairStats, error) {
	var st RepairStats
	cat, err := c.LoadCAT(name)
	if err != nil {
		return st, err
	}
	codec := &core.Codec{Code: c.Code}
	m := c.Code.EncodedBlocks()
	for ci, row := range cat.Rows {
		if row.Empty() {
			continue
		}
		st.ChunksScanned++
		have := make([]erasure.Block, 0, m)
		var missing []int
		for e := 0; e < m; e++ {
			bn := core.BlockName(name, ci, e)
			data, err := c.fetchBlock(bn)
			if err != nil {
				missing = append(missing, e)
				continue
			}
			have = append(have, erasure.Block{Index: e, Data: data})
		}
		st.BlocksMissing += len(missing)
		if len(missing) == 0 {
			continue
		}
		chunk, err := c.Code.Decode(have, int(row.Len()))
		if err != nil {
			st.ChunksLost++
			continue
		}
		fresh, err := codec.Code.Encode(chunk)
		if err != nil {
			return st, fmt.Errorf("node: repair %s chunk %d: %w", name, ci, err)
		}
		byIndex := make(map[int][]byte, len(fresh))
		for _, b := range fresh {
			byIndex[b.Index] = b.Data
		}
		for _, e := range missing {
			data, ok := byIndex[e]
			if !ok {
				continue
			}
			if err := c.storeBlock(core.BlockName(name, ci, e), data); err != nil {
				return st, fmt.Errorf("node: repair %s chunk %d block %d: %w", name, ci, e, err)
			}
			st.BlocksRecreated++
		}
	}
	// Restore any missing CAT replicas.
	catData := cat.Marshal()
	for r := 0; r <= c.CATReplicas; r++ {
		rn := core.ReplicaName(core.CATName(name), r)
		if _, err := c.fetchBlock(rn); err != nil {
			if err := c.storeBlock(rn, catData); err == nil {
				st.CATReplicasRecreated++
			}
		}
	}
	return st, nil
}

// Stat queries one ring member's storage status.
func (c *Client) Stat(addr string) (capacity, used int64, blocks int, err error) {
	resp, err := wire.Call(addr, &wire.Request{Op: wire.OpStat})
	if err != nil {
		return 0, 0, 0, err
	}
	return resp.Capacity, resp.Used, resp.Blocks, nil
}

// Ring returns the client's current membership view.
func (c *Client) Ring() []wire.NodeInfo { return c.ring }
