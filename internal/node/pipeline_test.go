package node

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

// victimFile searches the deterministic placement for a file name
// whose chunk-0 data-block-0 owner — the first source the hedged read
// path contacts — is survivable: it holds at most tolerance blocks of
// every chunk and at least one CAT replica lives elsewhere. Returns
// the name and the victim's ring index.
func victimFile(t *testing.T, ring []wire.NodeInfo, prefix string, chunks, m, tolerance, catReplicas int) (string, int) {
	t.Helper()
	ownerIdx := func(name string) int {
		o, err := OwnerOf(ring, ids.FromName(name))
		if err != nil {
			return -1
		}
		for i, n := range ring {
			if n.ID == o.ID {
				return i
			}
		}
		return -1
	}
	for try := 0; try < 256; try++ {
		name := fmt.Sprintf("%s-%03d.dat", prefix, try)
		victim := ownerIdx(core.BlockName(name, 0, 0))
		if victim < 0 {
			continue
		}
		ok := true
		for ci := 0; ci < chunks && ok; ci++ {
			held := 0
			for e := 0; e < m; e++ {
				if ownerIdx(core.BlockName(name, ci, e)) == victim {
					held++
				}
			}
			if held > tolerance {
				ok = false
			}
		}
		if ok {
			catElsewhere := false
			for r := 0; r <= catReplicas; r++ {
				if ownerIdx(core.ReplicaName(core.CATName(name), r)) != victim {
					catElsewhere = true
				}
			}
			ok = catElsewhere
		}
		if ok {
			return name, victim
		}
	}
	t.Fatal("no survivable block-0 owner in deterministic placement — adjust node count or prefix")
	return "", -1
}

// TestLiveFetchSurvivesStalledSourceMidStream is the acceptance fault
// case for the pipelined read path: a source freezes mid-transfer of a
// streamed block — the connection stays open, no error ever surfaces —
// and the fetch must neither stall to the RPC timeout nor fail,
// because per-source progress tracking races a replacement stream as
// soon as the laggard misses a hedge tick.
func TestLiveFetchSurvivesStalledSourceMidStream(t *testing.T) {
	const (
		chunkCap   = 2 << 20
		segment    = 128 << 10
		size       = 4 << 20 // 2 chunks; 1 MiB blocks stream in 8 segments
		hedgeDelay = 40 * time.Millisecond
	)
	_, proxies, ring := proxiedRing(t, 4, 1<<30, 4242, 0)
	code := erasure.MustXOR(2)
	c := NewStaticClientCfg(ring, code, Config{
		ChunkCap:   chunkCap,
		Segment:    segment,
		HedgeDelay: hedgeDelay,
	})
	defer c.Close()

	name, victim := victimFile(t, ring, "stall", size/chunkCap,
		code.EncodedBlocks(), code.EncodedBlocks()-code.MinNeeded(), c.Config().CATReplicas)

	data := make([]byte, size)
	rand.New(rand.NewSource(31)).Read(data)
	cat, err := c.StoreFile(name, data)
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.NumChunks(); got != size/chunkCap {
		t.Fatalf("layout drifted: %d chunks, victim selection assumed %d", got, size/chunkCap)
	}

	// Freeze the victim's response path a fraction of the way into its
	// first block stream: acks stop, bytes stop, the connection hangs.
	proxies[victim].stallResponsesAfter(64 << 10)

	start := time.Now()
	got, err := c.FetchFile(name)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("fetch with %s stalled mid-stream: %v", ring[victim].Addr, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch with a stalled source returned wrong bytes")
	}
	// The victim owns a block in the first request wave, so the read
	// cannot have finished before one hedge tick fired…
	if elapsed < hedgeDelay {
		t.Fatalf("fetch finished in %v — the stall never engaged, the test proved nothing", elapsed)
	}
	// …and replacement must beat the stall-to-timeout alternative by a
	// wide margin (the RPC timeout here is wire.DefaultTimeout, 10s).
	if elapsed > 5*time.Second {
		t.Fatalf("fetch took %v with one stalled source — hedged replacement did not engage", elapsed)
	}
}

// TestLiveFetchSurvivesDeadSourceStreaming is the dead-source arm: the
// owner of the first-requested block goes dark between store and
// fetch, so every streamed read from it dies with a connection error
// and the fetch must promptly re-source the block rather than fail.
func TestLiveFetchSurvivesDeadSourceStreaming(t *testing.T) {
	const (
		chunkCap = 2 << 20
		segment  = 128 << 10
		size     = 4 << 20
	)
	_, proxies, ring := proxiedRing(t, 4, 1<<30, 777, 0)
	code := erasure.MustXOR(2)
	c := NewStaticClientCfg(ring, code, Config{
		ChunkCap:   chunkCap,
		Segment:    segment,
		HedgeDelay: 40 * time.Millisecond,
	})
	defer c.Close()

	name, victim := victimFile(t, ring, "dead", size/chunkCap,
		code.EncodedBlocks(), code.EncodedBlocks()-code.MinNeeded(), c.Config().CATReplicas)

	data := make([]byte, size)
	rand.New(rand.NewSource(32)).Read(data)
	if _, err := c.StoreFile(name, data); err != nil {
		t.Fatal(err)
	}

	proxies[victim].goDark()

	start := time.Now()
	got, err := c.FetchFile(name)
	if err != nil {
		t.Fatalf("fetch with %s dead: %v", ring[victim].Addr, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch with a dead source returned wrong bytes")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fetch took %v with one dead source — failure replacement did not engage", elapsed)
	}
}

// TestLiveWindowedStoreThroughSlowSink drives the windowed store
// exchange into a sink whose every ack is late: the window must keep
// segments in flight ahead of the acks and the store must complete,
// not degrade into an ack-bound crawl or an error.
func TestLiveWindowedStoreThroughSlowSink(t *testing.T) {
	servers, proxies, ring := proxiedRing(t, 4, 1<<30, 99, 0)
	c := NewStaticClientCfg(ring, erasure.MustXOR(2), Config{
		ChunkCap: 256 << 10,
		Segment:  32 << 10, // 128 KiB blocks stream in 4 windowed segments
	})
	defer c.Close()

	// Every sink is slow, so the slow path is on the store's critical
	// path no matter where placement routes the blocks.
	for _, p := range proxies {
		p.throttleResponses(2 * time.Millisecond)
	}

	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(33)).Read(data)
	start := time.Now()
	if _, err := c.StoreFile("slowsink.dat", data); err != nil {
		t.Fatalf("windowed store through slow sinks: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("store took %v through 2ms-throttled sinks", elapsed)
	}

	var windowed int64
	for _, s := range servers {
		windowed += s.WindowOps()
	}
	if windowed == 0 {
		t.Fatal("no windowed op reached the backends — the store used another exchange")
	}

	got, err := c.FetchFile("slowsink.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch back through slow sinks: %v", err)
	}
}
