package node

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

// flakyProxy is a fault-injection TCP proxy: it forwards connections
// to a backend node, delaying the response stream by a per-connection
// latency drawn from a seeded RNG, and can go dark — refusing new
// connections and severing established ones, exactly what a failed or
// partitioned node looks like to a client.
//
// Two further fault modes shape the failure-detector tests:
//
//   - blackhole: connections are accepted but never forwarded, so the
//     caller's request hangs until its own timeout — what one broken
//     route of an asymmetric partition looks like (other nodes, using
//     a different address for the same member, get through fine).
//   - dropProb: with the given seeded probability a connection is
//     severed shortly after establishment, so frames probabilistically
//     vanish mid-exchange — a lossy but not dead link, which must
//     cause retries and suspicion at worst, never an eviction.
type flakyProxy struct {
	ln net.Listener

	mu       sync.Mutex
	backend  string
	rng      *rand.Rand
	maxDelay time.Duration
	dropProb float64
	conns    map[net.Conn]struct{}

	dark      atomic.Bool
	blackhole atomic.Bool
	respBytes atomic.Int64 // response bytes forwarded so far
	stallAt   atomic.Int64 // respBytes threshold to freeze responses at (0: off)
	slowNs    atomic.Int64 // per-write response latency (ns)
	wg        sync.WaitGroup
}

func newFlakyProxy(t testing.TB, backend string, seed int64, maxDelay time.Duration) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{
		ln:       ln,
		backend:  backend,
		rng:      rand.New(rand.NewSource(seed)),
		maxDelay: maxDelay,
		conns:    make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	t.Cleanup(p.close)
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

// setBackend re-points the proxy. Creating a proxy with an empty
// backend and setting it after the node exists lets the node advertise
// the proxy's address (the chicken-and-egg of proxy-routed rings).
func (p *flakyProxy) setBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// goDark severs the node: established connections die, new ones are
// refused with an immediate close.
func (p *flakyProxy) goDark() {
	p.dark.Store(true)
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// setBlackhole toggles the hung-route mode: accept, never forward.
// Unlike goDark, the caller sees no connection refusal — only silence.
func (p *flakyProxy) setBlackhole(on bool) { p.blackhole.Store(on) }

// stallResponsesAfter freezes the response path once n more bytes have
// flowed: connections stay open, requests keep arriving, and the
// answers stop mid-transfer — the silent-laggard failure mode the
// hedged fetch path must race rather than wait out. close()/goDark()
// releases the frozen forwarders.
func (p *flakyProxy) stallResponsesAfter(n int64) {
	p.stallAt.Store(p.respBytes.Load() + n)
}

// throttleResponses injects d of latency before every response write —
// a slow but moving sink/source, which stall detection must spare.
func (p *flakyProxy) throttleResponses(d time.Duration) {
	p.slowNs.Store(int64(d))
}

// copyResponses forwards backend→client while honoring the throttle
// and mid-stream stall knobs (io.Copy would forward regardless).
func (p *flakyProxy) copyResponses(dst, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := p.slowNs.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			for {
				at := p.stallAt.Load()
				if at == 0 || p.respBytes.Load() < at {
					break
				}
				if p.dark.Load() {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			p.respBytes.Add(int64(n))
		}
		if err != nil {
			return
		}
	}
}

// setDropProb sets the per-connection severance probability (seeded,
// so a given proxy's drop sequence reproduces run to run).
func (p *flakyProxy) setDropProb(prob float64) {
	p.mu.Lock()
	p.dropProb = prob
	p.mu.Unlock()
}

func (p *flakyProxy) close() {
	p.ln.Close()
	p.goDark()
	p.wg.Wait()
}

func (p *flakyProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.dark.Load() {
			conn.Close()
			continue
		}
		p.mu.Lock()
		delay := time.Duration(p.rng.Int63n(int64(p.maxDelay) + 1))
		sever := time.Duration(0)
		if p.dropProb > 0 && p.rng.Float64() < p.dropProb {
			// Sever shortly after establishment: whatever frames are in
			// flight then are lost, and the peer must redial.
			sever = delay + time.Duration(p.rng.Int63n(int64(2*time.Millisecond)))
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		if p.blackhole.Load() {
			// Hold the connection open without forwarding: the caller's
			// request disappears into the broken route until it times
			// out. close()/goDark() releases the held connections.
			continue
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.forward(conn, delay, sever)
		}()
	}
}

func (p *flakyProxy) forward(client net.Conn, delay, sever time.Duration) {
	defer func() {
		client.Close()
		p.mu.Lock()
		delete(p.conns, client)
		p.mu.Unlock()
	}()
	p.mu.Lock()
	backendAddr := p.backend
	p.mu.Unlock()
	if backendAddr == "" {
		return
	}
	backend, err := net.DialTimeout("tcp", backendAddr, 2*time.Second)
	if err != nil {
		return
	}
	defer backend.Close()
	if sever > 0 {
		timer := time.AfterFunc(sever, func() {
			client.Close()
			backend.Close()
		})
		defer timer.Stop()
	}
	p.mu.Lock()
	p.conns[backend] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, backend)
		p.mu.Unlock()
	}()
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(backend, client) //nolint:errcheck
		backend.(*net.TCPConn).CloseWrite()
		done <- struct{}{}
	}()
	go func() {
		// The injected latency sits on the response path, where a slow
		// disk or congested uplink would put it.
		time.Sleep(delay)
		p.copyResponses(client, backend)
		client.(*net.TCPConn).CloseWrite()
		done <- struct{}{}
	}()
	<-done
	<-done
}

// proxiedRing starts n standalone storage nodes with deterministic,
// evenly spaced ring IDs and a flaky proxy in front of each, and
// returns the client-side membership view that routes through the
// proxies. Placement is a pure function of the fixed IDs and block
// names, so victim selection below is deterministic run to run.
func proxiedRing(t testing.TB, n int, capacity int64, seed int64, maxDelay time.Duration) ([]*Server, []*flakyProxy, []wire.NodeInfo) {
	t.Helper()
	servers := make([]*Server, n)
	proxies := make([]*flakyProxy, n)
	ring := make([]wire.NodeInfo, n)
	for i := 0; i < n; i++ {
		var id ids.ID
		id[0] = byte(i * 256 / n)
		s, err := NewServerID("127.0.0.1:0", id, capacity, "")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		servers[i] = s
		proxies[i] = newFlakyProxy(t, s.Addr(), seed+int64(i), maxDelay)
		ring[i] = wire.NodeInfo{ID: id, Addr: proxies[i].addr()}
	}
	return servers, proxies, ring
}

// safeVictim returns the index of a ring member whose loss every chunk
// of every listed file survives: it owns at most tolerance blocks per
// chunk and at least one CAT replica of each file lives elsewhere.
func safeVictim(ring []wire.NodeInfo, files map[string]int, m, tolerance, catReplicas int) int {
	owner := func(name string) int {
		o, _ := OwnerOf(ring, ids.FromName(name))
		for i, n := range ring {
			if n.ID == o.ID {
				return i
			}
		}
		return -1
	}
	for cand := range ring {
		ok := true
		for file, chunks := range files {
			for ci := 0; ci < chunks && ok; ci++ {
				held := 0
				for e := 0; e < m; e++ {
					if owner(core.BlockName(file, ci, e)) == cand {
						held++
					}
				}
				if held > tolerance {
					ok = false
				}
			}
			catElsewhere := 0
			for r := 0; r <= catReplicas; r++ {
				if owner(core.ReplicaName(core.CATName(file), r)) != cand {
					catElsewhere++
				}
			}
			if catElsewhere == 0 {
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			return cand
		}
	}
	return -1
}

// TestLiveDegradedReadThroughFaultProxy drives the hedged-fetch path
// deterministically: a seeded latency proxy fronts every node, one
// owner goes dark after the store, and FetchFile must still return the
// exact bytes — no Repair, no ring refresh — because each chunk
// decodes from any sufficient subset of its blocks.
func TestLiveDegradedReadThroughFaultProxy(t *testing.T) {
	const (
		nodes    = 6
		fileName = "proxy-degraded.dat"
		size     = 600 << 10
		chunkCap = 64 << 10
	)
	_, proxies, ring := proxiedRing(t, nodes, 1<<30, 42, 15*time.Millisecond)
	code := erasure.MustXOR(2)

	c := NewStaticClientCfg(ring, code, Config{
		ChunkCap:   chunkCap,
		Timeout:    3 * time.Second,
		HedgeDelay: 30 * time.Millisecond,
	})
	defer c.Close()

	data := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(data)
	cat, err := c.StoreFile(fileName, data)
	if err != nil {
		t.Fatal(err)
	}

	// ChunkCap pins the layout, so the chunk count is known.
	chunks := cat.NumChunks()
	if chunks < 8 {
		t.Fatalf("layout too coarse for the test: %d chunks", chunks)
	}
	victim := safeVictim(ring, map[string]int{fileName: chunks},
		code.EncodedBlocks(), code.EncodedBlocks()-code.MinNeeded(), c.Config().CATReplicas)
	if victim < 0 {
		t.Fatal("no safe victim in deterministic placement — adjust node count or file name")
	}

	proxies[victim].goDark()

	got, err := c.FetchFile(fileName)
	if err != nil {
		t.Fatalf("degraded fetch with %s dark: %v", ring[victim].Addr, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded fetch returned wrong bytes")
	}

	// A ranged read exercises the same path per chunk.
	part, err := c.FetchRange(fileName, 100_000, 50_000)
	if err != nil || !bytes.Equal(part, data[100_000:150_000]) {
		t.Fatalf("degraded ranged read: %v", err)
	}
}

// TestLiveFetchAllProxiesSlow checks the latency arm of the fault
// proxy: every response delayed, nothing dark — the read must simply
// succeed within the hedged budget.
func TestLiveFetchAllProxiesSlow(t *testing.T) {
	_, _, ring := proxiedRing(t, 4, 1<<30, 99, 25*time.Millisecond)
	c := NewStaticClientCfg(ring, erasure.MustXOR(2), Config{
		ChunkCap:   64 << 10,
		Timeout:    5 * time.Second,
		HedgeDelay: 20 * time.Millisecond,
	})
	defer c.Close()

	data := make([]byte, 200<<10)
	rand.New(rand.NewSource(8)).Read(data)
	if _, err := c.StoreFile("slow.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchFile("slow.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch over slow proxies: %v", err)
	}
}
