package node

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

// The Live benchmarks measure the §5 data path end to end over a
// 3-node loopback ring: BenchmarkLiveStoreFile/BenchmarkLiveFetchFile
// run the concurrent pipeline (multiplexed pooled transport, batched
// probes, parallel block fan-out); the *Seq variants re-implement the
// seed transport exactly — a fresh TCP dial per request, m sequential
// capacity probes per chunk, blocks moved one at a time — over the
// same chunk layout, so the ratio isolates the transport.

const (
	benchFileSize = 4 << 20
	benchChunkCap = 32 << 10
)

func benchData() []byte {
	data := make([]byte, benchFileSize)
	rand.New(rand.NewSource(1)).Read(data)
	return data
}

// seqStoreFile mirrors the seed Client.StoreFile: per-block capacity
// probes divided by m, one single-shot dial per RPC, strictly
// sequential transfers. chunkCap imposes the same layout the pipeline
// benchmark uses so the two store identical block sets.
func seqStoreFile(ring []wire.NodeInfo, code erasure.Code, name string, data []byte, chunkCap int64) (*core.CAT, error) {
	n := int64(code.DataBlocks())
	m := code.EncodedBlocks()
	codec := &core.Codec{Code: code, Workers: 1}

	ownerAddr := func(bn string) (string, error) {
		o, err := OwnerOf(ring, ids.FromName(bn))
		return o.Addr, err
	}
	var chunkSizes []int64
	remaining := int64(len(data))
	for chunk := 0; remaining > 0; chunk++ {
		minCap := int64(-1)
		for e := 0; e < m; e++ {
			addr, err := ownerAddr(core.BlockName(name, chunk, e))
			if err != nil {
				return nil, err
			}
			resp, err := wire.Call(addr, &wire.Request{Op: wire.OpGetCap})
			if err != nil {
				return nil, err
			}
			cap := resp.Capacity / int64(m)
			if minCap < 0 || cap < minCap {
				minCap = cap
			}
		}
		chunkBytes := n * minCap
		if chunkCap > 0 && chunkBytes > chunkCap {
			chunkBytes = chunkCap
		}
		if chunkBytes > remaining {
			chunkBytes = remaining
		}
		if chunkBytes <= 0 {
			return nil, core.ErrStoreFailed
		}
		chunkSizes = append(chunkSizes, chunkBytes)
		remaining -= chunkBytes
	}
	blocks, cat, err := codec.EncodeFile(context.Background(), name, data, chunkSizes)
	if err != nil {
		return nil, err
	}
	for _, b := range blocks {
		addr, err := ownerAddr(b.Name)
		if err != nil {
			return nil, err
		}
		if _, err := wire.Call(addr, &wire.Request{Op: wire.OpStore, Name: b.Name, Data: b.Data}); err != nil {
			return nil, err
		}
	}
	catData := cat.Marshal()
	for r := 0; r <= 2; r++ {
		rn := core.ReplicaName(core.CATName(name), r)
		addr, err := ownerAddr(rn)
		if err != nil {
			return nil, err
		}
		if _, err := wire.Call(addr, &wire.Request{Op: wire.OpStore, Name: rn, Data: catData}); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// seqFetchFile mirrors the seed fetch: sequential per-block single-shot
// dials, serial chunk decode.
func seqFetchFile(ring []wire.NodeInfo, code erasure.Code, name string) ([]byte, error) {
	fetch := func(bn string) ([]byte, bool) {
		o, err := OwnerOf(ring, ids.FromName(bn))
		if err != nil {
			return nil, false
		}
		resp, err := wire.Call(o.Addr, &wire.Request{Op: wire.OpFetch, Name: bn})
		if err != nil {
			return nil, false
		}
		return resp.Data, true
	}
	var cat *core.CAT
	for r := 0; r <= 2; r++ {
		data, ok := fetch(core.ReplicaName(core.CATName(name), r))
		if !ok {
			continue
		}
		c, err := core.UnmarshalCAT(name, data)
		if err == nil {
			cat = c
			break
		}
	}
	if cat == nil {
		return nil, fmt.Errorf("no CAT for %q", name)
	}
	codec := &core.Codec{Code: code, Workers: 1}
	return codec.DecodeFile(context.Background(), cat, fetch)
}

func benchClient(b *testing.B, seed string) *Client {
	b.Helper()
	c, err := NewClientCfg(context.Background(), seed, erasure.MustXOR(2), Config{ChunkCap: benchChunkCap})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

func BenchmarkLiveStoreFile(b *testing.B) {
	_, seed := startRing(b, 3, 8<<30)
	c := benchClient(b, seed)
	data := benchData()
	b.SetBytes(benchFileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("bench-store-%d.dat", i)
		if _, err := c.StoreFile(name, data); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := c.DeleteFile(name); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkLiveStoreFileSeq(b *testing.B) {
	_, seed := startRing(b, 3, 8<<30)
	c := benchClient(b, seed) // ring discovery + cleanup only
	ring := c.Ring()
	data := benchData()
	b.SetBytes(benchFileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("bench-seqstore-%d.dat", i)
		if _, err := seqStoreFile(ring, erasure.MustXOR(2), name, data, benchChunkCap); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := c.DeleteFile(name); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkLiveFetchFile(b *testing.B) {
	_, seed := startRing(b, 3, 8<<30)
	c := benchClient(b, seed)
	data := benchData()
	if _, err := c.StoreFile("bench-fetch.dat", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchFileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := c.FetchFile("bench-fetch.dat")
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			b.Fatal("fetch mismatch")
		}
	}
}

// The *Stream benchmarks measure the windowed pipeline itself: blocks
// many segments large, stored through the pipelined StoreReader
// (encode of chunk N overlapping upload of chunk N−1, windowed
// segment exchange per block) and fetched back through the ranged
// segment stream with per-source progress hedging armed. These are
// the single-stream numbers BENCH_PR7.json floors.

const (
	benchStreamChunk   = 1 << 20 // 512 KiB blocks at xor(2,3)
	benchStreamSegment = 64 << 10
)

func benchStreamClient(b *testing.B, seed string) *Client {
	b.Helper()
	c, err := NewClientCfg(context.Background(), seed, erasure.MustXOR(2), Config{
		ChunkCap: benchStreamChunk,
		Segment:  benchStreamSegment,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

func BenchmarkLiveStoreStream(b *testing.B) {
	_, seed := startRing(b, 3, 8<<30)
	c := benchStreamClient(b, seed)
	data := benchData()
	plan := core.PlanChunkSizes(benchFileSize, benchStreamChunk)
	b.SetBytes(benchFileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("bench-winstore-%d.dat", i)
		if _, err := c.StoreReader(context.Background(), name, bytes.NewReader(data), plan); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := c.DeleteFile(name); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkLiveFetchStream(b *testing.B) {
	_, seed := startRing(b, 3, 8<<30)
	c := benchStreamClient(b, seed)
	data := benchData()
	if _, err := c.StoreFile("bench-winfetch.dat", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchFileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := c.FetchFile("bench-winfetch.dat")
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			b.Fatal("fetch mismatch")
		}
	}
}

func BenchmarkLiveFetchFileSeq(b *testing.B) {
	_, seed := startRing(b, 3, 8<<30)
	c := benchClient(b, seed)
	ring := c.Ring()
	data := benchData()
	if _, err := c.StoreFile("bench-seqfetch.dat", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchFileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := seqFetchFile(ring, erasure.MustXOR(2), "bench-seqfetch.dat")
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			b.Fatal("fetch mismatch")
		}
	}
}
