package node

import (
	"testing"

	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

func TestRingSnapshotMergeSortedDeduped(t *testing.T) {
	var selfID ids.ID
	selfID[0] = 0xFF // sorts after the tiny synthetic IDs below
	s, err := NewServerOpts("127.0.0.1:0", 1000, "", ServerOptions{ID: &selfID})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := wire.NodeInfo{ID: ids.FromUint64(3), Addr: "a:1"}
	b := wire.NodeInfo{ID: ids.FromUint64(1), Addr: "b:1"}
	c := wire.NodeInfo{ID: ids.FromUint64(2), Addr: "c:1"}
	s.applyAliveInfos([]wire.NodeInfo{a, b})
	s.applyAliveInfos([]wire.NodeInfo{c, b}) // b repeated: must not duplicate
	s.mu.Lock()
	out := append([]wire.NodeInfo(nil), s.ring...)
	s.mu.Unlock()
	if len(out) != 4 { // self + a, b, c
		t.Fatalf("merge produced %d entries", len(out))
	}
	// Sorted by ID and deduplicated; self (0xFF…) sorts last.
	if out[0].ID != b.ID || out[1].ID != c.ID || out[2].ID != a.ID {
		t.Fatalf("merge order wrong: %v", out)
	}
}

func TestServerStoreOverwriteAccounting(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", 1000, "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	call := func(req *wire.Request) *wire.Response {
		resp, _ := wire.Call(s.Addr(), req)
		return resp
	}
	if resp := call(&wire.Request{Op: wire.OpStore, Name: "x", Data: make([]byte, 400)}); resp == nil || !resp.OK {
		t.Fatal("store failed")
	}
	if s.Used() != 400 {
		t.Fatalf("used = %d", s.Used())
	}
	// Overwrite with a smaller block shrinks usage.
	if resp := call(&wire.Request{Op: wire.OpStore, Name: "x", Data: make([]byte, 100)}); resp == nil || !resp.OK {
		t.Fatal("overwrite failed")
	}
	if s.Used() != 100 {
		t.Fatalf("used after overwrite = %d", s.Used())
	}
	// Overwrite that would exceed capacity is refused and state kept.
	resp := call(&wire.Request{Op: wire.OpStore, Name: "y", Data: make([]byte, 950)})
	if resp != nil && resp.OK {
		t.Fatal("overflow store accepted")
	}
	if s.Used() != 100 || s.NumBlocks() != 1 {
		t.Fatal("refused store mutated state")
	}
}

func TestServerGetCapReflectsUsage(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", 1000, "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := wire.Call(s.Addr(), &wire.Request{Op: wire.OpGetCap})
	if err != nil || resp.Capacity != 1000 {
		t.Fatalf("fresh capacity = %d, %v", resp.Capacity, err)
	}
	if _, err := wire.Call(s.Addr(), &wire.Request{Op: wire.OpStore, Name: "b", Data: make([]byte, 600)}); err != nil {
		t.Fatal(err)
	}
	resp, err = wire.Call(s.Addr(), &wire.Request{Op: wire.OpGetCap})
	if err != nil || resp.Capacity != 400 {
		t.Fatalf("capacity after store = %d, %v", resp.Capacity, err)
	}
}

func TestServerDeleteFreesSpace(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", 1000, "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wire.Call(s.Addr(), &wire.Request{Op: wire.OpStore, Name: "d", Data: make([]byte, 500)}) //nolint:errcheck
	if _, err := wire.Call(s.Addr(), &wire.Request{Op: wire.OpDelete, Name: "d"}); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 0 || s.NumBlocks() != 0 {
		t.Fatal("delete did not free space")
	}
	// Deleting a missing block is a no-op, not an error.
	if _, err := wire.Call(s.Addr(), &wire.Request{Op: wire.OpDelete, Name: "ghost"}); err != nil {
		t.Fatal("delete of missing block errored")
	}
}

func TestServerAddOpExtendsRing(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", 1000, "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	phantom := wire.NodeInfo{ID: ids.FromName("phantom"), Addr: "203.0.113.1:1"}
	if _, err := wire.Call(s.Addr(), &wire.Request{Op: wire.OpAdd, Node: phantom}); err != nil {
		t.Fatal(err)
	}
	if s.RingSize() != 2 {
		t.Fatalf("ring size = %d after add", s.RingSize())
	}
	// Duplicate add is idempotent.
	if _, err := wire.Call(s.Addr(), &wire.Request{Op: wire.OpAdd, Node: phantom}); err != nil {
		t.Fatal(err)
	}
	if s.RingSize() != 2 {
		t.Fatal("duplicate add grew the ring")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", 1000, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestJoinViaDeadSeedFails(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", 1000, "127.0.0.1:1"); err == nil {
		t.Fatal("join through dead seed succeeded")
	}
}
