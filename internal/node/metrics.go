package node

import (
	"peerstripe/internal/telemetry"
	"peerstripe/internal/wire"
)

// clientMetrics is the Client's instrument set, resolved once at
// construction so the data paths record with bare atomic adds. The
// wire pool's per-op round-trip metrics live alongside these in the
// same registry (wire.NewPoolMetrics).
type clientMetrics struct {
	storeSeconds  *telemetry.Histogram
	fetchSeconds  *telemetry.Histogram
	repairSeconds *telemetry.Histogram
	hedgeFires    *telemetry.Counter
	probeRejects  *telemetry.Counter
}

func newClientMetrics(reg *telemetry.Registry) *clientMetrics {
	return &clientMetrics{
		storeSeconds:  reg.Histogram("ps_client_store_seconds", "Whole-file store latency (StoreFile/StoreReader)."),
		fetchSeconds:  reg.Histogram("ps_client_fetch_seconds", "File, range, and chunk fetch latency."),
		repairSeconds: reg.Histogram("ps_client_repair_seconds", "Per-file repair pass latency."),
		hedgeFires:    reg.Counter("ps_client_hedge_fires_total", "Replacement block fetches launched for stalled sources on the hedged read path."),
		probeRejects:  reg.Counter("ps_client_probe_rejects_total", "Capacity probes answered with no room — chunks emitted zero-sized and retried."),
	}
}

// serverMetrics is the Server's instrument set: per-op dispatch
// counts and latency, plus error and inflight tracking. The gauges
// derived from existing server state (staging bytes, store usage,
// repair queue) register as GaugeFuncs against the same registry.
type serverMetrics struct {
	inflight      *telemetry.Gauge
	opErrors      *telemetry.Counter
	handleSeconds *telemetry.Histogram
	ops           map[wire.Op]*telemetry.Counter

	// Membership events recorded from the server's SWIM bookkeeping —
	// these fire with or without a local detector (deaths also commit
	// via gossip from detecting peers).
	deaths      *telemetry.Counter
	refutations *telemetry.Counter
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{
		inflight:      reg.Gauge("ps_node_inflight", "Requests currently being handled."),
		opErrors:      reg.Counter("ps_node_op_errors_total", "Requests answered with an error."),
		handleSeconds: reg.Histogram("ps_node_handle_seconds", "Request handling latency across all ops."),
		ops:           make(map[wire.Op]*telemetry.Counter, len(wire.Ops)+1),
		deaths:        reg.Counter("ps_detect_deaths_total", "Member deaths committed in this node's view."),
		refutations:   reg.Counter("ps_detect_refutations_total", "Suspicions about this node it refuted with a bumped incarnation."),
	}
	for _, op := range wire.Ops {
		m.ops[op] = reg.Counter("ps_node_ops_total", "Requests handled, by protocol op.", "op", string(op))
	}
	// Unknown ops land in their own series instead of vanishing.
	m.ops[wire.Op("unknown")] = reg.Counter("ps_node_ops_total", "Requests handled, by protocol op.", "op", "unknown")
	return m
}

// opCounter resolves the per-op dispatch counter, folding ops outside
// the protocol into the "unknown" series.
func (m *serverMetrics) opCounter(op wire.Op) *telemetry.Counter {
	if c, ok := m.ops[op]; ok {
		return c
	}
	return m.ops[wire.Op("unknown")]
}

// detectorMetrics is the failure detector's instrument set: outbound
// probe traffic and the suspicions it raises.
type detectorMetrics struct {
	probes        *telemetry.Counter
	probeFailures *telemetry.Counter
	probeSeconds  *telemetry.Histogram
	suspicions    *telemetry.Counter
}

func newDetectorMetrics(reg *telemetry.Registry) detectorMetrics {
	return detectorMetrics{
		probes:        reg.Counter("ps_detect_probes_total", "Direct probes sent."),
		probeFailures: reg.Counter("ps_detect_probe_failures_total", "Direct probes that got no answer."),
		probeSeconds:  reg.Histogram("ps_detect_probe_seconds", "Direct probe round-trip time."),
		suspicions:    reg.Counter("ps_detect_suspicions_total", "Members this node marked suspect."),
	}
}
