package node

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

// SWIM-style failure detection (detector) and membership bookkeeping
// (the member table on Server).
//
// Each node periodically direct-probes one random member (OpPing over
// the pooled transport). A failed direct probe is retried indirectly:
// k other members are asked (OpPingReq) to probe the target on the
// prober's behalf, so one flaky or asymmetric link cannot condemn a
// healthy node. Only when the direct and every indirect probe fail is
// the target marked suspect — and a suspect stays in the placement
// ring until its suspicion window expires, at which point the death
// commits and repair begins.
//
// Membership deltas (join / suspect / dead / alive-refutation)
// piggyback on probe traffic and fan out epidemically (OpGossip).
// Per-member incarnation numbers order conflicting claims: only the
// member itself bumps its incarnation, when refuting a suspicion, so
// a falsely suspected node that is still reachable always wins.
//
// Pre-gossip peers answer the probe ops with "unknown op". The
// detector reads that as "reachable but old" — alive, never suspect —
// and keeps such peers current through the OpRing anti-entropy pull,
// so mixed-version rings keep working.

// DetectorConfig tunes the failure detector. Zero fields take the
// defaults noted on each; see docs/RING.md for how they trade
// detection latency against false-positive robustness.
type DetectorConfig struct {
	// ProbeInterval is the gap between probe rounds (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one direct or indirect probe (default 500ms).
	ProbeTimeout time.Duration
	// IndirectProbes is k, the number of peers asked to probe a target
	// that failed its direct probe (default 3).
	IndirectProbes int
	// SuspicionTimeout is how long a suspect may refute before its
	// death commits (default 4s).
	SuspicionTimeout time.Duration
	// GossipFanout is how many random members urgent updates (deaths,
	// refutations, fresh suspicions) are pushed to immediately, ahead
	// of the piggyback schedule (default 3).
	GossipFanout int
	// Seed fixes the probe-order randomness for deterministic tests;
	// 0 derives a per-node seed from the ring identifier.
	Seed int64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.IndirectProbes <= 0 {
		c.IndirectProbes = 3
	}
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = 4 * time.Second
	}
	if c.GossipFanout <= 0 {
		c.GossipFanout = 3
	}
	return c
}

// antiEntropyEvery is how many probe rounds pass between OpRing
// anti-entropy pulls (the full-sync fallback that keeps pre-gossip
// peers' membership flowing).
const antiEntropyEvery = 8

// member is one row of a node's membership table.
type member struct {
	info  wire.NodeInfo
	state wire.MemberState
	inc   uint64
	since time.Time // when the current state was applied (suspicion window)
	old   bool      // pre-gossip peer: answers probe ops with "unknown op"
}

// gossipEntry is one delta awaiting epidemic retransmission.
type gossipEntry struct {
	up   wire.MemberUpdate
	left int // remaining piggyback transmissions
}

// deathEvent captures a committed death together with the placement
// view that still contained the dead member — the view repair needs to
// locate the blocks that died with it.
type deathEvent struct {
	node     wire.NodeInfo
	prevRing []wire.NodeInfo
}

// gossipRetransmit is the per-delta piggyback budget: ~3·log2(n)+2
// transmissions spread a rumor through n members with high
// probability.
func gossipRetransmit(n int) int {
	if n < 2 {
		n = 2
	}
	return 3*int(math.Log2(float64(n))) + 2
}

// rebuildRingLocked recomputes the placement view: alive and suspect
// members, sorted by ID. Suspects stay in placement — one flaky link
// must not move data; only a committed death does.
func (s *Server) rebuildRingLocked() {
	ring := make([]wire.NodeInfo, 0, len(s.members))
	for _, m := range s.members {
		if m.state != wire.StateDead {
			ring = append(ring, m.info)
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].ID.Less(ring[j].ID) })
	s.ring = ring
}

// noteMemberLocked applies one membership claim under the SWIM
// precedence rules and reports whether it changed the view, the death
// event when a death committed, and whether it was a claim about this
// node that was refuted (caller should push the refutation urgently).
//
// Precedence (m = current row): alive{i} applies iff i > m.inc;
// suspect{i} applies iff (alive && i ≥ m.inc) or (suspect && i > m.inc);
// dead{i} applies iff not dead && i ≥ m.inc. Only the member itself
// increments its incarnation, so alive at a higher incarnation — a
// refutation or a rejoin — overrides any stale suspicion or death.
func (s *Server) noteMemberLocked(up wire.MemberUpdate) (applied bool, death *deathEvent, refuted bool) {
	if up.Node.ID == s.ID {
		self := s.members[s.ID]
		switch up.State {
		case wire.StateAlive:
			// Echo of our own refutation (or a peer-assisted rejoin bump):
			// adopt the higher incarnation so we never refute below it.
			if up.Inc > s.incarnation {
				s.incarnation = up.Inc
				self.inc = up.Inc
			}
		default:
			// Someone thinks we are suspect or dead. We are demonstrably
			// not: refute with a higher incarnation.
			if up.Inc >= s.incarnation {
				s.incarnation = up.Inc + 1
				self.inc = s.incarnation
				s.met.refutations.Inc()
				s.enqueueGossipLocked(wire.MemberUpdate{Node: self.info, State: wire.StateAlive, Inc: s.incarnation})
				return false, nil, true
			}
		}
		return false, nil, false
	}

	m := s.members[up.Node.ID]
	if m == nil {
		// First mention of this member. Deaths are remembered too:
		// otherwise the next anti-entropy pull from a peer that still
		// lists the member would resurrect it.
		m = &member{info: up.Node, state: up.State, inc: up.Inc, since: time.Now()}
		s.members[up.Node.ID] = m
		if up.State != wire.StateDead {
			s.rebuildRingLocked()
		}
		s.enqueueGossipLocked(up)
		return true, nil, false
	}

	ok := false
	switch up.State {
	case wire.StateAlive:
		ok = up.Inc > m.inc
	case wire.StateSuspect:
		ok = (m.state == wire.StateAlive && up.Inc >= m.inc) ||
			(m.state == wire.StateSuspect && up.Inc > m.inc)
	case wire.StateDead:
		ok = m.state != wire.StateDead && up.Inc >= m.inc
	}
	if !ok {
		if up.State == wire.StateDead && m.state == wire.StateDead && up.Inc > m.inc {
			m.inc = up.Inc // refresh the rumor's incarnation; no new event
		}
		return false, nil, false
	}
	if up.State == wire.StateDead {
		// s.ring still contains the member (it was alive or suspect);
		// that pre-death view is what repair scans against.
		death = &deathEvent{node: m.info, prevRing: append([]wire.NodeInfo(nil), s.ring...)}
	}
	m.state = up.State
	m.inc = up.Inc
	m.since = time.Now()
	if up.Node.Addr != "" {
		m.info.Addr = up.Node.Addr
	}
	s.rebuildRingLocked()
	// Re-broadcast what was applied, with our canonical address.
	s.enqueueGossipLocked(wire.MemberUpdate{Node: m.info, State: m.state, Inc: m.inc})
	return true, death, false
}

// enqueueGossipLocked schedules one delta for piggyback dissemination,
// superseding any queued claim about the same member.
func (s *Server) enqueueGossipLocked(up wire.MemberUpdate) {
	e := gossipEntry{up: up, left: gossipRetransmit(len(s.members))}
	for i := range s.gossipQ {
		if s.gossipQ[i].up.Node.ID == up.Node.ID {
			s.gossipQ[i] = e
			return
		}
	}
	s.gossipQ = append(s.gossipQ, e)
}

// takeGossipLocked returns one batch of queued deltas, charging each
// entry's retransmission budget and dropping exhausted entries.
func (s *Server) takeGossipLocked() []wire.MemberUpdate {
	if len(s.gossipQ) == 0 {
		return nil
	}
	ups := make([]wire.MemberUpdate, 0, len(s.gossipQ))
	kept := s.gossipQ[:0]
	for _, e := range s.gossipQ {
		if len(ups) < wire.MaxGossipUpdates {
			ups = append(ups, e.up)
			e.left--
		}
		if e.left > 0 {
			kept = append(kept, e)
		}
	}
	s.gossipQ = kept
	return ups
}

// gossipPayload drains one piggyback batch (plus any extra claims the
// caller wants carried regardless of queue state) into wire form.
func (s *Server) gossipPayload(extra ...wire.MemberUpdate) []byte {
	s.mu.Lock()
	ups := s.takeGossipLocked()
	s.mu.Unlock()
	return wire.EncodeUpdates(append(ups, extra...))
}

// exchangeGossip is the receiving half of a probe or gossip push:
// apply the peer's piggybacked deltas, answer with ours. A malformed
// batch is dropped — the exchange still answers, so a buggy peer
// degrades to a plain liveness probe.
func (s *Server) exchangeGossip(data []byte) []byte {
	if ups, err := wire.DecodeUpdates(data); err == nil {
		s.applyUpdates(ups)
	}
	return s.gossipPayload()
}

// applyUpdates applies a batch of received deltas and runs the
// follow-ups outside the lock: repair enqueue for committed deaths,
// urgent fanout for deaths and refutations.
func (s *Server) applyUpdates(ups []wire.MemberUpdate) {
	if len(ups) == 0 {
		return
	}
	var deaths []*deathEvent
	urgent := false
	s.mu.Lock()
	for _, up := range ups {
		_, death, refuted := s.noteMemberLocked(up)
		if death != nil {
			deaths = append(deaths, death)
		}
		urgent = urgent || refuted
	}
	s.mu.Unlock()
	for _, d := range deaths {
		s.afterApply(d, false)
	}
	if urgent {
		s.afterApply(nil, true)
	}
}

// afterApply runs the out-of-lock consequences of applied updates:
// a committed death feeds the repair daemon and, like a refutation, is
// pushed to a random fanout immediately rather than waiting for the
// piggyback schedule.
func (s *Server) afterApply(death *deathEvent, urgent bool) {
	if death != nil {
		s.met.deaths.Inc()
		if s.rep != nil {
			s.rep.noteDeath(death)
		}
		urgent = true
	}
	if urgent {
		s.pushGossip()
	}
}

// pushGossip sends the queued deltas to a few random live members now.
// Best effort: anything missed still spreads via piggyback.
func (s *Server) pushGossip() {
	fanout := 3
	timeout := 500 * time.Millisecond
	if s.det != nil {
		fanout = s.det.cfg.GossipFanout
		timeout = s.det.cfg.ProbeTimeout
	}
	peers := s.randomPeers(fanout, wire.StateAlive, ids.ID{})
	if len(peers) == 0 {
		return
	}
	payload := s.gossipPayload()
	if payload == nil {
		return
	}
	for _, p := range peers {
		if !s.goBackground(func() {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			resp, err := s.pool.CallCtx(ctx, p.Addr, &wire.Request{Op: wire.OpGossip, Data: payload}, timeout)
			if err == nil && resp != nil {
				if ups, derr := wire.DecodeUpdates(resp.Data); derr == nil {
					s.applyUpdates(ups)
				}
			}
		}) {
			return
		}
	}
}

// goBackground runs fn on the server's waitgroup unless the server is
// closing; reports whether it was started.
func (s *Server) goBackground(fn func()) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		fn()
	}()
	return true
}

// randomPeers picks up to n members other than self and skip whose
// state is at most maxState (alive only, or alive+suspect).
func (s *Server) randomPeers(n int, maxState wire.MemberState, skip ids.ID) []wire.NodeInfo {
	s.mu.Lock()
	cand := make([]wire.NodeInfo, 0, len(s.members))
	for _, m := range s.members {
		if m.info.ID == s.ID || m.info.ID == skip || m.state > maxState {
			continue
		}
		cand = append(cand, m.info)
	}
	s.mu.Unlock()
	rand.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	if len(cand) > n {
		cand = cand[:n]
	}
	return cand
}

// applyAliveInfos merges a full-ring snapshot (OpJoin reply, OpRing
// anti-entropy pull) into the member table. Snapshots carry no
// incarnations, so they only ever introduce members we have never
// heard of — a member known dead stays dead; resurrection requires a
// higher-incarnation alive claim (refutation or rejoin).
func (s *Server) applyAliveInfos(infos []wire.NodeInfo) {
	s.mu.Lock()
	changed := false
	for _, n := range infos {
		if n.ID == s.ID || n.Addr == "" {
			continue
		}
		if s.members[n.ID] == nil {
			s.members[n.ID] = &member{info: n, state: wire.StateAlive, since: time.Now()}
			changed = true
		}
	}
	if changed {
		s.rebuildRingLocked()
	}
	s.mu.Unlock()
}

// handlePingReq serves one indirect probe: probe req.Node on the
// requester's behalf and relay the verdict. The target address is
// resolved from this node's own view first — the requester's route to
// the target may be broken in a way ours is not (asymmetric
// partition), and our view may hold a fresher address.
func (s *Server) handlePingReq(req *wire.Request) *wire.Response {
	gossip := s.exchangeGossip(req.Data)
	target := req.Node
	timeout := 500 * time.Millisecond
	if s.det != nil {
		timeout = s.det.cfg.ProbeTimeout
	}
	s.mu.Lock()
	if m := s.members[target.ID]; m != nil && m.info.Addr != "" {
		target = m.info
	}
	s.mu.Unlock()
	if target.Addr == "" {
		return &wire.Response{Err: "pingreq: no address for target", Data: gossip}
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_, err := s.pool.CallCtx(ctx, target.Addr, &wire.Request{Op: wire.OpPing}, timeout)
	if err != nil && !isUnknownOp(err) {
		return &wire.Response{Err: fmt.Sprintf("pingreq: probe %s: %v", target.Addr, err), Data: gossip}
	}
	// Reached it — an "unknown op" answer means a reachable pre-gossip
	// peer, which is an alive target, not a dead one.
	return &wire.Response{OK: true, Data: gossip}
}

// statExt is the extended node status carried as JSON in the OpStat
// response's Data field: pre-gossip clients ignore it, pre-gossip
// servers leave it empty.
type statExt struct {
	Alive       int    `json:"alive"`
	Suspect     int    `json:"suspect"`
	Dead        int    `json:"dead"`
	Incarnation uint64 `json:"incarnation"`
	RepairQueue int    `json:"repairQueue"`
}

func (s *Server) statExtJSON() []byte {
	var ext statExt
	s.mu.Lock()
	for _, m := range s.members {
		switch m.state {
		case wire.StateAlive:
			ext.Alive++
		case wire.StateSuspect:
			ext.Suspect++
		case wire.StateDead:
			ext.Dead++
		}
	}
	ext.Incarnation = s.incarnation
	s.mu.Unlock()
	if s.rep != nil {
		ext.RepairQueue = s.rep.queueDepth()
	}
	b, _ := json.Marshal(ext)
	return b
}

// Members returns a snapshot of the node's membership view, sorted by
// ID, with each member's state and incarnation.
func (s *Server) Members() []wire.MemberUpdate {
	s.mu.Lock()
	out := make([]wire.MemberUpdate, 0, len(s.members))
	for _, m := range s.members {
		out = append(out, wire.MemberUpdate{Node: m.info, State: m.state, Inc: m.inc})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node.ID.Less(out[j].Node.ID) })
	return out
}

// MemberState reports this node's view of one member.
func (s *Server) MemberState(id ids.ID) (wire.MemberState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == s.ID {
		return wire.StateAlive, true
	}
	m := s.members[id]
	if m == nil {
		return 0, false
	}
	return m.state, true
}

// Incarnation returns the node's own incarnation number; it rises only
// when the node refutes a suspicion about itself.
func (s *Server) Incarnation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.incarnation
}

// detector runs the probe loop for one server.
type detector struct {
	s   *Server
	cfg DetectorConfig
	met detectorMetrics
	rng *rand.Rand // probe-order randomness; loop goroutine only
}

func newDetector(s *Server, cfg DetectorConfig) *detector {
	d := &detector{s: s, cfg: cfg.withDefaults(), met: newDetectorMetrics(s.reg)}
	seed := d.cfg.Seed
	if seed == 0 {
		seed = int64(binary.BigEndian.Uint64(s.ID[:8]))
	}
	d.rng = rand.New(rand.NewSource(seed))
	s.wg.Add(1)
	go d.loop()
	return d
}

func (d *detector) loop() {
	defer d.s.wg.Done()
	t := time.NewTicker(d.cfg.ProbeInterval)
	defer t.Stop()
	for round := 1; ; round++ {
		select {
		case <-d.s.stop:
			return
		case <-t.C:
		}
		d.expireSuspects()
		d.probeOnce()
		if round%antiEntropyEvery == 0 {
			d.antiEntropy()
		}
	}
}

// expireSuspects commits the death of every suspect whose suspicion
// window has run out without a refutation.
func (d *detector) expireSuspects() {
	s := d.s
	now := time.Now()
	var deaths []*deathEvent
	s.mu.Lock()
	var expired []wire.MemberUpdate
	for _, m := range s.members {
		if m.state == wire.StateSuspect && now.Sub(m.since) >= d.cfg.SuspicionTimeout {
			expired = append(expired, wire.MemberUpdate{Node: m.info, State: wire.StateDead, Inc: m.inc})
		}
	}
	for _, up := range expired {
		if _, death, _ := s.noteMemberLocked(up); death != nil {
			deaths = append(deaths, death)
		}
	}
	s.mu.Unlock()
	for _, death := range deaths {
		s.afterApply(death, false)
	}
}

// probeOnce runs one SWIM round: direct-probe a random member; on
// failure ask k peers for indirect probes; only when all fail, mark
// the target suspect and spread the suspicion.
func (d *detector) probeOnce() {
	s := d.s
	target, susp, ok := d.pickTarget()
	if !ok {
		return
	}
	// When probing a suspect, carry the suspicion explicitly (its queue
	// budget may be spent): the target refutes it in this very exchange
	// and the ack brings the refutation home.
	var extra []wire.MemberUpdate
	if susp.State == wire.StateSuspect {
		extra = append(extra, susp)
	}
	if d.probe(target, extra) {
		d.confirmAlive(target.ID)
		return
	}
	for _, helper := range s.randomPeers(d.cfg.IndirectProbes, wire.StateAlive, target.ID) {
		if d.probeVia(helper, target) {
			d.confirmAlive(target.ID)
			return
		}
	}
	var deaths []*deathEvent
	urgent := false
	s.mu.Lock()
	if m := s.members[target.ID]; m != nil && m.state == wire.StateAlive {
		d.met.suspicions.Inc()
		_, death, _ := s.noteMemberLocked(wire.MemberUpdate{Node: m.info, State: wire.StateSuspect, Inc: m.inc})
		if death != nil {
			deaths = append(deaths, death)
		}
		urgent = true // spread the suspicion now so the target can refute in time
	}
	s.mu.Unlock()
	for _, death := range deaths {
		s.afterApply(death, false)
	}
	if urgent {
		s.afterApply(nil, true)
	}
}

// probe direct-probes target, applying any gossip that rides the ack.
// Reports whether the target proved alive.
func (d *detector) probe(target wire.NodeInfo, extra []wire.MemberUpdate) bool {
	s := d.s
	d.met.probes.Inc()
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.ProbeTimeout)
	defer cancel()
	req := &wire.Request{Op: wire.OpPing, Data: s.gossipPayload(extra...)}
	resp, err := s.pool.CallCtx(ctx, target.Addr, req, d.cfg.ProbeTimeout)
	d.met.probeSeconds.Since(start)
	if err != nil {
		if isUnknownOp(err) {
			d.markOld(target.ID)
			return true // reachable pre-gossip peer
		}
		d.met.probeFailures.Inc()
		return false
	}
	if ups, derr := wire.DecodeUpdates(resp.Data); derr == nil {
		s.applyUpdates(ups)
	}
	return true
}

// probeVia asks helper to probe target for us (OpPingReq). The target
// address rides Request.Node but the helper prefers its own view's
// address, which is what defeats asymmetric partitions.
func (d *detector) probeVia(helper, target wire.NodeInfo) bool {
	s := d.s
	// An indirect round trip spans two probe legs.
	timeout := 2 * d.cfg.ProbeTimeout
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req := &wire.Request{Op: wire.OpPingReq, Node: target, Data: s.gossipPayload()}
	resp, err := s.pool.CallCtx(ctx, helper.Addr, req, timeout)
	if resp != nil {
		if ups, derr := wire.DecodeUpdates(resp.Data); derr == nil {
			s.applyUpdates(ups)
		}
	}
	if err != nil {
		if isUnknownOp(err) {
			d.markOld(helper.ID) // helper itself is pre-gossip; no verdict on target
		}
		return false
	}
	return resp.OK
}

// pickTarget selects a random non-dead member to probe. Returns the
// member's current claim too, so a suspect's suspicion can ride the
// probe and be refuted in the ack.
func (d *detector) pickTarget() (wire.NodeInfo, wire.MemberUpdate, bool) {
	s := d.s
	s.mu.Lock()
	cand := make([]wire.MemberUpdate, 0, len(s.members))
	for _, m := range s.members {
		if m.info.ID != s.ID && m.state != wire.StateDead {
			cand = append(cand, wire.MemberUpdate{Node: m.info, State: m.state, Inc: m.inc})
		}
	}
	s.mu.Unlock()
	if len(cand) == 0 {
		return wire.NodeInfo{}, wire.MemberUpdate{}, false
	}
	pick := cand[d.rng.Intn(len(cand))]
	return pick.Node, pick, true
}

// confirmAlive clears a suspicion using direct evidence: the prober
// itself reached the target (or a helper did). This is local only —
// other members' views clear through the target's own refutation — but
// it is the path that protects pre-gossip peers, which cannot refute.
func (d *detector) confirmAlive(id ids.ID) {
	s := d.s
	s.mu.Lock()
	if m := s.members[id]; m != nil && m.state == wire.StateSuspect {
		m.state = wire.StateAlive
		m.since = time.Now()
		s.rebuildRingLocked()
	}
	s.mu.Unlock()
}

// markOld records that a member answered a probe op with "unknown op":
// a reachable pre-gossip peer, kept current via anti-entropy instead.
func (d *detector) markOld(id ids.ID) {
	s := d.s
	s.mu.Lock()
	if m := s.members[id]; m != nil {
		m.old = true
		if m.state == wire.StateSuspect {
			m.state = wire.StateAlive
			m.since = time.Now()
			s.rebuildRingLocked()
		}
	}
	s.mu.Unlock()
}

// antiEntropy pulls a full ring snapshot from one random non-dead
// member — the pre-gossip fallback path (OpRing) that keeps mixed
// rings converging on joins even when gossip cannot reach a peer.
func (d *detector) antiEntropy() {
	s := d.s
	peers := s.randomPeers(1, wire.StateSuspect, ids.ID{})
	if len(peers) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.ProbeTimeout)
	defer cancel()
	resp, err := s.pool.CallCtx(ctx, peers[0].Addr, &wire.Request{Op: wire.OpRing}, d.cfg.ProbeTimeout)
	if err == nil && resp.OK {
		s.applyAliveInfos(resp.Ring)
	}
}
