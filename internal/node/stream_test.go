package node

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"peerstripe/internal/erasure"
	"peerstripe/internal/wire"
)

// TestLargeBlockStreamRoundTrip moves a single block larger than
// wire.MaxFrame through the transport: the store must ride
// OpStoreStream segments (a single frame cannot carry it), and the
// fetch must hit the server's BlockTooLarge refusal and reassemble the
// block from ranged OpFetchStream reads.
func TestLargeBlockStreamRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("65 MiB transfer; skipped with -short")
	}
	srv, err := NewServer("127.0.0.1:0", 256<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ring := []wire.NodeInfo{{ID: srv.ID, Addr: srv.Addr()}}
	c := NewStaticClientCfg(ring, erasure.NewNull(), Config{})
	defer c.Close()

	const blockSize = wire.MaxFrame + (1 << 20) // cannot fit one frame
	data := make([]byte, blockSize)
	rand.New(rand.NewSource(13)).Read(data)

	ctx := context.Background()
	if err := c.storeBlock(ctx, "big_0_0", data); err != nil {
		t.Fatalf("streamed store of %d bytes: %v", blockSize, err)
	}
	if ops := srv.StreamOps(); ops == 0 {
		t.Fatal("over-frame block stored without a streaming op")
	}
	got, err := c.fetchBlock(ctx, "big_0_0")
	if err != nil {
		t.Fatalf("streamed fetch: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("over-frame block round trip mismatch")
	}
}

// TestStreamStoreSegmentErrors drives the server's staging validation
// at the wire level: out-of-order segments, unknown streams, and
// overruns are refused without poisoning the node.
func TestStreamStoreSegmentErrors(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	// A segment for a stream that was never opened.
	req := wire.EncodeStoreStream("b_0_0", wire.StoreSegment{Stream: 99, Seq: 1, Total: 3, Size: 300}, make([]byte, 100))
	if _, err := wire.Call(addr, req); err == nil {
		t.Fatal("orphan continuation segment accepted")
	}

	// Declared size beyond the node's capacity is refused on seq 0,
	// before any further segments ship.
	req = wire.EncodeStoreStream("b_0_0", wire.StoreSegment{Stream: 7, Seq: 0, Total: 2, Size: 4 << 20}, make([]byte, 100))
	if _, err := wire.Call(addr, req); err == nil {
		t.Fatal("over-capacity stream accepted")
	}

	// A well-formed stream commits — and survives the transport's
	// one-retry semantics: a duplicate of the just-applied segment
	// (its ack was lost, the pool re-sent it) is re-acknowledged
	// without corrupting the assembly, mid-stream and at the final
	// segment alike.
	payload := []byte("hello streaming world")
	seg0 := wire.EncodeStoreStream("ok_0_0", wire.StoreSegment{Stream: 8, Seq: 0, Total: 2, Size: int64(len(payload))}, payload[:7])
	if _, err := wire.Call(addr, seg0); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Call(addr, seg0); err != nil {
		t.Fatalf("retried mid-stream segment refused: %v", err)
	}
	// Skipping ahead is a real inconsistency and kills the stream.
	skip := wire.EncodeStoreStream("ok_0_0", wire.StoreSegment{Stream: 8, Seq: 3, Total: 4, Size: int64(len(payload))}, payload[7:])
	if _, err := wire.Call(addr, skip); err == nil {
		t.Fatal("inconsistent segment accepted")
	}
	if _, err := wire.Call(addr, &wire.Request{Op: wire.OpFetch, Name: "ok_0_0"}); err == nil {
		t.Fatal("half-streamed block fetchable")
	}

	// A fresh, correct stream works after the abuse, and its retried
	// final segment is re-acknowledged after the commit.
	seg0 = wire.EncodeStoreStream("ok_0_0", wire.StoreSegment{Stream: 9, Seq: 0, Total: 2, Size: int64(len(payload))}, payload[:7])
	if _, err := wire.Call(addr, seg0); err != nil {
		t.Fatal(err)
	}
	fin := wire.EncodeStoreStream("ok_0_0", wire.StoreSegment{Stream: 9, Seq: 1, Total: 2, Size: int64(len(payload))}, payload[7:])
	if _, err := wire.Call(addr, fin); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Call(addr, fin); err != nil {
		t.Fatalf("retried final segment refused after commit: %v", err)
	}
	resp, err := wire.Call(addr, &wire.Request{Op: wire.OpFetch, Name: "ok_0_0"})
	if err != nil || !bytes.Equal(resp.Data, payload) {
		t.Fatalf("committed stream not fetchable: %v", err)
	}
}
