// Package node is the live implementation of PeerStripe (§5): real
// storage nodes speaking the wire protocol over TCP, a full-membership
// ring view (the directly connected configuration the paper's simulator
// and lab deployment both use), and a client that stores and retrieves
// striped, erasure-coded files against the ring.
package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"peerstripe/internal/ids"
	"peerstripe/internal/telemetry"
	"peerstripe/internal/wire"
)

// streamStaleAfter bounds how long a partial streaming upload may sit
// idle before its staging buffer is reclaimed (a crashed client).
const streamStaleAfter = 30 * time.Second

// maxStagedStreams bounds concurrently staged streaming uploads so a
// misbehaving client cannot hold unbounded partial blocks.
const maxStagedStreams = 128

// storeStage is one in-progress streaming upload. In-order streams
// (OpStoreStream) append segments until the declared size has arrived;
// windowed streams (OpStoreWindow, have != nil) place segments at
// seq*seg into a pre-sized buffer in whatever order they land. Either
// way the completed block commits atomically through the same path as
// a single-frame store.
type storeStage struct {
	name    string
	buf     []byte // assembled bytes (left nil in discard mode)
	got     int64  // bytes received so far
	next    int    // in-order: next expected segment index
	have    []bool // windowed: per-segment received bitmap
	seg     int64  // windowed: fixed segment size
	total   int
	size    int64
	touched time.Time
}

// Server is one live storage node. It serves both wire protocol
// versions: pipelined multiplexed requests per v2 connection and
// sequential single-shot v1 exchanges. Blocks larger than one frame
// arrive and leave as bounded streaming segments (OpStoreStream /
// OpFetchStream). With a DetectorConfig the node also runs the
// SWIM-style failure detector (detector.go), and with a RepairConfig
// the autonomous repair daemon (repairer.go).
type Server struct {
	ID       ids.ID
	capacity int64

	// reg is the node's always-on metrics registry (see Telemetry);
	// met holds the dispatch instruments, resolved once at
	// construction.
	reg *telemetry.Registry
	met *serverMetrics

	ln        net.Listener
	advertise string // address other nodes dial (defaults to ln.Addr())

	// pool carries the node's own outbound traffic: probes, indirect
	// probes served for peers, gossip pushes, and join broadcasts.
	pool *wire.Pool
	det  *detector
	rep  *repairer

	// streamOps counts served streaming segment requests; tests assert
	// large transfers actually took the streaming path.
	streamOps atomic.Int64
	// windowOps counts the subset of streamOps served as out-of-order
	// OpStoreWindow segments; tests assert the windowed path engaged
	// (or, against old peers, that the fallback avoided it).
	windowOps atomic.Int64
	// fetchOps counts served block reads (OpFetch + OpFetchStream);
	// tests assert ranged reads touch only the chunks they must.
	fetchOps atomic.Int64

	mu          sync.Mutex
	maxInflight int
	used        int64
	blocks      map[string][]byte
	blockSizes  map[string]int64 // logical sizes in discard mode
	stages      map[uint64]*storeStage
	committed   map[uint64]time.Time // recently committed streams, for retried final acks
	discard     bool
	ring        []wire.NodeInfo // placement view: alive+suspect members, sorted by ID
	members     map[ids.ID]*member
	incarnation uint64        // self incarnation; bumps only to refute suspicion
	gossipQ     []gossipEntry // deltas awaiting epidemic retransmission
	conns       map[net.Conn]struct{}
	closed      bool
	stop        chan struct{}
	wg          sync.WaitGroup
}

// StreamOps returns how many streaming segment requests were served.
func (s *Server) StreamOps() int64 { return s.streamOps.Load() }

// WindowOps returns how many windowed (out-of-order) upload segments
// were served.
func (s *Server) WindowOps() int64 { return s.windowOps.Load() }

// FetchOps returns how many block read requests were served.
func (s *Server) FetchOps() int64 { return s.fetchOps.Load() }

// SetDiscard switches the node into accounting-only mode: stores are
// accepted (capacity checked, usage tracked) but the bytes are
// dropped. Test harnesses measuring client-side memory use it so the
// in-process server's copy of the data does not dominate the heap.
func (s *Server) SetDiscard(on bool) {
	s.mu.Lock()
	s.discard = on
	s.mu.Unlock()
}

// SetMaxInflight bounds concurrently served requests per v2
// connection (0 selects wire.DefaultInflight). Connections accepted
// after the call pick up the new bound.
func (s *Server) SetMaxInflight(n int) {
	s.mu.Lock()
	s.maxInflight = n
	s.mu.Unlock()
}

// ServerOptions configures the optional server subsystems. The zero
// value reproduces NewServer: address-derived identity, seed join, no
// failure detector, no repair daemon.
type ServerOptions struct {
	// ID overrides the address-derived ring identifier — stable
	// identity across restarts and deterministic test placement.
	ID *ids.ID
	// Advertise is the address other nodes should dial (defaults to
	// the listen address) — proxy-fronted and NATed deployments.
	Advertise string
	// StaticRing preloads the membership view instead of joining
	// through a seed — fixed configurations and test harnesses that
	// route inter-node traffic through fault proxies. When set, the
	// seed address is ignored.
	StaticRing []wire.NodeInfo
	// Detector, when non-nil, runs the SWIM-style failure detector:
	// periodic probes, indirect probes, suspicion, death commits, and
	// membership gossip (detector.go).
	Detector *DetectorConfig
	// Repair, when non-nil, runs the autonomous repair daemon: files
	// whose metadata this node holds are re-repaired through the live
	// client path when a death commits (repairer.go). Deaths commit
	// via the local detector or via gossip from detecting peers, so
	// Repair is useful with or without Detector.
	Repair *RepairConfig
}

// NewServer creates a node contributing capacity bytes, listening on
// addr ("127.0.0.1:0" for an ephemeral test port). If seedAddr is
// non-empty the node joins the existing ring through it (Figure 1);
// otherwise it starts a new ring. The node's identifier is derived
// from its listen address.
func NewServer(addr string, capacity int64, seedAddr string) (*Server, error) {
	return NewServerOpts(addr, capacity, seedAddr, ServerOptions{})
}

// NewServerID is NewServer with an explicit ring identifier: stable
// identity across restarts (psnode -name) and deterministic placement
// in test harnesses.
func NewServerID(addr string, id ids.ID, capacity int64, seedAddr string) (*Server, error) {
	return NewServerOpts(addr, capacity, seedAddr, ServerOptions{ID: &id})
}

// NewServerOpts is NewServer with the optional subsystems configured.
func NewServerOpts(addr string, capacity int64, seedAddr string, o ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listen %s: %w", addr, err)
	}
	reg := telemetry.NewRegistry()
	s := &Server{
		capacity:  capacity,
		reg:       reg,
		met:       newServerMetrics(reg),
		ln:        ln,
		pool:      wire.NewPool(),
		blocks:    make(map[string][]byte),
		stages:    make(map[uint64]*storeStage),
		committed: make(map[uint64]time.Time),
		conns:     make(map[net.Conn]struct{}),
		members:   make(map[ids.ID]*member),
		stop:      make(chan struct{}),
	}
	s.registerStateMetrics()
	if o.ID != nil {
		s.ID = *o.ID
	} else {
		s.ID = ids.FromName("node@" + ln.Addr().String())
	}
	s.advertise = o.Advertise
	if s.advertise == "" {
		s.advertise = ln.Addr().String()
	}
	self := wire.NodeInfo{ID: s.ID, Addr: s.advertise}
	s.members[s.ID] = &member{info: self, state: wire.StateAlive}
	for _, n := range o.StaticRing {
		if n.ID != s.ID {
			s.members[n.ID] = &member{info: n, state: wire.StateAlive}
		}
	}
	s.rebuildRingLocked() // no lock needed yet: not serving

	s.wg.Add(1)
	go s.acceptLoop()

	if seedAddr != "" && len(o.StaticRing) == 0 {
		resp, err := wire.Call(seedAddr, &wire.Request{Op: wire.OpJoin, Node: self})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("node: join via %s: %w", seedAddr, err)
		}
		s.applyAliveInfos(resp.Ring)
	}
	if o.Repair != nil {
		s.rep, err = newRepairer(s, *o.Repair)
		if err != nil {
			s.Close()
			return nil, err
		}
	}
	if o.Detector != nil {
		s.det = newDetector(s, *o.Detector)
	}
	return s, nil
}

// Addr returns the node's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Telemetry returns the node's metrics registry: per-op dispatch
// counts and latency, inflight and staging gauges, storage usage, and
// — when the subsystems run — detector and repair metrics. Callers may
// snapshot or render it at will.
func (s *Server) Telemetry() *telemetry.Registry { return s.reg }

// registerStateMetrics mirrors the server's existing state — storage
// accounting, staged streaming uploads, the streaming op counters —
// into the registry as func-backed metrics, read at snapshot time
// under the server lock.
func (s *Server) registerStateMetrics() {
	s.reg.GaugeFunc("ps_node_capacity_bytes", "Capacity this node contributes.", func() int64 {
		return s.capacity
	})
	s.reg.GaugeFunc("ps_node_used_bytes", "Bytes currently stored.", s.Used)
	s.reg.GaugeFunc("ps_node_blocks", "Blocks currently held.", func() int64 {
		return int64(s.NumBlocks())
	})
	s.reg.GaugeFunc("ps_node_staging_bytes", "Bytes sitting in partial streaming-upload staging buffers.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var n int64
		for _, st := range s.stages {
			n += st.got
		}
		return n
	})
	s.reg.GaugeFunc("ps_node_staging_streams", "Streaming uploads currently staged.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.stages))
	})
	s.reg.CounterFunc("ps_node_stream_segments_total", "Streaming segment requests served (uploads and ranged reads).", s.streamOps.Load)
	s.reg.CounterFunc("ps_node_window_segments_total", "Out-of-order windowed upload segments served.", s.windowOps.Load)
	s.reg.CounterFunc("ps_node_block_reads_total", "Block read requests served (OpFetch + OpFetchStream).", s.fetchOps.Load)
}

// Close stops serving: the detector and repair daemon stop, the
// listener and every open connection are closed (persistent v2 clients
// see the hangup and fail over). Stored blocks are discarded, as when
// a desktop departs.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.stop)
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	// Closing the pool fails any in-flight probe or gossip push
	// immediately, so the background loops observe stop promptly.
	s.pool.Close()
	if s.rep != nil {
		s.rep.closeClient()
	}
	s.wg.Wait()
	return err
}

// RingSize returns the node's current membership view size.
func (s *Server) RingSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Used returns bytes currently stored.
func (s *Server) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// NumBlocks returns the number of blocks held.
func (s *Server) NumBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		inflight := s.maxInflight
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			wire.Serve(conn, s.handle, inflight)
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// handle instruments one request around the dispatch: per-op count,
// inflight gauge, handling latency, and an error count when the
// response carries one.
func (s *Server) handle(req *wire.Request) *wire.Response {
	start := time.Now()
	s.met.inflight.Add(1)
	resp := s.dispatch(req)
	s.met.inflight.Add(-1)
	s.met.opCounter(req.Op).Inc()
	s.met.handleSeconds.Since(start)
	if resp.Err != "" {
		s.met.opErrors.Inc()
	}
	return resp
}

func (s *Server) dispatch(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpJoin:
		return s.handleJoin(req)
	case wire.OpRing:
		s.mu.Lock()
		ring := append([]wire.NodeInfo(nil), s.ring...)
		s.mu.Unlock()
		return &wire.Response{OK: true, Ring: ring}
	case wire.OpAdd:
		s.handleAdd(req.Node)
		return &wire.Response{OK: true}
	case wire.OpPing:
		return &wire.Response{OK: true, Data: s.exchangeGossip(req.Data)}
	case wire.OpPingReq:
		return s.handlePingReq(req)
	case wire.OpGossip:
		return &wire.Response{OK: true, Data: s.exchangeGossip(req.Data)}
	case wire.OpGetCap, wire.OpCapBatch:
		// The batched form answers for every block name the client
		// grouped onto this owner in one round trip; the advertisement
		// is the same free-space figure either way (§4.3).
		s.mu.Lock()
		free := s.capacity - s.used
		s.mu.Unlock()
		if free < 0 {
			free = 0
		}
		return &wire.Response{OK: true, Capacity: free}
	case wire.OpStore:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.commitBlockLocked(req.Name, req.Data, int64(len(req.Data)))
	case wire.OpStoreStream:
		return s.handleStoreStream(req)
	case wire.OpStoreWindow:
		return s.handleStoreWindow(req)
	case wire.OpFetch:
		s.fetchOps.Add(1)
		s.mu.Lock()
		data, ok := s.blocks[req.Name]
		size := int64(len(data))
		if ok && s.discard {
			size = s.blockSizes[req.Name]
		}
		s.mu.Unlock()
		if !ok {
			return &wire.Response{Err: fmt.Sprintf("no block %q", req.Name)}
		}
		if size > maxSingleFrameBlock {
			// The full block cannot ride one response frame; tell the
			// client to come back with ranged streaming reads.
			return &wire.Response{Err: fmt.Sprintf("%s: %q is %d bytes", wire.BlockTooLarge, req.Name, size)}
		}
		return &wire.Response{OK: true, Data: data}
	case wire.OpFetchStream:
		return s.handleFetchStream(req)
	case wire.OpDelete:
		s.mu.Lock()
		defer s.mu.Unlock()
		if size, ok := s.sizeOfLocked(req.Name); ok {
			s.used -= size
			delete(s.blocks, req.Name)
			delete(s.blockSizes, req.Name)
		}
		return &wire.Response{OK: true}
	case wire.OpStat:
		// The extended status (member states, repair queue) rides Data
		// as JSON: old clients ignore it, old servers leave it empty.
		ext := s.statExtJSON()
		s.mu.Lock()
		defer s.mu.Unlock()
		return &wire.Response{OK: true, Capacity: s.capacity, Used: s.used, Blocks: len(s.blocks), Data: ext}
	default:
		return &wire.Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// maxSingleFrameBlock is the largest block served through a plain
// OpFetch response; bigger blocks are refused with wire.BlockTooLarge
// so the client switches to ranged streaming reads. The margin leaves
// room for the frame's own fields.
const maxSingleFrameBlock = wire.MaxFrame - 4096

// sizeOfLocked returns a held block's logical size. In discard mode
// the bytes are dropped at commit, so the size rides the sizes side
// table instead of len(blocks[name]).
func (s *Server) sizeOfLocked(name string) (int64, bool) {
	data, ok := s.blocks[name]
	if !ok {
		return 0, false
	}
	if s.discard {
		return s.blockSizes[name], true
	}
	return int64(len(data)), true
}

// commitBlockLocked applies the capacity check and stores (or, in
// discard mode, accounts for) one complete block. Both the
// single-frame store and the final streaming segment land here, so the
// two paths cannot drift.
func (s *Server) commitBlockLocked(name string, data []byte, size int64) *wire.Response {
	delta := size
	if old, dup := s.sizeOfLocked(name); dup {
		delta -= old
	}
	if s.used+delta > s.capacity {
		return &wire.Response{Err: "no space"}
	}
	if s.discard {
		if s.blockSizes == nil {
			s.blockSizes = make(map[string]int64)
		}
		s.blocks[name] = nil
		s.blockSizes[name] = size
	} else {
		s.blocks[name] = data
	}
	s.used += delta
	return &wire.Response{OK: true}
}

// handleStoreStream serves one upload segment: seq 0 opens a staging
// buffer (after an early capacity check), later segments append in
// order, and the final one commits the assembled block through the
// single-frame store path. Stale stages from crashed clients are
// reclaimed on every streaming call.
func (s *Server) handleStoreStream(req *wire.Request) *wire.Response {
	s.streamOps.Add(1)
	seg, err := wire.ParseStoreStream(req)
	if err != nil {
		return &wire.Response{Err: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	s.reapStaleStagesLocked(now)
	st := s.stages[seg.Stream]
	if st == nil {
		// The pooled transport retries a request exactly once when its
		// connection dies under it; a retried final segment whose ack
		// was lost arrives after the stage committed and is simply
		// re-acknowledged.
		if _, done := s.committed[seg.Stream]; done && seg.Seq == seg.Total-1 {
			return &wire.Response{OK: true}
		}
		if seg.Seq != 0 {
			return &wire.Response{Err: fmt.Sprintf("stream %d: segment %d for unknown stream", seg.Stream, seg.Seq)}
		}
		if len(s.stages) >= maxStagedStreams {
			return &wire.Response{Err: "too many concurrent streams"}
		}
		// Refuse early what the commit would refuse anyway, before the
		// client ships the remaining segments.
		delta := seg.Size
		if old, dup := s.sizeOfLocked(req.Name); dup {
			delta -= old
		}
		if s.used+delta > s.capacity {
			return &wire.Response{Err: "no space"}
		}
		st = &storeStage{name: req.Name, total: seg.Total, size: seg.Size}
		s.stages[seg.Stream] = st
	}
	if st.name == req.Name && st.total == seg.Total && st.size == seg.Size && st.next == seg.Seq+1 {
		// Duplicate of the segment just applied — its ack was lost and
		// the transport retried. Re-acknowledge without appending.
		st.touched = now
		return &wire.Response{OK: true}
	}
	if st.name != req.Name || st.total != seg.Total || st.size != seg.Size || st.next != seg.Seq {
		delete(s.stages, seg.Stream)
		return &wire.Response{Err: fmt.Sprintf("stream %d: inconsistent segment %d", seg.Stream, seg.Seq)}
	}
	if st.got+int64(len(req.Data)) > st.size {
		delete(s.stages, seg.Stream)
		return &wire.Response{Err: fmt.Sprintf("stream %d: overrun past declared %d bytes", seg.Stream, st.size)}
	}
	if !s.discard {
		st.buf = append(st.buf, req.Data...)
	}
	st.got += int64(len(req.Data))
	st.touched = now
	st.next++
	if st.next < st.total {
		return &wire.Response{OK: true}
	}
	delete(s.stages, seg.Stream)
	if st.got != st.size {
		return &wire.Response{Err: fmt.Sprintf("stream %d: got %d of %d bytes", seg.Stream, st.got, st.size)}
	}
	resp := s.commitBlockLocked(st.name, st.buf, st.size)
	if resp.OK {
		s.committed[seg.Stream] = now
	}
	return resp
}

// reapStaleStagesLocked reclaims staging buffers of crashed clients
// and expires the committed-stream re-ack entries. Called on every
// streaming request so the maps cannot grow unbounded.
func (s *Server) reapStaleStagesLocked(now time.Time) {
	for id, st := range s.stages {
		if now.Sub(st.touched) > streamStaleAfter {
			delete(s.stages, id)
		}
	}
	for id, when := range s.committed {
		if now.Sub(when) > streamStaleAfter {
			delete(s.committed, id)
		}
	}
}

// handleStoreWindow serves one windowed upload segment: the fixed
// segment size pins each seq to byte offset seq*seg, so segments place
// directly into a pre-sized staging buffer in whatever order the
// client's window delivers them. The first segment to arrive — not
// necessarily seq 0 — opens the stage after an early capacity check;
// the one completing the bitmap commits the block through the
// single-frame store path. Acks carry the bytes staged so far in
// Capacity, the flow-control signal windowed senders advance on.
func (s *Server) handleStoreWindow(req *wire.Request) *wire.Response {
	s.streamOps.Add(1)
	s.windowOps.Add(1)
	seg, err := wire.ParseStoreWindow(req)
	if err != nil {
		return &wire.Response{Err: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	s.reapStaleStagesLocked(now)
	st := s.stages[seg.Stream]
	if st == nil {
		// The pooled transport retries a request exactly once when its
		// connection dies under it; a retried segment whose ack was
		// lost can arrive after the stage committed. Re-acknowledge.
		if _, done := s.committed[seg.Stream]; done {
			return &wire.Response{OK: true, Capacity: seg.Size}
		}
		if len(s.stages) >= maxStagedStreams {
			return &wire.Response{Err: "too many concurrent streams"}
		}
		// Refuse early what the commit would refuse anyway, before the
		// client ships the remaining segments.
		delta := seg.Size
		if old, dup := s.sizeOfLocked(req.Name); dup {
			delta -= old
		}
		if s.used+delta > s.capacity {
			return &wire.Response{Err: "no space"}
		}
		st = &storeStage{
			name: req.Name, total: seg.Total, size: seg.Size,
			seg: seg.Seg, have: make([]bool, seg.Total),
		}
		if !s.discard {
			st.buf = make([]byte, seg.Size)
		}
		s.stages[seg.Stream] = st
	}
	if st.have == nil || st.name != req.Name || st.total != seg.Total || st.size != seg.Size || st.seg != seg.Seg {
		delete(s.stages, seg.Stream)
		return &wire.Response{Err: fmt.Sprintf("stream %d: inconsistent segment %d", seg.Stream, seg.Seq)}
	}
	if st.have[seg.Seq] {
		// Duplicate of an applied segment — its ack was lost and the
		// transport retried. Re-acknowledge without placing.
		st.touched = now
		return &wire.Response{OK: true, Capacity: st.got}
	}
	lo := int64(seg.Seq) * seg.Seg
	hi := lo + seg.Seg
	if hi > st.size {
		hi = st.size
	}
	if int64(len(req.Data)) != hi-lo {
		delete(s.stages, seg.Stream)
		return &wire.Response{Err: fmt.Sprintf("stream %d: segment %d carries %d bytes, want %d", seg.Stream, seg.Seq, len(req.Data), hi-lo)}
	}
	if !s.discard {
		copy(st.buf[lo:hi], req.Data)
	}
	st.have[seg.Seq] = true
	st.got += hi - lo
	st.touched = now
	if st.got < st.size {
		return &wire.Response{OK: true, Capacity: st.got}
	}
	delete(s.stages, seg.Stream)
	resp := s.commitBlockLocked(st.name, st.buf, st.size)
	if resp.OK {
		s.committed[seg.Stream] = now
		resp.Capacity = st.size
	}
	return resp
}

// handleFetchStream serves one ranged block read: stateless on the
// server, with the total size in Capacity so the client knows how many
// segments remain.
func (s *Server) handleFetchStream(req *wire.Request) *wire.Response {
	s.streamOps.Add(1)
	s.fetchOps.Add(1)
	off, maxLen, err := wire.ParseFetchStream(req)
	if err != nil {
		return &wire.Response{Err: err.Error()}
	}
	s.mu.Lock()
	data, ok := s.blocks[req.Name]
	size, _ := s.sizeOfLocked(req.Name)
	s.mu.Unlock()
	if !ok {
		return &wire.Response{Err: fmt.Sprintf("no block %q", req.Name)}
	}
	if off >= size {
		return &wire.Response{Err: fmt.Sprintf("offset %d beyond block of %d bytes", off, size)}
	}
	// Clamp against the physical bytes, which in discard mode are
	// empty regardless of the logical size.
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	hi := off + maxLen
	if hi > int64(len(data)) {
		hi = int64(len(data))
	}
	return &wire.Response{OK: true, Data: data[off:hi], Capacity: size}
}

// handleJoin registers a new member, replies with the full ring, and
// broadcasts the addition to current members. A member that was
// declared dead and rejoins is resurrected with a bumped incarnation,
// so the join gossip overrides the lingering death rumor.
func (s *Server) handleJoin(req *wire.Request) *wire.Response {
	s.mu.Lock()
	peers := append([]wire.NodeInfo(nil), s.ring...)
	inc := uint64(0)
	if m := s.members[req.Node.ID]; m != nil && m.state != wire.StateAlive {
		inc = m.inc + 1
	}
	s.noteMemberLocked(wire.MemberUpdate{Node: req.Node, State: wire.StateAlive, Inc: inc})
	ring := append([]wire.NodeInfo(nil), s.ring...)
	self := s.selfInfoLocked()
	s.mu.Unlock()

	for _, p := range peers {
		if p.ID == self.ID || p.ID == req.Node.ID {
			continue
		}
		// Best effort: a missed broadcast heals on the next OpRing pull
		// (old peers) or through gossip (detector peers).
		go wire.Call(p.Addr, &wire.Request{Op: wire.OpAdd, Node: req.Node}) //nolint:errcheck
	}
	return &wire.Response{OK: true, Ring: ring}
}

// handleAdd applies one membership broadcast, resurrecting a known
// dead member (the broadcast means it just rejoined through a peer).
func (s *Server) handleAdd(n wire.NodeInfo) {
	s.mu.Lock()
	inc := uint64(0)
	if m := s.members[n.ID]; m != nil && m.state != wire.StateAlive {
		inc = m.inc + 1
	}
	_, death, _ := s.noteMemberLocked(wire.MemberUpdate{Node: n, State: wire.StateAlive, Inc: inc})
	s.mu.Unlock()
	s.afterApply(death, false)
}

func (s *Server) selfInfoLocked() wire.NodeInfo {
	if m := s.members[s.ID]; m != nil {
		return m.info
	}
	return wire.NodeInfo{ID: s.ID, Addr: s.advertise}
}

// OwnerOf returns the ring member numerically closest to key — the
// DHT mapping evaluated on a membership view.
func OwnerOf(ring []wire.NodeInfo, key ids.ID) (wire.NodeInfo, error) {
	if len(ring) == 0 {
		return wire.NodeInfo{}, errors.New("node: empty ring")
	}
	best := ring[0]
	bestD := key.Dist(best.ID)
	for _, n := range ring[1:] {
		if d := key.Dist(n.ID); d.Cmp(bestD) < 0 {
			best, bestD = n, d
		}
	}
	return best, nil
}
