// Package node is the live implementation of PeerStripe (§5): real
// storage nodes speaking the wire protocol over TCP, a full-membership
// ring view (the directly connected configuration the paper's simulator
// and lab deployment both use), and a client that stores and retrieves
// striped, erasure-coded files against the ring.
package node

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"peerstripe/internal/ids"
	"peerstripe/internal/wire"
)

// Server is one live storage node. It serves both wire protocol
// versions: pipelined multiplexed requests per v2 connection and
// sequential single-shot v1 exchanges.
type Server struct {
	ID       ids.ID
	capacity int64

	ln net.Listener

	mu          sync.Mutex
	maxInflight int
	used        int64
	blocks      map[string][]byte
	ring        []wire.NodeInfo // sorted by ID, includes self
	conns       map[net.Conn]struct{}
	closed      bool
	wg          sync.WaitGroup
}

// SetMaxInflight bounds concurrently served requests per v2
// connection (0 selects wire.DefaultInflight). Connections accepted
// after the call pick up the new bound.
func (s *Server) SetMaxInflight(n int) {
	s.mu.Lock()
	s.maxInflight = n
	s.mu.Unlock()
}

// NewServer creates a node contributing capacity bytes, listening on
// addr ("127.0.0.1:0" for an ephemeral test port). If seedAddr is
// non-empty the node joins the existing ring through it (Figure 1);
// otherwise it starts a new ring. The node's identifier is derived
// from its listen address.
func NewServer(addr string, capacity int64, seedAddr string) (*Server, error) {
	return newServer(addr, nil, capacity, seedAddr)
}

// NewServerID is NewServer with an explicit ring identifier: stable
// identity across restarts (psnode -name) and deterministic placement
// in test harnesses.
func NewServerID(addr string, id ids.ID, capacity int64, seedAddr string) (*Server, error) {
	return newServer(addr, &id, capacity, seedAddr)
}

func newServer(addr string, id *ids.ID, capacity int64, seedAddr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listen %s: %w", addr, err)
	}
	s := &Server{
		capacity: capacity,
		ln:       ln,
		blocks:   make(map[string][]byte),
		conns:    make(map[net.Conn]struct{}),
	}
	if id != nil {
		s.ID = *id
	} else {
		s.ID = ids.FromName("node@" + ln.Addr().String())
	}
	self := wire.NodeInfo{ID: s.ID, Addr: ln.Addr().String()}
	s.ring = []wire.NodeInfo{self}

	s.wg.Add(1)
	go s.acceptLoop()

	if seedAddr != "" {
		resp, err := wire.Call(seedAddr, &wire.Request{Op: wire.OpJoin, Node: self})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("node: join via %s: %w", seedAddr, err)
		}
		s.mu.Lock()
		s.ring = mergeRing(s.ring, resp.Ring)
		s.mu.Unlock()
	}
	return s, nil
}

// Addr returns the node's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops serving: the listener and every open connection are
// closed (persistent v2 clients see the hangup and fail over). Stored
// blocks are discarded, as when a desktop departs.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// RingSize returns the node's current membership view size.
func (s *Server) RingSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Used returns bytes currently stored.
func (s *Server) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// NumBlocks returns the number of blocks held.
func (s *Server) NumBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		inflight := s.maxInflight
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			wire.Serve(conn, s.handle, inflight)
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) handle(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpJoin:
		return s.handleJoin(req)
	case wire.OpRing:
		s.mu.Lock()
		ring := append([]wire.NodeInfo(nil), s.ring...)
		s.mu.Unlock()
		return &wire.Response{OK: true, Ring: ring}
	case wire.OpAdd:
		s.mu.Lock()
		s.ring = mergeRing(s.ring, []wire.NodeInfo{req.Node})
		s.mu.Unlock()
		return &wire.Response{OK: true}
	case wire.OpGetCap, wire.OpCapBatch:
		// The batched form answers for every block name the client
		// grouped onto this owner in one round trip; the advertisement
		// is the same free-space figure either way (§4.3).
		s.mu.Lock()
		free := s.capacity - s.used
		s.mu.Unlock()
		if free < 0 {
			free = 0
		}
		return &wire.Response{OK: true, Capacity: free}
	case wire.OpStore:
		s.mu.Lock()
		defer s.mu.Unlock()
		old, dup := s.blocks[req.Name]
		delta := int64(len(req.Data))
		if dup {
			delta -= int64(len(old))
		}
		if s.used+delta > s.capacity {
			return &wire.Response{Err: "no space"}
		}
		s.blocks[req.Name] = req.Data
		s.used += delta
		return &wire.Response{OK: true}
	case wire.OpFetch:
		s.mu.Lock()
		data, ok := s.blocks[req.Name]
		s.mu.Unlock()
		if !ok {
			return &wire.Response{Err: fmt.Sprintf("no block %q", req.Name)}
		}
		return &wire.Response{OK: true, Data: data}
	case wire.OpDelete:
		s.mu.Lock()
		defer s.mu.Unlock()
		if data, ok := s.blocks[req.Name]; ok {
			s.used -= int64(len(data))
			delete(s.blocks, req.Name)
		}
		return &wire.Response{OK: true}
	case wire.OpStat:
		s.mu.Lock()
		defer s.mu.Unlock()
		return &wire.Response{OK: true, Capacity: s.capacity, Used: s.used, Blocks: len(s.blocks)}
	default:
		return &wire.Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// handleJoin registers a new member, replies with the full ring, and
// broadcasts the addition to current members.
func (s *Server) handleJoin(req *wire.Request) *wire.Response {
	s.mu.Lock()
	peers := append([]wire.NodeInfo(nil), s.ring...)
	s.ring = mergeRing(s.ring, []wire.NodeInfo{req.Node})
	ring := append([]wire.NodeInfo(nil), s.ring...)
	self := s.selfLocked()
	s.mu.Unlock()

	for _, p := range peers {
		if p.ID == self.ID || p.ID == req.Node.ID {
			continue
		}
		// Best effort: a missed broadcast heals on the next OpRing pull.
		go wire.Call(p.Addr, &wire.Request{Op: wire.OpAdd, Node: req.Node}) //nolint:errcheck
	}
	return &wire.Response{OK: true, Ring: ring}
}

func (s *Server) selfLocked() wire.NodeInfo {
	for _, n := range s.ring {
		if n.ID == s.ID {
			return n
		}
	}
	return wire.NodeInfo{ID: s.ID, Addr: s.ln.Addr().String()}
}

// mergeRing merges members into ring, keeping it sorted and unique.
func mergeRing(ring, add []wire.NodeInfo) []wire.NodeInfo {
	seen := make(map[ids.ID]bool, len(ring)+len(add))
	out := make([]wire.NodeInfo, 0, len(ring)+len(add))
	for _, n := range ring {
		if !seen[n.ID] {
			seen[n.ID] = true
			out = append(out, n)
		}
	}
	for _, n := range add {
		if !seen[n.ID] {
			seen[n.ID] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// OwnerOf returns the ring member numerically closest to key — the
// DHT mapping evaluated on a membership view.
func OwnerOf(ring []wire.NodeInfo, key ids.ID) (wire.NodeInfo, error) {
	if len(ring) == 0 {
		return wire.NodeInfo{}, errors.New("node: empty ring")
	}
	best := ring[0]
	bestD := key.Dist(best.ID)
	for _, n := range ring[1:] {
		if d := key.Dist(n.ID); d.Cmp(bestD) < 0 {
			best, bestD = n, d
		}
	}
	return best, nil
}
