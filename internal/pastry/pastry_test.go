package pastry

import (
	"math/rand"
	"testing"
	"testing/quick"

	"peerstripe/internal/ids"
)

func newNet(t testing.TB, n int, seed int64) *Network {
	t.Helper()
	net := NewNetwork(seed)
	net.JoinRandom(n)
	return net
}

func TestJoinAndSize(t *testing.T) {
	net := newNet(t, 100, 1)
	if net.Size() != 100 {
		t.Fatalf("Size = %d, want 100", net.Size())
	}
}

func TestJoinDuplicateRejected(t *testing.T) {
	net := NewNetwork(1)
	id := ids.FromName("n1")
	if _, err := net.Join(id); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(id); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestRingSorted(t *testing.T) {
	net := newNet(t, 500, 2)
	ring := net.Nodes()
	for i := 1; i < len(ring); i++ {
		if !ring[i-1].ID.Less(ring[i].ID) {
			t.Fatalf("ring out of order at %d", i)
		}
	}
}

func TestOwnerIsNumericallyClosest(t *testing.T) {
	net := newNet(t, 200, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		key := ids.Random(rng)
		owner := net.Owner(key)
		// brute force
		var best *Node
		for _, n := range net.Nodes() {
			if best == nil || key.Dist(n.ID).Cmp(key.Dist(best.ID)) < 0 {
				best = n
			}
		}
		if owner.ID != best.ID {
			t.Fatalf("Owner(%s) = %s, brute force says %s", key.Short(), owner.ID.Short(), best.ID.Short())
		}
	}
}

func TestRouteDeliversToOwner(t *testing.T) {
	net := newNet(t, 1000, 5)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		key := ids.Random(rng)
		dst, hops := net.Route(key)
		if dst == nil {
			t.Fatal("Route returned nil")
		}
		if dst.ID != net.Owner(key).ID {
			t.Fatalf("Route delivered to %s, owner is %s", dst.ID.Short(), net.Owner(key).ID.Short())
		}
		if hops < 0 || hops >= 128 {
			t.Fatalf("hops = %d out of range", hops)
		}
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	// Pastry routes in O(log_16 N) hops; for N=2000 that is ~3, so the
	// mean must stay well below naive linear search.
	net := newNet(t, 2000, 7)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		net.Route(ids.Random(rng))
	}
	if m := net.Hops.Mean(); m > 8 {
		t.Fatalf("mean hops = %.2f, want <= 8 for 2000 nodes", m)
	}
	if net.Hops.Max >= 64 {
		t.Fatalf("max hops = %d, suspicious", net.Hops.Max)
	}
}

func TestRouteFromSelf(t *testing.T) {
	net := newNet(t, 50, 9)
	n := net.Nodes()[0]
	dst, hops := net.RouteFrom(n, n.ID)
	if dst.ID != n.ID {
		t.Fatalf("routing own ID delivered elsewhere: %s", dst.ID.Short())
	}
	if hops != 0 {
		t.Fatalf("routing own ID took %d hops", hops)
	}
}

func TestFailRemapsKeys(t *testing.T) {
	net := newNet(t, 300, 10)
	rng := rand.New(rand.NewSource(11))
	key := ids.Random(rng)
	owner := net.Owner(key)
	// The failed owner's keys must remap to a ring neighbor.
	neighbors := net.Neighbors(owner.ID, 2)
	if !net.Fail(owner.ID) {
		t.Fatal("Fail returned false")
	}
	newOwner := net.Owner(key)
	if newOwner.ID == owner.ID {
		t.Fatal("failed node still owns key")
	}
	found := false
	for _, nb := range neighbors {
		if nb.ID == newOwner.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("key remapped to %s, not an immediate neighbor", newOwner.ID.Short())
	}
	// Routing still works after the failure (lazy table repair).
	dst, _ := net.Route(key)
	if dst.ID != newOwner.ID {
		t.Fatalf("post-failure route delivered to %s, want %s", dst.ID.Short(), newOwner.ID.Short())
	}
}

func TestFailUnknownNode(t *testing.T) {
	net := newNet(t, 10, 12)
	if net.Fail(ids.FromName("never-joined")) {
		t.Fatal("Fail on unknown node returned true")
	}
}

func TestMassFailureRoutingSurvives(t *testing.T) {
	net := newNet(t, 500, 13)
	rng := rand.New(rand.NewSource(14))
	// Fail 40% of nodes.
	nodes := append([]*Node{}, net.Nodes()...)
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	for _, n := range nodes[:200] {
		net.Fail(n.ID)
	}
	if net.Size() != 300 {
		t.Fatalf("Size = %d after failures", net.Size())
	}
	for i := 0; i < 100; i++ {
		key := ids.Random(rng)
		dst, _ := net.Route(key)
		if dst.ID != net.Owner(key).ID {
			t.Fatal("route misdelivered after mass failure")
		}
		if !dst.Alive() {
			t.Fatal("route delivered to dead node")
		}
	}
}

func TestNeighborsSymmetricCount(t *testing.T) {
	net := newNet(t, 100, 15)
	n := net.Nodes()[42]
	nb := net.Neighbors(n.ID, 16)
	if len(nb) != 16 {
		t.Fatalf("got %d neighbors, want 16", len(nb))
	}
	for _, x := range nb {
		if x.ID == n.ID {
			t.Fatal("node is its own neighbor")
		}
	}
}

func TestNeighborsSmallRing(t *testing.T) {
	net := newNet(t, 3, 16)
	n := net.Nodes()[0]
	nb := net.Neighbors(n.ID, 16)
	if len(nb) != 2 {
		t.Fatalf("got %d neighbors on 3-node ring, want 2", len(nb))
	}
}

func TestLeafSet(t *testing.T) {
	net := newNet(t, 64, 17)
	n := net.Nodes()[10]
	ls := n.LeafSet()
	if len(ls) != DefaultLeafSize {
		t.Fatalf("leaf set size = %d, want %d", len(ls), DefaultLeafSize)
	}
}

func TestPrefixRange(t *testing.T) {
	id := ids.FromName("x")
	for _, tc := range []struct{ p, d int }{{0, 5}, {1, 0xA}, {2, 0}, {3, 0xF}, {7, 3}} {
		lo, hi := prefixRange(id, tc.p, tc.d)
		if lo.Cmp(hi) > 0 {
			t.Fatalf("p=%d d=%d: lo > hi", tc.p, tc.d)
		}
		// lo and hi share the first p digits with id and have digit d
		// at position p.
		for i := 0; i < tc.p; i++ {
			if lo.Digit(i) != id.Digit(i) || hi.Digit(i) != id.Digit(i) {
				t.Fatalf("p=%d d=%d: prefix digit %d not preserved", tc.p, tc.d, i)
			}
		}
		if lo.Digit(tc.p) != tc.d || hi.Digit(tc.p) != tc.d {
			t.Fatalf("p=%d d=%d: digit at p wrong", tc.p, tc.d)
		}
	}
}

// Property: every ID inside prefixRange(id, p, d) shares p digits with
// id and has digit d at position p; boundary IDs included.
func TestPrefixRangeProperty(t *testing.T) {
	f := func(name string, p8, d8 uint8) bool {
		id := ids.FromName(name)
		p := int(p8) % 10
		d := int(d8) % 16
		lo, hi := prefixRange(id, p, d)
		okLo := lo.Digit(p) == d && lo.CommonPrefixLen(id) >= p
		okHi := hi.Digit(p) == d && hi.CommonPrefixLen(id) >= p
		return okLo && okHi && lo.Cmp(hi) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCoordDistance(t *testing.T) {
	a := Coord{0, 0}
	b := Coord{3, 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Fatalf("distance = %g, want 5", d)
	}
	if a.DistanceTo(a) != 0 {
		t.Fatal("self-distance nonzero")
	}
}

func TestRouteEmptyNetwork(t *testing.T) {
	net := NewNetwork(18)
	if dst, _ := net.Route(ids.FromName("k")); dst != nil {
		t.Fatal("route on empty network returned a node")
	}
	if net.Owner(ids.FromName("k")) != nil {
		t.Fatal("owner on empty network returned a node")
	}
}

func TestDeterministicTopology(t *testing.T) {
	a := newNet(t, 50, 99)
	b := newNet(t, 50, 99)
	for i, n := range a.Nodes() {
		if b.Nodes()[i].ID != n.ID {
			t.Fatal("same seed produced different topologies")
		}
	}
}

func BenchmarkRoute10k(b *testing.B) {
	net := NewNetwork(1)
	net.JoinRandom(10000)
	rng := rand.New(rand.NewSource(2))
	keys := make([]ids.ID, 1024)
	for i := range keys {
		keys[i] = ids.Random(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Route(keys[i%len(keys)])
	}
}

func BenchmarkJoin(b *testing.B) {
	net := NewNetwork(3)
	net.JoinRandom(1000)
	b.ResetTimer()
	net.JoinRandom(b.N)
}
