package pastry

import (
	"math/rand"
	"testing"

	"peerstripe/internal/ids"
)

// TestInterleavedChurn alternates joins and failures while continuously
// routing, verifying the overlay keeps delivering to the numerically
// closest live node through sustained membership change.
func TestInterleavedChurn(t *testing.T) {
	net := newNet(t, 200, 30)
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 300; round++ {
		switch rng.Intn(3) {
		case 0:
			net.JoinRandom(1)
		case 1:
			if net.Size() > 20 {
				nodes := net.Nodes()
				net.Fail(nodes[rng.Intn(len(nodes))].ID)
			}
		default:
			key := ids.Random(rng)
			dst, hops := net.Route(key)
			if dst == nil || dst.ID != net.Owner(key).ID {
				t.Fatalf("round %d: misdelivery", round)
			}
			if hops >= 64 {
				t.Fatalf("round %d: %d hops", round, hops)
			}
		}
	}
}

// TestRejoinAfterFail ensures a previously failed identifier can rejoin
// and immediately resume ownership of its keyspace.
func TestRejoinAfterFail(t *testing.T) {
	net := newNet(t, 50, 32)
	victim := net.Nodes()[10]
	id := victim.ID
	if !net.Fail(id) {
		t.Fatal("fail refused")
	}
	if _, err := net.Join(id); err != nil {
		t.Fatalf("rejoin refused: %v", err)
	}
	if owner := net.Owner(id); owner.ID != id {
		t.Fatal("rejoined node does not own its own ID")
	}
	dst, _ := net.Route(id)
	if dst.ID != id {
		t.Fatal("routing does not reach rejoined node")
	}
}

// TestHopGrowthIsLogarithmic checks that mean hop count grows far
// slower than linearly with population — the core Pastry scalability
// property the paper relies on for lookup costs.
func TestHopGrowthIsLogarithmic(t *testing.T) {
	meanHops := func(n int) float64 {
		net := NewNetwork(int64(n))
		net.JoinRandom(n)
		rng := rand.New(rand.NewSource(33))
		for i := 0; i < 300; i++ {
			net.Route(ids.Random(rng))
		}
		return net.Hops.Mean()
	}
	small := meanHops(100)
	large := meanHops(3200) // 32x the population
	if large > small*2.5 {
		t.Fatalf("hops grew from %.2f to %.2f over a 32x population — not logarithmic", small, large)
	}
	if large >= 10 {
		t.Fatalf("mean hops %.2f too high for 3200 nodes", large)
	}
}

// TestTableEntriesShareRequiredPrefix verifies the routing-table
// construction invariant: entry (p, d) shares exactly p digits with the
// node and has digit d at position p.
func TestTableEntriesShareRequiredPrefix(t *testing.T) {
	net := newNet(t, 400, 34)
	for _, n := range net.Nodes()[:50] {
		for p := 0; p < len(n.table); p++ {
			for d := 0; d < cols; d++ {
				e := n.table[p][d]
				if e == nil {
					continue
				}
				if e.ID.CommonPrefixLen(n.ID) < p {
					t.Fatalf("entry (%d,%x) shares only %d digits", p, d, e.ID.CommonPrefixLen(n.ID))
				}
				if e.ID.Digit(p) != d {
					t.Fatalf("entry (%d,%x) has digit %x at p", p, d, e.ID.Digit(p))
				}
			}
		}
	}
}

// TestProximityAwareTableSelection verifies that table construction
// prefers nearby candidates: entries should on average be closer than a
// uniformly random member matching the same constraint would be.
func TestProximityAwareTableSelection(t *testing.T) {
	net := newNet(t, 2000, 35)
	var chosen, random float64
	count := 0
	rng := rand.New(rand.NewSource(36))
	for _, n := range net.Nodes()[:100] {
		if len(n.table) == 0 {
			continue
		}
		// Row 0 has the most candidates; compare against random picks.
		for d := 0; d < cols; d++ {
			e := n.table[0][d]
			if e == nil {
				continue
			}
			chosen += n.Coord.DistanceTo(e.Coord)
			random += n.Coord.DistanceTo(net.Nodes()[rng.Intn(net.Size())].Coord)
			count++
		}
	}
	if count == 0 {
		t.Fatal("no table entries examined")
	}
	if chosen >= random {
		t.Fatalf("proximity selection no better than random: %.3f vs %.3f", chosen/float64(count), random/float64(count))
	}
}
