// Package pastry implements the structured p2p overlay the paper builds
// on (§2.1, §4.1): Pastry's circular 160-bit identifier space, leaf
// sets, prefix-based routing tables with proximity-aware entry
// selection, node join and failure handling, and the simulator mode used
// for the 10 000-node evaluation (a directly connected network where
// every simulated node runs the real routing state machine).
//
// The DHT contract the storage layer relies on: Route(key) delivers to
// the live node whose nodeId is numerically closest to the key, and when
// a node fails, the identifier space it covered splits between its two
// immediate neighbors (§4.4).
package pastry

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"peerstripe/internal/ids"
)

// DefaultLeafSize is Pastry's |L| parameter: the leaf set holds the
// LeafSize/2 numerically closest nodes on each side.
const DefaultLeafSize = 16

// cols is the routing-table row width, 2^b = 16 for b = 4.
const cols = 1 << ids.DigitBits

// Coord is a node's synthetic network coordinate, used as the proximity
// metric for locality-aware routing-table construction and for the
// multicast tree of §4.4.1.
type Coord struct{ X, Y float64 }

// DistanceTo returns the Euclidean proximity distance.
func (c Coord) DistanceTo(o Coord) float64 {
	dx, dy := c.X-o.X, c.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Node is one overlay participant.
type Node struct {
	ID    ids.ID
	Coord Coord

	net   *Network
	alive bool
	// table[p][d] caches the node whose ID shares p digits with this
	// node and has digit d at position p. Entries are repaired lazily
	// when found dead (Pastry's routing-table maintenance).
	table [][]*Node
}

// Alive reports whether the node is still part of the overlay.
func (n *Node) Alive() bool { return n.alive }

// Network is the simulated overlay: the full membership view the Pastry
// simulator mode keeps, plus per-node routing state.
type Network struct {
	rng      *rand.Rand
	leafSize int
	// ring holds alive nodes sorted by ID.
	ring []*Node
	byID map[ids.ID]*Node

	// Hop statistics for all Route calls (lookUp messages, §4.1).
	Hops *intAcc
}

// intAcc is a tiny accumulator for hop counts, avoiding a stats
// dependency cycle.
type intAcc struct {
	N   int
	Sum int
	Max int
}

func (a *intAcc) add(v int) {
	a.N++
	a.Sum += v
	if v > a.Max {
		a.Max = v
	}
}

// Mean returns the mean recorded value.
func (a *intAcc) Mean() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.Sum) / float64(a.N)
}

// NewNetwork returns an empty overlay simulator seeded for deterministic
// nodeId assignment.
func NewNetwork(seed int64) *Network {
	return &Network{
		rng:      rand.New(rand.NewSource(seed)),
		leafSize: DefaultLeafSize,
		byID:     make(map[ids.ID]*Node),
		Hops:     &intAcc{},
	}
}

// Size returns the number of live nodes.
func (net *Network) Size() int { return len(net.ring) }

// Nodes returns the live nodes in ring order. The slice is shared; do
// not modify.
func (net *Network) Nodes() []*Node { return net.ring }

// RNG exposes the network's deterministic randomness source.
func (net *Network) RNG() *rand.Rand { return net.rng }

// ringIndex returns the position of the first ring node with ID >= id
// (mod len), i.e. the insertion point.
func (net *Network) ringIndex(id ids.ID) int {
	return sort.Search(len(net.ring), func(i int) bool {
		return net.ring[i].ID.Cmp(id) >= 0
	})
}

// Join adds a node with the given ID to the overlay (Figure 1) and
// builds its routing state. It returns an error if the ID is taken.
func (net *Network) Join(id ids.ID) (*Node, error) {
	if _, dup := net.byID[id]; dup {
		return nil, fmt.Errorf("pastry: nodeId %s already joined", id.Short())
	}
	n := &Node{
		ID:    id,
		Coord: Coord{X: net.rng.Float64(), Y: net.rng.Float64()},
		net:   net,
		alive: true,
	}
	i := net.ringIndex(id)
	net.ring = append(net.ring, nil)
	copy(net.ring[i+1:], net.ring[i:])
	net.ring[i] = n
	net.byID[id] = n
	n.buildTable()
	return n, nil
}

// JoinRandom adds count nodes with random nodeIds.
func (net *Network) JoinRandom(count int) []*Node {
	out := make([]*Node, 0, count)
	for len(out) < count {
		n, err := net.Join(ids.Random(net.rng))
		if err != nil {
			continue // astronomically unlikely collision; redraw
		}
		out = append(out, n)
	}
	return out
}

// Fail removes a node from the overlay, as when a desktop departs or
// crashes. Other nodes' routing-table entries pointing at it are
// repaired lazily on use.
func (net *Network) Fail(id ids.ID) bool {
	n, ok := net.byID[id]
	if !ok || !n.alive {
		return false
	}
	n.alive = false
	delete(net.byID, id)
	i := net.ringIndex(id)
	// id is present, so ring[i] is the node itself.
	net.ring = append(net.ring[:i], net.ring[i+1:]...)
	return true
}

// Get returns the live node with the given ID.
func (net *Network) Get(id ids.ID) (*Node, bool) {
	n, ok := net.byID[id]
	return n, ok
}

// Owner returns the live node numerically closest to key — the DHT's
// ground-truth mapping. Route always delivers here.
func (net *Network) Owner(key ids.ID) *Node {
	if len(net.ring) == 0 {
		return nil
	}
	i := net.ringIndex(key)
	succ := net.ring[i%len(net.ring)]
	pred := net.ring[(i-1+len(net.ring))%len(net.ring)]
	if key.Dist(succ.ID).Cmp(key.Dist(pred.ID)) <= 0 {
		return succ
	}
	return pred
}

// Neighbors returns up to k/2 live nodes on each side of id in the
// identifier space, excluding the node itself — the leaf-set view used
// for replica placement (§4.4.1) and failure repair (§4.4).
func (net *Network) Neighbors(id ids.ID, k int) []*Node {
	if len(net.ring) == 0 || k <= 0 {
		return nil
	}
	i := net.ringIndex(id)
	n := len(net.ring)
	half := k / 2
	if half < 1 {
		half = 1
	}
	seen := make(map[ids.ID]struct{})
	var out []*Node
	add := func(nd *Node) {
		if nd.ID == id {
			return
		}
		if _, dup := seen[nd.ID]; dup {
			return
		}
		seen[nd.ID] = struct{}{}
		out = append(out, nd)
	}
	// If id is itself on the ring, skip over it symmetrically.
	for d := 0; d < n && len(out) < 2*half && len(out) < k; d++ {
		add(net.ring[(i+d)%n])
		if len(out) >= k {
			break
		}
		add(net.ring[(i-1-d+n)%n])
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// LeafSet returns the node's current leaf set (live neighbors in id
// space).
func (n *Node) LeafSet() []*Node {
	return n.net.Neighbors(n.ID, n.net.leafSize)
}

// prefixRange computes the [lo, hi] ID bounds of identifiers sharing the
// first p digits of id and having digit d at position p.
func prefixRange(id ids.ID, p, d int) (lo, hi ids.ID) {
	for i := 0; i < p/2; i++ {
		lo[i] = id[i]
	}
	// Set digit p (and the partial byte before it, if p is odd).
	if p%2 == 1 {
		lo[p/2] = (id[p/2] & 0xf0) | byte(d)
	} else {
		lo[p/2] = byte(d) << 4
	}
	hi = lo
	// Remaining digits: lo -> 0, hi -> f.
	startByte := p/2 + 1
	if p%2 == 0 {
		// digit p occupies the high nibble of byte p/2; low nibble is free
		hi[p/2] |= 0x0f
	}
	for i := startByte; i < ids.Bytes; i++ {
		hi[i] = 0xff
	}
	return lo, hi
}

// findInRange returns a live node whose ID lies in [lo, hi], choosing
// the proximity-closest of up to probe candidates (Pastry's
// locality-aware table construction). Returns nil if the range is empty.
func (net *Network) findInRange(lo, hi ids.ID, near Coord, probe int) *Node {
	i := net.ringIndex(lo)
	j := sort.Search(len(net.ring), func(k int) bool {
		return net.ring[k].ID.Cmp(hi) > 0
	})
	if i >= j {
		return nil
	}
	span := j - i
	best := net.ring[i]
	bestD := near.DistanceTo(best.Coord)
	for s := 0; s < probe; s++ {
		cand := net.ring[i+net.rng.Intn(span)]
		if d := near.DistanceTo(cand.Coord); d < bestD {
			best, bestD = cand, d
		}
	}
	return best
}

// buildTable constructs the node's routing table from the current
// membership, row by row, stopping once a prefix has no other members
// (as a real join's row transfer would).
func (n *Node) buildTable() {
	n.table = make([][]*Node, 0, 8)
	for p := 0; p < ids.Digits; p++ {
		row := make([]*Node, cols)
		nonEmpty := false
		for d := 0; d < cols; d++ {
			if d == n.ID.Digit(p) {
				continue // own digit: covered by the next row
			}
			lo, hi := prefixRange(n.ID, p, d)
			if e := n.net.findInRange(lo, hi, n.Coord, 4); e != nil && e.ID != n.ID {
				row[d] = e
				nonEmpty = true
			}
		}
		n.table = append(n.table, row)
		if !nonEmpty {
			break
		}
	}
}

// tableEntry returns a live routing-table entry for (p, d), repairing
// the slot from current membership if the cached entry died.
func (n *Node) tableEntry(p, d int) *Node {
	if p >= len(n.table) {
		return nil
	}
	e := n.table[p][d]
	if e != nil && e.alive {
		return e
	}
	// Lazy repair: Pastry repopulates dead entries from peers; the
	// simulator repairs from the membership view.
	lo, hi := prefixRange(n.ID, p, d)
	e = n.net.findInRange(lo, hi, n.Coord, 4)
	if e != nil && e.ID == n.ID {
		e = nil
	}
	n.table[p][d] = e
	return e
}

// RouteFrom routes key from the given start node using Pastry's
// algorithm: leaf-set delivery when the key is close, otherwise
// prefix-improving hops via the routing table, with the numeric-distance
// fallback for the rare case. It returns the destination node and the
// number of overlay hops taken.
func (net *Network) RouteFrom(start *Node, key ids.ID) (*Node, int) {
	if len(net.ring) == 0 {
		return nil, 0
	}
	cur := start
	if cur == nil || !cur.alive {
		cur = net.ring[net.rng.Intn(len(net.ring))]
	}
	owner := net.Owner(key)
	hops := 0
	const maxHops = 128 // routing must converge far before this
	for cur != owner && hops < maxHops {
		next := cur.nextHop(key)
		if next == nil || next == cur {
			// Converged as far as local state allows; the owner check
			// above means numeric distance can still improve — jump via
			// leaf set of the closest known.
			next = owner // final delivery hop (leaf-set member in Pastry)
		}
		cur = next
		hops++
	}
	net.Hops.add(hops)
	return cur, hops
}

// Route routes key from a uniformly random live node, modelling lookUp
// messages issued by arbitrary participants (Figure 2).
func (net *Network) Route(key ids.ID) (*Node, int) {
	return net.RouteFrom(nil, key)
}

// nextHop implements one step of Pastry routing at node n.
func (n *Node) nextHop(key ids.ID) *Node {
	// Leaf-set check: if the key falls within the leaf set's span,
	// deliver to the numerically closest member.
	leaves := n.LeafSet()
	if len(leaves) == 0 {
		return nil
	}
	best := n
	bestD := key.Dist(n.ID)
	for _, l := range leaves {
		if d := key.Dist(l.ID); d.Cmp(bestD) < 0 {
			best, bestD = l, d
		}
	}
	// Routing-table hop: strictly longer shared prefix.
	p := n.ID.CommonPrefixLen(key)
	if e := n.tableEntry(p, key.Digit(p)); e != nil {
		return e
	}
	// Rare case: no table entry; fall back to any known node that is
	// numerically closer (here: the best leaf).
	if best != n {
		return best
	}
	return nil
}
