package core

import (
	"peerstripe/internal/ids"
)

// FailureReport summarises the consequences of one node failure for the
// store (§4.4, §6.2).
type FailureReport struct {
	// BlocksLost counts encoded blocks that were on the failed node.
	BlocksLost int
	// BytesLost counts encoded bytes on the failed node.
	BytesLost int64
	// BytesRegenerated counts encoded bytes scheduled for re-creation
	// on surviving nodes.
	BytesRegenerated int64
	// BlocksRegenerated counts blocks scheduled for re-creation.
	BlocksRegenerated int
	// RegenFailed counts blocks whose re-creation found no space.
	RegenFailed int
	// ChunksUnrecoverable counts chunks that dropped below the decode
	// threshold (their data is gone).
	ChunksUnrecoverable int
	// DataUnrecoverable is the logical bytes in those chunks.
	DataUnrecoverable int64
	// FilesLost counts files newly made unavailable.
	FilesLost int
	// CATReplicasLost / CATReplicasRecreated track CAT replica churn.
	CATReplicasLost      int
	CATReplicasRecreated int
}

// FailNode fails the node in the pool and processes the loss of its
// blocks. When repair is true the §4.4 recovery runs immediately: a
// block whose chunk is still decodable is re-created — on the key's new
// owner for fixed-rate codes, or under a fresh name at a new location
// for rateless codes (the paper's adopted strategy). When repair is
// false losses only update availability (the Figure 10 experiment).
//
// Failing an already-failed node is idempotent: the loss was fully
// accounted the first time, so the repeat returns a zero FailureReport.
// Churn schedules replayed against a store (and the live repair daemon
// this simulates) deliver the same death more than once.
func (s *Store) FailNode(id ids.ID, repair bool) (FailureReport, error) {
	var rep FailureReport
	if s.failed[id] {
		return rep, nil
	}
	lost, err := s.Pool.Fail(id)
	if err != nil {
		return rep, err
	}
	if s.failed == nil {
		s.failed = make(map[ids.ID]bool)
	}
	s.failed[id] = true
	for name, size := range lost {
		s.processLoss(name, size, repair, &rep)
	}
	return rep, nil
}

// processLoss applies the loss of one block and optionally repairs it.
func (s *Store) processLoss(name string, size int64, repair bool, rep *FailureReport) {
	rep.BlocksLost++
	rep.BytesLost += size

	if file, _, isCAT := IsCATName(name); isCAT {
		fs, ok := s.files[file]
		if !ok {
			return
		}
		fs.catAlive--
		rep.CATReplicasLost++
		if repair {
			// §4.4: "in case of failure of a node, create new replicas";
			// even a fully lost CAT is re-creatable by chunk probing.
			if s.Pool.StoreBlock(ReplicaName(CATName(file), freshReplicaTag(fs)), size) != nil {
				fs.catAlive++
				rep.CATReplicasRecreated++
				rep.BytesRegenerated += size
				rep.BlocksRegenerated++
			}
		}
		return
	}

	file, chunk, _, ok := ParseBlockName(name)
	if !ok {
		return
	}
	fs, ok := s.files[file]
	if !ok || chunk >= len(fs.survivors) {
		return
	}
	fs.survivors[chunk]--

	spec := s.Cfg.Spec
	if fs.survivors[chunk] < spec.MinNeeded {
		// The chunk can no longer be decoded: its data is gone.
		rep.ChunksUnrecoverable++
		rep.DataUnrecoverable += fs.cat.Rows[chunk].Len()
		s.BytesLostRaw += fs.cat.Rows[chunk].Len()
		if !fs.unavail {
			fs.unavail = true
			s.FilesLost++
			rep.FilesLost++
		}
		return
	}
	if !repair {
		return
	}

	// Re-create the lost redundancy from the surviving blocks.
	if s.Cfg.Rateless {
		// Rateless: mint a brand-new encoded block; its fresh name maps
		// to an (almost surely) different node, sidestepping the
		// overloaded-successor problem (§4.4).
		const attempts = 4
		for a := 0; a < attempts; a++ {
			bn := BlockName(file, chunk, fs.nextECB[chunk])
			fs.nextECB[chunk]++
			if s.Pool.StoreBlock(bn, size) != nil {
				fs.survivors[chunk]++
				rep.BlocksRegenerated++
				rep.BytesRegenerated += size
				return
			}
		}
		rep.RegenFailed++
		return
	}
	// Fixed-rate: the same block name now maps to the failed node's
	// neighbor, which re-creates it (functionally equal content).
	if s.Pool.StoreBlock(name, size) != nil {
		fs.survivors[chunk]++
		rep.BlocksRegenerated++
		rep.BytesRegenerated += size
		return
	}
	rep.RegenFailed++
}

// freshReplicaTag picks an unused replica number for a re-created CAT.
func freshReplicaTag(fs *fileState) int {
	// Replica names only need uniqueness; reuse a counter derived from
	// total replicas ever created.
	fs.catReplicaSeq++
	return 100 + fs.catReplicaSeq
}

// ChurnSim drives the Table 3 experiment: nodes fail one by one without
// recovery, and each failure's repair work is delayed in proportion to
// the amount of data being regenerated (§6.2, "Effects of participant
// churn"). Blocks are vulnerable between loss and repair completion, so
// closely spaced failures can defeat the redundancy even when the code
// would tolerate them in isolation.
type ChurnSim struct {
	S *Store
	// RepairRate is the regeneration bandwidth in bytes per time unit.
	RepairRate float64
	// FailureInterval is the simulated time between consecutive node
	// failures.
	FailureInterval float64

	now       float64
	busyUntil float64
	queue     []pendingRepair

	// Totals across all failures.
	TotalLost        int64 // logical bytes made unrecoverable
	TotalRegenerated int64 // encoded bytes regenerated
	PerFailureRegen  []int64
}

type pendingRepair struct {
	readyAt float64
	file    string
	chunk   int
	size    int64
	isCAT   bool
	name    string
}

// NewChurnSim wraps a store in the delayed-repair failure model.
func NewChurnSim(s *Store, repairRate, failureInterval float64) *ChurnSim {
	return &ChurnSim{S: s, RepairRate: repairRate, FailureInterval: failureInterval}
}

// FailNext advances time by FailureInterval, completes repairs that
// became ready, then fails the given node, scheduling repairs for its
// recoverable blocks and charging losses for unrecoverable chunks.
func (c *ChurnSim) FailNext(id ids.ID) error {
	c.now += c.FailureInterval
	c.completeReady()

	lost, err := c.S.Pool.Fail(id)
	if err != nil {
		return err
	}
	var regenThisFailure int64
	spec := c.S.Cfg.Spec
	for name, size := range lost {
		if file, _, isCAT := IsCATName(name); isCAT {
			if fs, ok := c.S.files[file]; ok {
				fs.catAlive--
				c.schedule(pendingRepair{file: file, size: size, isCAT: true, name: name})
				regenThisFailure += size
			}
			continue
		}
		file, chunk, _, ok := ParseBlockName(name)
		if !ok {
			continue
		}
		fs, ok := c.S.files[file]
		if !ok || chunk >= len(fs.survivors) {
			continue
		}
		fs.survivors[chunk]--
		if fs.survivors[chunk] < spec.MinNeeded {
			c.TotalLost += fs.cat.Rows[chunk].Len()
			if !fs.unavail {
				fs.unavail = true
				c.S.FilesLost++
			}
			continue
		}
		c.schedule(pendingRepair{file: file, chunk: chunk, size: size, name: name})
		regenThisFailure += size
	}
	c.TotalRegenerated += regenThisFailure
	c.PerFailureRegen = append(c.PerFailureRegen, regenThisFailure)
	return nil
}

// schedule enqueues a repair behind the current backlog; its completion
// time grows with the size of the data being recovered.
func (c *ChurnSim) schedule(p pendingRepair) {
	start := c.busyUntil
	if start < c.now {
		start = c.now
	}
	dur := float64(p.size) / c.RepairRate
	c.busyUntil = start + dur
	p.readyAt = c.busyUntil
	c.queue = append(c.queue, p)
}

// completeReady applies all repairs whose completion time has passed.
func (c *ChurnSim) completeReady() {
	i := 0
	for ; i < len(c.queue) && c.queue[i].readyAt <= c.now; i++ {
		p := c.queue[i]
		fs, ok := c.S.files[p.file]
		if !ok {
			continue
		}
		if p.isCAT {
			if c.S.Pool.StoreBlock(ReplicaName(CATName(p.file), freshReplicaTag(fs)), p.size) != nil {
				fs.catAlive++
			}
			continue
		}
		if fs.unavail || p.chunk >= len(fs.survivors) {
			continue // chunk already lost; repair moot
		}
		var bn string
		if c.S.Cfg.Rateless {
			bn = BlockName(p.file, p.chunk, fs.nextECB[p.chunk])
			fs.nextECB[p.chunk]++
		} else {
			bn = p.name
		}
		if c.S.Pool.StoreBlock(bn, p.size) != nil {
			fs.survivors[p.chunk]++
		}
	}
	c.queue = c.queue[i:]
}

// Drain advances time until the repair queue is empty.
func (c *ChurnSim) Drain() {
	if len(c.queue) == 0 {
		return
	}
	c.now = c.queue[len(c.queue)-1].readyAt
	c.completeReady()
}

// Backlog returns the number of repairs still pending.
func (c *ChurnSim) Backlog() int { return len(c.queue) }

// Now returns the current simulated time.
func (c *ChurnSim) Now() float64 { return c.now }
