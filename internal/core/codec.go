package core

import (
	"fmt"

	"peerstripe/internal/erasure"
)

// Codec is the byte-level data path: it turns real file contents into
// named, erasure-coded blocks and back. The simulated pool moves sizes
// only; the Codec is what the live TCP nodes (internal/node), the
// examples, and the Table 2 measurements run.
type Codec struct {
	Code erasure.Code
}

// NamedBlock pairs an encoded block with its storage name.
type NamedBlock struct {
	Name string
	Data []byte
}

// FetchFunc retrieves a named block from wherever it is stored. It
// reports false when the block is unavailable.
type FetchFunc func(name string) ([]byte, bool)

// EncodeFile splits data into the given chunk sizes (as decided by the
// §4.3 capacity probes), erasure-codes each chunk, and returns the
// named blocks together with the file's CAT. A zero chunk size emits an
// empty CAT row and no blocks.
func (cd *Codec) EncodeFile(file string, data []byte, chunkSizes []int64) ([]NamedBlock, *CAT, error) {
	cat := &CAT{File: file}
	var blocks []NamedBlock
	pos := int64(0)
	for ci, sz := range chunkSizes {
		if sz < 0 {
			return nil, nil, fmt.Errorf("core: negative chunk size at %d", ci)
		}
		cat.Rows = append(cat.Rows, CATRow{Start: pos, End: pos + sz})
		if sz == 0 {
			continue
		}
		if pos+sz > int64(len(data)) {
			return nil, nil, fmt.Errorf("core: chunk sizes exceed data length")
		}
		chunk := data[pos : pos+sz]
		ebs, err := cd.Code.Encode(chunk)
		if err != nil {
			return nil, nil, fmt.Errorf("core: encode chunk %d: %w", ci, err)
		}
		for _, b := range ebs {
			blocks = append(blocks, NamedBlock{Name: BlockName(file, ci, b.Index), Data: b.Data})
		}
		pos += sz
	}
	if pos != int64(len(data)) {
		return nil, nil, fmt.Errorf("core: chunk sizes cover %d of %d bytes", pos, len(data))
	}
	return blocks, cat, nil
}

// decodeChunk fetches blocks of one chunk until the code can decode it.
func (cd *Codec) decodeChunk(file string, ci int, chunkLen int64, fetch FetchFunc) ([]byte, error) {
	if chunkLen == 0 {
		return nil, nil
	}
	m := cd.Code.EncodedBlocks()
	need := cd.Code.MinNeeded()
	var got []erasure.Block
	for e := 0; e < m; e++ {
		data, ok := fetch(BlockName(file, ci, e))
		if !ok {
			continue
		}
		got = append(got, erasure.Block{Index: e, Data: data})
		if len(got) >= need {
			out, err := cd.Code.Decode(got, int(chunkLen))
			if err == nil {
				return out, nil
			}
			// Rateless decode can stall just short; keep fetching.
		}
	}
	if len(got) >= cd.Code.DataBlocks() {
		if out, err := cd.Code.Decode(got, int(chunkLen)); err == nil {
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %s chunk %d (%d/%d blocks)", ErrUnavailable, file, ci, len(got), m)
}

// DecodeFile reconstructs the whole file described by cat.
func (cd *Codec) DecodeFile(cat *CAT, fetch FetchFunc) ([]byte, error) {
	out := make([]byte, 0, cat.FileSize())
	for ci, row := range cat.Rows {
		if row.Empty() {
			continue
		}
		chunk, err := cd.decodeChunk(cat.File, ci, row.Len(), fetch)
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// DecodeRange reconstructs [off, off+length) of the file, fetching only
// the chunks that the range touches (§4.1: "the system does not have to
// retrieve an entire file if only a portion of the file is accessed").
func (cd *Codec) DecodeRange(cat *CAT, off, length int64, fetch FetchFunc) ([]byte, error) {
	if off < 0 || length < 0 || off+length > cat.FileSize() {
		return nil, fmt.Errorf("core: range [%d,%d) outside file of %d bytes", off, off+length, cat.FileSize())
	}
	out := make([]byte, 0, length)
	for _, ci := range cat.ChunksFor(off, length) {
		row := cat.Rows[ci]
		chunk, err := cd.decodeChunk(cat.File, ci, row.Len(), fetch)
		if err != nil {
			return nil, err
		}
		lo := int64(0)
		if off > row.Start {
			lo = off - row.Start
		}
		hi := row.Len()
		if off+length < row.End {
			hi = off + length - row.Start
		}
		out = append(out, chunk[lo:hi]...)
	}
	return out, nil
}

// PlanChunkSizes divides a file of the given size into chunks no larger
// than maxChunk, mimicking what capacity probes produce when every node
// advertises maxChunk/n. It is the planning helper used by examples and
// the live client when no pool probe is available.
func PlanChunkSizes(fileSize, maxChunk int64) []int64 {
	if fileSize <= 0 {
		return nil
	}
	if maxChunk <= 0 {
		return []int64{fileSize}
	}
	var out []int64
	for rem := fileSize; rem > 0; {
		c := maxChunk
		if c > rem {
			c = rem
		}
		out = append(out, c)
		rem -= c
	}
	return out
}
