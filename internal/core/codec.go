package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"peerstripe/internal/erasure"
)

// Codec is the byte-level data path: it turns real file contents into
// named, erasure-coded blocks and back. The simulated pool moves sizes
// only; the Codec is what the live TCP nodes (internal/node), the
// examples, and the Table 2 measurements run.
//
// Multi-chunk files are encoded and decoded by a bounded worker pool;
// output ordering is deterministic regardless of scheduling.
type Codec struct {
	Code erasure.Code
	// Workers bounds how many chunks are coded concurrently. 0 selects
	// GOMAXPROCS; 1 forces the serial path. When a file has more than
	// one chunk and Workers != 1, the FetchFunc passed to DecodeFile
	// must be safe for concurrent use (every FS-backed fetch in this
	// repo is).
	Workers int

	// FetchParallel enables the degraded/hedged chunk-read path: up to
	// FetchParallel block fetches of one chunk run concurrently, the
	// first wave covers MinNeeded+FetchHedge blocks, every failure
	// immediately launches a replacement, and stragglers widen the
	// wave after HedgeDelay — so a decode succeeds from any sufficient
	// subset of blocks without waiting on dark nodes. 0 or 1 keeps the
	// sequential path. The FetchFunc must be safe for concurrent use.
	FetchParallel int
	// FetchHedge is how many extra blocks beyond MinNeeded the first
	// wave requests (default 1 when the parallel path is active).
	FetchHedge int
	// HedgeDelay is how long to wait on stragglers before requesting
	// every remaining block of the chunk. 0 selects DefaultHedgeDelay;
	// negative disables the timer (failures still trigger
	// replacements).
	HedgeDelay time.Duration
}

// DefaultHedgeDelay is the straggler cutoff of the hedged fetch path.
const DefaultHedgeDelay = 150 * time.Millisecond

// CodeFor resolves the byte-level erasure code the data path runs from
// its CLI/config names: "null", "xor", "online", or "rs". schedule
// selects the online code's check schedule ("" selects the banded25x4
// default; pass "uniform" to read online-coded files stored by
// pre-banded builds — see erasure.ScheduleByName) and is rejected for
// codes that have no schedule knob. The parameter choices match what
// the live clients have always used: (2,3) XOR, a 64-block online
// code at ε=0.2, and an (8,2) Reed-Solomon stripe.
func CodeFor(code, schedule string) (erasure.Code, error) {
	switch code {
	case "null", "xor", "online", "rs":
	default:
		// Validate the code name before the schedule knob so a typo'd
		// code gets the right diagnostic even when a schedule is set.
		return nil, fmt.Errorf("core: unknown erasure code %q (want null, xor, online, rs)", code)
	}
	if schedule != "" && schedule != "uniform" && code != "online" {
		return nil, fmt.Errorf("core: code %q has no check schedule (only online does)", code)
	}
	switch code {
	case "null":
		return erasure.NewNull(), nil
	case "xor":
		return erasure.NewXOR(2)
	case "online":
		sched, err := erasure.ScheduleByName(schedule)
		if err != nil {
			return nil, err
		}
		return erasure.NewOnline(64, erasure.OnlineOpts{Eps: 0.2, Surplus: 0.2, Schedule: sched})
	default:
		return erasure.NewRS(8, 2)
	}
}

// NamedBlock pairs an encoded block with its storage name.
type NamedBlock struct {
	Name string
	Data []byte
}

// FetchFunc retrieves a named block from wherever it is stored. It
// reports false when the block is unavailable.
type FetchFunc func(name string) ([]byte, bool)

// workers resolves the worker count for a job list.
func (cd *Codec) workers(jobs int) int {
	w := cd.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runJobs executes fn(i) for i in [0, n) over the bounded worker pool
// and returns the lowest-index error, if any. After a job fails, no
// new jobs are started (in-flight ones finish).
func (cd *Codec) runJobs(ctx context.Context, n int, fn func(i int) error) error {
	return ParallelJobsCtx(ctx, n, cd.workers(n), fn)
}

// ParallelJobs executes fn(i) for i in [0, n) over a bounded worker
// pool of the given size (0 selects GOMAXPROCS) and returns the
// lowest-index error, if any. After a job fails, no new jobs are
// started (in-flight ones finish). It is the fan-out primitive shared
// by the codec and the live client's block transfers.
func ParallelJobs(n, workers int, fn func(i int) error) error {
	return ParallelJobsCtx(context.Background(), n, workers, fn)
}

// ParallelJobsCtx is ParallelJobs bounded by ctx: once ctx is done no
// new jobs start (in-flight ones finish) and the ctx error is returned
// unless an earlier job already failed. Job functions that block on
// I/O should themselves honor ctx for prompt cancellation.
func ParallelJobsCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !failed.Load() && ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// EncodeFile splits data into the given chunk sizes (as decided by the
// §4.3 capacity probes), erasure-codes each chunk, and returns the
// named blocks together with the file's CAT. A zero chunk size emits an
// empty CAT row and no blocks. Cancelling ctx stops launching chunk
// jobs and returns the ctx error.
func (cd *Codec) EncodeFile(ctx context.Context, file string, data []byte, chunkSizes []int64) ([]NamedBlock, *CAT, error) {
	cat := &CAT{File: file}
	type job struct {
		ci    int
		chunk []byte
	}
	var jobs []job
	pos := int64(0)
	for ci, sz := range chunkSizes {
		if sz < 0 {
			return nil, nil, fmt.Errorf("core: negative chunk size at %d", ci)
		}
		cat.Rows = append(cat.Rows, CATRow{Start: pos, End: pos + sz})
		if sz == 0 {
			continue
		}
		if pos+sz > int64(len(data)) {
			return nil, nil, fmt.Errorf("core: chunk sizes exceed data length")
		}
		jobs = append(jobs, job{ci: ci, chunk: data[pos : pos+sz]})
		pos += sz
	}
	if pos != int64(len(data)) {
		return nil, nil, fmt.Errorf("core: chunk sizes cover %d of %d bytes", pos, len(data))
	}
	results := make([][]erasure.Block, len(jobs))
	err := cd.runJobs(ctx, len(jobs), func(i int) error {
		ebs, err := cd.Code.Encode(jobs[i].chunk)
		if err != nil {
			return fmt.Errorf("core: encode chunk %d: %w", jobs[i].ci, err)
		}
		results[i] = ebs
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	blocks := make([]NamedBlock, 0, len(jobs)*cd.Code.EncodedBlocks())
	for i, j := range jobs {
		for _, b := range results[i] {
			blocks = append(blocks, NamedBlock{Name: BlockName(file, j.ci, b.Index), Data: b.Data})
		}
	}
	return blocks, cat, nil
}

// decodeChunk fetches blocks of one chunk until the code can decode it.
func (cd *Codec) decodeChunk(ctx context.Context, file string, ci int, chunkLen int64, fetch FetchFunc) ([]byte, error) {
	if chunkLen == 0 {
		return nil, nil
	}
	if cd.FetchParallel > 1 && cd.Code.EncodedBlocks() > 1 {
		return cd.decodeChunkParallel(ctx, file, ci, chunkLen, fetch)
	}
	m := cd.Code.EncodedBlocks()
	need := cd.Code.MinNeeded()
	got := make([]erasure.Block, 0, m)
	for e := 0; e < m; e++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, ok := fetch(BlockName(file, ci, e))
		if !ok {
			continue
		}
		got = append(got, erasure.Block{Index: e, Data: data})
		if len(got) >= need {
			out, err := cd.Code.Decode(got, int(chunkLen))
			if err == nil {
				return out, nil
			}
			// Rateless decode can stall just short; keep fetching.
		}
	}
	if len(got) >= cd.Code.DataBlocks() {
		if out, err := cd.Code.Decode(got, int(chunkLen)); err == nil {
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %s chunk %d (%d/%d blocks)", ErrUnavailable, file, ci, len(got), m)
}

// decodeChunkParallel is the degraded-read path: it requests a first
// wave of MinNeeded+FetchHedge blocks concurrently, replaces every
// failure with the next untried block, widens to the whole chunk when
// the hedge timer fires, and decodes as soon as any sufficient subset
// has arrived — so one dark node costs at most a hedge delay instead
// of a timeout, and reads succeed with nodes down. Cancelling ctx
// stops launching fetches and returns once the in-flight ones drain
// (promptly when the FetchFunc itself honors ctx).
func (cd *Codec) decodeChunkParallel(ctx context.Context, file string, ci int, chunkLen int64, fetch FetchFunc) ([]byte, error) {
	m := cd.Code.EncodedBlocks()
	need := cd.Code.MinNeeded()
	limit := cd.FetchParallel
	if limit > m {
		limit = m
	}
	hedge := cd.FetchHedge
	if hedge <= 0 {
		hedge = 1
	}
	target := need + hedge
	if target > m {
		target = m
	}

	type result struct {
		e    int
		data []byte
		ok   bool
	}
	// Buffered to m: abandoned fetches complete into the buffer and
	// are collected, never leaking a goroutine past its fetch.
	results := make(chan result, m)
	launched, inflight, failed := 0, 0, 0
	launch := func() {
		e := launched
		launched++
		inflight++
		go func() {
			data, ok := fetch(BlockName(file, ci, e))
			results <- result{e, data, ok}
		}()
	}

	var hedgeC <-chan time.Time
	if d := cd.HedgeDelay; d >= 0 {
		if d == 0 {
			d = DefaultHedgeDelay
		}
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	got := make([]erasure.Block, 0, m)
	for {
		for launched < m && inflight < limit && launched < target+failed && ctx.Err() == nil {
			launch()
		}
		if inflight == 0 {
			break
		}
		select {
		case <-ctx.Done():
			// Abandoned fetches complete into the buffered channel, so
			// returning here leaks nothing.
			return nil, fmt.Errorf("%s chunk %d: %w", file, ci, ctx.Err())
		case r := <-results:
			inflight--
			if !r.ok {
				failed++
				continue
			}
			got = append(got, erasure.Block{Index: r.e, Data: r.data})
			if len(got) >= need {
				if out, err := cd.Code.Decode(got, int(chunkLen)); err == nil {
					return out, nil
				}
				// Rateless decode can stall just short; allow one more.
				if target < m {
					target++
				}
			}
		case <-hedgeC:
			hedgeC = nil
			target = m
		}
	}
	if len(got) >= cd.Code.DataBlocks() {
		if out, err := cd.Code.Decode(got, int(chunkLen)); err == nil {
			return out, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%s chunk %d: %w", file, ci, err)
	}
	return nil, fmt.Errorf("%w: %s chunk %d (%d/%d blocks)", ErrUnavailable, file, ci, len(got), m)
}

// DecodeChunk reconstructs a single chunk of the file described by cat.
// Callers that cache decoded chunks (grid.IOLib, the public File) use
// this to decode at chunk granularity instead of re-decoding per read.
func (cd *Codec) DecodeChunk(ctx context.Context, cat *CAT, ci int, fetch FetchFunc) ([]byte, error) {
	if ci < 0 || ci >= len(cat.Rows) {
		return nil, fmt.Errorf("core: chunk %d outside CAT of %d rows", ci, len(cat.Rows))
	}
	return cd.decodeChunk(ctx, cat.File, ci, cat.Rows[ci].Len(), fetch)
}

// DecodeFile reconstructs the whole file described by cat. Chunks are
// decoded concurrently (see Codec.Workers) and reassembled in order.
func (cd *Codec) DecodeFile(ctx context.Context, cat *CAT, fetch FetchFunc) ([]byte, error) {
	var cis []int
	for ci, row := range cat.Rows {
		if !row.Empty() {
			cis = append(cis, ci)
		}
	}
	chunks := make([][]byte, len(cis))
	err := cd.runJobs(ctx, len(cis), func(i int) error {
		ci := cis[i]
		chunk, err := cd.decodeChunk(ctx, cat.File, ci, cat.Rows[ci].Len(), fetch)
		if err != nil {
			return err
		}
		chunks[i] = chunk
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, cat.FileSize())
	for _, chunk := range chunks {
		out = append(out, chunk...)
	}
	return out, nil
}

// DecodeRange reconstructs [off, off+length) of the file, fetching only
// the chunks that the range touches (§4.1: "the system does not have to
// retrieve an entire file if only a portion of the file is accessed").
func (cd *Codec) DecodeRange(ctx context.Context, cat *CAT, off, length int64, fetch FetchFunc) ([]byte, error) {
	return SliceRange(cat, off, length, func(ci int) ([]byte, error) {
		return cd.decodeChunk(ctx, cat.File, ci, cat.Rows[ci].Len(), fetch)
	})
}

// SliceRange assembles [off, off+length) of the file described by cat
// from per-chunk data supplied by getChunk. It is the single home of
// the chunk-intersection arithmetic, shared by DecodeRange and
// grid.IOLib's cached read path.
func SliceRange(cat *CAT, off, length int64, getChunk func(ci int) ([]byte, error)) ([]byte, error) {
	if off < 0 || length < 0 || off+length > cat.FileSize() {
		return nil, fmt.Errorf("core: range [%d,%d) outside file of %d bytes", off, off+length, cat.FileSize())
	}
	out := make([]byte, 0, length)
	for _, ci := range cat.ChunksFor(off, length) {
		row := cat.Rows[ci]
		chunk, err := getChunk(ci)
		if err != nil {
			return nil, err
		}
		lo := int64(0)
		if off > row.Start {
			lo = off - row.Start
		}
		hi := row.Len()
		if off+length < row.End {
			hi = off + length - row.Start
		}
		out = append(out, chunk[lo:hi]...)
	}
	return out, nil
}

// PlanChunkSizes divides a file of the given size into chunks no larger
// than maxChunk, mimicking what capacity probes produce when every node
// advertises maxChunk/n. It is the planning helper used by examples and
// the live client when no pool probe is available.
func PlanChunkSizes(fileSize, maxChunk int64) []int64 {
	if fileSize <= 0 {
		return nil
	}
	if maxChunk <= 0 {
		return []int64{fileSize}
	}
	var out []int64
	for rem := fileSize; rem > 0; {
		c := maxChunk
		if c > rem {
			c = rem
		}
		out = append(out, c)
		rem -= c
	}
	return out
}
