package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"peerstripe/internal/erasure"
)

// Codec is the byte-level data path: it turns real file contents into
// named, erasure-coded blocks and back. The simulated pool moves sizes
// only; the Codec is what the live TCP nodes (internal/node), the
// examples, and the Table 2 measurements run.
//
// Multi-chunk files are encoded and decoded by a bounded worker pool;
// output ordering is deterministic regardless of scheduling.
type Codec struct {
	Code erasure.Code
	// Workers bounds how many chunks are coded concurrently. 0 selects
	// GOMAXPROCS; 1 forces the serial path. When a file has more than
	// one chunk and Workers != 1, the FetchFunc passed to DecodeFile
	// must be safe for concurrent use (every FS-backed fetch in this
	// repo is).
	Workers int

	// FetchParallel enables the degraded/hedged chunk-read path: up to
	// FetchParallel block fetches of one chunk run concurrently, the
	// first wave covers MinNeeded+FetchHedge blocks, every failure
	// immediately launches a replacement, and per-source progress
	// tracking replaces stalled streams after HedgeDelay — so a decode
	// succeeds from any sufficient subset of blocks without waiting on
	// dark nodes. 0 or 1 keeps the sequential path. The FetchFunc must
	// be safe for concurrent use.
	FetchParallel int
	// FetchHedge is how many extra blocks beyond MinNeeded the first
	// wave requests. 0 (the default) requests exactly the minimum and
	// relies on progress-hedged replacement to race laggards; raise it
	// to pre-pay for expected failures. Negative is treated as 0.
	FetchHedge int
	// HedgeDelay is the per-source stall cutoff: on every HedgeDelay
	// tick, each in-flight fetch that moved no bytes since the last
	// tick counts as a laggard and one replacement block is requested
	// per laggard — streams that are moving are left alone. 0 selects
	// DefaultHedgeDelay; negative disables the timer (failures still
	// trigger replacements).
	HedgeDelay time.Duration

	// StreamFetch, when set, is preferred over the per-call FetchFunc
	// on the parallel path: it reports incremental per-source transfer
	// progress, which is what distinguishes a slow-but-moving stream
	// from a stalled one. It must resolve names identically to the
	// FetchFunc passed alongside it and be safe for concurrent use.
	// When nil, the FetchFunc is wrapped with completion-only progress
	// (a source reports progress only when its block lands whole).
	StreamFetch StreamFetchFunc

	// Cache, when set, is consulted before every chunk decode and
	// populated after each successful one (see ChunkCache). Decodes
	// into a caller-owned buffer (DecodeFile) read from the cache but
	// do not populate it: the cache must never retain a slice whose
	// backing array the caller owns and may overwrite.
	Cache ChunkCache

	// OnHedge, when set, is called with the laggard count each time a
	// stall tick fires replacement fetches on the hedged read path —
	// the hedge-fire telemetry hook. Called from decode goroutines, so
	// it must be safe for concurrent use and cheap.
	OnHedge func(stalled int)
}

// DefaultHedgeDelay is the straggler cutoff of the hedged fetch path.
const DefaultHedgeDelay = 150 * time.Millisecond

// hedgeTick is a free-running stall ticker recycled across chunk
// decodes. A whole-file read runs one hedged decode per chunk; arming
// and disarming a runtime timer per small chunk costs more than the
// stall checks themselves, so the ticker is left running and handed
// from chunk to chunk through a pool instead. Consumers guard against
// its stale or early ticks by comparing the tick time against their own
// start (see decodeChunkParallel). Pooled tickers that fall out of use
// are reclaimed by the garbage collector (Go 1.23 collects unstopped
// tickers).
type hedgeTick struct {
	d time.Duration
	t *time.Ticker
}

var hedgeTicks sync.Pool

func getHedgeTick(d time.Duration) *hedgeTick {
	if h, ok := hedgeTicks.Get().(*hedgeTick); ok {
		if h.d != d {
			h.t.Reset(d)
			h.d = d
		}
		return h
	}
	return &hedgeTick{d: d, t: time.NewTicker(d)}
}

// CodeFor resolves the byte-level erasure code the data path runs from
// its CLI/config names: "null", "xor", "online", or "rs". schedule
// selects the online code's check schedule ("" selects the banded25x4
// default; pass "uniform" to read online-coded files stored by
// pre-banded builds — see erasure.ScheduleByName) and is rejected for
// codes that have no schedule knob. The parameter choices match what
// the live clients have always used: (2,3) XOR, a 64-block online
// code at ε=0.2, and an (8,2) Reed-Solomon stripe.
func CodeFor(code, schedule string) (erasure.Code, error) {
	switch code {
	case "null", "xor", "online", "rs":
	default:
		// Validate the code name before the schedule knob so a typo'd
		// code gets the right diagnostic even when a schedule is set.
		return nil, fmt.Errorf("core: unknown erasure code %q (want null, xor, online, rs)", code)
	}
	if schedule != "" && schedule != "uniform" && code != "online" {
		return nil, fmt.Errorf("core: code %q has no check schedule (only online does)", code)
	}
	switch code {
	case "null":
		return erasure.NewNull(), nil
	case "xor":
		return erasure.NewXOR(2)
	case "online":
		sched, err := erasure.ScheduleByName(schedule)
		if err != nil {
			return nil, err
		}
		return erasure.NewOnline(64, erasure.OnlineOpts{Eps: 0.2, Surplus: 0.2, Schedule: sched})
	default:
		return erasure.NewRS(8, 2)
	}
}

// NamedBlock pairs an encoded block with its storage name.
type NamedBlock struct {
	Name string
	Data []byte
}

// FetchFunc retrieves a named block from wherever it is stored. It
// reports false when the block is unavailable.
type FetchFunc func(name string) ([]byte, bool)

// StreamFetchFunc retrieves a named block while reporting incremental
// transfer progress: implementations call progress with the byte count
// of each segment as it lands (the live client's windowed block
// streams do), letting the hedged read path tell a moving stream from
// a stalled one mid-transfer. progress must not be called after the
// function returns.
type StreamFetchFunc func(name string, progress func(bytes int)) ([]byte, bool)

// ChunkCache lets a caller interpose a decoded-chunk cache under every
// chunk read the codec performs: DecodeChunk, DecodeRange, and
// DecodeFile all consult it before fetching blocks and populate it
// after a successful decode, so ranged reads, whole-file fetches, and
// the public File share one pool of decoded chunks. Implementations
// must be safe for concurrent use. Slices returned by GetChunk and
// handed to PutChunk are shared between the cache and its readers and
// must be treated as immutable.
type ChunkCache interface {
	// GetChunk returns the cached decoded bytes of chunk ci of the
	// file described by cat, or ok=false on a miss. Implementations
	// must key on the table's identity (e.g. CAT.Hash), not the file
	// name alone: a re-stored name gets a new CAT, and bytes decoded
	// under the old one must never satisfy reads against the new.
	GetChunk(cat *CAT, ci int) (data []byte, ok bool)
	// PutChunk offers a freshly decoded chunk to the cache; the cache
	// may drop it (e.g. when it exceeds the size bound).
	PutChunk(cat *CAT, ci int, data []byte)
}

// workers resolves the worker count for a job list.
func (cd *Codec) workers(jobs int) int {
	w := cd.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runJobs executes fn(i) for i in [0, n) over the bounded worker pool
// and returns the lowest-index error, if any. After a job fails, no
// new jobs are started (in-flight ones finish).
func (cd *Codec) runJobs(ctx context.Context, n int, fn func(i int) error) error {
	return ParallelJobsCtx(ctx, n, cd.workers(n), fn)
}

// ParallelJobs executes fn(i) for i in [0, n) over a bounded worker
// pool of the given size (0 selects GOMAXPROCS) and returns the
// lowest-index error, if any. After a job fails, no new jobs are
// started (in-flight ones finish). It is the fan-out primitive shared
// by the codec and the live client's block transfers.
func ParallelJobs(n, workers int, fn func(i int) error) error {
	return ParallelJobsCtx(context.Background(), n, workers, fn)
}

// ParallelJobsCtx is ParallelJobs bounded by ctx: once ctx is done no
// new jobs start (in-flight ones finish) and the ctx error is returned
// unless an earlier job already failed. Job functions that block on
// I/O should themselves honor ctx for prompt cancellation.
func ParallelJobsCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !failed.Load() && ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// EncodeFile splits data into the given chunk sizes (as decided by the
// §4.3 capacity probes), erasure-codes each chunk, and returns the
// named blocks together with the file's CAT. A zero chunk size emits an
// empty CAT row and no blocks. Cancelling ctx stops launching chunk
// jobs and returns the ctx error.
func (cd *Codec) EncodeFile(ctx context.Context, file string, data []byte, chunkSizes []int64) ([]NamedBlock, *CAT, error) {
	jobs, cat, err := splitChunks(file, data, chunkSizes)
	if err != nil {
		return nil, nil, err
	}
	results := make([][]erasure.Block, len(jobs))
	err = cd.runJobs(ctx, len(jobs), func(i int) error {
		ebs, err := cd.Code.Encode(jobs[i].chunk)
		if err != nil {
			return fmt.Errorf("core: encode chunk %d: %w", jobs[i].ci, err)
		}
		results[i] = ebs
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	blocks := make([]NamedBlock, 0, len(jobs)*cd.Code.EncodedBlocks())
	for i, j := range jobs {
		for _, b := range results[i] {
			blocks = append(blocks, NamedBlock{Name: BlockName(file, j.ci, b.Index), Data: b.Data})
		}
	}
	return blocks, cat, nil
}

// chunkJob is one non-empty chunk of a planned file.
type chunkJob struct {
	ci    int
	chunk []byte
}

// splitChunks validates a chunk plan against the data it covers and
// returns the non-empty chunk jobs plus the file's CAT — the planning
// arithmetic shared by EncodeFile and EncodeChunks.
func splitChunks(file string, data []byte, chunkSizes []int64) ([]chunkJob, *CAT, error) {
	cat := &CAT{File: file}
	var jobs []chunkJob
	pos := int64(0)
	for ci, sz := range chunkSizes {
		if sz < 0 {
			return nil, nil, fmt.Errorf("core: negative chunk size at %d", ci)
		}
		if sz == 0 {
			cat.Rows = append(cat.Rows, CATRow{Start: pos, End: pos})
			continue
		}
		if pos+sz > int64(len(data)) {
			return nil, nil, fmt.Errorf("core: chunk sizes exceed data length")
		}
		chunk := data[pos : pos+sz]
		cat.Rows = append(cat.Rows, CATRow{Start: pos, End: pos + sz, Sum: ChunkSum(chunk)})
		jobs = append(jobs, chunkJob{ci: ci, chunk: chunk})
		pos += sz
	}
	if pos != int64(len(data)) {
		return nil, nil, fmt.Errorf("core: chunk sizes cover %d of %d bytes", pos, len(data))
	}
	return jobs, cat, nil
}

// EncodeChunks is EncodeFile's pipelined form: chunks are encoded over
// the worker pool and handed to emit as each one finishes, so a caller
// that uploads from emit overlaps chunk-N encode with chunk-N−1 upload
// instead of materializing every block of the file before the first
// byte moves. emit may be called concurrently (bounded by Workers) and
// in any chunk order; its blocks may alias data; a failed emit stops
// the pipeline with that error. Returns the file's CAT, which is
// complete before the first emit.
func (cd *Codec) EncodeChunks(ctx context.Context, file string, data []byte, chunkSizes []int64, emit func(ci int, blocks []NamedBlock) error) (*CAT, error) {
	jobs, cat, err := splitChunks(file, data, chunkSizes)
	if err != nil {
		return nil, err
	}
	err = cd.runJobs(ctx, len(jobs), func(i int) error {
		ebs, err := cd.Code.Encode(jobs[i].chunk)
		if err != nil {
			return fmt.Errorf("core: encode chunk %d: %w", jobs[i].ci, err)
		}
		named := make([]NamedBlock, 0, len(ebs))
		for _, b := range ebs {
			named = append(named, NamedBlock{Name: BlockName(file, jobs[i].ci, b.Index), Data: b.Data})
		}
		return emit(jobs[i].ci, named)
	})
	if err != nil {
		return nil, err
	}
	return cat, nil
}

// decodeInto reconstructs a chunk from got: into dst when non-nil
// (zero-copy for DecoderInto codes, one bounded copy otherwise), into a
// fresh buffer when dst is nil. On error dst's contents are
// unspecified; callers only use it after a nil error.
func (cd *Codec) decodeInto(dst []byte, got []erasure.Block, chunkLen int64) ([]byte, error) {
	if dst == nil {
		return cd.Code.Decode(got, int(chunkLen))
	}
	dst = dst[:chunkLen]
	if di, ok := cd.Code.(erasure.DecoderInto); ok {
		if err := di.DecodeInto(dst, got); err != nil {
			return nil, err
		}
		return dst, nil
	}
	out, err := cd.Code.Decode(got, int(chunkLen))
	if err != nil {
		return nil, err
	}
	copy(dst, out)
	return dst, nil
}

// decodeChunk fetches blocks of one chunk until the code can decode it.
// When dst is non-nil the decoded chunk lands there (it must hold
// chunkLen bytes); otherwise a fresh buffer is returned. A configured
// Cache short-circuits the fetch entirely on a hit and learns the
// chunk on a fresh-buffer decode.
func (cd *Codec) decodeChunk(ctx context.Context, cat *CAT, ci int, fetch FetchFunc, dst []byte) ([]byte, error) {
	file, chunkLen := cat.File, cat.Rows[ci].Len()
	if chunkLen == 0 {
		return nil, nil
	}
	if cd.Cache != nil {
		if data, ok := cd.Cache.GetChunk(cat, ci); ok && int64(len(data)) == chunkLen {
			if dst == nil {
				return data, nil
			}
			dst = dst[:chunkLen]
			copy(dst, data)
			return dst, nil
		}
	}
	var out []byte
	var err error
	if cd.FetchParallel > 1 && cd.Code.EncodedBlocks() > 1 {
		out, err = cd.decodeChunkParallel(ctx, file, ci, chunkLen, fetch, dst)
	} else {
		out, err = cd.decodeChunkSerial(ctx, file, ci, chunkLen, fetch, dst)
	}
	if err == nil && cd.Cache != nil && dst == nil {
		cd.Cache.PutChunk(cat, ci, out)
	}
	return out, err
}

// decodeChunkSerial is the sequential fetch-until-decodable path.
func (cd *Codec) decodeChunkSerial(ctx context.Context, file string, ci int, chunkLen int64, fetch FetchFunc, dst []byte) ([]byte, error) {
	m := cd.Code.EncodedBlocks()
	need := cd.Code.MinNeeded()
	got := make([]erasure.Block, 0, m)
	for e := 0; e < m; e++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, ok := fetch(BlockName(file, ci, e))
		if !ok {
			continue
		}
		got = append(got, erasure.Block{Index: e, Data: data})
		if len(got) >= need {
			out, err := cd.decodeInto(dst, got, chunkLen)
			if err == nil {
				return out, nil
			}
			// Rateless decode can stall just short; keep fetching.
		}
	}
	if len(got) >= cd.Code.DataBlocks() {
		if out, err := cd.decodeInto(dst, got, chunkLen); err == nil {
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %s chunk %d (%d/%d blocks)", ErrUnavailable, file, ci, len(got), m)
}

// decodeChunkParallel is the degraded-read path: it requests a first
// wave of MinNeeded+FetchHedge blocks concurrently, replaces every
// failure with the next untried block immediately, and tracks
// per-source progress — on each HedgeDelay tick, every in-flight
// fetch that moved no bytes since the previous tick counts as a
// laggard and one replacement launches per laggard, so a stalled
// stream is raced from another holder mid-transfer while streams that
// are moving are left alone. Decode runs as soon as any sufficient
// subset has arrived — so one dark node costs at most a hedge delay
// instead of a timeout, and reads succeed with nodes down. Cancelling
// ctx stops launching fetches and returns once the in-flight ones
// drain (promptly when the fetch itself honors ctx).
func (cd *Codec) decodeChunkParallel(ctx context.Context, file string, ci int, chunkLen int64, fetch FetchFunc, dst []byte) ([]byte, error) {
	m := cd.Code.EncodedBlocks()
	need := cd.Code.MinNeeded()
	limit := cd.FetchParallel
	if limit > m {
		limit = m
	}
	hedge := cd.FetchHedge
	if hedge < 0 {
		hedge = 0
	}
	target := need + hedge
	if target > m {
		target = m
	}
	sfetch := cd.StreamFetch
	if sfetch == nil {
		sfetch = func(name string, progress func(int)) ([]byte, bool) {
			data, ok := fetch(name)
			if ok {
				progress(len(data))
			}
			return data, ok
		}
	}

	type result struct {
		e    int
		data []byte
		ok   bool
	}
	// Buffered to m: abandoned fetches complete into the buffer and
	// are collected, never leaking a goroutine past its fetch.
	results := make(chan result, m)
	moved := make([]atomic.Int64, m) // bytes each source has moved
	seen := make([]int64, m)         // moved[] snapshot at the last tick
	inFlight := make([]bool, m)
	launched, inflight, failed := 0, 0, 0
	launch := func() {
		e := launched
		launched++
		inflight++
		inFlight[e] = true
		go func() {
			data, ok := sfetch(BlockName(file, ci, e), func(n int) {
				moved[e].Add(int64(n))
			})
			results <- result{e, data, ok}
		}()
	}

	var hedgeC <-chan time.Time
	var started time.Time
	d := cd.HedgeDelay
	if d >= 0 {
		if d == 0 {
			d = DefaultHedgeDelay
		}
		tick := getHedgeTick(d)
		defer hedgeTicks.Put(tick)
		hedgeC = tick.t.C
		started = time.Now()
	}

	got := make([]erasure.Block, 0, m)
	for {
		for launched < m && inflight < limit && launched < target+failed && ctx.Err() == nil {
			launch()
		}
		if inflight == 0 {
			break
		}
		select {
		case <-ctx.Done():
			// Abandoned fetches complete into the buffered channel, so
			// returning here leaks nothing.
			return nil, fmt.Errorf("%s chunk %d: %w", file, ci, ctx.Err())
		case r := <-results:
			inflight--
			inFlight[r.e] = false
			if !r.ok {
				failed++
				continue
			}
			got = append(got, erasure.Block{Index: r.e, Data: r.data})
			if len(got) >= need {
				if out, err := cd.decodeInto(dst, got, chunkLen); err == nil {
					return out, nil
				}
				// Rateless decode can stall just short; allow one more.
				if target < m {
					target++
				}
			}
		case now := <-hedgeC:
			if now.Sub(started) < d {
				continue // stale or early tick from the recycled ticker
			}
			stalled := 0
			for e := 0; e < m; e++ {
				if !inFlight[e] {
					continue
				}
				if p := moved[e].Load(); p > seen[e] {
					seen[e] = p
				} else {
					stalled++
				}
			}
			if stalled > 0 && cd.OnHedge != nil {
				cd.OnHedge(stalled)
			}
			if target += stalled; target > m {
				target = m
			}
		}
	}
	if len(got) >= cd.Code.DataBlocks() {
		if out, err := cd.decodeInto(dst, got, chunkLen); err == nil {
			return out, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%s chunk %d: %w", file, ci, err)
	}
	return nil, fmt.Errorf("%w: %s chunk %d (%d/%d blocks)", ErrUnavailable, file, ci, len(got), m)
}

// DecodeChunk reconstructs a single chunk of the file described by cat.
// Callers that cache decoded chunks (grid.IOLib, the public File) use
// this to decode at chunk granularity instead of re-decoding per read.
func (cd *Codec) DecodeChunk(ctx context.Context, cat *CAT, ci int, fetch FetchFunc) ([]byte, error) {
	if ci < 0 || ci >= len(cat.Rows) {
		return nil, fmt.Errorf("core: chunk %d outside CAT of %d rows", ci, len(cat.Rows))
	}
	return cd.decodeChunk(ctx, cat, ci, fetch, nil)
}

// DecodeFile reconstructs the whole file described by cat. Chunks are
// decoded concurrently (see Codec.Workers), each straight into its slot
// of the output buffer — no per-chunk buffers, no reassembly pass.
func (cd *Codec) DecodeFile(ctx context.Context, cat *CAT, fetch FetchFunc) ([]byte, error) {
	var cis []int
	for ci, row := range cat.Rows {
		if !row.Empty() {
			cis = append(cis, ci)
		}
	}
	out := make([]byte, cat.FileSize())
	err := cd.runJobs(ctx, len(cis), func(i int) error {
		ci := cis[i]
		row := cat.Rows[ci]
		_, err := cd.decodeChunk(ctx, cat, ci, fetch, out[row.Start:row.End])
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeRange reconstructs [off, off+length) of the file, fetching only
// the chunks that the range touches (§4.1: "the system does not have to
// retrieve an entire file if only a portion of the file is accessed").
func (cd *Codec) DecodeRange(ctx context.Context, cat *CAT, off, length int64, fetch FetchFunc) ([]byte, error) {
	return SliceRange(cat, off, length, func(ci int) ([]byte, error) {
		return cd.decodeChunk(ctx, cat, ci, fetch, nil)
	})
}

// SliceRange assembles [off, off+length) of the file described by cat
// from per-chunk data supplied by getChunk. It is the single home of
// the chunk-intersection arithmetic, shared by DecodeRange and
// grid.IOLib's cached read path.
func SliceRange(cat *CAT, off, length int64, getChunk func(ci int) ([]byte, error)) ([]byte, error) {
	if off < 0 || length < 0 || off+length > cat.FileSize() {
		return nil, fmt.Errorf("core: range [%d,%d) outside file of %d bytes", off, off+length, cat.FileSize())
	}
	out := make([]byte, 0, length)
	for _, ci := range cat.ChunksFor(off, length) {
		row := cat.Rows[ci]
		chunk, err := getChunk(ci)
		if err != nil {
			return nil, err
		}
		lo := int64(0)
		if off > row.Start {
			lo = off - row.Start
		}
		hi := row.Len()
		if off+length < row.End {
			hi = off + length - row.Start
		}
		out = append(out, chunk[lo:hi]...)
	}
	return out, nil
}

// PlanChunkSizes divides a file of the given size into chunks no larger
// than maxChunk, mimicking what capacity probes produce when every node
// advertises maxChunk/n. It is the planning helper used by examples and
// the live client when no pool probe is available.
func PlanChunkSizes(fileSize, maxChunk int64) []int64 {
	if fileSize <= 0 {
		return nil
	}
	if maxChunk <= 0 {
		return []int64{fileSize}
	}
	var out []int64
	for rem := fileSize; rem > 0; {
		c := maxChunk
		if c > rem {
			c = rem
		}
		out = append(out, c)
		rem -= c
	}
	return out
}
