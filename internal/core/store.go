package core

import (
	"errors"
	"fmt"

	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/sim"
)

// Config parameterises a PeerStripe store.
type Config struct {
	// Spec is the per-chunk erasure coding applied (§4.2). Use
	// erasure.NullSpec for no coding (the §6.1 configuration).
	Spec erasure.Spec
	// MaxZeroChunks bounds consecutive zero-sized chunks before a store
	// fails (§4.3). The paper's simulations use 5.
	MaxZeroChunks int
	// CATReplicas is the number of extra neighbor replicas kept of each
	// CAT file (§4.4).
	CATReplicas int
	// MaxChunkSize optionally caps chunk sizes (the §4.5 trade-off
	// hook; 0 = uncapped, the paper's setting).
	MaxChunkSize int64
	// Rateless marks the coding as rateless (online code): lost blocks
	// may be re-created under fresh names at new locations instead of
	// on the overloaded successor (§4.4, the alternative the paper
	// adopted).
	Rateless bool
}

// DefaultConfig returns the base configuration: no error coding,
// zero-chunk limit 5, CAT replicated on two neighbors, uncapped chunks.
func DefaultConfig() Config {
	return Config{Spec: erasure.NullSpec, MaxZeroChunks: 5, CATReplicas: 2}
}

// PaperConfig returns the calibrated §6.1 configuration. The paper
// states nodes advertised their entire capacity, yet its Table 1
// reports 3.72 chunks per file averaging 81.28 MB — for a 243 MB mean
// file that is only consistent with an effective per-block
// advertisement near 100 MB (three ~100 MB chunks average 81 MB).
// Adopting MaxChunkSize = 100 MB reproduces Table 1 and, downstream,
// the Figure 10 availability curves (see EXPERIMENTS.md). The §4.3
// local-policy hook is exactly this knob.
func PaperConfig() Config {
	c := DefaultConfig()
	c.MaxChunkSize = 100 << 20
	return c
}

// fileState tracks a stored file for availability accounting and repair.
type fileState struct {
	cat           *CAT
	blockSizes    []int64 // per chunk; 0 for empty chunks
	survivors     []int   // live encoded blocks per chunk
	nextECB       []int   // next fresh block index (rateless repair naming)
	catAlive      int     // surviving CAT replicas
	catReplicaSeq int     // counter for re-created CAT replica names
	unavail       bool
}

// StoreResult reports the outcome of one file store.
type StoreResult struct {
	File string
	OK   bool
	// Chunks is the number of non-empty chunks created.
	Chunks int
	// ZeroChunks counts zero-sized placeholder chunks.
	ZeroChunks int
	// ChunkSizes lists the non-empty chunk sizes in order.
	ChunkSizes []int64
	// LogicalBytes is the file size stored (0 when !OK).
	LogicalBytes int64
	// RawBytes is the pool space consumed including coding redundancy
	// and CAT replicas.
	RawBytes int64
	// Err explains a failed store.
	Err error
}

// ErrStoreFailed is wrapped by StoreResult.Err when the zero-chunk
// limit is exceeded.
var ErrStoreFailed = errors.New("core: file store failed")

// ErrUnavailable is returned by Retrieve when a chunk is undecodable.
var ErrUnavailable = errors.New("core: file unavailable")

// Store is a PeerStripe instance bound to a simulated pool.
type Store struct {
	Pool *sim.Pool
	Cfg  Config

	files  map[string]*fileState
	failed map[ids.ID]bool // nodes already failed via FailNode (idempotence)

	// Aggregate accounting the experiments read.
	FilesStored  int
	FilesFailed  int
	BytesStored  int64 // logical bytes successfully stored
	BytesFailed  int64 // logical bytes of failed stores
	FilesLost    int   // files that became unavailable after failures
	BytesLostRaw int64 // chunk bytes made undecodable by failures
}

// NewStore builds a PeerStripe store over the pool.
func NewStore(pool *sim.Pool, cfg Config) *Store {
	if cfg.MaxZeroChunks <= 0 {
		cfg.MaxZeroChunks = 5
	}
	if cfg.Spec.DataBlocks <= 0 {
		cfg.Spec = erasure.NullSpec
	}
	return &Store{Pool: pool, Cfg: cfg, files: make(map[string]*fileState)}
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// StoreFile stores a file of the given logical size, implementing the
// §4.3 procedure: derive the next chunk's encoded block names, probe
// the responsible nodes with getCapacity, size the chunk to the minimum
// advertised block capacity times n, place the m encoded blocks, and
// repeat; a refused placement becomes a zero-sized chunk, and exceeding
// the consecutive-zero-chunk limit fails the store with rollback.
func (s *Store) StoreFile(name string, size int64) StoreResult {
	if _, dup := s.files[name]; dup {
		return StoreResult{File: name, Err: fmt.Errorf("core: %q already stored", name)}
	}
	res := StoreResult{File: name}
	spec := s.Cfg.Spec
	n64, m := int64(spec.DataBlocks), spec.TotalBlocks

	fs := &fileState{cat: &CAT{File: name}}
	var placed []string // block names placed, for rollback
	remaining := size
	zeroRun := 0
	pos := int64(0)
	chunk := 0

	rollback := func() {
		for _, bn := range placed {
			s.Pool.DeleteBlock(bn)
		}
	}

	for remaining > 0 {
		// Probe: create the encoded block names of this chunk (names
		// only, no data yet) and ask each target its capacity.
		minCap := int64(-1)
		targets := make([]*sim.StoreNode, m)
		for e := 0; e < m; e++ {
			node := s.Pool.Lookup(BlockName(name, chunk, e))
			targets[e] = node
			var c int64
			if node != nil {
				c = node.GetCapacity()
			}
			if minCap < 0 || c < minCap {
				minCap = c
			}
		}
		maxBlock := minCap
		if s.Cfg.MaxChunkSize > 0 {
			if cap := ceilDiv(s.Cfg.MaxChunkSize, n64); cap < maxBlock {
				maxBlock = cap
			}
		}

		chunkBytes := n64 * maxBlock
		if chunkBytes > remaining {
			chunkBytes = remaining
		}
		ok := maxBlock > 0
		var blockSize int64
		if ok {
			blockSize = ceilDiv(chunkBytes, n64)
			// Place the m encoded blocks; any refusal (e.g. two blocks
			// of one chunk mapping to the same nearly-full node — the
			// probe/store race of §4.3) voids the chunk.
			var thisChunk []string
			for e := 0; e < m; e++ {
				bn := BlockName(name, chunk, e)
				if s.Pool.StoreBlock(bn, blockSize) == nil {
					ok = false
					for _, pb := range thisChunk {
						s.Pool.DeleteBlock(pb)
					}
					break
				}
				thisChunk = append(thisChunk, bn)
			}
			if ok {
				placed = append(placed, thisChunk...)
				res.RawBytes += int64(m) * blockSize
			}
		}

		if !ok {
			// Zero-sized chunk: skip this chunk number and retry at the
			// next (the built-in retry of §4.3).
			fs.cat.Rows = append(fs.cat.Rows, CATRow{Start: pos, End: pos})
			fs.blockSizes = append(fs.blockSizes, 0)
			fs.survivors = append(fs.survivors, 0)
			fs.nextECB = append(fs.nextECB, m)
			res.ZeroChunks++
			zeroRun++
			chunk++
			if zeroRun > s.Cfg.MaxZeroChunks {
				rollback()
				res.Err = fmt.Errorf("%w: %q: %d consecutive zero-sized chunks",
					ErrStoreFailed, name, zeroRun)
				s.FilesFailed++
				s.BytesFailed += size
				return res
			}
			continue
		}

		zeroRun = 0
		fs.cat.Rows = append(fs.cat.Rows, CATRow{Start: pos, End: pos + chunkBytes})
		fs.blockSizes = append(fs.blockSizes, blockSize)
		fs.survivors = append(fs.survivors, m)
		fs.nextECB = append(fs.nextECB, m)
		res.Chunks++
		res.ChunkSizes = append(res.ChunkSizes, chunkBytes)
		pos += chunkBytes
		remaining -= chunkBytes
		chunk++
	}

	// Store the CAT and its neighbor replicas (§4.4). Because varying
	// chunks can leave nodes exactly full, a CAT placement may be
	// refused; additional replica indices act as salted retries so the
	// tiny table always finds a home while any space remains.
	catSize := fs.cat.SizeBytes()
	want := s.Cfg.CATReplicas + 1
	for r := 0; r < want+8 && fs.catAlive < want; r++ {
		if s.Pool.StoreBlock(ReplicaName(CATName(name), r), catSize) != nil {
			fs.catAlive++
			res.RawBytes += catSize
		}
	}
	if fs.catAlive == 0 && size > 0 {
		// Pool so full even the tiny CAT cannot land: fail the store.
		rollback()
		res.Err = fmt.Errorf("%w: %q: could not place CAT", ErrStoreFailed, name)
		s.FilesFailed++
		s.BytesFailed += size
		return res
	}

	s.files[name] = fs
	res.OK = true
	res.LogicalBytes = size
	s.FilesStored++
	s.BytesStored += size
	return res
}

// CAT returns the stored file's chunk allocation table.
func (s *Store) CAT(name string) (*CAT, bool) {
	fs, ok := s.files[name]
	if !ok {
		return nil, false
	}
	return fs.cat, true
}

// Available reports whether every chunk of the file is still decodable:
// at least MinNeeded of its encoded blocks survive (§6.2's availability
// criterion: "a file [is] available only if all the chunks of the file
// could be retrieved").
func (s *Store) Available(name string) bool {
	fs, ok := s.files[name]
	if !ok || fs.unavail {
		return false
	}
	return true
}

// RetrieveStats reports the cost of a (simulated) retrieval.
type RetrieveStats struct {
	Chunks       int   // chunks touched
	BlockFetches int   // encoded blocks fetched
	Bytes        int64 // encoded bytes transferred
	Lookups      int   // overlay lookUp messages issued
}

// Retrieve simulates reading [off, off+length) of the file: locate the
// CAT, select the chunks the range touches, and fetch MinNeeded encoded
// blocks per chunk. It returns the transfer/lookup cost.
func (s *Store) Retrieve(name string, off, length int64) (RetrieveStats, error) {
	var st RetrieveStats
	fs, ok := s.files[name]
	if !ok {
		return st, fmt.Errorf("core: %q not stored", name)
	}
	if fs.unavail {
		return st, fmt.Errorf("%w: %q", ErrUnavailable, name)
	}
	// One lookup locates the CAT (or a replica).
	st.Lookups++
	s.Pool.Lookup(CATName(name))
	for _, ci := range fs.cat.ChunksFor(off, length) {
		st.Chunks++
		need := s.Cfg.Spec.MinNeeded
		if fs.survivors[ci] < need {
			return st, fmt.Errorf("%w: %q chunk %d", ErrUnavailable, name, ci)
		}
		st.BlockFetches += need
		st.Bytes += int64(need) * fs.blockSizes[ci]
		st.Lookups += need
	}
	return st, nil
}

// RecreateCAT models the §4.4 CAT reconstruction path: chunks are
// probed incrementally by name until MaxZeroChunks+1 consecutive probes
// miss, which bounds the search. It returns the reconstructed table and
// the number of overlay lookups spent.
func (s *Store) RecreateCAT(name string) (*CAT, int, error) {
	fs, ok := s.files[name]
	if !ok {
		return nil, 0, fmt.Errorf("core: %q not stored", name)
	}
	lookups := 0
	rebuilt := &CAT{File: name}
	misses := 0
	pos := int64(0)
	for chunk := 0; misses <= s.Cfg.MaxZeroChunks; chunk++ {
		lookups++ // probe for block 0 of this chunk
		if chunk < len(fs.blockSizes) && fs.blockSizes[chunk] > 0 {
			misses = 0
			sz := fs.cat.Rows[chunk].Len()
			rebuilt.Rows = append(rebuilt.Rows, CATRow{Start: pos, End: pos + sz})
			pos += sz
		} else {
			misses++
			rebuilt.Rows = append(rebuilt.Rows, CATRow{Start: pos, End: pos})
		}
	}
	// Trim the trailing miss probes (they are beyond the end of file).
	rebuilt.Rows = rebuilt.Rows[:len(rebuilt.Rows)-misses]
	return rebuilt, lookups, nil
}

// DeleteFile removes a stored file: every encoded block (including any
// rateless replacements), the CAT and its replicas, and the index
// entry. It returns the pool bytes released.
func (s *Store) DeleteFile(name string) (int64, error) {
	fs, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("core: delete: %q not stored", name)
	}
	var released int64
	for ci := range fs.cat.Rows {
		// Original indices plus any fresh ones minted by repair.
		for e := 0; e < fs.nextECB[ci]; e++ {
			bn := BlockName(name, ci, e)
			if owner := s.Pool.OwnerOf(bn); owner != nil {
				if sz, ok := owner.Delete(bn); ok {
					s.Pool.TotalUsed -= sz
					released += sz
				}
			}
		}
	}
	// CAT replicas, including re-created ones.
	for r := 0; r < s.Cfg.CATReplicas+1+8; r++ {
		rn := ReplicaName(CATName(name), r)
		if owner := s.Pool.OwnerOf(rn); owner != nil {
			if sz, ok := owner.Delete(rn); ok {
				s.Pool.TotalUsed -= sz
				released += sz
			}
		}
	}
	for r := 0; r <= fs.catReplicaSeq; r++ {
		rn := ReplicaName(CATName(name), 100+r)
		if owner := s.Pool.OwnerOf(rn); owner != nil {
			if sz, ok := owner.Delete(rn); ok {
				s.Pool.TotalUsed -= sz
				released += sz
			}
		}
	}
	delete(s.files, name)
	s.FilesStored--
	s.BytesStored -= fs.cat.FileSize()
	return released, nil
}

// Files returns the names of stored files (order unspecified).
func (s *Store) Files() []string {
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	return out
}

// NumFiles returns the number of currently indexed files.
func (s *Store) NumFiles() int { return len(s.files) }
