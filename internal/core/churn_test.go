package core

import (
	"testing"

	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/trace"
)

// victimWithBlocks returns a node ID holding at least one file block.
func victimWithBlocks(t *testing.T, s *Store) ids.ID {
	t.Helper()
	var victim ids.ID
	found := false
	_ = found
	for _, on := range s.Pool.Net.Nodes() {
		sn, _ := s.Pool.Node(on.ID)
		for name := range sn.Blocks {
			if _, _, _, ok := ParseBlockName(name); ok {
				return on.ID
			}
		}
	}
	t.Fatal("no node holds a file block")
	return victim
}

func TestFailNodeNoRepairMarksUnavailable(t *testing.T) {
	s := newStore(t, 20, caps(30, 2*trace.GB), DefaultConfig()) // no coding
	res := s.StoreFile("f", 5*trace.GB)
	if !res.OK {
		t.Fatal(res.Err)
	}
	// Without coding, losing any block kills the file.
	id := victimWithBlocks(t, s)
	rep, err := s.FailNode(id, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksLost == 0 {
		t.Fatal("victim reported no lost blocks")
	}
	if rep.FilesLost != 1 || s.Available("f") {
		t.Fatalf("file should be unavailable: rep=%+v", rep)
	}
	if rep.DataUnrecoverable == 0 {
		t.Fatal("no data charged as unrecoverable")
	}
}

func TestFailNodeWithCodingSurvivesOneLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.XOR23Spec
	s := newStore(t, 21, caps(40, 2*trace.GB), cfg)
	res := s.StoreFile("f", 3*trace.GB)
	if !res.OK {
		t.Fatal(res.Err)
	}
	id := victimWithBlocks(t, s)
	rep, err := s.FailNode(id, false)
	if err != nil {
		t.Fatal(err)
	}
	// One node holds at most one block of any chunk with overwhelming
	// probability (distinct names hash apart); a single loss per chunk
	// is tolerated by (2,3).
	if rep.FilesLost != 0 {
		t.Fatalf("file lost despite XOR coding: %+v", rep)
	}
	if !s.Available("f") {
		t.Fatal("file unavailable after tolerable loss")
	}
}

func TestFailNodeWithRepairRegenerates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.XOR23Spec
	s := newStore(t, 22, caps(40, 2*trace.GB), cfg)
	if res := s.StoreFile("f", 3*trace.GB); !res.OK {
		t.Fatal(res.Err)
	}
	id := victimWithBlocks(t, s)
	rep, err := s.FailNode(id, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRegenerated == 0 {
		t.Fatalf("repair regenerated nothing: %+v", rep)
	}
	if rep.BytesRegenerated == 0 {
		t.Fatal("repair bytes not accounted")
	}
	// After repair, every chunk is back at full strength: a second
	// failure of any single node is still tolerable.
	id2 := victimWithBlocks(t, s)
	rep2, err := s.FailNode(id2, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FilesLost != 0 {
		t.Fatal("file lost on second isolated failure after repair")
	}
	if !s.Available("f") {
		t.Fatal("file unavailable after repaired failures")
	}
}

func TestRatelessRepairUsesFreshNames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.OnlineSimSpec
	cfg.Rateless = true
	s := newStore(t, 23, caps(40, 2*trace.GB), cfg)
	if res := s.StoreFile("f", 2*trace.GB); !res.OK {
		t.Fatal(res.Err)
	}
	id := victimWithBlocks(t, s)
	rep, err := s.FailNode(id, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRegenerated == 0 {
		t.Fatalf("rateless repair regenerated nothing: %+v", rep)
	}
	// Fresh block names beyond the original m must now exist somewhere.
	fresh := false
	for _, on := range s.Pool.Net.Nodes() {
		sn, _ := s.Pool.Node(on.ID)
		for name := range sn.Blocks {
			if _, _, ecb, ok := ParseBlockName(name); ok && ecb >= erasure.OnlineSimSpec.TotalBlocks {
				fresh = true
			}
		}
	}
	if !fresh {
		t.Fatal("no fresh-named replacement blocks found")
	}
}

func TestCATReplicaRecreation(t *testing.T) {
	s := newStore(t, 24, caps(40, 2*trace.GB), DefaultConfig())
	if res := s.StoreFile("f", 1*trace.GB); !res.OK {
		t.Fatal(res.Err)
	}
	// Find a node holding a CAT replica and fail it with repair.
	var victim ids.ID
	found := false
	for _, on := range s.Pool.Net.Nodes() {
		sn, _ := s.Pool.Node(on.ID)
		for name := range sn.Blocks {
			if _, _, ok := IsCATName(name); ok {
				victim, found = on.ID, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no CAT replica found")
	}
	rep, err := s.FailNode(victim, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CATReplicasLost == 0 || rep.CATReplicasRecreated == 0 {
		t.Fatalf("CAT replica churn not handled: %+v", rep)
	}
}

func TestChurnSimBasic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.XOR23Spec
	s := newStore(t, 25, caps(400, 2*trace.GB), cfg)
	g := trace.NewGen(26)
	for i, f := range g.Files(40) {
		_ = i
		s.StoreFile(f.Name, f.Size)
	}
	// Generous repair bandwidth: repairs finish between failures.
	cs := NewChurnSim(s, 1e12, 1.0)
	rng := g.Rand()
	failed := 0
	for failed < 6 {
		nodes := s.Pool.Net.Nodes()
		id := nodes[rng.Intn(len(nodes))].ID
		if err := cs.FailNext(id); err != nil {
			t.Fatal(err)
		}
		failed++
	}
	cs.Drain()
	if cs.Backlog() != 0 {
		t.Fatalf("backlog = %d after drain", cs.Backlog())
	}
	if cs.TotalRegenerated == 0 {
		t.Fatal("churn regenerated nothing")
	}
	if len(cs.PerFailureRegen) != 6 {
		t.Fatalf("per-failure records = %d", len(cs.PerFailureRegen))
	}
	// With 400 nodes, distinct block names land on distinct nodes with
	// high probability, so isolated repaired failures should lose (at
	// most a rare co-located chunk of) data.
	if cs.TotalLost > s.BytesStored/20 {
		t.Fatalf("fast repair lost %d of %d bytes", cs.TotalLost, s.BytesStored)
	}
}

func TestChurnSimSlowRepairLosesData(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.XOR23Spec
	s := newStore(t, 27, caps(50, 2*trace.GB), cfg)
	g := trace.NewGen(28)
	for _, f := range g.Files(40) {
		s.StoreFile(f.Name, f.Size)
	}
	// Glacial repair: almost nothing completes between failures, so
	// sustained churn must eventually defeat the single-loss tolerance.
	cs := NewChurnSim(s, 1, 1.0)
	rng := g.Rand()
	for i := 0; i < 25; i++ {
		nodes := s.Pool.Net.Nodes()
		if len(nodes) == 0 {
			break
		}
		if err := cs.FailNext(nodes[rng.Intn(len(nodes))].ID); err != nil {
			t.Fatal(err)
		}
	}
	if cs.TotalLost == 0 {
		t.Fatal("50% churn with no effective repair lost no data — model broken")
	}
	if cs.Now() <= 0 {
		t.Fatal("simulated time did not advance")
	}
}
