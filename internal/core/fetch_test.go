package core

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peerstripe/internal/erasure"
)

// memFetch builds a concurrent-safe FetchFunc over an in-memory block
// map with a per-name failure set.
type memFetch struct {
	mu     sync.Mutex
	blocks map[string][]byte
	dead   map[string]bool
	calls  atomic.Int64
	delay  func(name string) time.Duration
}

func newMemFetch(t *testing.T, code erasure.Code, file string, data []byte, chunkSizes []int64) (*memFetch, *CAT) {
	t.Helper()
	codec := &Codec{Code: code}
	blocks, cat, err := codec.EncodeFile(context.Background(), file, data, chunkSizes)
	if err != nil {
		t.Fatal(err)
	}
	mf := &memFetch{blocks: make(map[string][]byte), dead: make(map[string]bool)}
	for _, b := range blocks {
		mf.blocks[b.Name] = b.Data
	}
	return mf, cat
}

func (mf *memFetch) fetch(name string) ([]byte, bool) {
	mf.calls.Add(1)
	if mf.delay != nil {
		time.Sleep(mf.delay(name))
	}
	mf.mu.Lock()
	defer mf.mu.Unlock()
	if mf.dead[name] {
		return nil, false
	}
	d, ok := mf.blocks[name]
	return d, ok
}

func (mf *memFetch) kill(name string) {
	mf.mu.Lock()
	mf.dead[name] = true
	mf.mu.Unlock()
}

// TestParallelFetchMatchesSequential decodes the same file through the
// sequential and hedged-parallel paths under random block failures
// (within tolerance) and requires identical bytes.
func TestParallelFetchMatchesSequential(t *testing.T) {
	code := erasure.MustXOR(2)
	data := make([]byte, 300_000)
	rand.New(rand.NewSource(1)).Read(data)
	sizes := PlanChunkSizes(int64(len(data)), 40_000)
	mf, cat := newMemFetch(t, code, "par.dat", data, sizes)

	// Kill one block per chunk — the code's exact tolerance.
	rng := rand.New(rand.NewSource(2))
	for ci := range cat.Rows {
		mf.kill(BlockName("par.dat", ci, rng.Intn(code.EncodedBlocks())))
	}

	seq := &Codec{Code: code, Workers: 1}
	want, err := seq.DecodeFile(context.Background(), cat, mf.fetch)
	if err != nil {
		t.Fatal(err)
	}
	par := &Codec{Code: code, Workers: 4, FetchParallel: 4, HedgeDelay: 10 * time.Millisecond}
	got, err := par.DecodeFile(context.Background(), cat, mf.fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) || !bytes.Equal(got, data) {
		t.Fatal("parallel decode differs from sequential")
	}
}

// TestParallelFetchFailsBeyondTolerance kills both blocks the decode
// needs in one chunk and requires a clean ErrUnavailable, not a hang.
func TestParallelFetchFailsBeyondTolerance(t *testing.T) {
	code := erasure.MustXOR(2)
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(3)).Read(data)
	sizes := PlanChunkSizes(int64(len(data)), 30_000)
	mf, cat := newMemFetch(t, code, "gone.dat", data, sizes)
	mf.kill(BlockName("gone.dat", 1, 0))
	mf.kill(BlockName("gone.dat", 1, 1))

	par := &Codec{Code: code, Workers: 4, FetchParallel: 4, HedgeDelay: 5 * time.Millisecond}
	if _, err := par.DecodeFile(context.Background(), cat, mf.fetch); err == nil {
		t.Fatal("decode succeeded with a chunk beyond tolerance")
	}
}

// TestParallelFetchStopsEarly verifies the happy path does not fan out
// to every block: with no failures and a generous hedge delay, each
// chunk should touch MinNeeded+FetchHedge blocks, not all m.
func TestParallelFetchStopsEarly(t *testing.T) {
	code := erasure.MustRS(4, 4) // m = 8, need = 4
	data := make([]byte, 64_000)
	rand.New(rand.NewSource(4)).Read(data)
	sizes := PlanChunkSizes(int64(len(data)), 64_000)
	mf, cat := newMemFetch(t, code, "early.dat", data, sizes)

	par := &Codec{Code: code, FetchParallel: 8, FetchHedge: 1, HedgeDelay: 5 * time.Second}
	got, err := par.DecodeFile(context.Background(), cat, mf.fetch)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal(err)
	}
	if calls := mf.calls.Load(); calls > int64(code.MinNeeded()+1) {
		t.Fatalf("happy-path decode touched %d blocks, want <= %d", calls, code.MinNeeded()+1)
	}
}

// TestProgressHedgeReplacesSilentSource pins the mid-stream half of
// the hedged read: a source that reported progress once and then went
// silent — no error, no bytes, connection alive — is counted as a
// laggard at the next hedge tick and raced with a replacement, so the
// decode completes from the other holders instead of waiting the
// silent stream out.
func TestProgressHedgeReplacesSilentSource(t *testing.T) {
	code := erasure.MustXOR(2) // m = 3, need = 2: first wave is blocks 0, 1
	data := make([]byte, 40_000)
	rand.New(rand.NewSource(6)).Read(data)
	sizes := PlanChunkSizes(int64(len(data)), 40_000)
	mf, cat := newMemFetch(t, code, "silent.dat", data, sizes)

	release := make(chan struct{})
	defer close(release)
	var fetched sync.Map
	par := &Codec{Code: code, FetchParallel: 4, HedgeDelay: 20 * time.Millisecond}
	par.StreamFetch = func(name string, progress func(int)) ([]byte, bool) {
		fetched.Store(name, true)
		if name == BlockName("silent.dat", 0, 0) {
			progress(512) // a head's worth of bytes, then silence
			<-release
			return nil, false
		}
		d, ok := mf.fetch(name)
		if ok {
			progress(len(d))
		}
		return d, ok
	}

	startT := time.Now()
	got, err := par.DecodeFile(context.Background(), cat, mf.fetch)
	elapsed := time.Since(startT)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal(err)
	}
	if elapsed < 20*time.Millisecond {
		t.Fatalf("decode finished in %v — the silent source was never on the critical path", elapsed)
	}
	if elapsed > time.Second {
		t.Fatalf("decode took %v; the silent source was waited out, not raced", elapsed)
	}
	if _, ok := fetched.Load(BlockName("silent.dat", 0, 2)); !ok {
		t.Fatal("replacement block was never requested — decode succeeded some other way")
	}
}

// TestProgressHedgeSparesMovingSource is the other half of the
// per-source progress contract: a source that is slow but moving —
// fresh bytes before every hedge tick — must be left alone, with no
// replacement launched, so a merely-slow cluster is not stampeded by
// redundant reads.
func TestProgressHedgeSparesMovingSource(t *testing.T) {
	code := erasure.MustXOR(2)
	data := make([]byte, 40_000)
	rand.New(rand.NewSource(7)).Read(data)
	sizes := PlanChunkSizes(int64(len(data)), 40_000)
	mf, cat := newMemFetch(t, code, "moving.dat", data, sizes)

	var launches atomic.Int64
	par := &Codec{Code: code, FetchParallel: 4, HedgeDelay: 25 * time.Millisecond}
	par.StreamFetch = func(name string, progress func(int)) ([]byte, bool) {
		launches.Add(1)
		if name == BlockName("moving.dat", 0, 0) {
			// ~150ms total — six hedge periods — but bytes trickle in
			// every 5ms, so every tick sees progress.
			for i := 0; i < 30; i++ {
				time.Sleep(5 * time.Millisecond)
				progress(256)
			}
		}
		d, ok := mf.fetch(name)
		if ok {
			progress(len(d))
		}
		return d, ok
	}

	got, err := par.DecodeFile(context.Background(), cat, mf.fetch)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal(err)
	}
	if n := launches.Load(); n != int64(code.MinNeeded()) {
		t.Fatalf("slow-but-moving source triggered %d fetches, want exactly %d — hedge fired on a live stream", n, code.MinNeeded())
	}
}

// TestParallelFetchHedgesPastStragglers makes the first-wave blocks
// pathologically slow and checks the hedge timer races replacements in
// well before the stragglers would finish.
func TestParallelFetchHedgesPastStragglers(t *testing.T) {
	code := erasure.MustRS(2, 2) // m = 4, need = 2
	data := make([]byte, 40_000)
	rand.New(rand.NewSource(5)).Read(data)
	sizes := PlanChunkSizes(int64(len(data)), 40_000)
	mf, cat := newMemFetch(t, code, "hedge.dat", data, sizes)
	// Two of the three first-wave blocks stall; decode needs two, so
	// success requires the hedge to pull in block 3.
	slow := map[string]bool{
		BlockName("hedge.dat", 0, 0): true,
		BlockName("hedge.dat", 0, 1): true,
	}
	mf.delay = func(name string) time.Duration {
		if slow[name] {
			return 2 * time.Second
		}
		return 0
	}

	par := &Codec{Code: code, FetchParallel: 4, FetchHedge: 1, HedgeDelay: 20 * time.Millisecond}
	startT := time.Now()
	got, err := par.DecodeFile(context.Background(), cat, mf.fetch)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal(err)
	}
	// need=2: one fast block arrives immediately, the hedge widens to
	// block 3 (fast) after 20ms — far under the 2s straggler stall.
	if e := time.Since(startT); e > time.Second {
		t.Fatalf("hedged decode took %v; stragglers were not raced", e)
	}
}
