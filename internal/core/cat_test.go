package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

func sampleCAT() *CAT {
	// Mirrors Figure 3: six chunks, chunk 5 empty, ~100 MB total.
	return &CAT{File: "fig3", Rows: []CATRow{
		{Start: 0, End: 5242880},
		{Start: 5242880, End: 26083328},
		{Start: 26083328, End: 52297728},
		{Start: 52297728, End: 86114304},
		{Start: 86114304, End: 86114304},
		{Start: 86114304, End: 104856576},
	}}
}

func TestCATMarshalRoundTrip(t *testing.T) {
	c := sampleCAT()
	data := c.Marshal()
	got, err := UnmarshalCAT("fig3", data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, c.Rows) {
		t.Fatalf("round trip mismatch:\n%v\n%v", got.Rows, c.Rows)
	}
}

// TestCATContentSums pins the content-sum extension: rows carrying a
// Sum round-trip through the three-field form, sum-less rows keep the
// exact legacy two-field form (so pre-sum tables and their hashes are
// untouched), and the CAT hash distinguishes same-layout tables with
// different content — the property the chunk cache and hot-promotion
// markers version by.
func TestCATContentSums(t *testing.T) {
	c := &CAT{File: "sums", Rows: []CATRow{
		{Start: 0, End: 10, Sum: ChunkSum([]byte("0123456789"))},
		{Start: 10, End: 10}, // zero-sized retry row: no sum
		{Start: 10, End: 30, Sum: ChunkSum(make([]byte, 20))},
	}}
	rt, err := UnmarshalCAT("sums", c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt.Rows, c.Rows) {
		t.Fatalf("sum round trip mismatch:\n%v\n%v", rt.Rows, c.Rows)
	}

	legacy := &CAT{File: "legacy", Rows: []CATRow{{Start: 0, End: 10}}}
	if got := string(legacy.Marshal()); got != "(1) 0,10\n" {
		t.Fatalf("sum-less marshal changed: %q", got)
	}

	other := &CAT{File: "sums", Rows: []CATRow{
		{Start: 0, End: 10, Sum: ChunkSum([]byte("9876543210"))},
		{Start: 10, End: 10},
		{Start: 10, End: 30, Sum: ChunkSum(make([]byte, 20))},
	}}
	if c.Hash() == other.Hash() {
		t.Fatal("same-layout tables with different content hash equal")
	}
	if c.Hash() != rt.Hash() {
		t.Fatal("hash not stable across marshal round trip")
	}
}

func TestCATFileSize(t *testing.T) {
	c := sampleCAT()
	if c.FileSize() != 104856576 {
		t.Fatalf("FileSize = %d", c.FileSize())
	}
	empty := &CAT{File: "e"}
	if empty.FileSize() != 0 {
		t.Fatal("empty CAT size nonzero")
	}
}

func TestCATChunksFor(t *testing.T) {
	c := sampleCAT()
	cases := []struct {
		off, length int64
		want        []int
	}{
		{0, 1, []int{0}},
		{0, 5242880, []int{0}},
		{5242879, 2, []int{0, 1}},
		{86114304, 100, []int{5}}, // skips the empty chunk 4
		{0, 104856576, []int{0, 1, 2, 3, 5}},
		{104856576, 10, nil},
		{50, 0, nil},
	}
	for _, tc := range cases {
		got := c.ChunksFor(tc.off, tc.length)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ChunksFor(%d,%d) = %v, want %v", tc.off, tc.length, got, tc.want)
		}
	}
}

func TestCATValidate(t *testing.T) {
	if err := sampleCAT().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &CAT{File: "gap", Rows: []CATRow{{Start: 0, End: 10}, {Start: 11, End: 20}}}
	if bad.Validate() == nil {
		t.Error("gap accepted")
	}
	neg := &CAT{File: "neg", Rows: []CATRow{{Start: 0, End: 10}, {Start: 10, End: 5}}}
	if neg.Validate() == nil {
		t.Error("negative extent accepted")
	}
}

func TestUnmarshalCATErrors(t *testing.T) {
	if _, err := UnmarshalCAT("x", []byte("garbage line")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalCAT("x", []byte("(2) 0,10")); err == nil {
		t.Error("out-of-order index accepted")
	}
	if _, err := UnmarshalCAT("x", []byte("(1) 5,10")); err == nil {
		t.Error("row not starting at 0 accepted")
	}
	// Empty input is a valid zero-chunk table.
	c, err := UnmarshalCAT("x", nil)
	if err != nil || c.NumChunks() != 0 {
		t.Error("empty CAT rejected")
	}
}

// Property: a contiguous tiling built from arbitrary positive sizes
// always validates, round-trips, and covers every offset exactly once.
func TestCATTilingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		c := &CAT{File: "p"}
		pos := int64(0)
		for _, s := range sizes {
			c.Rows = append(c.Rows, CATRow{Start: pos, End: pos + int64(s)})
			pos += int64(s)
		}
		if c.Validate() != nil {
			return false
		}
		rt, err := UnmarshalCAT("p", c.Marshal())
		if err != nil || !reflect.DeepEqual(rt.Rows, c.Rows) {
			return false
		}
		// Any in-range offset lands in exactly one non-empty chunk.
		if pos > 0 {
			mid := pos / 2
			chunks := c.ChunksFor(mid, 1)
			if len(chunks) != 1 {
				return false
			}
			r := c.Rows[chunks[0]]
			if mid < r.Start || mid >= r.End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCATSizeBytes(t *testing.T) {
	c := sampleCAT()
	if c.SizeBytes() != int64(len(c.Marshal())) {
		t.Fatal("SizeBytes disagrees with Marshal")
	}
}
