package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

func sampleCAT() *CAT {
	// Mirrors Figure 3: six chunks, chunk 5 empty, ~100 MB total.
	return &CAT{File: "fig3", Rows: []CATRow{
		{0, 5242880},
		{5242880, 26083328},
		{26083328, 52297728},
		{52297728, 86114304},
		{86114304, 86114304},
		{86114304, 104856576},
	}}
}

func TestCATMarshalRoundTrip(t *testing.T) {
	c := sampleCAT()
	data := c.Marshal()
	got, err := UnmarshalCAT("fig3", data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, c.Rows) {
		t.Fatalf("round trip mismatch:\n%v\n%v", got.Rows, c.Rows)
	}
}

func TestCATFileSize(t *testing.T) {
	c := sampleCAT()
	if c.FileSize() != 104856576 {
		t.Fatalf("FileSize = %d", c.FileSize())
	}
	empty := &CAT{File: "e"}
	if empty.FileSize() != 0 {
		t.Fatal("empty CAT size nonzero")
	}
}

func TestCATChunksFor(t *testing.T) {
	c := sampleCAT()
	cases := []struct {
		off, length int64
		want        []int
	}{
		{0, 1, []int{0}},
		{0, 5242880, []int{0}},
		{5242879, 2, []int{0, 1}},
		{86114304, 100, []int{5}}, // skips the empty chunk 4
		{0, 104856576, []int{0, 1, 2, 3, 5}},
		{104856576, 10, nil},
		{50, 0, nil},
	}
	for _, tc := range cases {
		got := c.ChunksFor(tc.off, tc.length)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ChunksFor(%d,%d) = %v, want %v", tc.off, tc.length, got, tc.want)
		}
	}
}

func TestCATValidate(t *testing.T) {
	if err := sampleCAT().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &CAT{File: "gap", Rows: []CATRow{{0, 10}, {11, 20}}}
	if bad.Validate() == nil {
		t.Error("gap accepted")
	}
	neg := &CAT{File: "neg", Rows: []CATRow{{0, 10}, {10, 5}}}
	if neg.Validate() == nil {
		t.Error("negative extent accepted")
	}
}

func TestUnmarshalCATErrors(t *testing.T) {
	if _, err := UnmarshalCAT("x", []byte("garbage line")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalCAT("x", []byte("(2) 0,10")); err == nil {
		t.Error("out-of-order index accepted")
	}
	if _, err := UnmarshalCAT("x", []byte("(1) 5,10")); err == nil {
		t.Error("row not starting at 0 accepted")
	}
	// Empty input is a valid zero-chunk table.
	c, err := UnmarshalCAT("x", nil)
	if err != nil || c.NumChunks() != 0 {
		t.Error("empty CAT rejected")
	}
}

// Property: a contiguous tiling built from arbitrary positive sizes
// always validates, round-trips, and covers every offset exactly once.
func TestCATTilingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		c := &CAT{File: "p"}
		pos := int64(0)
		for _, s := range sizes {
			c.Rows = append(c.Rows, CATRow{Start: pos, End: pos + int64(s)})
			pos += int64(s)
		}
		if c.Validate() != nil {
			return false
		}
		rt, err := UnmarshalCAT("p", c.Marshal())
		if err != nil || !reflect.DeepEqual(rt.Rows, c.Rows) {
			return false
		}
		// Any in-range offset lands in exactly one non-empty chunk.
		if pos > 0 {
			mid := pos / 2
			chunks := c.ChunksFor(mid, 1)
			if len(chunks) != 1 {
				return false
			}
			r := c.Rows[chunks[0]]
			if mid < r.Start || mid >= r.End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCATSizeBytes(t *testing.T) {
	c := sampleCAT()
	if c.SizeBytes() != int64(len(c.Marshal())) {
		t.Fatal("SizeBytes disagrees with Marshal")
	}
}
