package core

import (
	"testing"

	"peerstripe/internal/erasure"
	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

func TestStoreZeroSizeFile(t *testing.T) {
	s := newStore(t, 40, caps(10, trace.GB), DefaultConfig())
	res := s.StoreFile("empty", 0)
	if !res.OK {
		t.Fatalf("zero-size store failed: %v", res.Err)
	}
	if res.Chunks != 0 {
		t.Fatalf("zero-size file has %d chunks", res.Chunks)
	}
	cat, ok := s.CAT("empty")
	if !ok || cat.FileSize() != 0 {
		t.Fatal("zero-size CAT wrong")
	}
	// Retrieval of nothing succeeds trivially.
	st, err := s.Retrieve("empty", 0, 0)
	if err != nil || st.Chunks != 0 {
		t.Fatalf("zero-size retrieve: %+v, %v", st, err)
	}
}

func TestRetrieveBeyondEOFTouchesNothing(t *testing.T) {
	s := newStore(t, 41, caps(20, trace.GB), DefaultConfig())
	if res := s.StoreFile("f", 100*trace.MB); !res.OK {
		t.Fatal(res.Err)
	}
	st, err := s.Retrieve("f", 200*trace.MB, 10)
	if err != nil {
		t.Fatalf("out-of-range retrieve errored: %v", err)
	}
	if st.Chunks != 0 || st.BlockFetches != 0 {
		t.Fatalf("out-of-range retrieve touched chunks: %+v", st)
	}
}

func TestFailNodeWithoutBlocks(t *testing.T) {
	s := newStore(t, 42, caps(30, trace.GB), DefaultConfig())
	// Find a node with no blocks (pool is empty, so any node).
	id := s.Pool.Net.Nodes()[0].ID
	rep, err := s.FailNode(id, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksLost != 0 || rep.BytesRegenerated != 0 {
		t.Fatalf("empty node failure produced work: %+v", rep)
	}
}

func TestFailUnknownNodeErrors(t *testing.T) {
	s := newStore(t, 43, caps(5, trace.GB), DefaultConfig())
	id := s.Pool.Net.Nodes()[0].ID
	if _, err := s.FailNode(id, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FailNode(id, false); err == nil {
		t.Fatal("double failure accepted")
	}
}

func TestLossOfForeignBlocksIgnored(t *testing.T) {
	// Blocks not belonging to any indexed file (e.g. from another
	// store instance) must not corrupt accounting.
	s := newStore(t, 44, caps(30, trace.GB), DefaultConfig())
	n := s.Pool.StoreBlock("alien_7_1", 5*trace.MB)
	if n == nil {
		t.Fatal("alien store failed")
	}
	rep, err := s.FailNode(n.Overlay.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesLost != 0 || rep.BlocksRegenerated != 0 {
		t.Fatalf("alien block affected the store: %+v", rep)
	}
}

func TestRawBytesMatchesPoolUsage(t *testing.T) {
	for _, spec := range []erasure.Spec{erasure.NullSpec, erasure.XOR23Spec, erasure.OnlineSimSpec} {
		cfg := DefaultConfig()
		cfg.Spec = spec
		s := newStore(t, 45, caps(60, 2*trace.GB), cfg)
		var raw int64
		g := trace.NewGen(46)
		for _, f := range g.Files(30) {
			if res := s.StoreFile(f.Name, f.Size); res.OK {
				raw += res.RawBytes
			}
		}
		if raw != s.Pool.TotalUsed {
			t.Fatalf("%s: RawBytes sum %d != pool TotalUsed %d", spec.Name, raw, s.Pool.TotalUsed)
		}
	}
}

func TestRetrieveStatsScaleWithCoding(t *testing.T) {
	// MinNeeded block fetches per chunk: XOR(2,3) fetches 2 blocks per
	// chunk; no coding fetches 1.
	base := newStore(t, 47, caps(40, 2*trace.GB), DefaultConfig())
	coded := func() *Store {
		cfg := DefaultConfig()
		cfg.Spec = erasure.XOR23Spec
		return newStore(t, 47, caps(40, 2*trace.GB), cfg)
	}()
	if res := base.StoreFile("f", trace.GB); !res.OK {
		t.Fatal(res.Err)
	}
	if res := coded.StoreFile("f", trace.GB); !res.OK {
		t.Fatal(res.Err)
	}
	a, err := base.Retrieve("f", 0, trace.GB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := coded.Retrieve("f", 0, trace.GB)
	if err != nil {
		t.Fatal(err)
	}
	if b.BlockFetches != 2*a.BlockFetches*b.Chunks/a.Chunks/1 && b.BlockFetches < a.BlockFetches {
		t.Fatalf("coded fetches %d not above uncoded %d", b.BlockFetches, a.BlockFetches)
	}
	if perChunkA, perChunkB := a.BlockFetches/a.Chunks, b.BlockFetches/b.Chunks; perChunkA != 1 || perChunkB != 2 {
		t.Fatalf("fetches per chunk: %d and %d, want 1 and 2", perChunkA, perChunkB)
	}
}

func TestDeleteFileReleasesEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.XOR23Spec
	s := newStore(t, 49, caps(50, 2*trace.GB), cfg)
	res := s.StoreFile("del", 3*trace.GB)
	if !res.OK {
		t.Fatal(res.Err)
	}
	usedBefore := s.Pool.TotalUsed
	released, err := s.DeleteFile("del")
	if err != nil {
		t.Fatal(err)
	}
	if released != res.RawBytes {
		t.Fatalf("released %d, stored raw %d", released, res.RawBytes)
	}
	if s.Pool.TotalUsed != usedBefore-released {
		t.Fatal("pool accounting inconsistent after delete")
	}
	if s.Pool.TotalUsed != 0 {
		t.Fatalf("pool still holds %d bytes", s.Pool.TotalUsed)
	}
	if s.NumFiles() != 0 || s.Available("del") {
		t.Fatal("file still indexed after delete")
	}
	if _, err := s.DeleteFile("del"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestDeleteFileAfterRatelessRepair(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.OnlineSimSpec
	cfg.Rateless = true
	s := newStore(t, 50, caps(60, 2*trace.GB), cfg)
	if res := s.StoreFile("rr", 2*trace.GB); !res.OK {
		t.Fatal(res.Err)
	}
	// Cause a repair so fresh-named blocks exist.
	var victim = s.Pool.Net.Nodes()[0].ID
	for _, on := range s.Pool.Net.Nodes() {
		if sn, ok := s.Pool.Node(on.ID); ok && len(sn.Blocks) > 0 {
			victim = on.ID
			break
		}
	}
	if _, err := s.FailNode(victim, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteFile("rr"); err != nil {
		t.Fatal(err)
	}
	// Nothing of the file may remain anywhere.
	s.Pool.Nodes(func(n *sim.StoreNode) {
		for name := range n.Blocks {
			if f, _, _, ok := ParseBlockName(name); ok && f == "rr" {
				t.Fatalf("leftover block %s", name)
			}
			if f, _, ok := IsCATName(name); ok && f == "rr" {
				t.Fatalf("leftover CAT %s", name)
			}
		}
	})
}

func TestChurnSimDrainIdempotent(t *testing.T) {
	s := newStore(t, 48, caps(20, trace.GB), DefaultConfig())
	cs := NewChurnSim(s, 1e9, 1.0)
	cs.Drain()
	cs.Drain()
	if cs.Backlog() != 0 {
		t.Fatal("drain on empty queue broke state")
	}
}
