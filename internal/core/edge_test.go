package core

import (
	"fmt"
	"testing"

	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

func TestStoreZeroSizeFile(t *testing.T) {
	s := newStore(t, 40, caps(10, trace.GB), DefaultConfig())
	res := s.StoreFile("empty", 0)
	if !res.OK {
		t.Fatalf("zero-size store failed: %v", res.Err)
	}
	if res.Chunks != 0 {
		t.Fatalf("zero-size file has %d chunks", res.Chunks)
	}
	cat, ok := s.CAT("empty")
	if !ok || cat.FileSize() != 0 {
		t.Fatal("zero-size CAT wrong")
	}
	// Retrieval of nothing succeeds trivially.
	st, err := s.Retrieve("empty", 0, 0)
	if err != nil || st.Chunks != 0 {
		t.Fatalf("zero-size retrieve: %+v, %v", st, err)
	}
}

func TestRetrieveBeyondEOFTouchesNothing(t *testing.T) {
	s := newStore(t, 41, caps(20, trace.GB), DefaultConfig())
	if res := s.StoreFile("f", 100*trace.MB); !res.OK {
		t.Fatal(res.Err)
	}
	st, err := s.Retrieve("f", 200*trace.MB, 10)
	if err != nil {
		t.Fatalf("out-of-range retrieve errored: %v", err)
	}
	if st.Chunks != 0 || st.BlockFetches != 0 {
		t.Fatalf("out-of-range retrieve touched chunks: %+v", st)
	}
}

func TestFailNodeWithoutBlocks(t *testing.T) {
	s := newStore(t, 42, caps(30, trace.GB), DefaultConfig())
	// Find a node with no blocks (pool is empty, so any node).
	id := s.Pool.Net.Nodes()[0].ID
	rep, err := s.FailNode(id, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksLost != 0 || rep.BytesRegenerated != 0 {
		t.Fatalf("empty node failure produced work: %+v", rep)
	}
}

func TestFailUnknownNodeErrors(t *testing.T) {
	s := newStore(t, 43, caps(5, trace.GB), DefaultConfig())
	if _, err := s.FailNode(ids.FromName("never-joined"), false); err == nil {
		t.Fatal("failure of a node that never existed accepted")
	}
}

// TestFailNodeRepeatIsIdempotent: churn schedules (and the live repair
// daemon the simulator models) can deliver the same death twice. The
// first FailNode accounts the loss; the repeat must be a no-op with a
// zero FailureReport, not an error and not double accounting.
func TestFailNodeRepeatIsIdempotent(t *testing.T) {
	s := newStore(t, 43, caps(8, trace.GB), DefaultConfig())
	if res := s.StoreFile("repeat.dat", 20*trace.MB); !res.OK {
		t.Fatal(res.Err)
	}
	// Fail a node that holds at least one block, so the repeat has
	// something it could double-count.
	var victim ids.ID
	s.Pool.Nodes(func(n *sim.StoreNode) {
		if len(n.Blocks) > 0 {
			victim = n.Overlay.ID
		}
	})
	first, err := s.FailNode(victim, true)
	if err != nil {
		t.Fatal(err)
	}
	if first.BlocksLost == 0 {
		t.Fatal("victim selection found no blocks")
	}
	lostBefore, rawBefore := s.FilesLost, s.BytesLostRaw
	again, err := s.FailNode(victim, true)
	if err != nil {
		t.Fatalf("repeated failure errored: %v", err)
	}
	if again != (FailureReport{}) {
		t.Fatalf("repeated failure re-accounted: %+v", again)
	}
	if s.FilesLost != lostBefore || s.BytesLostRaw != rawBefore {
		t.Fatal("repeated failure moved aggregate accounting")
	}
}

// TestFailNodeCascadeCATAndChunkLoss pins the combined cascade: the
// failed node holds both a CAT replica of a file and the file's only
// copy of a chunk's data (NullSpec: one block per chunk, so its loss
// drops the chunk below the decode threshold). The chunk loss must be
// accounted (unrecoverable chunk, file lost, retrieval refused) while
// the CAT replica is still re-created on a survivor — metadata healing
// and data-loss accounting never block each other.
func TestFailNodeCascadeCATAndChunkLoss(t *testing.T) {
	s := newStore(t, 47, caps(6, trace.GB), DefaultConfig())
	holderOf := func(name string) (id ids.ID, found bool) {
		s.Pool.Nodes(func(n *sim.StoreNode) {
			if _, ok := n.Blocks[name]; ok {
				id, found = n.Overlay.ID, true
			}
		})
		return id, found
	}
	var file string
	var victim ids.ID
	for i := 0; i < 256 && file == ""; i++ {
		name := fmt.Sprintf("cascade-%d.dat", i)
		res := s.StoreFile(name, 10*trace.MB)
		if !res.OK || res.Chunks != 1 {
			continue
		}
		blockHolder, ok := holderOf(BlockName(name, 0, 0))
		if !ok {
			t.Fatalf("stored block of %s not found in pool", name)
		}
		for r := 0; r <= s.Cfg.CATReplicas; r++ {
			if h, ok := holderOf(ReplicaName(CATName(name), r)); ok && h == blockHolder {
				file, victim = name, blockHolder
				break
			}
		}
	}
	if file == "" {
		t.Fatal("no file whose chunk block and CAT replica collide — placement changed?")
	}

	rep, err := s.FailNode(victim, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksUnrecoverable == 0 || rep.FilesLost == 0 {
		t.Fatalf("chunk below threshold not accounted: %+v", rep)
	}
	if rep.CATReplicasLost == 0 {
		t.Fatalf("CAT replica loss not accounted: %+v", rep)
	}
	if rep.CATReplicasRecreated == 0 {
		t.Fatalf("CAT replica not re-created despite surviving space: %+v", rep)
	}
	if _, err := s.Retrieve(file, 0, 10*trace.MB); err == nil {
		t.Fatal("retrieval of a file with an unrecoverable chunk succeeded")
	}
}

func TestLossOfForeignBlocksIgnored(t *testing.T) {
	// Blocks not belonging to any indexed file (e.g. from another
	// store instance) must not corrupt accounting.
	s := newStore(t, 44, caps(30, trace.GB), DefaultConfig())
	n := s.Pool.StoreBlock("alien_7_1", 5*trace.MB)
	if n == nil {
		t.Fatal("alien store failed")
	}
	rep, err := s.FailNode(n.Overlay.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesLost != 0 || rep.BlocksRegenerated != 0 {
		t.Fatalf("alien block affected the store: %+v", rep)
	}
}

func TestRawBytesMatchesPoolUsage(t *testing.T) {
	for _, spec := range []erasure.Spec{erasure.NullSpec, erasure.XOR23Spec, erasure.OnlineSimSpec} {
		cfg := DefaultConfig()
		cfg.Spec = spec
		s := newStore(t, 45, caps(60, 2*trace.GB), cfg)
		var raw int64
		g := trace.NewGen(46)
		for _, f := range g.Files(30) {
			if res := s.StoreFile(f.Name, f.Size); res.OK {
				raw += res.RawBytes
			}
		}
		if raw != s.Pool.TotalUsed {
			t.Fatalf("%s: RawBytes sum %d != pool TotalUsed %d", spec.Name, raw, s.Pool.TotalUsed)
		}
	}
}

func TestRetrieveStatsScaleWithCoding(t *testing.T) {
	// MinNeeded block fetches per chunk: XOR(2,3) fetches 2 blocks per
	// chunk; no coding fetches 1.
	base := newStore(t, 47, caps(40, 2*trace.GB), DefaultConfig())
	coded := func() *Store {
		cfg := DefaultConfig()
		cfg.Spec = erasure.XOR23Spec
		return newStore(t, 47, caps(40, 2*trace.GB), cfg)
	}()
	if res := base.StoreFile("f", trace.GB); !res.OK {
		t.Fatal(res.Err)
	}
	if res := coded.StoreFile("f", trace.GB); !res.OK {
		t.Fatal(res.Err)
	}
	a, err := base.Retrieve("f", 0, trace.GB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := coded.Retrieve("f", 0, trace.GB)
	if err != nil {
		t.Fatal(err)
	}
	if b.BlockFetches != 2*a.BlockFetches*b.Chunks/a.Chunks/1 && b.BlockFetches < a.BlockFetches {
		t.Fatalf("coded fetches %d not above uncoded %d", b.BlockFetches, a.BlockFetches)
	}
	if perChunkA, perChunkB := a.BlockFetches/a.Chunks, b.BlockFetches/b.Chunks; perChunkA != 1 || perChunkB != 2 {
		t.Fatalf("fetches per chunk: %d and %d, want 1 and 2", perChunkA, perChunkB)
	}
}

func TestDeleteFileReleasesEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.XOR23Spec
	s := newStore(t, 49, caps(50, 2*trace.GB), cfg)
	res := s.StoreFile("del", 3*trace.GB)
	if !res.OK {
		t.Fatal(res.Err)
	}
	usedBefore := s.Pool.TotalUsed
	released, err := s.DeleteFile("del")
	if err != nil {
		t.Fatal(err)
	}
	if released != res.RawBytes {
		t.Fatalf("released %d, stored raw %d", released, res.RawBytes)
	}
	if s.Pool.TotalUsed != usedBefore-released {
		t.Fatal("pool accounting inconsistent after delete")
	}
	if s.Pool.TotalUsed != 0 {
		t.Fatalf("pool still holds %d bytes", s.Pool.TotalUsed)
	}
	if s.NumFiles() != 0 || s.Available("del") {
		t.Fatal("file still indexed after delete")
	}
	if _, err := s.DeleteFile("del"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestDeleteFileAfterRatelessRepair(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.OnlineSimSpec
	cfg.Rateless = true
	s := newStore(t, 50, caps(60, 2*trace.GB), cfg)
	if res := s.StoreFile("rr", 2*trace.GB); !res.OK {
		t.Fatal(res.Err)
	}
	// Cause a repair so fresh-named blocks exist.
	var victim = s.Pool.Net.Nodes()[0].ID
	for _, on := range s.Pool.Net.Nodes() {
		if sn, ok := s.Pool.Node(on.ID); ok && len(sn.Blocks) > 0 {
			victim = on.ID
			break
		}
	}
	if _, err := s.FailNode(victim, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteFile("rr"); err != nil {
		t.Fatal(err)
	}
	// Nothing of the file may remain anywhere.
	s.Pool.Nodes(func(n *sim.StoreNode) {
		for name := range n.Blocks {
			if f, _, _, ok := ParseBlockName(name); ok && f == "rr" {
				t.Fatalf("leftover block %s", name)
			}
			if f, _, ok := IsCATName(name); ok && f == "rr" {
				t.Fatalf("leftover CAT %s", name)
			}
		}
	})
}

func TestChurnSimDrainIdempotent(t *testing.T) {
	s := newStore(t, 48, caps(20, trace.GB), DefaultConfig())
	cs := NewChurnSim(s, 1e9, 1.0)
	cs.Drain()
	cs.Drain()
	if cs.Backlog() != 0 {
		t.Fatal("drain on empty queue broke state")
	}
}
