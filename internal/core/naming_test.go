package core

import (
	"testing"
	"testing/quick"
)

func TestBlockNameRoundTrip(t *testing.T) {
	cases := []struct {
		file       string
		chunk, ecb int
	}{
		{"testImageFile", 2, 0},
		{"file_with_underscores", 0, 7},
		{"a", 123, 456},
		{"weather_2007_05_01.dat", 9, 1},
	}
	for _, c := range cases {
		name := BlockName(c.file, c.chunk, c.ecb)
		f, ch, e, ok := ParseBlockName(name)
		if !ok || f != c.file || ch != c.chunk || e != c.ecb {
			t.Errorf("ParseBlockName(%q) = (%q,%d,%d,%v)", name, f, ch, e, ok)
		}
	}
}

func TestParseBlockNameRejects(t *testing.T) {
	for _, bad := range []string{"", "plain", "file_x", "file_1_x", "file_-1_2", "_1_2"} {
		if _, _, _, ok := ParseBlockName(bad); ok {
			t.Errorf("ParseBlockName(%q) accepted", bad)
		}
	}
}

// Property: round trip holds for arbitrary file names that do not
// themselves end in the reserved numeric-suffix pattern ambiguity.
func TestBlockNameRoundTripProperty(t *testing.T) {
	f := func(file string, chunk, ecb uint16) bool {
		if file == "" {
			return true
		}
		name := BlockName(file, int(chunk), int(ecb))
		got, ch, e, ok := ParseBlockName(name)
		return ok && got == file && ch == int(chunk) && e == int(ecb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestChunkName(t *testing.T) {
	if got := ChunkName("testImageFile", 2); got != "testImageFile_2" {
		t.Errorf("ChunkName = %q", got)
	}
}

func TestCATName(t *testing.T) {
	name := CATName("myTestFile")
	if name != "myTestFile.CAT" {
		t.Errorf("CATName = %q", name)
	}
	file, replica, ok := IsCATName(name)
	if !ok || file != "myTestFile" || replica != 0 {
		t.Errorf("IsCATName(%q) = (%q,%d,%v)", name, file, replica, ok)
	}
}

func TestReplicaNames(t *testing.T) {
	if ReplicaName("x.CAT", 0) != "x.CAT" {
		t.Error("replica 0 should be the primary name")
	}
	rn := ReplicaName("x.CAT", 2)
	file, replica, ok := IsCATName(rn)
	if !ok || file != "x" || replica != 2 {
		t.Errorf("IsCATName(%q) = (%q,%d,%v)", rn, file, replica, ok)
	}
}

func TestIsCATNameRejects(t *testing.T) {
	if _, _, ok := IsCATName("file_1_2"); ok {
		t.Error("block name accepted as CAT")
	}
	if _, _, ok := IsCATName("noSuffix"); ok {
		t.Error("plain name accepted as CAT")
	}
}
