package core

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"peerstripe/internal/erasure"
)

func randData(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// blockMap builds a fetch function over encoded blocks, with optional
// dropped names.
func blockMap(blocks []NamedBlock, drop ...string) FetchFunc {
	m := make(map[string][]byte, len(blocks))
	for _, b := range blocks {
		m[b.Name] = b.Data
	}
	for _, d := range drop {
		delete(m, d)
	}
	return func(name string) ([]byte, bool) {
		d, ok := m[name]
		return d, ok
	}
}

func TestCodecRoundTripNull(t *testing.T) {
	cd := &Codec{Code: erasure.NewNull()}
	data := randData(1, 1<<16)
	sizes := PlanChunkSizes(int64(len(data)), 10000)
	blocks, cat, err := cd.EncodeFile(context.Background(), "f", data, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := cd.DecodeFile(context.Background(), cat, blockMap(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("null codec round trip mismatch")
	}
}

func TestCodecRoundTripXOR(t *testing.T) {
	cd := &Codec{Code: erasure.MustXOR(2)}
	data := randData(2, 123457)
	sizes := PlanChunkSizes(int64(len(data)), 30000)
	blocks, cat, err := cd.EncodeFile(context.Background(), "x", data, sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one block of chunk 0 — XOR tolerates it.
	got, err := cd.DecodeFile(context.Background(), cat, blockMap(blocks, BlockName("x", 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("xor codec lossy round trip mismatch")
	}
}

func TestCodecRoundTripOnline(t *testing.T) {
	cd := &Codec{Code: erasure.MustOnline(64, erasure.OnlineOpts{Eps: 0.2, Surplus: 0.25})}
	data := randData(3, 200000)
	sizes := PlanChunkSizes(int64(len(data)), 70000)
	blocks, cat, err := cd.EncodeFile(context.Background(), "o", data, sizes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cd.DecodeFile(context.Background(), cat, blockMap(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("online codec round trip mismatch")
	}
}

func TestCodecRange(t *testing.T) {
	cd := &Codec{Code: erasure.MustXOR(2)}
	data := randData(4, 100000)
	sizes := PlanChunkSizes(int64(len(data)), 9999)
	blocks, cat, err := cd.EncodeFile(context.Background(), "r", data, sizes)
	if err != nil {
		t.Fatal(err)
	}
	fetch := blockMap(blocks)
	for _, rg := range []struct{ off, n int64 }{
		{0, 1}, {0, 9999}, {9998, 2}, {50000, 25000}, {99999, 1}, {0, 100000},
	} {
		got, err := cd.DecodeRange(context.Background(), cat, rg.off, rg.n, fetch)
		if err != nil {
			t.Fatalf("range (%d,%d): %v", rg.off, rg.n, err)
		}
		if !bytes.Equal(got, data[rg.off:rg.off+rg.n]) {
			t.Fatalf("range (%d,%d) mismatch", rg.off, rg.n)
		}
	}
}

// TestCodecParallelDeterministic checks that the worker-pool fan-out
// yields byte-identical block lists and decodes regardless of the
// worker count.
func TestCodecParallelDeterministic(t *testing.T) {
	data := randData(11, 300000)
	sizes := PlanChunkSizes(int64(len(data)), 20000) // 15 chunks
	var refBlocks []NamedBlock
	for _, workers := range []int{1, 2, 4, 0} {
		cd := &Codec{Code: erasure.MustXOR(2), Workers: workers}
		blocks, cat, err := cd.EncodeFile(context.Background(), "p", data, sizes)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if refBlocks == nil {
			refBlocks = blocks
		} else {
			if len(blocks) != len(refBlocks) {
				t.Fatalf("workers=%d: %d blocks, want %d", workers, len(blocks), len(refBlocks))
			}
			for i := range blocks {
				if blocks[i].Name != refBlocks[i].Name || !bytes.Equal(blocks[i].Data, refBlocks[i].Data) {
					t.Fatalf("workers=%d: block %d differs from serial encode", workers, i)
				}
			}
		}
		got, err := cd.DecodeFile(context.Background(), cat, blockMap(blocks))
		if err != nil {
			t.Fatalf("workers=%d decode: %v", workers, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("workers=%d: parallel round trip mismatch", workers)
		}
	}
}

// TestCodecParallelPropagatesErrors checks a failed chunk surfaces from
// the concurrent decode path.
func TestCodecParallelPropagatesErrors(t *testing.T) {
	cd := &Codec{Code: erasure.NewNull(), Workers: 4}
	data := randData(12, 50000)
	blocks, cat, err := cd.EncodeFile(context.Background(), "pe", data, PlanChunkSizes(50000, 5000))
	if err != nil {
		t.Fatal(err)
	}
	fetch := blockMap(blocks, BlockName("pe", 7, 0))
	if _, err := cd.DecodeFile(context.Background(), cat, fetch); err == nil {
		t.Fatal("parallel decode succeeded with a chunk missing")
	}
}

func TestCodecDecodeChunk(t *testing.T) {
	cd := &Codec{Code: erasure.MustXOR(2)}
	data := randData(13, 40000)
	blocks, cat, err := cd.EncodeFile(context.Background(), "dc", data, PlanChunkSizes(40000, 9000))
	if err != nil {
		t.Fatal(err)
	}
	fetch := blockMap(blocks)
	chunk, err := cd.DecodeChunk(context.Background(), cat, 1, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chunk, data[9000:18000]) {
		t.Fatal("DecodeChunk mismatch")
	}
	if _, err := cd.DecodeChunk(context.Background(), cat, -1, fetch); err == nil {
		t.Error("negative chunk index accepted")
	}
	if _, err := cd.DecodeChunk(context.Background(), cat, cat.NumChunks(), fetch); err == nil {
		t.Error("out-of-range chunk index accepted")
	}
}

func TestCodecRangeOutOfBounds(t *testing.T) {
	cd := &Codec{Code: erasure.NewNull()}
	data := randData(5, 100)
	blocks, cat, _ := cd.EncodeFile(context.Background(), "b", data, PlanChunkSizes(100, 50))
	fetch := blockMap(blocks)
	if _, err := cd.DecodeRange(context.Background(), cat, 90, 20, fetch); err == nil {
		t.Error("range past EOF accepted")
	}
	if _, err := cd.DecodeRange(context.Background(), cat, -1, 5, fetch); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestCodecMissingBlocksFail(t *testing.T) {
	cd := &Codec{Code: erasure.NewNull()}
	data := randData(6, 5000)
	blocks, cat, _ := cd.EncodeFile(context.Background(), "m", data, PlanChunkSizes(5000, 1000))
	// Drop chunk 2 entirely.
	fetch := blockMap(blocks, BlockName("m", 2, 0))
	if _, err := cd.DecodeFile(context.Background(), cat, fetch); err == nil {
		t.Fatal("decode succeeded with a chunk missing")
	}
	// But a range not touching chunk 2 still works.
	got, err := cd.DecodeRange(context.Background(), cat, 0, 1000, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:1000]) {
		t.Fatal("range decode mismatch")
	}
}

func TestCodecZeroChunkRows(t *testing.T) {
	cd := &Codec{Code: erasure.NewNull()}
	data := randData(7, 300)
	// Simulate a zero-sized chunk between two real ones (§4.3 retries).
	blocks, cat, err := cd.EncodeFile(context.Background(), "z", data, []int64{200, 0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumChunks() != 3 || !cat.Rows[1].Empty() {
		t.Fatalf("CAT rows wrong: %+v", cat.Rows)
	}
	got, err := cd.DecodeFile(context.Background(), cat, blockMap(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("zero-chunk round trip mismatch")
	}
}

func TestCodecEncodeErrors(t *testing.T) {
	cd := &Codec{Code: erasure.NewNull()}
	if _, _, err := cd.EncodeFile(context.Background(), "e", []byte("abc"), []int64{2}); err == nil {
		t.Error("under-covering chunk sizes accepted")
	}
	if _, _, err := cd.EncodeFile(context.Background(), "e", []byte("abc"), []int64{5}); err == nil {
		t.Error("over-covering chunk sizes accepted")
	}
	if _, _, err := cd.EncodeFile(context.Background(), "e", []byte("abc"), []int64{-1, 4}); err == nil {
		t.Error("negative chunk size accepted")
	}
}

// TestCodeFor checks the name-based code factory the CLIs use,
// including the online check-schedule knob.
func TestCodeFor(t *testing.T) {
	for name, wantN := range map[string]int{"null": 1, "xor": 2, "online": 64, "rs": 8} {
		c, err := CodeFor(name, "")
		if err != nil {
			t.Fatalf("CodeFor(%q): %v", name, err)
		}
		if c.DataBlocks() != wantN {
			t.Errorf("CodeFor(%q): n = %d, want %d", name, c.DataBlocks(), wantN)
		}
	}
	// The empty schedule selects the banded25x4 default; uniform (the
	// pre-banded default) stays reachable by its explicit name.
	dflt, err := CodeFor("online", "")
	if err != nil {
		t.Fatalf("online default: %v", err)
	}
	if got := dflt.(*erasure.Online).ScheduleName(); got != "banded25x4" {
		t.Errorf("default schedule = %q, want banded25x4", got)
	}
	uni, err := CodeFor("online", "uniform")
	if err != nil {
		t.Fatalf("online uniform: %v", err)
	}
	if got := uni.(*erasure.Online).ScheduleName(); got != "uniform" {
		t.Errorf("explicit uniform schedule = %q", got)
	}
	on, err := CodeFor("online", "windowed")
	if err != nil {
		t.Fatalf("online windowed: %v", err)
	}
	if got := on.(*erasure.Online).ScheduleName(); got != "windowed12" {
		t.Errorf("schedule = %q, want windowed12", got)
	}
	// A schedule round-trips through the real data path.
	cd := &Codec{Code: on}
	data := randData(11, 3000)
	blocks, cat, err := cd.EncodeFile(context.Background(), "s", data, []int64{2000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cd.DecodeFile(context.Background(), cat, blockMap(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("windowed-schedule file round trip mismatch")
	}
	if _, err := CodeFor("xor", "windowed"); err == nil {
		t.Error("schedule accepted for a code without the knob")
	}
	if _, err := CodeFor("online", "bogus"); err == nil {
		t.Error("bogus schedule accepted")
	}
	if _, err := CodeFor("lrc", ""); err == nil {
		t.Error("unknown code accepted")
	}
	// An unknown code reports "unknown code" even when a schedule is
	// also set — the code-name diagnostic must win.
	if _, err := CodeFor("lrc", "windowed"); err == nil || !strings.Contains(err.Error(), "unknown erasure code") {
		t.Errorf("unknown code with schedule: %v", err)
	}
}
