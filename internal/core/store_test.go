package core

import (
	"errors"
	"testing"

	"peerstripe/internal/erasure"
	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

func caps(n int, each int64) []int64 {
	cs := make([]int64, n)
	for i := range cs {
		cs[i] = each
	}
	return cs
}

func newStore(t testing.TB, seed int64, nodeCaps []int64, cfg Config) *Store {
	t.Helper()
	return NewStore(sim.NewPool(seed, nodeCaps), cfg)
}

func TestStoreFileBasic(t *testing.T) {
	s := newStore(t, 1, caps(100, 10*trace.GB), DefaultConfig())
	res := s.StoreFile("bigfile", 30*trace.GB)
	if !res.OK {
		t.Fatalf("store failed: %v", res.Err)
	}
	if res.Chunks < 3 {
		t.Fatalf("30 GB across 10 GB nodes needs >= 3 chunks, got %d", res.Chunks)
	}
	if res.LogicalBytes != 30*trace.GB {
		t.Fatalf("LogicalBytes = %d", res.LogicalBytes)
	}
	cat, ok := s.CAT("bigfile")
	if !ok {
		t.Fatal("CAT missing")
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	if cat.FileSize() != 30*trace.GB {
		t.Fatalf("CAT records %d bytes", cat.FileSize())
	}
	if !s.Available("bigfile") {
		t.Fatal("stored file not available")
	}
}

func TestStoreFileLargerThanAnyNode(t *testing.T) {
	// The headline capability (§4.1): a file bigger than every
	// individual node still stores.
	s := newStore(t, 2, caps(50, 2*trace.GB), DefaultConfig())
	res := s.StoreFile("huge", 20*trace.GB)
	if !res.OK {
		t.Fatalf("store failed: %v", res.Err)
	}
	var maxChunk int64
	for _, c := range res.ChunkSizes {
		if c > maxChunk {
			maxChunk = c
		}
	}
	if maxChunk > 2*trace.GB {
		t.Fatalf("chunk of %d exceeds node capacity", maxChunk)
	}
}

func TestChunkSizesTrackCapacity(t *testing.T) {
	s := newStore(t, 3, caps(20, 5*trace.GB), DefaultConfig())
	res := s.StoreFile("f", 8*trace.GB)
	if !res.OK {
		t.Fatal(res.Err)
	}
	// First chunk should take (close to) a full node's advertised
	// capacity under the whole-capacity reporting policy.
	if res.ChunkSizes[0] < 4*trace.GB {
		t.Fatalf("first chunk only %d bytes with 5 GB free nodes", res.ChunkSizes[0])
	}
}

func TestStoreDuplicateRejected(t *testing.T) {
	s := newStore(t, 4, caps(10, trace.GB), DefaultConfig())
	if res := s.StoreFile("dup", 100*trace.MB); !res.OK {
		t.Fatal(res.Err)
	}
	if res := s.StoreFile("dup", 100*trace.MB); res.OK || res.Err == nil {
		t.Fatal("duplicate store accepted")
	}
}

func TestStoreFailsWhenPoolFull(t *testing.T) {
	s := newStore(t, 5, caps(6, 100*trace.MB), DefaultConfig())
	// Fill the pool.
	for i := 0; i < 10; i++ {
		s.StoreFile(trace.File{Name: "", Size: 0}.Name, 0)
		break
	}
	r1 := s.StoreFile("filler", 350*trace.MB)
	if !r1.OK {
		t.Fatalf("filler store failed early: %v", r1.Err)
	}
	r2 := s.StoreFile("toolarge", 400*trace.MB) // exceeds the ~250 MB left
	if r2.OK {
		t.Fatal("store succeeded in an exhausted pool")
	}
	if !errors.Is(r2.Err, ErrStoreFailed) {
		t.Fatalf("err = %v, want ErrStoreFailed", r2.Err)
	}
	if s.FilesFailed != 1 || s.BytesFailed != 400*trace.MB {
		t.Fatalf("failure accounting: files=%d bytes=%d", s.FilesFailed, s.BytesFailed)
	}
}

func TestFailedStoreRollsBack(t *testing.T) {
	s := newStore(t, 6, caps(5, 100*trace.MB), DefaultConfig())
	usedBefore := s.Pool.TotalUsed
	res := s.StoreFile("giant", 10*trace.GB) // cannot possibly fit
	if res.OK {
		t.Fatal("impossible store succeeded")
	}
	if s.Pool.TotalUsed != usedBefore {
		t.Fatalf("rollback incomplete: used %d -> %d", usedBefore, s.Pool.TotalUsed)
	}
	if s.Available("giant") {
		t.Fatal("failed file reported available")
	}
}

func TestZeroChunksRecorded(t *testing.T) {
	// One node with space, rest full: most chunk probes hit full nodes
	// and must produce zero-sized chunks before landing.
	capsMixed := caps(30, 64*trace.MB)
	s := newStore(t, 7, capsMixed, DefaultConfig())
	stored, zeros := 0, 0
	for i := 0; i < 40; i++ {
		res := s.StoreFile(trace.NewGen(int64(i)).Files(1)[0].Name+string(rune('a'+i%26))+string(rune('0'+i/26)), 50*trace.MB)
		if res.OK {
			stored++
			zeros += res.ZeroChunks
		}
	}
	if stored == 0 {
		t.Fatal("nothing stored")
	}
	if zeros == 0 {
		t.Log("no zero chunks observed; pool never saturated enough — acceptable but unexpected")
	}
}

func TestStoreWithXORCoding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec = erasure.XOR23Spec
	s := newStore(t, 8, caps(60, 2*trace.GB), cfg)
	res := s.StoreFile("coded", 10*trace.GB)
	if !res.OK {
		t.Fatal(res.Err)
	}
	// (2,3) coding stores 1.5x the data plus the CAT copies.
	minRaw := res.LogicalBytes * 3 / 2
	if res.RawBytes < minRaw || res.RawBytes > minRaw+minRaw/10 {
		t.Fatalf("RawBytes = %d, want ≈%d", res.RawBytes, minRaw)
	}
}

func TestRetrieveWholeAndRange(t *testing.T) {
	s := newStore(t, 9, caps(50, 2*trace.GB), DefaultConfig())
	res := s.StoreFile("r", 5*trace.GB)
	if !res.OK {
		t.Fatal(res.Err)
	}
	whole, err := s.Retrieve("r", 0, 5*trace.GB)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Chunks != res.Chunks {
		t.Fatalf("whole retrieve touched %d chunks, stored %d", whole.Chunks, res.Chunks)
	}
	if whole.Bytes < 5*trace.GB {
		t.Fatalf("whole retrieve fetched %d bytes", whole.Bytes)
	}
	// A small range touches a strict subset of chunks (§4.1).
	part, err := s.Retrieve("r", 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if part.Chunks != 1 {
		t.Fatalf("1 KB range touched %d chunks", part.Chunks)
	}
	if part.Bytes >= whole.Bytes {
		t.Fatal("partial retrieve not cheaper than whole")
	}
}

func TestRetrieveErrors(t *testing.T) {
	s := newStore(t, 10, caps(10, trace.GB), DefaultConfig())
	if _, err := s.Retrieve("ghost", 0, 1); err == nil {
		t.Fatal("retrieve of unknown file succeeded")
	}
}

func TestRecreateCAT(t *testing.T) {
	s := newStore(t, 11, caps(50, 2*trace.GB), DefaultConfig())
	res := s.StoreFile("rc", 5*trace.GB)
	if !res.OK {
		t.Fatal(res.Err)
	}
	orig, _ := s.CAT("rc")
	rebuilt, lookups, err := s.RecreateCAT("rc")
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.FileSize() != orig.FileSize() {
		t.Fatalf("rebuilt size %d, want %d", rebuilt.FileSize(), orig.FileSize())
	}
	if lookups < orig.NumChunks() {
		t.Fatalf("lookups = %d, below chunk count %d", lookups, orig.NumChunks())
	}
	// Bounded by chunks + limit + 1 probes.
	if lookups > orig.NumChunks()+s.Cfg.MaxZeroChunks+1 {
		t.Fatalf("lookups = %d, want <= chunks+limit+1", lookups)
	}
}

func TestPlanChunkSizes(t *testing.T) {
	sizes := PlanChunkSizes(10, 4)
	want := []int64{4, 4, 2}
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	if PlanChunkSizes(0, 4) != nil {
		t.Fatal("zero file should plan no chunks")
	}
	if got := PlanChunkSizes(7, 0); len(got) != 1 || got[0] != 7 {
		t.Fatal("uncapped plan should be one chunk")
	}
}

func TestMaxChunkSizePolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxChunkSize = 512 * trace.MB
	s := newStore(t, 12, caps(30, 10*trace.GB), cfg)
	res := s.StoreFile("capped", 3*trace.GB)
	if !res.OK {
		t.Fatal(res.Err)
	}
	for _, c := range res.ChunkSizes {
		if c > 512*trace.MB {
			t.Fatalf("chunk %d exceeds the 512 MB policy cap", c)
		}
	}
	if res.Chunks < 6 {
		t.Fatalf("3 GB at 512 MB cap should need >= 6 chunks, got %d", res.Chunks)
	}
}

func TestReportFractionSlowsChunks(t *testing.T) {
	full := newStore(t, 13, caps(30, 10*trace.GB), DefaultConfig())
	frac := newStore(t, 13, caps(30, 10*trace.GB), DefaultConfig())
	frac.Pool.SetReportFraction(0.25)
	a := full.StoreFile("f", 8*trace.GB)
	b := frac.StoreFile("f", 8*trace.GB)
	if !a.OK || !b.OK {
		t.Fatal("stores failed")
	}
	if b.Chunks <= a.Chunks {
		t.Fatalf("fractional reporting should create more chunks: %d vs %d", b.Chunks, a.Chunks)
	}
}

func TestPaperConfigReproducesTable1Chunking(t *testing.T) {
	// Under the calibrated §6.1 configuration a 243 MB mean file splits
	// into ~3 chunks averaging ~81 MB — the paper's Table 1 row.
	s := newStore(t, 15, caps(100, 45*trace.GB), PaperConfig())
	g := trace.NewGen(16)
	var chunks, sizes []float64
	for _, f := range g.Files(300) {
		res := s.StoreFile(f.Name, f.Size)
		if !res.OK {
			t.Fatalf("store failed on an empty pool: %v", res.Err)
		}
		chunks = append(chunks, float64(res.Chunks))
		for _, cs := range res.ChunkSizes {
			sizes = append(sizes, float64(cs)/float64(trace.MB))
		}
	}
	var cAcc, sAcc float64
	for _, c := range chunks {
		cAcc += c
	}
	for _, s := range sizes {
		sAcc += s
	}
	meanChunks := cAcc / float64(len(chunks))
	meanSize := sAcc / float64(len(sizes))
	if meanChunks < 2.5 || meanChunks > 4.5 {
		t.Errorf("mean chunks/file = %.2f, paper Table 1 says 3.72", meanChunks)
	}
	if meanSize < 70 || meanSize > 95 {
		t.Errorf("mean chunk size = %.1f MB, paper Table 1 says 81.28", meanSize)
	}
}

func TestFilesAccessors(t *testing.T) {
	s := newStore(t, 14, caps(20, trace.GB), DefaultConfig())
	s.StoreFile("a", 10*trace.MB)
	s.StoreFile("b", 10*trace.MB)
	if s.NumFiles() != 2 || len(s.Files()) != 2 {
		t.Fatalf("NumFiles = %d", s.NumFiles())
	}
}
