// Package core implements PeerStripe, the paper's primary contribution
// (§4): a contributory storage system that stores large files as
// variable-size chunks sized by live getCapacity probes, protects each
// chunk with per-chunk erasure coding, tracks chunk extents in a chunk
// allocation table (CAT), and repairs lost encoded blocks from leaf-set
// neighbors on participant failure.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Naming convention (§4.2): chunks are filename_ChunkNo and encoded
// blocks are filename_ChunkNo_ECB. The convention lets any node derive
// the owning file of a block (and vice versa) with no mapping state;
// the price is that renaming a stored file is expensive, which the
// paper argues is rare for content-named large files.

// CATSuffix is appended to a file name to name its chunk allocation
// table (stored in the p2p storage like any block, §4.2).
const CATSuffix = ".CAT"

// ChunkName returns the name of chunk i of the file.
func ChunkName(file string, chunk int) string {
	return fmt.Sprintf("%s_%d", file, chunk)
}

// BlockName returns the name of encoded block ecb of chunk i.
func BlockName(file string, chunk, ecb int) string {
	return fmt.Sprintf("%s_%d_%d", file, chunk, ecb)
}

// CATName returns the name under which the file's CAT is stored.
func CATName(file string) string { return file + CATSuffix }

// ReplicaName returns the name of replica r of the named object; used
// for the neighbor replicas of CAT files (§4.4) and for the full-copy
// chunk replicas of promoted hot files.
func ReplicaName(name string, r int) string {
	if r == 0 {
		return name
	}
	return fmt.Sprintf("%s~r%d", name, r)
}

// HotSuffix is appended to a file name to name its hot-promotion
// marker: a tiny block recording how many full-copy replicas of each
// chunk were placed when the file was promoted for hot reads. Readers
// that find the marker fetch chunk replicas (one block, no decode)
// instead of erasure-decoding; the replicas live at
// ReplicaName(ChunkName(file, ci), 1..copies).
const HotSuffix = ".HOT"

// HotName returns the name under which the file's hot-promotion
// marker is stored.
func HotName(file string) string { return file + HotSuffix }

// ParseBlockName splits a block name back into (file, chunk, ecb).
// File names may themselves contain underscores; the two trailing
// numeric fields disambiguate, exactly as the paper's convention
// requires.
func ParseBlockName(name string) (file string, chunk, ecb int, ok bool) {
	i := strings.LastIndexByte(name, '_')
	if i <= 0 {
		return "", 0, 0, false
	}
	e, err := strconv.Atoi(name[i+1:])
	if err != nil || e < 0 {
		return "", 0, 0, false
	}
	rest := name[:i]
	j := strings.LastIndexByte(rest, '_')
	if j <= 0 {
		return "", 0, 0, false
	}
	c, err := strconv.Atoi(rest[j+1:])
	if err != nil || c < 0 {
		return "", 0, 0, false
	}
	return rest[:j], c, e, true
}

// IsCATName reports whether name denotes a CAT (or CAT replica) and
// returns the owning file.
func IsCATName(name string) (file string, replica int, ok bool) {
	base := name
	if k := strings.LastIndex(name, "~r"); k > 0 {
		r, err := strconv.Atoi(name[k+2:])
		if err == nil && r > 0 {
			base = name[:k]
			replica = r
		}
	}
	if !strings.HasSuffix(base, CATSuffix) {
		return "", 0, false
	}
	return strings.TrimSuffix(base, CATSuffix), replica, true
}
