package core

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// CAT is a file's chunk allocation table (§4.2, Figure 3): one row per
// chunk recording the half-open byte range [Start, End) of the file
// held by that chunk. Because chunk sizes vary, the CAT is the only
// mapping from a file offset to the chunk containing it. Zero-sized
// chunks (failed placements retried at the next chunk number, §4.3)
// appear as rows with Start == End.
type CAT struct {
	File string
	Rows []CATRow
}

// CATRow is one chunk's extent.
type CATRow struct {
	Start int64 // inclusive
	End   int64 // exclusive
	// Sum is the fnv64a fingerprint of the chunk's plaintext bytes
	// (see ChunkSum), 0 when unknown — zero-sized rows, or tables
	// written before content sums existed. A non-zero Sum makes the
	// CAT content-addressed: re-storing a name with different bytes
	// changes its CAT even when the chunk layout is identical, so
	// CAT.Hash works as a true content version, and readers can verify
	// full-copy hot replicas against the table they opened.
	Sum uint64
}

// Len returns the number of bytes in the chunk.
func (r CATRow) Len() int64 { return r.End - r.Start }

// Empty reports whether the row is a zero-sized chunk.
func (r CATRow) Empty() bool { return r.Len() == 0 }

// FileSize returns the total file size recorded in the table.
func (c *CAT) FileSize() int64 {
	if len(c.Rows) == 0 {
		return 0
	}
	return c.Rows[len(c.Rows)-1].End
}

// NumChunks returns the number of chunk rows, including empty ones.
func (c *CAT) NumChunks() int { return len(c.Rows) }

// ChunksFor returns the chunk indices whose extents intersect the byte
// range [off, off+length) — the lookup that lets PeerStripe fetch only
// the chunks a partial read touches (§4.1).
func (c *CAT) ChunksFor(off, length int64) []int {
	if length <= 0 {
		return nil
	}
	end := off + length
	var out []int
	for i, r := range c.Rows {
		if r.Empty() {
			continue
		}
		if r.End > off && r.Start < end {
			out = append(out, i)
		}
	}
	return out
}

// Row returns row i.
func (c *CAT) Row(i int) CATRow { return c.Rows[i] }

// Validate checks structural invariants: rows tile the file contiguously
// from offset 0 with no gaps or overlaps.
func (c *CAT) Validate() error {
	var pos int64
	for i, r := range c.Rows {
		if r.Start != pos {
			return fmt.Errorf("core: CAT %s row %d starts at %d, want %d", c.File, i, r.Start, pos)
		}
		if r.End < r.Start {
			return fmt.Errorf("core: CAT %s row %d has negative extent", c.File, i)
		}
		pos = r.End
	}
	return nil
}

// Marshal renders the table in the paper's Figure 3 layout:
// one "(i) start,end" line per chunk, 1-indexed, with the content sum
// appended as a third field when the row carries one. Sum-less rows
// keep the exact two-field form, so tables written before content
// sums round-trip byte-identically.
func (c *CAT) Marshal() []byte {
	var b strings.Builder
	for i, r := range c.Rows {
		if r.Sum != 0 {
			fmt.Fprintf(&b, "(%d) %d,%d,%016x\n", i+1, r.Start, r.End, r.Sum)
		} else {
			fmt.Fprintf(&b, "(%d) %d,%d\n", i+1, r.Start, r.End)
		}
	}
	return []byte(b.String())
}

// UnmarshalCAT parses a Figure 3 style table for the named file.
func UnmarshalCAT(file string, data []byte) (*CAT, error) {
	c := &CAT{File: file}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var idx int
		var start, end int64
		var sum uint64
		if _, err := fmt.Sscanf(line, "(%d) %d,%d,%x", &idx, &start, &end, &sum); err != nil {
			sum = 0
			if _, err := fmt.Sscanf(line, "(%d) %d,%d", &idx, &start, &end); err != nil {
				return nil, fmt.Errorf("core: CAT %s line %d: %q: %w", file, ln+1, line, err)
			}
		}
		if idx != len(c.Rows)+1 {
			return nil, fmt.Errorf("core: CAT %s line %d: chunk index %d out of order", file, ln+1, idx)
		}
		c.Rows = append(c.Rows, CATRow{Start: start, End: end, Sum: sum})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// SizeBytes returns the marshaled size, used when the CAT itself is
// stored as a block in the pool.
func (c *CAT) SizeBytes() int64 { return int64(len(c.Marshal())) }

// Hash returns a stable fingerprint of the table: an fnv64a over the
// file name and the marshaled rows. Two CATs hash equal exactly when
// they describe the same stored layout of the same name, which makes
// the hash usable as a content version: re-storing a name writes a new
// CAT, so anything keyed or stamped with the old hash (cached decoded
// chunks, hot-promotion markers) is recognizably stale. Call it only
// on fully built tables.
func (c *CAT) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.File))
	h.Write([]byte{0})
	h.Write(c.Marshal())
	return h.Sum64()
}

// ChunkSum fingerprints one chunk's plaintext bytes for CATRow.Sum:
// an fnv64a, with the reserved "no sum" value 0 remapped so a stored
// sum is always non-zero.
func ChunkSum(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	if s := h.Sum64(); s != 0 {
		return s
	}
	return 1
}
