package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if !almostEq(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", a.Mean())
	}
	if !almostEq(a.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", a.Min(), a.Max())
	}
	if a.Sum() != 40 {
		t.Errorf("Sum = %g, want 40", a.Sum())
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.StdDev() != 0 || a.Var() != 0 {
		t.Error("empty Acc should report zeros")
	}
}

func TestAccAddN(t *testing.T) {
	var a, b Acc
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || a.Sum() != b.Sum() {
		t.Error("AddN disagrees with repeated Add")
	}
}

func TestAccMerge(t *testing.T) {
	var a, b, all Acc
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 10
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(&b)
	if a.N() != all.N() || !almostEq(a.Mean(), all.Mean(), 1e-9) ||
		!almostEq(a.StdDev(), all.StdDev(), 1e-9) ||
		a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("Merge mismatch: %v vs %v", a.String(), all.String())
	}
}

func TestAccMergeEmpty(t *testing.T) {
	var a, empty Acc
	a.Add(1)
	a.Merge(&empty)
	if a.N() != 1 {
		t.Error("merging empty changed Acc")
	}
	var c Acc
	c.Merge(&a)
	if c.N() != 1 || c.Mean() != 1 {
		t.Error("merging into empty failed")
	}
}

// Property: mean lies within [min, max] and variance is non-negative.
func TestAccBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var a Acc
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e12 {
				return true // sumSq would overflow; Acc targets measurement-scale data
			}
			a.Add(x)
		}
		if a.N() == 0 {
			return true
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9 && a.Var() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %g", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %g", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("failures")
	s.Observe(10, 1)
	s.Observe(20, 4)
	s.Observe(10, 3) // second seed at same x
	xs, ys := s.Points()
	if len(xs) != 2 || xs[0] != 10 || xs[1] != 20 {
		t.Fatalf("xs = %v", xs)
	}
	if ys[0] != 2 || ys[1] != 4 {
		t.Fatalf("ys = %v", ys)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if y, ok := s.YAt(10); !ok || y != 2 {
		t.Errorf("YAt(10) = %g, %v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Error("YAt on missing x reported ok")
	}
	if s.Last() != 4 {
		t.Errorf("Last = %g, want 4", s.Last())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Last() != 0 {
		t.Error("empty series Last should be 0")
	}
	xs, ys := s.Points()
	if len(xs) != 0 || len(ys) != 0 {
		t.Error("empty series should return empty points")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 9.99} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(0) != 3 { // 0.5, 1, and 3? No: bucket width 2 -> [0,2)=0.5,1; bucket1=[2,4)=3
		// expected: bucket0 has 0.5,1
		t.Logf("bucket counts: %d %d %d %d %d", h.Count(0), h.Count(1), h.Count(2), h.Count(3), h.Count(4))
	}
	if h.Count(0) != 2 || h.Count(1) != 1 || h.Count(2) != 1 || h.Count(3) != 1 || h.Count(4) != 2 {
		t.Errorf("counts = %d %d %d %d %d", h.Count(0), h.Count(1), h.Count(2), h.Count(3), h.Count(4))
	}
	if !almostEq(h.Frac(0), 2.0/7, 1e-12) {
		t.Errorf("Frac(0) = %g", h.Frac(0))
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(-5)
	h.Add(50)
	if h.Count(0) != 1 || h.Count(1) != 1 {
		t.Error("out-of-range values not clamped to edge buckets")
	}
	if h.Buckets() != 2 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram accepted invalid shape")
		}
	}()
	NewHistogram(5, 5, 1)
}
