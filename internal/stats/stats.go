// Package stats provides the small statistical toolkit the experiment
// harness uses: accumulators for mean/standard deviation, extrema,
// histograms, and fixed-interval series sampling for figure output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Acc accumulates scalar observations and reports summary statistics.
// The zero value is ready to use.
type Acc struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (a *Acc) Add(x float64) {
	if a.n == 0 || x < a.min {
		a.min = x
	}
	if a.n == 0 || x > a.max {
		a.max = x
	}
	a.n++
	a.sum += x
	a.sumSq += x * x
}

// AddN records the same observation n times.
func (a *Acc) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Acc) N() int { return a.n }

// Sum returns the sum of all observations.
func (a *Acc) Sum() float64 { return a.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (a *Acc) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Var returns the population variance, or 0 with fewer than 2 observations.
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := a.sumSq/float64(a.n) - m*m
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (a *Acc) StdDev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest observation, or 0 with no observations.
func (a *Acc) Max() float64 { return a.max }

// String summarises the accumulator for logs.
func (a *Acc) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// Merge folds the observations of b into a.
func (a *Acc) Merge(b *Acc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n += b.n
	a.sum += b.sum
	a.sumSq += b.sumSq
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted; it is
// not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Series collects (x, y) points sampled at intervals, averaging y values
// that land on the same x across repeated runs. It renders the data rows
// behind the paper's line figures.
type Series struct {
	Name string
	xs   []float64
	ys   map[float64]*Acc
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name, ys: make(map[float64]*Acc)}
}

// Observe records y at sample point x. Repeated observations at the same
// x (e.g. from different seeds) are averaged.
func (s *Series) Observe(x, y float64) {
	a, ok := s.ys[x]
	if !ok {
		a = &Acc{}
		s.ys[x] = a
		s.xs = append(s.xs, x)
	}
	a.Add(y)
}

// Points returns the sample points in ascending x order with mean y.
func (s *Series) Points() (xs, ys []float64) {
	xs = append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	ys = make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = s.ys[x].Mean()
	}
	return xs, ys
}

// Len returns the number of distinct sample points.
func (s *Series) Len() int { return len(s.xs) }

// YAt returns the mean y recorded at sample point x, and whether any
// observation exists there.
func (s *Series) YAt(x float64) (float64, bool) {
	a, ok := s.ys[x]
	if !ok {
		return 0, false
	}
	return a.Mean(), true
}

// Last returns the y value at the largest sample point, or 0 if empty.
func (s *Series) Last() float64 {
	xs, ys := s.Points()
	if len(xs) == 0 {
		return 0
	}
	return ys[len(ys)-1]
}

// Histogram counts observations in fixed-width buckets over [lo, hi).
// Observations outside the range are clamped into the edge buckets.
type Histogram struct {
	lo, width float64
	counts    []int
	total     int
}

// NewHistogram builds a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, width: (hi - lo) / float64(n), counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Count returns the observations in bucket i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Frac returns the fraction of observations in bucket i.
func (h *Histogram) Frac(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}
