package stats

import (
	"fmt"
	"math"
	"strings"
)

// AsciiPlot renders one or more series as a fixed-size ASCII chart so
// psbench output can be eyeballed against the paper's figures without
// external tooling. Each series gets a distinct glyph; collisions show
// the later series' glyph.
func AsciiPlot(series []*Series, width, height int, yLabel string) string {
	if len(series) == 0 || width < 16 || height < 4 {
		return ""
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '~', '^'}

	// Global bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		xs, ys := s.Points()
		for i := range xs {
			minX, maxX = math.Min(minX, xs[i]), math.Max(maxX, xs[i])
			minY, maxY = math.Min(minY, ys[i]), math.Max(maxY, ys[i])
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		return ""
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		xs, ys := s.Points()
		for i := range xs {
			c := int((xs[i] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((ys[i]-minY)/(maxY-minY)*float64(height-1))
			grid[r][c] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: %.4g..%.4g, x: %.4g..%.4g)\n", yLabel, minY, maxY, minX, maxX)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	legend := "   "
	for si, s := range series {
		legend += fmt.Sprintf("%c=%s  ", glyphs[si%len(glyphs)], s.Name)
	}
	b.WriteString(legend + "\n")
	return b.String()
}
