package stats

import (
	"strings"
	"testing"
)

func TestAsciiPlotBasic(t *testing.T) {
	a := NewSeries("rising")
	b := NewSeries("flat")
	for x := 0; x < 20; x++ {
		a.Observe(float64(x), float64(x))
		b.Observe(float64(x), 5)
	}
	out := AsciiPlot([]*Series{a, b}, 40, 10, "value")
	if out == "" {
		t.Fatal("empty plot")
	}
	if !strings.Contains(out, "*=rising") || !strings.Contains(out, "o=flat") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Header + height rows + axis + legend (+ trailing empty).
	if len(lines) < 13 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
	// The rising series must put a glyph in the top row and the bottom
	// data row.
	if !strings.Contains(lines[1], "*") {
		t.Errorf("top row has no point:\n%s", out)
	}
	if !strings.ContainsAny(lines[10], "*o") {
		t.Errorf("bottom row has no point:\n%s", out)
	}
}

func TestAsciiPlotDegenerate(t *testing.T) {
	if AsciiPlot(nil, 40, 10, "y") != "" {
		t.Error("nil series should render nothing")
	}
	s := NewSeries("one")
	s.Observe(1, 1)
	if AsciiPlot([]*Series{s}, 40, 10, "y") != "" {
		t.Error("single point (zero x-range) should render nothing")
	}
	if AsciiPlot([]*Series{s}, 4, 2, "y") != "" {
		t.Error("tiny canvas should render nothing")
	}
}

func TestAsciiPlotFlatLine(t *testing.T) {
	s := NewSeries("const")
	s.Observe(0, 7)
	s.Observe(10, 7)
	out := AsciiPlot([]*Series{s}, 30, 6, "y")
	if out == "" {
		t.Fatal("flat series should still render (padded y-range)")
	}
}
