package telemetry

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"peerstripe/internal/stats"
)

// TestBucketRoundTrip: every value must land in a bucket whose bounds
// contain it, and bucket bounds must tile the int64 range without
// gaps or overlap.
func TestBucketRoundTrip(t *testing.T) {
	values := []int64{-5, 0, 1, 15, 16, 31, 32, 33, 63, 64, 65, 100, 1023, 1024,
		1<<20 - 1, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range values {
		idx := bucketOf(v)
		lo, hi := bucketBounds(idx)
		want := v
		if want < 0 {
			want = 0
		}
		if want < lo || want > hi {
			t.Errorf("bucketOf(%d)=%d has bounds [%d,%d], value outside", v, idx, lo, hi)
		}
	}
	prevHi := int64(-1)
	for i := 0; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo=%d, want %d (gap/overlap after previous hi)", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d: hi=%d < lo=%d", i, hi, lo)
		}
		prevHi = hi
		if hi == math.MaxInt64 {
			if i != numBuckets-1 {
				t.Fatalf("bucket %d reaches MaxInt64 but %d buckets exist", i, numBuckets)
			}
			break
		}
	}
	if prevHi != math.MaxInt64 {
		t.Fatalf("buckets end at %d, not MaxInt64", prevHi)
	}
}

// TestBucketRelativeError: for large values the bucket upper bound
// must overestimate the value by at most 1/histSub.
func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := rng.Int63()
		_, hi := bucketBounds(bucketOf(v))
		relErr := float64(hi-v) / float64(v)
		if relErr > 1.0/histSub {
			t.Fatalf("v=%d: bucket hi=%d, relative error %.4f > %.4f", v, hi, relErr, 1.0/histSub)
		}
	}
}

// TestHistogramQuantiles: quantile estimates from the histogram must
// stay within one bucket's relative width of the exact sorted-sample
// quantile, across distribution shapes.
func TestHistogramQuantiles(t *testing.T) {
	dists := map[string]func(*rand.Rand) int64{
		"uniform":   func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exp":       func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
		"lognormal": func(r *rand.Rand) int64 { return int64(math.Exp(r.NormFloat64()*1.5 + 10)) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return 1_000_000 + r.Int63n(100_000)
			}
			return 1_000 + r.Int63n(500)
		},
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var h Histogram
			samples := make([]float64, 0, 50000)
			for i := 0; i < 50000; i++ {
				v := gen(rng)
				h.Observe(v)
				samples = append(samples, float64(v))
			}
			s := h.Snapshot()
			if s.Count != 50000 {
				t.Fatalf("Count = %d, want 50000", s.Count)
			}
			for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
				got := float64(s.Quantile(q))
				want := stats.Quantile(samples, q)
				// The bucket bound overestimates by ≤1/histSub; allow a
				// little extra for rank-vs-interpolation differences.
				slack := want*(1.0/histSub) + 2
				if got < want-slack || got > want+slack {
					t.Errorf("p%g: histogram %.0f vs exact %.0f (slack %.0f)", q*100, got, want, slack)
				}
			}
		})
	}
}

// TestHistogramSnapshotMergeAssociative: (a·b)·c == a·(b·c), merge is
// commutative, the zero snapshot is the identity, and a merge equals
// the histogram that saw all observations directly.
func TestHistogramSnapshotMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ha, hb, hc, hall Histogram
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 100_000)
		switch i % 3 {
		case 0:
			ha.Observe(v)
		case 1:
			hb.Observe(v)
		case 2:
			hc.Observe(v)
		}
		hall.Observe(v)
	}
	a, b, c := ha.Snapshot(), hb.Snapshot(), hc.Snapshot()
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	direct := hall.Snapshot()
	for name, m := range map[string]HistogramSnapshot{"left": left, "right": right} {
		if !histEqual(m, direct) {
			t.Errorf("%s-associated merge != direct histogram", name)
		}
	}
	if !histEqual(a.Merge(b), b.Merge(a)) {
		t.Error("merge is not commutative")
	}
	if !histEqual(a.Merge(HistogramSnapshot{}), a) {
		t.Error("zero snapshot is not a merge identity")
	}
}

func histEqual(x, y HistogramSnapshot) bool {
	if x.Count != y.Count || x.Sum != y.Sum || len(x.Buckets) != len(y.Buckets) {
		return false
	}
	for i := range x.Buckets {
		if x.Buckets[i] != y.Buckets[i] {
			return false
		}
	}
	return true
}

// TestRegistrySnapshotMerge: registry-level snapshot merge sums
// counters and gauges and bucket-merges histograms, associatively.
func TestRegistrySnapshotMerge(t *testing.T) {
	mk := func(c, g, hv int64) Snapshot {
		r := NewRegistry()
		r.Counter("ops_total", "ops").Add(c)
		r.Gauge("depth", "depth").Set(g)
		r.Histogram("lat_seconds", "latency").Observe(hv)
		r.Counter("calls_total", "calls", "op", "store").Add(c * 2)
		return r.Snapshot()
	}
	a, b, c := mk(1, 10, 100), mk(2, 20, 200), mk(3, 30, 5000)
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left.Counters["ops_total"] != 6 || right.Counters["ops_total"] != 6 {
		t.Errorf("counter merge: left=%d right=%d, want 6", left.Counters["ops_total"], right.Counters["ops_total"])
	}
	if left.Counters[`calls_total{op="store"}`] != 12 {
		t.Errorf("labeled counter merge = %d, want 12", left.Counters[`calls_total{op="store"}`])
	}
	if left.Gauges["depth"] != 60 {
		t.Errorf("gauge merge = %d, want 60", left.Gauges["depth"])
	}
	lh, rh := left.Histograms["lat_seconds"], right.Histograms["lat_seconds"]
	if lh.Count != 3 || !histEqual(lh, rh) {
		t.Errorf("histogram merge mismatch: left count=%d", lh.Count)
	}
}

// TestRegistryGetOrCreate: same (name, labels) must return the same
// instrument; different labels distinct ones; kind conflicts panic.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "x", "op", "a")
	c2 := r.Counter("x_total", "x", "op", "a")
	c3 := r.Counter("x_total", "x", "op", "b")
	if c1 != c2 {
		t.Error("same (name, labels) returned distinct counters")
	}
	if c1 == c3 {
		t.Error("distinct labels returned the same counter")
	}
	c1.Add(5)
	c3.Add(7)
	s := r.Snapshot()
	if s.Counters[`x_total{op="a"}`] != 5 || s.Counters[`x_total{op="b"}`] != 7 {
		t.Errorf("snapshot = %v", s.Counters)
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestNilRegistryNoOps: a nil registry hands out nil instruments whose
// methods are safe no-ops, and nil snapshots are empty but usable.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "a")
	g := r.Gauge("b", "b")
	h := r.Histogram("c_seconds", "c")
	c.Add(1)
	c.Inc()
	g.Set(5)
	g.Add(-2)
	h.Observe(123)
	h.Since(time.Now())
	r.CounterFunc("d_total", "d", func() int64 { return 9 })
	r.GaugeFunc("e", "e", func() int64 { return 9 })
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments returned non-zero values")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 || s.Max() != 0 {
		t.Error("nil histogram snapshot not empty")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

// TestFuncMetrics: CounterFunc/GaugeFunc values are read at snapshot
// time from the callback.
func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	var n int64 = 3
	r.CounterFunc("mirror_total", "mirrored", func() int64 { return n })
	r.GaugeFunc("live", "live", func() int64 { return n * 10 })
	if got := r.Snapshot().Counters["mirror_total"]; got != 3 {
		t.Errorf("CounterFunc = %d, want 3", got)
	}
	n = 8
	s := r.Snapshot()
	if s.Counters["mirror_total"] != 8 || s.Gauges["live"] != 80 {
		t.Errorf("func metrics stale: %v %v", s.Counters, s.Gauges)
	}
}

// TestRaceHammer: N goroutines record into shared instruments while M
// snapshot and render concurrently. Run under -race this proves the
// hot path and snapshot path share no unsynchronized state.
func TestRaceHammer(t *testing.T) {
	r := NewRegistry()
	const recorders, snapshotters, perG = 8, 4, 5000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < recorders; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start
			c := r.Counter("hammer_total", "hammer", "g", fmt.Sprint(id%2))
			g := r.Gauge("hammer_inflight", "inflight")
			h := r.Histogram("hammer_seconds", "latency")
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(j * 17))
				g.Add(-1)
			}
		}(i)
	}
	for i := 0; i < snapshotters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				s := r.Snapshot()
				for _, hs := range s.Histograms {
					hs.Quantile(0.99)
				}
				if err := WritePrometheus(discard{}, r); err != nil {
					t.Errorf("WritePrometheus: %v", err)
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	s := r.Snapshot()
	var total int64
	for _, v := range s.Counters {
		total += v
	}
	if total != recorders*perG {
		t.Errorf("final counter total = %d, want %d", total, recorders*perG)
	}
	if s.Gauges["hammer_inflight"] != 0 {
		t.Errorf("final inflight = %d, want 0", s.Gauges["hammer_inflight"])
	}
	if h := s.Histograms["hammer_seconds"]; h.Count != recorders*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, recorders*perG)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestRecordingAllocFree: the per-record hot path — counter add, gauge
// set, histogram observe — must not allocate, instrumented or not.
// This is the overhead guard the ISSUE asks to assert in tests.
func TestRecordingAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "a")
	g := r.Gauge("b", "b")
	h := r.Histogram("c_seconds", "c")
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	cases := map[string]func(){
		"counter":       func() { c.Add(1) },
		"gauge":         func() { g.Set(42) },
		"histogram":     func() { h.Observe(123456) },
		"nil-counter":   func() { nilC.Add(1) },
		"nil-gauge":     func() { nilG.Set(42) },
		"nil-histogram": func() { nilH.Observe(123456) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per record, want 0", name, allocs)
		}
	}
}
