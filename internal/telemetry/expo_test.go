package telemetry

import (
	"strings"
	"testing"
)

// TestWritePrometheusFormat: rendered output must carry HELP/TYPE per
// family, labeled samples, and cumulative histogram buckets ending in
// +Inf with matching _count — and must pass our own validator.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ps_test_ops_total", "Total ops.", "op", "store").Add(3)
	r.Counter("ps_test_ops_total", "Total ops.", "op", "fetch").Add(5)
	r.Gauge("ps_test_inflight", "Inflight requests.").Set(2)
	h := r.Histogram("ps_test_latency_seconds", "Op latency.")
	h.Observe(1_000_000)  // 1ms
	h.Observe(1_000_000)  // same bucket
	h.Observe(50_000_000) // 50ms
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP ps_test_ops_total Total ops.",
		"# TYPE ps_test_ops_total counter",
		`ps_test_ops_total{op="store"} 3`,
		`ps_test_ops_total{op="fetch"} 5`,
		"# TYPE ps_test_inflight gauge",
		"ps_test_inflight 2",
		"# TYPE ps_test_latency_seconds histogram",
		`le="+Inf"} 3`,
		"ps_test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	n, err := ValidateText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ValidateText: %v\n%s", err, out)
	}
	if n < 7 {
		t.Errorf("validated only %d samples", n)
	}
}

// TestWritePrometheusMultiRegistry: composing registries renders both,
// and stays valid, as the gateway does with its own + the client's.
func TestWritePrometheusMultiRegistry(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("ps_a_total", "a").Add(1)
	b.Counter("ps_b_total", "b").Add(2)
	var sb strings.Builder
	if err := WritePrometheus(&sb, a, nil, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ps_a_total 1") || !strings.Contains(out, "ps_b_total 2") {
		t.Errorf("multi-registry output incomplete:\n%s", out)
	}
	if _, err := ValidateText(strings.NewReader(out)); err != nil {
		t.Errorf("ValidateText: %v", err)
	}
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values
// must render escaped and still validate.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("ps_esc_total", "esc", "path", "a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `path="a\"b\\c\nd"`) {
		t.Errorf("label not escaped:\n%s", out)
	}
	if _, err := ValidateText(strings.NewReader(out)); err != nil {
		t.Errorf("ValidateText: %v", err)
	}
}

// TestValidateTextRejects: the linter must catch the malformations it
// exists to catch.
func TestValidateTextRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "x_total 1\n",
		"bad value":        "# TYPE x gauge\nx one\n",
		"bad name":         "# TYPE 1x gauge\n1x 1\n",
		"unclosed labels":  "# TYPE x gauge\nx{a=\"b 1\n",
		"unquoted label":   "# TYPE x gauge\nx{a=b} 1\n",
		"negative counter": "# TYPE x_total counter\nx_total -1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
			"h_sum 1\nh_count 3\n",
		"inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\n" + "h_sum 1\nh_count 4\n",
	}
	for name, text := range cases {
		if _, err := ValidateText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ValidateText accepted invalid input:\n%s", name, text)
		}
	}
	// And a known-good document with a timestamp field must pass.
	good := "# TYPE x gauge\nx{a=\"b\"} 1 1700000000\n"
	if _, err := ValidateText(strings.NewReader(good)); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}
