package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders registries in the Prometheus text exposition
// format (version 0.0.4) by hand — the repo takes no dependencies —
// and lints that output so tests can assert a scrape stays parseable.
//
// Histograms record nanoseconds internally; exposition divides by 1e9
// so *_seconds families carry standard Prometheus base units. Each
// histogram renders as sparse cumulative `_bucket{le="..."}` lines
// over its non-empty buckets, a final `le="+Inf"`, then `_sum` and
// `_count`.

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatSeconds renders a nanosecond value in seconds with enough
// precision that distinct bucket bounds stay distinct.
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// writeMetricLine emits one sample: name, optional labels, value.
func writeMetricLine(w *bufio.Writer, name, labels string, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// joinLabels appends extra to a rendered label string.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// WritePrometheus renders every metric of the given registries in the
// Prometheus text exposition format. Families are emitted in
// registration order, one HELP/TYPE header per family; a family name
// appearing in multiple registries is emitted once per registry, so
// callers composing registries must keep family names distinct (the
// repo's ps_client_*/ps_node_*/ps_gateway_* prefixes do). Nil
// registries are skipped.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	bw := bufio.NewWriter(w)
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, f := range r.snapshotFamilies() {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
			fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
			for _, ls := range f.order {
				m := f.metrics[ls]
				switch f.kind {
				case kindCounter:
					writeMetricLine(bw, f.name, m.labels, strconv.FormatInt(m.c.Value(), 10))
				case kindGauge:
					writeMetricLine(bw, f.name, m.labels, strconv.FormatInt(m.g.Value(), 10))
				case kindCounterFunc, kindGaugeFunc:
					writeMetricLine(bw, f.name, m.labels, strconv.FormatInt(m.fn(), 10))
				case kindHistogram:
					s := m.h.Snapshot()
					var cum int64
					for _, b := range s.Buckets {
						cum += b.Count
						le := joinLabels(m.labels, `le="`+formatSeconds(b.Hi)+`"`)
						writeMetricLine(bw, f.name+"_bucket", le, strconv.FormatInt(cum, 10))
					}
					writeMetricLine(bw, f.name+"_bucket", joinLabels(m.labels, `le="+Inf"`), strconv.FormatInt(s.Count, 10))
					writeMetricLine(bw, f.name+"_sum", m.labels, formatSeconds(s.Sum))
					writeMetricLine(bw, f.name+"_count", m.labels, strconv.FormatInt(s.Count, 10))
				}
			}
		}
	}
	return bw.Flush()
}

// ValidateText lints Prometheus text-format output: every sample line
// must parse (name, optional well-formed label set, float value), every
// sample's base family must carry TYPE metadata emitted before its
// first sample, histogram bucket series must be cumulative and agree
// with their _count, and counter values must be non-negative. It
// returns the number of samples checked, or the first violation.
// This is the scrape-and-parse gate `make obs` runs against a live
// /-/metrics endpoint.
func ValidateText(r io.Reader) (samples int, err error) {
	types := make(map[string]string)  // family → TYPE
	lastCum := make(map[string]int64) // histogram series key → last cumulative bucket value
	lastInf := make(map[string]int64) // histogram series key → +Inf value
	counts := make(map[string]int64)  // histogram series key → _count value
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "# ")
			switch {
			case strings.HasPrefix(rest, "TYPE "):
				fields := strings.Fields(rest)
				if len(fields) != 3 {
					return samples, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				switch fields[2] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[2])
				}
				types[fields[1]] = fields[2]
			case strings.HasPrefix(rest, "HELP "):
				if len(strings.Fields(rest)) < 2 {
					return samples, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
				}
			}
			continue
		}
		name, labels, valStr, perr := parseSample(line)
		if perr != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		val, ferr := strconv.ParseFloat(valStr, 64)
		if ferr != nil {
			return samples, fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, ferr)
		}
		base, suffix := baseFamily(name, types)
		typ, ok := types[base]
		if !ok {
			return samples, fmt.Errorf("line %d: sample %s has no TYPE metadata", lineNo, name)
		}
		switch typ {
		case "counter":
			if val < 0 {
				return samples, fmt.Errorf("line %d: counter %s is negative (%s)", lineNo, name, valStr)
			}
		case "histogram":
			key := base + "|" + stripLE(labels)
			switch suffix {
			case "_bucket":
				if val+1e-9 < float64(lastCum[key]) {
					return samples, fmt.Errorf("line %d: histogram %s buckets not cumulative", lineNo, base)
				}
				lastCum[key] = int64(val)
				if le, ok := labelValue(labels, "le"); ok && le == "+Inf" {
					lastInf[key] = int64(val)
				} else if !ok {
					return samples, fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
			case "_count":
				counts[key] = int64(val)
			case "_sum":
			default:
				return samples, fmt.Errorf("line %d: unexpected histogram sample %s", lineNo, name)
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	for key, n := range counts {
		if inf, ok := lastInf[key]; !ok || inf != n {
			return samples, fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", key, lastInf[key], n)
		}
	}
	return samples, nil
}

// parseSample splits a sample line into name, raw label string (the
// text between braces, possibly empty), and value, validating label
// syntax along the way.
func parseSample(line string) (name, labels, value string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := findBraceEnd(rest)
		if end < 0 {
			return "", "", "", fmt.Errorf("unterminated label set in %q", line)
		}
		labels = rest[1:end]
		if err := validLabels(labels); err != nil {
			return "", "", "", err
		}
		rest = rest[end+1:]
	}
	value = strings.TrimSpace(rest)
	if value == "" {
		return "", "", "", fmt.Errorf("missing value in %q", line)
	}
	// Timestamps (a second field) are permitted by the format.
	if f := strings.Fields(value); len(f) > 1 {
		value = f[0]
	}
	return name, labels, value, nil
}

// findBraceEnd locates the closing brace of a label set, honoring
// quoted values with escapes.
func findBraceEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// validName reports whether s is a legal metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabels checks `k="v",...` syntax: legal label names, quoted
// values, comma separation.
func validLabels(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label in %q", s)
		}
		if name := s[:eq]; !validName(name) || strings.Contains(name, ":") {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", s)
		}
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value")
		}
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("missing comma between labels")
			}
			s = s[1:]
		}
	}
	return nil
}

// labelValue extracts one label's (unescaped) value from a rendered
// label string.
func labelValue(labels, key string) (string, bool) {
	s := labels
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return "", false
		}
		name := s[:eq]
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return "", false
		}
		i := 1
		var val strings.Builder
		for i < len(s) {
			if s[i] == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			val.WriteByte(s[i])
			i++
		}
		if name == key {
			return val.String(), true
		}
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return "", false
}

// stripLE removes the le label from a rendered label string so every
// bucket of one histogram series shares a key.
func stripLE(labels string) string {
	if labels == "" {
		return ""
	}
	parts := splitLabels(labels)
	out := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, `le="`) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// splitLabels splits a rendered label string on commas outside quotes.
func splitLabels(s string) []string {
	var parts []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// baseFamily resolves a sample name to its TYPE family: histogram
// samples use suffixed names (_bucket/_sum/_count) whose family is the
// unsuffixed name.
func baseFamily(name string, types map[string]string) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			b := strings.TrimSuffix(name, suf)
			if types[b] == "histogram" || types[b] == "summary" {
				return b, suf
			}
		}
	}
	return name, ""
}
