// Package telemetry is the runtime metrics substrate of the live
// implementation: a dependency-free registry of lock-free counters,
// gauges, and log-bucketed latency histograms, cheap enough to leave
// on in production hot paths. It supersedes the bench-only
// internal/stats.Histogram for runtime use — stats stays the offline
// analysis tool; telemetry is what a running node, client, or gateway
// records into on every operation.
//
// Recording is one atomic add: counters and gauges are single
// atomic.Int64 cells, and a histogram observation increments exactly
// one of its log-spaced buckets. No locks, no allocation, no
// time-windowing — aggregation happens at snapshot time, off the hot
// path. Snapshots are mergeable (across histograms, across registries,
// across processes) and reduce to p50/p95/p99/p99.9 with a bounded
// relative error of 1/16 (6.25%) from the bucketing.
//
// Every method is nil-receiver safe: a nil *Registry hands out nil
// metrics whose Add/Set/Observe are no-ops, so a component can thread
// an optional registry through without guarding every record site —
// and the no-op path is what the overhead benchmarks compare against.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease). No-op on nil.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucketing: values below 2·histSub land in exact unit
// buckets; above that, each power-of-two octave splits into histSub
// log-spaced sub-buckets, so the relative width of any bucket is at
// most 1/histSub. With histSubBits=4 that is 960 buckets covering all
// of int64 at ≤6.25% relative error — 7.5 KiB of atomics per
// histogram, one atomic add per observation.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	numBuckets  = (62-histSubBits)*histSub + 2*histSub
)

// Histogram is a log-bucketed distribution of int64 values. Latency
// histograms record nanoseconds (see Since); the Prometheus exposition
// renders their bucket bounds in seconds.
type Histogram struct {
	counts [numBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index. Negative values clamp
// into bucket 0.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 2*histSub {
		return int(v)
	}
	b := bits.Len64(uint64(v)) - 1 // v ∈ [2^b, 2^(b+1))
	sub := int((uint64(v) >> (uint(b) - histSubBits)) & (histSub - 1))
	return (b-histSubBits+1)*histSub + sub
}

// bucketBounds returns the inclusive value range [lo, hi] of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < 2*histSub {
		return int64(idx), int64(idx)
	}
	b := uint(histSubBits + idx/histSub - 1)
	sub := int64(idx % histSub)
	lo = (histSub + sub) << (b - histSubBits)
	return lo, lo + (1 << (b - histSubBits)) - 1
}

// Observe records one value: a single atomic add. No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h != nil {
		h.counts[bucketOf(v)].Add(1)
	}
}

// Since records the nanoseconds elapsed from start. No-op on nil.
func (h *Histogram) Since(start time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(start)))
	}
}

// Bucket is one non-empty histogram bucket: Count observations whose
// values fell in [Lo, Hi].
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// HistogramSnapshot is a point-in-time copy of a histogram: the
// non-empty buckets in ascending value order. Snapshots merge
// associatively and commutatively (Merge), so per-shard or per-process
// histograms aggregate without precision loss beyond the shared
// bucketing.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64 // approximate: bucket midpoints × counts
	Buckets []Bucket
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may or may not be included; each bucket count is individually
// consistent (no torn reads).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		s.Count += n
		s.Sum += n * (lo + (hi-lo)/2)
	}
	return s
}

// Merge combines two snapshots into one, as if every observation of
// both had landed in a single histogram. Merge is associative and
// commutative; the zero HistogramSnapshot is its identity.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	out.Buckets = make([]Bucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Lo < o.Buckets[j].Lo):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Lo < s.Buckets[i].Lo:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default: // same bucket
			b := s.Buckets[i]
			b.Count += o.Buckets[j].Count
			out.Buckets = append(out.Buckets, b)
			i++
			j++
		}
	}
	return out
}

// Quantile estimates the q-th quantile (q in [0, 1]) as the upper
// bound of the bucket holding that rank — an estimate within one
// bucket width (≤6.25% relative) above the true order statistic.
// Returns 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count-1))
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum > rank {
			return b.Hi
		}
	}
	return s.Buckets[len(s.Buckets)-1].Hi
}

// Max returns the upper bound of the highest non-empty bucket (0 when
// empty) — the largest observation, up to one bucket width.
func (s HistogramSnapshot) Max() int64 {
	if len(s.Buckets) == 0 {
		return 0
	}
	return s.Buckets[len(s.Buckets)-1].Hi
}

// metricKind tags a family's metric type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered instrument with its rendered label set.
type metric struct {
	labels string // rendered `k="v",...` (empty for unlabeled)
	c      *Counter
	g      *Gauge
	fn     func() int64
	h      *Histogram
}

// family groups every metric sharing one name: one HELP/TYPE block in
// the exposition, one or more label sets underneath.
type family struct {
	name, help string
	kind       metricKind
	metrics    map[string]*metric // rendered labels → metric
	order      []string           // registration order of label sets
}

// Registry holds a set of metric families. Registration
// (Counter/Gauge/Histogram/...) takes a lock and is get-or-create by
// (name, labels); callers resolve their instruments once, up front,
// and the hot path touches only the returned instrument's atomics.
// A nil *Registry hands out nil instruments — the no-op mode.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels turns alternating key, value pairs into the canonical
// `k="v",...` form used both as the registry key and in exposition.
// Values are escaped per the Prometheus text format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be alternating key, value pairs")
	}
	out := ""
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			out += ","
		}
		out += labels[i] + `="` + escapeLabel(labels[i+1]) + `"`
	}
	return out
}

// get resolves (name, labels) to its metric, creating family and
// metric on first use. A name re-registered at a different kind
// panics: two instruments cannot share one exposition family.
func (r *Registry) get(name, help string, kind metricKind, labels []string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, metrics: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as both %s and %s", name, f.kind, kind))
	}
	ls := renderLabels(labels)
	m := f.metrics[ls]
	if m == nil {
		m = &metric{labels: ls}
		switch kind {
		case kindCounter:
			m.c = new(Counter)
		case kindGauge:
			m.g = new(Gauge)
		case kindHistogram:
			m.h = new(Histogram)
		}
		f.metrics[ls] = m
		f.order = append(f.order, ls)
	}
	return m
}

// Counter returns the counter registered under name with the given
// alternating key, value label pairs, creating it on first use. Nil on
// a nil registry.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, help, kindCounter, labels).c
}

// Gauge returns the gauge registered under name and labels, creating
// it on first use. Nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, help, kindGauge, labels).g
}

// Histogram returns the histogram registered under name and labels,
// creating it on first use. Histograms record nanoseconds; exposition
// renders seconds, so name them *_seconds. Nil on a nil registry.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, help, kindHistogram, labels).h
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot and exposition time — for mirroring counters a component
// already maintains (monotonic values only). No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...string) {
	if r == nil {
		return
	}
	r.get(name, help, kindCounterFunc, labels).fn = fn
}

// GaugeFunc registers a gauge read from fn at snapshot and exposition
// time — for instantaneous values derived from existing state (queue
// depths, bytes held). No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...string) {
	if r == nil {
		return
	}
	r.get(name, help, kindGaugeFunc, labels).fn = fn
}

// Snapshot is a point-in-time copy of a registry: counters and gauges
// keyed by their full name (`name{labels}`), histograms likewise.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Merge combines two snapshots: counters and gauges sum, histograms
// bucket-merge. Associative and commutative; the empty Snapshot is the
// identity.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)+len(o.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range o.Histograms {
		out.Histograms[k] = out.Histograms[k].Merge(v)
	}
	return out
}

// fullName renders a metric's map key: name alone, or name{labels}.
func fullName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Snapshot copies every registered metric's current value. Empty (but
// non-nil) maps on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	for _, f := range r.snapshotFamilies() {
		for _, ls := range f.order {
			m := f.metrics[ls]
			key := fullName(f.name, m.labels)
			switch f.kind {
			case kindCounter:
				s.Counters[key] = m.c.Value()
			case kindCounterFunc:
				s.Counters[key] = m.fn()
			case kindGauge:
				s.Gauges[key] = m.g.Value()
			case kindGaugeFunc:
				s.Gauges[key] = m.fn()
			case kindHistogram:
				s.Histograms[key] = m.h.Snapshot()
			}
		}
	}
	return s
}

// snapshotFamilies copies the family list (and each family's label
// order) under the registration lock, so iteration runs unlocked —
// value reads are atomic, and fn callbacks may take their own locks.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		cp := &family{name: f.name, help: f.help, kind: f.kind, metrics: f.metrics}
		cp.order = append([]string(nil), f.order...)
		out = append(out, cp)
	}
	return out
}

// SortedKeys returns a snapshot map's keys in sorted order — for
// deterministic rendering in tests and status dumps.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
