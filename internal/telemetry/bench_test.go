package telemetry

import (
	"sync/atomic"
	"testing"
)

// Overhead guard: the instrumented hot path vs the no-op (nil
// registry) hot path vs a bare atomic add. The deltas here are what
// every instrumented call site in wire/node/gateway pays per record;
// `make bench-guard` separately proves the end-to-end cost is in the
// noise. TestRecordingAllocFree asserts the zero-allocation property.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddNoop(b *testing.B) {
	var r *Registry
	c := r.Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 31)
	}
}

func BenchmarkHistogramObserveNoop(b *testing.B) {
	var r *Registry
	h := r.Histogram("bench_seconds", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 31)
	}
}

// BenchmarkBareAtomicAdd is the floor: what a counter add would cost
// with no abstraction at all.
func BenchmarkBareAtomicAdd(b *testing.B) {
	var v atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Add(1)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Observe(i * 31)
		}
	})
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for _, op := range []string{"store", "fetch", "delete", "stat"} {
		r.Counter("bench_ops_total", "ops", "op", op).Add(100)
		h := r.Histogram("bench_seconds", "latency", "op", op)
		for i := int64(0); i < 1000; i++ {
			h.Observe(i * 1000)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Snapshot()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, op := range []string{"store", "fetch", "delete", "stat"} {
		r.Counter("bench_ops_total", "ops", "op", op).Add(100)
		h := r.Histogram("bench_seconds", "latency", "op", op)
		for i := int64(0); i < 1000; i++ {
			h.Observe(i * 1000)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WritePrometheus(discard{}, r) //nolint:errcheck
	}
}
