package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromNameDeterministic(t *testing.T) {
	a := FromName("testImageFile_2")
	b := FromName("testImageFile_2")
	if a != b {
		t.Fatalf("FromName not deterministic: %s vs %s", a, b)
	}
	c := FromName("testImageFile_3")
	if a == c {
		t.Fatalf("distinct names hashed to same ID %s", a)
	}
}

func TestParseRoundTrip(t *testing.T) {
	id := FromName("hello")
	got, err := Parse(id.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", id.String(), err)
	}
	if got != id {
		t.Fatalf("round trip mismatch: %s vs %s", got, id)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("zz"); err == nil {
		t.Error("Parse accepted non-hex input")
	}
	if _, err := Parse("abcd"); err == nil {
		t.Error("Parse accepted short input")
	}
}

func TestCmp(t *testing.T) {
	a := FromUint64(5)
	b := FromUint64(9)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatalf("Cmp ordering wrong: a=%s b=%s", a, b)
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less inconsistent with Cmp")
	}
}

func TestDigit(t *testing.T) {
	var id ID
	id[0] = 0xAB
	id[1] = 0xCD
	want := []int{0xA, 0xB, 0xC, 0xD}
	for i, w := range want {
		if got := id.Digit(i); got != w {
			t.Errorf("Digit(%d) = %x, want %x", i, got, w)
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a, err := Parse("ab10000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("ab1f000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.CommonPrefixLen(b); got != 3 {
		t.Fatalf("CommonPrefixLen = %d, want 3", got)
	}
	if got := a.CommonPrefixLen(a); got != Digits {
		t.Fatalf("self prefix = %d, want %d", got, Digits)
	}
}

func TestAddSubIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := Random(rng), Random(rng)
		if got := a.Add(b).Sub(b); got != a {
			t.Fatalf("(a+b)-b != a for a=%s b=%s", a, b)
		}
	}
}

func TestSubWraparound(t *testing.T) {
	a := FromUint64(1)
	b := FromUint64(2)
	d := a.Sub(b) // -1 mod 2^160 = all 0xff
	for _, x := range d {
		if x != 0xff {
			t.Fatalf("1-2 mod 2^160 = %s, want all ff", d)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b := Random(rng), Random(rng)
		if a.Dist(b) != b.Dist(a) {
			t.Fatalf("Dist asymmetric for %s, %s", a, b)
		}
	}
}

func TestDistSmall(t *testing.T) {
	a := FromUint64(10)
	b := FromUint64(13)
	if got := a.Dist(b); got != FromUint64(3) {
		t.Fatalf("Dist = %s, want 3", got)
	}
	// distance across the wraparound point
	var maxID ID
	for i := range maxID {
		maxID[i] = 0xff
	}
	zero := FromUint64(0)
	if got := maxID.Dist(zero); got != FromUint64(1) {
		t.Fatalf("wraparound Dist = %s, want 1", got)
	}
}

func TestBetween(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	cases := []struct {
		x    uint64
		want bool
	}{
		{10, false}, // exclusive at a
		{11, true},
		{20, true}, // inclusive at b
		{21, false},
		{5, false},
	}
	for _, c := range cases {
		if got := Between(FromUint64(c.x), a, b); got != c.want {
			t.Errorf("Between(%d, 10, 20] = %v, want %v", c.x, got, c.want)
		}
	}
	// wraparound arc (20, 10]
	for _, c := range []struct {
		x    uint64
		want bool
	}{{25, true}, {5, true}, {10, true}, {15, false}, {20, false}} {
		if got := Between(FromUint64(c.x), b, a); got != c.want {
			t.Errorf("Between(%d, 20, 10] = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestBetweenFullRing(t *testing.T) {
	a := FromUint64(7)
	if !Between(FromUint64(3), a, a) {
		t.Error("degenerate arc (a, a] should cover the ring")
	}
}

// Property: for random x, a, b exactly one of "x in (a,b]" or
// "x in (b,a]" holds, unless x equals one of the endpoints or a == b.
func TestBetweenPartitionProperty(t *testing.T) {
	f := func(xs, as, bs string) bool {
		x, a, b := FromName(xs), FromName(as), FromName(bs)
		if a == b || x == a || x == b {
			return true
		}
		return Between(x, a, b) != Between(x, b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and Sub inverts it.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(as, bs string) bool {
		a, b := FromName(as), FromName(bs)
		return a.Add(b) == b.Add(a) && a.Add(b).Sub(a) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIsZero(t *testing.T) {
	var z ID
	if !z.IsZero() {
		t.Error("zero ID not recognised")
	}
	if FromUint64(1).IsZero() {
		t.Error("nonzero ID reported zero")
	}
}

func TestShortAndString(t *testing.T) {
	id := FromName("x")
	if len(id.String()) != 40 {
		t.Errorf("String length = %d, want 40", len(id.String()))
	}
	if len(id.Short()) != 8 {
		t.Errorf("Short length = %d, want 8", len(id.Short()))
	}
}

func BenchmarkFromName(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FromName("fileName_27_13")
	}
}

func BenchmarkDist(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := Random(rng), Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Dist(y)
	}
}
