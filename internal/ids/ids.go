// Package ids implements the 160-bit circular identifier space shared by
// Pastry nodeIds and PeerStripe block keys.
//
// Identifiers are SHA-1 digests (as in the paper, §4.1) interpreted as
// unsigned big-endian integers on a ring of size 2^160. The package
// provides the ring arithmetic Pastry needs: numeric distance with
// wraparound, clockwise/counter-clockwise ordering, and base-2^b digit
// extraction (b = 4, i.e. hex digits) for prefix routing.
package ids

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"math/rand"
)

// Bits is the width of an identifier in bits.
const Bits = 160

// Bytes is the width of an identifier in bytes.
const Bytes = Bits / 8

// DigitBits is Pastry's b parameter: identifiers are read as a sequence
// of base-2^b digits for prefix routing. b=4 gives hex digits, the
// configuration used by FreePastry and by the paper.
const DigitBits = 4

// Digits is the number of base-2^DigitBits digits in an identifier.
const Digits = Bits / DigitBits

// ID is a 160-bit identifier on the ring.
type ID [Bytes]byte

// FromName returns the identifier for a block or file name: the SHA-1
// hash of the name (paper §4.1, Figure 2).
func FromName(name string) ID {
	return ID(sha1.Sum([]byte(name)))
}

// FromUint64 returns an identifier whose low 64 bits are v and whose
// remaining bits are zero. Useful for constructing well-spaced test IDs.
func FromUint64(v uint64) ID {
	var id ID
	for i := 0; i < 8; i++ {
		id[Bytes-1-i] = byte(v >> (8 * i))
	}
	return id
}

// Random returns a uniformly random identifier drawn from rng.
// Node identifiers in the simulator are assigned this way, matching the
// paper's "random nodeId assignment".
func Random(rng *rand.Rand) ID {
	var id ID
	for i := range id {
		id[i] = byte(rng.Intn(256))
	}
	return id
}

// Parse parses a 40-character hex string into an ID.
func Parse(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("ids: parse %q: %w", s, err)
	}
	if len(b) != Bytes {
		return id, fmt.Errorf("ids: parse %q: need %d bytes, got %d", s, Bytes, len(b))
	}
	copy(id[:], b)
	return id, nil
}

// String returns the full lowercase hex representation.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated hex prefix for logs.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// Cmp compares a and b as unsigned big-endian integers:
// -1 if a < b, 0 if equal, +1 if a > b.
func (id ID) Cmp(b ID) int {
	for i := 0; i < Bytes; i++ {
		switch {
		case id[i] < b[i]:
			return -1
		case id[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether id < b numerically.
func (id ID) Less(b ID) bool { return id.Cmp(b) < 0 }

// Digit returns the i-th base-2^DigitBits digit of the identifier,
// counting from the most significant digit (i = 0).
func (id ID) Digit(i int) int {
	b := id[i/2]
	if i%2 == 0 {
		return int(b >> 4)
	}
	return int(b & 0x0f)
}

// CommonPrefixLen returns the number of leading base-2^DigitBits digits
// shared by a and b. This is the quantity Pastry prefix routing advances.
func (id ID) CommonPrefixLen(b ID) int {
	for i := 0; i < Digits; i++ {
		if id.Digit(i) != b.Digit(i) {
			return i
		}
	}
	return Digits
}

// Sub returns (id - b) mod 2^160: the clockwise distance from b to id.
func (id ID) Sub(b ID) ID {
	var out ID
	borrow := 0
	for i := Bytes - 1; i >= 0; i-- {
		d := int(id[i]) - int(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// Add returns (id + b) mod 2^160.
func (id ID) Add(b ID) ID {
	var out ID
	carry := 0
	for i := Bytes - 1; i >= 0; i-- {
		s := int(id[i]) + int(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Dist returns the minimal ring distance between a and b, i.e.
// min((a-b) mod 2^160, (b-a) mod 2^160). It is the metric Pastry uses to
// decide which node is "numerically closest" to a key.
func (id ID) Dist(b ID) ID {
	d1 := id.Sub(b)
	d2 := b.Sub(id)
	if d1.Cmp(d2) <= 0 {
		return d1
	}
	return d2
}

// Between reports whether x lies in the half-open clockwise arc (a, b].
// When a == b the arc covers the whole ring and Between reports x != a ||
// x == b (i.e. true: the single-node ring owns everything).
func Between(x, a, b ID) bool {
	ca, cb := a.Cmp(b), 0
	_ = cb
	if ca == 0 {
		return true
	}
	ax := a.Cmp(x)
	xb := x.Cmp(b)
	if ca < 0 { // no wraparound: a < b
		return ax < 0 && xb <= 0
	}
	// wraparound: arc covers (a, 2^160) ∪ [0, b]
	return ax < 0 || xb <= 0
}

// IsZero reports whether the identifier is all zeros.
func (id ID) IsZero() bool {
	for _, b := range id {
		if b != 0 {
			return false
		}
	}
	return true
}
