package multicast

import (
	"fmt"

	"peerstripe/internal/ids"
	"peerstripe/internal/pastry"
)

// ReplicaPlan describes a §4.4.1 replica-creation operation: instead of
// a primary node pushing k copies sequentially, the source builds a
// locality-aware tree over the k target nodes (the block's DHT owner
// and its k−1 identifier-space neighbors) and multicasts the block.
type ReplicaPlan struct {
	// Targets are the nodes that will hold replicas.
	Targets []*pastry.Node
	// Tree is the dissemination tree (source at the root).
	Tree *Tree
}

// PlanReplicas selects the replica set for a block key — its owner plus
// k−1 leaf-set neighbors — and builds the proximity tree from the
// source node (§4.4.1: "we determine k−1 of its neighbors in the
// identifier space and then leverage Bullet to construct an overlay
// tree").
func PlanReplicas(net *pastry.Network, source *pastry.Node, key ids.ID, k, fanout int) (*ReplicaPlan, error) {
	if k < 1 {
		return nil, fmt.Errorf("multicast: need k >= 1 replicas, got %d", k)
	}
	owner := net.Owner(key)
	if owner == nil {
		return nil, fmt.Errorf("multicast: empty overlay")
	}
	targets := []*pastry.Node{owner}
	for _, nb := range net.Neighbors(owner.ID, 2*(k-1)) {
		if len(targets) >= k {
			break
		}
		if nb.ID != source.ID {
			targets = append(targets, nb)
		}
	}
	if len(targets) < k {
		return nil, fmt.Errorf("multicast: overlay too small for %d replicas", k)
	}
	return &ReplicaPlan{
		Targets: targets,
		Tree:    ProximityTree(source, targets, fanout),
	}, nil
}

// ReplicateResult reports a completed dissemination.
type ReplicateResult struct {
	Epochs   int
	Replicas int
	Complete bool
}

// Run disseminates a block (divided into cfg.Packets packets) over the
// plan's tree and reports how long full replication took.
func (p *ReplicaPlan) Run(cfg Config, maxEpochs int) ReplicateResult {
	s := NewSim(p.Tree, cfg)
	epochs := s.Run(maxEpochs)
	return ReplicateResult{
		Epochs:   epochs,
		Replicas: len(p.Targets),
		Complete: s.Done(),
	}
}
