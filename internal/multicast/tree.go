// Package multicast implements the replica-dissemination machinery of
// §4.4.1 and §6.3: a locality-aware overlay tree built from Pastry's
// proximity information, the RanSub random-subset exchange (distribute
// and collect phases over epochs), and a Bullet-style dissemination
// simulator in which nodes receive packets from their tree parent and
// from RanSub-discovered peers.
package multicast

import (
	"fmt"

	"peerstripe/internal/pastry"
)

// TreeNode is one vertex of the dissemination tree.
type TreeNode struct {
	// Index is the node's position in Tree.Nodes.
	Index int
	// Coord is the node's proximity coordinate.
	Coord pastry.Coord
	// Parent is -1 for the root.
	Parent int
	// Children indexes this node's children.
	Children []int
	// Leaf marks a replica target (the R nodes of Figure 5).
	Leaf bool
}

// Tree is a rooted dissemination tree; node 0 is the source S.
type Tree struct {
	Nodes []*TreeNode
}

// Root returns the source node.
func (t *Tree) Root() *TreeNode { return t.Nodes[0] }

// Size returns the number of vertices.
func (t *Tree) Size() int { return len(t.Nodes) }

// Leaves returns the indices of replica targets.
func (t *Tree) Leaves() []int {
	var out []int
	for _, n := range t.Nodes {
		if n.Leaf {
			out = append(out, n.Index)
		}
	}
	return out
}

// Depth returns the depth of node i (root = 0).
func (t *Tree) Depth(i int) int {
	d := 0
	for t.Nodes[i].Parent >= 0 {
		i = t.Nodes[i].Parent
		d++
	}
	return d
}

// Validate checks tree invariants: single root, consistent parent and
// child links, all nodes reachable.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("multicast: empty tree")
	}
	if t.Nodes[0].Parent != -1 {
		return fmt.Errorf("multicast: node 0 is not the root")
	}
	seen := make([]bool, len(t.Nodes))
	stack := []int{0}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[i] {
			return fmt.Errorf("multicast: cycle at node %d", i)
		}
		seen[i] = true
		for _, c := range t.Nodes[i].Children {
			if t.Nodes[c].Parent != i {
				return fmt.Errorf("multicast: node %d child %d has parent %d", i, c, t.Nodes[c].Parent)
			}
			stack = append(stack, c)
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("multicast: node %d unreachable", i)
		}
	}
	return nil
}

// BinaryTree builds the §6.3 experimental topology: a complete binary
// tree of the given height with the source as root. A height of 5
// yields 63 nodes with 32 leaf replicas, the paper's setup.
func BinaryTree(height int) *Tree {
	n := (1 << (height + 1)) - 1
	t := &Tree{Nodes: make([]*TreeNode, n)}
	firstLeaf := (1 << height) - 1
	for i := 0; i < n; i++ {
		parent := (i - 1) / 2
		if i == 0 {
			parent = -1
		}
		t.Nodes[i] = &TreeNode{Index: i, Parent: parent, Leaf: i >= firstLeaf}
		if i > 0 {
			t.Nodes[parent].Children = append(t.Nodes[parent].Children, i)
		}
	}
	return t
}

// ProximityTree builds a locality-aware tree over the given overlay
// nodes with source as the root, per §4.4.1: each joining vertex walks
// down from the root, at every step following the proximity-closest
// child, and attaches at the first vertex with spare fanout. The greedy
// walk "does not guarantee that the overall tree follows the shortest
// path ... but it does provide strong locality at each step".
func ProximityTree(source *pastry.Node, replicas []*pastry.Node, fanout int) *Tree {
	if fanout < 1 {
		fanout = 2
	}
	t := &Tree{}
	t.Nodes = append(t.Nodes, &TreeNode{Index: 0, Coord: source.Coord, Parent: -1})
	for _, r := range replicas {
		cur := 0
		for {
			n := t.Nodes[cur]
			if len(n.Children) < fanout {
				break
			}
			// Follow the proximity-closest child.
			best, bestD := -1, 0.0
			for _, c := range n.Children {
				d := r.Coord.DistanceTo(t.Nodes[c].Coord)
				if best < 0 || d < bestD {
					best, bestD = c, d
				}
			}
			cur = best
		}
		idx := len(t.Nodes)
		t.Nodes = append(t.Nodes, &TreeNode{Index: idx, Coord: r.Coord, Parent: cur, Leaf: true})
		t.Nodes[cur].Children = append(t.Nodes[cur].Children, idx)
		// An interior vertex that gains children is no longer a leaf
		// replica-target-only node; keep Leaf on originals regardless —
		// every replica receives the data either way.
	}
	return t
}

// TotalEdgeLength sums the proximity length of all tree edges — the
// locality figure of merit for ProximityTree ablations.
func (t *Tree) TotalEdgeLength() float64 {
	var sum float64
	for _, n := range t.Nodes {
		if n.Parent >= 0 {
			sum += n.Coord.DistanceTo(t.Nodes[n.Parent].Coord)
		}
	}
	return sum
}
