package multicast

import (
	"math/rand"
	"testing"

	"peerstripe/internal/pastry"
)

func TestBinaryTreeShape(t *testing.T) {
	tr := BinaryTree(5)
	if tr.Size() != 63 {
		t.Fatalf("size = %d, want 63", tr.Size())
	}
	if got := len(tr.Leaves()); got != 32 {
		t.Fatalf("leaves = %d, want 32", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Depth(0) != 0 {
		t.Fatal("root depth nonzero")
	}
	for _, l := range tr.Leaves() {
		if tr.Depth(l) != 5 {
			t.Fatalf("leaf %d at depth %d", l, tr.Depth(l))
		}
	}
}

func TestBinaryTreeChildLinks(t *testing.T) {
	tr := BinaryTree(3)
	for _, n := range tr.Nodes {
		if n.Parent >= 0 {
			found := false
			for _, c := range tr.Nodes[n.Parent].Children {
				if c == n.Index {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d missing from parent %d child list", n.Index, n.Parent)
			}
		}
		if !n.Leaf && n.Index != 0 && len(n.Children) != 2 {
			t.Fatalf("interior node %d has %d children", n.Index, len(n.Children))
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := BinaryTree(2)
	tr.Nodes[3].Parent = 2 // break link consistency
	if tr.Validate() == nil {
		t.Fatal("corrupt tree validated")
	}
}

func TestProximityTree(t *testing.T) {
	net := pastry.NewNetwork(1)
	nodes := net.JoinRandom(40)
	tr := ProximityTree(nodes[0], nodes[1:33], 2)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 33 {
		t.Fatalf("size = %d, want 33", tr.Size())
	}
	if got := len(tr.Leaves()); got != 32 {
		t.Fatalf("leaf targets = %d, want 32", got)
	}
	for _, n := range tr.Nodes[1:] {
		if len(n.Children) > 2 {
			t.Fatalf("fanout violated at node %d", n.Index)
		}
	}
}

func TestProximityTreeIsMoreLocalThanRandom(t *testing.T) {
	net := pastry.NewNetwork(2)
	nodes := net.JoinRandom(60)
	prox := ProximityTree(nodes[0], nodes[1:], 2)

	// Random attachment baseline with the same fanout.
	rng := rand.New(rand.NewSource(3))
	rnd := &Tree{}
	rnd.Nodes = append(rnd.Nodes, &TreeNode{Index: 0, Coord: nodes[0].Coord, Parent: -1})
	for _, r := range nodes[1:] {
		cur := 0
		for len(rnd.Nodes[cur].Children) >= 2 {
			cur = rnd.Nodes[cur].Children[rng.Intn(len(rnd.Nodes[cur].Children))]
		}
		idx := len(rnd.Nodes)
		rnd.Nodes = append(rnd.Nodes, &TreeNode{Index: idx, Coord: r.Coord, Parent: cur, Leaf: true})
		rnd.Nodes[cur].Children = append(rnd.Nodes[cur].Children, idx)
	}
	if prox.TotalEdgeLength() >= rnd.TotalEdgeLength() {
		t.Fatalf("proximity tree (%.2f) not shorter than random (%.2f)",
			prox.TotalEdgeLength(), rnd.TotalEdgeLength())
	}
}

func TestPacketSet(t *testing.T) {
	s := newPacketSet(100)
	if s.has(5) {
		t.Fatal("fresh set has packet")
	}
	if !s.add(5) || s.add(5) {
		t.Fatal("add semantics wrong")
	}
	if s.count != 1 {
		t.Fatalf("count = %d", s.count)
	}
	s.fill()
	if s.count != 100 {
		t.Fatalf("fill count = %d", s.count)
	}
}

func TestMissingFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := newPacketSet(50)
	dst := newPacketSet(50)
	src.fill()
	got := missingFrom(dst, src, 10, rng)
	if len(got) != 10 {
		t.Fatalf("limit not honoured: %d", len(got))
	}
	dst.fill()
	if missingFrom(dst, src, 10, rng) != nil {
		t.Fatal("nothing should be missing")
	}
}

func TestSimSourceStartsFull(t *testing.T) {
	s := NewSim(BinaryTree(3), DefaultConfig())
	if s.Have(0) != 1000 {
		t.Fatalf("source has %d packets", s.Have(0))
	}
	if s.Have(1) != 0 {
		t.Fatal("non-source starts with packets")
	}
}

func TestSimDisseminatesToAllLeaves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 200 // keep the test fast
	s := NewSim(BinaryTree(5), cfg)
	epochs := s.Run(5000)
	if !s.Done() {
		t.Fatalf("dissemination incomplete after %d epochs", epochs)
	}
	min, max := s.MinMaxPackets()
	if min != cfg.Packets || max != cfg.Packets {
		// All vertices (not just leaves) eventually saturate in this
		// topology; leaves are the requirement.
		for _, l := range s.Tree.Leaves() {
			if s.Have(l) != cfg.Packets {
				t.Fatalf("leaf %d has %d packets", l, s.Have(l))
			}
		}
	}
	if s.AvgPackets() <= 0 {
		t.Fatal("avg not positive")
	}
}

func TestLargerRanSubIsFaster(t *testing.T) {
	// The Figure 11 effect: a 16% RanSub set saturates the tree in
	// fewer epochs than a 3% set.
	run := func(frac float64) int {
		cfg := DefaultConfig()
		cfg.Packets = 300
		cfg.RanSubFrac = frac
		cfg.Seed = 7
		s := NewSim(BinaryTree(5), cfg)
		return s.Run(20000)
	}
	small := run(0.03)
	large := run(0.16)
	if large >= small {
		t.Fatalf("RanSub 16%% (%d epochs) not faster than 3%% (%d epochs)", large, small)
	}
}

func TestMonotoneProgress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 100
	s := NewSim(BinaryTree(4), cfg)
	prev := s.AvgPackets()
	for i := 0; i < 50; i++ {
		s.Step()
		cur := s.AvgPackets()
		if cur < prev {
			t.Fatal("average packets decreased")
		}
		prev = cur
	}
	if s.Epoch() != 50 {
		t.Fatalf("epoch = %d", s.Epoch())
	}
}

func TestRanSubSizeFloor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RanSubFrac = 0.001
	s := NewSim(BinaryTree(2), cfg)
	if s.ranSubSize() != 1 {
		t.Fatalf("ranSubSize = %d, want floor of 1", s.ranSubSize())
	}
}
