package multicast

import (
	"math/rand"
	"sort"
)

// packetSet is a fixed-size bitset over packet indices.
type packetSet struct {
	bits  []uint64
	count int
	n     int
}

func newPacketSet(n int) *packetSet {
	return &packetSet{bits: make([]uint64, (n+63)/64), n: n}
}

func (s *packetSet) has(i int) bool { return s.bits[i/64]&(1<<(i%64)) != 0 }

func (s *packetSet) add(i int) bool {
	if s.has(i) {
		return false
	}
	s.bits[i/64] |= 1 << (i % 64)
	s.count++
	return true
}

func (s *packetSet) fill() {
	for i := 0; i < s.n; i++ {
		s.add(i)
	}
}

// missingFrom returns up to limit packet indices that src has and dst
// lacks, scanning from a random rotation so repeated transfers pick
// diverse packets (Bullet's partially overlapping subsets).
func missingFrom(dst, src *packetSet, limit int, rng *rand.Rand) []int {
	if limit <= 0 || src.count == 0 {
		return nil
	}
	var out []int
	start := rng.Intn(dst.n)
	for k := 0; k < dst.n && len(out) < limit; k++ {
		i := (start + k) % dst.n
		if src.has(i) && !dst.has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Config parameterises a Bullet dissemination run.
type Config struct {
	// Packets is the number of packets the chunk is divided into;
	// §6.3 uses 1000.
	Packets int
	// ParentBW is the packets per epoch a vertex receives from its
	// tree parent during the distribute phase.
	ParentBW int
	// PeerBW is the packets per epoch a vertex can pull from RanSub
	// peers (Bullet's sibling/mesh transfers).
	PeerBW int
	// RanSubFrac is the RanSub set size as a fraction of tree size —
	// the swept parameter of Figure 11 (3%–16%).
	RanSubFrac float64
	// ServeCap is the maximum number of peer pulls a vertex can serve
	// per epoch (sender-side bandwidth). Contention for hot peers is
	// what makes small RanSub views slow: a vertex that only knows one
	// or two peers often finds them already saturated, while a larger
	// view almost always contains an uncontended useful peer.
	ServeCap int
	// Protocol selects the real RanSub collect/distribute protocol for
	// view construction instead of idealized uniform sampling. The two
	// agree statistically (see TestProtocolViewsNearUniform); the
	// protocol path exercises the §2.3 message structure.
	Protocol bool
	// Seed drives packet and peer selection.
	Seed int64
}

// DefaultConfig returns the §6.3 setup for a 63-node tree.
func DefaultConfig() Config {
	return Config{Packets: 1000, ParentBW: 2, PeerBW: 2, RanSubFrac: 0.08, ServeCap: 1, Seed: 1}
}

// Sim runs epoch-based Bullet dissemination over a tree.
//
// Each epoch models one RanSub epoch (§2.3): the distribute phase
// pushes data down tree edges (parent to child) and delivers each
// vertex a fresh uniform random subset of the membership together with
// those members' packet summaries — the net effect of RanSub's
// distribute/collect message pattern; the vertex then pulls missing
// packets from the most useful peer in its subset.
type Sim struct {
	Tree *Tree
	Cfg  Config

	rng    *rand.Rand
	have   []*packetSet
	views  [][]int // previous epoch's RanSub sample per node (stale by one epoch, as collected state is)
	ransub *RanSub // non-nil when Cfg.Protocol
	epoch  int
}

// NewSim prepares a dissemination run: the source holds all packets,
// everyone else none.
func NewSim(t *Tree, cfg Config) *Sim {
	s := &Sim{
		Tree: t,
		Cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		have: make([]*packetSet, t.Size()),
	}
	for i := range s.have {
		s.have[i] = newPacketSet(cfg.Packets)
	}
	s.have[0].fill()
	s.views = make([][]int, t.Size())
	if cfg.Protocol {
		s.ransub = NewRanSub(t, s.ranSubSize(), s.rng)
	}
	return s
}

// ranSubSize returns the per-node sample size implied by RanSubFrac.
func (s *Sim) ranSubSize() int {
	k := int(s.Cfg.RanSubFrac * float64(s.Tree.Size()))
	if k < 1 {
		k = 1
	}
	return k
}

// sample draws a uniform random subset of vertices excluding self.
func (s *Sim) sample(self, k int) []int {
	out := make([]int, 0, k)
	for len(out) < k {
		v := s.rng.Intn(s.Tree.Size())
		if v == self {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Step advances one epoch and returns the number of packets transferred.
func (s *Sim) Step() int {
	transferred := 0
	// Distribute phase: parents push down tree edges.
	for _, n := range s.Tree.Nodes {
		if n.Parent < 0 {
			continue
		}
		for _, p := range missingFrom(s.have[n.Index], s.have[n.Parent], s.Cfg.ParentBW, s.rng) {
			if s.have[n.Index].add(p) {
				transferred++
			}
		}
	}
	// Mesh phase: each vertex tries its RanSub view's peers in order of
	// usefulness, but a peer serves at most ServeCap pulls per epoch
	// (sender-side bandwidth). Small views lose twice: they may hold no
	// peer with novel packets, and the useful peers they do hold are
	// often already saturated by other requesters — the Figure 11
	// effect.
	serveCap := s.Cfg.ServeCap
	if serveCap < 1 {
		serveCap = 1
	}
	served := make([]int, s.Tree.Size())
	order := s.rng.Perm(s.Tree.Size())
	for _, ni := range order {
		n := s.Tree.Nodes[ni]
		view := s.views[n.Index]
		if len(view) == 0 {
			continue
		}
		// Rank view peers by how many novel packets they offer.
		type cand struct{ peer, novel int }
		cands := make([]cand, 0, len(view))
		for _, v := range view {
			novel := len(missingFrom(s.have[n.Index], s.have[v], s.Cfg.PeerBW, s.rng))
			if novel > 0 {
				cands = append(cands, cand{v, novel})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].novel > cands[j].novel })
		for _, cd := range cands {
			if served[cd.peer] >= serveCap {
				continue // peer saturated this epoch
			}
			served[cd.peer]++
			for _, p := range missingFrom(s.have[n.Index], s.have[cd.peer], s.Cfg.PeerBW, s.rng) {
				if s.have[n.Index].add(p) {
					transferred++
				}
			}
			break
		}
	}
	// Collect/distribute exchange completes: refresh every vertex's
	// RanSub view for the next epoch.
	if s.ransub != nil {
		s.views = s.ransub.Epoch()
	} else {
		k := s.ranSubSize()
		for i := range s.views {
			s.views[i] = s.sample(i, k)
		}
	}
	s.epoch++
	return transferred
}

// Epoch returns the number of completed epochs.
func (s *Sim) Epoch() int { return s.epoch }

// Have returns how many packets vertex i holds.
func (s *Sim) Have(i int) int { return s.have[i].count }

// AvgPackets returns the mean packets held across all vertices.
func (s *Sim) AvgPackets() float64 {
	sum := 0
	for _, h := range s.have {
		sum += h.count
	}
	return float64(sum) / float64(len(s.have))
}

// MinMaxPackets returns the extremes across all vertices.
func (s *Sim) MinMaxPackets() (min, max int) {
	min, max = s.have[0].count, s.have[0].count
	for _, h := range s.have[1:] {
		if h.count < min {
			min = h.count
		}
		if h.count > max {
			max = h.count
		}
	}
	return min, max
}

// ReceiverStats returns min/avg/max packets over the receiving vertices
// (everything but the source, which holds all packets by definition) —
// the per-node quantities Figures 11 and 12 plot.
func (s *Sim) ReceiverStats() (min int, avg float64, max int) {
	if len(s.have) < 2 {
		return 0, 0, 0
	}
	min, max = s.have[1].count, s.have[1].count
	sum := 0
	for _, h := range s.have[1:] {
		sum += h.count
		if h.count < min {
			min = h.count
		}
		if h.count > max {
			max = h.count
		}
	}
	return min, float64(sum) / float64(len(s.have)-1), max
}

// Done reports whether every replica leaf holds every packet.
func (s *Sim) Done() bool {
	for _, li := range s.Tree.Leaves() {
		if s.have[li].count < s.Cfg.Packets {
			return false
		}
	}
	return true
}

// Run steps until Done or maxEpochs, returning epochs taken.
func (s *Sim) Run(maxEpochs int) int {
	for e := 0; e < maxEpochs; e++ {
		if s.Done() {
			return s.epoch
		}
		s.Step()
	}
	return s.epoch
}
