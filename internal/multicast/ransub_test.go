package multicast

import (
	"math"
	"math/rand"
	"testing"
)

func TestRanSubViewShape(t *testing.T) {
	tr := BinaryTree(4) // 31 nodes
	rs := NewRanSub(tr, 5, rand.New(rand.NewSource(1)))
	views := rs.Epoch()
	if len(views) != tr.Size() {
		t.Fatalf("views = %d", len(views))
	}
	for u, view := range views {
		if len(view) == 0 || len(view) > 5 {
			t.Fatalf("node %d view size %d", u, len(view))
		}
		for _, v := range view {
			if v == u {
				t.Fatalf("node %d sampled itself", u)
			}
			if v < 0 || v >= tr.Size() {
				t.Fatalf("node %d sampled out-of-range %d", u, v)
			}
		}
	}
}

// TestProtocolViewsNearUniform verifies the RanSub protocol produces
// views statistically close to uniform sampling: over many epochs,
// every vertex appears in others' views with similar frequency.
func TestProtocolViewsNearUniform(t *testing.T) {
	tr := BinaryTree(4) // 31 nodes
	rs := NewRanSub(tr, 6, rand.New(rand.NewSource(2)))
	appear := make([]int, tr.Size())
	total := 0
	for epoch := 0; epoch < 3000; epoch++ {
		for _, view := range rs.Epoch() {
			for _, v := range view {
				appear[v]++
				total++
			}
		}
	}
	mean := float64(total) / float64(tr.Size())
	for u, n := range appear {
		ratio := float64(n) / mean
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("node %d appears at %.2fx the mean rate (depth %d)", u, ratio, tr.Depth(u))
		}
	}
	// Coefficient of variation should be modest for a sound protocol.
	var sq float64
	for _, n := range appear {
		d := float64(n) - mean
		sq += d * d
	}
	cv := math.Sqrt(sq/float64(tr.Size())) / mean
	if cv > 0.35 {
		t.Errorf("appearance CV = %.3f, protocol views far from uniform", cv)
	}
}

func TestSimWithProtocolCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 200
	cfg.Protocol = true
	s := NewSim(BinaryTree(5), cfg)
	epochs := s.Run(20000)
	if !s.Done() {
		t.Fatalf("protocol-driven dissemination incomplete after %d epochs", epochs)
	}
}

func TestProtocolAndIdealizedAgree(t *testing.T) {
	// Completion epochs under protocol views should be within 2x of
	// idealized uniform sampling — they model the same thing.
	run := func(protocol bool) int {
		cfg := DefaultConfig()
		cfg.Packets = 300
		cfg.Protocol = protocol
		cfg.Seed = 3
		s := NewSim(BinaryTree(5), cfg)
		return s.Run(30000)
	}
	ideal := run(false)
	proto := run(true)
	lo, hi := ideal/2, ideal*2
	if proto < lo || proto > hi {
		t.Fatalf("protocol completion %d epochs vs idealized %d — disagreement beyond 2x", proto, ideal)
	}
}

func TestRanSubSingleNodeTree(t *testing.T) {
	tr := &Tree{Nodes: []*TreeNode{{Index: 0, Parent: -1}}}
	rs := NewRanSub(tr, 3, rand.New(rand.NewSource(4)))
	views := rs.Epoch()
	if len(views[0]) != 0 {
		t.Fatalf("single node has a non-empty view: %v", views[0])
	}
}
