package multicast

import (
	"testing"

	"peerstripe/internal/ids"
	"peerstripe/internal/pastry"
)

func TestPlanReplicas(t *testing.T) {
	net := pastry.NewNetwork(21)
	nodes := net.JoinRandom(100)
	source := nodes[0]
	key := ids.FromName("file_0_1")

	plan, err := PlanReplicas(net, source, key, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Targets) != 3 {
		t.Fatalf("targets = %d", len(plan.Targets))
	}
	// The block's owner must be among the targets.
	owner := net.Owner(key)
	if plan.Targets[0].ID != owner.ID {
		t.Fatal("owner not the primary target")
	}
	// Remaining targets are identifier-space neighbors of the owner.
	nb := map[ids.ID]bool{}
	for _, n := range net.Neighbors(owner.ID, 8) {
		nb[n.ID] = true
	}
	for _, tgt := range plan.Targets[1:] {
		if !nb[tgt.ID] {
			t.Fatalf("target %s is not an owner neighbor", tgt.ID.Short())
		}
	}
	if err := plan.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanReplicasErrors(t *testing.T) {
	net := pastry.NewNetwork(22)
	nodes := net.JoinRandom(2)
	if _, err := PlanReplicas(net, nodes[0], ids.FromName("k"), 0, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PlanReplicas(net, nodes[0], ids.FromName("k"), 10, 2); err == nil {
		t.Error("k larger than overlay accepted")
	}
	empty := pastry.NewNetwork(23)
	if _, err := PlanReplicas(empty, nodes[0], ids.FromName("k"), 1, 2); err == nil {
		t.Error("empty overlay accepted")
	}
}

func TestReplicaPlanRunCompletes(t *testing.T) {
	net := pastry.NewNetwork(24)
	nodes := net.JoinRandom(80)
	plan, err := PlanReplicas(net, nodes[0], ids.FromName("file_3_0"), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Packets = 200
	res := plan.Run(cfg, 10000)
	if !res.Complete {
		t.Fatalf("replication incomplete after %d epochs", res.Epochs)
	}
	if res.Replicas != 3 {
		t.Fatalf("replicas = %d", res.Replicas)
	}
	if res.Epochs <= 0 {
		t.Fatal("no epochs recorded")
	}
}

func TestReceiverStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Packets = 50
	s := NewSim(BinaryTree(2), cfg)
	min, avg, max := s.ReceiverStats()
	if min != 0 || avg != 0 || max != 0 {
		t.Fatalf("fresh receivers should hold nothing: %d/%.0f/%d", min, avg, max)
	}
	s.Run(5000)
	min, avg, max = s.ReceiverStats()
	if min != 50 || max != 50 || avg != 50 {
		t.Fatalf("after completion: %d/%.0f/%d", min, avg, max)
	}
}
