package multicast

import (
	"math/rand"
)

// RanSub implements the collect/distribute epoch protocol of Kostić et
// al. as the paper describes it (§2.3): "The distribute phase sends
// messages down the tree ... These messages consist of the RanSubs of
// the sending node, the parent of the sending node, and the RanSubs of
// the other children of the sending node. The collect phase sends
// messages up the tree ... compact[ing] each node's RanSub into a
// smaller subset." The net effect is that every vertex ends each epoch
// holding a bounded,near-uniform random subset of the whole membership
// without any global view.
//
// The dissemination simulator (Sim) can run either on idealized uniform
// samples (Config.Protocol = false, the default used for the Figure 11
// sweep) or on views produced by this protocol (Config.Protocol =
// true); tests verify the two agree statistically.
type RanSub struct {
	tree *Tree
	k    int
	rng  *rand.Rand

	subSize  []int   // subtree sizes (static for a fixed tree)
	order    []int   // preorder: parents before children
	collect  [][]int // per-vertex collect sample of its subtree
	views    [][]int
	lastDist [][]int // distribute message received per vertex
}

// NewRanSub prepares the protocol over a tree with per-view size k.
func NewRanSub(t *Tree, k int, rng *rand.Rand) *RanSub {
	r := &RanSub{tree: t, k: k, rng: rng}
	n := t.Size()
	r.subSize = make([]int, n)
	r.collect = make([][]int, n)
	r.views = make([][]int, n)
	r.lastDist = make([][]int, n)
	// Preorder via DFS from the root.
	r.order = make([]int, 0, n)
	var dfs func(i int)
	var size func(i int) int
	dfs = func(i int) {
		r.order = append(r.order, i)
		for _, c := range t.Nodes[i].Children {
			dfs(c)
		}
	}
	size = func(i int) int {
		s := 1
		for _, c := range t.Nodes[i].Children {
			s += size(c)
		}
		r.subSize[i] = s
		return s
	}
	dfs(0)
	size(0)
	return r
}

// pool is a weighted candidate set for sampling: members drawn from it
// stand in for weight underlying vertices.
type pool struct {
	members []int
	weight  int
}

// sampleFromPools draws k members, picking a pool with probability
// proportional to its weight and then a uniform member of that pool —
// the compaction step RanSub applies at every hop.
func (r *RanSub) sampleFromPools(pools []pool, k int) []int {
	total := 0
	for _, p := range pools {
		if len(p.members) > 0 {
			total += p.weight
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]int, 0, k)
	for len(out) < k {
		w := r.rng.Intn(total)
		for _, p := range pools {
			if len(p.members) == 0 {
				continue
			}
			if w < p.weight {
				out = append(out, p.members[r.rng.Intn(len(p.members))])
				break
			}
			w -= p.weight
		}
	}
	return out
}

// Epoch runs one collect + distribute round and returns each vertex's
// view: a k-element random subset of the membership excluding itself
// (approximately uniform; duplicates possible, as in the protocol).
func (r *RanSub) Epoch() [][]int {
	t := r.tree
	// Collect phase (children before parents): S_u samples u's subtree.
	for i := len(r.order) - 1; i >= 0; i-- {
		u := r.order[i]
		pools := []pool{{members: []int{u}, weight: 1}}
		for _, c := range t.Nodes[u].Children {
			pools = append(pools, pool{members: r.collect[c], weight: r.subSize[c]})
		}
		r.collect[u] = r.sampleFromPools(pools, r.k)
	}
	// Distribute phase (parents before children): the message to child
	// c samples the sender, the sender's incoming message (standing in
	// for everything above), and the collect sets of c's siblings.
	n := t.Size()
	for _, u := range r.order {
		node := t.Nodes[u]
		incoming := r.lastDist[u] // nil at the root
		aboveWeight := n - r.subSize[u]
		for _, c := range node.Children {
			pools := []pool{{members: []int{u}, weight: 1}}
			if len(incoming) > 0 {
				pools = append(pools, pool{members: incoming, weight: aboveWeight})
			}
			for _, sib := range node.Children {
				if sib != c {
					pools = append(pools, pool{members: r.collect[sib], weight: r.subSize[sib]})
				}
			}
			r.lastDist[c] = r.sampleFromPools(pools, r.k)
		}
	}
	// Final views: blend the received message (non-descendants) with
	// the vertex's own collect information (descendants), weighted by
	// the populations each represents, and drop self.
	for _, u := range r.order {
		pools := []pool{}
		if len(r.lastDist[u]) > 0 {
			pools = append(pools, pool{members: r.lastDist[u], weight: n - r.subSize[u]})
		}
		for _, c := range t.Nodes[u].Children {
			pools = append(pools, pool{members: r.collect[c], weight: r.subSize[c]})
		}
		view := r.sampleFromPools(pools, r.k)
		// Self can slip in via sibling samples one epoch stale; filter.
		filtered := view[:0]
		for _, v := range view {
			if v != u {
				filtered = append(filtered, v)
			}
		}
		r.views[u] = filtered
	}
	out := make([][]int, n)
	copy(out, r.views)
	return out
}
