package peerstripe_test

import (
	"context"
	"io"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"peerstripe"
	"peerstripe/internal/wire"
)

// heapSampler polls HeapAlloc every 2ms until stopped, tracking the
// peak — a whole-file buffer shows up no matter when it is allocated.
type heapSampler struct {
	base uint64
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func startHeapSampler() *heapSampler {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	hs := &heapSampler{base: base.HeapAlloc, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hs.done)
		var ms runtime.MemStats
		for {
			select {
			case <-hs.stop:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				for {
					p := hs.peak.Load()
					if ms.HeapAlloc <= p || hs.peak.CompareAndSwap(p, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()
	return hs
}

// growth stops the sampler and returns the peak heap growth in bytes.
func (hs *heapSampler) growth() int64 {
	close(hs.stop)
	<-hs.done
	return int64(hs.peak.Load()) - int64(hs.base)
}

// TestStoreBoundedMemoryAtFourFrames is the acceptance test for the
// streaming store: a file of 4× wire.MaxFrame (256 MiB) goes through
// Store from a generated io.Reader while the peak heap stays a small
// multiple of the chunk size — far below the file size — proving the
// client never buffers the file, and the transfer demonstrably rides
// the segment stream (server counters). The in-process servers run in
// discard mode so their copy of the data does not pollute the
// client-side heap measurement.
func TestStoreBoundedMemoryAtFourFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("256 MiB streaming store; skipped with -short")
	}
	if raceEnabled {
		t.Skip("heap accounting distorted under the race detector")
	}

	const (
		fileSize = 4 * int64(wire.MaxFrame) // 256 MiB: ≥ 4× a frame
		chunkCap = 8 << 20                  // 12 MiB of encoded blocks per chunk at (2,3)
		segment  = 1 << 20                  // 4 MiB blocks stream in 4 segments
		heapCap  = 128 << 20                // fail if peak heap grows by ≥ half the file
	)

	servers, seed := testRing(t, 3, 2*fileSize)
	for _, s := range servers {
		s.SetDiscard(true)
	}
	c := dialTest(t, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(chunkCap),
		peerstripe.WithSegment(segment))

	hs := startHeapSampler()
	src := io.LimitReader(rand.New(rand.NewSource(11)), fileSize)
	info, err := c.Store(context.Background(), "bigstream.dat", src, fileSize)
	growth := hs.growth()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != fileSize {
		t.Fatalf("stored %d of %d bytes", info.Size, fileSize)
	}

	if ops := totalStreamOps(servers) + totalWindowOps(servers); ops < 100 {
		t.Fatalf("only %d streaming segment ops served — the store did not stream", ops)
	}
	if growth > heapCap {
		t.Fatalf("peak heap grew %d MiB during a %d MiB store (cap %d MiB) — the file is being buffered",
			growth>>20, fileSize>>20, int64(heapCap)>>20)
	}
	t.Logf("peak heap growth %d MiB for a %d MiB streamed store (%d stream + %d windowed ops)",
		growth>>20, fileSize>>20, totalStreamOps(servers), totalWindowOps(servers))
}

// TestWindowedStoreBoundedMemory is the bounded-memory proof for the
// windowed pipeline: with the window and pipeline depth pinned
// explicitly, the peak heap during a 128 MiB streamed store must stay
// a small multiple of pipelineDepth×chunk + window×segment — not
// O(file) — while the transfer demonstrably rides the windowed
// exchange (WindowOps counters, not just the in-order stream).
func TestWindowedStoreBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("128 MiB streaming store; skipped with -short")
	}
	if raceEnabled {
		t.Skip("heap accounting distorted under the race detector")
	}

	const (
		fileSize = int64(128 << 20)
		chunkCap = 8 << 20 // 12 MiB of encoded blocks per chunk at (2,3)
		segment  = 1 << 20 // 4 MiB blocks stream in 4 windowed segments
		// Two chunks in flight (≈ 40 MiB of chunk + encoded blocks)
		// plus windows, scratch, and GC lag (observed 57–68 MiB). A
		// regression to whole-file buffering adds the full 128 MiB on
		// top and trips this with room to spare.
		heapCap = 96 << 20
	)

	servers, seed := testRing(t, 3, 2*fileSize)
	for _, s := range servers {
		s.SetDiscard(true)
	}
	c := dialTest(t, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(chunkCap),
		peerstripe.WithSegment(segment),
		peerstripe.WithStreamWindow(4),
		peerstripe.WithPipelineDepth(2))

	hs := startHeapSampler()
	src := io.LimitReader(rand.New(rand.NewSource(12)), fileSize)
	info, err := c.Store(context.Background(), "winstream.dat", src, fileSize)
	growth := hs.growth()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != fileSize {
		t.Fatalf("stored %d of %d bytes", info.Size, fileSize)
	}

	if ops := totalWindowOps(servers); ops < 100 {
		t.Fatalf("only %d windowed segment ops served — the store did not use the windowed exchange", ops)
	}
	if growth > heapCap {
		t.Fatalf("peak heap grew %d MiB during a %d MiB windowed store (cap %d MiB) — memory is not window-bounded",
			growth>>20, fileSize>>20, int64(heapCap)>>20)
	}
	t.Logf("peak heap growth %d MiB for a %d MiB windowed store (%d windowed ops)",
		growth>>20, fileSize>>20, totalWindowOps(servers))
}
