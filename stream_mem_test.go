package peerstripe_test

import (
	"context"
	"io"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"peerstripe"
	"peerstripe/internal/wire"
)

// TestStoreBoundedMemoryAtFourFrames is the acceptance test for the
// streaming store: a file of 4× wire.MaxFrame (256 MiB) goes through
// Store from a generated io.Reader while the peak heap stays a small
// multiple of the chunk size — far below the file size — proving the
// client never buffers the file, and the transfer demonstrably rides
// OpStoreStream (server counters). The in-process servers run in
// discard mode so their copy of the data does not pollute the
// client-side heap measurement.
func TestStoreBoundedMemoryAtFourFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("256 MiB streaming store; skipped with -short")
	}
	if raceEnabled {
		t.Skip("heap accounting distorted under the race detector")
	}

	const (
		fileSize = 4 * int64(wire.MaxFrame) // 256 MiB: ≥ 4× a frame
		chunkCap = 8 << 20                  // 12 MiB of encoded blocks per chunk at (2,3)
		segment  = 1 << 20                  // 4 MiB blocks stream in 4 segments
		heapCap  = 128 << 20                // fail if peak heap grows by ≥ half the file
	)

	servers, seed := testRing(t, 3, 2*fileSize)
	for _, s := range servers {
		s.SetDiscard(true)
	}
	c := dialTest(t, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(chunkCap),
		peerstripe.WithSegment(segment))

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	// Sample the heap while the store runs; HeapAlloc tracking catches
	// a whole-file buffer no matter when it would be allocated.
	var peak atomic.Uint64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var ms runtime.MemStats
		for {
			select {
			case <-stopSampler:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				for {
					p := peak.Load()
					if ms.HeapAlloc <= p || peak.CompareAndSwap(p, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()

	src := io.LimitReader(rand.New(rand.NewSource(11)), fileSize)
	info, err := c.Store(context.Background(), "bigstream.dat", src, fileSize)
	close(stopSampler)
	<-samplerDone
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != fileSize {
		t.Fatalf("stored %d of %d bytes", info.Size, fileSize)
	}

	if ops := totalStreamOps(servers); ops < 100 {
		t.Fatalf("only %d streaming segment ops served — the store did not stream", ops)
	}
	growth := int64(peak.Load()) - int64(base.HeapAlloc)
	if growth > heapCap {
		t.Fatalf("peak heap grew %d MiB during a %d MiB store (cap %d MiB) — the file is being buffered",
			growth>>20, fileSize>>20, int64(heapCap)>>20)
	}
	t.Logf("peak heap growth %d MiB for a %d MiB streamed store (%d stream ops)",
		growth>>20, fileSize>>20, totalStreamOps(servers))
}
