// livecluster runs the real implementation end-to-end in one process
// through the public API: eight TCP storage nodes form a ring and a
// client streams in a file far larger than any single wire frame —
// blocks move as bounded OpStoreStream/OpFetchStream segments, the
// client never holds more than a chunk in memory — then reads it back
// through the io.Reader surface, verifies every byte by hash, and
// prints the per-node storage spread (§5, actual bytes over actual
// multiplexed sockets).
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"math/rand"
	"time"

	"peerstripe"
)

const fileSize = 64 << 20 // streams through; never buffered whole

func main() {
	ctx := context.Background()

	// 1. Form a ring of 8 nodes, 48 MB contribution each.
	var nodes []*peerstripe.Node
	seed := ""
	for i := 0; i < 8; i++ {
		n, err := peerstripe.ListenAndServe("127.0.0.1:0", 48<<20, seed, "")
		if err != nil {
			log.Fatal(err)
		}
		if seed == "" {
			seed = n.Addr()
		}
		nodes = append(nodes, n)
		defer n.Close()
	}
	fmt.Printf("ring of %d nodes, seed %s\n", len(nodes), seed)

	// 2. Dial with an aggressive streaming configuration: 8 MB chunks,
	// 1 MB wire segments — every 4 MB encoded block crosses the
	// segment bound and streams.
	client, err := peerstripe.Dial(ctx, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(8<<20),
		peerstripe.WithSegment(1<<20),
		peerstripe.WithHedgeDelay(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// 3. Stream 64 MB in from a generated source, hashing on the way.
	src := io.LimitReader(rand.New(rand.NewSource(7)), fileSize)
	inHash := sha256.New()
	start := time.Now()
	info, err := client.Store(ctx, "stream.dat", io.TeeReader(src, inHash), fileSize)
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	fmt.Printf("streamed in %s: %d bytes, %d chunks, %v (%.1f MB/s)\n",
		info.Name, info.Size, info.Chunks, el.Round(time.Millisecond),
		float64(info.Size)/1e6/el.Seconds())

	// 4. Stream it back out through the io.Reader surface and compare
	// content hashes — again without buffering the file.
	f, err := client.Open(ctx, "stream.dat")
	if err != nil {
		log.Fatal(err)
	}
	outHash := sha256.New()
	start = time.Now()
	n, err := io.Copy(outHash, f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	el = time.Since(start)
	fmt.Printf("streamed out %d bytes in %v (%.1f MB/s), hash match: %v\n",
		n, el.Round(time.Millisecond), float64(n)/1e6/el.Seconds(),
		bytes.Equal(inHash.Sum(nil), outHash.Sum(nil)))

	// 5. The storage spread: every node carries a share of the stripe.
	for _, addr := range client.Nodes() {
		st, err := client.StatNode(ctx, addr)
		if err != nil {
			fmt.Printf("%-21s unreachable: %v\n", addr, err)
			continue
		}
		fmt.Printf("%-21s used %5.1f MB in %d blocks\n", st.Addr, float64(st.Used)/1e6, st.Blocks)
	}
}
