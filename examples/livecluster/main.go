// livecluster runs the real implementation end-to-end in one process:
// eight TCP storage nodes form a ring, a client stores an erasure-coded
// file through batched capacity probes with parallel block fan-out,
// reads a range back, survives a node being killed mid-ring via a
// degraded (hedged) read, and finally repairs the lost blocks onto the
// survivors — actual bytes over actual multiplexed sockets (§5).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/node"
	"peerstripe/internal/wire"
)

func main() {
	// 1. Form a ring of 8 nodes, 64 MB contribution each.
	var servers []*node.Server
	seed := ""
	for i := 0; i < 8; i++ {
		s, err := node.NewServer("127.0.0.1:0", 64<<20, seed)
		if err != nil {
			log.Fatal(err)
		}
		if seed == "" {
			seed = s.Addr()
		}
		servers = append(servers, s)
		defer s.Close()
	}
	fmt.Printf("ring of %d nodes, seed %s\n", len(servers), seed)

	// 2. Store a 4 MB file with (2,3) XOR coding over the concurrent
	// pipeline: 128 KB chunks, parallel fan-out, pooled connections.
	client, err := node.NewClient(seed, erasure.MustXOR(2))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.ChunkCap = 128 << 10
	client.HedgeDelay = 50 * time.Millisecond

	data := make([]byte, 4<<20)
	rand.New(rand.NewSource(1)).Read(data)
	start := time.Now()
	cat, err := client.StoreFile("experiment.dat", data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored experiment.dat: %d chunks in %v (%.1f MB/s)\n",
		cat.NumChunks(), time.Since(start).Round(time.Millisecond),
		float64(len(data))/1e6/time.Since(start).Seconds())

	// 3. Ranged read.
	part, err := client.FetchRange("experiment.dat", 1<<20, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranged read ok: %v\n", bytes.Equal(part, data[1<<20:(1<<20)+4096]))

	// 4. Kill a node and fetch the whole file anyway — no repair, no
	// ring refresh: the degraded read decodes every chunk from the
	// surviving blocks, hedging past the dead owner. (2,3) coding
	// tolerates one loss per chunk, so the victim must not co-host two
	// blocks of any chunk (the paper's 10000-node population makes
	// such co-location improbable; 8 nodes make it visible — walk the
	// placement to find a survivable victim).
	victim := safeVictim(client.Ring(), servers, "experiment.dat", cat.NumChunks())
	if victim == nil {
		fmt.Println("no survivable victim in this placement; skipping the failure demo")
		return
	}
	fmt.Printf("killing node %s holding %d blocks\n", victim.Addr(), victim.NumBlocks())
	victim.Close()

	start = time.Now()
	got, err := client.FetchFile("experiment.dat")
	if err != nil {
		fmt.Printf("degraded fetch: %v (a chunk lost both of its co-located blocks)\n", err)
		return
	}
	fmt.Printf("degraded fetch after node loss ok: %v (%v)\n",
		bytes.Equal(got, data), time.Since(start).Round(time.Millisecond))

	// 5. Repair onto the survivors: shed the dead member from the view
	// (no failure detector in the membership protocol), re-create its
	// blocks at their new owners, then verify once more.
	dropped, err := client.PruneRing()
	if err != nil {
		log.Fatal(err)
	}
	st, err := client.Repair("experiment.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair (after pruning %d dead member): %d chunks scanned, %d blocks re-created, %d CAT replicas restored\n",
		dropped, st.ChunksScanned, st.BlocksRecreated, st.CATReplicasRecreated)
	got, err = client.FetchFile("experiment.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-repair fetch ok: %v\n", bytes.Equal(got, data))
}

// safeVictim returns a server whose loss no chunk of the file exceeds
// the (2,3) code's one-block tolerance on, and that keeps at least one
// CAT replica reachable.
func safeVictim(ring []wire.NodeInfo, servers []*node.Server, file string, chunks int) *node.Server {
	ownerID := func(name string) ids.ID {
		o, _ := node.OwnerOf(ring, ids.FromName(name))
		return o.ID
	}
	for _, s := range servers {
		ok := true
		for ci := 0; ci < chunks && ok; ci++ {
			held := 0
			for e := 0; e < 3; e++ {
				if ownerID(core.BlockName(file, ci, e)) == s.ID {
					held++
				}
			}
			if held > 1 {
				ok = false
			}
		}
		elsewhere := 0
		for r := 0; r <= 2; r++ {
			if ownerID(core.ReplicaName(core.CATName(file), r)) != s.ID {
				elsewhere++
			}
		}
		if ok && elsewhere > 0 {
			return s
		}
	}
	return nil
}
