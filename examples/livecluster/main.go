// livecluster runs the real implementation end-to-end in one process:
// eight TCP storage nodes form a ring, a client stores an erasure-coded
// file through capacity probes, reads a range back, and survives a node
// being killed — actual bytes over actual sockets (§5).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"peerstripe/internal/erasure"
	"peerstripe/internal/node"
)

func main() {
	// 1. Form a ring of 8 nodes, 64 MB contribution each.
	var servers []*node.Server
	seed := ""
	for i := 0; i < 8; i++ {
		s, err := node.NewServer("127.0.0.1:0", 64<<20, seed)
		if err != nil {
			log.Fatal(err)
		}
		if seed == "" {
			seed = s.Addr()
		}
		servers = append(servers, s)
		defer s.Close()
	}
	fmt.Printf("ring of %d nodes, seed %s\n", len(servers), seed)

	// 2. Store a 4 MB file with (2,3) XOR coding.
	client, err := node.NewClient(seed, erasure.MustXOR(2))
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, 4<<20)
	rand.New(rand.NewSource(1)).Read(data)
	cat, err := client.StoreFile("experiment.dat", data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored experiment.dat: %d chunks\n", cat.NumChunks())

	// 3. Ranged read.
	part, err := client.FetchRange("experiment.dat", 1<<20, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranged read ok: %v\n", bytes.Equal(part, data[1<<20:(1<<20)+4096]))

	// 4. Kill a node and fetch the whole file anyway. Pick a victim
	// holding exactly one block: (2,3) coding tolerates one loss per
	// chunk (losing a node that co-hosts two blocks of the same chunk
	// would not be survivable — the paper's 10000-node population makes
	// such co-location improbable; 8 nodes make it visible).
	var victim *node.Server
	for _, s := range servers[1:] {
		if s.NumBlocks() == 1 {
			victim = s
			break
		}
	}
	if victim == nil {
		victim = servers[1]
	}
	fmt.Printf("killing node %s holding %d blocks\n", victim.Addr(), victim.NumBlocks())
	victim.Close()

	got, err := client.FetchFile("experiment.dat")
	if err != nil {
		fmt.Printf("fetch after failure: %v (a chunk lost both of its co-located blocks)\n", err)
		return
	}
	fmt.Printf("fetch after node loss ok: %v\n", bytes.Equal(got, data))
}
