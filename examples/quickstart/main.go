// Quickstart for the public peerstripe API: form a ring of storage
// nodes in-process, stream a file in that is larger than the Store
// call ever buffers, read a byte range back without touching the rest
// of the file, then lose a node and watch a degraded read and a repair
// keep the data intact — the core PeerStripe workflow of §4 over real
// sockets.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"time"

	"peerstripe"
)

func main() {
	ctx := context.Background()

	// 1. A ring of 8 nodes, 64 MB contribution each. The first starts
	// the ring; the rest join through it.
	var nodes []*peerstripe.Node
	seed := ""
	for i := 0; i < 8; i++ {
		n, err := peerstripe.ListenAndServe("127.0.0.1:0", 64<<20, seed, "")
		if err != nil {
			log.Fatal(err)
		}
		if seed == "" {
			seed = n.Addr()
		}
		nodes = append(nodes, n)
		defer n.Close()
	}
	fmt.Printf("ring of %d nodes, seed %s\n", len(nodes), seed)

	// 2. Dial with (8,2) Reed-Solomon coding and a 128 KB chunk cap:
	// every chunk is striped as eight data blocks plus two parity
	// blocks, so any eight of the ten reconstruct it.
	client, err := peerstripe.Dial(ctx, seed,
		peerstripe.WithCode("rs"),
		peerstripe.WithChunkCap(128<<10),
		peerstripe.WithHedgeDelay(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// 3. Stream a 4 MB file in from an io.Reader. Store plans chunks
	// up front and uploads chunk by chunk — it never buffers the file.
	data := make([]byte, 4<<20)
	rand.New(rand.NewSource(1)).Read(data)
	start := time.Now()
	info, err := client.Store(ctx, "experiment.dat", bytes.NewReader(data), int64(len(data)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %s: %d bytes in %d chunks (%v)\n",
		info.Name, info.Size, info.Chunks, time.Since(start).Round(time.Millisecond))

	// 4. Ranged read through the io.ReaderAt interface: only the
	// chunks the range covers are fetched and decoded.
	f, err := client.Open(ctx, "experiment.dat")
	if err != nil {
		log.Fatal(err)
	}
	part := make([]byte, 4096)
	if _, err := f.ReadAt(part, 1<<20); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("ranged read ok: %v\n", bytes.Equal(part, data[1<<20:(1<<20)+4096]))
	f.Close()

	// 5. Kill a node and read the whole file anyway: the hedged
	// degraded read decodes every chunk from the surviving blocks —
	// (8,2) coding tolerates two losses per chunk, so losing one node
	// (which rarely co-hosts three blocks of a chunk) is survivable.
	// Picking the lightest-loaded node keeps the odds overwhelming.
	var victim *peerstripe.Node
	for _, n := range nodes[1:] { // spare the seed so the client can refresh
		if n.Blocks() > 0 && (victim == nil || n.Blocks() < victim.Blocks()) {
			victim = n
		}
	}
	if victim == nil {
		log.Fatal("no non-seed node holds blocks — placement degenerate")
	}
	fmt.Printf("killing node %s holding %d blocks\n", victim.Addr(), victim.Blocks())
	victim.Close()

	g, err := client.Open(ctx, "experiment.dat")
	if err != nil {
		log.Fatal(err)
	}
	got, err := io.ReadAll(g)
	g.Close()
	if err != nil {
		fmt.Printf("degraded fetch: %v (a chunk lost two co-located blocks)\n", err)
		return
	}
	fmt.Printf("degraded fetch after node loss ok: %v\n", bytes.Equal(got, data))

	// 6. Repair re-creates the lost blocks on the survivors (pruning
	// the dead member from the view first) and the ring is whole again.
	st, err := client.Repair(ctx, "experiment.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair: %d chunks scanned, %d blocks re-created, %d CAT replicas restored\n",
		st.ChunksScanned, st.BlocksRecreated, st.CATReplicasRecreated)
}
