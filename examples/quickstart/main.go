// Quickstart: build a contributory storage pool, store a file larger
// than any single participant, inspect its chunk allocation table, and
// read a byte range back — the core PeerStripe workflow of §4.
package main

import (
	"fmt"
	"log"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

func main() {
	// 1. A pool of 64 desktops, each contributing ~2 GB.
	caps := make([]int64, 64)
	for i := range caps {
		caps[i] = 2*trace.GB + int64(i%5)*256*trace.MB
	}
	pool := sim.NewPool(1, caps)
	fmt.Printf("pool: %d nodes, %.1f GB total\n", pool.Size(),
		float64(pool.TotalCapacity)/float64(trace.GB))

	// 2. PeerStripe with (2,3) XOR coding per chunk.
	cfg := core.DefaultConfig()
	cfg.Spec = erasure.XOR23Spec
	store := core.NewStore(pool, cfg)

	// 3. Store a 10 GB file — 5x larger than any single node.
	res := store.StoreFile("weather_model_output.dat", 10*trace.GB)
	if !res.OK {
		log.Fatalf("store failed: %v", res.Err)
	}
	fmt.Printf("stored 10 GB in %d chunks (+%d zero-sized retries)\n", res.Chunks, res.ZeroChunks)
	fmt.Printf("raw bytes incl. coding redundancy: %.2f GB\n",
		float64(res.RawBytes)/float64(trace.GB))

	// 4. The chunk allocation table (Figure 3 format).
	cat, _ := store.CAT("weather_model_output.dat")
	fmt.Printf("CAT (%d rows):\n%s", cat.NumChunks(), cat.Marshal())

	// 5. Ranged retrieval touches only the chunks the range covers.
	st, err := store.Retrieve("weather_model_output.dat", 3*trace.GB, 100*trace.MB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read 100 MB at offset 3 GB: %d chunk(s), %d block fetches, %d lookups\n",
		st.Chunks, st.BlockFetches, st.Lookups)

	// 6. A node holding some of the file's blocks fails; the system
	// repairs the lost redundancy on surviving nodes.
	victim := pool.Net.Nodes()[7].ID
	for _, on := range pool.Net.Nodes() {
		if sn, ok := pool.Node(on.ID); ok && len(sn.Blocks) > 0 {
			victim = on.ID
			break
		}
	}
	rep, err := store.FailNode(victim, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %s failed: %d blocks lost, %d regenerated, file available: %v\n",
		victim.Short(), rep.BlocksLost, rep.BlocksRegenerated,
		store.Available("weather_model_output.dat"))
	fmt.Printf("mean overlay hops per lookup: %.2f\n", pool.MeanLookupHops())
}
