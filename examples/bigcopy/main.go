// bigcopy reproduces the §6.4 case study in miniature: a Condor-like
// scheduler runs the bigCopy application on a pool of machines, with
// application I/O transparently redirected into PeerStripe through the
// interposed library — here running against a real ring. The input is
// seeded through the public peerstripe API (streamed, erasure-coded,
// capacity-probed), then the interposed grid.IOLib reads and writes it
// over the same live client. Part 2 prints the Table 4 sweep from the
// calibrated transfer model.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"peerstripe"
	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/grid"
	"peerstripe/internal/node"
	"peerstripe/internal/trace"
)

func main() {
	ctx := context.Background()

	// Part 1: real bytes through the interposed I/O path over a live
	// ring. Form the ring and seed a 24 MB input file through the
	// public streaming API.
	var nodes []*peerstripe.Node
	seed := ""
	for i := 0; i < 6; i++ {
		n, err := peerstripe.ListenAndServe("127.0.0.1:0", 256<<20, seed, "")
		if err != nil {
			log.Fatal(err)
		}
		if seed == "" {
			seed = n.Addr()
		}
		nodes = append(nodes, n)
		defer n.Close()
	}

	client, err := peerstripe.Dial(ctx, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(4*trace.MB))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	data := make([]byte, 24*trace.MB)
	rand.New(rand.NewSource(42)).Read(data)
	if _, err := client.Store(ctx, "input.bin", bytes.NewReader(data), int64(len(data))); err != nil {
		log.Fatal(err)
	}

	// The interposed library runs over the same ring: a node.Client
	// implements grid.FS, so application I/O lands on the live nodes.
	// (The grid interposition layer is internal — its FS seam is not
	// part of the public surface — so this demo dials one extra
	// internal client for it alongside the public one above.)
	fsClient, err := node.NewClientCfg(ctx, seed, erasure.MustXOR(2), node.Config{ChunkCap: 4 * trace.MB})
	if err != nil {
		log.Fatal(err)
	}
	defer fsClient.Close()
	codec := &core.Codec{Code: erasure.MustXOR(2)}
	lib := grid.NewIOLib(fsClient, codec)
	lib.PlanChunk = func(sz int64) []int64 { return core.PlanChunkSizes(sz, 4*trace.MB) }

	sched := grid.NewScheduler(lib, 4)
	for i := 0; i < 3; i++ {
		sched.Submit(grid.BigCopyJob("input.bin", fmt.Sprintf("copy%d.bin", i), 1<<20))
	}
	for _, r := range sched.Drain() {
		status := "ok"
		if r.Err != nil {
			status = r.Err.Error()
		}
		fmt.Printf("machine %d ran %-28s %s\n", r.Machine, r.Job, status)
	}
	hits, misses := lib.CacheStats()
	fmt.Printf("lookup cache: %d hits, %d misses\n", hits, misses)
	if info, err := client.Stat(ctx, "copy0.bin"); err == nil {
		fmt.Printf("copy0.bin on the ring: %d bytes in %d chunks\n", info.Size, info.Chunks)
	}

	// Part 2: the Table 4 sweep on the 32-machine model.
	fmt.Println("\nTable 4 sweep (modelled times, seconds):")
	cluster := grid.NewCluster(7, 32)
	for _, gbs := range []int64{1, 4, 16, 64} {
		row := cluster.RunTable4([]int64{gbs * trace.GB})[0]
		whole := "N/A"
		if row.Whole.OK {
			whole = fmt.Sprintf("%.0fs", row.Whole.Seconds)
		}
		fmt.Printf("%4d GB: whole=%-8s fixed=%.0fs (%d chunks)  varying=%.0fs (%d chunks)\n",
			gbs, whole, row.Fixed.Seconds, row.Fixed.Chunks,
			row.Varying.Seconds, row.Varying.Chunks)
	}
}
