// bigcopy reproduces the §6.4 case study in miniature: a Condor-like
// scheduler runs the bigCopy application on a pool of machines, with
// application I/O transparently redirected into PeerStripe through the
// interposed library, then prints the Table 4 sweep from the calibrated
// transfer model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/grid"
	"peerstripe/internal/trace"
)

func main() {
	// Part 1: real bytes through the interposed I/O path.
	fs := grid.NewMemFS()
	codec := &core.Codec{Code: erasure.MustXOR(2)}

	// Seed a 24 MB input file into the shared storage.
	data := make([]byte, 24*trace.MB)
	rand.New(rand.NewSource(42)).Read(data)
	blocks, cat, err := codec.EncodeFile("input.bin", data, core.PlanChunkSizes(int64(len(data)), 4*trace.MB))
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.StoreBlocks(cat, blocks); err != nil {
		log.Fatal(err)
	}

	lib := grid.NewIOLib(fs, codec)
	sched := grid.NewScheduler(lib, 4)
	for i := 0; i < 3; i++ {
		sched.Submit(grid.BigCopyJob("input.bin", fmt.Sprintf("copy%d.bin", i), 1<<20))
	}
	for _, r := range sched.Drain() {
		status := "ok"
		if r.Err != nil {
			status = r.Err.Error()
		}
		fmt.Printf("machine %d ran %-28s %s\n", r.Machine, r.Job, status)
	}
	hits, misses := lib.CacheStats()
	fmt.Printf("stored files: %v\n", fs.Files())
	fmt.Printf("lookup cache: %d hits, %d misses\n", hits, misses)

	// Part 2: the Table 4 sweep on the 32-machine model.
	fmt.Println("\nTable 4 sweep (modelled times, seconds):")
	cluster := grid.NewCluster(7, 32)
	for _, gbs := range []int64{1, 4, 16, 64} {
		row := cluster.RunTable4([]int64{gbs * trace.GB})[0]
		whole := "N/A"
		if row.Whole.OK {
			whole = fmt.Sprintf("%.0fs", row.Whole.Seconds)
		}
		fmt.Printf("%4d GB: whole=%-8s fixed=%.0fs (%d chunks)  varying=%.0fs (%d chunks)\n",
			gbs, whole, row.Fixed.Seconds, row.Fixed.Chunks,
			row.Varying.Seconds, row.Varying.Chunks)
	}
}
