// multicastdemo shows the §4.4.1 replica-dissemination path: a
// proximity-aware tree is built from Pastry coordinates over the nodes
// that will hold a chunk's replicas, then Bullet/RanSub floods the
// chunk's packets through it.
package main

import (
	"fmt"

	"peerstripe/internal/multicast"
	"peerstripe/internal/pastry"
)

func main() {
	// Build an overlay and pick a source plus 32 replica holders.
	net := pastry.NewNetwork(3)
	nodes := net.JoinRandom(200)
	source := nodes[0]
	replicas := net.Neighbors(source.ID, 32)

	tree := multicast.ProximityTree(source, replicas, 2)
	if err := tree.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("proximity tree: %d vertices, %d replica leaves, total edge length %.2f\n",
		tree.Size(), len(tree.Leaves()), tree.TotalEdgeLength())

	// Disseminate a 1000-packet chunk at two RanSub settings.
	for _, frac := range []float64{0.03, 0.16} {
		cfg := multicast.DefaultConfig()
		cfg.RanSubFrac = frac
		s := multicast.NewSim(tree, cfg)
		epochs := s.Run(20000)
		min, max := s.MinMaxPackets()
		fmt.Printf("RanSub %4.0f%%: complete in %5d epochs (min/avg/max packets: %d/%.0f/%d)\n",
			frac*100, epochs, min, s.AvgPackets(), max)
	}
}
