// churnstudy demonstrates the fault-tolerance machinery of §4.4/§6.2:
// a coded store under sustained participant churn with delayed repair,
// comparing the three coding configurations' file availability.
package main

import (
	"fmt"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

func main() {
	const nodes = 300
	const files = 600

	for _, cfgSpec := range []struct {
		label    string
		spec     erasure.Spec
		rateless bool
	}{
		{"no coding     ", erasure.NullSpec, false},
		{"XOR (2,3)     ", erasure.XOR23Spec, false},
		{"online (tol 2)", erasure.OnlineSimSpec, true},
	} {
		g := trace.NewGen(9)
		pool := sim.NewPool(9, g.NodeCapacities(nodes))
		cfg := core.DefaultConfig()
		cfg.Spec = cfgSpec.spec
		cfg.Rateless = cfgSpec.rateless
		st := core.NewStore(pool, cfg)
		stored := 0
		for _, f := range g.Files(files) {
			if st.StoreFile(f.Name, f.Size).OK {
				stored++
			}
		}

		// Churn: fail 20% of nodes with repair bandwidth that finishes
		// most regeneration between failures.
		meanNodeData := float64(pool.TotalUsed) / float64(pool.Size())
		cs := core.NewChurnSim(st, 2*meanNodeData, 1.0)
		rng := g.Rand()
		for i := 0; i < nodes/5; i++ {
			live := pool.Net.Nodes()
			if err := cs.FailNext(live[rng.Intn(len(live))].ID); err != nil {
				panic(err)
			}
		}
		cs.Drain()

		available := 0
		for _, name := range st.Files() {
			if st.Available(name) {
				available++
			}
		}
		fmt.Printf("%s stored=%d  available after 20%% churn=%d (%.1f%%)  regenerated=%.1f GB  lost=%.2f GB\n",
			cfgSpec.label, stored, available,
			100*float64(available)/float64(stored),
			float64(cs.TotalRegenerated)/float64(trace.GB),
			float64(cs.TotalLost)/float64(trace.GB))
	}
}
