// Command pstrace generates and inspects workload traces.
//
//	pstrace gen -n 120000 -seed 1 > trace.csv          # paper's distribution
//	pstrace gen -n 120000 -tail 1.5 > heavy.csv        # heavy-tailed variant
//	pstrace stat < trace.csv                           # moments + histogram
//
// Generated traces feed the experiments through trace.ReadTrace, making
// it possible to swap in a real collected trace with the same format.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"peerstripe/internal/stats"
	"peerstripe/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: pstrace gen|stat [flags]")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "gen":
		fs := flag.NewFlagSet("gen", flag.ExitOnError)
		n := fs.Int("n", 10000, "number of files")
		seed := fs.Int64("seed", 1, "generator seed")
		tail := fs.Float64("tail", 0, "lognormal sigma for a heavy-tailed trace (0 = paper's normal)")
		fs.Parse(os.Args[2:]) //nolint:errcheck
		g := trace.NewGen(*seed)
		var files []trace.File
		if *tail > 0 {
			files = g.HeavyTailFiles(*n, *tail)
		} else {
			files = g.Files(*n)
		}
		if err := trace.WriteTrace(os.Stdout, files); err != nil {
			log.Fatal(err)
		}
	case "stat":
		files, err := trace.ReadTrace(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		if len(files) == 0 {
			log.Fatal("empty trace")
		}
		var a stats.Acc
		for _, f := range files {
			a.Add(float64(f.Size))
		}
		mb := float64(trace.MB)
		fmt.Printf("files:  %d\n", a.N())
		fmt.Printf("total:  %.2f TB\n", a.Sum()/float64(trace.TB))
		fmt.Printf("mean:   %.2f MB\n", a.Mean()/mb)
		fmt.Printf("sd:     %.2f MB\n", a.StdDev()/mb)
		fmt.Printf("min:    %.2f MB\n", a.Min()/mb)
		fmt.Printf("max:    %.2f MB\n", a.Max()/mb)
		// Decile histogram between min and max.
		h := stats.NewHistogram(a.Min(), a.Max()+1, 10)
		for _, f := range files {
			h.Add(float64(f.Size))
		}
		width := (a.Max() + 1 - a.Min()) / 10
		for i := 0; i < h.Buckets(); i++ {
			lo := a.Min() + float64(i)*width
			fmt.Printf("%8.0f MB  %6.2f%%  %s\n", lo/mb, 100*h.Frac(i),
				bar(h.Frac(i)))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		os.Exit(2)
	}
}

// bar renders a proportional ASCII bar.
func bar(frac float64) string {
	n := int(frac * 60)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
