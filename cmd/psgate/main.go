// Command psgate serves a PeerStripe ring over HTTP: GET/HEAD/PUT/
// DELETE on /<name>, with Range requests, ETags and conditional GETs,
// streamed bodies in both directions, a shared singleflight chunk
// cache across all requests, and automatic promotion of hot objects
// into full-copy chunk replicas. See docs/GATEWAY.md.
//
//	psgate -listen 127.0.0.1:8080 -ring 127.0.0.1:7001
//	curl -T big.bin http://127.0.0.1:8080/big.bin
//	curl -r 0-1023 http://127.0.0.1:8080/big.bin
//
// /-/healthz reports ring reachability; /-/stats reports request and
// cache counters as JSON.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"peerstripe"
	"peerstripe/gateway"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "HTTP address to serve on")
		ring      = flag.String("ring", "", "address of any ring member (required)")
		code      = flag.String("code", "xor", "erasure code for stores (null, xor, online, rs)")
		chunkCap  = flag.Int64("chunk-cap", 0, "chunk size cap in bytes (0 = client default)")
		cache     = flag.Int64("cache", peerstripe.DefaultChunkCache, "decoded-chunk cache bound in bytes (0 disables retention)")
		timeout   = flag.Duration("timeout", 0, "per-RPC timeout (0 = client default)")
		hotAfter  = flag.Int("hot-after", 64, "GETs on one object before it is promoted to full-copy replicas (0 disables)")
		hotCopies = flag.Int("hot-copies", 2, "full-copy replicas placed per chunk on promotion")
		hotTrack  = flag.Int("hot-track", 0, "distinct objects the promotion tracker follows, LRU-evicted (0 = default 4096)")
		maxObject = flag.Int64("max-object", 0, "largest accepted PUT in bytes (0 = unlimited)")
	)
	flag.Parse()
	if *ring == "" {
		log.Fatal("psgate: -ring is required")
	}

	opts := []peerstripe.Option{
		peerstripe.WithCode(*code),
		peerstripe.WithChunkCache(*cache),
	}
	if *chunkCap > 0 {
		opts = append(opts, peerstripe.WithChunkCap(*chunkCap))
	}
	if *timeout > 0 {
		opts = append(opts, peerstripe.WithTimeout(*timeout))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	cl, err := peerstripe.Dial(ctx, *ring, opts...)
	cancel()
	if err != nil {
		log.Fatalf("psgate: %v", err)
	}
	defer cl.Close()

	gw := gateway.New(cl, gateway.Config{
		HotAfter:       *hotAfter,
		HotCopies:      *hotCopies,
		HotTrack:       *hotTrack,
		MaxObjectBytes: *maxObject,
		Logf:           log.Printf,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("psgate: listen %s: %v", *listen, err)
	}
	srv := &http.Server{Handler: gw, ReadHeaderTimeout: 10 * time.Second}
	log.Printf("psgate: serving ring %s on http://%s", *ring, ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer shCancel()
		srv.Shutdown(shCtx) //nolint:errcheck
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("psgate: %v", err)
	}
}
