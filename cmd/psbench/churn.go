package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/ids"
	"peerstripe/internal/node"
	"peerstripe/internal/wire"
)

// The churn experiment measures the self-healing ring end to end
// (docs/RING.md): a live loopback ring with the SWIM detector and the
// autonomous repair daemon on every node absorbs scripted deaths, and
// the harness clocks how long detection and repair take and how many
// bytes the daemons regenerate. Results go to BENCH_PR6.json.

const churnBenchOut = "BENCH_PR6.json"

type churnDeathResult struct {
	Victim       int     `json:"victim"`
	DetectMS     float64 `json:"time_to_detect_ms"`
	RepairMS     float64 `json:"time_to_repair_ms"`
	RingSizeThen int     `json:"ring_size_after"`
}

type churnBenchReport struct {
	Description string `json:"description"`
	Environment struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		Cores  int    `json:"cores"`
		Go     string `json:"go"`
		Date   string `json:"date"`
	} `json:"environment"`
	Config struct {
		Nodes           int    `json:"nodes"`
		Kills           int    `json:"kills"`
		Files           int    `json:"files"`
		FileSize        int    `json:"file_size_bytes"`
		ChunkCap        int    `json:"chunk_cap_bytes"`
		Code            string `json:"code"`
		ProbeIntervalMS int64  `json:"probe_interval_ms"`
		ProbeTimeoutMS  int64  `json:"probe_timeout_ms"`
		SuspicionMS     int64  `json:"suspicion_ms"`
		IndirectProbes  int    `json:"indirect_probes"`
	} `json:"config"`
	Deaths  []churnDeathResult `json:"deaths"`
	Summary struct {
		MeanDetectMS      float64 `json:"mean_time_to_detect_ms"`
		MeanRepairMS      float64 `json:"mean_time_to_repair_ms"`
		BlocksRegenerated int     `json:"blocks_regenerated"`
		BytesRegenerated  int64   `json:"bytes_regenerated"`
		FilesFailed       int     `json:"files_failed"`
		ChunksLost        int     `json:"chunks_lost"`
	} `json:"summary"`
}

// churnSafeVictim mirrors the integration harness's safety predicate:
// losing ring[pos] must keep every chunk decodable (at most tolerance
// of its blocks on the victim) and at least one CAT replica of every
// file elsewhere.
func churnSafeVictim(ring []wire.NodeInfo, pos int, fileChunks map[string]int, m, tolerance, catReplicas int) bool {
	ownerIdx := func(name string) int {
		o, _ := node.OwnerOf(ring, ids.FromName(name))
		for i, member := range ring {
			if member.ID == o.ID {
				return i
			}
		}
		return -1
	}
	for file, chunks := range fileChunks {
		for ci := 0; ci < chunks; ci++ {
			held := 0
			for e := 0; e < m; e++ {
				if ownerIdx(core.BlockName(file, ci, e)) == pos {
					held++
				}
			}
			if held > tolerance {
				return false
			}
		}
		elsewhere := 0
		for r := 0; r <= catReplicas; r++ {
			if ownerIdx(core.ReplicaName(core.CATName(file), r)) != pos {
				elsewhere++
			}
		}
		if elsewhere == 0 {
			return false
		}
	}
	return true
}

// churnWait polls cond until it holds, returning the elapsed time, or
// exits the experiment on timeout.
func churnWait(d time.Duration, what string, cond func() bool) time.Duration {
	start := time.Now()
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return time.Since(start)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "churn: timed out waiting for %s\n", what)
	os.Exit(1)
	return 0
}

func runChurn() {
	section("Churn: self-healing ring (time-to-detect, time-to-repair)")

	const (
		nodes    = 16
		kills    = 2
		chunkCap = 32 << 10
		fileSize = 192 << 10
		numFiles = 4
	)
	code := erasure.MustXOR(2)
	det := &node.DetectorConfig{
		ProbeInterval:    250 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		IndirectProbes:   3,
		SuspicionTimeout: 1500 * time.Millisecond,
		GossipFanout:     3,
	}
	rep := &node.RepairConfig{
		Code:        code,
		Rate:        -1,
		RetryDelay:  200 * time.Millisecond,
		MaxAttempts: 10,
		Client:      node.Config{Timeout: 2 * time.Second, ChunkCap: chunkCap},
	}

	servers := make([]*node.Server, nodes)
	seed := ""
	for i := 0; i < nodes; i++ {
		var id ids.ID
		id[0] = byte(i * 256 / nodes)
		s, err := node.NewServerOpts("127.0.0.1:0", 1<<30, seed, node.ServerOptions{
			ID: &id, Detector: det, Repair: rep,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "churn: %v\n", err)
			os.Exit(1)
		}
		defer s.Close()
		servers[i] = s
		if seed == "" {
			seed = s.Addr()
		}
	}
	churnWait(60*time.Second, "membership to converge", func() bool {
		for _, s := range servers {
			if s.RingSize() != nodes {
				return false
			}
		}
		return true
	})

	writer, err := node.NewClientCfg(context.Background(), seed, code, node.Config{ChunkCap: chunkCap})
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		os.Exit(1)
	}
	defer writer.Close()
	fileChunks := make(map[string]int)
	dataRNG := rand.New(rand.NewSource(7))
	for i := 0; i < numFiles; i++ {
		name := fmt.Sprintf("churn-bench-%d.dat", i)
		data := make([]byte, fileSize)
		dataRNG.Read(data)
		cat, err := writer.StoreFile(name, data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "churn: store %s: %v\n", name, err)
			os.Exit(1)
		}
		fileChunks[name] = cat.NumChunks()
	}
	m := code.EncodedBlocks()
	tolerance := m - code.MinNeeded()
	catReplicas := writer.Config().CATReplicas

	var names []string
	for file, chunks := range fileChunks {
		for ci := 0; ci < chunks; ci++ {
			for e := 0; e < m; e++ {
				names = append(names, core.BlockName(file, ci, e))
			}
		}
		for r := 0; r <= catReplicas; r++ {
			names = append(names, core.ReplicaName(core.CATName(file), r))
		}
	}

	var report churnBenchReport
	report.Description = "Self-healing ring experiment (PR 6): a live loopback ring with the SWIM-style failure detector and the autonomous repair daemon on every node absorbs scripted node deaths with zero manual intervention. time_to_detect is Close()-to-death-committed-on-every-survivor; time_to_repair is Close()-to-every-block-of-every-file-fetchable-at-its-survivor-ring-owner. Regenerated byte counts come from the daemons' own RepairReport. Command: go run ./cmd/psbench -exp churn. Design in docs/RING.md."
	report.Environment.GOOS = runtime.GOOS
	report.Environment.GOARCH = runtime.GOARCH
	report.Environment.Cores = runtime.NumCPU()
	report.Environment.Go = runtime.Version()
	report.Environment.Date = time.Now().Format("2006-01-02")
	report.Config.Nodes = nodes
	report.Config.Kills = kills
	report.Config.Files = numFiles
	report.Config.FileSize = fileSize
	report.Config.ChunkCap = chunkCap
	report.Config.Code = "xor(2,3)"
	report.Config.ProbeIntervalMS = det.ProbeInterval.Milliseconds()
	report.Config.ProbeTimeoutMS = det.ProbeTimeout.Milliseconds()
	report.Config.SuspicionMS = det.SuspicionTimeout.Milliseconds()
	report.Config.IndirectProbes = det.IndirectProbes

	aliveRing := func(dead map[int]bool) []wire.NodeInfo {
		var ring []wire.NodeInfo
		for i, s := range servers {
			if !dead[i] {
				ring = append(ring, wire.NodeInfo{ID: s.ID, Addr: s.Addr()})
			}
		}
		return ring
	}

	rng := rand.New(rand.NewSource(43))
	dead := make(map[int]bool)
	fmt.Printf("%-8s %-18s %-18s\n", "victim", "time-to-detect", "time-to-repair")
	for k := 0; k < kills; k++ {
		ring := aliveRing(dead)
		var safe []int
		for pos := range ring {
			if churnSafeVictim(ring, pos, fileChunks, m, tolerance, catReplicas) {
				safe = append(safe, pos)
			}
		}
		if len(safe) == 0 {
			fmt.Fprintln(os.Stderr, "churn: no safe victim left")
			os.Exit(1)
		}
		victimID := ring[safe[rng.Intn(len(safe))]].ID
		victim := -1
		for i, s := range servers {
			if s.ID == victimID {
				victim = i
			}
		}

		start := time.Now()
		servers[victim].Close()
		dead[victim] = true
		detect := churnWait(60*time.Second, fmt.Sprintf("death %d to commit", k), func() bool {
			for i, s := range servers {
				if dead[i] {
					continue
				}
				if st, ok := s.MemberState(victimID); !ok || st != wire.StateDead {
					return false
				}
			}
			return true
		})
		vc := node.NewStaticClientCfg(aliveRing(dead), code, node.Config{Timeout: 2 * time.Second})
		churnWait(120*time.Second, fmt.Sprintf("repair after death %d", k), func() bool {
			for _, bn := range names {
				if _, err := vc.FetchBlock(bn); err != nil {
					return false
				}
			}
			return true
		})
		repairTotal := time.Since(start)
		vc.Close()

		fmt.Printf("%-8d %-18s %-18s\n", victim, detect.Round(time.Millisecond), repairTotal.Round(time.Millisecond))
		report.Deaths = append(report.Deaths, churnDeathResult{
			Victim:       victim,
			DetectMS:     float64(detect.Microseconds()) / 1000,
			RepairMS:     float64(repairTotal.Microseconds()) / 1000,
			RingSizeThen: nodes - len(dead),
		})
	}

	for i, s := range servers {
		if dead[i] {
			continue
		}
		rpt := s.RepairReport()
		report.Summary.BlocksRegenerated += rpt.BlocksRecreated
		report.Summary.BytesRegenerated += rpt.BytesRecreated
		report.Summary.FilesFailed += rpt.FilesFailed
		report.Summary.ChunksLost += rpt.ChunksLost
	}
	for _, d := range report.Deaths {
		report.Summary.MeanDetectMS += d.DetectMS / float64(len(report.Deaths))
		report.Summary.MeanRepairMS += d.RepairMS / float64(len(report.Deaths))
	}

	fmt.Printf("\nregenerated %d blocks (%d bytes) autonomously; %d files failed, %d chunks lost\n",
		report.Summary.BlocksRegenerated, report.Summary.BytesRegenerated,
		report.Summary.FilesFailed, report.Summary.ChunksLost)

	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(churnBenchOut, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("(wrote %s)\n", churnBenchOut)
}
