package main

import (
	"fmt"

	"peerstripe/internal/baseline"
	"peerstripe/internal/core"
	"peerstripe/internal/sim"
	"peerstripe/internal/trace"
)

// runHeavyTail is the Figure 7 reconciliation experiment (see
// EXPERIMENTS.md): under the published N(243 MB, 55 MB) trace our PAST
// fails far less than the paper's 36% because nearly every file fits
// nearly every node. Real video/mirror traces are heavy-tailed; as the
// tail grows, PAST — which must place whole files on single nodes —
// degrades sharply toward the paper's figure while CFS and PeerStripe
// barely move, because striping is insensitive to file size.
func runHeavyTail(scale, seeds int) {
	sc := trace.Scaled(scale)
	section("Reconciliation: failed stores vs file-size tail heaviness (Fig 7 companion)")
	fmt.Printf("nodes=%d files=%d seeds=%d, lognormal traces matched to the 243 MB mean\n",
		sc.Nodes, sc.Files, seeds)
	fmt.Printf("%-22s %12s %12s %12s\n", "trace", "PAST", "CFS", "Ours")

	type accrow struct{ past, cfs, ours float64 }
	run := func(mk func(g *trace.Gen) []trace.File) accrow {
		var r accrow
		for seed := 0; seed < seeds; seed++ {
			g := trace.NewGen(int64(seed + 400))
			capacities := g.NodeCapacities(sc.Nodes)
			files := mk(g)

			pp := sim.NewPool(int64(seed+400), capacities)
			p := baseline.NewPAST(pp)
			for _, f := range files {
				p.StoreFile(f.Name, f.Size)
			}
			r.past += 100 * float64(p.FilesFailed) / float64(len(files))

			cp := sim.NewPool(int64(seed+400), capacities)
			c := baseline.NewCFS(cp, 4*trace.MB)
			for _, f := range files {
				c.StoreFile(f.Name, f.Size)
			}
			r.cfs += 100 * float64(c.FilesFailed) / float64(len(files))

			op := sim.NewPool(int64(seed+400), capacities)
			s := core.NewStore(op, core.PaperConfig())
			for _, f := range files {
				s.StoreFile(f.Name, f.Size)
			}
			r.ours += 100 * float64(s.FilesFailed) / float64(len(files))
		}
		n := float64(seeds)
		return accrow{r.past / n, r.cfs / n, r.ours / n}
	}

	rows := []struct {
		label string
		mk    func(g *trace.Gen) []trace.File
	}{
		{"normal (paper stated)", func(g *trace.Gen) []trace.File { return g.Files(sc.Files) }},
		{"lognormal sigma=1.0", func(g *trace.Gen) []trace.File { return g.HeavyTailFiles(sc.Files, 1.0) }},
		{"lognormal sigma=1.5", func(g *trace.Gen) []trace.File { return g.HeavyTailFiles(sc.Files, 1.5) }},
		{"lognormal sigma=2.0", func(g *trace.Gen) []trace.File { return g.HeavyTailFiles(sc.Files, 2.0) }},
	}
	for _, row := range rows {
		r := run(row.mk)
		fmt.Printf("%-22s %11.1f%% %11.1f%% %11.1f%%\n", row.label, r.past, r.cfs, r.ours)
	}
	fmt.Println("paper (real trace):    36.0%        15.2%         5.2%")
}
