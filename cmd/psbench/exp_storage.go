package main

import (
	"fmt"
	"strings"

	"peerstripe/internal/baseline"
	"peerstripe/internal/core"
	"peerstripe/internal/sim"
	"peerstripe/internal/stats"
	"peerstripe/internal/trace"
)

// storageOutcome carries everything Figures 7–9 and Table 1 need from
// one (scheme, seed) insertion run.
type storageOutcome struct {
	failedFiles *stats.Series // x = files inserted, y = % failed stores
	failedBytes *stats.Series // y = % failed data
	utilization *stats.Series // y = % capacity used
	chunkCount  stats.Acc     // per stored file
	chunkSize   stats.Acc     // per stored chunk (bytes)
}

// runStorageOnce inserts the trace into fresh pools under all three
// schemes with a shared seed, sampling at regular intervals.
func runStorageOnce(seed int64, sc trace.Scale, out map[string]*storageOutcome) {
	g := trace.NewGen(seed)
	capacities := g.NodeCapacities(sc.Nodes)
	files := g.Files(sc.Files)

	samples := 60
	interval := len(files) / samples
	if interval == 0 {
		interval = 1
	}

	// PAST.
	{
		pool := sim.NewPool(seed, capacities)
		p := baseline.NewPAST(pool)
		o := out["PAST"]
		for i, f := range files {
			p.StoreFile(f.Name, f.Size)
			if (i+1)%interval == 0 || i == len(files)-1 {
				x := float64(i + 1)
				total := p.BytesStored + p.BytesFailed
				o.failedFiles.Observe(x, 100*float64(p.FilesFailed)/float64(i+1))
				o.failedBytes.Observe(x, 100*float64(p.BytesFailed)/float64(total))
				o.utilization.Observe(x, 100*pool.Utilization())
			}
		}
	}
	// CFS.
	{
		pool := sim.NewPool(seed, capacities)
		c := baseline.NewCFS(pool, 4*trace.MB)
		o := out["CFS"]
		for i, f := range files {
			nBefore := c.TotalBlocks
			if c.StoreFile(f.Name, f.Size) {
				o.chunkCount.Add(float64(c.TotalBlocks - nBefore))
				o.chunkSize.AddN(float64(4*trace.MB), int(c.TotalBlocks-nBefore))
			}
			if (i+1)%interval == 0 || i == len(files)-1 {
				x := float64(i + 1)
				total := c.BytesStored + c.BytesFailed
				o.failedFiles.Observe(x, 100*float64(c.FilesFailed)/float64(i+1))
				o.failedBytes.Observe(x, 100*float64(c.BytesFailed)/float64(total))
				o.utilization.Observe(x, 100*pool.Utilization())
			}
		}
	}
	// PeerStripe (no coding, §6.1 configuration).
	{
		pool := sim.NewPool(seed, capacities)
		s := core.NewStore(pool, core.PaperConfig())
		o := out["Ours"]
		for i, f := range files {
			res := s.StoreFile(f.Name, f.Size)
			if res.OK {
				o.chunkCount.Add(float64(res.Chunks))
				for _, cs := range res.ChunkSizes {
					o.chunkSize.Add(float64(cs))
				}
			}
			if (i+1)%interval == 0 || i == len(files)-1 {
				x := float64(i + 1)
				total := s.BytesStored + s.BytesFailed
				o.failedFiles.Observe(x, 100*float64(s.FilesFailed)/float64(i+1))
				o.failedBytes.Observe(x, 100*float64(s.BytesFailed)/float64(total))
				o.utilization.Observe(x, 100*pool.Utilization())
			}
		}
	}
}

// runStorage regenerates Figures 7, 8, 9 and Table 1.
func runStorage(scale, seeds int) {
	sc := trace.Scaled(scale)
	out := map[string]*storageOutcome{}
	for _, s := range []string{"PAST", "CFS", "Ours"} {
		out[s] = &storageOutcome{
			failedFiles: stats.NewSeries(s),
			failedBytes: stats.NewSeries(s),
			utilization: stats.NewSeries(s),
		}
	}
	for seed := 0; seed < seeds; seed++ {
		runStorageOnce(int64(seed+1), sc, out)
	}

	printSeries := func(title, unit string, pick func(*storageOutcome) *stats.Series, paperFinal map[string]float64) {
		section(title)
		defer func() {
			var rows [][]string
			xs, _ := pick(out["PAST"]).Points()
			for _, x := range xs {
				row := []string{fmt.Sprintf("%.0f", x)}
				for _, s := range []string{"PAST", "CFS", "Ours"} {
					y, _ := pick(out[s]).YAt(x)
					row = append(row, fmt.Sprintf("%.4f", y))
				}
				rows = append(rows, row)
			}
			tag := strings.Fields(title)[1]
			tag = strings.TrimSuffix(tag, ":")
			saveCSV("fig"+tag, []string{"files", "PAST", "CFS", "Ours"}, rows)
		}()
		fmt.Printf("nodes=%d files=%d seeds=%d (paper: 10000 nodes, 1.2M files, 10 seeds)\n",
			sc.Nodes, sc.Files, seeds)
		fmt.Printf("%-12s", "files")
		for _, s := range []string{"PAST", "CFS", "Ours"} {
			fmt.Printf("%12s", s)
		}
		fmt.Println()
		xs, _ := pick(out["PAST"]).Points()
		step := len(xs) / 12
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(xs); i += step {
			fmt.Printf("%-12.0f", xs[i])
			for _, s := range []string{"PAST", "CFS", "Ours"} {
				y, _ := pick(out[s]).YAt(xs[i])
				fmt.Printf("%11.2f%%", y)
			}
			fmt.Println()
		}
		fmt.Printf("final%7s", "")
		for _, s := range []string{"PAST", "CFS", "Ours"} {
			fmt.Printf("%11.2f%%", pick(out[s]).Last())
		}
		fmt.Println()
		if paperFinal != nil {
			fmt.Printf("paper%7s", "")
			for _, s := range []string{"PAST", "CFS", "Ours"} {
				fmt.Printf("%11.2f%%", paperFinal[s])
			}
			fmt.Printf("   (%s)\n", unit)
		}
		fmt.Print(stats.AsciiPlot([]*stats.Series{
			pick(out["PAST"]), pick(out["CFS"]), pick(out["Ours"]),
		}, 60, 12, "%"))
	}

	printSeries("Figure 7: failed file stores (% of files inserted)", "paper finals",
		func(o *storageOutcome) *stats.Series { return o.failedFiles },
		map[string]float64{"PAST": 36.0, "CFS": 15.2, "Ours": 5.2})
	printSeries("Figure 8: failed data size (% of data inserted)", "paper finals",
		func(o *storageOutcome) *stats.Series { return o.failedBytes },
		map[string]float64{"PAST": 39.2, "CFS": 22.0, "Ours": 12.7})
	printSeries("Figure 9: overall system utilization (%)", "paper finals",
		func(o *storageOutcome) *stats.Series { return o.utilization },
		map[string]float64{"PAST": 44.0, "CFS": 56.0, "Ours": 62.0})

	section("Table 1: chunks per file and chunk sizes")
	fmt.Printf("%-12s %14s %14s %16s %16s\n", "scheme", "chunks avg", "chunks sd", "size avg (MB)", "size sd (MB)")
	for _, s := range []string{"CFS", "Ours"} {
		o := out[s]
		fmt.Printf("%-12s %14.2f %14.2f %16.2f %16.2f\n", s,
			o.chunkCount.Mean(), o.chunkCount.StdDev(),
			o.chunkSize.Mean()/float64(trace.MB), o.chunkSize.StdDev()/float64(trace.MB))
	}
	fmt.Printf("%-12s %14s %14s %16s %16s\n", "paper CFS", "61.25", "13.8", "4.00", "0.00")
	fmt.Printf("%-12s %14s %14s %16s %16s\n", "paper Ours", "3.72", "3.1", "81.28", "19.9")
}
