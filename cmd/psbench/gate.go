package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"peerstripe"
	"peerstripe/gateway"
	"peerstripe/internal/node"
)

// The gate experiment loads the HTTP gateway end to end: a live
// loopback ring behind cmd/psgate's handler, a 64-client herd issuing
// full-object and ranged GETs, with the shared singleflight chunk
// cache and automatic hot promotion doing their work in between. It
// reports aggregate MB/s and tail latencies per phase and writes
// BENCH_PR9.json. Like churn it drives a live ring and takes seconds
// of wall clock, so it runs only when asked for by name, never under
// -exp all.

const gateBenchOut = "BENCH_PR9.json"

// fatalf aborts the experiment with a message on stderr.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

type gatePhaseResult struct {
	Requests    int     `json:"requests"`
	Clients     int     `json:"clients"`
	AggregateMB float64 `json:"aggregate_mb_s"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

type gateBenchReport struct {
	Description string `json:"description"`
	Environment struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		Cores  int    `json:"cores"`
		Go     string `json:"go"`
		Date   string `json:"date"`
	} `json:"environment"`
	Config struct {
		Nodes      int    `json:"nodes"`
		Code       string `json:"code"`
		ChunkCap   int    `json:"chunk_cap_bytes"`
		ObjectSize int    `json:"object_size_bytes"`
		CacheBytes int64  `json:"chunk_cache_bytes"`
		HotAfter   int    `json:"hot_after"`
		HotCopies  int    `json:"hot_copies"`
	} `json:"config"`
	Phases map[string]gatePhaseResult `json:"phases"`
	Cache  peerstripe.CacheStats      `json:"cache"`
	Stats  gateway.Stats              `json:"gateway"`
	// After carries the MB/s floors `make bench-guard` compares the
	// gateway go-bench arms against (cmd/benchguard -match 'Gateway').
	After map[string]map[string]float64 `json:"after"`
}

// gatePercentiles reduces per-request latencies to the tail summary.
func gatePercentiles(lat []time.Duration) (p50, p95, p99, max float64) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Microseconds()) / 1000
	}
	return at(0.50), at(0.95), at(0.99), float64(lat[len(lat)-1].Microseconds()) / 1000
}

// gatePhase runs one load phase: clients goroutines each issuing
// reqsPer requests built by mkReq, verifying status and draining
// bodies, and returns the latency/throughput summary.
func gatePhase(clients, reqsPer int, mkReq func(cli, i int) (*http.Request, int)) (gatePhaseResult, error) {
	var (
		mu    sync.Mutex
		lats  []time.Duration
		bytes int64
		errs  []error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			local := make([]time.Duration, 0, reqsPer)
			var localBytes int64
			for i := 0; i < reqsPer; i++ {
				req, wantStatus := mkReq(cli, i)
				t0 := time.Now()
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					var n int64
					n, err = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					localBytes += n
					if err == nil && resp.StatusCode != wantStatus {
						err = fmt.Errorf("status %d, want %d", resp.StatusCode, wantStatus)
					}
				}
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			bytes += localBytes
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if len(errs) > 0 {
		return gatePhaseResult{}, errs[0]
	}
	r := gatePhaseResult{Requests: len(lats), Clients: clients}
	r.AggregateMB = float64(bytes) / (1 << 20) / wall.Seconds()
	r.P50MS, r.P95MS, r.P99MS, r.MaxMS = gatePercentiles(lats)
	return r, nil
}

func runGate() {
	const (
		nodes      = 4
		chunkCap   = 256 << 10
		objectSize = 8 << 20 // 32 chunks
		clients    = 64
		hotAfter   = 8
		hotCopies  = 2
	)
	section("Gateway load: 64-client herd through cmd/psgate's handler (live loopback ring)")

	var servers []*node.Server
	seed := ""
	for i := 0; i < nodes; i++ {
		s, err := node.NewServer("127.0.0.1:0", 1<<30, seed)
		if err != nil {
			fatalf("gate: %v", err)
		}
		if seed == "" {
			seed = s.Addr()
		}
		servers = append(servers, s)
		defer s.Close()
	}
	for converged := false; !converged; time.Sleep(5 * time.Millisecond) {
		converged = true
		for _, s := range servers {
			if s.RingSize() != nodes {
				converged = false
			}
		}
	}

	ctx := context.Background()
	cl, err := peerstripe.Dial(ctx, seed,
		peerstripe.WithCode("xor"),
		peerstripe.WithChunkCap(chunkCap))
	if err != nil {
		fatalf("gate: %v", err)
	}
	defer cl.Close()

	gw := gateway.New(cl, gateway.Config{HotAfter: hotAfter, HotCopies: hotCopies})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("gate: %v", err)
	}
	srv := &http.Server{Handler: gw}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	data := make([]byte, objectSize)
	rand.New(rand.NewSource(9)).Read(data)
	req, _ := http.NewRequest(http.MethodPut, base+"/gate.bin", bytes.NewReader(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("gate: PUT: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		fatalf("gate: PUT: %s", resp.Status)
	}

	report := gateBenchReport{Phases: map[string]gatePhaseResult{}}
	report.Description = "HTTP gateway load harness (psbench -exp gate): a 64-client herd issuing " +
		"full-object and 64 KiB ranged GETs on one 8 MiB object through the psgate handler over a live " +
		"4-node loopback ring (xor code, 256 KiB chunks). 'herd_cold' includes the singleflight decode " +
		"of every chunk exactly once plus the automatic hot promotion; 'herd_warm' and 'ranged' run " +
		"against the warm shared cache. The 'after' section holds the go-bench MB/s floors for " +
		"`make bench-guard` (go test -bench Gateway ./gateway vs cmd/benchguard, LIVE_GUARD_PCT tolerance)."
	report.Environment.GOOS = runtime.GOOS
	report.Environment.GOARCH = runtime.GOARCH
	report.Environment.Cores = runtime.NumCPU()
	report.Environment.Go = runtime.Version()
	report.Environment.Date = time.Now().Format("2006-01-02")
	report.Config.Nodes = nodes
	report.Config.Code = "xor"
	report.Config.ChunkCap = chunkCap
	report.Config.ObjectSize = objectSize
	report.Config.CacheBytes = peerstripe.DefaultChunkCache
	report.Config.HotAfter = hotAfter
	report.Config.HotCopies = hotCopies

	fullReq := func(cli, i int) (*http.Request, int) {
		r, _ := http.NewRequest(http.MethodGet, base+"/gate.bin", nil)
		return r, http.StatusOK
	}
	fmt.Printf("%-10s %9s %9s %9s %9s %9s %12s\n",
		"phase", "reqs", "p50 ms", "p95 ms", "p99 ms", "max ms", "aggr MB/s")
	runPhase := func(name string, reqsPer int, mk func(cli, i int) (*http.Request, int)) {
		r, err := gatePhase(clients, reqsPer, mk)
		if err != nil {
			fatalf("gate: phase %s: %v", name, err)
		}
		report.Phases[name] = r
		fmt.Printf("%-10s %9d %9.2f %9.2f %9.2f %9.2f %12.1f\n",
			name, r.Requests, r.P50MS, r.P95MS, r.P99MS, r.MaxMS, r.AggregateMB)
	}

	// Cold herd: every chunk of the object decodes exactly once under
	// the herd (singleflight), and the GET count crosses HotAfter so a
	// promotion runs concurrently with the tail of the phase.
	runPhase("herd_cold", 4, fullReq)
	// Warm herd: the whole object is cached; pure gateway + HTTP cost.
	runPhase("herd_warm", 16, fullReq)
	// Ranged: 64 KiB slices at random offsets, the CDN-ish access mix.
	rngs := make([]*rand.Rand, clients)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(100 + i)))
	}
	runPhase("ranged", 64, func(cli, i int) (*http.Request, int) {
		off := rngs[cli].Int63n(objectSize - 64<<10)
		r, _ := http.NewRequest(http.MethodGet, base+"/gate.bin", nil)
		r.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+64<<10-1))
		return r, http.StatusPartialContent
	})
	// Sequential phases: one client, warm cache — the same shape the
	// gateway go-bench arms measure, so their aggregates become the
	// bench-guard floors below.
	seqPhase := func(name string, reqsPer int, mk func(cli, i int) (*http.Request, int)) {
		r, err := gatePhase(1, reqsPer, mk)
		if err != nil {
			fatalf("gate: phase %s: %v", name, err)
		}
		report.Phases[name] = r
		fmt.Printf("%-10s %9d %9.2f %9.2f %9.2f %9.2f %12.1f\n",
			name, r.Requests, r.P50MS, r.P95MS, r.P99MS, r.MaxMS, r.AggregateMB)
	}
	seqPhase("seq_full", 64, fullReq)
	seqPhase("seq_ranged", 512, func(cli, i int) (*http.Request, int) {
		off := rngs[0].Int63n(objectSize - 64<<10)
		r, _ := http.NewRequest(http.MethodGet, base+"/gate.bin", nil)
		r.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+64<<10-1))
		return r, http.StatusPartialContent
	})

	report.Cache = cl.CacheStats()
	report.Stats = gw.Stats()
	// Every chunk decodes at most once across the entire run: the herd
	// collapses into singleflight leaders, and chunks the concurrent
	// promotion fetched first enter the shared cache without a leader
	// at all — so Decodes can come in under the chunk count, never over.
	const chunks = objectSize / chunkCap
	fmt.Printf("cache: %d decodes for %d chunks (%d pre-filled by promotion), %d hits, promotions=%d\n",
		report.Cache.Decodes, chunks, chunks-int(report.Cache.Decodes), report.Cache.Hits, report.Stats.Promotions)
	if report.Cache.Decodes > chunks {
		fmt.Printf("WARNING: %d decodes for %d chunks — the herd re-decoded\n", report.Cache.Decodes, chunks)
	}

	// Floors for `make bench-guard`: the sequential warm phases measure
	// the same thing as the gateway go-bench arms (one client, cached
	// object), so their aggregates are the floors; LIVE_GUARD_PCT in
	// the Makefile supplies the run-to-run slack.
	report.After = map[string]map[string]float64{
		"BenchmarkGatewayGet":       {"mb_s": report.Phases["seq_full"].AggregateMB},
		"BenchmarkGatewayGetRanged": {"mb_s": report.Phases["seq_ranged"].AggregateMB},
	}

	buf, err := json.MarshalIndent(&report, "", " ")
	if err != nil {
		fatalf("gate: %v", err)
	}
	if err := os.WriteFile(gateBenchOut, append(buf, '\n'), 0o644); err != nil {
		fatalf("gate: %v", err)
	}
	fmt.Printf("(wrote %s)\n", gateBenchOut)
}
