// Command psbench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment prints the same rows/series the
// paper reports, next to the paper's published values where they exist,
// so shapes can be compared directly (see EXPERIMENTS.md).
//
// Usage:
//
//	psbench -exp all                 # everything, reduced scale
//	psbench -exp fig7 -scale 20      # one experiment, larger population
//	psbench -exp table2 -runs 10     # coding microbenchmark
//
// -scale divides the paper's 10 000-node / 1.2 M-file population; the
// offered-load-to-capacity ratio (~63%) is preserved at every scale, so
// the failure dynamics match the paper's shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// csvDir receives machine-readable figure data when -csv is set.
var csvDir string

// saveCSV writes one figure's data rows (skipped when -csv is unset).
func saveCSV(name string, header []string, rows [][]string) {
	if csvDir == "" {
		return
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, strings.Join(header, ","))
	for _, r := range rows {
		fmt.Fprintln(f, strings.Join(r, ","))
	}
	fmt.Printf("(wrote %s)\n", filepath.Join(csvDir, name+".csv"))
}

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: all, fig7, fig8, fig9, table1, fig10, table2, schedules, table3, fig11, fig12, table4, ablate, tail, churn, gate (churn and gate drive live rings; not part of 'all')")
		scale = flag.Int("scale", 100, "population divisor vs the paper's 10000 nodes / 1.2M files (1 = full paper scale)")
		seeds = flag.Int("seeds", 3, "independent seeds to average (paper: 10)")
		runs  = flag.Int("runs", 10, "repetitions for the coding microbenchmark")
		csv   = flag.String("csv", "", "directory to also write figure data as CSV (empty disables)")
	)
	flag.Parse()
	csvDir = *csv

	selected := strings.ToLower(*exp)
	// The churn experiment drives a live loopback ring (detector +
	// repair daemon, docs/RING.md) rather than the simulator, takes
	// tens of seconds of wall clock, and writes BENCH_PR6.json — so it
	// runs only when asked for by name, never under -exp all.
	if selected == "churn" {
		runChurn()
		return
	}
	// Likewise the gate experiment: a live loopback ring behind the
	// HTTP gateway under a 64-client herd, writing BENCH_PR9.json —
	// seconds of wall clock, so by name only.
	if selected == "gate" {
		runGate()
		return
	}
	any := false
	dispatch := []struct {
		names []string
		fn    func()
	}{
		{[]string{"fig7", "fig8", "fig9", "table1", "storage"}, func() { runStorage(*scale, *seeds) }},
		{[]string{"fig10"}, func() { runFig10(*scale, *seeds) }},
		{[]string{"table2"}, func() { runTable2(*runs) }},
		{[]string{"schedules", "sched"}, func() { runSchedules(*runs) }},
		{[]string{"table3"}, func() { runTable3(*scale, *seeds) }},
		{[]string{"fig11"}, func() { runFig11() }},
		{[]string{"fig12"}, func() { runFig12() }},
		{[]string{"table4"}, func() { runTable4() }},
		{[]string{"ablate"}, func() { runAblations(*scale) }},
		{[]string{"tail"}, func() { runHeavyTail(*scale, *seeds) }},
	}
	for _, d := range dispatch {
		match := selected == "all"
		for _, n := range d.names {
			if selected == n {
				match = true
			}
		}
		if match {
			any = true
			d.fn()
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// section prints an experiment banner.
func section(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}
