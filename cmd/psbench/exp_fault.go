package main

import (
	"fmt"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/sim"
	"peerstripe/internal/stats"
	"peerstripe/internal/trace"
)

// runFig10 regenerates Figure 10: files unavailable as nodes fail
// one-by-one (no repair) under no coding, (2,3) XOR, and the online
// code configured to tolerate two losses per chunk.
func runFig10(scale, seeds int) {
	sc := trace.Scaled(scale)
	failTarget := sc.Nodes / 10 // the paper fails 1000 of 10000
	specs := []struct {
		label    string
		spec     erasure.Spec
		rateless bool
	}{
		{"No error code", erasure.NullSpec, false},
		{"XOR code", erasure.XOR23Spec, false},
		{"Online code", erasure.OnlineSimSpec, true},
	}

	series := make(map[string]*stats.Series)
	for _, spc := range specs {
		series[spc.label] = stats.NewSeries(spc.label)
	}

	for seed := 0; seed < seeds; seed++ {
		g := trace.NewGen(int64(seed + 100))
		capacities := g.NodeCapacities(sc.Nodes)
		files := g.Files(sc.Files)
		for _, spc := range specs {
			pool := sim.NewPool(int64(seed+100), capacities)
			cfg := core.PaperConfig()
			cfg.Spec = spc.spec
			cfg.Rateless = spc.rateless
			st := core.NewStore(pool, cfg)
			stored := 0
			for _, f := range files {
				if st.StoreFile(f.Name, f.Size).OK {
					stored++
				}
			}
			rng := g.Rand()
			sample := failTarget / 20
			if sample == 0 {
				sample = 1
			}
			for failed := 1; failed <= failTarget; failed++ {
				nodes := pool.Net.Nodes()
				victim := nodes[rng.Intn(len(nodes))].ID
				if _, err := st.FailNode(victim, false); err != nil {
					continue
				}
				if failed%sample == 0 || failed == failTarget {
					unavailable := 100 * float64(st.FilesLost) / float64(stored)
					// Normalise x to the paper's 0–1000 axis.
					x := float64(failed) * 1000 / float64(failTarget)
					series[spc.label].Observe(x, unavailable)
				}
			}
		}
	}

	section("Figure 10: unavailable files vs failed nodes (no repair)")
	fmt.Printf("nodes=%d files=%d seeds=%d, failing %d nodes (10%%); x normalised to the paper's 0-1000\n",
		sc.Nodes, sc.Files, seeds, failTarget)
	fmt.Printf("%-14s", "failed(x/1000)")
	for _, spc := range specs {
		fmt.Printf("%16s", spc.label)
	}
	fmt.Println()
	xs, _ := series[specs[0].label].Points()
	for _, x := range xs {
		fmt.Printf("%-14.0f", x)
		for _, spc := range specs {
			y, _ := series[spc.label].YAt(x)
			fmt.Printf("%15.2f%%", y)
		}
		fmt.Println()
	}
	fmt.Printf("%-14s%15s%15s%15s\n", "paper@1000", "~32%", "~9%", "1.48%")
	var rows [][]string
	for _, x := range xs {
		row := []string{fmt.Sprintf("%.0f", x)}
		for _, spc := range specs {
			y, _ := series[spc.label].YAt(x)
			row = append(row, fmt.Sprintf("%.4f", y))
		}
		rows = append(rows, row)
	}
	saveCSV("fig10", []string{"failed", "none", "xor", "online"}, rows)
	fmt.Print(stats.AsciiPlot([]*stats.Series{
		series[specs[0].label], series[specs[1].label], series[specs[2].label],
	}, 60, 12, "% unavailable"))
}

// runTable3 regenerates Table 3: data lost and regenerated after 10%
// and 20% of nodes have failed, with repair delayed in proportion to
// the data being recovered.
func runTable3(scale, seeds int) {
	sc := trace.Scaled(scale)
	section("Table 3: churn — data lost and regenerated")
	fmt.Printf("nodes=%d files=%d seeds=%d, XOR(2,3) coding, delayed repair\n", sc.Nodes, sc.Files, seeds)
	fmt.Printf("%-10s %14s %18s %16s %14s\n", "failed", "lost (GB)", "regenerated (GB)", "avg/failure", "sd/failure")

	type mark struct {
		lost, regen float64
		per         stats.Acc
	}
	marks := map[int]*mark{10: {}, 20: {}}

	for seed := 0; seed < seeds; seed++ {
		g := trace.NewGen(int64(seed + 200))
		pool := sim.NewPool(int64(seed+200), g.NodeCapacities(sc.Nodes))
		cfg := core.PaperConfig()
		cfg.Spec = erasure.XOR23Spec
		st := core.NewStore(pool, cfg)
		for _, f := range g.Files(sc.Files) {
			st.StoreFile(f.Name, f.Size)
		}
		// Repair bandwidth: twice the mean per-node payload per
		// failure interval, so most — not all — regeneration completes
		// between failures, as the paper's delay model intends.
		meanNodeData := float64(pool.TotalUsed) / float64(pool.Size())
		cs := core.NewChurnSim(st, 2*meanNodeData, 1.0)
		rng := g.Rand()
		target := sc.Nodes / 5 // 20%
		for failed := 1; failed <= target; failed++ {
			nodes := pool.Net.Nodes()
			if err := cs.FailNext(nodes[rng.Intn(len(nodes))].ID); err != nil {
				continue
			}
			for pct, mk := range marks {
				if failed == sc.Nodes*pct/100 {
					mk.lost += float64(cs.TotalLost)
					mk.regen += float64(cs.TotalRegenerated)
					for _, r := range cs.PerFailureRegen {
						mk.per.Add(float64(r))
					}
				}
			}
		}
	}

	gb := float64(trace.GB)
	for _, pct := range []int{10, 20} {
		mk := marks[pct]
		fmt.Printf("%-10s %14.2f %18.2f %16.2f %14.2f\n",
			fmt.Sprintf("%d%%", pct),
			mk.lost/float64(seeds)/gb,
			mk.regen/float64(seeds)/gb,
			mk.per.Mean()/gb,
			mk.per.StdDev()/gb)
	}
	fmt.Printf("%-10s %14s %18s %16s %14s  (at 10000 nodes / 278.7 TB)\n",
		"paper 10%", "0", "28044", "28.04", "78.95")
	fmt.Printf("%-10s %14s %18s %16s %14s\n",
		"paper 20%", "142.18", "58625", "29.31", "80.02")
}
