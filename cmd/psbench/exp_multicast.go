package main

import (
	"fmt"

	"peerstripe/internal/multicast"
)

// runFig11 regenerates Figure 11: average packets received per node
// over epochs for RanSub set sizes from 3% to 16% of the 63-node tree.
func runFig11() {
	section("Figure 11: Bullet dissemination vs RanSub set size")
	fracs := []float64{0.03, 0.05, 0.06, 0.08, 0.10, 0.11, 0.13, 0.14, 0.16}
	const maxEpochs = 420
	const sampleEvery = 30

	fmt.Printf("63-node binary tree (height 5, 32 replicas), 1000 packets\n")
	fmt.Printf("%-8s", "epoch")
	for _, f := range fracs {
		fmt.Printf("%9.0f%%", f*100)
	}
	fmt.Println()

	var csvRows [][]string
	sims := make([]*multicast.Sim, len(fracs))
	for i, f := range fracs {
		cfg := multicast.DefaultConfig()
		cfg.RanSubFrac = f
		cfg.Seed = 11
		sims[i] = multicast.NewSim(multicast.BinaryTree(5), cfg)
	}
	for epoch := 0; epoch <= maxEpochs; epoch++ {
		if epoch%sampleEvery == 0 {
			fmt.Printf("%-8d", epoch)
			row := []string{fmt.Sprintf("%d", epoch)}
			for _, s := range sims {
				_, avg, _ := s.ReceiverStats()
				fmt.Printf("%10.0f", avg)
				row = append(row, fmt.Sprintf("%.1f", avg))
			}
			fmt.Println()
			csvRows = append(csvRows, row)
		}
		for _, s := range sims {
			if !s.Done() {
				s.Step()
			}
		}
	}
	fmt.Printf("%-8s", "done@")
	for _, s := range sims {
		if s.Done() {
			fmt.Printf("%10d", s.Epoch())
		} else {
			fmt.Printf("%10s", ">max")
		}
	}
	fmt.Println()
	fmt.Println("paper: larger RanSub is faster with diminishing returns, stabilising around 8%")
	hdr := []string{"epoch"}
	for _, f := range fracs {
		hdr = append(hdr, fmt.Sprintf("ransub%.0f%%", f*100))
	}
	saveCSV("fig11", hdr, csvRows)
}

// runFig12 regenerates Figure 12: min/avg/max packets per node over
// time at RanSub = 16%.
func runFig12() {
	section("Figure 12: packet distribution evenness (RanSub = 16%)")
	cfg := multicast.DefaultConfig()
	cfg.RanSubFrac = 0.16
	cfg.Seed = 12
	s := multicast.NewSim(multicast.BinaryTree(5), cfg)

	fmt.Printf("%-8s %10s %10s %10s\n", "epoch", "min", "avg", "max")
	var csvRows [][]string
	for !s.Done() && s.Epoch() < 3000 {
		if s.Epoch()%25 == 0 {
			min, avg, max := s.ReceiverStats()
			fmt.Printf("%-8d %10d %10.0f %10d\n", s.Epoch(), min, avg, max)
			csvRows = append(csvRows, []string{
				fmt.Sprintf("%d", s.Epoch()), fmt.Sprintf("%d", min),
				fmt.Sprintf("%.1f", avg), fmt.Sprintf("%d", max)})
		}
		s.Step()
	}
	min, avg, max := s.ReceiverStats()
	fmt.Printf("%-8d %10d %10.0f %10d  (complete)\n", s.Epoch(), min, avg, max)
	fmt.Println("paper: min/avg/max grow close to linearly and stay close together (even distribution)")
	saveCSV("fig12", []string{"epoch", "min", "avg", "max"}, csvRows)
}
