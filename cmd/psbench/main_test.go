package main

import (
	"testing"
)

// Smoke tests: every experiment runner completes at miniature scale
// without panicking. Output correctness is asserted by the underlying
// package tests; these guard the harness wiring itself.

func TestRunStorageSmoke(t *testing.T) {
	runStorage(2000, 1) // 5 nodes, 600 files
}

func TestRunFig10Smoke(t *testing.T) {
	runFig10(500, 1)
}

func TestRunTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("4 MB encodes")
	}
	runTable2(1)
}

func TestRunSchedulesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("4 MB encodes")
	}
	runSchedules(1)
}

func TestRunTable3Smoke(t *testing.T) {
	runTable3(500, 1)
}

func TestRunFig11Fig12Smoke(t *testing.T) {
	runFig11()
	runFig12()
}

func TestRunTable4Smoke(t *testing.T) {
	runTable4()
}

func TestRunAblationsSmoke(t *testing.T) {
	runAblations(1000)
}

func TestRunHeavyTailSmoke(t *testing.T) {
	runHeavyTail(2000, 1)
}

func TestSaveCSVDisabled(t *testing.T) {
	csvDir = ""
	saveCSV("x", []string{"a"}, [][]string{{"1"}}) // must be a no-op
}

func TestSaveCSVWrites(t *testing.T) {
	csvDir = t.TempDir()
	defer func() { csvDir = "" }()
	saveCSV("t", []string{"a", "b"}, [][]string{{"1", "2"}})
}
