package main

import (
	"fmt"

	"peerstripe/internal/core"
	"peerstripe/internal/erasure"
	"peerstripe/internal/grid"
	"peerstripe/internal/sim"
	"peerstripe/internal/stats"
	"peerstripe/internal/trace"
)

// runTable4 regenerates Table 4: bigCopy wall-clock across the three
// storage schemes on the 32-machine pool, 1–128 GB.
func runTable4() {
	section("Table 4: Condor bigCopy — whole file vs fixed vs varying chunks")
	c := grid.NewCluster(7, 32)
	sizes := []int64{1, 2, 4, 8, 16, 32, 64, 128}
	bytes := make([]int64, len(sizes))
	for i, s := range sizes {
		bytes[i] = s * trace.GB
	}
	rows := c.RunTable4(bytes)

	fmt.Printf("32 machines, uniform 2-15 GB contributions, calibrated 100 MB/s-class transfer model\n")
	fmt.Printf("%-8s %14s %22s %24s\n", "size", "whole file", "fixed chunks", "varying chunks")
	for _, r := range rows {
		whole := "N/A"
		if r.Whole.OK {
			whole = fmt.Sprintf("%.1f", r.Whole.Seconds)
		}
		fixed := "N/A"
		if r.Fixed.OK {
			if ov := r.OverheadPct(r.Fixed); ov >= 0 {
				fixed = fmt.Sprintf("%.1f (%.1f%%)", r.Fixed.Seconds, ov)
			} else {
				fixed = fmt.Sprintf("%.1f (N/A)", r.Fixed.Seconds)
			}
		}
		varying := "N/A"
		if r.Varying.OK {
			if ov := r.OverheadPct(r.Varying); ov >= 0 {
				varying = fmt.Sprintf("%.1f (%.1f%%)", r.Varying.Seconds, ov)
			} else {
				varying = fmt.Sprintf("%.1f (N/A)", r.Varying.Seconds)
			}
		}
		fmt.Printf("%-8s %14s %22s %24s\n",
			fmt.Sprintf("%d GB", r.Size/trace.GB), whole, fixed, varying)
	}
	fmt.Println("paper 1 GB:  151.0 | 169.0 (11.9%) | 176.4 (16.8%)")
	fmt.Println("paper 8 GB:  1051.2 | 1320.0 (25.6%) | 1076.6 (2.4%)")
	fmt.Println("paper 128GB: N/A | 20881.5 | 16425.8   (whole-file fails above single-node capacity)")
}

// runAblations benches the design choices DESIGN.md calls out: the
// getCapacity reporting-fraction policy, the chunk-size cap of §4.5,
// and per-chunk versus whole-file coding granularity.
func runAblations(scale int) {
	sc := trace.Scaled(scale)
	g := trace.NewGen(31)
	capacities := g.NodeCapacities(sc.Nodes)
	files := g.Files(sc.Files / 2)

	section("Ablation A: getCapacity reporting fraction (§4.3 policy)")
	fmt.Printf("%-12s %14s %14s %14s\n", "fraction", "failed files", "chunks/file", "mean hops")
	for _, frac := range []float64{1.0, 0.01, 0.002, 0.0005} {
		pool := sim.NewPool(31, capacities)
		pool.SetReportFraction(frac)
		st := core.NewStore(pool, core.DefaultConfig())
		var chunks stats.Acc
		for _, f := range files {
			if res := st.StoreFile(f.Name, f.Size); res.OK {
				chunks.Add(float64(res.Chunks))
			}
		}
		fmt.Printf("%-12.4f %13.2f%% %14.2f %14.2f\n", frac,
			100*float64(st.FilesFailed)/float64(len(files)), chunks.Mean(), pool.MeanLookupHops())
	}

	section("Ablation B: chunk-size cap (§4.5 trade-off)")
	fmt.Printf("%-12s %14s %14s %16s\n", "cap", "chunks/file", "lookups/file", "regen/chunk (MB)")
	for _, cap := range []int64{0, 400 * trace.MB, 100 * trace.MB, 25 * trace.MB} {
		pool := sim.NewPool(32, capacities)
		cfg := core.DefaultConfig()
		cfg.MaxChunkSize = cap
		st := core.NewStore(pool, cfg)
		var chunks, sizes stats.Acc
		lookupsBefore := pool.Lookups
		stored := 0
		for _, f := range files {
			if res := st.StoreFile(f.Name, f.Size); res.OK {
				stored++
				chunks.Add(float64(res.Chunks))
				for _, cs := range res.ChunkSizes {
					sizes.Add(float64(cs))
				}
			}
		}
		label := "none"
		if cap > 0 {
			label = fmt.Sprintf("%d MB", cap/trace.MB)
		}
		perFile := float64(pool.Lookups-lookupsBefore) / float64(len(files))
		fmt.Printf("%-12s %14.2f %14.2f %16.2f\n", label, chunks.Mean(), perFile,
			sizes.Mean()/float64(trace.MB))
	}

	section("Ablation C: coding granularity — per-chunk vs across-chunks recovery cost")
	// Per-chunk coding (the paper's choice, §4.2) reads one chunk's
	// blocks to rebuild a lost block; coding across chunks would read
	// the whole file. Compare bytes read per repaired block.
	pool := sim.NewPool(33, capacities)
	cfg := core.PaperConfig()
	cfg.Spec = erasure.XOR23Spec
	st := core.NewStore(pool, cfg)
	var perChunkRead, wholeFileRead stats.Acc
	for _, f := range files[:min(len(files), 2000)] {
		if res := st.StoreFile(f.Name, f.Size); res.OK {
			for _, cs := range res.ChunkSizes {
				perChunkRead.Add(float64(cs))                // read n blocks ≈ chunk bytes
				wholeFileRead.Add(float64(res.LogicalBytes)) // across-chunk coding reads the file
			}
		}
	}
	fmt.Printf("%-26s %18s\n", "granularity", "bytes read/repair (MB)")
	fmt.Printf("%-26s %18.2f\n", "per-chunk (PeerStripe)", perChunkRead.Mean()/float64(trace.MB))
	fmt.Printf("%-26s %18.2f\n", "across chunks", wholeFileRead.Mean()/float64(trace.MB))

	section("Ablation D: neighbor space reservation vs rateless drop-and-recreate (§4.4)")
	// The paper rejected reserving neighbor-takeover space because it
	// strands capacity; quantify the stranding at the full §6.1 load,
	// where reservations actually bite.
	fullFiles := g.Files(sc.Files)
	fmt.Printf("%-26s %14s %14s\n", "policy", "failed files", "utilization")
	for _, reserve := range []bool{false, true} {
		pool := sim.NewPool(34, capacities)
		st := core.NewStore(pool, core.PaperConfig())
		for i, f := range fullFiles {
			if reserve && i%200 == 0 {
				pool.RecomputeNeighborReserves()
			}
			st.StoreFile(f.Name, f.Size)
		}
		label := "drop-and-recreate (paper)"
		if reserve {
			label = "reserve for neighbors"
		}
		fmt.Printf("%-26s %13.2f%% %13.2f%%\n", label,
			100*float64(st.FilesFailed)/float64(len(fullFiles)), 100*pool.Utilization())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
