package main

import (
	"fmt"
	"math/rand"
	"time"

	"peerstripe/internal/erasure"
	"peerstripe/internal/stats"
	"peerstripe/internal/trace"
)

// runTable2 regenerates Table 2: encoded size and encode/decode time
// for a 4 MB chunk under the NULL, (2,3) XOR, and online codes (q=3,
// ε=0.01, 4096 blocks per chunk).
func runTable2(runs int) {
	section("Table 2: erasure-code cost for a 4 MB chunk")
	fmt.Printf("kernels: %s\n", erasure.KernelImpl())
	rng := rand.New(rand.NewSource(42))
	chunk := make([]byte, 4*trace.MB)
	rng.Read(chunk)

	codes := []erasure.Code{
		erasure.NewNull(),
		erasure.MustXOR(2),
		erasure.MustOnline(4096, erasure.OnlineOpts{}), // q=3, ε=0.01
		// Extra comparator beyond the paper's table: the optimal
		// (ε = 0) code its §2.2 discusses. Stripe width is field-bound
		// (n+k ≤ 255), so 16+4 rather than 4096 blocks.
		erasure.MustRS(16, 4),
	}

	type row struct {
		name               string
		encodedMB          float64
		sizeOvh            float64
		encodeMS, decodeMS stats.Acc
	}
	var rows []row
	var nullEnc, nullDec float64

	for _, c := range codes {
		r := row{name: c.Name()}
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			blocks, err := c.Encode(chunk)
			if err != nil {
				panic(err)
			}
			r.encodeMS.Add(float64(time.Since(t0).Microseconds()) / 1000)

			var encoded int64
			for _, b := range blocks {
				encoded += int64(len(b.Data))
			}
			r.encodedMB = float64(encoded) / float64(trace.MB)
			r.sizeOvh = 100 * (float64(encoded)/float64(len(chunk)) - 1)

			t1 := time.Now()
			if _, err := c.Decode(blocks, len(chunk)); err != nil {
				panic(err)
			}
			r.decodeMS.Add(float64(time.Since(t1).Microseconds()) / 1000)
		}
		if c.Name() == "null" {
			nullEnc, nullDec = r.encodeMS.Mean(), r.decodeMS.Mean()
		}
		rows = append(rows, r)
	}

	fmt.Printf("runs=%d\n", runs)
	fmt.Printf("%-8s %14s %10s %14s %12s %14s %12s\n",
		"code", "size (MB)", "ovhd", "encode (ms)", "enc ovhd", "decode (ms)", "dec ovhd")
	for _, r := range rows {
		encOvh := "0%"
		decOvh := "0%"
		if r.name != "null" && nullEnc > 0 {
			encOvh = fmt.Sprintf("%.0f%%", 100*(r.encodeMS.Mean()/nullEnc-1))
			decOvh = fmt.Sprintf("%.0f%%", 100*(r.decodeMS.Mean()/nullDec-1))
		}
		fmt.Printf("%-8s %14.2f %9.0f%% %14.2f %12s %14.2f %12s\n",
			r.name, r.encodedMB, r.sizeOvh, r.encodeMS.Mean(), encOvh, r.decodeMS.Mean(), decOvh)
	}
	fmt.Println("paper:  null 4 MB/0% @11ms; xor 6 MB/50% @79ms (+618%); online 4.12 MB/3% @264ms (+2300%)")
	fmt.Println("        (absolute times are hardware/runtime dependent; the orderings are the result;")
	fmt.Println("         rs(16,4) is our extra optimal-code comparator, not in the paper's table)")
}

// runSchedules sweeps stored surplus × check schedule for the online
// code at the paper's Table 2 point (q=3, ε=0.01, 4096 blocks per 4 MB
// chunk), reporting the BP-completion rate (decodes finishing by pure
// peeling, without inactivating a column), the mean number of
// inactivated columns, and decode throughput. This is the evaluation
// axis behind ROADMAP item 3: how far a structured schedule pushes the
// BP waterfall down without raising the stored surplus.
func runSchedules(runs int) {
	section("Decode schedules: BP completion × surplus (online code, 4 MB chunk)")
	rng := rand.New(rand.NewSource(43))
	chunk := make([]byte, 4*trace.MB)
	rng.Read(chunk)

	surpluses := []float64{0.02, 0.03, 0.05}
	fmt.Printf("runs=%d (each run a fresh seed: a new outer/inner equation draw)\n", runs)
	fmt.Printf("%-8s %-11s %8s %10s %10s %12s\n",
		"surplus", "schedule", "BP rate", "inact", "resid rows", "decode MB/s")
	var csvRows [][]string
	for _, surplus := range surpluses {
		for _, sched := range erasure.Schedules() {
			var bpDone, inact, rows int
			var decode stats.Acc
			for r := 0; r < runs; r++ {
				c, err := erasure.NewOnline(4096, erasure.OnlineOpts{
					Surplus: surplus, Seed: int64(r + 1), Schedule: sched,
				})
				if err != nil {
					panic(err)
				}
				blocks, err := c.Encode(chunk)
				if err != nil {
					panic(err)
				}
				t0 := time.Now()
				_, st, err := c.DecodeWithStats(blocks, len(chunk))
				if err != nil {
					panic(fmt.Sprintf("schedule %s surplus %g seed %d: %v", sched.Name(), surplus, r+1, err))
				}
				decode.Add(time.Since(t0).Seconds())
				if st.BPComplete {
					bpDone++
				}
				inact += st.Inactivated
				rows += st.ResidualRows
			}
			bpRate := float64(bpDone) / float64(runs)
			mbs := float64(len(chunk)) / float64(trace.MB) / decode.Mean()
			fmt.Printf("%7.0f%% %-11s %7.0f%% %10.1f %10.1f %12.1f\n",
				surplus*100, sched.Name(), bpRate*100,
				float64(inact)/float64(runs), float64(rows)/float64(runs), mbs)
			csvRows = append(csvRows, []string{
				fmt.Sprintf("%.2f", surplus), sched.Name(),
				fmt.Sprintf("%.2f", bpRate),
				fmt.Sprintf("%.1f", float64(inact)/float64(runs)),
				fmt.Sprintf("%.1f", mbs),
			})
		}
	}
	saveCSV("schedules", []string{"surplus", "schedule", "bp_rate", "inactivated", "decode_mb_s"}, csvRows)
	fmt.Println("note: inactivation decoding makes a stall cheap (tens of columns solved densely),")
	fmt.Println("      so throughput stays flat across the waterfall; BP rate shows where it sits.")
	fmt.Println("      windowed schedules trade a later waterfall for better XOR locality above it;")
	fmt.Println("      banded schedules spread the same coverage across several windows.")

	runRepairArm(runs, chunk)
}

// runRepairArm measures the §4.4 repair path per schedule: minting a
// replacement check block with FreshBlock (one aux/composite build plus
// one composition XOR per block). This is the arm that shows whether a
// structured schedule helps or hurts block *regeneration*, not just
// decode: a repair node pays the mint cost for every block it
// re-creates during churn.
func runRepairArm(runs int, chunk []byte) {
	section("Repair path: FreshBlock mint throughput per schedule (online code, 4 MB chunk)")
	const mintsPerRun = 8
	fmt.Printf("runs=%d, %d fresh blocks per run, indices beyond the stored set\n", runs, mintsPerRun)
	fmt.Printf("%-11s %14s %14s\n", "schedule", "mint ms/block", "chunk MB/s")
	var csvRows [][]string
	for _, sched := range erasure.Schedules() {
		c, err := erasure.NewOnline(4096, erasure.OnlineOpts{Schedule: sched})
		if err != nil {
			panic(err)
		}
		var mint stats.Acc
		for r := 0; r < runs; r++ {
			t0 := time.Now()
			for j := 0; j < mintsPerRun; j++ {
				if _, err := c.FreshBlock(chunk, c.EncodedBlocks()+r*mintsPerRun+j); err != nil {
					panic(err)
				}
			}
			mint.Add(time.Since(t0).Seconds() / mintsPerRun)
		}
		msPerBlock := mint.Mean() * 1000
		// A mint re-reads the whole chunk (aux build dominates); express
		// that as chunk throughput for comparison with encode.
		mbs := float64(len(chunk)) / float64(trace.MB) / mint.Mean()
		fmt.Printf("%-11s %14.3f %14.1f\n", sched.Name(), msPerBlock, mbs)
		csvRows = append(csvRows, []string{
			sched.Name(), fmt.Sprintf("%.3f", msPerBlock), fmt.Sprintf("%.1f", mbs),
		})
	}
	saveCSV("repair", []string{"schedule", "mint_ms_block", "chunk_mb_s"}, csvRows)
	fmt.Println("note: mint cost is dominated by the aux/composite rebuild, which every schedule")
	fmt.Println("      shares; the schedule only changes the final composition gather.")
}
