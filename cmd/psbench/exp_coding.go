package main

import (
	"fmt"
	"math/rand"
	"time"

	"peerstripe/internal/erasure"
	"peerstripe/internal/stats"
	"peerstripe/internal/trace"
)

// runTable2 regenerates Table 2: encoded size and encode/decode time
// for a 4 MB chunk under the NULL, (2,3) XOR, and online codes (q=3,
// ε=0.01, 4096 blocks per chunk).
func runTable2(runs int) {
	section("Table 2: erasure-code cost for a 4 MB chunk")
	rng := rand.New(rand.NewSource(42))
	chunk := make([]byte, 4*trace.MB)
	rng.Read(chunk)

	codes := []erasure.Code{
		erasure.NewNull(),
		erasure.MustXOR(2),
		erasure.MustOnline(4096, erasure.OnlineOpts{}), // q=3, ε=0.01
		// Extra comparator beyond the paper's table: the optimal
		// (ε = 0) code its §2.2 discusses. Stripe width is field-bound
		// (n+k ≤ 255), so 16+4 rather than 4096 blocks.
		erasure.MustRS(16, 4),
	}

	type row struct {
		name               string
		encodedMB          float64
		sizeOvh            float64
		encodeMS, decodeMS stats.Acc
	}
	var rows []row
	var nullEnc, nullDec float64

	for _, c := range codes {
		r := row{name: c.Name()}
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			blocks, err := c.Encode(chunk)
			if err != nil {
				panic(err)
			}
			r.encodeMS.Add(float64(time.Since(t0).Microseconds()) / 1000)

			var encoded int64
			for _, b := range blocks {
				encoded += int64(len(b.Data))
			}
			r.encodedMB = float64(encoded) / float64(trace.MB)
			r.sizeOvh = 100 * (float64(encoded)/float64(len(chunk)) - 1)

			t1 := time.Now()
			if _, err := c.Decode(blocks, len(chunk)); err != nil {
				panic(err)
			}
			r.decodeMS.Add(float64(time.Since(t1).Microseconds()) / 1000)
		}
		if c.Name() == "null" {
			nullEnc, nullDec = r.encodeMS.Mean(), r.decodeMS.Mean()
		}
		rows = append(rows, r)
	}

	fmt.Printf("runs=%d\n", runs)
	fmt.Printf("%-8s %14s %10s %14s %12s %14s %12s\n",
		"code", "size (MB)", "ovhd", "encode (ms)", "enc ovhd", "decode (ms)", "dec ovhd")
	for _, r := range rows {
		encOvh := "0%"
		decOvh := "0%"
		if r.name != "null" && nullEnc > 0 {
			encOvh = fmt.Sprintf("%.0f%%", 100*(r.encodeMS.Mean()/nullEnc-1))
			decOvh = fmt.Sprintf("%.0f%%", 100*(r.decodeMS.Mean()/nullDec-1))
		}
		fmt.Printf("%-8s %14.2f %9.0f%% %14.2f %12s %14.2f %12s\n",
			r.name, r.encodedMB, r.sizeOvh, r.encodeMS.Mean(), encOvh, r.decodeMS.Mean(), decOvh)
	}
	fmt.Println("paper:  null 4 MB/0% @11ms; xor 6 MB/50% @79ms (+618%); online 4.12 MB/3% @264ms (+2300%)")
	fmt.Println("        (absolute times are hardware/runtime dependent; the orderings are the result;")
	fmt.Println("         rs(16,4) is our extra optimal-code comparator, not in the paper's table)")
}
