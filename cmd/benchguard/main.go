// Command benchguard compares `go test -bench` output (stdin) against
// a committed baseline JSON and fails when a selected benchmark's
// throughput regressed beyond the tolerance. It is the CI gate behind
// `make bench-guard`: the Table 2 coding arms are the product of this
// repo's perf work, and a silent 2× regression there would otherwise
// ride in on an unrelated diff.
//
// Usage:
//
//	go test -run '^$' -bench 'Table2Online' -benchtime 1s . | \
//	  benchguard -baseline BENCH_PR3.json -match 'Table2' -tol 25
//
// The baseline file is the BENCH_PRn.json this repo commits with every
// perf PR; only its "after" section is read, and only entries with an
// "mb_s" field participate. Benchmarks present in just one side are
// reported but never fail the gate (new arms shouldn't need a baseline
// edit to land, and machine-specific arms may not run everywhere).
// Comparisons are against the committed numbers, so on hardware much
// slower than the baseline machine the tolerance must be raised
// (-tol, or BENCH_GUARD_PCT via the Makefile).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile mirrors the BENCH_PRn.json layout; fields other than
// "after" are ignored.
type baselineFile struct {
	After map[string]map[string]float64 `json:"after"`
}

// parseBench extracts `name -> MB/s` from benchmark output lines. The
// GOMAXPROCS suffix ("-8") is stripped so names match baseline keys.
func parseBench(lines []string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 1; i < len(fields)-1; i++ {
			if fields[i+1] == "MB/s" {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					out[name] = v
				}
				break
			}
		}
	}
	return out
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_PR3.json", "baseline JSON (BENCH_PRn.json layout; its \"after\" section)")
		match        = flag.String("match", "Table2", "regexp selecting which benchmarks to gate")
		tol          = flag.Float64("tol", 25, "allowed throughput regression, percent")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	sel, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: bad -match: %v\n", err)
		os.Exit(2)
	}

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		fmt.Println(line) // pass the bench output through for the log
	}
	current := parseBench(lines)
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark lines with MB/s on stdin")
		os.Exit(2)
	}

	failed := false
	compared := 0
	for name, got := range current {
		if !sel.MatchString(name) {
			continue
		}
		entry, ok := base.After[name]
		if !ok {
			fmt.Printf("benchguard: %-45s %8.1f MB/s (no baseline; informational)\n", name, got)
			continue
		}
		want, ok := entry["mb_s"]
		if !ok || want <= 0 {
			continue
		}
		compared++
		change := 100 * (got/want - 1)
		status := "ok"
		if got < want*(1-*tol/100) {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("benchguard: %-45s %8.1f MB/s vs baseline %8.1f (%+.1f%%) %s\n", name, got, want, change, status)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: nothing matched %q in both run and baseline\n", *match)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: throughput regressed more than %.0f%% against %s\n", *tol, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmarks within %.0f%% of %s\n", compared, *tol, *baselinePath)
}
