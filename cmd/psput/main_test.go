package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"peerstripe"
)

// startRing forms an in-process ring through the public API and
// returns its seed address.
func startRing(t *testing.T, n int) string {
	t.Helper()
	seed := ""
	for i := 0; i < n; i++ {
		node, err := peerstripe.ListenAndServe("127.0.0.1:0", 1<<30, seed, "")
		if err != nil {
			t.Fatal(err)
		}
		if seed == "" {
			seed = node.Addr()
		}
		t.Cleanup(func() { node.Close() })
	}
	return seed
}

// TestCLIPutGetRoundTrip drives the put/get/range/rm subcommands
// through run() against a live ring and checks bytes and exit codes.
func TestCLIPutGetRoundTrip(t *testing.T) {
	seed := startRing(t, 5)
	dir := t.TempDir()
	local := filepath.Join(dir, "in.dat")
	out := filepath.Join(dir, "out.dat")
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(5)).Read(data)
	if err := os.WriteFile(local, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-seed", seed, "put", local, "cli.dat"}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("put exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "stored cli.dat") {
		t.Fatalf("put output %q", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-seed", seed, "get", "cli.dat", out}, &stdout, &stderr); code != exitOK {
		t.Fatalf("get exited %d: %s", code, stderr.String())
	}
	got, err := os.ReadFile(out)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %v", err)
	}

	stdout.Reset()
	if code := run([]string{"-seed", seed, "range", "cli.dat", "1000", "64"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("range exited %d: %s", code, stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), data[1000:1064]) {
		t.Fatal("range bytes differ")
	}

	stdout.Reset()
	if code := run([]string{"-seed", seed, "ls"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("ls exited %d", code)
	}
	if strings.Count(stdout.String(), "used") != 5 {
		t.Fatalf("ls output %q", stdout.String())
	}

	if code := run([]string{"-seed", seed, "rm", "cli.dat"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("rm exited %d: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-seed", seed, "get", "cli.dat", out}, &stdout, &stderr); code != exitNotFound {
		t.Fatalf("get after rm exited %d, want %d (not found); stderr %s", code, exitNotFound, stderr.String())
	}
}

// TestCLIExitCodes pins the script-facing contract: usage errors exit
// 2, a missing name exits 3, an unreachable ring exits 4, and the
// failure line names the op, the object, and the deadline in force.
func TestCLIExitCodes(t *testing.T) {
	seed := startRing(t, 3)
	var stdout, stderr bytes.Buffer

	if code := run([]string{"-seed", seed}, &stdout, &stderr); code != exitUsage {
		t.Fatalf("no subcommand exited %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-seed", seed, "teleport", "x"}, &stdout, &stderr); code != exitUsage {
		t.Fatalf("unknown subcommand exited %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-seed", seed, "put", "only-two"}, &stdout, &stderr); code != exitUsage {
		t.Fatalf("short put exited %d, want %d", code, exitUsage)
	}

	stderr.Reset()
	if code := run([]string{"-seed", seed, "get", "no-such.dat", "/dev/null"}, &stdout, &stderr); code != exitNotFound {
		t.Fatalf("missing name exited %d, want %d", code, exitNotFound)
	}
	msg := stderr.String()
	for _, want := range []string{"get", "no-such.dat", "deadline none"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error line %q lacks %q", msg, want)
		}
	}

	stderr.Reset()
	if code := run([]string{"-seed", "127.0.0.1:1", "-timeout", "300ms", "ls"}, &stdout, &stderr); code != exitUnavailable {
		t.Fatalf("dead ring exited %d, want %d; stderr %s", code, exitUnavailable, stderr.String())
	}

	// A repair of a missing name surfaces not-found, not a generic 1.
	stderr.Reset()
	if code := run([]string{"-seed", seed, "repair", "ghost.dat"}, &stdout, &stderr); code != exitNotFound {
		t.Fatalf("repair of missing name exited %d, want %d; stderr %s", code, exitNotFound, stderr.String())
	}
}
